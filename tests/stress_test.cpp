/// Registered medium-size randomized campaign: a compressed version of the
/// development-time 300-scenario stress sweep, kept fast enough for CI.
/// Mixes sizes, start classes (random / rotationally symmetric / axially
/// symmetric / clustered-multiplicity via scattering), schedulers, deltas,
/// and adversary aggression. Everything must form its pattern.

#include <gtest/gtest.h>

#include "config/generator.h"
#include "core/form_pattern.h"
#include "core/scattering.h"
#include "io/patterns.h"
#include "sim/engine.h"

namespace apf {
namespace {

using config::Configuration;

struct Scenario {
  Configuration start;
  Configuration pattern;
  sched::SchedulerKind sched;
  double delta;
  double earlyStop;
  bool multiplicity;
  bool scatterFirst;
  std::string label;
};

Scenario makeScenario(int t) {
  std::mt19937_64 meta(t * 2654435761u + 99);
  Scenario s;
  std::size_t n = 7 + meta() % 8;  // 7..14
  const int startKind = meta() % 4;
  config::Rng rng(7000 + t);
  switch (startKind) {
    case 0:
      s.start = config::randomConfiguration(n, rng, 4.0, 0.05);
      s.label = "random";
      break;
    case 1: {
      const int rings = (n % 2 == 0) ? 2 : 3;
      const int rho = static_cast<int>(n) / rings;
      s.start = config::symmetricConfiguration(std::max(rho, 2), rings, rng);
      n = s.start.size();
      s.label = "rotational";
      break;
    }
    case 2: {
      const int pairs = static_cast<int>(n) / 2;
      s.start = config::axialConfiguration(pairs, n % 2, rng);
      n = s.start.size();
      s.label = "axial";
      break;
    }
    default: {
      // Clustered start: requires scattering first (SSYNC).
      const std::size_t spots = n / 3 + 2;
      const Configuration anchors =
          config::randomConfiguration(spots, rng, 3.0, 0.5);
      Configuration out;
      for (std::size_t i = 0; i < n; ++i) out.push_back(anchors[i % spots]);
      s.start = out;
      s.scatterFirst = true;
      s.multiplicity = true;
      s.label = "clustered";
      break;
    }
  }
  s.pattern = io::patternByName(io::allPatternNames()[meta() % 6], n,
                                8000 + t);
  if (s.scatterFirst) {
    s.sched = sched::SchedulerKind::SSync;  // scattering is SSYNC-scoped
  } else {
    const int k = meta() % 3;
    s.sched = k == 0   ? sched::SchedulerKind::FSync
              : k == 1 ? sched::SchedulerKind::SSync
                       : sched::SchedulerKind::Async;
  }
  s.delta = (meta() % 2) ? 0.05 : 0.02;
  s.earlyStop = (meta() % 2) ? 0.5 : 0.9;
  return s;
}

class StressCampaign : public ::testing::TestWithParam<int> {};

TEST_P(StressCampaign, FormsPattern) {
  const Scenario s = makeScenario(GetParam());
  core::FormPatternAlgorithm form;
  core::ScatterThenForm scatterForm;
  sim::EngineOptions opts;
  opts.seed = GetParam() * 7919 + 5;
  opts.maxEvents = 1500000;
  opts.multiplicityDetection = s.multiplicity;
  opts.sched.kind = s.sched;
  opts.sched.delta = s.delta;
  opts.sched.earlyStopProb = s.earlyStop;
  const sim::Algorithm& algo =
      s.scatterFirst ? static_cast<const sim::Algorithm&>(scatterForm)
                     : static_cast<const sim::Algorithm&>(form);
  sim::Engine eng(s.start, s.pattern, algo, opts);
  const auto res = eng.run();
  EXPECT_TRUE(res.terminated) << s.label << " n=" << s.start.size();
  EXPECT_TRUE(res.success) << s.label << " n=" << s.start.size();
}

INSTANTIATE_TEST_SUITE_P(Mixed, StressCampaign, ::testing::Range(0, 24));

}  // namespace
}  // namespace apf
