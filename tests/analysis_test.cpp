#include <gtest/gtest.h>

#include <cmath>

#include "config/generator.h"
#include "core/analysis.h"
#include "io/patterns.h"

namespace apf::core {
namespace {

using config::Configuration;
using geom::Vec2;

sim::Snapshot makeSnap(const Configuration& robots,
                       const Configuration& pattern, std::size_t self = 0,
                       bool mult = false) {
  sim::Snapshot s;
  s.robots = robots;
  s.pattern = pattern;
  s.selfIndex = self;
  s.multiplicityDetection = mult;
  return s;
}

TEST(AnalysisTest, NormalizationUnitSec) {
  config::Rng rng(1);
  const Configuration p = config::randomConfiguration(8, rng, 7.0, 0.1);
  const Configuration f = io::polygonPattern(8);
  Analysis a(makeSnap(p, f));
  ASSERT_TRUE(a.ok());
  const geom::Circle sec = a.P().sec();
  EXPECT_NEAR(sec.radius, 1.0, 1e-9);
  EXPECT_NEAR(sec.center.norm(), 0.0, 1e-9);
  EXPECT_NEAR(a.F().sec().radius, 1.0, 1e-9);
}

TEST(AnalysisTest, DenormalizeRoundTrips) {
  config::Rng rng(2);
  const Configuration p = config::randomConfiguration(6, rng, 3.0, 0.1);
  Analysis a(makeSnap(p, io::polygonPattern(6)));
  ASSERT_TRUE(a.ok());
  for (std::size_t i = 0; i < p.size(); ++i) {
    const Vec2 back = a.denormalize().apply(a.P()[i]);
    EXPECT_NEAR(back.x, p[i].x, 1e-9);
    EXPECT_NEAR(back.y, p[i].y, 1e-9);
  }
}

TEST(AnalysisTest, DegenerateSnapshotsRejected) {
  // All robots at one point (zero SEC) or trivial sizes are not analyzable.
  Analysis a(makeSnap(Configuration({{1, 1}, {1, 1}}), io::polygonPattern(4)));
  EXPECT_FALSE(a.ok());
  Analysis b(makeSnap(Configuration({{1, 1}}), io::polygonPattern(4)));
  EXPECT_FALSE(b.ok());
}

TEST(AnalysisTest, SelectedRobotPredicate) {
  // Pattern: unit square => l_F = sqrt(2)... normalized: all radii equal,
  // so l_F = 1 (single distance ring). Use a pattern with distinct rings.
  const Configuration f = io::starPattern(8);  // rings at 1 and 0.45
  // Robots: 7 on the unit circle + one robot well inside.
  Configuration p = config::regularPolygon(7, 1.0);
  p.push_back({0.05, 0.02});
  Analysis a(makeSnap(p, f));
  ASSERT_TRUE(a.ok());
  const auto sel = a.selectedRobot();
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(*sel, 7u);
}

TEST(AnalysisTest, NoSelectedRobotWhenTwoInside) {
  const Configuration f = io::starPattern(8);
  Configuration p = config::regularPolygon(6, 1.0);
  p.push_back({0.05, 0.02});
  p.push_back({-0.06, 0.01});  // second robot inside D(2|r|)
  Analysis a(makeSnap(p, f));
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(a.selectedRobot().has_value());
}

TEST(AnalysisTest, SelectedRobotAtExactCenterCounts) {
  const Configuration f = io::starPattern(8);
  Configuration p = config::regularPolygon(7, 1.0);
  p.push_back({0.0, 0.0});
  Analysis a(makeSnap(p, f));
  ASSERT_TRUE(a.ok());
  const auto sel = a.selectedRobot();
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(*sel, 7u);
}

TEST(AnalysisTest, SelectedRobotUnique) {
  // The predicate can never hold for two robots simultaneously: scan many
  // random configurations and check at most one qualifies (the accessor
  // returns the first; verify no second by construction check).
  config::Rng rng(17);
  const Configuration f = io::starPattern(10);
  for (int t = 0; t < 50; ++t) {
    const Configuration p = config::randomConfiguration(10, rng, 1.0, 1e-3);
    Analysis a(makeSnap(p, f));
    if (!a.ok()) continue;
    int count = 0;
    const double lf = a.lF();
    for (std::size_t i = 0; i < a.P().size(); ++i) {
      const double ri = a.P()[i].norm();
      if (ri >= lf / 2.0) continue;
      bool alone = true;
      for (std::size_t j = 0; j < a.P().size(); ++j) {
        if (j != i && a.P()[j].norm() < 2.0 * ri - 1e-12) alone = false;
      }
      if (alone) ++count;
    }
    EXPECT_LE(count, 1) << "trial " << t;
  }
}

TEST(AnalysisTest, MaxViewFastPathMatchesFullComputation) {
  config::Rng rng(23);
  for (int t = 0; t < 30; ++t) {
    const Configuration p = config::randomConfiguration(9, rng, 1.0, 1e-3);
    Analysis a(makeSnap(p, io::polygonPattern(9)));
    ASSERT_TRUE(a.ok());
    const auto fast = a.maxViewP();
    // Full computation: compare every robot's view.
    const auto views =
        config::allViews(a.P(), a.centerP(), a.multiplicity());
    std::vector<std::size_t> slow;
    for (std::size_t i = 0; i < p.size(); ++i) {
      bool isMax = true;
      for (std::size_t j = 0; j < p.size() && isMax; ++j) {
        if (config::compareViews(views[j], views[i]) > 0) isMax = false;
      }
      if (isMax) slow.push_back(i);
    }
    EXPECT_EQ(fast, slow) << "trial " << t;
  }
}

TEST(AnalysisTest, MaxViewFastPathOnSymmetricConfig) {
  // Symmetric config: the max-view class is a whole symmetry class.
  const Configuration p = config::regularPolygon(5, 1.0);
  Analysis a(makeSnap(p, io::polygonPattern(5)));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.maxViewP().size(), 5u);
}

TEST(AnalysisTest, PatternInfoConsistentAcrossRobots) {
  // Every robot must derive the identical pattern decomposition.
  const Configuration f = io::starPattern(8);
  config::Rng rng(29);
  const Configuration p = config::randomConfiguration(8, rng);
  const PatternInfo* first = nullptr;
  for (std::size_t i = 0; i < p.size(); ++i) {
    Analysis a(makeSnap(p, f, i));
    ASSERT_TRUE(a.ok());
    if (!first) {
      first = &a.patternInfo();
    } else {
      EXPECT_EQ(first, &a.patternInfo());  // same cached object
    }
  }
}

TEST(AnalysisTest, PatternInfoCircleDecomposition) {
  const Configuration f = io::starPattern(8);
  Analysis a(makeSnap(f, f));
  const PatternInfo& pi = a.patternInfo();
  ASSERT_TRUE(pi.valid);
  // F' = 7 points; the star has rings at radius 1 (4 pts) and 0.45 (4 pts);
  // fs is an inner-ring point, so F' has 4 outer + 3 inner.
  ASSERT_EQ(pi.circleRadii.size(), 2u);
  EXPECT_NEAR(pi.circleRadii[0], 1.0, 1e-9);
  EXPECT_NEAR(pi.circleRadii[1], 0.45, 1e-9);
  EXPECT_EQ(pi.circleCounts[0], 4);
  EXPECT_EQ(pi.circleCounts[1], 3);
  // fmax is on the innermost circle of F'.
  EXPECT_NEAR(pi.fmaxRadius, 0.45, 1e-9);
  // Sum of circle counts = n - 1.
  int total = 0;
  for (int c : pi.circleCounts) total += c;
  EXPECT_EQ(total, 7);
}

TEST(AnalysisTest, PatternInfoFsIsMaxViewNonHolder) {
  for (const auto& name : io::allPatternNames()) {
    const Configuration f = io::patternByName(name, 9);
    Analysis a(makeSnap(f, f));
    const PatternInfo& pi = a.patternInfo();
    ASSERT_TRUE(pi.valid) << name;
    EXPECT_FALSE(geom::holdsSec(pi.f.span(), pi.fs)) << name;
    // fs has max view among non-holders: it appears in the list.
    EXPECT_NE(std::find(pi.maxViewNonHolders.begin(),
                        pi.maxViewNonHolders.end(), pi.fs),
              pi.maxViewNonHolders.end())
        << name;
  }
}

TEST(AnalysisTest, LFIsSecondDistinctRing) {
  // star: rings 0.45 and 1.0 -> l_F = 1.0 (second closest distinct).
  Analysis a(makeSnap(io::starPattern(8), io::starPattern(8)));
  EXPECT_NEAR(a.lF(), 1.0, 1e-9);
  // polygon: single ring -> l_F equals the ring itself.
  Analysis b(makeSnap(io::polygonPattern(8), io::polygonPattern(8)));
  EXPECT_NEAR(b.lF(), 1.0, 1e-9);
}

TEST(AnalysisTest, CenterPRegularAware) {
  // Whole-config equiangular set with off-origin grid center: centerP must
  // report the grid center, not the SEC center. Radii are clustered so no
  // robot qualifies as selected (centerP short-circuits to the origin when
  // a selected robot exists, because the run is then in the DPF regime).
  const double radii[] = {2.0, 2.2, 1.8, 1.9, 2.4, 2.1, 2.3};
  const Configuration p = config::equiangularSet(radii, {0.3, -0.2}, 0.4);
  Analysis a(makeSnap(p, io::starPattern(7)));
  ASSERT_TRUE(a.ok());
  // In normalized coordinates the grid center maps through the same
  // normalization; verify by re-deriving from the regular set.
  ASSERT_TRUE(a.regularSet().has_value());
  EXPECT_TRUE(geom::nearlyEqual(a.centerP(), a.regularSet()->grid.center,
                                geom::Tol{1e-7, 1e-7}));
  EXPECT_GT(a.centerP().norm(), 1e-4);  // genuinely off the SEC center
}

}  // namespace
}  // namespace apf::core
