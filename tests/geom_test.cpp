#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "geom/angle.h"
#include "geom/path.h"
#include "geom/sec.h"
#include "geom/transform.h"
#include "geom/weber.h"

namespace apf::geom {
namespace {

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{1, 2}, b{3, -1};
  EXPECT_EQ(a + b, (Vec2{4, 1}));
  EXPECT_EQ(a - b, (Vec2{-2, 3}));
  EXPECT_EQ(a * 2.0, (Vec2{2, 4}));
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
  EXPECT_DOUBLE_EQ(a.cross(b), -7.0);
  EXPECT_DOUBLE_EQ((Vec2{3, 4}).norm(), 5.0);
}

TEST(Vec2Test, RotationPreservesNormAndComposes) {
  const Vec2 v{2, 1};
  const Vec2 r = v.rotated(kPi / 3).rotated(-kPi / 3);
  EXPECT_NEAR(r.x, v.x, 1e-12);
  EXPECT_NEAR(r.y, v.y, 1e-12);
  EXPECT_NEAR(v.rotated(kPi / 2).x, -v.y, 1e-12);
  EXPECT_NEAR(v.rotated(kPi / 2).y, v.x, 1e-12);
}

TEST(AngleTest, Norm2PiRange) {
  for (double a : {-10.0, -kPi, 0.0, 1.0, kTwoPi, 17.0}) {
    const double r = norm2pi(a);
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, kTwoPi);
    EXPECT_NEAR(std::remainder(r - a, kTwoPi), 0.0, 1e-9);
  }
}

TEST(AngleTest, AngCcwAndMin) {
  const Vec2 v{0, 0};
  EXPECT_NEAR(angCcw({1, 0}, v, {0, 1}), kPi / 2, 1e-12);
  EXPECT_NEAR(angCcw({0, 1}, v, {1, 0}), 3 * kPi / 2, 1e-12);
  EXPECT_NEAR(angMin({0, 1}, v, {1, 0}), kPi / 2, 1e-12);
  EXPECT_NEAR(angMin({1, 0}, v, {-1, 0}), kPi, 1e-12);
}

TEST(AngleTest, AngDist) {
  EXPECT_NEAR(angDist(0.1, kTwoPi - 0.1), 0.2, 1e-12);
  EXPECT_NEAR(angDist(1.0, 1.0 + kPi), kPi, 1e-12);
}

TEST(SimilarityTest, ComposeMatchesSequentialApplication) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> u(-3, 3);
  for (int it = 0; it < 200; ++it) {
    const Similarity a(norm2pi(u(rng)), std::exp(u(rng) / 3), it % 2 == 0,
                       {u(rng), u(rng)});
    const Similarity b(norm2pi(u(rng)), std::exp(u(rng) / 3), it % 3 == 0,
                       {u(rng), u(rng)});
    const Vec2 p{u(rng), u(rng)};
    const Vec2 viaCompose = (a * b).apply(p);
    const Vec2 sequential = a.apply(b.apply(p));
    EXPECT_NEAR(viaCompose.x, sequential.x, 1e-9);
    EXPECT_NEAR(viaCompose.y, sequential.y, 1e-9);
  }
}

TEST(SimilarityTest, InverseRoundTrips) {
  std::mt19937 rng(8);
  std::uniform_real_distribution<double> u(-3, 3);
  for (int it = 0; it < 200; ++it) {
    const Similarity t(norm2pi(u(rng)), std::exp(u(rng) / 3), it % 2 == 1,
                       {u(rng), u(rng)});
    const Vec2 p{u(rng), u(rng)};
    const Vec2 back = t.inverse().apply(t.apply(p));
    EXPECT_NEAR(back.x, p.x, 1e-9);
    EXPECT_NEAR(back.y, p.y, 1e-9);
  }
}

TEST(SecTest, TwoPoints) {
  const Vec2 pts[] = {{-1, 0}, {1, 0}};
  const Circle c = smallestEnclosingCircle(pts);
  EXPECT_NEAR(c.center.x, 0.0, 1e-12);
  EXPECT_NEAR(c.radius, 1.0, 1e-12);
}

TEST(SecTest, EquilateralTriangle) {
  std::vector<Vec2> pts;
  for (int k = 0; k < 3; ++k) {
    pts.push_back(Vec2{std::cos(kTwoPi * k / 3), std::sin(kTwoPi * k / 3)});
  }
  const Circle c = smallestEnclosingCircle(pts);
  EXPECT_NEAR(c.center.norm(), 0.0, 1e-9);
  EXPECT_NEAR(c.radius, 1.0, 1e-9);
}

TEST(SecTest, InteriorPointsDoNotMatter) {
  std::vector<Vec2> pts = {{-2, 0}, {2, 0}, {0, 0.5}, {0.3, -0.4}, {1, 1}};
  const Circle c = smallestEnclosingCircle(pts);
  for (const Vec2& p : pts) EXPECT_TRUE(c.contains(p));
  EXPECT_NEAR(c.radius, 2.0, 1e-9);
}

TEST(SecTest, RandomPointsAllContainedAndMinimal) {
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> u(-10, 10);
  for (int it = 0; it < 50; ++it) {
    std::vector<Vec2> pts;
    for (int i = 0; i < 40; ++i) pts.push_back({u(rng), u(rng)});
    const Circle c = smallestEnclosingCircle(pts);
    int onBoundary = 0;
    for (const Vec2& p : pts) {
      EXPECT_LE(dist(p, c.center), c.radius + 1e-9);
      if (c.onBoundary(p, Tol{1e-7, 1e-7})) ++onBoundary;
    }
    // Minimality: the SEC is determined by >= 2 boundary points.
    EXPECT_GE(onBoundary, 2);
  }
}

TEST(SecTest, HoldersDetected) {
  // Equilateral triangle plus center point: each vertex holds the SEC
  // (removing one shrinks the circle), the center point does not. Note a
  // square's corners would NOT hold: the opposite pair still spans the
  // diameter.
  std::vector<Vec2> pts;
  for (int k = 0; k < 3; ++k) {
    pts.push_back(Vec2{std::cos(kTwoPi * k / 3), std::sin(kTwoPi * k / 3)});
  }
  pts.push_back({0, 0});
  EXPECT_TRUE(holdsSec(pts, 0));
  EXPECT_TRUE(holdsSec(pts, 1));
  EXPECT_FALSE(holdsSec(pts, 3));
  std::vector<Vec2> square = {{1, 1}, {-1, 1}, {-1, -1}, {1, -1}};
  EXPECT_FALSE(holdsSec(square, 0));
  // A hexagon's vertices individually do NOT hold the circle (removing one
  // leaves an opposite pair at full diameter).
  std::vector<Vec2> hex;
  for (int k = 0; k < 6; ++k) {
    hex.push_back(Vec2{std::cos(kTwoPi * k / 6), std::sin(kTwoPi * k / 6)});
  }
  for (std::size_t i = 0; i < hex.size(); ++i) EXPECT_FALSE(holdsSec(hex, i));
}

TEST(WeberTest, RegularPolygonCenter) {
  for (int m : {3, 5, 8, 13}) {
    std::vector<Vec2> pts;
    for (int k = 0; k < m; ++k) {
      const double a = 0.37 + kTwoPi * k / m;
      pts.push_back(Vec2{4 + 2 * std::cos(a), -1 + 2 * std::sin(a)});
    }
    const Vec2 w = weberPoint(pts);
    EXPECT_NEAR(w.x, 4.0, 1e-9) << "m=" << m;
    EXPECT_NEAR(w.y, -1.0, 1e-9) << "m=" << m;
  }
}

TEST(WeberTest, EquiangularVaryingRadiiCenter) {
  // Equiangular but different radii: the grid center is still the Weber
  // point (direction unit vectors sum to zero).
  std::vector<Vec2> pts;
  const double radii[] = {1.0, 2.5, 0.7, 1.4, 3.0, 1.1, 0.9};
  for (int k = 0; k < 7; ++k) {
    const double a = 1.1 + kTwoPi * k / 7;
    pts.push_back(Vec2{radii[k] * std::cos(a), radii[k] * std::sin(a)});
  }
  const Vec2 w = weberPoint(pts);
  EXPECT_NEAR(w.norm(), 0.0, 1e-8);
}

TEST(WeberTest, MedianOfCollinearOddPoints) {
  std::vector<Vec2> pts = {{0, 0}, {1, 0}, {5, 0}, {2, 0}, {10, 0}};
  const Vec2 w = weberPoint(pts);
  EXPECT_NEAR(w.x, 2.0, 1e-6);
  EXPECT_NEAR(w.y, 0.0, 1e-9);
}

TEST(GridFitTest, RecoversPerturbedCenter) {
  // Build an exact 9-ray equiangular set, seed the fit with a wrong center,
  // and check recovery.
  std::vector<Vec2> pts;
  std::vector<int> rays;
  const double radii[] = {1, 2, 1.5, 0.8, 2.2, 1.9, 1.2, 0.6, 1.7};
  for (int k = 0; k < 9; ++k) {
    const double a = 0.2 + kTwoPi * k / 9;
    pts.push_back(Vec2{3 + radii[k] * std::cos(a), 7 + radii[k] * std::sin(a)});
    rays.push_back(k);
  }
  AngularGrid init;
  init.center = {3.05, 6.96};
  init.theta0 = 0.21;
  init.numRays = 9;
  const auto fit = fitAngularGrid(pts, rays, 9, false, init);
  ASSERT_TRUE(fit.has_value());
  EXPECT_LT(fit->maxResidual, 1e-10);
  EXPECT_NEAR(fit->grid.center.x, 3.0, 1e-9);
  EXPECT_NEAR(fit->grid.center.y, 7.0, 1e-9);
  EXPECT_NEAR(fit->grid.theta0, 0.2, 1e-9);
}

TEST(GridFitTest, BiangularFitRecoversAlpha) {
  std::vector<Vec2> pts;
  std::vector<int> rays;
  const int m = 8;
  const double alpha = 0.4, beta = 2.0 * kTwoPi / m - alpha;
  double a = 1.0;
  for (int k = 0; k < m; ++k) {
    pts.push_back(Vec2{2 * std::cos(a) - 1, 2 * std::sin(a) + 5});
    rays.push_back(k);
    a += (k % 2 == 0) ? alpha : beta;
  }
  AngularGrid init;
  init.center = {-1.03, 5.02};
  init.theta0 = 1.02;
  init.alpha = 0.45;
  init.numRays = m;
  const auto fit = fitAngularGrid(pts, rays, m, true, init);
  ASSERT_TRUE(fit.has_value());
  EXPECT_LT(fit->maxResidual, 1e-10);
  EXPECT_NEAR(fit->grid.alpha, alpha, 1e-9);
  EXPECT_NEAR(fit->grid.center.x, -1.0, 1e-9);
  EXPECT_NEAR(fit->grid.center.y, 5.0, 1e-9);
}

TEST(PathTest, LineAndArcLengths) {
  Path p(Vec2{1, 0});
  p.lineTo({3, 0});
  p.arcAround({3, 1}, kPi / 2);  // quarter turn, radius 1
  EXPECT_NEAR(p.length(), 2.0 + kPi / 2, 1e-12);
  EXPECT_NEAR(p.pointAt(1.0).x, 2.0, 1e-12);
  const Vec2 end = p.end();
  EXPECT_NEAR(dist(end, {3, 1}), 1.0, 1e-12);
}

TEST(PathTest, ArcStaysOnCircle) {
  Path p(Vec2{2, 0});
  p.arcAround({0, 0}, 1.7);
  for (double s = 0; s <= p.length(); s += p.length() / 20) {
    EXPECT_NEAR(p.pointAt(s).norm(), 2.0, 1e-12);
  }
}

TEST(PathTest, TransformedReflectsArcSweep) {
  Path p(Vec2{1, 0});
  p.arcAround({0, 0}, kPi / 2);  // ends at (0, 1)
  const Path q = p.transformed(Similarity::mirrorX());
  EXPECT_NEAR(q.end().x, 0.0, 1e-12);
  EXPECT_NEAR(q.end().y, -1.0, 1e-12);
  // Midpoint also mirrored.
  EXPECT_NEAR(q.pointAt(q.length() / 2).y, -p.pointAt(p.length() / 2).y,
              1e-12);
}

TEST(PathTest, PointAtClampsOutOfRange) {
  Path p(Vec2{0, 0});
  p.lineTo({1, 0});
  EXPECT_EQ(p.pointAt(-1.0), (Vec2{0, 0}));
  EXPECT_EQ(p.pointAt(99.0), (Vec2{1, 0}));
}

}  // namespace
}  // namespace apf::geom
