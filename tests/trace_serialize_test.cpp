#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "config/generator.h"
#include "config/similarity.h"
#include "core/form_pattern.h"
#include "io/patterns.h"
#include "io/serialize.h"
#include "sim/engine.h"
#include "sim/trace.h"

namespace apf {
namespace {

using config::Configuration;

TEST(SerializeTest, RoundTripFullPrecision) {
  config::Rng rng(1);
  const Configuration c = config::randomConfiguration(9, rng, 3.0, 0.01);
  std::ostringstream os;
  io::writeConfiguration(os, c);
  const Configuration back = io::parseConfiguration(os.str());
  ASSERT_EQ(back.size(), c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(back[i], c[i]) << i;  // bit-exact round trip
  }
}

TEST(SerializeTest, CommentsAndBlanksSkipped) {
  const Configuration c = io::parseConfiguration(
      "# a pattern\n"
      "1.5 2.5\n"
      "\n"
      "3 4 # trailing comment\n");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0], (geom::Vec2{1.5, 2.5}));
  EXPECT_EQ(c[1], (geom::Vec2{3, 4}));
}

TEST(SerializeTest, MalformedInputThrows) {
  EXPECT_THROW(io::parseConfiguration("1.0\n"), std::invalid_argument);
  EXPECT_THROW(io::parseConfiguration("1 2 3\n"), std::invalid_argument);
  EXPECT_THROW(io::loadConfiguration("/nonexistent/nope.txt"),
               std::invalid_argument);
}

TEST(SerializeTest, FileRoundTrip) {
  const std::string path = "/tmp/apf_serialize_test.txt";
  const Configuration c = io::starPattern(7);
  io::saveConfiguration(path, c);
  const Configuration back = io::loadConfiguration(path);
  EXPECT_TRUE(config::coincident(c, back));
  std::remove(path.c_str());
}

TEST(TraceTest, RecordsEveryPositionChange) {
  core::FormPatternAlgorithm algo;
  config::Rng rng(2);
  const Configuration start = config::randomConfiguration(8, rng, 4.0, 0.1);
  const Configuration pattern = io::starPattern(8);
  sim::EngineOptions opts;
  opts.seed = 3;
  opts.maxEvents = 300000;
  opts.sched.kind = sched::SchedulerKind::SSync;
  sim::Engine eng(start, pattern, algo, opts);
  sim::Trace trace;
  trace.attach(eng);
  const auto res = eng.run();
  ASSERT_TRUE(res.success);
  EXPECT_FALSE(trace.steps().empty());
  // Trails end at the final positions.
  const auto trails = trace.trails();
  ASSERT_EQ(trails.size(), start.size());
  for (std::size_t i = 0; i < trails.size(); ++i) {
    EXPECT_EQ(trails[i].back(), eng.positions()[i]) << i;
    EXPECT_EQ(trails[i].front(), start[i]) << i;
  }
  // The trace records positions per move event, so its polyline length is
  // a chord-wise LOWER bound on the engine's arclength metric (arcs are
  // recorded by endpoints), and should be the bulk of it.
  double total = 0.0;
  for (double d : trace.distances()) total += d;
  EXPECT_LE(total, res.metrics.distance + 1e-6);
  EXPECT_GE(total, 0.5 * res.metrics.distance);
  // Events are non-decreasing.
  for (std::size_t k = 1; k < trace.steps().size(); ++k) {
    EXPECT_LE(trace.steps()[k - 1].event, trace.steps()[k].event);
  }
}

TEST(TraceTest, CsvHasHeaderAndRows) {
  core::FormPatternAlgorithm algo;
  config::Rng rng(4);
  const Configuration start = config::randomConfiguration(7, rng, 3.0, 0.1);
  sim::EngineOptions opts;
  opts.seed = 5;
  opts.maxEvents = 200000;
  opts.sched.kind = sched::SchedulerKind::FSync;
  sim::Engine eng(start, io::gridPattern(7), algo, opts);
  sim::Trace trace;
  trace.attach(eng);
  eng.run();
  const std::string path = "/tmp/apf_trace_test.csv";
  trace.writeCsv(path);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "event,robot,x,y,phase");
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, trace.steps().size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace apf
