#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "config/generator.h"
#include "config/similarity.h"
#include "core/form_pattern.h"
#include "core/phases.h"
#include "io/patterns.h"
#include "io/serialize.h"
#include "sim/engine.h"
#include "sim/trace.h"

namespace apf {
namespace {

using config::Configuration;

TEST(SerializeTest, RoundTripFullPrecision) {
  config::Rng rng(1);
  const Configuration c = config::randomConfiguration(9, rng, 3.0, 0.01);
  std::ostringstream os;
  io::writeConfiguration(os, c);
  const Configuration back = io::parseConfiguration(os.str());
  ASSERT_EQ(back.size(), c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(back[i], c[i]) << i;  // bit-exact round trip
  }
}

TEST(SerializeTest, CommentsAndBlanksSkipped) {
  const Configuration c = io::parseConfiguration(
      "# a pattern\n"
      "1.5 2.5\n"
      "\n"
      "3 4 # trailing comment\n");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0], (geom::Vec2{1.5, 2.5}));
  EXPECT_EQ(c[1], (geom::Vec2{3, 4}));
}

TEST(SerializeTest, MalformedInputThrows) {
  EXPECT_THROW(io::parseConfiguration("1.0\n"), std::invalid_argument);
  EXPECT_THROW(io::parseConfiguration("1 2 3\n"), std::invalid_argument);
  EXPECT_THROW(io::loadConfiguration("/nonexistent/nope.txt"),
               std::invalid_argument);
}

TEST(SerializeTest, FileRoundTrip) {
  const std::string path = "/tmp/apf_serialize_test.txt";
  const Configuration c = io::starPattern(7);
  io::saveConfiguration(path, c);
  const Configuration back = io::loadConfiguration(path);
  EXPECT_TRUE(config::coincident(c, back));
  std::remove(path.c_str());
}

TEST(TraceTest, RecordsEveryPositionChange) {
  core::FormPatternAlgorithm algo;
  config::Rng rng(2);
  const Configuration start = config::randomConfiguration(8, rng, 4.0, 0.1);
  const Configuration pattern = io::starPattern(8);
  sim::EngineOptions opts;
  opts.seed = 3;
  opts.maxEvents = 300000;
  opts.sched.kind = sched::SchedulerKind::SSync;
  sim::Engine eng(start, pattern, algo, opts);
  sim::Trace trace;
  trace.attach(eng);
  const auto res = eng.run();
  ASSERT_TRUE(res.success);
  EXPECT_FALSE(trace.steps().empty());
  // Trails end at the final positions.
  const auto trails = trace.trails();
  ASSERT_EQ(trails.size(), start.size());
  for (std::size_t i = 0; i < trails.size(); ++i) {
    EXPECT_EQ(trails[i].back(), eng.positions()[i]) << i;
    EXPECT_EQ(trails[i].front(), start[i]) << i;
  }
  // The trace records positions per move event, so its polyline length is
  // a chord-wise LOWER bound on the engine's arclength metric (arcs are
  // recorded by endpoints), and should be the bulk of it.
  double total = 0.0;
  for (double d : trace.distances()) total += d;
  EXPECT_LE(total, res.metrics.distance + 1e-6);
  EXPECT_GE(total, 0.5 * res.metrics.distance);
  // Events are non-decreasing.
  for (std::size_t k = 1; k < trace.steps().size(); ++k) {
    EXPECT_LE(trace.steps()[k - 1].event, trace.steps()[k].event);
  }
}

/// Walks straight toward the farthest observed robot, half the distance
/// (same deterministic algorithm as scripted_test.cpp).
class ChaseFarthest : public sim::Algorithm {
 public:
  sim::Action compute(const sim::Snapshot& snap,
                      sched::RandomSource&) const override {
    double best = -1;
    geom::Vec2 target{};
    for (const auto& q : snap.robots.points()) {
      if (q.norm() > best) {
        best = q.norm();
        target = q;
      }
    }
    geom::Path p{geom::Vec2{}};
    if (best > 1e-9) p.lineTo(target * 0.5);
    return sim::Action{p, core::kBaseline};
  }
  std::string name() const override { return "chase"; }
};

TEST(TraceTest, TrailsAndDistancesExactOnScriptedRun) {
  // Fully scripted, frame randomization off: every recorded position is
  // known in closed form, so trails() and distances() are checked EXACTLY.
  using Op = sched::ScriptedEvent::Op;
  const Configuration start({{0, 0}, {10, 0}});
  ChaseFarthest algo;
  sim::EngineOptions opts;
  opts.sched.kind = sched::SchedulerKind::Scripted;
  opts.sched.delta = 0.5;
  opts.randomizeFrames = false;
  opts.maxEvents = 8;
  opts.script = {
      {0, Op::Look, 0},
      {0, Op::Compute, 0},  // path (0,0) -> (5,0), length 5
      {0, Op::Move, 2.0},   // reaches (2,0)
      {0, Op::Move, 0},     // full move: reaches (5,0), cycle complete
      {1, Op::Look, 0},     // observes robot 0 at (5,0)
      {1, Op::Compute, 0},  // farthest in local frame: (-5,0) -> target
                            // (-2.5,0) local = (7.5,0) world
      {1, Op::Move, 1.0},   // reaches (9,0)
      {1, Op::Move, 0},     // reaches (7.5,0)
  };
  sim::Engine eng(start, start, algo, opts);
  sim::Trace trace;
  trace.attach(eng);
  while (eng.metrics().events < opts.maxEvents && eng.step()) {
  }

  const auto trails = trace.trails();
  ASSERT_EQ(trails.size(), 2u);
  const std::vector<geom::Vec2> expect0 = {{0, 0}, {2, 0}, {5, 0}};
  const std::vector<geom::Vec2> expect1 = {{10, 0}, {9, 0}, {7.5, 0}};
  ASSERT_EQ(trails[0].size(), expect0.size());
  ASSERT_EQ(trails[1].size(), expect1.size());
  for (std::size_t k = 0; k < expect0.size(); ++k) {
    EXPECT_NEAR(trails[0][k].x, expect0[k].x, 1e-12) << k;
    EXPECT_NEAR(trails[0][k].y, expect0[k].y, 1e-12) << k;
  }
  for (std::size_t k = 0; k < expect1.size(); ++k) {
    EXPECT_NEAR(trails[1][k].x, expect1[k].x, 1e-12) << k;
    EXPECT_NEAR(trails[1][k].y, expect1[k].y, 1e-12) << k;
  }
  const auto dists = trace.distances();
  ASSERT_EQ(dists.size(), 2u);
  EXPECT_NEAR(dists[0], 5.0, 1e-12);
  EXPECT_NEAR(dists[1], 2.5, 1e-12);
  EXPECT_NEAR(eng.metrics().distance, 7.5, 1e-12);
}

TEST(TraceTest, CsvHasHeaderAndRows) {
  core::FormPatternAlgorithm algo;
  config::Rng rng(4);
  const Configuration start = config::randomConfiguration(7, rng, 3.0, 0.1);
  sim::EngineOptions opts;
  opts.seed = 5;
  opts.maxEvents = 200000;
  opts.sched.kind = sched::SchedulerKind::FSync;
  sim::Engine eng(start, io::gridPattern(7), algo, opts);
  sim::Trace trace;
  trace.attach(eng);
  eng.run();
  const std::string path = "/tmp/apf_trace_test.csv";
  trace.writeCsv(path);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "event,robot,x,y,phase");
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, trace.steps().size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace apf
