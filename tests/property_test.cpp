/// Property-based sweeps (TEST_P over seeds): invariants of the geometry
/// kernel, the detection machinery (including the paper's Property 2), and
/// the engine. Each property runs across many random instances.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "config/generator.h"
#include "config/rays.h"
#include "config/regular.h"
#include "config/shifted.h"
#include "config/similarity.h"
#include "config/symmetry.h"
#include "config/view.h"
#include "core/form_pattern.h"
#include "geom/angle.h"
#include "geom/sec.h"
#include "geom/weber.h"
#include "io/patterns.h"
#include "sim/engine.h"

namespace apf {
namespace {

using config::Configuration;
using geom::Vec2;

class Seeded : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::uint64_t seed() const { return GetParam(); }
};

// ------------------------------------------------------------ geometry

using SecProperty = Seeded;

TEST_P(SecProperty, CoversAllAndIsMinimalVsBruteForce) {
  config::Rng rng(seed());
  std::uniform_int_distribution<int> un(3, 12);
  const int n = un(rng);
  const Configuration p = config::randomConfiguration(n, rng, 5.0, 1e-3);
  const geom::Circle c = geom::smallestEnclosingCircle(p.span());
  for (const Vec2& q : p.points()) {
    EXPECT_LE(geom::dist(q, c.center), c.radius + 1e-9);
  }
  // Brute force over all 2- and 3-subsets: no smaller covering circle.
  double best = c.radius;
  const auto& pts = p.points();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      const geom::Circle two{geom::midpoint(pts[i], pts[j]),
                             geom::dist(pts[i], pts[j]) / 2};
      bool covers = true;
      for (const Vec2& q : pts) {
        if (geom::dist(q, two.center) > two.radius + 1e-9) covers = false;
      }
      if (covers) best = std::min(best, two.radius);
    }
  }
  EXPECT_GE(best, c.radius - 1e-7);
}

TEST_P(SecProperty, EquivariantUnderRigidMotion) {
  config::Rng rng(seed());
  const Configuration p = config::randomConfiguration(10, rng, 4.0, 1e-3);
  std::uniform_real_distribution<double> u(-3, 3);
  const geom::Similarity t(geom::norm2pi(u(rng)), std::exp(u(rng) / 4),
                           seed() % 2 == 0, {u(rng), u(rng)});
  const geom::Circle a = geom::smallestEnclosingCircle(p.span());
  const geom::Circle b =
      geom::smallestEnclosingCircle(p.transformed(t).span());
  EXPECT_NEAR(b.radius, a.radius * t.scale(), 1e-7);
  EXPECT_LT(geom::dist(b.center, t.apply(a.center)), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SecProperty, ::testing::Range(std::uint64_t{1}, std::uint64_t{21}));

using WeberProperty = Seeded;

TEST_P(WeberProperty, StationaryAndEquivariant) {
  config::Rng rng(seed());
  const Configuration p = config::randomConfiguration(9, rng, 3.0, 1e-3);
  const Vec2 w = geom::weberPoint(p.span());
  // Stationarity. When the median coincides with an input point, the
  // optimality condition is |sum of unit pulls from the OTHERS| <= 1
  // (subgradient); otherwise the full gradient vanishes.
  Vec2 g{};
  bool atPoint = false;
  for (const Vec2& q : p.points()) {
    if (geom::dist(q, w) < 1e-9) {
      atPoint = true;
      continue;
    }
    g += (q - w).normalized();
  }
  if (atPoint) {
    EXPECT_LE(g.norm(), 1.0 + 1e-6);
  } else {
    EXPECT_LT(g.norm(), 1e-4);
  }
  // Rotation equivariance.
  const geom::Similarity rot = geom::Similarity::rotation(1.0 + 0.1 * seed());
  const Vec2 w2 = geom::weberPoint(p.transformed(rot).span());
  EXPECT_LT(geom::dist(w2, rot.apply(w)), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, WeberProperty, ::testing::Range(std::uint64_t{1}, std::uint64_t{16}));

// ----------------------------------------------------------- detection

using RegularProperty = Seeded;

TEST_P(RegularProperty, RegularSetInvariantUnderRadialMoves) {
  // Paper Property 2 (M1): radial moves of the regular set's members keep
  // the same regular set (same robots, same center).
  config::Rng rng(seed());
  const int rho = 3 + static_cast<int>(seed() % 4);
  // Three rings: two rings would form a bi-angled WHOLE-configuration set
  // (any two concentric rho-gons are bi-angled); with three random phases
  // the regular set is the proper subset we want to track.
  Configuration p = config::symmetricConfiguration(rho, 3, rng);
  const auto before = config::regularSetOf(p);
  ASSERT_TRUE(before.has_value());
  ASSERT_FALSE(before->wholeConfig);
  const Vec2 c = before->grid.center;
  // Move each member radially by a random factor in [0.7, 0.95], keeping
  // them the innermost robots (their class is the inner ring).
  std::uniform_real_distribution<double> u(0.7, 0.95);
  const double factor = u(rng);
  for (std::size_t i : before->indices) {
    p[i] = c + (p[i] - c) * factor;
  }
  const auto after = config::regularSetOf(p);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->indices.size(), before->indices.size());
  std::vector<std::size_t> a = before->indices, b = after->indices;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  EXPECT_LT(geom::dist(after->grid.center, c), 1e-7);
}

TEST_P(RegularProperty, RhoDividesRobotCount) {
  config::Rng rng(seed());
  const Configuration p = config::symmetricConfiguration(
      2 + static_cast<int>(seed() % 5), 2 + static_cast<int>(seed() % 2),
      rng);
  const int rho = config::symmetricity(p, {});
  EXPECT_EQ(p.size() % rho, 0u);
}

TEST_P(RegularProperty, ShiftedDetectionSurvivesM3M4Moves) {
  // Property 2 (M3/M4): the shifted robot may move on or inside its circle
  // (keeping 0 < eps <= 1/4) and the others may move radially outside the
  // shifted robot's disc; the same shifted set must still be detected.
  const int m = 7 + static_cast<int>(seed() % 5);
  std::vector<double> radii(m, 2.0);
  radii[0] = 1.0;
  Configuration p = config::equiangularSet(radii, {}, 0.1 * seed());
  const double alpha = geom::kTwoPi / m;
  p[0] = p[0].rotated(0.125 * alpha);
  const auto before = config::shiftedRegularSetOf(p);
  ASSERT_TRUE(before.has_value());
  ASSERT_EQ(before->shiftedRobot, 0u);
  // M3: shifted robot inward; M4: one other member slightly outward.
  p[0] = p[0] * 0.8;
  p[2] = p[2] * 1.1;
  const auto after = config::shiftedRegularSetOf(p);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->shiftedRobot, 0u);
  EXPECT_NEAR(after->epsilon, before->epsilon, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RegularProperty,
                         ::testing::Range(std::uint64_t{1}, std::uint64_t{13}));

using SimilarityProperty = Seeded;

TEST_P(SimilarityProperty, EquivalenceRelation) {
  config::Rng rng(seed());
  const Configuration a = config::randomConfiguration(8, rng, 2.0, 1e-3);
  std::uniform_real_distribution<double> u(-2, 2);
  const geom::Similarity t1(geom::norm2pi(u(rng)), std::exp(u(rng) / 3),
                            seed() % 2 == 1, {u(rng), u(rng)});
  const geom::Similarity t2(geom::norm2pi(u(rng)), std::exp(u(rng) / 3),
                            seed() % 3 == 1, {u(rng), u(rng)});
  const Configuration b = a.transformed(t1);
  const Configuration c = b.transformed(t2);
  EXPECT_TRUE(config::similar(a, a));                    // reflexive
  EXPECT_TRUE(config::similar(a, b) && config::similar(b, a));  // symmetric
  EXPECT_TRUE(config::similar(a, c));                    // transitive chain
}

TEST_P(SimilarityProperty, PerturbationBreaksSimilarity) {
  config::Rng rng(seed());
  const Configuration a = config::randomConfiguration(8, rng, 2.0, 0.05);
  Configuration b = a;
  b[seed() % b.size()] += Vec2{0.02, -0.013};  // well above tolerance
  EXPECT_FALSE(config::similar(a, b, geom::Tol{1e-6, 1e-6}));
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimilarityProperty,
                         ::testing::Range(std::uint64_t{1}, std::uint64_t{16}));

// -------------------------------------------------------------- engine

using EngineProperty = Seeded;

TEST_P(EngineProperty, RunsAreDeterministicGivenSeed) {
  core::FormPatternAlgorithm algo;
  config::Rng rng(seed());
  const Configuration start = config::randomConfiguration(8, rng, 4.0, 0.1);
  const Configuration pattern = io::randomPatternByName(8, seed());
  sim::EngineOptions opts;
  opts.seed = seed() * 31 + 7;
  opts.maxEvents = 300000;
  opts.sched.kind = sched::SchedulerKind::Async;
  sim::Engine a(start, pattern, algo, opts);
  sim::Engine b(start, pattern, algo, opts);
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.success, rb.success);
  EXPECT_EQ(ra.metrics.events, rb.metrics.events);
  EXPECT_EQ(ra.metrics.randomBits, rb.metrics.randomBits);
  for (std::size_t i = 0; i < start.size(); ++i) {
    EXPECT_EQ(a.positions()[i], b.positions()[i]);
  }
}

TEST_P(EngineProperty, AlgorithmIsFrameCovariant) {
  // The same world snapshot seen through two different private frames must
  // produce the same WORLD action (path endpoints map through the frames).
  core::FormPatternAlgorithm algo;
  config::Rng rng(seed());
  const Configuration world = config::randomConfiguration(8, rng, 3.0, 0.1);
  const Configuration pattern = io::starPattern(8);
  std::uniform_real_distribution<double> u(0, 6.28);
  const geom::Similarity frame(u(rng), std::exp(u(rng) / 8 - 0.4),
                               seed() % 2 == 0, {});
  for (std::size_t i = 0; i < world.size(); ++i) {
    sim::Snapshot plain;
    std::vector<Vec2> local;
    for (const auto& q : world.points()) local.push_back(q - world[i]);
    plain.robots = Configuration(local);
    plain.selfIndex = i;
    plain.pattern = pattern;

    sim::Snapshot framed = plain;
    framed.robots = plain.robots.transformed(frame);

    sched::RandomSource r1(99), r2(99);
    const auto a1 = algo.compute(plain, r1);
    const auto a2 = algo.compute(framed, r2);
    ASSERT_EQ(a1.isMove(), a2.isMove()) << "robot " << i;
    ASSERT_EQ(a1.phaseTag, a2.phaseTag) << "robot " << i;
    if (a1.isMove()) {
      const Vec2 expect = frame.apply(a1.path.end());
      EXPECT_LT(geom::dist(expect, a2.path.end()), 1e-6) << "robot " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EngineProperty, ::testing::Range(std::uint64_t{1}, std::uint64_t{11}));

// -------------------------------------------------------------- rays

using RaysProperty = Seeded;

TEST_P(RaysProperty, AlphaMinBoundsAndSymmetry) {
  config::Rng rng(seed());
  const Configuration p = config::randomConfiguration(9, rng, 2.0, 1e-3);
  const Vec2 c = p.sec().center;
  const double am = config::alphaMin(p, c);
  EXPECT_GT(am, 0.0);
  EXPECT_LE(am, geom::kTwoPi / p.size() + 1e-9);  // pigeonhole
  // alphaMinAt of an existing robot equals its min gap to the others.
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double ai = config::alphaMinAt(p[i], p, c);
    EXPECT_GE(ai, am - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RaysProperty, ::testing::Range(std::uint64_t{1}, std::uint64_t{11}));

}  // namespace
}  // namespace apf
