/// Edge cases of the geometry kernel: angle wraparound, degenerate inputs
/// to the SEC and grid fits, multi-segment paths, transform algebra.

#include <gtest/gtest.h>

#include <cmath>

#include "geom/angle.h"
#include "geom/path.h"
#include "geom/sec.h"
#include "geom/transform.h"
#include "geom/weber.h"

namespace apf::geom {
namespace {

TEST(AngleEdgeTest, ExactBoundaries) {
  EXPECT_DOUBLE_EQ(norm2pi(0.0), 0.0);
  EXPECT_LT(norm2pi(kTwoPi), 1e-15);
  EXPECT_NEAR(norm2pi(-kTwoPi), 0.0, 1e-15);
  EXPECT_NEAR(norm2pi(3 * kTwoPi + 1.0), 1.0, 1e-12);
  EXPECT_NEAR(norm2pi(-7 * kTwoPi - 1.0), kTwoPi - 1.0, 1e-11);
  EXPECT_NEAR(normPi(kPi), kPi, 1e-15);          // pi maps to +pi
  EXPECT_NEAR(normPi(-kPi), kPi, 1e-15);         // (-pi, pi] convention
  EXPECT_NEAR(normPi(kPi + 0.1), -kPi + 0.1, 1e-12);
}

TEST(AngleEdgeTest, HugeInputsStayNormalized) {
  for (double a : {1e8, -1e8, 1e12, -1e12}) {
    const double r = norm2pi(a);
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, kTwoPi);
  }
}

TEST(AngleEdgeTest, CcwSweepAndDistConsistent) {
  for (double a = 0.0; a < kTwoPi; a += 0.7) {
    for (double b = 0.0; b < kTwoPi; b += 0.9) {
      const double s = ccwSweep(a, b);
      EXPECT_GE(s, 0.0);
      EXPECT_LT(s, kTwoPi);
      EXPECT_NEAR(angDist(a, b), std::min(s, kTwoPi - s), 1e-12);
    }
  }
}

TEST(SecEdgeTest, DegenerateInputs) {
  EXPECT_EQ(smallestEnclosingCircle({}).radius, 0.0);
  const Vec2 one[] = {{3, 4}};
  EXPECT_EQ(smallestEnclosingCircle(one).center, (Vec2{3, 4}));
  // All points identical.
  const Vec2 same[] = {{1, 1}, {1, 1}, {1, 1}};
  const Circle c = smallestEnclosingCircle(same);
  EXPECT_LT(c.radius, 1e-12);
}

TEST(SecEdgeTest, CollinearPoints) {
  const Vec2 pts[] = {{0, 0}, {1, 0}, {2, 0}, {5, 0}, {3, 0}};
  const Circle c = smallestEnclosingCircle(pts);
  EXPECT_NEAR(c.center.x, 2.5, 1e-9);
  EXPECT_NEAR(c.radius, 2.5, 1e-9);
}

TEST(SecEdgeTest, DuplicatePointsHarmless) {
  const Vec2 pts[] = {{1, 0}, {1, 0}, {-1, 0}, {-1, 0}, {0, 0.2}};
  const Circle c = smallestEnclosingCircle(pts);
  EXPECT_NEAR(c.radius, 1.0, 1e-9);
}

TEST(SecEdgeTest, DeterministicAcrossCalls) {
  std::vector<Vec2> pts;
  for (int i = 0; i < 30; ++i) {
    pts.push_back({std::cos(i * 1.7) * (i % 5 + 1),
                   std::sin(i * 2.3) * (i % 7 + 1)});
  }
  const Circle a = smallestEnclosingCircle(pts);
  const Circle b = smallestEnclosingCircle(pts);
  EXPECT_EQ(a.center, b.center);
  EXPECT_EQ(a.radius, b.radius);
}

TEST(GridFitEdgeTest, RejectsPointOnCenter) {
  std::vector<Vec2> pts = {{0, 0}, {1, 0}, {0, 1}};
  std::vector<int> rays = {0, 1, 2};
  AngularGrid init;
  init.center = {0, 0};
  init.numRays = 3;
  EXPECT_FALSE(fitAngularGrid(pts, rays, 3, false, init).has_value());
}

TEST(GridFitEdgeTest, WrongAssignmentHasLargeResidual) {
  // A perfect square fitted with a deliberately shuffled ray assignment
  // cannot reach a small residual.
  std::vector<Vec2> pts;
  for (int k = 0; k < 4; ++k) {
    pts.push_back(Vec2{std::cos(k * kPi / 2), std::sin(k * kPi / 2)});
  }
  std::vector<int> wrong = {0, 2, 1, 3};
  AngularGrid init;
  init.center = {0.01, -0.02};
  init.theta0 = 0.0;
  init.numRays = 4;
  const auto fit = fitAngularGrid(pts, wrong, 4, false, init);
  if (fit) {
    EXPECT_GT(fit->maxResidual, 0.1);
  }
}

TEST(PathEdgeTest, MultiSegmentArclengthContinuity) {
  Path p(Vec2{1, 0});
  p.arcAround({0, 0}, kPi / 2);   // quarter circle to (0,1)
  p.lineTo({0, 3});
  p.arcAround({1, 3}, -kPi / 2);  // quarter the other way
  const double len = p.length();
  EXPECT_NEAR(len, kPi / 2 + 2.0 + kPi / 2, 1e-12);
  // Continuity: small arclength steps move the point by at most the step
  // (chords bound arcs; at segment joints the chord can be notably
  // shorter) and never teleport.
  double prevS = 0.0;
  Vec2 prev = p.pointAt(0.0);
  for (double s = 0.05; s <= len; s += 0.05) {
    const Vec2 q = p.pointAt(s);
    const double step = s - prevS;
    EXPECT_LE(dist(prev, q), step + 1e-9);
    EXPECT_GE(dist(prev, q), 0.5 * step);
    prev = q;
    prevS = s;
  }
}

TEST(PathEdgeTest, ZeroSweepArcIsEmpty) {
  Path p(Vec2{1, 0});
  p.arcAround({0, 0}, 0.0);
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.end(), (Vec2{1, 0}));
}

TEST(PathEdgeTest, TransformedScalesLength) {
  Path p(Vec2{1, 0});
  p.arcAround({0, 0}, 1.0);
  p.lineTo({5, 5});
  const Similarity t(0.7, 3.0, true, {1, -1});
  const Path q = p.transformed(t);
  EXPECT_NEAR(q.length(), 3.0 * p.length(), 1e-9);
  EXPECT_LT(dist(q.end(), t.apply(p.end())), 1e-9);
  EXPECT_LT(dist(q.pointAt(q.length() / 3),
                 t.apply(p.pointAt(p.length() / 3))),
            1e-9);
}

TEST(TransformEdgeTest, CompositionAssociative) {
  const Similarity a(0.5, 2.0, true, {1, 2});
  const Similarity b(1.1, 0.5, false, {-3, 0});
  const Similarity c(2.7, 1.5, true, {0, 4});
  const Vec2 p{0.3, -0.7};
  const Vec2 left = ((a * b) * c).apply(p);
  const Vec2 right = (a * (b * c)).apply(p);
  EXPECT_NEAR(left.x, right.x, 1e-9);
  EXPECT_NEAR(left.y, right.y, 1e-9);
}

TEST(TransformEdgeTest, FactoriesBehave) {
  EXPECT_EQ(Similarity::translation({2, 3}).apply({1, 1}), (Vec2{3, 4}));
  const Vec2 r = Similarity::rotation(kPi / 2).apply({1, 0});
  EXPECT_NEAR(r.x, 0.0, 1e-15);
  EXPECT_NEAR(r.y, 1.0, 1e-15);
  EXPECT_EQ(Similarity::mirrorX().apply({1, 2}), (Vec2{1, -2}));
  EXPECT_EQ(Similarity::scaling(3.0).apply({1, -1}), (Vec2{3, -3}));
}

TEST(TransformEdgeTest, ReflectionParityComposes) {
  const Similarity m = Similarity::mirrorX();
  EXPECT_TRUE((m * Similarity::rotation(1.0)).reflects());
  EXPECT_FALSE((m * m).reflects());
  const Vec2 p{0.4, 1.7};
  const Vec2 round = (m * m).apply(p);
  EXPECT_NEAR(round.x, p.x, 1e-12);
  EXPECT_NEAR(round.y, p.y, 1e-12);
}

TEST(WeberEdgeTest, TwoAndThreePoints) {
  // Two points: any point on the segment minimizes; our iteration returns
  // something ON the segment.
  const Vec2 two[] = {{0, 0}, {2, 0}};
  const Vec2 w2 = weberPoint(two);
  EXPECT_NEAR(w2.y, 0.0, 1e-9);
  EXPECT_GE(w2.x, -1e-9);
  EXPECT_LE(w2.x, 2.0 + 1e-9);
  // Equilateral triangle: the center.
  std::vector<Vec2> tri;
  for (int k = 0; k < 3; ++k) {
    tri.push_back(Vec2{std::cos(k * kTwoPi / 3), std::sin(k * kTwoPi / 3)});
  }
  EXPECT_LT(weberPoint(tri).norm(), 1e-7);
  // Obtuse "Fermat" case: with one point dominating (angle >= 120 deg),
  // the median is AT that vertex.
  const Vec2 fermat[] = {{0, 0}, {10, 0.5}, {10, -0.5}};
  const Vec2 wf = weberPoint(fermat);
  EXPECT_LT(dist(wf, {10, 0.5}) + dist(wf, {10, -0.5}) + wf.norm(),
            dist(Vec2{10, 0}, {10, 0.5}) * 2 + 10.01);
}

}  // namespace
}  // namespace apf::geom
