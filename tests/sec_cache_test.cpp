/// Configuration's memoized smallest enclosing circle: the cache must be
/// invisible — sec() always returns exactly what a fresh Welzl run over the
/// current points returns, across mutation, copy, and move. Labelled `perf`
/// so the TSan CI lane runs it alongside the campaign tests.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "config/configuration.h"
#include "config/generator.h"
#include "geom/sec.h"

namespace apf::config {
namespace {

/// Exact (bit-level) circle comparison: the cache stores the result of the
/// very same smallestEnclosingCircle call, so nothing may differ.
void expectSecFresh(const Configuration& cfg, const char* what) {
  const Circle fresh = geom::smallestEnclosingCircle(cfg.span());
  const Circle cached = cfg.sec();
  EXPECT_EQ(cached.center.x, fresh.center.x) << what;
  EXPECT_EQ(cached.center.y, fresh.center.y) << what;
  EXPECT_EQ(cached.radius, fresh.radius) << what;
}

TEST(SecCacheTest, CachedMatchesFreshOnRandomConfigurations) {
  for (int trial = 0; trial < 50; ++trial) {
    Rng rng(100 + trial);
    const std::size_t n = 1 + static_cast<std::size_t>(trial % 40);
    const Configuration cfg = randomConfiguration(n, rng, 5.0, 0.05);
    expectSecFresh(cfg, "first call");
    expectSecFresh(cfg, "second call (cache hit)");
  }
}

TEST(SecCacheTest, MutationThroughIndexInvalidates) {
  Rng rng(7);
  Configuration cfg = randomConfiguration(10, rng, 3.0, 0.1);
  const Circle before = cfg.sec();
  cfg[0] = Vec2{100.0, 100.0};  // far outside the old circle
  const Circle after = cfg.sec();
  EXPECT_GT(after.radius, before.radius);
  expectSecFresh(cfg, "after operator[] mutation");
}

TEST(SecCacheTest, PushBackInvalidates) {
  Rng rng(8);
  Configuration cfg = randomConfiguration(10, rng, 3.0, 0.1);
  const Circle before = cfg.sec();
  cfg.push_back(Vec2{-50.0, 40.0});
  const Circle after = cfg.sec();
  EXPECT_GT(after.radius, before.radius);
  expectSecFresh(cfg, "after push_back");
}

TEST(SecCacheTest, ConstAccessDoesNotInvalidate) {
  Rng rng(9);
  Configuration cfg = randomConfiguration(12, rng, 3.0, 0.1);
  const Circle warm = cfg.sec();
  const Configuration& view = cfg;
  (void)view[3];        // const operator[] must not touch the cache
  (void)view.points();
  const Circle again = cfg.sec();
  EXPECT_EQ(warm.center.x, again.center.x);
  EXPECT_EQ(warm.center.y, again.center.y);
  EXPECT_EQ(warm.radius, again.radius);
}

TEST(SecCacheTest, CopyCarriesIndependentCache) {
  Rng rng(10);
  Configuration a = randomConfiguration(9, rng, 3.0, 0.1);
  const Circle orig = a.sec();  // warm before copying
  Configuration b = a;
  a[0] = Vec2{200.0, 0.0};  // mutating the source must not disturb the copy
  const Circle bSec = b.sec();
  EXPECT_EQ(bSec.center.x, orig.center.x);
  EXPECT_EQ(bSec.center.y, orig.center.y);
  EXPECT_EQ(bSec.radius, orig.radius);
  expectSecFresh(b, "copy");
  expectSecFresh(a, "mutated source");
}

TEST(SecCacheTest, MoveTransfersCacheAndResetsSource) {
  Rng rng(11);
  Configuration a = randomConfiguration(9, rng, 3.0, 0.1);
  const Circle orig = a.sec();
  Configuration b = std::move(a);
  const Circle moved = b.sec();
  EXPECT_EQ(moved.center.x, orig.center.x);
  EXPECT_EQ(moved.center.y, orig.center.y);
  EXPECT_EQ(moved.radius, orig.radius);
  // The moved-from object is reusable: its stale cache must be gone.
  a = Configuration();
  a.push_back(Vec2{1.0, 0.0});
  a.push_back(Vec2{-1.0, 0.0});
  expectSecFresh(a, "reused moved-from object");

  Configuration c = randomConfiguration(7, rng, 3.0, 0.1);
  const Circle cOrig = c.sec();
  Configuration d;
  d = std::move(c);  // move-assignment path
  EXPECT_EQ(d.sec().radius, cOrig.radius);
  expectSecFresh(d, "move-assigned target");
}

}  // namespace
}  // namespace apf::config
