/// Tests of the SCRIPTED adversary: exact construction of the ASYNC model's
/// nastiest behaviours — stale snapshots, interleaved partial moves —
/// without relying on random schedules to stumble into them.

#include <gtest/gtest.h>

#include "config/generator.h"
#include "core/phases.h"
#include "geom/angle.h"
#include "sim/engine.h"

namespace apf::sim {
namespace {

using config::Configuration;
using geom::Vec2;
using Op = sched::ScriptedEvent::Op;

/// Walks straight toward the farthest observed robot, half the distance.
class ChaseFarthest : public Algorithm {
 public:
  Action compute(const Snapshot& snap, sched::RandomSource&) const override {
    double best = -1;
    Vec2 target{};
    for (const auto& q : snap.robots.points()) {
      if (q.norm() > best) {
        best = q.norm();
        target = q;
      }
    }
    geom::Path p{Vec2{}};
    if (best > 1e-9) p.lineTo(target * 0.5);
    return Action{p, core::kBaseline};
  }
  std::string name() const override { return "chase"; }
};

TEST(ScriptedTest, StaleSnapshotRaceReproducedExactly) {
  // Robot 1 Looks; robot 0 then does a full cycle and MOVES; robot 1 now
  // Computes on its STALE snapshot: its destination must be based on robot
  // 0's OLD position.
  const Configuration start({{0, 0}, {10, 0}});
  ChaseFarthest algo;
  EngineOptions opts;
  opts.sched.kind = sched::SchedulerKind::Scripted;
  opts.sched.delta = 0.01;
  opts.randomizeFrames = false;  // world == local: assert absolute targets
  opts.maxEvents = 6;
  opts.script = {
      {1, Op::Look, 0},     // robot 1 observes robot 0 at (0,0)... itself
      {0, Op::Look, 0},     // robot 0 observes robot 1 at (10,0)
      {0, Op::Compute, 0},  // robot 0 heads to (5,0)
      {0, Op::Move, 0},     // robot 0 arrives at (5,0)
      {1, Op::Compute, 0},  // robot 1 computes on the STALE view
      {1, Op::Move, 0},     // and moves accordingly
  };
  Engine eng(start, start, algo, opts);
  while (eng.metrics().events < 6 && eng.step()) {
  }
  // Robot 0 moved from (0,0) halfway to (10,0).
  EXPECT_NEAR(eng.positions()[0].x, 5.0, 1e-9);
  // Robot 1's stale view still had robot 0 at (0,0): farthest point in ITS
  // local frame (origin at itself) was robot 0 at (-10, 0) -> target
  // (-5, 0) local = (5, 0) world. Had it seen the fresh configuration
  // (robot 0 at (5,0), i.e. (-5,0) local), it would have moved to (7.5, 0).
  EXPECT_NEAR(eng.positions()[1].x, 5.0, 1e-9);
}

TEST(ScriptedTest, PartialMoveDistancesHonoured) {
  const Configuration start({{0, 0}, {10, 0}});
  ChaseFarthest algo;
  EngineOptions opts;
  opts.sched.kind = sched::SchedulerKind::Scripted;
  opts.sched.delta = 0.5;
  opts.randomizeFrames = false;
  opts.maxEvents = 5;
  opts.script = {
      {0, Op::Look, 0},
      {0, Op::Compute, 0},   // path: (0,0) -> (5,0), length 5
      {0, Op::Move, 1.0},    // advance exactly 1.0
      {0, Op::Move, 0.2},    // below delta: clamped up to 0.5
      {0, Op::Move, 100.0},  // clamped down to the remainder (3.5)
  };
  Engine eng(start, start, algo, opts);
  while (eng.metrics().events < 5 && eng.step()) {
  }
  EXPECT_NEAR(eng.positions()[0].x, 5.0, 1e-9);
  EXPECT_NEAR(eng.metrics().distance, 5.0, 1e-9);
  EXPECT_EQ(eng.metrics().cycles, 1u);
}

TEST(ScriptedTest, InvalidEventsAreSkippedSafely) {
  const Configuration start({{0, 0}, {10, 0}});
  ChaseFarthest algo;
  EngineOptions opts;
  opts.sched.kind = sched::SchedulerKind::Scripted;
  opts.randomizeFrames = false;
  opts.maxEvents = 4;
  opts.script = {
      {0, Op::Move, 0},     // no path yet: skipped
      {0, Op::Compute, 0},  // not Observed: skipped
      {7, Op::Look, 0},     // no such robot: skipped
      {0, Op::Look, 0},     // finally valid
  };
  Engine eng(start, start, algo, opts);
  while (eng.metrics().events < 4 && eng.step()) {
  }
  EXPECT_EQ(eng.positions()[0], (Vec2{0, 0}));  // nothing moved
}

TEST(ScriptedTest, FallsBackToAsyncWhenExhausted) {
  const Configuration start({{0, 0}, {10, 0}});
  ChaseFarthest algo;
  EngineOptions opts;
  opts.sched.kind = sched::SchedulerKind::Scripted;
  opts.randomizeFrames = false;
  opts.seed = 4;
  opts.maxEvents = 200;
  opts.script = {{0, Op::Look, 0}};  // one event, then ASYNC takes over
  Engine eng(start, start, algo, opts);
  eng.run();
  // The ASYNC fallback must have kept executing events far beyond the
  // one-event script (the chase converges geometrically, then quiesces).
  EXPECT_GT(eng.metrics().events, 10u);
  EXPECT_GT(eng.metrics().distance, 0.0);
}

}  // namespace
}  // namespace apf::sim
