/// Crafted end-to-end scenarios exercising the rarer psi_DPF code paths:
/// fixEnclosingCircle (exactly two pattern points on C(F)), the m1-gon
/// dance (crowded enclosing circle), the null-angle pre-phase, the
/// rs-at-center bootstrap, and regressions for the SEC-collapse and
/// rank-merge bugs found during development.

#include <gtest/gtest.h>

#include <cmath>

#include "config/generator.h"
#include "core/form_pattern.h"
#include "core/phases.h"
#include "geom/angle.h"
#include "io/patterns.h"
#include "sim/engine.h"

namespace apf::core {
namespace {

using config::Configuration;
using geom::Vec2;

sim::RunResult run(const Configuration& start, const Configuration& pattern,
                   sched::SchedulerKind kind, std::uint64_t seed,
                   std::map<int, std::uint64_t>* phases = nullptr,
                   std::uint64_t maxEvents = 600000) {
  FormPatternAlgorithm algo;
  sim::EngineOptions opts;
  opts.seed = seed;
  opts.maxEvents = maxEvents;
  opts.sched.kind = kind;
  sim::Engine eng(start, pattern, algo, opts);
  const auto res = eng.run();
  if (phases) *phases = res.metrics.phaseActivations;
  return res;
}

/// A pattern whose SEC is held by exactly two (diametral) points.
Configuration twoOnSecPattern(std::size_t n) {
  Configuration out;
  out.push_back({1, 0});
  out.push_back({-1, 0});
  // Interior points, well inside and asymmetric.
  config::Rng rng(77);
  const Configuration inner = config::randomConfiguration(n - 2, rng, 0.55,
                                                          0.05);
  for (const auto& p : inner.points()) out.push_back(p);
  return out;
}

TEST(DpfEdgeTest, FixEnclosingCirclePathForms) {
  const Configuration pattern = twoOnSecPattern(9);
  // Sanity: the SEC boundary of the pattern is exactly the diametral pair.
  int onBoundary = 0;
  const auto sec = pattern.sec();
  for (const auto& p : pattern.points()) {
    if (sec.onBoundary(p)) ++onBoundary;
  }
  ASSERT_EQ(onBoundary, 2);

  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    config::Rng rng(10 + seed);
    const Configuration start =
        config::randomConfiguration(9, rng, 4.0, 0.1);
    std::map<int, std::uint64_t> phases;
    const auto res =
        run(start, pattern, sched::SchedulerKind::Async, seed, &phases);
    EXPECT_TRUE(res.terminated) << seed;
    EXPECT_TRUE(res.success) << seed;
    EXPECT_GT(phases[kDpfFixCircle], 0u) << "fix-circle path not exercised";
  }
}

TEST(DpfEdgeTest, CrowdedEnclosingCircleDance) {
  // Start with every robot ON the enclosing circle (asymmetric angles):
  // removing the excess from C1 requires the m1-gon dance that keeps C(P)
  // alive while robots leave the boundary.
  Configuration start;
  const double angles[] = {0.1, 0.6, 1.3, 2.2, 2.9, 3.8, 4.6, 5.3, 5.9};
  for (double a : angles) {
    start.push_back(Vec2{std::cos(a), std::sin(a)} * 3.0);
  }
  const Configuration pattern = io::starPattern(9);  // m1 = 5 on C(F)...
  std::map<int, std::uint64_t> phases;
  const auto res =
      run(start, pattern, sched::SchedulerKind::Async, 5, &phases);
  EXPECT_TRUE(res.terminated);
  EXPECT_TRUE(res.success);
  EXPECT_GT(phases[kDpfRemove], 0u) << "excess-removal not exercised";
}

TEST(DpfEdgeTest, RobotsOnSharedRaysGetCleared) {
  // Robots stacked on the same rays from the center (the null-angle /
  // shared-ray pre-phase situation arises as rmax's ray gets occupied).
  Configuration start;
  for (int k = 0; k < 4; ++k) {
    const double a = 0.3 + k * geom::kPi / 2.1;
    start.push_back(Vec2{std::cos(a), std::sin(a)} * 3.0);
    start.push_back(Vec2{std::cos(a), std::sin(a)} * 1.7);  // same ray
  }
  const auto res =
      run(start, io::spiralPattern(8), sched::SchedulerKind::Async, 7);
  EXPECT_TRUE(res.terminated);
  EXPECT_TRUE(res.success);
}

TEST(DpfEdgeTest, SelectedRobotAtExactCenterBootstraps) {
  // rs exactly at c(P): phase 1 must walk it out to create rmax, then
  // everything proceeds.
  Configuration start = config::regularPolygon(7, 2.0, {}, 0.4);
  start.push_back({0.0, 0.0});
  const auto res =
      run(start, io::gridPattern(8), sched::SchedulerKind::Async, 9);
  EXPECT_TRUE(res.terminated);
  EXPECT_TRUE(res.success);
}

TEST(DpfEdgeTest, TiedRmaxForcesSelectedReposition) {
  // Two robots tie for min radius symmetric about rs's ray: no unique
  // rmax; rs must reposition through the center and the run still forms.
  Configuration start = config::regularPolygon(6, 3.0, {}, 0.0);
  start.push_back({2.0, 0.9});
  start.push_back({2.0, -0.9});
  start.push_back({0.04, 0.0});  // selected, on the tie's axis
  const auto res =
      run(start, io::starPattern(9), sched::SchedulerKind::Async, 11);
  EXPECT_TRUE(res.terminated);
  EXPECT_TRUE(res.success);
}

TEST(DpfEdgeTest, AllRobotsOnOneCircleRegressionSecCollapse) {
  // Regression for the SEC-collapse bug: a whole-configuration election
  // hands DPF a state where every robot sits on one circle and rmax holds
  // C(P); rmax's descent used to shrink the enclosing circle and the run
  // imploded toward the center. The boundary-spread guard fixes it.
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    config::Rng rng(2022 + seed);
    const Configuration start = config::symmetricConfiguration(3, 2, rng);
    const Configuration pattern =
        io::randomPatternByName(start.size(), 4000 + seed);
    const auto res =
        run(start, pattern, sched::SchedulerKind::FSync, 174100 + seed * 7);
    EXPECT_TRUE(res.terminated) << seed;
    EXPECT_TRUE(res.success) << seed;
  }
}

TEST(DpfEdgeTest, SymmetricFsyncRegressionRankMerge) {
  // Regression for the stale-rank merge bug (two movers landing on the
  // same staging slot): symmetric starts under FSYNC, n = 12.
  for (std::uint64_t s : {3ull, 5ull, 8ull}) {
    config::Rng rng(900 + s);
    const Configuration start = config::symmetricConfiguration(4, 3, rng);
    const Configuration pattern =
        io::randomPatternByName(start.size(), 60 + s);
    FormPatternAlgorithm algo;
    sim::EngineOptions opts;
    opts.seed = 17 * s + 3;
    opts.maxEvents = 900000;
    opts.sched.kind = sched::SchedulerKind::FSync;
    sim::Engine eng(start, pattern, algo, opts);
    bool collision = false;
    eng.setObserver([&](const sim::Engine& e, std::size_t) {
      if (e.positions().hasMultiplicity(geom::Tol{1e-9, 1e-9})) {
        collision = true;
      }
    });
    const auto res = eng.run();
    EXPECT_TRUE(res.success) << s;
    EXPECT_FALSE(collision) << s;
  }
}

TEST(DpfEdgeTest, PatternWithManyRings) {
  // A pattern with n-1 distinct radii exercises the circle recursion at
  // its longest (every circle holds exactly one robot).
  const auto res =
      run([] {
        config::Rng rng(31);
        return config::randomConfiguration(10, rng, 4.0, 0.1);
      }(),
          io::spiralPattern(10), sched::SchedulerKind::Async, 13);
  EXPECT_TRUE(res.terminated);
  EXPECT_TRUE(res.success);
}

TEST(DpfEdgeTest, PatternIsRegularPolygonMaxSymmetry) {
  // rho(F) = n, rho(I) = 1: the deterministic divisibility class forbids
  // this entirely; here it must just work.
  config::Rng rng(41);
  const Configuration start = config::randomConfiguration(9, rng, 4.0, 0.1);
  const auto res =
      run(start, io::polygonPattern(9), sched::SchedulerKind::Async, 15);
  EXPECT_TRUE(res.terminated);
  EXPECT_TRUE(res.success);
}

}  // namespace
}  // namespace apf::core
