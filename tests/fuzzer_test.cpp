/// Fuzz campaigns as tests: many adversarial ASYNC schedules per start,
/// safety invariants checked at every step. These are the repository's
/// systematic counterexample hunts for the paper's ASYNC-safety arguments.

#include <gtest/gtest.h>

#include "config/generator.h"
#include "core/form_pattern.h"
#include "core/scattering.h"
#include "io/patterns.h"
#include "sim/fuzzer.h"

namespace apf::sim {
namespace {

using config::Configuration;

TEST(FuzzerTest, RandomStartManySchedulesSafeAndSuccessful) {
  core::FormPatternAlgorithm algo;
  config::Rng rng(5);
  const Configuration start = config::randomConfiguration(8, rng, 4.0, 0.1);
  FuzzOptions opts;
  opts.schedules = 12;
  const FuzzResult res =
      fuzzSchedules(algo, start, io::starPattern(8), opts);
  EXPECT_EQ(res.successes, res.runs) << res.firstViolation;
  EXPECT_TRUE(res.collisionFree) << res.firstViolation;
  EXPECT_TRUE(res.secBounded) << res.firstViolation;
  // Different schedules genuinely explore different intermediate states.
  EXPECT_GT(res.distinctConfigurations, 100u);
}

TEST(FuzzerTest, SymmetricStartElectionSafety) {
  core::FormPatternAlgorithm algo;
  config::Rng rng(7);
  const Configuration start = config::symmetricConfiguration(4, 2, rng);
  FuzzOptions opts;
  opts.schedules = 9;
  const FuzzResult res = fuzzSchedules(
      algo, start, io::randomPatternByName(start.size(), 9), opts);
  EXPECT_EQ(res.successes, res.runs) << res.firstViolation;
  EXPECT_TRUE(res.clean()) << res.firstViolation;
}

TEST(FuzzerTest, MultiplicityPatternAllowsOnlyTargetMerges) {
  core::FormPatternAlgorithm algo;
  config::Rng rng(9);
  const Configuration start = config::randomConfiguration(9, rng, 4.0, 0.1);
  FuzzOptions opts;
  opts.schedules = 6;
  opts.multiplicityDetection = true;
  // Target multiplicity: collision checking is disabled for such targets
  // (merging IS the goal); safety = SEC stability + success.
  const FuzzResult res =
      fuzzSchedules(algo, start, io::multiplicityPattern(9), opts);
  EXPECT_EQ(res.successes, res.runs) << res.firstViolation;
  EXPECT_TRUE(res.secBounded) << res.firstViolation;
}

TEST(FuzzerTest, TinyDeltaAggressiveAdversary) {
  core::FormPatternAlgorithm algo;
  config::Rng rng(11);
  const Configuration start = config::randomConfiguration(7, rng, 4.0, 0.1);
  FuzzOptions opts;
  opts.schedules = 6;
  opts.delta = 0.01;
  opts.maxEventsPerRun = 1500000;
  const FuzzResult res =
      fuzzSchedules(algo, start, io::gridPattern(7), opts);
  EXPECT_EQ(res.successes, res.runs) << res.firstViolation;
  EXPECT_TRUE(res.clean()) << res.firstViolation;
}

}  // namespace
}  // namespace apf::sim
