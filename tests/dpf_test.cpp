#include <gtest/gtest.h>

#include <cmath>

#include "config/generator.h"
#include "config/similarity.h"
#include "core/dpf.h"
#include "core/form_pattern.h"
#include "core/phases.h"
#include "geom/angle.h"
#include "io/patterns.h"
#include "sim/engine.h"

namespace apf::core {
namespace {

using config::Configuration;
using geom::Vec2;

sim::Snapshot makeSnap(const Configuration& robots,
                       const Configuration& pattern, std::size_t self) {
  sim::Snapshot s;
  s.robots = robots;
  s.pattern = pattern;
  s.selfIndex = self;
  return s;
}

/// A configuration with a selected robot: random ring + inner robot.
Configuration selectedStart(std::size_t n, std::uint64_t seed,
                            double innerRadius = 0.02) {
  config::Rng rng(seed);
  Configuration p = config::randomConfiguration(n - 1, rng, 1.0, 5e-3);
  // Rescale so the SEC is roughly the unit circle already, then implant a
  // deep-inside selected robot.
  p.push_back(Vec2{innerRadius, innerRadius / 3});
  return p;
}

TEST(DpfTest, OnlyOneRobotMovesPerConfiguration) {
  // psi_DPF is sequential in spirit: in each (static) configuration in
  // phases 1-2, at most ... the coordinate and circle phases order exactly
  // one robot to move (the rotation phase may move several). Verify for the
  // early phases from a fresh selected configuration.
  const Configuration p = selectedStart(9, 4);
  const Configuration f = io::starPattern(9);
  int movers = 0;
  int tag = -1;
  for (std::size_t i = 0; i < p.size(); ++i) {
    Analysis a(makeSnap(p, f, i));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(a.selectedRobot().has_value());
    const auto act = dpfCompute(a);
    if (act.isMove()) {
      ++movers;
      tag = act.phaseTag;
    }
  }
  EXPECT_EQ(movers, 1);
  EXPECT_TRUE(tag == kDpfCoord || tag == kDpfClean || tag == kDpfLocate ||
              tag == kDpfRemove || tag == kDpfNullAngle ||
              tag == kDpfFixCircle)
      << phaseName(tag);
}

TEST(DpfTest, DecisionsAreChiralityFree) {
  // Mirror the whole snapshot: the computed action must be the mirror of
  // the original action (no hidden handedness anywhere in psi_DPF).
  const Configuration p = selectedStart(8, 9);
  const Configuration f = io::starPattern(8);
  const auto mirror = geom::Similarity::mirrorX();
  for (std::size_t i = 0; i < p.size(); ++i) {
    Analysis a(makeSnap(p, f, i));
    Analysis am(makeSnap(p.transformed(mirror), f.transformed(mirror), i));
    ASSERT_TRUE(a.ok() && am.ok());
    const auto act = dpfCompute(a);
    const auto actM = dpfCompute(am);
    ASSERT_EQ(act.isMove(), actM.isMove()) << "robot " << i;
    if (act.isMove()) {
      const Vec2 e = act.path.end();
      const Vec2 em = actM.path.end();
      EXPECT_NEAR(e.x, em.x, 1e-6) << i;
      EXPECT_NEAR(e.y, -em.y, 1e-6) << i;
    }
  }
}

TEST(DpfTest, DecisionsAreRotationInvariant) {
  const Configuration p = selectedStart(8, 10);
  const Configuration f = io::starPattern(8);
  const auto rot = geom::Similarity::rotation(1.234);
  for (std::size_t i = 0; i < p.size(); ++i) {
    Analysis a(makeSnap(p, f, i));
    Analysis ar(makeSnap(p.transformed(rot), f, i));
    ASSERT_TRUE(a.ok() && ar.ok());
    const auto act = dpfCompute(a);
    const auto actR = dpfCompute(ar);
    ASSERT_EQ(act.isMove(), actR.isMove()) << "robot " << i;
    if (act.isMove()) {
      const Vec2 e = rot.apply(act.path.end());
      const Vec2 er = actR.path.end();
      EXPECT_NEAR(e.x, er.x, 1e-6) << i;
      EXPECT_NEAR(e.y, er.y, 1e-6) << i;
    }
  }
}

TEST(DpfTest, RmaxDescendsToFmaxRadius) {
  // Construct: selected robot + unique innermost robot satisfying the
  // angular conditions but farther out than fmax: it must move radially to
  // |fmax|.
  Configuration p = config::regularPolygon(7, 1.0, {}, 1.9);
  p.push_back({0.01, 0.0});   // selected robot rs on the +x axis
  p.push_back({0.7, 0.05});   // candidate rmax: closest, near rs's ray
  const Configuration f = io::starPattern(9);  // fmax radius 0.45
  int movers = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    Analysis a(makeSnap(p, f, i));
    ASSERT_TRUE(a.ok());
    const auto act = dpfCompute(a);
    if (act.isMove()) {
      ++movers;
      EXPECT_EQ(i, 8u);
      EXPECT_EQ(act.phaseTag, kDpfCoord);
      // Radial descent to fmax's radius (0.45 normalized-ish; compare in
      // the analysis frame).
      const double endR = act.path.end().norm();
      EXPECT_NEAR(endR, a.patternInfo().fmaxRadius, 1e-6);
      EXPECT_NEAR(geom::angDist(act.path.end().arg(), a.P()[8].arg()), 0.0,
                  1e-9);
    }
  }
  EXPECT_EQ(movers, 1);
}

TEST(DpfTest, SelectedRobotRepositionsWhenNoRmax) {
  // Two robots tie for min radius symmetrically about rs's ray: no unique
  // rmax, so rs must move (toward the center).
  Configuration p = config::regularPolygon(6, 1.0, {}, 0.0);
  p.push_back({0.7, 0.3});
  p.push_back({0.7, -0.3});
  p.push_back({0.01, 0.0});  // rs on the axis of the tie
  const Configuration f = io::starPattern(9);
  int movers = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    Analysis a(makeSnap(p, f, i));
    ASSERT_TRUE(a.ok());
    ASSERT_EQ(a.selectedRobot().value(), 8u);
    const auto act = dpfCompute(a);
    if (act.isMove()) {
      ++movers;
      EXPECT_EQ(i, 8u) << "only rs may move";
      EXPECT_LT(act.path.end().norm(), a.P()[8].norm());
    }
  }
  EXPECT_EQ(movers, 1);
}

TEST(DpfTest, FullPipelinePreservesSelectedRobotUntilPatternDone) {
  // Run the complete algorithm from selected configurations; at every
  // intermediate configuration there must still be a selected robot until
  // the run reaches the final-move / terminal regime — the combination's
  // phase conditions depend on it (termination awareness).
  const Configuration f = io::spiralPattern(8);
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Configuration start = selectedStart(8, seed);
    FormPatternAlgorithm algo;
    sim::EngineOptions opts;
    opts.seed = seed * 7 + 1;
    opts.maxEvents = 200000;
    opts.sched.kind = sched::SchedulerKind::SSync;
    sim::Engine eng(start, f, algo, opts);
    bool selectedAlways = true;
    eng.setObserver([&](const sim::Engine& e, std::size_t) {
      Analysis a(makeSnap(e.positions(), f, 0));
      if (!a.ok()) return;
      if (a.selectedRobot().has_value()) return;
      // Allowed exceptions: the terminal and final-move configurations.
      if (config::similar(a.P(), a.F(), geom::Tol{1e-5, 1e-5})) return;
      const auto maxP = a.maxViewP();
      if (maxP.size() == 1) {
        for (std::size_t fi : a.maxViewNonHoldersF()) {
          if (config::findSimilarity(a.F().without(fi),
                                     a.P().without(maxP.front()), true,
                                     geom::Tol{1e-5, 1e-5})) {
            return;
          }
        }
      }
      selectedAlways = false;
    });
    const auto res = eng.run();
    EXPECT_TRUE(res.terminated) << "seed " << seed;
    EXPECT_TRUE(res.success) << "seed " << seed;
    EXPECT_TRUE(selectedAlways) << "seed " << seed;
  }
}

TEST(DpfTest, SecRemainsStableDuringDpf) {
  // Robots on C(P) maneuver without changing the enclosing circle: the SEC
  // radius may only shrink when... it must stay constant through psi_DPF
  // (all placements are inside or on C1 = the initial SEC). Track the SEC
  // radius along an execution from a selected start.
  const Configuration start = selectedStart(9, 21);
  const Configuration f = io::ringCorePattern(9);
  FormPatternAlgorithm algo;
  sim::EngineOptions opts;
  opts.seed = 5;
  opts.maxEvents = 200000;
  opts.sched.kind = sched::SchedulerKind::Async;
  sim::Engine eng(start, f, algo, opts);
  const double r0 = start.sec().radius;
  double maxDrift = 0.0;
  eng.setObserver([&](const sim::Engine& e, std::size_t) {
    maxDrift = std::max(maxDrift,
                        std::fabs(e.positions().sec().radius - r0) / r0);
  });
  const auto res = eng.run();
  EXPECT_TRUE(res.success);
  EXPECT_LT(maxDrift, 1e-6);
}

}  // namespace
}  // namespace apf::core
