/// Tests of the fault-injection subsystem (src/fault, docs/FAULTS.md):
/// crash-stop semantics (a crashed robot freezes exactly on its committed
/// path and stays visible), determinism of the dedicated fault RNG stream,
/// the bit-identity guarantee for empty plans, compute-fault semantics,
/// sensor-fault snapshot mutation, and the fuzzer's fault campaigns.

#include <gtest/gtest.h>

#include <stdexcept>

#include "config/generator.h"
#include "core/form_pattern.h"
#include "core/phases.h"
#include "fault/fault.h"
#include "io/patterns.h"
#include "obs/recorder.h"
#include "sim/engine.h"
#include "sim/fuzzer.h"

namespace apf::sim {
namespace {

using config::Configuration;
using geom::Vec2;
using Op = sched::ScriptedEvent::Op;

/// Walks straight toward the farthest observed robot, half the distance.
class ChaseFarthest : public Algorithm {
 public:
  Action compute(const Snapshot& snap, sched::RandomSource&) const override {
    double best = -1;
    Vec2 target{};
    for (const auto& q : snap.robots.points()) {
      if (q.norm() > best) {
        best = q.norm();
        target = q;
      }
    }
    geom::Path p{Vec2{}};
    if (best > 1e-9) p.lineTo(target * 0.5);
    return Action{p, core::kBaseline};
  }
  std::string name() const override { return "chase"; }
};

/// Moves ONTO the farthest observed robot (full distance): a deliberate
/// collision factory for exercising the fuzzer's safety invariants.
class MeetFarthest : public Algorithm {
 public:
  Action compute(const Snapshot& snap, sched::RandomSource&) const override {
    double best = -1;
    Vec2 target{};
    for (const auto& q : snap.robots.points()) {
      if (q.norm() > best) {
        best = q.norm();
        target = q;
      }
    }
    geom::Path p{Vec2{}};
    if (best > 1e-9) p.lineTo(target);
    return Action{p, core::kBaseline};
  }
  std::string name() const override { return "meet"; }
};

/// Never moves; records the smallest snapshot cardinality it was shown.
class SnapshotProbe : public Algorithm {
 public:
  Action compute(const Snapshot& snap, sched::RandomSource&) const override {
    minSeen = std::min(minSeen, snap.robots.size());
    maxSeen = std::max(maxSeen, snap.robots.size());
    return Action::stay(core::kBaseline);
  }
  std::string name() const override { return "probe"; }
  mutable std::size_t minSeen = static_cast<std::size_t>(-1);
  mutable std::size_t maxSeen = 0;
};

TEST(FaultTest, ScriptedCrashMidMoveFreezesExactlyOnPath) {
  // Robot 0 commits to the path (0,0) -> (5,0), travels exactly 1.0, and
  // crashes. It must end frozen at (1,0) — on its committed path, not at
  // its goal — and robot 1's LATER snapshot must see it there.
  const Configuration start({{0, 0}, {10, 0}});
  ChaseFarthest algo;
  EngineOptions opts;
  opts.sched.kind = sched::SchedulerKind::Scripted;
  opts.sched.delta = 0.01;
  opts.randomizeFrames = false;
  opts.maxEvents = 10;
  opts.script = {
      {0, Op::Look, 0},
      {0, Op::Compute, 0},  // path: (0,0) -> (5,0)
      {0, Op::Move, 1.0},   // advance exactly 1.0
      {0, Op::Crash, 0},    // crash-stop: frozen at (1,0) forever
      {0, Op::Look, 0},     // crashed robot: skipped
      {0, Op::Move, 1.0},   // crashed robot: skipped
      {1, Op::Look, 0},     // robot 1 must OBSERVE robot 0 at (1,0)
      {1, Op::Compute, 0},
      {1, Op::Move, 0},
  };
  obs::MemoryRecorder rec;
  opts.recorder = &rec;
  Engine eng(start, start, algo, opts);
  while (eng.metrics().events < opts.script.size() && eng.step()) {
  }
  EXPECT_TRUE(eng.isCrashed(0));
  EXPECT_FALSE(eng.isCrashed(1));
  EXPECT_EQ(eng.crashedCount(), 1u);
  EXPECT_EQ(eng.metrics().crashed, 1u);
  // Frozen exactly mid-path.
  EXPECT_EQ(eng.positions()[0].x, 1.0);
  EXPECT_EQ(eng.positions()[0].y, 0.0);
  // Robot 1 saw the crashed robot at (1,0): farthest point in its local
  // frame (origin (10,0)) was (-9,0) -> target (-4.5,0) local = (5.5,0).
  EXPECT_NEAR(eng.positions()[1].x, 5.5, 1e-9);
  // Exactly one robot_crashed event in the log.
  int crashes = 0;
  for (const auto& ev : rec.events()) {
    if (ev.kind == obs::EventKind::RobotCrashed) ++crashes;
  }
  EXPECT_EQ(crashes, 1);
}

TEST(FaultTest, EmptyPlanIsBitIdenticalAndSoIsAnUnfiredCrash) {
  // Three runs of the full algorithm: (a) no FaultPlan, (b) a plan whose
  // seed differs but injects nothing, (c) a plan with one crash scheduled
  // far beyond the run's length. All three must be bit-identical: the
  // fault stream is separate, and an unfired crash draws nothing.
  core::FormPatternAlgorithm algo;
  config::Rng rng(17);
  const auto start = config::randomConfiguration(6, rng, 5.0, 0.1);
  const auto pattern = io::randomPatternByName(6, 3);

  auto runWith = [&](const fault::FaultPlan& plan) {
    EngineOptions opts;
    opts.seed = 42;
    opts.maxEvents = 300000;
    opts.fault = plan;
    Engine eng(start, pattern, algo, opts);
    return eng.run();
  };

  const RunResult clean = runWith(fault::FaultPlan{});
  fault::FaultPlan reseeded;
  reseeded.seed = 999;  // inert: no injector enabled
  const RunResult b = runWith(reseeded);
  fault::FaultPlan lateCrash;
  lateCrash.crashes.push_back({0, 1u << 30});  // never reached
  const RunResult c = runWith(lateCrash);

  ASSERT_TRUE(clean.success);
  for (const RunResult* r : {&b, &c}) {
    EXPECT_EQ(r->success, clean.success);
    EXPECT_EQ(r->outcome, Outcome::Success);
    EXPECT_EQ(r->metrics.events, clean.metrics.events);
    EXPECT_EQ(r->metrics.cycles, clean.metrics.cycles);
    EXPECT_EQ(r->metrics.randomBits, clean.metrics.randomBits);
    EXPECT_EQ(r->metrics.distance, clean.metrics.distance);  // exact ==
    EXPECT_EQ(r->metrics.faultsInjected, 0u);
    ASSERT_EQ(r->finalPositions.size(), clean.finalPositions.size());
    for (std::size_t i = 0; i < clean.finalPositions.size(); ++i) {
      EXPECT_EQ(r->finalPositions[i].x, clean.finalPositions[i].x);
      EXPECT_EQ(r->finalPositions[i].y, clean.finalPositions[i].y);
    }
  }
}

TEST(FaultTest, SameSeedSamePlanIsDeterministic) {
  core::FormPatternAlgorithm algo;
  config::Rng rng(29);
  const auto start = config::randomConfiguration(8, rng, 5.0, 0.1);
  const auto pattern = io::randomPatternByName(8, 5);

  fault::FaultPlan plan;
  plan.noiseSigma = 0.02;
  plan.omitProb = 0.05;
  plan.truncProb = 0.1;
  plan.seed = 7;
  plan.crashes = fault::planWithRandomCrashes(8, 2, 7, 500).crashes;

  auto runWith = [&]() {
    EngineOptions opts;
    opts.seed = 11;
    opts.maxEvents = 20000;
    opts.fault = plan;
    Engine eng(start, pattern, algo, opts);
    return eng.run();
  };
  const RunResult a = runWith();
  const RunResult b = runWith();
  EXPECT_GT(a.metrics.faultsInjected, 0u);
  EXPECT_EQ(a.metrics.events, b.metrics.events);
  EXPECT_EQ(a.metrics.faultsInjected, b.metrics.faultsInjected);
  EXPECT_EQ(a.metrics.crashed, b.metrics.crashed);
  EXPECT_EQ(a.metrics.distance, b.metrics.distance);  // exact ==
  EXPECT_EQ(a.outcome, b.outcome);
  ASSERT_EQ(a.finalPositions.size(), b.finalPositions.size());
  for (std::size_t i = 0; i < a.finalPositions.size(); ++i) {
    EXPECT_EQ(a.finalPositions[i].x, b.finalPositions[i].x);
    EXPECT_EQ(a.finalPositions[i].y, b.finalPositions[i].y);
  }
}

TEST(FaultTest, DropFaultNeverMovesAndStalls) {
  // Pattern deliberately NOT similar to the start (any two 3-point
  // configurations with different shape), so a frozen world cannot count
  // as success.
  const Configuration start({{0, 0}, {10, 0}, {0, 1}});
  const Configuration pattern({{0, 0}, {1, 0}, {0.5, 0.866}});
  ChaseFarthest algo;
  EngineOptions opts;
  opts.randomizeFrames = false;
  opts.maxEvents = 500;
  opts.fault.dropProb = 1.0;  // every computed path is discarded
  Engine eng(start, pattern, algo, opts);
  const RunResult res = eng.run();
  EXPECT_EQ(eng.positions()[0], (Vec2{0, 0}));
  EXPECT_EQ(eng.positions()[1], (Vec2{10, 0}));
  EXPECT_EQ(eng.positions()[2], (Vec2{0, 1}));
  EXPECT_GT(res.metrics.faultsInjected, 0u);
  EXPECT_EQ(res.outcome, Outcome::Stalled);
  // A dropped path must NOT count toward quiescence: the robot wanted to
  // move, so the engine may never conclude the run is quiet.
  EXPECT_FALSE(res.terminated);
}

TEST(FaultTest, TruncationStopsRobotExactlyOnItsPath) {
  const Configuration start({{0, 0}, {10, 0}});
  ChaseFarthest algo;
  EngineOptions opts;
  opts.sched.kind = sched::SchedulerKind::Scripted;
  opts.sched.delta = 0.01;
  opts.randomizeFrames = false;
  opts.maxEvents = 3;
  opts.fault.truncProb = 1.0;  // every path stalls at a random fraction
  opts.fault.seed = 3;
  opts.script = {
      {0, Op::Look, 0},
      {0, Op::Compute, 0},  // path: (0,0) -> (5,0), truncated
      {0, Op::Move, 0},     // "to destination" = to the truncated limit
  };
  Engine eng(start, start, algo, opts);
  while (eng.metrics().events < opts.script.size() && eng.step()) {
  }
  // The robot completed its (truncated) cycle strictly inside its path:
  // still exactly on the segment y = 0, short of the goal.
  EXPECT_EQ(eng.positions()[0].y, 0.0);
  EXPECT_GT(eng.positions()[0].x, 0.0);
  EXPECT_LT(eng.positions()[0].x, 5.0);
  EXPECT_GE(eng.metrics().faultsInjected, 1u);
  EXPECT_EQ(eng.metrics().cycles, 1u);  // the cycle still completes
}

TEST(FaultTest, OmissionShrinksSnapshotsAndNoiseNeverMovesSelf) {
  config::Rng rng(5);
  const auto start = config::randomConfiguration(6, rng, 5.0, 0.5);
  SnapshotProbe probe;
  EngineOptions opts;
  opts.randomizeFrames = false;
  opts.maxEvents = 2000;
  opts.fault.omitProb = 0.5;
  opts.fault.noiseSigma = 0.1;
  opts.fault.seed = 1;
  Engine eng(start, start, probe, opts);
  eng.run();
  EXPECT_GT(eng.metrics().faultsInjected, 0u);
  // Omission visibly shrank at least one snapshot, and never below self.
  EXPECT_LT(probe.minSeen, 6u);
  EXPECT_GE(probe.minSeen, 1u);
  EXPECT_LE(probe.maxSeen, 6u);
  // Sensor faults never touch the world: a stay-only algorithm under pure
  // sensor faults leaves every robot exactly where it started.
  for (std::size_t i = 0; i < start.size(); ++i) {
    EXPECT_EQ(eng.positions()[i].x, start[i].x);
    EXPECT_EQ(eng.positions()[i].y, start[i].y);
  }
}

TEST(FaultTest, FuzzerSurfacesPerRunFailureSeeds) {
  // MeetFarthest collides by construction; every failing run must be
  // surfaced with its replay seed, not just the first one.
  const Configuration start({{0, 0}, {4, 0}, {0, 3}});
  MeetFarthest algo;
  FuzzOptions fopts;
  fopts.schedules = 6;
  fopts.maxEventsPerRun = 500;
  fopts.expectSuccess = false;
  const FuzzResult res = fuzzSchedules(algo, start, start, fopts);
  EXPECT_FALSE(res.collisionFree);
  ASSERT_FALSE(res.failures.empty());
  EXPECT_EQ(res.failures.front().violation, res.firstViolation);
  for (const auto& f : res.failures) {
    EXPECT_FALSE(f.violation.empty());
    // Replay coordinates use the fuzzer's published seed formula.
    EXPECT_EQ((f.seed - 0x5eedu) % 77u, 0u);
  }
}

TEST(FaultTest, CrashCampaignTalliesEveryOutcome) {
  core::FormPatternAlgorithm algo;
  config::Rng rng(31);
  const auto start = config::randomConfiguration(6, rng, 5.0, 0.1);
  const auto pattern = io::randomPatternByName(6, 8);
  FuzzOptions fopts;
  fopts.schedules = 6;
  fopts.maxEventsPerRun = 60000;
  fopts.expectSuccess = false;
  fopts.crashCount = 1;
  fopts.crashHorizon = 500;
  const FuzzResult res = fuzzSchedules(algo, start, pattern, fopts);
  EXPECT_EQ(res.runs, 6);
  int tallied = 0;
  for (const auto& [outcome, n] : res.outcomes) tallied += n;
  EXPECT_EQ(tallied, res.runs);
  // Live-robot safety held: crash-stop faults must not make survivors
  // collide or blow up the enclosing circle.
  EXPECT_TRUE(res.clean()) << res.firstViolation;
}

TEST(FaultTest, InvalidPlansAreRejected) {
  fault::FaultPlan bad;
  bad.omitProb = 1.5;
  EXPECT_TRUE(fault::validate(bad).has_value());
  const Configuration start({{0, 0}, {1, 0}});
  ChaseFarthest algo;
  EngineOptions opts;
  opts.fault = bad;
  EXPECT_THROW((Engine{start, start, algo, opts}), std::invalid_argument);

  fault::FaultPlan negSigma;
  negSigma.noiseSigma = -0.1;
  EXPECT_TRUE(fault::validate(negSigma).has_value());
  EXPECT_FALSE(fault::validate(fault::FaultPlan{}).has_value());
}

TEST(FaultTest, RandomCrashPlansAreDistinctSortedAndDeterministic) {
  const auto plan = fault::planWithRandomCrashes(10, 3, 99, 1000);
  ASSERT_EQ(plan.crashes.size(), 3u);
  for (std::size_t i = 0; i < plan.crashes.size(); ++i) {
    EXPECT_LT(plan.crashes[i].robot, 10u);
    EXPECT_LT(plan.crashes[i].atEvent, 1000u);
    for (std::size_t j = i + 1; j < plan.crashes.size(); ++j) {
      EXPECT_NE(plan.crashes[i].robot, plan.crashes[j].robot);
      EXPECT_LE(plan.crashes[i].atEvent, plan.crashes[j].atEvent);
    }
  }
  const auto again = fault::planWithRandomCrashes(10, 3, 99, 1000);
  ASSERT_EQ(again.crashes.size(), plan.crashes.size());
  for (std::size_t i = 0; i < plan.crashes.size(); ++i) {
    EXPECT_EQ(again.crashes[i].robot, plan.crashes[i].robot);
    EXPECT_EQ(again.crashes[i].atEvent, plan.crashes[i].atEvent);
  }
}

}  // namespace
}  // namespace apf::sim
