/// Unit tests of the appendix-C machinery: F~ construction, the gather
/// stage's oblivious recognition, and the merge rule in the rotation phase.

#include <gtest/gtest.h>

#include <cmath>

#include "config/generator.h"
#include "config/similarity.h"
#include "core/analysis.h"
#include "core/form_pattern.h"
#include "core/multiplicity.h"
#include "core/phases.h"
#include "sim/engine.h"
#include "geom/angle.h"
#include "io/patterns.h"

namespace apf::core {
namespace {

using config::Configuration;
using geom::Vec2;

TEST(MultiplicityTest, AnalyzeDetectsCenterMultiplicity) {
  const auto cm = analyzeCenterMultiplicity(io::centerMultiplicityPattern(9));
  ASSERT_TRUE(cm.has_value());
  EXPECT_EQ(cm->count, 2);
  // F~ has no point at the center and the same size.
  EXPECT_EQ(cm->fTilde.size(), 9u);
  for (const auto& p : cm->fTilde.points()) {
    EXPECT_GT(p.norm(), 1e-3);
  }
  // The relocated points coincide at g_F (multiplicity preserved).
  int maxCount = 0;
  for (const auto& g : cm->fTilde.grouped()) {
    maxCount = std::max(maxCount, g.count);
  }
  EXPECT_EQ(maxCount, 2);
}

TEST(MultiplicityTest, AnalyzeIgnoresInteriorMultiplicity) {
  // Multiplicity away from the center needs no F~ rewrite.
  EXPECT_FALSE(analyzeCenterMultiplicity(io::multiplicityPattern(9))
                   .has_value());
  // And plain patterns neither.
  EXPECT_FALSE(analyzeCenterMultiplicity(io::starPattern(8)).has_value());
  // Gathering (all points equal) is out of scope.
  const Configuration gather({{1, 1}, {1, 1}, {1, 1}, {1, 1}});
  EXPECT_FALSE(analyzeCenterMultiplicity(gather).has_value());
}

TEST(MultiplicityTest, GFIsMidpointOfMaxViewNonCenterPoint) {
  const auto cm = analyzeCenterMultiplicity(io::centerMultiplicityPattern(9));
  ASSERT_TRUE(cm.has_value());
  // g_F = half the radius of SOME non-center point; for this pattern all
  // non-center points are the 7-gon at radius 1 (normalized), so |g_F| =
  // 0.5.
  Vec2 gF{};
  for (const auto& g : cm->fTilde.grouped()) {
    if (g.count == 2) gF = g.pos;
  }
  EXPECT_NEAR(gF.norm(), 0.5, 1e-9);
}

/// Builds the F~-formed state: the 7-gon at its pattern points plus m
/// robots merged at g_F.
sim::Snapshot tildeFormedSnapshot(std::size_t self) {
  const auto cm = analyzeCenterMultiplicity(io::centerMultiplicityPattern(9));
  sim::Snapshot snap;
  snap.robots = cm->fTilde;  // robots exactly at the F~ points
  snap.pattern = io::centerMultiplicityPattern(9);
  snap.selfIndex = self;
  snap.multiplicityDetection = true;
  return snap;
}

TEST(MultiplicityTest, GatherMoveFiresWhenTildeFormed) {
  const auto cm = analyzeCenterMultiplicity(io::centerMultiplicityPattern(9));
  ASSERT_TRUE(cm.has_value());
  int movers = 0;
  for (std::size_t self = 0; self < 9; ++self) {
    sim::Snapshot snap = tildeFormedSnapshot(self);
    Analysis a(snap);
    ASSERT_TRUE(a.ok());
    const auto act = centerGatherMove(a, *cm);
    ASSERT_TRUE(act.has_value()) << self;
    if (act->isMove()) {
      ++movers;
      EXPECT_EQ(act->phaseTag, kMultiplicity);
      // Destination: the pattern center (the origin here).
      EXPECT_LT(act->path.end().norm(), 1e-6);
    }
  }
  EXPECT_EQ(movers, 2);  // exactly the two robots at g_F
}

TEST(MultiplicityTest, GatherContinuesMidDescent) {
  // One gathered robot has already walked halfway down the ray: the stage
  // must still be recognized and both movers keep descending.
  const auto cm = analyzeCenterMultiplicity(io::centerMultiplicityPattern(9));
  sim::Snapshot snap = tildeFormedSnapshot(0);
  // Move one g_F robot halfway to the center (same ray).
  for (std::size_t i = 0; i < snap.robots.size(); ++i) {
    if (std::fabs(snap.robots[i].norm() - 0.5) < 1e-9) {
      snap.robots[i] = snap.robots[i] * 0.5;
      break;
    }
  }
  Analysis a(snap);
  ASSERT_TRUE(a.ok());
  const auto act = centerGatherMove(a, *cm);
  ASSERT_TRUE(act.has_value());
}

TEST(MultiplicityTest, GatherRefusesWrongConfigurations) {
  const auto cm = analyzeCenterMultiplicity(io::centerMultiplicityPattern(9));
  // (a) Rest does not match F minus center: random robots.
  config::Rng rng(5);
  sim::Snapshot snap;
  snap.robots = config::randomConfiguration(9, rng);
  snap.pattern = io::centerMultiplicityPattern(9);
  snap.selfIndex = 0;
  snap.multiplicityDetection = true;
  Analysis a(snap);
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(centerGatherMove(a, *cm).has_value());

  // (b) Innermost robots not on one ray: perturb one g_F robot's angle.
  sim::Snapshot snap2 = tildeFormedSnapshot(0);
  for (std::size_t i = 0; i < snap2.robots.size(); ++i) {
    if (std::fabs(snap2.robots[i].norm() - 0.5) < 1e-9) {
      snap2.robots[i] = snap2.robots[i].rotated(0.3) * 0.6;
      break;
    }
  }
  Analysis a2(snap2);
  ASSERT_TRUE(a2.ok());
  EXPECT_FALSE(centerGatherMove(a2, *cm).has_value());
}

TEST(MultiplicityTest, PrematureMergeIsScatteredAndRunRecovers) {
  // Regression: forming a center-multiplicity pattern from a symmetric
  // start, phase 3 can merge two robots at the g_F point before the outer
  // ring is finished; the run then falls back to the election, where
  // co-located robots tie in every view. The scatter repair rule must
  // dissolve the point and the run must still succeed. (Found by the
  // 300-scenario stress campaign, t = 148.)
  for (std::uint64_t s : {0ull, 1ull, 2ull}) {
    config::Rng rng(2148 + s);
    const Configuration start = config::symmetricConfiguration(7, 2, rng);
    FormPatternAlgorithm algo;
    sim::EngineOptions opts;
    opts.seed = 148 * 7919 + 31 + s;
    opts.maxEvents = 1500000;
    opts.multiplicityDetection = true;
    opts.sched.kind = sched::SchedulerKind::Async;
    opts.sched.earlyStopProb = 0.9;
    sim::Engine eng(start, io::centerMultiplicityPattern(start.size()),
                    algo, opts);
    const auto res = eng.run();
    EXPECT_TRUE(res.terminated) << s;
    EXPECT_TRUE(res.success) << s;
  }
}

}  // namespace
}  // namespace apf::core
