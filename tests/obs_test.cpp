/// Tests of the observability layer: JSON round-trips, counter / timer /
/// histogram semantics, recorder sinks, manifest completeness, and the
/// engine's event-stream contract — including that a null sink leaves the
/// simulation bit-identical to an uninstrumented run.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "config/generator.h"
#include "core/form_pattern.h"
#include "io/patterns.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/recorder.h"
#include "obs/stats.h"
#include "sim/engine.h"

namespace apf {
namespace {

using config::Configuration;

// ---------------------------------------------------------------- JSON --

TEST(ObsJsonTest, WriterParserRoundTrip) {
  obs::JsonObjectWriter w;
  w.field("name", "a \"quoted\"\\\nstring\twith\tcontrol\x01chars");
  w.field("count", std::uint64_t{18446744073709551615ull});
  w.field("pi", 3.141592653589793);
  w.field("neg", -42);
  w.field("yes", true);
  w.field("no", false);
  const auto parsed = obs::parseFlatObject(w.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->at("name").asString(),
            "a \"quoted\"\\\nstring\twith\tcontrol\x01chars");
  EXPECT_DOUBLE_EQ(parsed->at("pi").asNumber(), 3.141592653589793);
  EXPECT_DOUBLE_EQ(parsed->at("neg").asNumber(), -42.0);
  EXPECT_TRUE(parsed->at("yes").asBool());
  EXPECT_FALSE(parsed->at("no").asBool(true));
}

TEST(ObsJsonTest, RejectsMalformedAndNested) {
  EXPECT_FALSE(obs::parseFlatObject("").has_value());
  EXPECT_FALSE(obs::parseFlatObject("{\"a\":1").has_value());
  EXPECT_FALSE(obs::parseFlatObject("{\"a\":}").has_value());
  EXPECT_FALSE(obs::parseFlatObject("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(obs::parseFlatObject("{\"a\":{\"b\":1}}").has_value());
  EXPECT_FALSE(obs::parseFlatObject("{\"a\":[1,2]}").has_value());
  EXPECT_TRUE(obs::parseFlatObject("{}").has_value());
  EXPECT_TRUE(obs::parseFlatObject(" { \"a\" : null } ").has_value());
}

TEST(ObsJsonTest, TreeParserHandlesNestedDocuments) {
  const auto doc = obs::parseJson(
      R"({"schema":"x","quick":false,"workloads":[)"
      R"({"workload":"a","n":16,"runs_per_sec":12.5},)"
      R"({"workload":"b","n":64,"runs_per_sec":3.25}],)"
      R"("meta":{"nested":{"deep":[1,2,3]}}})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_EQ(doc->kind, obs::JsonNode::Kind::Object);
  EXPECT_EQ(doc->find("schema")->asString(), "x");
  EXPECT_FALSE(doc->find("quick")->asBool(true));
  const obs::JsonNode* workloads = doc->find("workloads");
  ASSERT_NE(workloads, nullptr);
  ASSERT_EQ(workloads->kind, obs::JsonNode::Kind::Array);
  ASSERT_EQ(workloads->items.size(), 2u);
  EXPECT_EQ(workloads->items[0].find("workload")->asString(), "a");
  EXPECT_DOUBLE_EQ(workloads->items[1].find("runs_per_sec")->asNumber(),
                   3.25);
  const obs::JsonNode* deep =
      doc->find("meta")->find("nested")->find("deep");
  ASSERT_NE(deep, nullptr);
  ASSERT_EQ(deep->items.size(), 3u);
  EXPECT_DOUBLE_EQ(deep->items[2].asNumber(), 3.0);
  // find() on a non-object / missing key returns nullptr, not UB.
  EXPECT_EQ(workloads->find("x"), nullptr);
  EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(ObsJsonTest, TreeParserRejectsMalformedInput) {
  EXPECT_FALSE(obs::parseJson("").has_value());
  EXPECT_FALSE(obs::parseJson("{\"a\":1").has_value());
  EXPECT_FALSE(obs::parseJson("[1,2,]").has_value());
  EXPECT_FALSE(obs::parseJson("{\"a\":1} trailing").has_value());
  EXPECT_TRUE(obs::parseJson("[]").has_value());
  EXPECT_TRUE(obs::parseJson("3.5").has_value());
  EXPECT_TRUE(obs::parseJson("\"s\"").has_value());
  // Depth guard: pathological nesting fails cleanly instead of blowing
  // the stack.
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  for (int i = 0; i < 200; ++i) deep += "]";
  EXPECT_FALSE(obs::parseJson(deep).has_value());
}

// --------------------------------------------------------------- stats --

TEST(ObsStatsTest, CounterAndTimerSemantics) {
  obs::Counter c;
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);

  obs::Timer t;
  t.add(100);
  t.add(300);
  EXPECT_EQ(t.nanos(), 400u);
  EXPECT_EQ(t.count(), 2u);
  EXPECT_DOUBLE_EQ(t.meanNanos(), 200.0);
  {
    obs::Timer::Scope scope(t);
  }
  EXPECT_EQ(t.count(), 3u);
}

TEST(ObsStatsTest, HistogramBucketsAndQuantiles) {
  obs::Histogram h;
  EXPECT_EQ(h.quantileUpperBound(0.5), 0u);
  // Bucket layout: 0 -> bucket 0; [2^(k-1), 2^k) -> bucket k.
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 10u);
  EXPECT_EQ(h.max(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_EQ(h.bucket(0), 1u);  // {0}
  EXPECT_EQ(h.bucket(1), 1u);  // {1}
  EXPECT_EQ(h.bucket(2), 2u);  // {2, 3}
  EXPECT_EQ(h.bucket(3), 1u);  // {4}
  EXPECT_EQ(h.quantileUpperBound(0.0), 0u);
  EXPECT_EQ(h.quantileUpperBound(1.0), 4u);
  // Huge values clamp into the final bucket and report the observed max.
  obs::Histogram big;
  big.add(std::uint64_t{1} << 60);
  EXPECT_EQ(big.bucket(obs::Histogram::kBuckets - 1), 1u);
  EXPECT_EQ(big.quantileUpperBound(1.0), std::uint64_t{1} << 60);
}

TEST(ObsStatsTest, HistogramQuantileEdgeCases) {
  // Empty histogram: every quantile is 0, including the extremes.
  obs::Histogram empty;
  EXPECT_EQ(empty.quantileUpperBound(0.0), 0u);
  EXPECT_EQ(empty.quantileUpperBound(0.5), 0u);
  EXPECT_EQ(empty.quantileUpperBound(1.0), 0u);
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);

  // Out-of-range q clamps rather than misbehaving.
  obs::Histogram h;
  h.add(7);
  EXPECT_EQ(h.quantileUpperBound(-1.0), h.quantileUpperBound(0.0));
  EXPECT_EQ(h.quantileUpperBound(2.0), h.quantileUpperBound(1.0));

  // Single value: every quantile names its bucket's bound, capped at the
  // observed max.
  EXPECT_EQ(h.quantileUpperBound(0.0), 7u);
  EXPECT_EQ(h.quantileUpperBound(0.5), 7u);
  EXPECT_EQ(h.quantileUpperBound(1.0), 7u);

  // All mass in one bucket: the conservative bound is the bucket's upper
  // bound clamped to the max actually observed.
  obs::Histogram one;
  one.add(5);
  one.add(6);  // both land in bucket 3 = [4, 8)
  EXPECT_EQ(one.bucket(3), 2u);
  EXPECT_EQ(one.quantileUpperBound(0.0), 6u);
  EXPECT_EQ(one.quantileUpperBound(1.0), 6u);

  // q = 0 vs q = 1 straddling buckets: 0-quantile stays in the first
  // occupied bucket, 1-quantile reaches the last.
  obs::Histogram wide;
  wide.add(0);
  wide.add(1000);
  EXPECT_EQ(wide.quantileUpperBound(0.0), 0u);
  EXPECT_EQ(wide.quantileUpperBound(1.0), 1000u);
}

TEST(ObsStatsTest, HistogramMerge) {
  obs::Histogram a, b;
  a.add(1);
  a.add(5);
  b.add(9);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 15u);
  EXPECT_EQ(a.max(), 9u);
}

TEST(ObsStatsTest, RegistryNamesAreStable) {
  obs::Registry reg;
  reg.counter("a").inc(3);
  reg.counter("a").inc(4);
  reg.timer("t").add(9);
  reg.histogram("h").add(2);
  EXPECT_EQ(reg.counter("a").value(), 7u);
  EXPECT_EQ(reg.timers().at("t").nanos(), 9u);
  EXPECT_EQ(reg.histograms().at("h").count(), 1u);
  EXPECT_EQ(reg.counters().size(), 1u);
}

// ------------------------------------------------------------ manifest --

TEST(ObsManifestTest, SetOverwritesInPlace) {
  obs::Manifest m;
  m.set("k", 1);
  m.set("j", 2);
  m.set("k", 3);
  EXPECT_EQ(m.entries().size(), 2u);
  EXPECT_EQ(*m.findEncoded("k"), "3");
  // Insertion order preserved.
  EXPECT_EQ(m.entries()[0].first, "k");
}

TEST(ObsManifestTest, DescribeRunCapturesEveryOption) {
  sim::EngineOptions opts;
  opts.seed = 77;
  opts.maxEvents = 12345;
  opts.multiplicityDetection = true;
  opts.commonChirality = true;
  opts.randomizeFrames = false;
  opts.sched.kind = sched::SchedulerKind::SSync;
  opts.sched.delta = 0.125;
  opts.sched.fairnessBound = 99;
  opts.sched.earlyStopProb = 0.25;
  opts.sched.activationProb = 0.75;
  const obs::Manifest m = sim::describeRun(opts, "algo-x", "star", 8);
  for (const char* key :
       {"schema", "build.compiler", "algo", "pattern", "n", "seed",
        "engine.max_events", "engine.multiplicity_detection",
        "engine.common_chirality", "engine.randomize_frames",
        "engine.collect_timings", "engine.script_events", "sched.kind",
        "sched.delta", "sched.fairness_bound", "sched.early_stop_prob",
        "sched.activation_prob"}) {
    EXPECT_NE(m.findEncoded(key), nullptr) << key;
  }
  const auto parsed = obs::parseFlatObject(m.toJson());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->at("seed").asNumber(), 77.0);
  EXPECT_EQ(parsed->at("sched.kind").asString(), "SSYNC");
  EXPECT_DOUBLE_EQ(parsed->at("sched.delta").asNumber(), 0.125);
  EXPECT_EQ(parsed->at("sched.fairness_bound").asNumber(), 99.0);
  EXPECT_TRUE(parsed->at("engine.multiplicity_detection").asBool());
  EXPECT_FALSE(parsed->at("engine.randomize_frames").asBool(true));
}

TEST(ObsManifestTest, FileRoundTripAndLoudFailure) {
  obs::Manifest m;
  m.set("answer", 42);
  const std::string path = "/tmp/apf_obs_manifest_test.json";
  m.write(path);
  const obs::JsonObject back = obs::loadFlatJsonFile(path);
  EXPECT_EQ(back.at("answer").asNumber(), 42.0);
  std::remove(path.c_str());
  // Missing parent directories are created rather than erroring loudly
  // (results/ trees need not pre-exist).
  const std::string nested =
      "/tmp/apf_obs_manifest_nested/sub/dir/x.json";
  m.write(nested);
  EXPECT_EQ(obs::loadFlatJsonFile(nested).at("answer").asNumber(), 42.0);
  std::filesystem::remove_all("/tmp/apf_obs_manifest_nested");
  // A genuinely unwritable path (a parent component is a regular FILE,
  // so no directory can be created there) still throws.
  { std::ofstream block("/tmp/apf_obs_manifest_block"); }
  EXPECT_THROW(m.write("/tmp/apf_obs_manifest_block/x.json"),
               std::runtime_error);
  std::remove("/tmp/apf_obs_manifest_block");
  EXPECT_THROW(obs::loadFlatJsonFile("/nonexistent/nope.json"),
               std::runtime_error);
}

// ------------------------------------------- engine event stream ------

sim::EngineOptions electionOptions(std::uint64_t seed) {
  sim::EngineOptions opts;
  opts.seed = seed;
  opts.maxEvents = 400000;
  opts.sched.kind = sched::SchedulerKind::Async;
  return opts;
}

/// Symmetric start + random pattern: forces the randomized election, so
/// the log contains election_round events and nonzero bits. Same
/// parameters as integration_test's SymmetricStart/rho4, which is known
/// to terminate.
struct ElectionScenario {
  Configuration start;
  Configuration pattern;
  ElectionScenario() {
    config::Rng rng(11);
    start = config::symmetricConfiguration(4, 2, rng);
    pattern = io::randomPatternByName(start.size(), 55);
  }
};

TEST(ObsEngineTest, EventLogMatchesMetricsExactly) {
  const ElectionScenario sc;
  core::FormPatternAlgorithm algo;
  sim::EngineOptions opts = electionOptions(104);
  obs::MemoryRecorder rec;
  opts.recorder = &rec;
  sim::Engine eng(sc.start, sc.pattern, algo, opts);
  const sim::RunResult res = eng.run();
  ASSERT_TRUE(res.terminated);
  ASSERT_FALSE(rec.events().empty());

  // Stream framing: dense indexes, RunStart first, RunEnd last.
  const auto& evs = rec.events();
  EXPECT_EQ(evs.front().kind, obs::EventKind::RunStart);
  EXPECT_EQ(evs.back().kind, obs::EventKind::RunEnd);
  for (std::size_t k = 0; k < evs.size(); ++k) {
    EXPECT_EQ(evs[k].index, k);
    if (k > 0) {
      EXPECT_GE(evs[k].wallNanos, evs[k - 1].wallNanos);
    }
  }
  EXPECT_EQ(evs.back().flag, res.success);

  // Per-phase Compute totals == Metrics::phaseActivations, bit-for-bit.
  std::map<int, std::uint64_t> perPhase;
  std::uint64_t bits = 0, elections = 0, looks = 0, cycles = 0;
  std::uint64_t computes = 0;
  for (const auto& e : evs) {
    switch (e.kind) {
      case obs::EventKind::Compute:
        perPhase[e.phaseTag] += 1;
        bits += e.bitsUsed;
        computes += 1;
        break;
      case obs::EventKind::ElectionRound:
        elections += 1;
        break;
      case obs::EventKind::Look:
        looks += 1;
        break;
      case obs::EventKind::CycleComplete:
        cycles += 1;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(perPhase, res.metrics.phaseActivations);
  EXPECT_EQ(bits, res.metrics.randomBits);
  EXPECT_EQ(elections, res.metrics.electionRounds);
  EXPECT_EQ(cycles, res.metrics.cycles);
  EXPECT_GT(bits, 0u) << "symmetric start must force the election";
  EXPECT_EQ(elections, bits) << "one bit per election round";
  EXPECT_GT(looks, 0u);
  // Staleness histogram counts one entry per Compute.
  EXPECT_EQ(res.metrics.staleness.count(), computes);
  // Timing is implied by an attached recorder.
  EXPECT_GT(res.metrics.computeTime.nanos(), 0u);
  EXPECT_FALSE(res.metrics.phaseNanos.empty());
}

TEST(ObsEngineTest, JsonlSinkRoundTrip) {
  const ElectionScenario sc;
  core::FormPatternAlgorithm algo;
  const std::string path = "/tmp/apf_obs_jsonl_test.jsonl";
  sim::EngineOptions opts = electionOptions(104);
  obs::JsonlRecorder rec(path);
  opts.recorder = &rec;
  sim::Engine eng(sc.start, sc.pattern, algo, opts);
  const sim::RunResult res = eng.run();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::map<int, std::uint64_t> perPhase;
  std::uint64_t lines = 0, bits = 0;
  std::string firstKind, lastKind;
  while (std::getline(in, line)) {
    const auto obj = obs::parseFlatObject(line);
    ASSERT_TRUE(obj.has_value()) << "line " << lines << ": " << line;
    const std::string kind = obj->at("ev").asString();
    if (lines == 0) firstKind = kind;
    lastKind = kind;
    EXPECT_EQ(obj->at("i").asNumber(), static_cast<double>(lines));
    if (kind == "compute") {
      perPhase[static_cast<int>(obj->at("phase").asNumber())] += 1;
      bits += static_cast<std::uint64_t>(obj->at("bits").asNumber());
    }
    ++lines;
  }
  EXPECT_EQ(firstKind, "run_start");
  EXPECT_EQ(lastKind, "run_end");
  EXPECT_EQ(perPhase, res.metrics.phaseActivations);
  EXPECT_EQ(bits, res.metrics.randomBits);
  std::remove(path.c_str());
}

TEST(ObsEngineTest, JsonlSinkCreatesParentDirsAndThrowsWhenUnwritable) {
  // Missing parent directories are created on demand.
  const std::string nested = "/tmp/apf_obs_jsonl_nested/sub/log.jsonl";
  {
    obs::JsonlRecorder rec(nested);
    obs::Event e{};
    e.kind = obs::EventKind::RunStart;
    rec.record(e);
  }
  EXPECT_TRUE(std::filesystem::exists(nested));
  std::filesystem::remove_all("/tmp/apf_obs_jsonl_nested");
  // A parent component that is a regular file still fails loudly.
  { std::ofstream block("/tmp/apf_obs_jsonl_block"); }
  EXPECT_THROW(obs::JsonlRecorder("/tmp/apf_obs_jsonl_block/log.jsonl"),
               std::runtime_error);
  std::remove("/tmp/apf_obs_jsonl_block");
}

TEST(ObsEngineTest, JsonlRecorderDestructorFlushesToDisk) {
  const std::string path = "/tmp/apf_obs_jsonl_flush_test.jsonl";
  {
    obs::JsonlRecorder rec(path);
    obs::Event e{};
    e.kind = obs::EventKind::RunStart;
    rec.record(e);
    // No explicit flush: the destructor's flush must land the line.
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_TRUE(obs::parseFlatObject(line).has_value()) << line;
  std::remove(path.c_str());
}

TEST(ObsEngineTest, JsonlRecorderFailingStreamThrowsOnUseNotOnDestroy) {
  std::ostringstream os;
  {
    obs::JsonlRecorder rec(os);
    obs::Event e{};
    e.kind = obs::EventKind::RunStart;
    rec.record(e);
    EXPECT_FALSE(os.str().empty());
    // Break the stream mid-run: record() and flush() must fail loudly —
    // telemetry is never silently lost — but the destructor, which also
    // flushes, must stay quiet (throwing destructors terminate).
    os.setstate(std::ios::badbit);
    EXPECT_THROW(rec.record(e), std::runtime_error);
    EXPECT_THROW(rec.flush(), std::runtime_error);
  }  // destructor runs against the still-failing stream: must not throw
  SUCCEED();
}

TEST(ObsEngineTest, NullSinkRunBitIdenticalToUninstrumented) {
  const ElectionScenario sc;
  core::FormPatternAlgorithm algo;

  sim::EngineOptions plain = electionOptions(104);
  sim::Engine bare(sc.start, sc.pattern, algo, plain);
  const sim::RunResult bareRes = bare.run();

  sim::EngineOptions nulled = electionOptions(104);
  obs::NullRecorder nullSink;
  nulled.recorder = &nullSink;
  sim::Engine withNull(sc.start, sc.pattern, algo, nulled);
  const sim::RunResult nullRes = withNull.run();

  sim::EngineOptions memo = electionOptions(104);
  obs::MemoryRecorder memSink;
  memo.recorder = &memSink;
  sim::Engine withMem(sc.start, sc.pattern, algo, memo);
  const sim::RunResult memRes = withMem.run();

  for (const sim::RunResult* res : {&nullRes, &memRes}) {
    EXPECT_EQ(res->success, bareRes.success);
    EXPECT_EQ(res->terminated, bareRes.terminated);
    EXPECT_EQ(res->metrics.cycles, bareRes.metrics.cycles);
    EXPECT_EQ(res->metrics.events, bareRes.metrics.events);
    EXPECT_EQ(res->metrics.randomBits, bareRes.metrics.randomBits);
    EXPECT_EQ(res->metrics.distance, bareRes.metrics.distance);
    EXPECT_EQ(res->metrics.phaseActivations,
              bareRes.metrics.phaseActivations);
  }
  // Positions must be BIT-identical: instrumentation may not perturb the
  // simulation in any way.
  ASSERT_EQ(withNull.positions().size(), bare.positions().size());
  for (std::size_t i = 0; i < bare.positions().size(); ++i) {
    EXPECT_EQ(withNull.positions()[i], bare.positions()[i]) << i;
    EXPECT_EQ(withMem.positions()[i], bare.positions()[i]) << i;
  }
}

TEST(ObsEngineTest, ManifestResultSectionMatchesRun) {
  const ElectionScenario sc;
  core::FormPatternAlgorithm algo;
  sim::EngineOptions opts = electionOptions(104);
  sim::Engine eng(sc.start, sc.pattern, algo, opts);
  const sim::RunResult res = eng.run();

  obs::Manifest m = sim::describeRun(opts, algo.name(), "random", 8);
  sim::appendResult(m, res);
  const auto parsed = obs::parseFlatObject(m.toJson());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->at("result.cycles").asNumber(),
            static_cast<double>(res.metrics.cycles));
  EXPECT_EQ(parsed->at("result.random_bits").asNumber(),
            static_cast<double>(res.metrics.randomBits));
  EXPECT_EQ(parsed->at("result.election_rounds").asNumber(),
            static_cast<double>(res.metrics.electionRounds));
  EXPECT_EQ(parsed->at("result.success").asBool(), res.success);
  // Every phase with activations appears as a result.phase.<tag> key.
  for (const auto& [tag, count] : res.metrics.phaseActivations) {
    const std::string key =
        "result.phase." + std::to_string(tag) + ".activations";
    ASSERT_TRUE(parsed->count(key)) << key;
    EXPECT_EQ(parsed->at(key).asNumber(), static_cast<double>(count));
  }
}

}  // namespace
}  // namespace apf
