#include <gtest/gtest.h>

#include "baseline/det_election.h"
#include "baseline/yy.h"
#include "config/generator.h"
#include "core/analysis.h"
#include "io/patterns.h"
#include "sim/engine.h"

namespace apf::baseline {
namespace {

using config::Configuration;

TEST(YYBaselineTest, FormsPatternWithCommonChirality) {
  int ok = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    config::Rng rng(seed);
    const Configuration start = config::randomConfiguration(8, rng, 3.0, 0.1);
    YYAlgorithm algo;
    sim::EngineOptions opts;
    opts.seed = seed;
    opts.maxEvents = 150000;
    opts.commonChirality = true;
    opts.sched.kind = sched::SchedulerKind::SSync;
    sim::Engine eng(start, io::randomPatternByName(8, seed + 50), algo, opts);
    ok += eng.run().success;
  }
  EXPECT_GE(ok, 7) << "YY baseline should almost always succeed with chirality";
}

TEST(YYBaselineTest, FailsWithoutCommonChirality) {
  int ok = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    config::Rng rng(seed);
    const Configuration start = config::randomConfiguration(8, rng, 3.0, 0.1);
    YYAlgorithm algo;
    sim::EngineOptions opts;
    opts.seed = seed;
    opts.maxEvents = 150000;
    opts.commonChirality = false;  // mirrored frames appear
    opts.sched.kind = sched::SchedulerKind::SSync;
    sim::Engine eng(start, io::randomPatternByName(8, seed + 50), algo, opts);
    ok += eng.run().success;
  }
  EXPECT_LE(ok, 2) << "disagreeing handedness must break the baseline";
}

TEST(YYBaselineTest, ConsumesContinuousRandomness) {
  // A symmetric start forces the randomized election: 53 bits per draw.
  config::Rng rng(4);
  const Configuration start = config::symmetricConfiguration(4, 2, rng);
  YYAlgorithm algo;
  sim::EngineOptions opts;
  opts.seed = 3;
  opts.maxEvents = 150000;
  opts.commonChirality = true;
  opts.sched.kind = sched::SchedulerKind::SSync;
  sim::Engine eng(start, io::randomPatternByName(start.size(), 60), algo,
                  opts);
  const auto res = eng.run();
  EXPECT_GT(res.metrics.randomBits, 0u);
  EXPECT_EQ(res.metrics.randomBits % 53, 0u) << "draws are 53-bit uniforms";
}

TEST(DetElectionTest, ElectsOnAsymmetricConfig) {
  config::Rng rng(5);
  const Configuration start = config::randomConfiguration(8, rng, 3.0, 0.1);
  DeterministicElection algo;
  sim::EngineOptions opts;
  opts.seed = 2;
  opts.maxEvents = 100000;
  opts.sched.kind = sched::SchedulerKind::Async;
  const Configuration pattern = io::starPattern(8);
  sim::Engine eng(start, pattern, algo, opts);
  const auto res = eng.run();
  EXPECT_TRUE(res.terminated);
  EXPECT_EQ(res.metrics.randomBits, 0u);
  sim::Snapshot snap;
  snap.robots = eng.positions();
  snap.pattern = pattern;
  snap.selfIndex = 0;
  core::Analysis a(snap);
  EXPECT_TRUE(a.selectedRobot().has_value());
}

TEST(DetElectionTest, StallsOnSymmetricConfig) {
  // The deterministic impossibility psi_RSB's randomness circumvents: with
  // rho(P) > 1 there is no unique max view and the baseline freezes.
  config::Rng rng(6);
  const Configuration start = config::symmetricConfiguration(4, 2, rng);
  DeterministicElection algo;
  sim::EngineOptions opts;
  opts.seed = 2;
  opts.maxEvents = 50000;
  opts.sched.kind = sched::SchedulerKind::SSync;
  sim::Engine eng(start, io::starPattern(start.size()), algo, opts);
  const auto res = eng.run();
  EXPECT_TRUE(res.terminated);  // deterministically idle = "terminal"
  EXPECT_EQ(res.metrics.distance, 0.0);  // nobody ever moved
  sim::Snapshot snap;
  snap.robots = eng.positions();
  snap.pattern = io::starPattern(start.size());
  snap.selfIndex = 0;
  core::Analysis a(snap);
  EXPECT_FALSE(a.selectedRobot().has_value()) << "election impossible";
}

}  // namespace
}  // namespace apf::baseline
