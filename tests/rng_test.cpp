/// Tests of the counting random source (sched/rng.h). The random-bit
/// ledger is the measurement the paper's "one bit per robot per cycle"
/// claim is checked against (bench_randbits, the A/B estimation gate), so
/// its accounting rules are pinned here: bit() costs exactly 1, uniform()
/// exactly 53, adversary draws cost nothing.

#include <gtest/gtest.h>

#include "sched/rng.h"

namespace apf {
namespace {

TEST(RandomSourceTest, BitCostsExactlyOne) {
  sched::RandomSource rng(1);
  EXPECT_EQ(rng.bitsConsumed(), 0u);
  for (std::uint64_t i = 1; i <= 100; ++i) {
    rng.bit();
    EXPECT_EQ(rng.bitsConsumed(), i);
  }
}

TEST(RandomSourceTest, UniformCostsFiftyThreeAndStaysInRange) {
  sched::RandomSource rng(2);
  for (std::uint64_t i = 1; i <= 100; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_EQ(rng.bitsConsumed(), 53 * i);
  }
}

TEST(RandomSourceTest, MixedDrawsSumTheirCosts) {
  sched::RandomSource rng(3);
  rng.bit();
  rng.uniform();
  rng.bit();
  rng.bit();
  rng.uniform();
  EXPECT_EQ(rng.bitsConsumed(), 3 * 1 + 2 * 53u);
}

TEST(RandomSourceTest, AdversaryDrawsAreFree) {
  // Scheduler/adversary randomness is not algorithm randomness: raw engine
  // draws must not move the ledger (the paper's bit complexity counts only
  // what the ALGORITHM consumes).
  sched::RandomSource rng(4);
  std::mt19937_64& adversary = rng.adversaryEngine();
  for (int i = 0; i < 10; ++i) adversary();
  std::uniform_int_distribution<int> pick(0, 99);
  pick(adversary);
  EXPECT_EQ(rng.bitsConsumed(), 0u);
  // ... but the engine is genuinely shared: adversary draws advance the
  // same stream that bit() reads from.
  sched::RandomSource fresh(4);
  bool diverged = false;
  for (int i = 0; i < 64 && !diverged; ++i) {
    diverged = rng.bit() != fresh.bit();
  }
  EXPECT_TRUE(diverged);
}

TEST(RandomSourceTest, SameSeedSameSequence) {
  sched::RandomSource a(42), b(42);
  for (int i = 0; i < 256; ++i) {
    ASSERT_EQ(a.bit(), b.bit());
  }
  ASSERT_EQ(a.uniform(), b.uniform());
  EXPECT_EQ(a.bitsConsumed(), b.bitsConsumed());
}

TEST(RandomSourceTest, CopiesCountIndependently) {
  // A copied source forks both the stream state and the ledger: draws from
  // the copy never bill the original (campaign workers each own a source).
  sched::RandomSource original(7);
  original.bit();
  sched::RandomSource copy = original;
  for (int i = 0; i < 5; ++i) copy.bit();
  copy.uniform();
  EXPECT_EQ(original.bitsConsumed(), 1u);
  EXPECT_EQ(copy.bitsConsumed(), 1u + 5u + 53u);
  // The fork point is exact: the copy's next draw equals what the
  // original's next draw would have been.
  sched::RandomSource probe(7);
  probe.bit();
  sched::RandomSource forked = probe;
  EXPECT_EQ(probe.bit(), forked.bit());
}

}  // namespace
}  // namespace apf
