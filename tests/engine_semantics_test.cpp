/// Scheduler-semantics tests: the observable guarantees of the three
/// execution models (paper §1-2), checked with instrumented algorithms.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "config/generator.h"
#include "core/phases.h"
#include "geom/angle.h"
#include "sim/engine.h"

namespace apf::sim {
namespace {

using config::Configuration;
using geom::Vec2;

/// Records a fingerprint of every snapshot it computes on (sorted pairwise
/// distances — frame-invariant), then moves a little to keep the run busy.
class SnapshotRecorder : public Algorithm {
 public:
  Action compute(const Snapshot& snap, sched::RandomSource&) const override {
    // Fingerprint: sorted pairwise distances, normalized by the largest —
    // invariant under the private frame's rotation, reflection AND scale.
    std::vector<double> dists;
    for (std::size_t i = 0; i < snap.robots.size(); ++i) {
      for (std::size_t j = i + 1; j < snap.robots.size(); ++j) {
        dists.push_back(geom::dist(snap.robots[i], snap.robots[j]));
      }
    }
    std::sort(dists.begin(), dists.end());
    if (!dists.empty() && dists.back() > 0) {
      for (double& d : dists) {
        d = std::round(d / dists.back() * 1e9) / 1e9;
      }
    }
    seen.push_back(dists);
    // Move halfway toward the centroid (shrinks forever, never terminal
    // until the event cap).
    Vec2 centroid{};
    for (const auto& p : snap.robots.points()) centroid += p;
    centroid = centroid / static_cast<double>(snap.robots.size());
    geom::Path path{Vec2{}};
    if (centroid.norm() > 1e-6) path.lineTo(centroid * 0.25);
    return Action{path, core::kBaseline};
  }
  std::string name() const override { return "recorder"; }
  mutable std::vector<std::vector<double>> seen;
};

Configuration square() {
  return Configuration({{2, 2}, {-2, 2}, {-2, -2}, {2, -2}});
}

TEST(SchedulerSemanticsTest, FsyncRobotsShareEachRoundsSnapshot) {
  // In FSYNC all robots Look simultaneously: within each round the four
  // recorded fingerprints must be identical.
  SnapshotRecorder algo;
  EngineOptions opts;
  opts.seed = 3;
  opts.sched.kind = sched::SchedulerKind::FSync;
  opts.maxEvents = 60;  // a few rounds
  Engine eng(square(), square(), algo, opts);
  eng.run();
  ASSERT_GE(algo.seen.size(), 8u);
  for (std::size_t round = 0; round + 4 <= algo.seen.size(); round += 4) {
    for (int k = 1; k < 4; ++k) {
      EXPECT_EQ(algo.seen[round], algo.seen[round + k])
          << "round " << round / 4;
    }
  }
}

TEST(SchedulerSemanticsTest, AsyncProducesStaleSnapshots) {
  // Under ASYNC, at least one Compute must act on a snapshot that differs
  // from the configuration at Compute time. We detect it indirectly: the
  // set of distinct fingerprints exceeds the number of distinct
  // configurations any synchronous schedule could have produced is hard to
  // bound, so instead check the direct signature — two robots computed on
  // the SAME fingerprint while a move happened between their Looks is
  // unobservable here; we settle for: distinct fingerprints < computes
  // (some robots shared stale views) AND > 1 (the config did change).
  SnapshotRecorder algo;
  EngineOptions opts;
  opts.seed = 5;
  opts.sched.kind = sched::SchedulerKind::Async;
  opts.maxEvents = 400;
  Engine eng(square(), square(), algo, opts);
  eng.run();
  std::set<std::vector<double>> distinct(algo.seen.begin(), algo.seen.end());
  EXPECT_GT(distinct.size(), 1u);
  EXPECT_LT(distinct.size(), algo.seen.size());
}

TEST(SchedulerSemanticsTest, SsyncActiveSubsetVaries) {
  // SSYNC activates arbitrary nonempty subsets: over many rounds both
  // "everyone active" and "partial subset" rounds must occur, and every
  // robot must be activated eventually (fairness).
  SnapshotRecorder algo;
  EngineOptions opts;
  opts.seed = 7;
  opts.sched.kind = sched::SchedulerKind::SSync;
  opts.sched.activationProb = 0.5;
  opts.maxEvents = 400;
  Engine eng(square(), square(), algo, opts);
  eng.run();
  // 4 robots, ~0.5 activation: computes strictly between one robot per
  // round and all robots every round.
  EXPECT_GT(algo.seen.size(), 100u);
  EXPECT_LT(algo.seen.size(), 400u);
}

TEST(SchedulerSemanticsTest, EventAccountingConsistent) {
  SnapshotRecorder algo;
  for (auto kind : {sched::SchedulerKind::FSync, sched::SchedulerKind::SSync,
                    sched::SchedulerKind::Async}) {
    EngineOptions opts;
    opts.seed = 11;
    opts.sched.kind = kind;
    opts.maxEvents = 300;
    Engine eng(square(), square(), algo, opts);
    const auto res = eng.run();
    EXPECT_GE(res.metrics.events, res.metrics.cycles);
    EXPECT_GT(res.metrics.distance, 0.0);
  }
}

/// Steps sideways: perpendicular (ccw in the LOCAL frame) to the observed
/// centroid direction. World-frame handedness of the step reveals the
/// robot's chirality.
class TurnLeft : public Algorithm {
 public:
  Action compute(const Snapshot& snap, sched::RandomSource&) const override {
    Vec2 centroid{};
    for (const auto& p : snap.robots.points()) centroid += p;
    centroid = centroid / static_cast<double>(snap.robots.size());
    if (centroid.norm() < 1e-9) return Action::stay(core::kBaseline);
    const Vec2 step = centroid.normalized().perp() * 0.05;
    geom::Path path{Vec2{}};
    path.lineTo(step);
    return Action{path, core::kBaseline};
  }
  std::string name() const override { return "turn-left"; }
};

int mixedHandedness(bool commonChirality, std::uint64_t seed) {
  TurnLeft algo;
  EngineOptions opts;
  opts.seed = seed;
  opts.commonChirality = commonChirality;
  opts.sched.kind = sched::SchedulerKind::FSync;
  opts.maxEvents = 8;  // one round is enough
  config::Rng rng(seed);
  const Configuration start = config::randomConfiguration(8, rng, 3.0, 0.2);
  Engine eng(start, start, algo, opts);
  Vec2 centroid{};
  for (const auto& p : start.points()) centroid += p;
  centroid = centroid / 8.0;
  eng.step();
  int pos = 0, neg = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const Vec2 d = eng.positions()[i] - start[i];
    if (d.norm() < 1e-9) continue;
    const Vec2 toward = centroid - start[i];
    ((toward.cross(d) > 0) ? pos : neg) += 1;
  }
  return std::min(pos, neg);  // 0 = consistent handedness
}

TEST(SchedulerSemanticsTest, ChiralityOptionControlsFrameHandedness) {
  // With common chirality every robot's "left" is the same world rotation;
  // without it, reflected frames flip some robots' steps.
  EXPECT_EQ(mixedHandedness(true, 21), 0);
  int mixed = 0;
  for (std::uint64_t seed : {21ull, 22ull, 23ull}) {
    mixed += mixedHandedness(false, seed);
  }
  EXPECT_GT(mixed, 0) << "no reflected frame in 24 robots is implausible";
}

TEST(SchedulerSemanticsTest, ObserverSeesEveryDistanceUnit) {
  SnapshotRecorder algo;
  EngineOptions opts;
  opts.seed = 13;
  opts.sched.kind = sched::SchedulerKind::Async;
  opts.maxEvents = 200;
  Engine eng(square(), square(), algo, opts);
  double observed = 0.0;
  Configuration prev = eng.positions();
  eng.setObserver([&](const Engine& e, std::size_t robot) {
    observed += geom::dist(e.positions()[robot], prev[robot]);
    prev = e.positions();
  });
  const auto res = eng.run();
  // Straight-line paths only in this algorithm: observer displacement sums
  // to the metric exactly.
  EXPECT_NEAR(observed, res.metrics.distance, 1e-9);
}

}  // namespace
}  // namespace apf::sim
