/// Edge branches of psi_RSB: the handlePartiallyFormedPattern pre-check
/// (appendix A) and the election interacting with its destination cap.

#include <gtest/gtest.h>

#include <cmath>

#include "config/generator.h"
#include "core/phases.h"
#include "core/rsb.h"
#include "geom/angle.h"
#include "io/patterns.h"

namespace apf::core {
namespace {

using config::Configuration;
using geom::kPi;
using geom::kTwoPi;
using geom::Vec2;

/// Pattern: outer 8-gon (radius 1) + inner 4 points (radius 0.45) on rays
/// pi/8 + k*pi/2.
Configuration ringPattern() {
  Configuration f = config::regularPolygon(8, 1.0, {}, 0.0);
  for (int k = 0; k < 4; ++k) {
    const double a = kPi / 8 + k * kPi / 2;
    f.push_back(Vec2{std::cos(a), std::sin(a)} * 0.45);
  }
  return f;
}

/// P: the outer 8-gon EXACTLY at pattern points; Q = 4 robots on the inner
/// pattern rays at the given radius.
Configuration partialConfig(double qRadius) {
  Configuration p = config::regularPolygon(8, 1.0, {}, 0.0);
  for (int k = 0; k < 4; ++k) {
    const double a = kPi / 8 + k * kPi / 2;
    p.push_back(Vec2{std::cos(a), std::sin(a)} * qRadius);
  }
  return p;
}

sim::Snapshot makeSnap(const Configuration& robots,
                       const Configuration& pattern, std::size_t self) {
  sim::Snapshot s;
  s.robots = robots;
  s.pattern = pattern;
  s.selfIndex = self;
  return s;
}

TEST(RsbPartialTest, PreconditionsHold) {
  // The crafted configuration has the intended structure: reg(P) = the
  // inner 4 on the inner pattern rays, complement = the outer pattern ring.
  const Configuration p = partialConfig(0.7);
  Analysis a(makeSnap(p, ringPattern(), 0));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(a.regularSet().has_value());
  EXPECT_FALSE(a.regularSet()->wholeConfig);
  EXPECT_EQ(a.regularSet()->indices.size(), 4u);
  for (std::size_t i : a.regularSet()->indices) EXPECT_GE(i, 8u);
}

TEST(RsbPartialTest, RobotsAboveD1DescendToD1) {
  // Appendix A case 1: the complement already forms F minus the inner
  // points, and the Q robots sit above d1 (the enclosing radius of the
  // remaining pattern points): they are ordered radially down to d1 —
  // this completes the pattern (handled by the main dispatch afterwards).
  const Configuration p = partialConfig(0.7);
  const Configuration f = ringPattern();
  int movers = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    Analysis a(makeSnap(p, f, i));
    sched::RandomSource rng(1);
    const auto act = rsbCompute(a, rng);
    EXPECT_EQ(rng.bitsConsumed(), 0u) << i << " (no election here)";
    if (act.isMove()) {
      ++movers;
      EXPECT_GE(i, 8u) << "only Q robots may move";
      EXPECT_EQ(act.phaseTag, kRsbPartial);
      // Destination: radius d1 = 0.45 on the same ray.
      EXPECT_NEAR(act.path.end().norm(), 0.45, 1e-6);
      EXPECT_NEAR(geom::angDist(act.path.end().arg(), a.P()[i].arg()), 0.0,
                  1e-9);
    }
  }
  EXPECT_EQ(movers, 4);
}

TEST(RsbPartialTest, ElectionCapBlocksOutwardPastD) {
  // Appendix A case 3: Q robots below d = (d1 + d2)/2 = 0.45; the election
  // runs but destinations at or beyond d are suppressed. A robot at 0.42
  // would step outward to 0.48 >= d: the outward branch must become a
  // no-op (bit consumed, no movement), while the inward branch still
  // moves.
  const Configuration p = partialConfig(0.42);
  const Configuration f = ringPattern();
  bool sawInward = false, sawBlockedOutward = false;
  for (std::uint64_t seed = 1; seed <= 40 && (!sawInward || !sawBlockedOutward);
       ++seed) {
    Analysis a(makeSnap(p, f, 8));
    sched::RandomSource rng(seed);
    const auto act = rsbCompute(a, rng);
    ASSERT_EQ(rng.bitsConsumed(), 1u) << "election must be running";
    if (act.isMove()) {
      EXPECT_LT(act.path.end().norm(), a.P()[8].norm());
      sawInward = true;
    } else {
      sawBlockedOutward = true;
    }
  }
  EXPECT_TRUE(sawInward);
  EXPECT_TRUE(sawBlockedOutward);
}

TEST(RsbPartialTest, NoPartialMatchMeansNormalElection) {
  // Complement robots NOT matchable onto the pattern's outer points under
  // any rotation: the pre-check must not fire and the ordinary election
  // runs (outward moves allowed). Robots: a REGULAR outer 8-gon + the Q
  // set; pattern: an outer ring with NON-UNIFORM angles.
  Configuration p = config::regularPolygon(8, 1.0, {}, 0.0);
  for (int k = 0; k < 4; ++k) {
    const double a = kPi / 8 + k * kPi / 2;
    p.push_back(Vec2{std::cos(a), std::sin(a)} * 0.42);
  }
  Configuration f;
  const double ringAngles[] = {0.0, 0.75, 1.6, 2.4, 3.1, 3.9, 4.8, 5.5};
  for (double a : ringAngles) f.push_back({std::cos(a), std::sin(a)});
  for (int k = 0; k < 4; ++k) {
    const double a = kPi / 8 + k * kPi / 2;
    f.push_back(Vec2{std::cos(a), std::sin(a)} * 0.45);
  }
  Analysis probe(makeSnap(p, f, 8));
  ASSERT_TRUE(probe.regularSet().has_value());
  bool sawOutward = false;
  for (std::uint64_t seed = 1; seed <= 40 && !sawOutward; ++seed) {
    Analysis a(makeSnap(p, f, 8));
    sched::RandomSource rng(seed);
    const auto act = rsbCompute(a, rng);
    if (act.isMove() && act.path.end().norm() > a.P()[8].norm()) {
      sawOutward = true;
    }
  }
  EXPECT_TRUE(sawOutward) << "outward steps must not be capped here";
}

TEST(RsbEdgeTest, BiangularWholeConfigElection) {
  // Two concentric squares = a bi-angled whole-configuration regular set:
  // the election runs with Q = P and d = infinity; outward steps are
  // bounded by |r|/7 alone.
  Configuration p = config::regularPolygon(4, 2.0, {}, 0.0);
  const Configuration inner = config::regularPolygon(4, 1.0, {}, 0.6);
  for (const Vec2& v : inner.points()) p.push_back(v);
  const Configuration f = io::starPattern(8);
  bool sawOutwardBound = false;
  for (std::uint64_t seed = 1; seed <= 30 && !sawOutwardBound; ++seed) {
    Analysis a(makeSnap(p, f, 5));
    sched::RandomSource rng(seed);
    const auto act = rsbCompute(a, rng);
    if (act.isMove()) {
      const double r0 = a.P()[5].norm();
      const double r1 = act.path.end().norm();
      if (r1 > r0) {
        EXPECT_NEAR(r1 - r0, r0 / 7.0, 1e-9);
        sawOutwardBound = true;
      }
    }
  }
  EXPECT_TRUE(sawOutwardBound);
}

}  // namespace
}  // namespace apf::core
