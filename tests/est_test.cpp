/// Tests of the estimation subsystem (src/est/): interval known-answer
/// values and coverage properties, summary merge/serialization fixed
/// points, sequential stopping-rule semantics, the adaptive driver's
/// thread-count determinism and journal resume, and the A/B comparison
/// gates. The statistical background is docs/STATISTICS.md.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "est/ab.h"
#include "est/adaptive.h"
#include "est/estimators.h"
#include "est/stopping.h"
#include "sched/seed.h"
#include "sim/supervisor.h"

namespace apf {
namespace {

using est::BernoulliSummary;
using est::Interval;
using est::MomentSummary;

// ------------------------------------------------------------ quantiles --

TEST(EstimatorTest, NormalQuantileKnownValues) {
  EXPECT_NEAR(est::normalQuantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(est::normalQuantile(0.995), 2.5758293035489004, 1e-9);
  EXPECT_NEAR(est::normalQuantile(0.5), 0.0, 1e-12);
  // Symmetry: z(p) == -z(1 - p).
  for (double p : {0.01, 0.1, 0.3, 0.45}) {
    EXPECT_NEAR(est::normalQuantile(p), -est::normalQuantile(1.0 - p), 1e-10);
  }
  EXPECT_THROW(est::normalQuantile(0.0), std::invalid_argument);
  EXPECT_THROW(est::normalQuantile(1.0), std::invalid_argument);
}

TEST(EstimatorTest, IncompleteBetaIdentities) {
  // I_x(1, 1) = x.
  for (double x : {0.0, 0.25, 0.5, 0.9, 1.0}) {
    EXPECT_NEAR(est::regularizedIncompleteBeta(1.0, 1.0, x), x, 1e-12);
  }
  // Reflection: I_x(a, b) + I_{1-x}(b, a) = 1.
  EXPECT_NEAR(est::regularizedIncompleteBeta(3.0, 7.0, 0.3) +
                  est::regularizedIncompleteBeta(7.0, 3.0, 0.7),
              1.0, 1e-12);
}

// ------------------------------------------------------------ intervals --

BernoulliSummary bern(std::uint64_t trials, std::uint64_t successes) {
  BernoulliSummary s;
  s.trials = trials;
  s.successes = successes;
  return s;
}

TEST(EstimatorTest, WilsonKnownValues) {
  // 5/10 at 95%: the standard textbook value.
  const Interval w = est::wilson(bern(10, 5), 0.95);
  EXPECT_NEAR(w.lo, 0.2366, 1e-3);
  EXPECT_NEAR(w.hi, 0.7634, 1e-3);
  // Wilson never degenerates at the boundaries.
  const Interval zero = est::wilson(bern(20, 0), 0.95);
  EXPECT_NEAR(zero.lo, 0.0, 1e-12);
  EXPECT_GT(zero.hi, 0.01);
  const Interval full = est::wilson(bern(20, 20), 0.95);
  EXPECT_LT(full.lo, 1.0);
  EXPECT_GT(full.lo, 0.8);
  EXPECT_NEAR(full.hi, 1.0, 1e-12);
  // No trials: vacuous.
  const Interval none = est::wilson(bern(0, 0), 0.95);
  EXPECT_DOUBLE_EQ(none.lo, 0.0);
  EXPECT_DOUBLE_EQ(none.hi, 1.0);
  // The early-stop anchor of the shipped demo: 48/48 at 95% is already
  // inside a 0.05 half-width (apf_estimate stops at 48 of 512).
  EXPECT_LT(est::wilson(bern(48, 48), 0.95).halfWidth(), 0.05);
}

TEST(EstimatorTest, ClopperPearsonKnownValues) {
  // k = 0: upper bound is 1 - (alpha/2)^(1/n).
  const Interval zero = est::clopperPearson(bern(10, 0), 0.95);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_NEAR(zero.hi, 0.30850, 1e-4);
  // Mirror case by symmetry.
  const Interval full = est::clopperPearson(bern(10, 10), 0.95);
  EXPECT_NEAR(full.lo, 0.69150, 1e-4);
  EXPECT_DOUBLE_EQ(full.hi, 1.0);
  // Midpoint, standard value.
  const Interval mid = est::clopperPearson(bern(10, 5), 0.95);
  EXPECT_NEAR(mid.lo, 0.1871, 1e-3);
  EXPECT_NEAR(mid.hi, 0.8129, 1e-3);
  // Exactness costs width: CP is never tighter than Wilson here.
  const Interval w = est::wilson(bern(10, 5), 0.95);
  EXPECT_GE(mid.hi - mid.lo, w.hi - w.lo);
}

TEST(EstimatorTest, IntervalPredicates) {
  const Interval a{0.1, 0.4};
  const Interval b{0.4, 0.9};
  const Interval c{0.5, 0.9};
  EXPECT_TRUE(a.overlaps(b));  // shared endpoint counts
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(a.contains(0.25));
  EXPECT_FALSE(a.contains(0.45));
  EXPECT_NEAR(a.halfWidth(), 0.15, 1e-12);
}

// ------------------------------------------------------------ summaries --

TEST(SummaryTest, BernoulliMergeMatchesPooledCounts) {
  BernoulliSummary a, b, pooled;
  for (int i = 0; i < 10; ++i) {
    a.add(i % 2 == 0);
    pooled.add(i % 2 == 0);
  }
  for (int i = 0; i < 7; ++i) {
    b.add(i % 3 == 0);
    pooled.add(i % 3 == 0);
  }
  a.merge(b);
  EXPECT_EQ(a.trials, pooled.trials);
  EXPECT_EQ(a.successes, pooled.successes);
}

TEST(SummaryTest, MomentsMatchDirectComputation) {
  const std::vector<double> xs = {3.0, 1.5, 4.25, -2.0, 0.5, 7.75, 3.0};
  MomentSummary s;
  double sum = 0.0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  EXPECT_EQ(s.count, xs.size());
  EXPECT_NEAR(s.mean, mean, 1e-12);
  EXPECT_NEAR(s.variance(), ss / static_cast<double>(xs.size() - 1), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, -2.0);
  EXPECT_DOUBLE_EQ(s.max, 7.75);
}

TEST(SummaryTest, MomentMergeMatchesSequential) {
  MomentSummary left, right, all;
  for (int i = 0; i < 100; ++i) {
    const double x = 0.37 * i - 11.0;
    (i < 40 ? left : right).add(x);
    all.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count, all.count);
  EXPECT_NEAR(left.mean, all.mean, 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min, all.min);
  EXPECT_DOUBLE_EQ(left.max, all.max);
  // Merging an empty summary is the identity.
  MomentSummary empty;
  const double before = left.mean;
  left.merge(empty);
  EXPECT_DOUBLE_EQ(left.mean, before);
}

TEST(SummaryTest, JsonRoundTripsAreExact) {
  BernoulliSummary b = bern(123456789012345ull, 987654321ull);
  const BernoulliSummary b2 = BernoulliSummary::fromJson(b.toJson());
  EXPECT_EQ(b2.trials, b.trials);
  EXPECT_EQ(b2.successes, b.successes);

  MomentSummary m;
  m.add(0.1);  // not representable: exercises shortest round-trip doubles
  m.add(-7.3e-11);
  m.add(1e17);
  const MomentSummary m2 = MomentSummary::fromJson(m.toJson());
  EXPECT_EQ(m2.count, m.count);
  EXPECT_EQ(m2.mean, m.mean);  // bit-exact, not just near
  EXPECT_EQ(m2.m2, m.m2);
  EXPECT_EQ(m2.min, m.min);
  EXPECT_EQ(m2.max, m.max);

  est::Sample s;
  s.success = true;
  s.cycles = 17.0;
  s.events = 123.0;
  s.bits = 42;
  const est::Sample s2 = est::Sample::fromJson(s.toJson());
  EXPECT_EQ(s2.success, s.success);
  EXPECT_EQ(s2.cycles, s.cycles);
  EXPECT_EQ(s2.events, s.events);
  EXPECT_EQ(s2.bits, s.bits);

  EXPECT_THROW(BernoulliSummary::fromJson("not json"), std::runtime_error);
  EXPECT_THROW(MomentSummary::fromJson("{\"count\":1}"), std::runtime_error);
  EXPECT_THROW(est::Sample::fromJson("{}"), std::runtime_error);
}

TEST(SummaryTest, EmpiricalBernsteinBounds) {
  // Zero variance: the bound collapses to the range term alone.
  MomentSummary constant;
  for (int i = 0; i < 50; ++i) constant.add(5.0);
  const Interval c = est::empiricalBernstein(constant, 0.95, 10.0);
  EXPECT_TRUE(c.contains(5.0));
  const double delta = 0.05;
  EXPECT_NEAR(c.halfWidth(), 3.0 * 10.0 * std::log(3.0 / delta) / 50.0, 1e-9);
  // More samples tighten the bound.
  MomentSummary small, big;
  for (int i = 0; i < 30; ++i) small.add(static_cast<double>(i % 7));
  for (int i = 0; i < 3000; ++i) big.add(static_cast<double>(i % 7));
  EXPECT_LT(est::empiricalBernstein(big, 0.95).halfWidth(),
            est::empiricalBernstein(small, 0.95).halfWidth());
  // Empty summary degenerates to [0, 0].
  const Interval none = est::empiricalBernstein(MomentSummary{}, 0.95);
  EXPECT_DOUBLE_EQ(none.lo, 0.0);
  EXPECT_DOUBLE_EQ(none.hi, 0.0);
}

// ------------------------------------------------------------- stopping --

TEST(StoppingTest, ValidateRejectsNonsense) {
  est::StoppingOptions opts;
  opts.batchSize = 0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts = {};
  opts.minSamples = 100;
  opts.maxSamples = 50;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts = {};
  opts.confidence = 1.0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts = {};
  EXPECT_NO_THROW(opts.validate());
}

TEST(StoppingTest, RuleSemantics) {
  est::StoppingOptions opts;
  opts.batchSize = 16;
  opts.minSamples = 32;
  opts.maxSamples = 512;
  opts.targetHalfWidth = 0.05;

  // Before minSamples nothing but the hard budget can stop the run, even
  // with a degenerate (all-success) summary.
  EXPECT_FALSE(est::evaluateStop(opts, bern(16, 16), 16).has_value());
  // 48/48 is inside the target half-width (see WilsonKnownValues).
  const auto hw = est::evaluateStop(opts, bern(48, 48), 48);
  ASSERT_TRUE(hw.has_value());
  EXPECT_EQ(*hw, est::StopReason::HalfWidth);
  // A 50% rate at 48 samples is nowhere near a 0.05 half-width.
  EXPECT_FALSE(est::evaluateStop(opts, bern(48, 24), 48).has_value());
  // The budget always stops, and wins over everything else.
  const auto cap = est::evaluateStop(opts, bern(512, 256), 512);
  ASSERT_TRUE(cap.has_value());
  EXPECT_EQ(*cap, est::StopReason::MaxSamples);

  // Futility: 0/64 has a Wilson upper bound well under a 0.5 floor.
  opts.targetHalfWidth = 0.0;
  opts.futilityFloor = 0.5;
  const auto fut = est::evaluateStop(opts, bern(64, 0), 64);
  ASSERT_TRUE(fut.has_value());
  EXPECT_EQ(*fut, est::StopReason::Futility);
  // ... but not when the observed rate is at the floor.
  EXPECT_FALSE(est::evaluateStop(opts, bern(64, 32), 64).has_value());

  EXPECT_STREQ(est::stopReasonName(est::StopReason::MaxSamples),
               "max_samples");
  EXPECT_STREQ(est::stopReasonName(est::StopReason::HalfWidth), "half_width");
  EXPECT_STREQ(est::stopReasonName(est::StopReason::Futility), "futility");
}

// ------------------------------------------------------------- adaptive --

/// Synthetic trial: a pure function of the seed, cheap enough to run
/// thousands of times. Success is a fixed function of seed bits, so the
/// stopping point is a pure function of (base seed, options) as the
/// determinism contract requires.
est::Sample syntheticTrial(std::uint64_t seed, std::uint64_t /*index*/) {
  est::Sample s;
  s.success = (seed & 3) != 0;  // ~75% success
  s.cycles = static_cast<double>(seed % 97);
  s.events = static_cast<double>(seed % 1009);
  s.bits = seed % 11;
  return s;
}

TEST(AdaptiveTest, ReportIsByteIdenticalAcrossJobCounts) {
  est::AdaptiveOptions opts;
  opts.baseSeed = 42;
  opts.stop.batchSize = 8;
  opts.stop.minSamples = 16;
  opts.stop.maxSamples = 160;
  opts.stop.targetHalfWidth = 0.02;  // never reached: runs to the budget

  opts.jobs = 1;
  const est::ArmEstimate serial =
      est::runAdaptive("synthetic", syntheticTrial, opts);
  opts.jobs = 4;
  const est::ArmEstimate pooled =
      est::runAdaptive("synthetic", syntheticTrial, opts);
  EXPECT_EQ(serial.toJson(), pooled.toJson());
  EXPECT_EQ(serial.samples, 160u);
  EXPECT_EQ(serial.batches, 20u);
  EXPECT_FALSE(serial.converged);
  EXPECT_EQ(serial.stopReason, est::StopReason::MaxSamples);
}

TEST(AdaptiveTest, StopsEarlyWhenPrecisionReached) {
  est::AdaptiveOptions opts;
  opts.baseSeed = 7;
  opts.stop.batchSize = 16;
  opts.stop.minSamples = 32;
  opts.stop.maxSamples = 4096;
  opts.stop.targetHalfWidth = 0.05;
  const est::ArmEstimate arm = est::runAdaptive(
      "always",
      [](std::uint64_t, std::uint64_t) {
        est::Sample s;
        s.success = true;
        return s;
      },
      opts);
  EXPECT_TRUE(arm.converged);
  EXPECT_EQ(arm.stopReason, est::StopReason::HalfWidth);
  EXPECT_LT(arm.samples, 4096u);
  // The stopping point is exactly the first batch boundary >= minSamples
  // where the all-success Wilson half-width is <= 0.05: at 32 it is still
  // ~0.054, at 48 it is ~0.037 — so the rule fires at 48.
  EXPECT_EQ(arm.samples, 48u);
}

TEST(AdaptiveTest, TrialSeedsComeFromTheAuditedDerivation) {
  // The driver must feed trial i exactly sampleSeed(base, i): collect the
  // seeds and compare.
  std::vector<std::uint64_t> seen(24, 0);
  est::AdaptiveOptions opts;
  opts.baseSeed = 99;
  opts.jobs = 1;
  opts.stop.batchSize = 8;
  opts.stop.minSamples = 8;
  opts.stop.maxSamples = 24;
  opts.stop.targetHalfWidth = 0.0;
  est::runAdaptive(
      "seeds",
      [&seen](std::uint64_t seed, std::uint64_t index) {
        seen[index] = seed;
        return est::Sample{};
      },
      opts);
  for (std::uint64_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], sched::sampleSeed(99, i)) << "index " << i;
  }
}

TEST(AdaptiveTest, JournalResumeRerunsNothing) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "est_resume.journal")
          .string();
  std::filesystem::remove(path);
  est::AdaptiveOptions opts;
  opts.baseSeed = 5;
  opts.jobs = 2;
  opts.stop.batchSize = 8;
  opts.stop.minSamples = 16;
  opts.stop.maxSamples = 64;
  opts.stop.targetHalfWidth = 0.0;  // run the whole budget

  std::string first;
  {
    sim::CampaignJournal journal(path, "{\"k\":\"est_test\"}", false);
    opts.journal = &journal;
    first = est::runAdaptive("journaled", syntheticTrial, opts).toJson();
  }
  // Resume from the complete journal: every sample is already recorded, so
  // the trial must not run even once — and the report is byte-identical.
  std::atomic<int> executed{0};
  {
    sim::CampaignJournal journal(path, "{\"k\":\"est_test\"}", true);
    opts.journal = &journal;
    const est::ArmEstimate again = est::runAdaptive(
        "journaled",
        [&executed](std::uint64_t seed, std::uint64_t index) {
          executed.fetch_add(1);
          return syntheticTrial(seed, index);
        },
        opts);
    EXPECT_EQ(again.toJson(), first);
  }
  EXPECT_EQ(executed.load(), 0);
  std::filesystem::remove(path);
}

TEST(AdaptiveTest, ManifestCarriesTheArm) {
  est::AdaptiveOptions opts;
  opts.baseSeed = 1;
  opts.stop.batchSize = 8;
  opts.stop.minSamples = 8;
  opts.stop.maxSamples = 16;
  const est::ArmEstimate arm =
      est::runAdaptive("manifested", syntheticTrial, opts);
  obs::Manifest m;
  est::appendManifest(arm, m);
  const auto parsed = obs::parseFlatObject(m.toJson());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->at("est.label").asString(), "manifested");
  EXPECT_DOUBLE_EQ(parsed->at("est.samples").asNumber(),
                   static_cast<double>(arm.samples));
  EXPECT_EQ(parsed->at("est.stop_reason").asString(),
            est::stopReasonName(arm.stopReason));
}

// ------------------------------------------------------------------ A/B --

TEST(AbTest, RateGateSeparatesClearDifferences) {
  const auto sep = est::compareRates(bern(100, 90), bern(100, 10), 0.95);
  EXPECT_EQ(sep.verdict, est::Verdict::AHigher);
  EXPECT_GT(sep.ci.lo, 0.0);
  EXPECT_NEAR(sep.diff, 0.8, 1e-12);

  const auto same = est::compareRates(bern(100, 50), bern(100, 50), 0.95);
  EXPECT_EQ(same.verdict, est::Verdict::Indistinguishable);
  EXPECT_TRUE(same.ci.contains(0.0));

  // Newcombe stays inside [-1, 1] even at the degenerate extremes where a
  // Wald interval would poke outside.
  const auto extreme = est::compareRates(bern(5, 0), bern(5, 5), 0.95);
  EXPECT_EQ(extreme.verdict, est::Verdict::BHigher);
  EXPECT_GE(extreme.ci.lo, -1.0);
  EXPECT_LE(extreme.ci.hi, 1.0);
}

TEST(AbTest, MeanGateNeedsDisjointBounds) {
  MomentSummary low, high, mid;
  for (int i = 0; i < 200; ++i) {
    low.add(1.0 + 0.01 * (i % 5));
    high.add(50.0 + 0.01 * (i % 5));
    mid.add(1.0 + 0.01 * ((i + 1) % 5));  // same mean as `low`, shifted phase
  }
  const auto sep = est::compareMeans(high, low, 0.95);
  EXPECT_EQ(sep.verdict, est::Verdict::AHigher);
  EXPECT_FALSE(sep.a.overlaps(sep.b));
  // Close means with overlapping bounds: no verdict, by design.
  const auto close = est::compareMeans(mid, low, 0.95);
  EXPECT_EQ(close.verdict, est::Verdict::Indistinguishable);
  // An empty arm can never win a verdict.
  const auto empty = est::compareMeans(MomentSummary{}, low, 0.95);
  EXPECT_EQ(empty.verdict, est::Verdict::Indistinguishable);

  EXPECT_STREQ(est::verdictName(est::Verdict::Indistinguishable),
               "indistinguishable");
  EXPECT_STREQ(est::verdictName(est::Verdict::AHigher), "a_higher");
  EXPECT_STREQ(est::verdictName(est::Verdict::BHigher), "b_higher");
}

TEST(AbTest, CompareArmsIsPureAndByteStable) {
  est::AdaptiveOptions opts;
  opts.baseSeed = 11;
  opts.stop.batchSize = 16;
  opts.stop.minSamples = 32;
  opts.stop.maxSamples = 64;
  const est::ArmEstimate a = est::runAdaptive("a", syntheticTrial, opts);
  opts.baseSeed = 12;
  const est::ArmEstimate b = est::runAdaptive(
      "b",
      [](std::uint64_t seed, std::uint64_t index) {
        est::Sample s = syntheticTrial(seed, index);
        s.bits += 1000;  // clearly separated bit consumption
        return s;
      },
      opts);
  const est::AbReport r1 = est::compareArms(a, b);
  const est::AbReport r2 = est::compareArms(a, b);
  EXPECT_EQ(r1.toJson(), r2.toJson());
  EXPECT_EQ(r1.bits.verdict, est::Verdict::BHigher);
  EXPECT_DOUBLE_EQ(r1.confidence, a.confidence);
}

// --------------------------------------------------------------- seeding --

TEST(SeedTest, SplitmixReferenceVector) {
  // First output of the public-domain splitmix64 reference for state 0.
  EXPECT_EQ(sched::splitmix64(0), 0xe220a8397b1dcdafull);
}

TEST(SeedTest, SampleSeedFamiliesAreDecorrelated) {
  // Distinct (base, index) pairs give distinct seeds, and consecutive
  // indices share no low-bit structure (every parity pattern appears).
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 64; ++i) {
    seeds.push_back(sched::sampleSeed(1, i));
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());
  EXPECT_NE(sched::sampleSeed(1, 0), sched::sampleSeed(2, 0));
  // Deterministic: same inputs, same seed (compile-time evaluable).
  static_assert(sched::sampleSeed(3, 4) == sched::sampleSeed(3, 4));
}

}  // namespace
}  // namespace apf
