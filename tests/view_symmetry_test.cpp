#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "config/generator.h"
#include "config/symmetry.h"
#include "config/view.h"
#include "geom/angle.h"

namespace apf::config {
namespace {

using geom::kTwoPi;
using geom::Vec2;

TEST(SymmetryTest, RegularPolygonHasFullSymmetricity) {
  for (int m : {3, 4, 5, 7, 12}) {
    const Configuration p = regularPolygon(m, 2.0, {1, 1}, 0.4);
    EXPECT_EQ(symmetricity(p, {1, 1}), m);
    EXPECT_EQ(static_cast<int>(symmetryAxes(p, {1, 1}).size()), m);
  }
}

TEST(SymmetryTest, TwoConcentricPolygonsGcdSymmetricity) {
  // 6-gon + 4-gon around the same center: symmetricity gcd(6,4) = 2.
  Configuration p = regularPolygon(6, 2.0, {}, 0.0);
  const Configuration q = regularPolygon(4, 1.0, {}, 0.0);
  for (const Vec2& v : q.points()) p.push_back(v);
  EXPECT_EQ(symmetricity(p, {}), 2);
}

TEST(SymmetryTest, GenericConfigurationAsymmetric) {
  Rng rng(3);
  const Configuration p = randomConfiguration(9, rng);
  const Vec2 c = p.sec().center;
  EXPECT_EQ(symmetricity(p, c), 1);
  EXPECT_TRUE(symmetryAxes(p, c).empty());
}

TEST(SymmetryTest, AxialOnlyConfiguration) {
  // Mirror-symmetric but not rotationally symmetric: rho = 1, one axis.
  const Configuration p({{0, 2}, {1, 1}, {-1, 1}, {0.5, -1}, {-0.5, -1}});
  const Vec2 c{0, 0};
  EXPECT_EQ(symmetricity(p, c), 1);
  const auto axes = symmetryAxes(p, c);
  ASSERT_EQ(axes.size(), 1u);
  EXPECT_NEAR(axes[0], geom::kPi / 2, 1e-9);
}

TEST(SymmetryTest, RotationAndReflectionPredicates) {
  const Configuration sq = regularPolygon(4, 1.0);
  EXPECT_TRUE(rotationMapsToSelf(sq, {}, kTwoPi / 4));
  EXPECT_TRUE(rotationMapsToSelf(sq, {}, kTwoPi / 2));
  EXPECT_FALSE(rotationMapsToSelf(sq, {}, kTwoPi / 3));
  EXPECT_TRUE(reflectionMapsToSelf(sq, {}, 0.0));
  EXPECT_TRUE(reflectionMapsToSelf(sq, {}, geom::kPi / 4));
  EXPECT_FALSE(reflectionMapsToSelf(sq, {}, 0.1));
}

TEST(ViewTest, EquivalentRobotsShareViews) {
  const Configuration p = regularPolygon(5, 1.0, {}, 0.9);
  const auto views = allViews(p, Vec2{});
  for (std::size_t i = 1; i < p.size(); ++i) {
    EXPECT_EQ(compareViews(views[0], views[i]), 0);
  }
}

TEST(ViewTest, GenericViewsAreDistinctAndTotallyOrdered) {
  Rng rng(11);
  const Configuration p = randomConfiguration(10, rng);
  const Vec2 c = p.sec().center;
  const auto views = allViews(p, c);
  for (std::size_t i = 0; i < p.size(); ++i) {
    for (std::size_t j = i + 1; j < p.size(); ++j) {
      EXPECT_NE(compareViews(views[i], views[j]), 0)
          << "robots " << i << " and " << j << " tie";
    }
  }
}

TEST(ViewTest, ViewInvariantUnderSimilarity) {
  Rng rng(12);
  const Configuration p = randomConfiguration(8, rng);
  const Vec2 c = p.sec().center;
  const geom::Similarity t(1.234, 3.7, false, {10, -4});
  const Configuration q = p.transformed(t);
  const Vec2 c2 = q.sec().center;
  const auto vp = allViews(p, c);
  const auto vq = allViews(q, c2);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(compareViews(vp[i], vq[i]), 0) << "robot " << i;
  }
}

TEST(ViewTest, ViewKeyEqualUnderReflectionButOrientationFlips) {
  Rng rng(13);
  const Configuration p = randomConfiguration(8, rng);
  const Vec2 c = p.sec().center;
  const Configuration q = p.transformed(geom::Similarity::mirrorX());
  const Vec2 c2 = q.sec().center;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const View a = localView(p, i, c);
    const View b = localView(q, i, c2);
    EXPECT_EQ(a.key, b.key);
    EXPECT_EQ(a.orientation, -b.orientation);
  }
}

TEST(ViewTest, AxisRobotHasOrientationZero) {
  // Robot on the symmetry axis of an isosceles configuration.
  const Configuration p({{0, 2}, {1, 1}, {-1, 1}, {0, -1}});
  const Vec2 c{0, 0};  // not the SEC center, but a center on the axis
  const View apex = localView(p, 0, c);
  EXPECT_EQ(apex.orientation, 0);
  const View side = localView(p, 1, c);
  EXPECT_NE(side.orientation, 0);
}

TEST(ViewTest, MaxViewSelectsMirrorPairInAxialConfig) {
  const Configuration p({{0, 2}, {1, 1}, {-1, 1}, {0.5, -1}, {-0.5, -1}});
  const Vec2 c{0, 0};
  const auto maxSet = maxViewRobots(p, c);
  // In an axially symmetric config the max-view class is closed under the
  // mirror; it has either 1 robot (on the axis) or a mirror pair.
  for (std::size_t i : maxSet) {
    const Vec2 mirrored{-p[i].x, p[i].y};
    bool mirrorInSet = false;
    for (std::size_t j : maxSet) {
      if (geom::nearlyEqual(p[j], mirrored)) mirrorInSet = true;
    }
    EXPECT_TRUE(mirrorInSet) << "robot " << i;
  }
}

TEST(ViewTest, CenterRobotViewIsGreatest) {
  const Configuration p({{0, 0}, {1, 0}, {0, 1}, {-1, -1}});
  const View center = localView(p, 0, Vec2{});
  const View other = localView(p, 1, Vec2{});
  EXPECT_TRUE(center.atCenter);
  EXPECT_GT(compareViews(center, other), 0);
}

TEST(ViewTest, MultiplicityChangesViewOnlyWhenEnabled) {
  const Configuration single({{1, 0}, {0, 1}, {-1, 0}});
  const Configuration doubled({{1, 0}, {1, 0}, {0, 1}, {-1, 0}});
  const View a = localView(single, 1, Vec2{}, false);
  const View b = localView(doubled, 2, Vec2{}, false);
  EXPECT_EQ(compareViews(a, b), 0);
  const View bm = localView(doubled, 2, Vec2{}, true);
  EXPECT_NE(compareViews(a, bm), 0);
}

TEST(ViewOrderTest, ByViewDescendingIsConsistent) {
  Rng rng(14);
  const Configuration p = randomConfiguration(12, rng);
  const Vec2 c = p.sec().center;
  const auto order = byViewDescending(p, c);
  const auto views = allViews(p, c);
  ASSERT_EQ(order.size(), p.size());
  for (std::size_t k = 1; k < order.size(); ++k) {
    EXPECT_GE(compareViews(views[order[k - 1]], views[order[k]]), 0);
  }
  EXPECT_EQ(order.front(), maxViewRobots(p, c).front());
}

TEST(AxialGeneratorTest, ProducesMirrorSymmetryWithRhoOne) {
  Rng rng(77);
  for (int pairs : {3, 4, 5}) {
    const Configuration p = axialConfiguration(pairs, 1, rng);
    EXPECT_EQ(p.size(), static_cast<std::size_t>(2 * pairs + 1));
    // The generator's axis is the y-axis through the origin; the SEC
    // center lies on it, so the reflection still maps P to itself.
    const Vec2 c = p.sec().center;
    EXPECT_NEAR(c.x, 0.0, 1e-9);
    EXPECT_TRUE(reflectionMapsToSelf(p, c, geom::kPi / 2));
    EXPECT_EQ(symmetricity(p, c), 1);
    // Property 1: axial symmetry implies a regular set exists. (Covered in
    // regular_test for rotational symmetry; this is the mirror case.)
  }
}

TEST(SymmetricGeneratorTest, ProducesRequestedSymmetricity) {
  Rng rng(15);
  for (int rho : {2, 3, 4, 6}) {
    const Configuration p = symmetricConfiguration(rho, 3, rng);
    EXPECT_EQ(symmetricity(p, {}), rho) << "rho=" << rho;
  }
}

}  // namespace
}  // namespace apf::config
