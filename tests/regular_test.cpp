#include <gtest/gtest.h>

#include <cmath>

#include "config/generator.h"
#include "config/rays.h"
#include "config/regular.h"
#include "config/symmetry.h"
#include "geom/angle.h"

namespace apf::config {
namespace {

using geom::kPi;
using geom::kTwoPi;
using geom::Vec2;

TEST(RegularKnownCenterTest, EquiangularDetected) {
  const double radii[] = {1.0, 2.0, 1.5, 0.7, 2.4};
  const Configuration p = equiangularSet(radii, {2, -1}, 0.3);
  std::vector<std::size_t> all{0, 1, 2, 3, 4};
  const auto info = checkRegularKnownCenter(p, all, {2, -1});
  ASSERT_TRUE(info.has_value());
  EXPECT_FALSE(info->biangular);
  EXPECT_EQ(info->indices.size(), 5u);
  EXPECT_EQ(info->rotationalOrder(), 5);
  EXPECT_NEAR(info->grid.alpha, kTwoPi / 5, 1e-9);
}

TEST(RegularKnownCenterTest, BiangularDetectedWithCanonicalAlpha) {
  const double radii[] = {1, 1, 1, 1, 1, 1};
  const Configuration p = biangularSet(6, 0.5, radii, {}, 1.1);
  std::vector<std::size_t> all{0, 1, 2, 3, 4, 5};
  const auto info = checkRegularKnownCenter(p, all, {});
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(info->biangular);
  EXPECT_EQ(info->rotationalOrder(), 3);
  EXPECT_NEAR(info->grid.alpha, 0.5, 1e-9);
  EXPECT_LT(info->grid.alpha, info->grid.beta);
}

TEST(RegularKnownCenterTest, RejectsSharedRayAndOffGrid) {
  // Two robots on the same ray from the center.
  const Configuration p({{1, 0}, {2, 0}, {0, 1}, {-1, 0}});
  std::vector<std::size_t> all{0, 1, 2, 3};
  EXPECT_FALSE(checkRegularKnownCenter(p, all, {}).has_value());
  // Generic asymmetric points.
  Rng rng(5);
  const Configuration q = randomConfiguration(6, rng);
  std::vector<std::size_t> all6{0, 1, 2, 3, 4, 5};
  EXPECT_FALSE(checkRegularKnownCenter(q, all6, q.sec().center).has_value());
}

TEST(RegularFreeCenterTest, RecoversOffsetCenter) {
  const double radii[] = {1.0, 2.0, 1.5, 0.7, 2.4, 1.1, 0.9};
  const Configuration p = equiangularSet(radii, {5, 3}, 2.2);
  const auto info = checkRegularFreeCenter(p);
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(info->wholeConfig);
  EXPECT_NEAR(info->grid.center.x, 5.0, 1e-7);
  EXPECT_NEAR(info->grid.center.y, 3.0, 1e-7);
}

TEST(RegularFreeCenterTest, BiangularWholeConfig) {
  const double radii[] = {1.3, 2.0, 1.3, 2.0, 1.3, 2.0, 1.3, 2.0};
  const Configuration p = biangularSet(8, 0.6, radii, {-2, 4}, 0.15);
  const auto info = checkRegularFreeCenter(p);
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(info->biangular);
  EXPECT_NEAR(info->grid.center.x, -2.0, 1e-7);
  EXPECT_NEAR(info->grid.center.y, 4.0, 1e-7);
  EXPECT_NEAR(std::min(info->grid.alpha, info->grid.beta), 0.6, 1e-7);
}

TEST(RegularFreeCenterTest, RejectsGenericConfig) {
  Rng rng(6);
  const Configuration p = randomConfiguration(9, rng);
  EXPECT_FALSE(checkRegularFreeCenter(p).has_value());
}

TEST(RegularSetOfTest, WholeConfigRegular) {
  const double radii[] = {1.0, 2.0, 1.5, 0.7, 2.4, 1.1, 0.9};
  const Configuration p = equiangularSet(radii, {}, 0.0);
  const auto info = regularSetOf(p);
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(info->wholeConfig);
  EXPECT_EQ(info->indices.size(), 7u);
}

TEST(RegularSetOfTest, TwoConcentricSquaresAreBiangledWhole) {
  // Outer 4-gon + inner 4-gon rotated: the 8 rays alternate gaps 0.3 and
  // pi/2 - 0.3, so the WHOLE configuration is a bi-angled 8-point set and
  // Definition 2 gives reg(P) = P.
  Configuration p = regularPolygon(4, 2.0, {}, 0.0);
  const Configuration inner = regularPolygon(4, 1.0, {}, 0.3);
  for (const Vec2& v : inner.points()) p.push_back(v);
  const auto info = regularSetOf(p);
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(info->wholeConfig);
  EXPECT_TRUE(info->biangular);
  EXPECT_EQ(info->indices.size(), 8u);
}

TEST(RegularSetOfTest, ProperSubsetClassOfOctagonPlusSquare) {
  // 8-gon + inner 4-gon (phases offset): whole config is not regular;
  // rho(P) = 4, so Property 1 demands a regular set. Definition 2 yields a
  // view-class of 4 robots forming a square around the center.
  Configuration p = regularPolygon(8, 2.0, {}, 0.0);
  const Configuration inner = regularPolygon(4, 1.0, {}, 0.3);
  for (const Vec2& v : inner.points()) p.push_back(v);
  ASSERT_FALSE(checkRegularFreeCenter(p).has_value());
  const auto info = regularSetOf(p);
  ASSERT_TRUE(info.has_value());
  EXPECT_FALSE(info->wholeConfig);
  EXPECT_EQ(info->indices.size(), 4u);
  EXPECT_EQ(info->rotationalOrder(), 4);
  EXPECT_NEAR(geom::dist(info->grid.center, {}), 0.0, 1e-9);
}

TEST(RegularSetOfTest, Property1SymmetricConfigsHaveRegularSet) {
  // Property 1: rho(P) > 1 or axial symmetry implies a regular set exists.
  Rng rng(21);
  for (int rho : {2, 3, 4, 5}) {
    const Configuration p = symmetricConfiguration(rho, 3, rng);
    EXPECT_TRUE(regularSetOf(p).has_value()) << "rho=" << rho;
  }
}

TEST(RegularSetOfTest, GenericAsymmetricConfigHasNone) {
  Rng rng(22);
  const Configuration p = randomConfiguration(11, rng);
  EXPECT_FALSE(regularSetOf(p).has_value());
}

TEST(RegularSetOfTest, DivisibilityConditionEnforced) {
  // Inner 3-gon + outer 4-gon: 3 does not divide rho(P/Q)=4... but an inner
  // triangle with an outer square gives rho(P)=1 overall and the triangle
  // prefix fails condition (b), so no regular set unless the whole config is
  // symmetric in a compatible way.
  Configuration p = regularPolygon(4, 2.0, {}, 0.0);
  const Configuration inner = regularPolygon(3, 1.0, {}, 0.25);
  for (const Vec2& v : inner.points()) p.push_back(v);
  const auto info = regularSetOf(p);
  // The triangle is 3-regular around the center but 3 does not divide 4.
  if (info.has_value()) {
    EXPECT_NE(info->indices.size(), 3u);
  }
}

TEST(RegularSetOfTest, CenterOfRegularVsGeneric) {
  const double radii[] = {1.0, 2.0, 1.5, 0.7, 2.4, 1.1, 0.9};
  const Configuration reg = equiangularSet(radii, {4, 4}, 0.0);
  const Vec2 c = centerOf(reg);
  EXPECT_NEAR(c.x, 4.0, 1e-7);
  EXPECT_NEAR(c.y, 4.0, 1e-7);
  Rng rng(23);
  const Configuration gen = randomConfiguration(8, rng);
  const Vec2 cg = centerOf(gen);
  EXPECT_TRUE(geom::nearlyEqual(cg, gen.sec().center));
}

TEST(RaysTest, AlphaMinOfPolygon) {
  const Configuration p = regularPolygon(8, 1.0);
  EXPECT_NEAR(alphaMin(p, {}), kTwoPi / 8, 1e-9);
  EXPECT_NEAR(alphaMinAt({std::cos(0.1), std::sin(0.1)}, p, {}), 0.1, 1e-9);
}

TEST(RaysTest, RayDirectionsDeduplicated) {
  const Configuration p({{1, 0}, {2, 0}, {0, 3}, {0, 1}});
  const auto dirs = rayDirections(p, {});
  EXPECT_EQ(dirs.size(), 2u);
}

TEST(VirtualAxesTest, BiangularAxesBisectGaps) {
  const double radii[] = {1, 1, 1, 1};
  const Configuration p = biangularSet(4, 0.7, radii, {}, 0.0);
  std::vector<std::size_t> all{0, 1, 2, 3};
  const auto info = checkRegularKnownCenter(p, all, {});
  ASSERT_TRUE(info.has_value());
  ASSERT_TRUE(info->biangular);
  const auto axes = virtualAxes(info->grid);
  // A bi-angled 4-point set has 2 distinct virtual axes.
  EXPECT_EQ(axes.size(), 2u);
  // Every axis is a symmetry axis of the set itself.
  for (double a : axes) {
    EXPECT_TRUE(reflectionMapsToSelf(p, info->grid.center, a));
  }
}

}  // namespace
}  // namespace apf::config
