/// \file shard_test.cpp
/// The apf.shard.v1 wire contract and the sharded-execution determinism
/// guarantees (src/sim/shard.h):
///
///  * ShardSpec round-trips through its canonical JSON, and re-encoding a
///    decoded spec is a byte-level fixed point — the property the journal
///    config key relies on.
///  * A spec from a different wire version is refused loudly, never
///    guessed at.
///  * shardRange is a contiguous, balanced, exact partition of [0, runs).
///  * A run's payload depends only on (spec, global index, attempt salt).
///  * Merging shard journals yields a file byte-identical to the journal
///    of a single-process run — on scripted (fixed points), fuzz (random
///    starts), and fault-plan campaigns, serial and on a thread pool —
///    and resuming a partially-journaled shard converges to the same
///    bytes.
///  * Journals of a different campaign refuse to merge.
///
/// The process-level coordinator (fork/exec, watchdogs, retries) is
/// exercised end to end by tools/kill_resume_check.sh and the
/// campaign_sharded bench row; these tests pin the in-process layers those
/// drills build on.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "config/generator.h"
#include "core/form_pattern.h"
#include "io/patterns.h"
#include "sim/shard.h"
#include "sim/supervisor.h"

namespace apf::sim {
namespace {

std::string readAll(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is) << "cannot open " << path;
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

std::string tempPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

/// "scripted" workload: every run starts from the same fixed points.
ShardSpec scriptedSpec() {
  ShardSpec s;
  s.algo = "form";
  s.n = 6;
  s.patternLabel = "star";
  s.pattern = io::starPattern(6);
  s.startKind = "points";
  config::Rng rng(77);
  s.start = config::randomConfiguration(6, rng, 5.0, 0.1);
  s.baseSeed = 11;
  s.runs = 8;
  s.maxEvents = 1500;
  return s;
}

/// "fuzz" workload: a fresh random start per run, derived from the
/// effective seed.
ShardSpec fuzzSpec() {
  ShardSpec s;
  s.algo = "form";
  s.n = 6;
  s.patternLabel = "star";
  s.pattern = io::starPattern(6);
  s.startKind = "random";
  s.baseSeed = 23;
  s.runs = 8;
  s.maxEvents = 1500;
  return s;
}

/// "fault-plan" workload: crash-stop victims re-drawn per run plus sensor
/// noise and truncation.
ShardSpec faultSpec() {
  ShardSpec s = fuzzSpec();
  s.baseSeed = 31;
  s.crashF = 1;
  s.crashHorizon = 500;
  s.fault.noiseSigma = 0.02;
  s.fault.truncProb = 0.1;
  return s;
}

// ------------------------------------------------------------------ wire --

TEST(ShardSpecTest, RoundTripPreservesEveryField) {
  ShardSpec s = faultSpec();
  s.startKind = "points";
  config::Rng rng(5);
  s.start = config::randomConfiguration(6, rng, 5.0, 0.1);
  s.sched = sched::SchedulerKind::SSync;
  s.delta = 0.123456789012345;
  s.multiplicity = true;
  s.commonChirality = true;
  s.faultSeedSet = true;
  s.fault.seed = 99;
  s.watchdogEvents = 50000;
  s.watchdogMs = 1234;
  s.retries = 5;

  const ShardSpec d = shardSpecFromJson(toJson(s));
  EXPECT_EQ(d.algo, s.algo);
  EXPECT_EQ(d.n, s.n);
  EXPECT_EQ(d.patternLabel, s.patternLabel);
  EXPECT_EQ(d.pattern.size(), s.pattern.size());
  EXPECT_EQ(d.startKind, s.startKind);
  EXPECT_EQ(d.start.size(), s.start.size());
  EXPECT_EQ(d.sched, s.sched);
  EXPECT_EQ(d.baseSeed, s.baseSeed);
  EXPECT_EQ(d.runs, s.runs);
  EXPECT_EQ(d.maxEvents, s.maxEvents);
  EXPECT_EQ(d.delta, s.delta);
  EXPECT_EQ(d.multiplicity, s.multiplicity);
  EXPECT_EQ(d.commonChirality, s.commonChirality);
  EXPECT_EQ(d.crashF, s.crashF);
  EXPECT_EQ(d.crashHorizon, s.crashHorizon);
  EXPECT_EQ(d.fault.seed, s.fault.seed);
  EXPECT_EQ(d.fault.noiseSigma, s.fault.noiseSigma);
  EXPECT_EQ(d.fault.truncProb, s.fault.truncProb);
  EXPECT_EQ(d.faultSeedSet, s.faultSeedSet);
  EXPECT_EQ(d.watchdogEvents, s.watchdogEvents);
  EXPECT_EQ(d.watchdogMs, s.watchdogMs);
  EXPECT_EQ(d.retries, s.retries);
}

TEST(ShardSpecTest, EncodingIsAFixedPointProperty) {
  // shardConfigKey IS toJson, so decode->encode must reproduce the exact
  // bytes for ANY spec — sweep a family of field combinations, including
  // doubles that need shortest-round-trip formatting.
  for (std::uint64_t i = 0; i < 32; ++i) {
    ShardSpec s;
    s.algo = (i % 2) != 0u ? "rsb" : "form";
    s.n = 4 + (i % 5);
    s.pattern = io::starPattern(s.n);
    s.startKind = (i % 3) == 0 ? "points" : ((i % 3) == 1 ? "random"
                                                          : "symmetric");
    if (s.startKind == "points") {
      config::Rng rng(100 + i);
      s.start = config::randomConfiguration(s.n, rng, 5.0, 0.1);
    }
    s.baseSeed = i * 0x9E3779B97F4A7C15ull + 1;
    s.runs = 1 + i;
    s.delta = 0.05 + static_cast<double>(i) / 3.0;
    s.multiplicity = (i % 2) != 0u;
    s.crashF = static_cast<int>(i % 2);
    s.fault.noiseSigma = static_cast<double>(i) / 7.0;
    s.faultSeedSet = (i % 4) == 0;
    s.fault.seed = i;
    const std::string j1 = toJson(s);
    const std::string j2 = toJson(shardSpecFromJson(j1));
    EXPECT_EQ(j1, j2) << "spec " << i << " is not a re-encoding fixed point";
  }
}

TEST(ShardSpecTest, StartPointsOnlyOnWireWhenAuthoritative) {
  ShardSpec s = fuzzSpec();
  config::Rng rng(3);
  s.start = config::randomConfiguration(6, rng, 5.0, 0.1);  // stale scratch
  // startKind is "random": the stale start must NOT appear on the wire,
  // or two behaviorally identical specs would get different config keys.
  EXPECT_EQ(toJson(s).find("\"start\""), std::string::npos);
  EXPECT_NE(toJson(scriptedSpec()).find("\"start\""), std::string::npos);
}

TEST(ShardSpecTest, RefusesSpecsFromOtherWireVersions) {
  std::string v2 = toJson(scriptedSpec());
  const auto at = v2.find("apf.shard.v1");
  ASSERT_NE(at, std::string::npos);
  v2.replace(at, 12, "apf.shard.v2");
  try {
    shardSpecFromJson(v2);
    FAIL() << "a v2 spec must be refused";
  } catch (const std::runtime_error& e) {
    // The refusal names both versions, so the operator can see the skew.
    EXPECT_NE(std::string(e.what()).find("apf.shard.v2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("apf.shard.v1"), std::string::npos);
  }
}

TEST(ShardSpecTest, RefusesMalformedAndSchemalessInput) {
  EXPECT_THROW(shardSpecFromJson("not json"), std::runtime_error);
  EXPECT_THROW(shardSpecFromJson("{\"algo\":\"form\"}"), std::runtime_error);
  EXPECT_THROW(shardSpecFromJson("{\"shard\":\"apf.shard.v1\"}"),
               std::runtime_error);  // no pattern points
}

TEST(ShardSpecTest, IgnoresUnknownKeysWithinV1) {
  std::string j = toJson(scriptedSpec());
  j.insert(j.size() - 1, ",\"future_knob\":42");
  const ShardSpec d = shardSpecFromJson(j);  // must not throw
  EXPECT_EQ(d.runs, scriptedSpec().runs);
}

TEST(ShardSpecTest, SaveLoadRoundTripsThroughDisk) {
  const std::string path = tempPath("spec_roundtrip.json");
  const ShardSpec s = faultSpec();
  saveShardSpec(path, s);
  EXPECT_EQ(toJson(loadShardSpec(path)), toJson(s));
  EXPECT_EQ(shardConfigKey(s), toJson(s));
}

TEST(ShardSpecTest, ValidateCatchesInconsistentSpecs) {
  EXPECT_EQ(validateShardSpec(scriptedSpec()), "");
  EXPECT_EQ(validateShardSpec(faultSpec()), "");
  ShardSpec bad = scriptedSpec();
  bad.n = 7;  // pattern still has 6 points
  EXPECT_NE(validateShardSpec(bad), "");
  bad = scriptedSpec();
  bad.startKind = "weird";
  EXPECT_NE(validateShardSpec(bad), "");
  bad = fuzzSpec();
  bad.crashF = 6;  // no live robot left
  EXPECT_NE(validateShardSpec(bad), "");
  bad = fuzzSpec();
  bad.runs = 0;
  EXPECT_NE(validateShardSpec(bad), "");
}

// ------------------------------------------------------------ partition --

TEST(ShardRangeTest, PartitionIsContiguousBalancedAndExact) {
  for (const std::uint64_t runs : {0ull, 1ull, 5ull, 8ull, 64ull, 1001ull}) {
    for (const unsigned count : {1u, 2u, 3u, 4u, 7u, 16u}) {
      std::uint64_t covered = 0;
      std::uint64_t minSize = runs + 1, maxSize = 0;
      std::uint64_t expectLo = 0;
      for (unsigned i = 0; i < count; ++i) {
        const ShardRange r = shardRange(runs, i, count);
        EXPECT_EQ(r.lo, expectLo) << runs << "/" << count << " shard " << i;
        expectLo = r.hi;
        covered += r.size();
        minSize = std::min(minSize, r.size());
        maxSize = std::max(maxSize, r.size());
      }
      EXPECT_EQ(expectLo, runs);
      EXPECT_EQ(covered, runs);
      EXPECT_LE(maxSize - minSize, 1u) << runs << "/" << count;
    }
  }
}

TEST(ShardRangeTest, RejectsOutOfRangeIndices) {
  EXPECT_THROW(shardRange(10, 0, 0), std::runtime_error);
  EXPECT_THROW(shardRange(10, 4, 4), std::runtime_error);
}

// ---------------------------------------------------------- determinism --

TEST(ShardPayloadTest, PayloadDependsOnlyOnSpecIndexAndSalt) {
  const ShardSpec spec = faultSpec();
  core::FormPatternAlgorithm algo;
  Attempt att;
  const std::string p3 = runScenarioPayload(spec, algo, 3, att);
  EXPECT_EQ(runScenarioPayload(spec, algo, 3, att), p3);
  EXPECT_NE(runScenarioPayload(spec, algo, 4, att), p3);
  Attempt salted;
  salted.seedSalt = retrySeedSalt(2);
  EXPECT_NE(runScenarioPayload(spec, algo, 3, salted), p3);
}

class ShardMergeTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardMergeTest, MergedJournalIsByteIdenticalToSingleProcess) {
  // The acceptance matrix: scripted / fuzz / fault-plan campaigns, each
  // sharded 3 ways (uneven split of 8 runs) and merged, serially and on a
  // 2-thread pool inside each shard.
  const int jobs = GetParam();
  const ShardSpec specs[] = {scriptedSpec(), fuzzSpec(), faultSpec()};
  const char* names[] = {"scripted", "fuzz", "fault"};
  core::FormPatternAlgorithm algo;
  for (int k = 0; k < 3; ++k) {
    const ShardSpec& spec = specs[k];
    const std::string tag =
        std::string(names[k]) + "_j" + std::to_string(jobs);
    const std::string key = shardConfigKey(spec);

    const std::string refPath = tempPath("ref_" + tag + ".journal");
    {
      CampaignJournal ref(refPath, key, /*resume=*/false);
      const SupervisorReport rep =
          runShard(spec, algo, 0, spec.runs, &ref, nullptr, jobs);
      EXPECT_EQ(rep.completed, spec.runs);
    }

    std::vector<std::string> shardPaths;
    for (unsigned i = 0; i < 3; ++i) {
      const ShardRange range = shardRange(spec.runs, i, 3);
      const std::string path =
          tempPath("shard_" + tag + "_" + std::to_string(i) + ".journal");
      CampaignJournal j(path, key, /*resume=*/false);
      const SupervisorReport rep =
          runShard(spec, algo, range.lo, range.hi, &j, nullptr, jobs);
      EXPECT_EQ(rep.completed, range.size());
      shardPaths.push_back(path);
    }
    const std::string mergedPath = tempPath("merged_" + tag + ".journal");
    EXPECT_EQ(mergeShardJournals(spec, shardPaths, mergedPath), spec.runs);
    EXPECT_EQ(readAll(mergedPath), readAll(refPath))
        << names[k] << " merged journal differs from single-process";
  }
}

INSTANTIATE_TEST_SUITE_P(SerialAndPooled, ShardMergeTest,
                         ::testing::Values(1, 2));

TEST(ShardResumeTest, ResumedJournalConvergesByteIdentical) {
  const ShardSpec spec = fuzzSpec();
  core::FormPatternAlgorithm algo;
  const std::string key = shardConfigKey(spec);

  const std::string refPath = tempPath("resume_ref.journal");
  {
    CampaignJournal ref(refPath, key, /*resume=*/false);
    runShard(spec, algo, 0, spec.runs, &ref, nullptr, 1);
  }

  const std::string path = tempPath("resume_partial.journal");
  {
    // "Crash" after three runs: only [0, 3) ever journals.
    CampaignJournal j(path, key, /*resume=*/false);
    runShard(spec, algo, 0, 3, &j, nullptr, 1);
  }
  {
    CampaignJournal j(path, key, /*resume=*/true);
    const SupervisorReport rep =
        runShard(spec, algo, 0, spec.runs, &j, nullptr, 1);
    EXPECT_EQ(rep.replayed, 3u);
    EXPECT_EQ(rep.completed, spec.runs - 3);
  }
  EXPECT_EQ(readAll(path), readAll(refPath));
}

TEST(ShardMergeTest2, RefusesJournalsOfADifferentCampaign) {
  const ShardSpec spec = fuzzSpec();
  ShardSpec other = fuzzSpec();
  other.baseSeed = spec.baseSeed + 1;  // a DIFFERENT experiment
  core::FormPatternAlgorithm algo;

  const std::string path = tempPath("mismatch.journal");
  {
    CampaignJournal j(path, shardConfigKey(other), /*resume=*/false);
    runShard(other, algo, 0, 2, &j, nullptr, 1);
  }
  EXPECT_THROW(
      mergeShardJournals(spec, {path}, tempPath("mismatch_merged.journal")),
      std::runtime_error);
}

// ------------------------------------------------------- report wire ----

TEST(SupervisorReportWireTest, RoundTripsIncludingQuarantine) {
  SupervisorReport r;
  r.items = 10;
  r.completed = 7;
  r.replayed = 1;
  r.retries = 3;
  r.quarantined = 2;
  r.timeoutsCycle = 1;
  r.timeoutsWall = 1;
  r.exceptions = 2;
  QuarantinedItem q;
  q.index = 4;
  q.deterministic = true;
  AttemptFailure f;
  f.kind = FailureKind::Exception;
  f.attempt = 1;
  f.seedSalt = 42;
  f.atCycles = 17;
  f.message = "boom \"quoted\"";
  q.attempts.push_back(f);
  r.quarantine.push_back(q);

  const SupervisorReport d = supervisorReportFromJson(r.toJson());
  EXPECT_EQ(d.toJson(), r.toJson());  // decode->encode fixed point
  ASSERT_EQ(d.quarantine.size(), 1u);
  EXPECT_EQ(d.quarantine[0].index, 4u);
  EXPECT_TRUE(d.quarantine[0].deterministic);
  ASSERT_EQ(d.quarantine[0].attempts.size(), 1u);
  EXPECT_EQ(d.quarantine[0].attempts[0].message, "boom \"quoted\"");
}

TEST(SupervisorReportWireTest, RefusesOtherSchemas) {
  SupervisorReport r;
  std::string j = r.toJson();
  const auto at = j.find("apf.supervisor.v1");
  ASSERT_NE(at, std::string::npos);
  j.replace(at, 17, "apf.supervisor.v9");
  EXPECT_THROW(supervisorReportFromJson(j), std::runtime_error);
  EXPECT_THROW(supervisorReportFromJson("not json"), std::runtime_error);
}

}  // namespace
}  // namespace apf::sim
