/// View-machinery edge cases: multiplicity weighting, shared rays, total
/// order transitivity, and quantization stability.

#include <gtest/gtest.h>

#include <cmath>

#include "config/generator.h"
#include "config/view.h"
#include "geom/angle.h"

namespace apf::config {
namespace {

using geom::Vec2;

TEST(ViewEdgeTest, TotalOrderTransitivityOnRandomSets) {
  // compareViews must be a strict weak order: verify transitivity over all
  // triples on several random configurations.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const Configuration p = randomConfiguration(9, rng);
    const auto views = allViews(p, p.sec().center);
    for (std::size_t a = 0; a < p.size(); ++a) {
      for (std::size_t b = 0; b < p.size(); ++b) {
        for (std::size_t c = 0; c < p.size(); ++c) {
          if (compareViews(views[a], views[b]) > 0 &&
              compareViews(views[b], views[c]) > 0) {
            EXPECT_GT(compareViews(views[a], views[c]), 0)
                << a << ' ' << b << ' ' << c;
          }
        }
      }
    }
  }
}

TEST(ViewEdgeTest, InnermostAlwaysMaximal) {
  // The radius-first coordinate order makes the innermost robot's view
  // maximal — the property Property 2's proof rests on.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 3);
    const Configuration p = randomConfiguration(8, rng);
    const Vec2 c = p.sec().center;
    std::size_t innermost = 0;
    for (std::size_t i = 1; i < p.size(); ++i) {
      if (geom::dist(p[i], c) < geom::dist(p[innermost], c)) innermost = i;
    }
    const auto views = allViews(p, c);
    for (std::size_t i = 0; i < p.size(); ++i) {
      EXPECT_GE(compareViews(views[innermost], views[i]), 0)
          << "seed " << seed << " robot " << i;
    }
  }
}

TEST(ViewEdgeTest, SharedRaysDoNotConfuseViews) {
  // Robots stacked on one ray: distinct radii give distinct views and the
  // inner one is greater.
  const Configuration p({{1, 0}, {2, 0}, {0, 1.5}, {-1.2, -0.4}});
  const auto views = allViews(p, Vec2{});
  EXPECT_GT(compareViews(views[0], views[1]), 0);
  EXPECT_NE(compareViews(views[2], views[3]), 0);
}

TEST(ViewEdgeTest, MultiplicityCountsBreakTies) {
  // Two mirror-image wings, one carrying a doubled point: without
  // multiplicity the wing views tie, with it they differ.
  const Configuration p({{0, 2},
                         {1, 1},
                         {-1, 1},
                         {1, 1},  // doubled right wing point
                         {0.5, -1},
                         {-0.5, -1}});
  const Vec2 c{0, 0};
  const View right = localView(p, 4, c, false);
  const View left = localView(p, 5, c, false);
  EXPECT_EQ(compareViews(right, left), 0) << "blind to multiplicity";
  const View rightM = localView(p, 4, c, true);
  const View leftM = localView(p, 5, c, true);
  EXPECT_NE(compareViews(rightM, leftM), 0) << "multiplicity visible";
}

TEST(ViewEdgeTest, QuantizationIsStableAcrossRecomputation) {
  Rng rng(9);
  const Configuration p = randomConfiguration(10, rng);
  const Vec2 c = p.sec().center;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const View a = localView(p, i, c);
    const View b = localView(p, i, c);
    EXPECT_EQ(a, b);
  }
}

TEST(ViewEdgeTest, ViewLengthMatchesDistinctPoints) {
  const Configuration p({{1, 0}, {0, 1}, {1, 0}, {-1, 0}});
  const View v = localView(p, 1, Vec2{});
  // grouped: 3 distinct points, 3 triples of (rho, theta, count).
  EXPECT_EQ(v.key.size(), 9u);
}

TEST(ViewEdgeTest, OrientationConsistentWithinEquivalenceClass) {
  // In a rotationally symmetric config, all robots of a class report the
  // same orientation sign (their views are rotations of each other).
  const Configuration p = [&] {
    Rng rng(4);
    return symmetricConfiguration(4, 2, rng);
  }();
  const auto views = allViews(p, Vec2{});
  // Class = same key; orientations must match inside a class.
  for (std::size_t i = 0; i < p.size(); ++i) {
    for (std::size_t j = 0; j < p.size(); ++j) {
      if (views[i].key == views[j].key) {
        EXPECT_EQ(views[i].orientation, views[j].orientation)
            << i << ' ' << j;
      }
    }
  }
}

TEST(ViewEdgeTest, ByViewDescendingAgreesWithPairwiseComparisons) {
  Rng rng(15);
  const Configuration p = randomConfiguration(11, rng);
  const Vec2 c = p.sec().center;
  const auto order = byViewDescending(p, c);
  const auto views = allViews(p, c);
  for (std::size_t k = 0; k + 1 < order.size(); ++k) {
    EXPECT_GE(compareViews(views[order[k]], views[order[k + 1]]), 0) << k;
  }
}

}  // namespace
}  // namespace apf::config
