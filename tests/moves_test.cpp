#include <gtest/gtest.h>

#include <cmath>

#include "core/moves.h"
#include "geom/angle.h"

namespace apf::core {
namespace {

using geom::kPi;
using geom::Vec2;

TEST(MovesTest, RadialPathStaysOnRay) {
  const Vec2 c{1, 1};
  const Vec2 from{4, 5};  // distance 5 from c
  const geom::Path p = radialPath(c, from, 2.0);
  EXPECT_NEAR(p.length(), 3.0, 1e-12);
  // Every intermediate point is on the ray c -> from.
  const Vec2 dir = (from - c).normalized();
  for (double s = 0; s <= p.length(); s += 0.3) {
    const Vec2 q = p.pointAt(s) - c;
    EXPECT_NEAR(q.cross(dir), 0.0, 1e-12);
    EXPECT_GT(q.dot(dir), 0.0);
  }
  EXPECT_NEAR(geom::dist(p.end(), c), 2.0, 1e-12);
}

TEST(MovesTest, RadialPathOutward) {
  const geom::Path p = radialPath({}, {1, 0}, 3.0);
  EXPECT_NEAR(p.end().x, 3.0, 1e-12);
  EXPECT_NEAR(p.end().y, 0.0, 1e-12);
}

TEST(MovesTest, RadialPathDegenerateCases) {
  EXPECT_TRUE(radialPath({}, {}, 1.0).empty());        // at center
  EXPECT_TRUE(radialPath({}, {2, 0}, 2.0).empty());    // already there
}

TEST(MovesTest, ArcToAngleShortWay) {
  const geom::Path p = arcToAngle({}, {2, 0}, 0.3);
  EXPECT_NEAR(p.length(), 2.0 * 0.3, 1e-12);
  EXPECT_NEAR((p.end()).arg(), 0.3, 1e-12);
  // Short way: from angle 0 to angle 2*pi - 0.3 sweeps -0.3.
  const geom::Path q = arcToAngle({}, {2, 0}, geom::kTwoPi - 0.3);
  EXPECT_NEAR(q.length(), 2.0 * 0.3, 1e-12);
}

TEST(MovesTest, ArcKeepsRadiusUnderPartialStop) {
  const Vec2 c{-1, 2};
  const Vec2 from = c + Vec2{1.5, 0};
  const geom::Path p = arcBySweep(c, from, 2.0);
  for (double s = 0; s < p.length(); s += p.length() / 17) {
    EXPECT_NEAR(geom::dist(p.pointAt(s), c), 1.5, 1e-12);
  }
}

TEST(MovesTest, ArcSweepSign) {
  const geom::Path ccw = arcBySweep({}, {1, 0}, kPi / 2);
  EXPECT_NEAR(ccw.end().y, 1.0, 1e-12);
  const geom::Path cw = arcBySweep({}, {1, 0}, -kPi / 2);
  EXPECT_NEAR(cw.end().y, -1.0, 1e-12);
}

TEST(MovesTest, LinePathBasics) {
  const geom::Path p = linePath({0, 0}, {3, 4});
  EXPECT_NEAR(p.length(), 5.0, 1e-12);
  EXPECT_TRUE(linePath({1, 1}, {1, 1}).empty());
}

}  // namespace
}  // namespace apf::core
