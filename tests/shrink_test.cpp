/// Failure-repro shrinker (sim/shrink.h, docs/RESILIENCE.md): FaultPlan
/// and ReproCase JSON round-trip bit-exactly (including 64-bit seeds that
/// do not fit a double), replay is deterministic, and the acceptance demo —
/// a seeded safety violation is minimized to a strictly smaller repro whose
/// saved `.repro.json` loads back and still reproduces the same violation
/// kind. Labelled `fault` so the fuzz CI lane runs it (`ctest -L fault`).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "config/generator.h"
#include "core/form_pattern.h"
#include "io/patterns.h"
#include "obs/json.h"
#include "sim/fuzzer.h"
#include "sim/shrink.h"

namespace apf::sim {
namespace {

fault::FaultPlan densePlan() {
  fault::FaultPlan p;
  p.crashes = {{2, 1500}, {5, 40}};
  p.noiseSigma = 0.1;
  p.omitProb = 0.25;
  p.multFlipProb = 0.125;
  p.dropProb = 0.0625;
  p.truncProb = 0.5;
  // Deliberately above 2^53: survives only via raw-token JSON round-trip.
  p.seed = 0x9E3779B97F4A7C15ull;
  return p;
}

TEST(ShrinkTest, FaultPlanJsonRoundTripsEveryField) {
  const fault::FaultPlan p = densePlan();
  const auto doc = obs::parseJson(fault::toJson(p));
  ASSERT_TRUE(doc.has_value());
  const fault::FaultPlan q = fault::planFromJson(*doc);
  ASSERT_EQ(q.crashes.size(), p.crashes.size());
  for (std::size_t i = 0; i < p.crashes.size(); ++i) {
    EXPECT_EQ(q.crashes[i].robot, p.crashes[i].robot);
    EXPECT_EQ(q.crashes[i].atEvent, p.crashes[i].atEvent);
  }
  EXPECT_EQ(q.noiseSigma, p.noiseSigma);
  EXPECT_EQ(q.omitProb, p.omitProb);
  EXPECT_EQ(q.multFlipProb, p.multFlipProb);
  EXPECT_EQ(q.dropProb, p.dropProb);
  EXPECT_EQ(q.truncProb, p.truncProb);
  EXPECT_EQ(q.seed, p.seed);
  // Second encode is byte-identical: the canonical form is a fixpoint.
  EXPECT_EQ(fault::toJson(q), fault::toJson(p));
}

ReproCase denseCase() {
  ReproCase c;
  c.algo = "rsb";
  config::Rng rng(17);
  c.start = config::randomConfiguration(5, rng, 5.0, 0.1);
  c.pattern = io::randomPatternByName(5, 93);
  c.seed = 0xFFFFFFFFFFFFFFF1ull;  // > 2^53
  c.maxEvents = 12345;
  c.delta = 0.075;
  c.earlyStopProb = 0.9;
  c.multiplicityDetection = true;
  c.commonChirality = true;
  c.sched = sched::SchedulerKind::SSync;
  c.fault = densePlan();
  c.violationKind = "sec_growth";
  return c;
}

TEST(ShrinkTest, ReproCaseJsonRoundTripsBitExact) {
  const ReproCase c = denseCase();
  const ReproCase d = reproFromJson(toJson(c));
  EXPECT_EQ(d.algo, c.algo);
  ASSERT_EQ(d.start.size(), c.start.size());
  for (std::size_t i = 0; i < c.start.size(); ++i) {
    EXPECT_EQ(d.start[i].x, c.start[i].x);
    EXPECT_EQ(d.start[i].y, c.start[i].y);
  }
  ASSERT_EQ(d.pattern.size(), c.pattern.size());
  EXPECT_EQ(d.seed, c.seed);
  EXPECT_EQ(d.maxEvents, c.maxEvents);
  EXPECT_EQ(d.delta, c.delta);
  EXPECT_EQ(d.earlyStopProb, c.earlyStopProb);
  EXPECT_EQ(d.multiplicityDetection, c.multiplicityDetection);
  EXPECT_EQ(d.commonChirality, c.commonChirality);
  EXPECT_EQ(d.sched, c.sched);
  EXPECT_EQ(d.fault.seed, c.fault.seed);
  EXPECT_EQ(d.violationKind, c.violationKind);
  // Bit-exactness collapses to string equality of the canonical encoding.
  EXPECT_EQ(toJson(d), toJson(c));
}

TEST(ShrinkTest, SaveAndLoadReproThroughMissingDirectories) {
  const auto dir = std::filesystem::temp_directory_path() / "apf_shrink_test";
  std::filesystem::remove_all(dir);
  const std::string path = (dir / "deep" / "nested" / "case.repro.json").string();
  const ReproCase c = denseCase();
  saveRepro(path, c);  // must create deep/nested/ itself
  const ReproCase d = loadRepro(path);
  EXPECT_EQ(toJson(d), toJson(c));
  std::filesystem::remove_all(dir);
}

TEST(ShrinkTest, LoadReproRejectsWrongSchema) {
  const auto dir = std::filesystem::temp_directory_path() / "apf_shrink_test2";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "bad.repro.json").string();
  {
    std::ofstream os(path);
    os << "{\"repro\":\"apf.other.v9\",\"algo\":\"form\"}\n";
  }
  EXPECT_THROW(loadRepro(path), std::runtime_error);
  std::filesystem::remove_all(dir);
}

TEST(ShrinkTest, ReproFromFailureCarriesExactReplayCoordinates) {
  FuzzOptions opts;
  opts.maxEventsPerRun = 7777;
  opts.delta = 0.03;
  opts.multiplicityDetection = true;
  FuzzFailure f;
  f.seed = 0xDEADBEEFCAFEF00Dull;
  f.earlyStopProb = 0.9;
  f.violationKind = "collision";
  f.plan = densePlan();
  config::Rng rng(3);
  const auto start = config::randomConfiguration(4, rng, 5.0, 0.1);
  const auto pattern = io::randomPatternByName(4, 90);
  const ReproCase c = reproFromFailure("form", start, pattern, opts, f);
  EXPECT_EQ(c.algo, "form");
  EXPECT_EQ(c.seed, f.seed);
  EXPECT_EQ(c.earlyStopProb, f.earlyStopProb);
  EXPECT_EQ(c.maxEvents, opts.maxEventsPerRun);
  EXPECT_EQ(c.delta, opts.delta);
  EXPECT_TRUE(c.multiplicityDetection);
  EXPECT_EQ(c.violationKind, "collision");
  EXPECT_EQ(c.fault.seed, f.plan.seed);
  EXPECT_EQ(c.start.size(), start.size());
  EXPECT_EQ(c.pattern.size(), pattern.size());
}

TEST(ShrinkTest, ReplayIsDeterministic) {
  core::FormPatternAlgorithm algo;
  ReproCase c;
  config::Rng rng(8);  // apf_sim's start stream for seed 1 (seed + 7)
  c.start = config::randomConfiguration(8, rng, 5.0, 0.1);
  c.pattern = io::randomPatternByName(8, 90);
  c.seed = 1;
  c.maxEvents = 40000;
  c.fault.noiseSigma = 8.0;
  c.fault.seed = 1;
  const ReplayResult a = replay(c, algo);
  const ReplayResult b = replay(c, algo);
  EXPECT_EQ(a.violated, b.violated);
  EXPECT_EQ(a.violationKind, b.violationKind);
  EXPECT_EQ(a.violationEvent, b.violationEvent);
  EXPECT_EQ(a.run.metrics.events, b.run.metrics.events);
}

TEST(ShrinkTest, ShrinkLeavesCleanCaseUntouched) {
  core::FormPatternAlgorithm algo;
  ReproCase c;
  config::Rng rng(5);
  c.start = config::randomConfiguration(4, rng, 5.0, 0.1);
  c.pattern = io::randomPatternByName(4, 90);
  c.seed = 3;
  c.maxEvents = 200000;  // fault-free run: terminates well before this
  c.violationKind = "collision";
  const std::string before = toJson(c);
  ShrinkOptions sopts;
  sopts.maxProbes = 50;
  const ShrinkResult r = shrink(c, algo, sopts);
  EXPECT_FALSE(r.initialReproduced);
  EXPECT_EQ(toJson(r.minimized), before);
  EXPECT_EQ(r.accepted, 0);
}

/// Acceptance demo: a seeded safety violation is found, minimized to a
/// strictly smaller repro, and the saved artifact still reproduces the same
/// violation kind after a load round-trip. Extreme snapshot noise (sigma 8
/// on a diameter-10 configuration) reliably defeats the SEC-stability
/// argument — the recipe `apf_sim --algo form -n 8 --noise 8.0 --repro-out`
/// uses the same coordinates (docs/RESILIENCE.md).
TEST(ShrinkTest, ShrinkerMinimizesSeededViolationAndReproReplays) {
  core::FormPatternAlgorithm algo;
  ReproCase found;
  bool haveViolation = false;
  for (std::uint64_t seed = 1; seed <= 6 && !haveViolation; ++seed) {
    ReproCase c;
    config::Rng rng(seed + 7);
    c.start = config::randomConfiguration(8, rng, 5.0, 0.1);
    c.pattern = io::randomPatternByName(8, 90);
    c.seed = seed;
    c.maxEvents = 40000;
    c.earlyStopProb = 0.5;
    c.fault.noiseSigma = 8.0;
    c.fault.seed = seed;
    const ReplayResult probe = replay(c, algo);
    if (probe.violated) {
      c.violationKind = probe.violationKind;  // pin the kind before shrinking
      found = c;
      haveViolation = true;
    }
  }
  ASSERT_TRUE(haveViolation) << "noise 8.0 recipe stopped violating";

  ShrinkOptions sopts;
  sopts.maxPasses = 4;
  sopts.maxProbes = 300;
  const ShrinkResult r = shrink(found, algo, sopts);
  ASSERT_TRUE(r.initialReproduced);
  EXPECT_GT(r.probes, 0);

  // Strictly smaller: fewer robots, weaker knobs, or a tighter event
  // budget (the budget clamp alone already guarantees this).
  const bool smaller = r.minimized.start.size() < found.start.size() ||
                       r.minimized.fault.noiseSigma < found.fault.noiseSigma ||
                       r.minimized.maxEvents < found.maxEvents;
  EXPECT_TRUE(smaller);
  EXPECT_LE(r.minimized.start.size(), found.start.size());
  EXPECT_EQ(r.minimized.start.size(), r.minimized.pattern.size());

  // The minimized case still reproduces the pinned kind...
  const ReplayResult rep = replay(r.minimized, algo);
  EXPECT_TRUE(rep.reproduces(r.minimized));
  EXPECT_EQ(rep.violationKind, found.violationKind);

  // ...and survives the .repro.json round-trip apf_sim --replay consumes.
  const auto dir = std::filesystem::temp_directory_path() / "apf_shrink_demo";
  std::filesystem::remove_all(dir);
  const std::string path = (dir / "min.repro.json").string();
  saveRepro(path, r.minimized);
  const ReproCase loaded = loadRepro(path);
  EXPECT_EQ(toJson(loaded), toJson(r.minimized));
  const ReplayResult rep2 = replay(loaded, algo);
  EXPECT_TRUE(rep2.reproduces(loaded));
  EXPECT_EQ(rep2.violationEvent, rep.violationEvent);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace apf::sim
