/// Allocation-free engine hot path (sim/scratch.h) and the weberPoint()
/// geometry cache. Three properties are pinned down here:
///
///  1. Buffer reuse is observationally invisible: runs that recycle the
///     Scratch workspace produce bit-identical trails and metrics however
///     they are driven (step() vs run(), repeated runs, campaign job
///     counts) on scripted, fuzz-style, and fault-plan workloads.
///  2. The hot loop really is allocation-free in steady state: with the
///     counting hook (src/obs/alloc_hook.cpp) linked into this binary,
///     a warmed engine performs zero heap allocations per event — clean
///     and under a sensor+compute fault plan. The ASan lane runs this
///     same test to prove the hook composes with the sanitizer runtime.
///  3. weberPoint() memoization is invisible, mirroring sec_cache_test:
///     cached values are bit-equal to a fresh Weiszfeld run across
///     mutation, copy, move, and the assign()/releasePoints() recycling
///     path the engine uses.
///
/// Labelled `perf` so the TSan CI lane runs it alongside the campaign
/// tests.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

#include "config/configuration.h"
#include "config/generator.h"
#include "core/form_pattern.h"
#include "fault/fault.h"
#include "geom/weber.h"
#include "io/patterns.h"
#include "obs/alloc.h"
#include "sim/campaign.h"
#include "sim/engine.h"

namespace apf::sim {
namespace {

using config::Configuration;
using geom::Vec2;
using Op = sched::ScriptedEvent::Op;

// ---------------------------------------------------------------------------
// Bit-identity of buffer-reuse runs
// ---------------------------------------------------------------------------

/// Full position trail of a run: every robot coordinate after every
/// position-changing event, flattened. Two runs are behaviorally identical
/// iff their trails and metrics match bit for bit.
struct Trail {
  std::vector<double> positions;
  std::uint64_t events = 0;
  std::uint64_t cycles = 0;
  std::uint64_t randomBits = 0;
  double distance = 0.0;
  bool terminated = false;
  bool success = false;
  int outcome = 0;

  bool operator==(const Trail&) const = default;
};

enum class Workload { Clean, Scripted, FaultPlan };

EngineOptions optionsFor(Workload w) {
  EngineOptions opts;
  opts.seed = 42;
  opts.sched.kind = sched::SchedulerKind::Async;
  opts.maxEvents = 20000;
  switch (w) {
    case Workload::Clean:
      break;
    case Workload::Scripted: {
      opts.sched.kind = sched::SchedulerKind::Scripted;
      // One hand-built FSYNC-ish round (all Look, all Compute, all Move),
      // then the ASYNC adversary takes over when the script runs out.
      for (std::size_t i = 0; i < 6; ++i) opts.script.push_back({i, Op::Look, 0});
      for (std::size_t i = 0; i < 6; ++i) {
        opts.script.push_back({i, Op::Compute, 0});
      }
      for (std::size_t i = 0; i < 6; ++i) opts.script.push_back({i, Op::Move, 0});
      break;
    }
    case Workload::FaultPlan: {
      opts.fault = fault::planWithRandomCrashes(6, 1, 9, 500);
      opts.fault.noiseSigma = 0.01;
      opts.fault.omitProb = 0.02;
      opts.fault.multFlipProb = 0.01;
      opts.fault.dropProb = 0.02;
      opts.fault.truncProb = 0.05;
      opts.maxEvents = 4000;  // sensor-faulted runs never go quiescent
      break;
    }
  }
  return opts;
}

Trail runTrail(Workload w) {
  core::FormPatternAlgorithm algo;
  config::Rng rng(21);
  const Configuration start = config::randomConfiguration(6, rng, 4.0, 0.1);
  const Configuration pattern = io::starPattern(6);
  Engine eng(start, pattern, algo, optionsFor(w));
  Trail t;
  eng.setObserver([&t](const Engine& e, std::size_t) {
    for (const Vec2& p : e.positions().points()) {
      t.positions.push_back(p.x);
      t.positions.push_back(p.y);
    }
  });
  const RunResult res = eng.run();
  t.events = res.metrics.events;
  t.cycles = res.metrics.cycles;
  t.randomBits = res.metrics.randomBits;
  t.distance = res.metrics.distance;
  t.terminated = res.terminated;
  t.success = res.success;
  t.outcome = static_cast<int>(res.outcome);
  return t;
}

/// A fresh engine and one whose scratch buffers have been churned by a full
/// prior run must agree exactly: the second runTrail call executes with a
/// heap the first call has already shaped, so any dependence on allocation
/// addresses or stale buffer contents would surface as a diverging trail.
TEST(ScratchTest, RepeatedRunsBitIdenticalAcrossWorkloads) {
  for (Workload w :
       {Workload::Clean, Workload::Scripted, Workload::FaultPlan}) {
    const Trail first = runTrail(w);
    const Trail second = runTrail(w);
    EXPECT_GT(first.events, 0u);
    EXPECT_FALSE(first.positions.empty());
    EXPECT_EQ(first, second) << "workload " << static_cast<int>(w);
  }
}

/// step()-driven and run()-driven execution share the scratch buffers; the
/// reuse pattern differs (step returns to the caller between events), and
/// the observable state must not.
TEST(ScratchTest, StepwiseMatchesRun) {
  core::FormPatternAlgorithm algo;
  config::Rng rng(21);
  const Configuration start = config::randomConfiguration(6, rng, 4.0, 0.1);
  const Configuration pattern = io::starPattern(6);

  Engine stepped(start, pattern, algo, optionsFor(Workload::Clean));
  while (stepped.step()) {
  }
  Engine whole(start, pattern, algo, optionsFor(Workload::Clean));
  const RunResult res = whole.run();

  EXPECT_EQ(stepped.metrics().events, res.metrics.events);
  EXPECT_EQ(stepped.metrics().cycles, res.metrics.cycles);
  EXPECT_EQ(stepped.metrics().randomBits, res.metrics.randomBits);
  EXPECT_EQ(stepped.metrics().distance, res.metrics.distance);
  EXPECT_EQ(stepped.success(), res.success);
  ASSERT_EQ(stepped.positions().size(), res.finalPositions.size());
  for (std::size_t i = 0; i < stepped.positions().size(); ++i) {
    EXPECT_EQ(stepped.positions()[i].x, res.finalPositions[i].x) << i;
    EXPECT_EQ(stepped.positions()[i].y, res.finalPositions[i].y) << i;
  }
}

/// Fault-plan campaign fanned out like the benches: every merged field —
/// including the new geometry-cache counters, which are thread-local and
/// captured per run — must be identical for any APF_JOBS.
TEST(ScratchTest, FaultCampaignIdenticalAcrossJobCounts) {
  core::FormPatternAlgorithm algo;
  std::vector<int> seeds(8);
  for (int s = 0; s < 8; ++s) seeds[s] = s;
  auto worker = [&](int s, std::size_t) {
    config::Rng rng(700 + s);
    const auto start = config::randomConfiguration(6, rng, 4.0, 0.1);
    const auto pattern = io::randomPatternByName(6, 60 + s);
    EngineOptions opts;
    opts.seed = 17 * static_cast<std::uint64_t>(s) + 3;
    opts.sched.kind = sched::SchedulerKind::Async;
    opts.maxEvents = 4000;
    opts.fault = fault::planWithRandomCrashes(6, 1, 100 + s, 500);
    opts.fault.noiseSigma = 0.01;
    opts.fault.dropProb = 0.02;
    Engine eng(start, pattern, algo, opts);
    const RunResult res = eng.run();
    return std::tuple(res.metrics.events, res.metrics.cycles,
                      res.metrics.randomBits, res.metrics.faultsInjected,
                      res.metrics.crashed, res.metrics.secCacheHits,
                      res.metrics.secCacheMisses, res.metrics.weberCacheHits,
                      res.metrics.weberCacheMisses, res.success,
                      static_cast<int>(res.outcome));
  };
  const auto serial = campaignMap(seeds, worker, 1);
  const auto four = campaignMap(seeds, worker, 4);
  const auto hw = campaignMap(seeds, worker, campaignJobs());
  EXPECT_EQ(serial, four);
  EXPECT_EQ(serial, hw);
}

// ---------------------------------------------------------------------------
// Allocation accounting: the hook is live here, and the hot loop is clean
// ---------------------------------------------------------------------------

/// Escapes a pointer from the optimizer so a paired new/delete cannot be
/// elided (C++14 allows eliding unobserved allocations at -O2/-O3).
volatile void* g_allocSink = nullptr;

TEST(AllocHookTest, HookIsLinkedAndCounting) {
  // This binary links src/obs/alloc_hook.cpp, so the strong definitions
  // must have replaced the weak inactive ones from apf_obs.
  ASSERT_TRUE(obs::allocCountingActive());
  const obs::AllocStats before = obs::allocStats();
  void* p = ::operator new(64);
  g_allocSink = p;
  ::operator delete(p);
  const obs::AllocStats after = obs::allocStats();
  EXPECT_GT(after.news, before.news);
  EXPECT_GE(after.bytes - before.bytes, 64u);
}

/// Always moves a short fixed segment: never terminates, touches only the
/// engine machinery (snapshot refresh, scheduling, path execution) — the
/// same isolation bench_perf's engine_hot_loop rows use.
class DriftAlgorithm final : public Algorithm {
 public:
  Action compute(const Snapshot&, sched::RandomSource&) const override {
    geom::Path path{Vec2{0.0, 0.0}};
    path.lineTo(Vec2{0.01, 0.0});
    return Action{path, 1};
  }
  std::string name() const override { return "drift"; }
};

/// Steps a warmed engine and returns the heap allocations performed by the
/// measured window. Steady state must be exactly zero: this is the unit-test
/// twin of bench_perf's allocs_per_event rows and of the exact (no noise
/// floor) gate in tools/apf_bench_diff.
std::uint64_t steadyStateAllocs(bool withFaults) {
  const std::size_t n = 16;
  config::Rng rng(106);
  const Configuration start = config::randomConfiguration(n, rng, 5.0, 0.1);
  const Configuration pattern = io::starPattern(n);
  DriftAlgorithm algo;
  EngineOptions opts;
  opts.seed = 1234;
  opts.sched.kind = sched::SchedulerKind::Async;
  opts.maxEvents = 1'000'000;
  if (withFaults) {
    opts.fault.noiseSigma = 0.01;
    opts.fault.omitProb = 0.02;
    opts.fault.multFlipProb = 0.01;
    opts.fault.dropProb = 0.02;
    opts.fault.truncProb = 0.05;
    opts.fault.seed = 7;
  }
  Engine eng(start, pattern, algo, opts);
  for (int i = 0; i < 4096; ++i) {
    if (!eng.step()) ADD_FAILURE() << "drift run ended during warmup";
  }
  const obs::AllocStats before = obs::allocStats();
  for (int i = 0; i < 4096; ++i) eng.step();
  const obs::AllocStats after = obs::allocStats();
  return after.news - before.news;
}

TEST(AllocHookTest, EngineSteadyStateAllocFree) {
  EXPECT_EQ(steadyStateAllocs(false), 0u);
}

TEST(AllocHookTest, EngineSteadyStateAllocFreeUnderFaults) {
  EXPECT_EQ(steadyStateAllocs(true), 0u);
}

}  // namespace
}  // namespace apf::sim

// ---------------------------------------------------------------------------
// weberPoint() cache: invisible memoization, mirroring sec_cache_test.cpp
// ---------------------------------------------------------------------------

namespace apf::config {
namespace {

/// Exact (bit-level) comparison: the cache stores the result of the very
/// same geom::weberPoint call, so nothing may differ.
void expectWeberFresh(const Configuration& cfg, const char* what) {
  const Vec2 fresh = geom::weberPoint(cfg.span());
  const Vec2 cached = cfg.weberPoint();
  EXPECT_EQ(cached.x, fresh.x) << what;
  EXPECT_EQ(cached.y, fresh.y) << what;
}

TEST(WeberCacheTest, CachedMatchesFreshOnRandomConfigurations) {
  for (int trial = 0; trial < 50; ++trial) {
    Rng rng(200 + trial);
    const std::size_t n = 1 + static_cast<std::size_t>(trial % 40);
    const Configuration cfg = randomConfiguration(n, rng, 5.0, 0.05);
    expectWeberFresh(cfg, "first call");
    expectWeberFresh(cfg, "second call (cache hit)");
  }
}

TEST(WeberCacheTest, MutationThroughIndexInvalidates) {
  Rng rng(7);
  Configuration cfg = randomConfiguration(10, rng, 3.0, 0.1);
  const Vec2 before = cfg.weberPoint();
  cfg[0] = Vec2{100.0, 100.0};  // drags the geometric median outward
  const Vec2 after = cfg.weberPoint();
  EXPECT_GT((after - before).norm(), 1e-6);
  expectWeberFresh(cfg, "after operator[] mutation");
}

TEST(WeberCacheTest, PushBackInvalidates) {
  Rng rng(8);
  Configuration cfg = randomConfiguration(10, rng, 3.0, 0.1);
  const Vec2 before = cfg.weberPoint();
  cfg.push_back(Vec2{-50.0, 40.0});
  const Vec2 after = cfg.weberPoint();
  EXPECT_GT((after - before).norm(), 1e-6);
  expectWeberFresh(cfg, "after push_back");
}

TEST(WeberCacheTest, ConstAccessDoesNotInvalidate) {
  Rng rng(9);
  Configuration cfg = randomConfiguration(12, rng, 3.0, 0.1);
  const Vec2 warm = cfg.weberPoint();
  const Configuration& view = cfg;
  (void)view[3];        // const operator[] must not touch the cache
  (void)view.points();
  const Vec2 again = cfg.weberPoint();
  EXPECT_EQ(warm.x, again.x);
  EXPECT_EQ(warm.y, again.y);
}

TEST(WeberCacheTest, CopyCarriesIndependentCache) {
  Rng rng(10);
  Configuration a = randomConfiguration(9, rng, 3.0, 0.1);
  const Vec2 orig = a.weberPoint();  // warm before copying
  Configuration b = a;
  a[0] = Vec2{200.0, 0.0};  // mutating the source must not disturb the copy
  const Vec2 bWeber = b.weberPoint();
  EXPECT_EQ(bWeber.x, orig.x);
  EXPECT_EQ(bWeber.y, orig.y);
  expectWeberFresh(b, "copy");
  expectWeberFresh(a, "mutated source");
}

TEST(WeberCacheTest, MoveTransfersCacheAndResetsSource) {
  Rng rng(11);
  Configuration a = randomConfiguration(9, rng, 3.0, 0.1);
  const Vec2 orig = a.weberPoint();
  Configuration b = std::move(a);
  const Vec2 moved = b.weberPoint();
  EXPECT_EQ(moved.x, orig.x);
  EXPECT_EQ(moved.y, orig.y);
  // The moved-from object is reusable: its stale cache must be gone.
  a = Configuration();
  a.push_back(Vec2{1.0, 0.0});
  a.push_back(Vec2{-1.0, 0.0});
  expectWeberFresh(a, "reused moved-from object");

  Configuration c = randomConfiguration(7, rng, 3.0, 0.1);
  const Vec2 cOrig = c.weberPoint();
  Configuration d;
  d = std::move(c);  // move-assignment path
  const Vec2 dWeber = d.weberPoint();
  EXPECT_EQ(dWeber.x, cOrig.x);
  EXPECT_EQ(dWeber.y, cOrig.y);
  expectWeberFresh(d, "move-assigned target");
}

/// The engine's snapshot path recycles point storage through
/// releasePoints()/assign(); both must invalidate both caches.
TEST(WeberCacheTest, AssignAndReleasePointsInvalidate) {
  Rng rng(12);
  Configuration cfg = randomConfiguration(8, rng, 3.0, 0.1);
  (void)cfg.sec();
  (void)cfg.weberPoint();  // warm both caches
  std::vector<Vec2> pts = cfg.releasePoints();
  EXPECT_TRUE(cfg.empty());
  for (Vec2& p : pts) p = p * 2.0 + Vec2{5.0, -1.0};
  cfg.assign(std::move(pts));
  expectWeberFresh(cfg, "after releasePoints/assign round-trip");
  const Circle fresh = geom::smallestEnclosingCircle(cfg.span());
  const Circle cached = cfg.sec();
  EXPECT_EQ(cached.center.x, fresh.center.x);
  EXPECT_EQ(cached.center.y, fresh.center.y);
  EXPECT_EQ(cached.radius, fresh.radius);
}

/// The thread-local hit/miss counters behind campaign.geom.* telemetry.
TEST(WeberCacheTest, CacheCountersCount) {
  Rng rng(13);
  const Configuration cfg = randomConfiguration(6, rng, 3.0, 0.1);
  geomCacheCounters() = {};
  (void)cfg.weberPoint();
  (void)cfg.weberPoint();
  (void)cfg.sec();
  (void)cfg.sec();
  (void)cfg.sec();
  const GeomCacheCounters c = geomCacheCounters();
  EXPECT_EQ(c.weberMisses, 1u);
  EXPECT_EQ(c.weberHits, 1u);
  EXPECT_EQ(c.secMisses, 1u);
  EXPECT_EQ(c.secHits, 2u);
}

/// hasCoincidentPair (the allocation-free early-exit scan used on the
/// engine's live-point buffer) must agree with the grouped()-based
/// definition of hasMultiplicity on every input, duplicates included.
TEST(CoincidentPairTest, MatchesGroupedDefinition) {
  for (int trial = 0; trial < 60; ++trial) {
    Rng rng(300 + trial);
    const std::size_t n = 1 + static_cast<std::size_t>(trial % 20);
    Configuration cfg = randomConfiguration(n, rng, 4.0, 0.05);
    if (trial % 3 == 1) cfg.push_back(cfg[trial % static_cast<int>(n)]);
    if (trial % 3 == 2) {
      // Near-duplicate within tolerance: grouping and the pairwise scan
      // must classify it identically.
      cfg.push_back(cfg[0] + Vec2{1e-12, -1e-12});
    }
    const bool viaGrouped = cfg.grouped().size() < cfg.size();
    EXPECT_EQ(hasCoincidentPair(cfg.span()), viaGrouped) << "trial " << trial;
    EXPECT_EQ(cfg.hasMultiplicity(), viaGrouped) << "trial " << trial;
  }
}

}  // namespace
}  // namespace apf::config
