#include <gtest/gtest.h>

#include <cmath>

#include "config/generator.h"
#include "config/shifted.h"
#include "core/phases.h"
#include "core/rsb.h"
#include "geom/angle.h"
#include "io/patterns.h"
#include "sim/engine.h"

namespace apf::core {
namespace {

using config::Configuration;
using geom::kTwoPi;
using geom::Vec2;

sim::Snapshot makeSnap(const Configuration& robots,
                       const Configuration& pattern, std::size_t self) {
  sim::Snapshot s;
  s.robots = robots;
  s.pattern = pattern;
  s.selfIndex = self;
  return s;
}

/// Decision of psi_RSB for robot `self` on configuration p (identity
/// frame), in NORMALIZED coordinates.
sim::Action decide(const Configuration& p, const Configuration& f,
                   std::size_t self, std::uint64_t seed = 1) {
  Analysis a(makeSnap(p, f, self));
  EXPECT_TRUE(a.ok());
  sched::RandomSource rng(seed);
  return rsbCompute(a, rng);
}

// ---------------------------------------------------------------- Qc case

TEST(RsbAsymmetricTest, OnlyMaxViewRobotMoves) {
  config::Rng rng(3);
  const Configuration p = config::randomConfiguration(9, rng, 1.0, 1e-3);
  const Configuration f = io::starPattern(9);
  int movers = 0;
  std::size_t mover = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const auto act = decide(p, f, i);
    EXPECT_EQ(act.phaseTag, kRsbAsymmetric);
    if (act.isMove()) {
      ++movers;
      mover = i;
    }
  }
  EXPECT_EQ(movers, 1);
  // The mover descends: its normalized end radius is smaller.
  Analysis a(makeSnap(p, f, mover));
  const auto act = decide(p, f, mover);
  EXPECT_LT(act.path.end().norm(), a.P()[mover].norm());
}

TEST(RsbAsymmetricTest, DescentEndsSelected) {
  // Simulate only the RSB algorithm from a random configuration: it must
  // reach a selected configuration and stop (no randomness needed, Q^c).
  config::Rng rng(5);
  const Configuration start = config::randomConfiguration(8, rng, 4.0, 0.1);
  RsbOnlyAlgorithm algo;
  sim::EngineOptions opts;
  opts.seed = 7;
  opts.maxEvents = 50000;
  opts.sched.kind = sched::SchedulerKind::Async;
  sim::Engine eng(start, io::starPattern(8), algo, opts);
  const auto res = eng.run();
  EXPECT_TRUE(res.terminated);
  EXPECT_EQ(res.metrics.randomBits, 0u);  // purely deterministic path
  // Final configuration has a selected robot.
  Analysis a(makeSnap(eng.positions(), io::starPattern(8), 0));
  EXPECT_TRUE(a.selectedRobot().has_value());
}

// ------------------------------------------------------------ shifted case

/// Whole-config shifted set (innermost robot rotated by eps * alpha).
Configuration shiftedConfig(int m, double eps, int* shifted) {
  std::vector<double> radii(m, 2.0);
  radii[1] = 1.0;
  Configuration p = config::equiangularSet(radii, {}, 0.3);
  p[1] = (p[1]).rotated(eps * kTwoPi / m);
  *shifted = 1;
  return p;
}

TEST(RsbShiftedTest, ShiftDrivenTo18) {
  int re = -1;
  const Configuration p = shiftedConfig(8, 0.05, &re);
  const Configuration f = io::starPattern(8);
  // Robots other than the shifted one stay; the shifted robot arcs.
  for (std::size_t i = 0; i < p.size(); ++i) {
    const auto act = decide(p, f, i);
    EXPECT_EQ(act.phaseTag, kRsbShifted) << i;
    EXPECT_EQ(act.isMove(), static_cast<int>(i) == re) << i;
  }
  const auto act = decide(p, f, re);
  // End point reaches shift 1/8: angle from the vacant ray = alpha/8.
  // Angles are measured from the grid center (normalization is translate +
  // scale only, so angles about that center are preserved; vacant ray 0.3).
  Analysis a(makeSnap(p, f, re));
  const double alpha = kTwoPi / 8;
  const double endAngle =
      (act.path.end() - a.shiftedSet()->grid.center).arg();
  // Robot index 1 sits on grid ray 0.3 + alpha; the target shift is
  // alpha/8 past that vacant ray.
  EXPECT_NEAR(geom::angDist(endAngle, 0.3 + alpha + alpha / 8), 0.0, 1e-6);
  // The arc stays on the robot's circle around the grid center.
  const double r0 = (a.P()[re] - a.shiftedSet()->grid.center).norm();
  for (double s = 0; s <= act.path.length(); s += act.path.length() / 7) {
    EXPECT_NEAR((act.path.pointAt(s) - a.shiftedSet()->grid.center).norm(),
                r0, 1e-9);
  }
}

TEST(RsbShiftedTest, OthersDescendAtEighth) {
  int re = -1;
  const Configuration p = shiftedConfig(8, 0.125, &re);
  const Configuration f = io::starPattern(8);
  int movers = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const auto act = decide(p, f, i);
    if (static_cast<int>(i) == re) {
      EXPECT_FALSE(act.isMove()) << "shifted robot must wait";
      continue;
    }
    if (act.isMove()) {
      ++movers;
      // Radial descent onto the shifted robot's circle (radius ratio 1/2).
      Analysis a(makeSnap(p, f, i));
      const Vec2 c = a.shiftedSet()->grid.center;
      const double target = (a.P()[re] - c).norm();
      EXPECT_NEAR((act.path.end() - c).norm(), target, 1e-9);
      // Direction preserved (radial move).
      EXPECT_NEAR(geom::angDist((act.path.end() - c).arg(),
                                (a.P()[i] - c).arg()),
                  0.0, 1e-9);
    }
  }
  EXPECT_EQ(movers, 7);  // everyone above the circle descends
}

TEST(RsbShiftedTest, QuarterShiftTriggersDescentToSelected) {
  int re = -1;
  Configuration p = shiftedConfig(8, 0.25, &re);
  // Put the others already on the shifted robot's circle.
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (static_cast<int>(i) != re) p[i] = p[i] * (1.0 / 2.0);
  }
  const Configuration f = io::starPattern(8);
  for (std::size_t i = 0; i < p.size(); ++i) {
    const auto act = decide(p, f, i);
    EXPECT_EQ(act.isMove(), static_cast<int>(i) == re) << i;
  }
  const auto act = decide(p, f, re);
  // The endpoint satisfies the selected predicate.
  Analysis a(makeSnap(p, f, re));
  const double endR = act.path.end().norm();
  EXPECT_LT(endR, a.lF() / 2.0);
  for (std::size_t j = 0; j < p.size(); ++j) {
    if (j != static_cast<std::size_t>(re)) {
      EXPECT_GE(a.P()[j].norm(), 2.0 * endR);
    }
  }
}

TEST(RsbShiftedTest, MidShiftContinuesToEighth) {
  // Shift between 1/8 and 1/4 while others are still outside: the shifted
  // robot must move back toward 1/8 (paper: 1/8 < eps < 1/4 case).
  int re = -1;
  const Configuration p = shiftedConfig(8, 0.2, &re);
  const auto act = decide(p, io::starPattern(8), re);
  ASSERT_TRUE(act.isMove());
  Analysis a(makeSnap(p, io::starPattern(8), re));
  const double alpha = kTwoPi / 8;
  EXPECT_NEAR(
      geom::angDist((act.path.end() - a.shiftedSet()->grid.center).arg(),
                    0.3 + alpha + alpha / 8),
      0.0, 1e-6);
}

// ----------------------------------------------------------- election case

TEST(RsbElectionTest, OnlyClosestRobotsFlipCoins) {
  // Two concentric squares: reg(P) = inner class; only the 4 inner robots
  // (all tied closest) participate in the walk.
  Configuration p = config::regularPolygon(4, 2.0, {}, 0.0);
  const Configuration inner = config::regularPolygon(4, 1.0, {}, 0.4);
  for (const Vec2& v : inner.points()) p.push_back(v);
  const Configuration f = io::starPattern(8);
  for (std::size_t i = 0; i < 4; ++i) {
    sched::RandomSource rng(1);
    Analysis a(makeSnap(p, f, i));
    const auto act = rsbCompute(a, rng);
    EXPECT_EQ(rng.bitsConsumed(), 0u) << "outer robot " << i;
    EXPECT_FALSE(act.isMove());
  }
  for (std::size_t i = 4; i < 8; ++i) {
    sched::RandomSource rng(1);
    Analysis a(makeSnap(p, f, i));
    const auto act = rsbCompute(a, rng);
    EXPECT_EQ(act.phaseTag, kRsbElection);
    EXPECT_EQ(rng.bitsConsumed(), 1u) << "inner robot " << i;
  }
}

TEST(RsbElectionTest, WalkStepSizesMatchPaper) {
  Configuration p = config::regularPolygon(4, 2.0, {}, 0.0);
  const Configuration inner = config::regularPolygon(4, 1.0, {}, 0.4);
  for (const Vec2& v : inner.points()) p.push_back(v);
  const Configuration f = io::starPattern(8);
  // Find seeds that produce the inward and outward choice for robot 4.
  bool sawIn = false, sawOut = false;
  for (std::uint64_t seed = 1; seed < 30 && (!sawIn || !sawOut); ++seed) {
    sched::RandomSource rng(seed);
    Analysis a(makeSnap(p, f, 4));
    const auto act = rsbCompute(a, rng);
    if (!act.isMove()) continue;
    const double r0 = a.P()[4].norm();
    const double r1 = act.path.end().norm();
    if (r1 < r0) {
      // Inward: exactly |r|/8.
      EXPECT_NEAR(r0 - r1, r0 / 8.0, 1e-9);
      sawIn = true;
    } else {
      // Outward: min((d - |r|)/2, |r|/7), d = outer class radius.
      const double d = a.P()[0].norm();
      EXPECT_NEAR(r1 - r0, std::min(0.5 * (d - r0), r0 / 7.0), 1e-9);
      sawOut = true;
    }
  }
  EXPECT_TRUE(sawIn);
  EXPECT_TRUE(sawOut);
}

TEST(RsbElectionTest, ElectedRobotStartsShift) {
  // One inner robot strictly below 7/8 of the others: it is elected and
  // must arc on its circle (creating a shifted set), not walk radially.
  Configuration p = config::regularPolygon(4, 2.0, {}, 0.0);
  Configuration inner = config::regularPolygon(4, 1.0, {}, 0.4);
  inner[2] = inner[2] * 0.8;  // 0.8 < 7/8
  for (const Vec2& v : inner.points()) p.push_back(v);
  const Configuration f = io::starPattern(8);
  sched::RandomSource rng(1);
  Analysis a(makeSnap(p, f, 6));
  const auto act = rsbCompute(a, rng);
  ASSERT_TRUE(act.isMove());
  EXPECT_EQ(rng.bitsConsumed(), 0u);  // deterministic once elected
  // Arc: endpoint keeps its radius.
  EXPECT_NEAR(act.path.end().norm(), a.P()[6].norm(), 1e-9);
  // And the angle moved by alphamin / 8 toward a neighbor ray.
  EXPECT_GT(geom::angDist(act.path.end().arg(), a.P()[6].arg()), 1e-9);
}

TEST(RsbElectionTest, ElectionTerminatesWithProbabilityOne) {
  // Lemma 1/2 empirically: from symmetric configurations, psi_RSB reaches a
  // selected configuration for every seed tried.
  for (int rho : {2, 4}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      config::Rng rng(seed);
      const Configuration start =
          config::symmetricConfiguration(rho, 2, rng);
      RsbOnlyAlgorithm algo;
      sim::EngineOptions opts;
      opts.seed = seed * 101;
      opts.maxEvents = 200000;
      opts.sched.kind = sched::SchedulerKind::Async;
      sim::Engine eng(start, io::starPattern(start.size()), algo, opts);
      const auto res = eng.run();
      EXPECT_TRUE(res.terminated) << "rho=" << rho << " seed=" << seed;
      EXPECT_GT(res.metrics.randomBits, 0u);
      Analysis a(makeSnap(eng.positions(), io::starPattern(start.size()), 0));
      EXPECT_TRUE(a.selectedRobot().has_value())
          << "rho=" << rho << " seed=" << seed;
    }
  }
}

TEST(RsbElectionTest, OneBitPerElectionActivation) {
  // The headline claim: during the election, each robot consumes at most
  // one bit per cycle. Engine accounting: randomBits <= cycles always.
  config::Rng rng(11);
  const Configuration start = config::symmetricConfiguration(4, 2, rng);
  RsbOnlyAlgorithm algo;
  sim::EngineOptions opts;
  opts.seed = 13;
  opts.maxEvents = 100000;
  opts.sched.kind = sched::SchedulerKind::SSync;
  sim::Engine eng(start, io::starPattern(start.size()), algo, opts);
  const auto res = eng.run();
  EXPECT_TRUE(res.terminated);
  EXPECT_LE(res.metrics.randomBits, res.metrics.cycles);
}

}  // namespace
}  // namespace apf::core
