#include <gtest/gtest.h>

#include "config/generator.h"
#include "config/similarity.h"
#include "core/combination.h"
#include "core/scattering.h"
#include "io/patterns.h"
#include "sim/engine.h"

namespace apf::core {
namespace {

using config::Configuration;
using geom::Vec2;

/// Start with several multiplicity points.
Configuration clusteredStart(std::size_t n, std::uint64_t seed) {
  config::Rng rng(seed);
  const std::size_t spots = n / 3 + 2;
  const Configuration anchors =
      config::randomConfiguration(spots, rng, 3.0, 0.5);
  Configuration out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(anchors[i % spots]);
  }
  return out;
}

TEST(ScatterTest, RequiresMultiplicityDetection) {
  ScatterAlgorithm scatter;
  const Configuration p = clusteredStart(9, 1);
  const auto rep = probeActivity(scatter, p, io::starPattern(9),
                                 /*multiplicityDetection=*/false);
  EXPECT_FALSE(rep.active());
}

TEST(ScatterTest, ActiveExactlyOnMultiplicityConfigs) {
  ScatterAlgorithm scatter;
  const Configuration clustered = clusteredStart(9, 2);
  EXPECT_TRUE(probeActivity(scatter, clustered, io::starPattern(9), true)
                  .active());
  config::Rng rng(3);
  const Configuration spread = config::randomConfiguration(9, rng);
  EXPECT_FALSE(probeActivity(scatter, spread, io::starPattern(9), true)
                   .active());
}

TEST(ScatterTest, EliminatesMultiplicityUnderSsync) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    ScatterAlgorithm scatter;
    const Configuration start = clusteredStart(9, seed);
    sim::EngineOptions opts;
    opts.seed = seed * 3 + 1;
    opts.maxEvents = 100000;
    opts.multiplicityDetection = true;
    opts.sched.kind = sched::SchedulerKind::SSync;
    sim::Engine eng(start, io::starPattern(9), scatter, opts);
    const auto res = eng.run();
    EXPECT_TRUE(res.terminated) << "seed " << seed;
    EXPECT_FALSE(eng.positions().hasMultiplicity()) << "seed " << seed;
    EXPECT_GT(res.metrics.randomBits, 0u);
    // One bit per cycle at most.
    EXPECT_LE(res.metrics.randomBits, res.metrics.cycles);
  }
}

TEST(ScatterTest, StepNeverCreatesNewCollision) {
  // Property: along scattering executions, the number of DISTINCT occupied
  // points never decreases.
  ScatterAlgorithm scatter;
  const Configuration start = clusteredStart(12, 9);
  sim::EngineOptions opts;
  opts.seed = 17;
  opts.maxEvents = 100000;
  opts.multiplicityDetection = true;
  opts.sched.kind = sched::SchedulerKind::SSync;
  sim::Engine eng(start, io::starPattern(12), scatter, opts);
  std::size_t distinct = start.grouped().size();
  bool monotone = true;
  eng.setObserver([&](const sim::Engine& e, std::size_t) {
    const std::size_t now = e.positions().grouped().size();
    if (now < distinct) monotone = false;
    distinct = now;
  });
  eng.run();
  EXPECT_TRUE(monotone);
}

TEST(ScatterThenFormTest, FormsPatternFromClusteredStart) {
  // The paper's §5 composition: SSYNC scattering, then full formation.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ScatterThenForm algo;
    const Configuration start = clusteredStart(9, 20 + seed);
    const Configuration pattern = io::randomPatternByName(9, 50 + seed);
    sim::EngineOptions opts;
    opts.seed = seed * 13 + 5;
    opts.maxEvents = 600000;
    opts.multiplicityDetection = true;
    opts.sched.kind = sched::SchedulerKind::SSync;
    sim::Engine eng(start, pattern, algo, opts);
    const auto res = eng.run();
    EXPECT_TRUE(res.terminated) << "seed " << seed;
    EXPECT_TRUE(res.success) << "seed " << seed;
  }
}

TEST(ScatterThenFormTest, HandoffActiveSetsDisjoint) {
  // scatter active <=> multiplicity present; form consulted otherwise.
  ScatterThenForm algo;
  const Configuration clustered = clusteredStart(9, 31);
  const auto repC = probeActivity(algo, clustered, io::starPattern(9), true);
  EXPECT_TRUE(repC.active());
  config::Rng rng(32);
  const Configuration spread = config::randomConfiguration(9, rng);
  const auto repS = probeActivity(algo, spread, io::starPattern(9), true);
  EXPECT_TRUE(repS.active());  // formation takes over (pattern not formed)
  // And on the formed pattern: globally empty.
  const Configuration f = io::starPattern(9);
  EXPECT_FALSE(probeActivity(algo, f, f, true).active());
}

}  // namespace
}  // namespace apf::core
