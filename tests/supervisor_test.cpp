/// Campaign-supervisor determinism (sim/supervisor.h, docs/RESILIENCE.md):
/// the three acceptance proofs — (a) a supervised zero-fault campaign
/// merges bit-identical to the unsupervised executor, (b) a killed
/// journaled campaign resumes and merges bit-identical to an uninterrupted
/// one (including the journal file itself, after torn-tail recovery), and
/// (c) a same-seed retry of a deterministic failure reproduces the
/// identical failure and quarantines immediately — plus the watchdog
/// deadline semantics, the retry-salt policy, supervisor event-log
/// determinism, and the journal's corruption handling. Labelled `perf` so
/// the TSan CI lane covers the pool interactions (`ctest -L perf`).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "config/generator.h"
#include "core/form_pattern.h"
#include "io/patterns.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/recorder.h"
#include "sim/campaign.h"
#include "sim/engine.h"
#include "sim/supervisor.h"

namespace apf::sim {
namespace {

/// Deterministic engine run summarized as a flat JSON string, so
/// "bit-identical" is a plain string comparison. A null watchdog exercises
/// the unsupervised engine path; a supervised worker passes
/// Attempt::watchdog through.
std::string engineSummary(std::uint64_t seed, Watchdog* dog,
                          std::uint64_t maxEvents = 300000) {
  config::Rng rng(seed + 7);
  const config::Configuration start =
      config::randomConfiguration(6, rng, 5.0, 0.1);
  const config::Configuration pattern =
      io::randomPatternByName(6, 90 + static_cast<int>(seed));
  core::FormPatternAlgorithm algo;
  EngineOptions opts;
  opts.seed = seed;
  opts.maxEvents = maxEvents;
  opts.sched.kind = sched::SchedulerKind::Async;
  opts.watchdog = dog;
  Engine eng(start, pattern, algo, opts);
  const RunResult res = eng.run();
  obs::JsonObjectWriter w;
  w.field("success", res.success);
  w.field("cycles", res.metrics.cycles);
  w.field("events", res.metrics.events);
  w.field("bits", res.metrics.randomBits);
  w.field("distance", res.metrics.distance);
  return w.str();
}

std::vector<std::uint64_t> seedItems(std::size_t n) {
  std::vector<std::uint64_t> seeds(n);
  for (std::size_t i = 0; i < n; ++i) seeds[i] = 11 + i;
  return seeds;
}

// ------------------------------------------------- watchdog semantics ---

TEST(SupervisorTest, RetrySaltPolicy) {
  // Attempts 0 and 1 share the base seed (the same-seed determinism
  // proof); later attempts rotate through a fixed, pure sequence.
  EXPECT_EQ(retrySeedSalt(0), 0u);
  EXPECT_EQ(retrySeedSalt(1), 0u);
  EXPECT_NE(retrySeedSalt(2), 0u);
  EXPECT_EQ(retrySeedSalt(2), retrySeedSalt(2));
  EXPECT_NE(retrySeedSalt(2), retrySeedSalt(3));
}

TEST(SupervisorTest, WatchdogCycleBudgetIsExact) {
  Watchdog dog(/*cycleBudget=*/100, /*wallBudgetNanos=*/0);
  for (std::uint64_t c = 0; c < 100; ++c) {
    ASSERT_NO_THROW(dog.poll(c));
  }
  try {
    dog.poll(100);
    FAIL() << "cycle budget did not trip";
  } catch (const WatchdogExpired& e) {
    EXPECT_EQ(e.kind(), FailureKind::TimeoutCycles);
    EXPECT_EQ(e.atCycles(), 100u);
  }
}

TEST(SupervisorTest, WatchdogZeroBudgetsNeverExpire) {
  Watchdog dog(0, 0);
  for (std::uint64_t c = 0; c < 100000; ++c) {
    ASSERT_NO_THROW(dog.poll(c));
  }
}

TEST(SupervisorTest, WatchdogWallBudgetTripsEventually) {
  // A 1 ns budget is over by the time the deadline is re-checked, so the
  // second wall check (poll 2 * kWallCheckInterval) must throw.
  Watchdog dog(0, 1);
  bool expired = false;
  try {
    for (std::uint64_t c = 0; c < 10 * Watchdog::kWallCheckInterval; ++c) {
      dog.poll(c);
    }
  } catch (const WatchdogExpired& e) {
    expired = true;
    EXPECT_EQ(e.kind(), FailureKind::TimeoutWall);
  }
  EXPECT_TRUE(expired);
}

// ------------------------------ acceptance (a): zero-fault bit-identity --

TEST(SupervisorTest, ZeroFaultCampaignBitIdenticalToUnsupervised) {
  const auto seeds = seedItems(8);
  std::vector<std::string> bare;
  runCampaign(
      seeds,
      [](std::uint64_t s, std::size_t) { return engineSummary(s, nullptr); },
      [&](std::size_t, std::string&& r) { bare.push_back(std::move(r)); },
      /*jobs=*/1);

  for (int jobs : {1, 4}) {
    std::vector<std::string> supervised;
    const SupervisorReport report = superviseCampaign(
        seeds,
        [](std::uint64_t s, std::size_t, const Attempt& att) {
          return engineSummary(s, att.watchdog);
        },
        [&](std::size_t, std::string&& r) {
          supervised.push_back(std::move(r));
        },
        SupervisorOptions{}, jobs);
    EXPECT_EQ(supervised, bare) << "jobs=" << jobs;
    EXPECT_EQ(report.items, seeds.size());
    EXPECT_EQ(report.completed, seeds.size());
    EXPECT_EQ(report.retries, 0u);
    EXPECT_EQ(report.quarantined, 0u);
    EXPECT_TRUE(report.allCompleted());
  }
}

// ----------------------- acceptance (c): same-seed determinism proof -----

TEST(SupervisorTest, SameSeedRetryReproducesIdenticalFailureAndQuarantines) {
  const auto seeds = seedItems(4);
  SupervisorOptions opts;
  opts.maxRetries = 5;  // must NOT be exhausted: determinism short-circuits
  std::vector<std::string> merged;
  const SupervisorReport report = superviseCampaign(
      seeds,
      [](std::uint64_t s, std::size_t, const Attempt&) -> std::string {
        throw std::runtime_error("boom seed " + std::to_string(s));
      },
      [&](std::size_t, std::string&& r) { merged.push_back(std::move(r)); },
      opts, /*jobs=*/4);

  EXPECT_TRUE(merged.empty());
  EXPECT_EQ(report.quarantined, seeds.size());
  EXPECT_EQ(report.exceptions, 2 * seeds.size());
  ASSERT_EQ(report.quarantine.size(), seeds.size());
  for (const QuarantinedItem& q : report.quarantine) {
    EXPECT_TRUE(q.deterministic);
    ASSERT_EQ(q.attempts.size(), 2u) << "same-seed proof needs 2 attempts";
    EXPECT_EQ(q.attempts[0].seedSalt, 0u);
    EXPECT_EQ(q.attempts[1].seedSalt, 0u);
    EXPECT_TRUE(sameFailure(q.attempts[0], q.attempts[1]));
  }
  // Quarantine merges in index order too.
  for (std::size_t i = 0; i < report.quarantine.size(); ++i) {
    EXPECT_EQ(report.quarantine[i].index, i);
  }
}

TEST(SupervisorTest, EngineWatchdogTimeoutIsDeterministic) {
  // The engine polls once per scheduler event, so a cycle budget trips at
  // the exact same event on every attempt — the supervisor proves it via
  // the same-seed retry and quarantines without burning the later salts.
  const auto seeds = seedItems(3);
  SupervisorOptions opts;
  opts.cycleBudget = 50;
  opts.maxRetries = 4;
  std::vector<std::string> merged;
  const SupervisorReport report = superviseCampaign(
      seeds,
      [](std::uint64_t s, std::size_t, const Attempt& att) {
        return engineSummary(s, att.watchdog);
      },
      [&](std::size_t, std::string&& r) { merged.push_back(std::move(r)); },
      opts, /*jobs=*/2);

  EXPECT_TRUE(merged.empty());
  EXPECT_EQ(report.quarantined, seeds.size());
  EXPECT_EQ(report.timeoutsCycle, 2 * seeds.size());
  for (const QuarantinedItem& q : report.quarantine) {
    EXPECT_TRUE(q.deterministic);
    ASSERT_EQ(q.attempts.size(), 2u);
    EXPECT_EQ(q.attempts[0].kind, FailureKind::TimeoutCycles);
    EXPECT_EQ(q.attempts[0].atCycles, 50u);
    EXPECT_TRUE(sameFailure(q.attempts[0], q.attempts[1]));
  }
}

// ------------------------------------------- retry policy and events -----

TEST(SupervisorTest, RetrySaltsRotateAfterDifferingFailures) {
  // Failures that differ between attempts 0 and 1 are scheduling-flavored,
  // not deterministic: the supervisor keeps retrying with rotated salts.
  const std::vector<int> items{7};
  SupervisorOptions opts;
  opts.maxRetries = 2;
  obs::MemoryRecorder recorder;
  opts.recorder = &recorder;
  std::vector<std::uint64_t> salts;
  const SupervisorReport report = superviseCampaign(
      items,
      [](int, std::size_t, const Attempt& att) -> std::uint64_t {
        if (att.number < 2) {
          throw std::runtime_error("flaky attempt " +
                                   std::to_string(att.number));
        }
        return att.seedSalt;
      },
      [&](std::size_t, std::uint64_t&& salt) { salts.push_back(salt); },
      opts, /*jobs=*/1);

  ASSERT_EQ(salts.size(), 1u);
  EXPECT_EQ(salts[0], retrySeedSalt(2));
  EXPECT_NE(salts[0], 0u);
  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.retries, 2u);
  EXPECT_EQ(report.quarantined, 0u);

  // Event stream: one run_retried per failed attempt, carrying the salt of
  // the attempt being started.
  std::vector<std::uint64_t> retrySalts;
  for (const obs::Event& e : recorder.events()) {
    if (e.kind == obs::EventKind::RunRetried) {
      retrySalts.push_back(e.bitsUsed);
    }
  }
  ASSERT_EQ(retrySalts.size(), 2u);
  EXPECT_EQ(retrySalts[0], retrySeedSalt(1));
  EXPECT_EQ(retrySalts[1], retrySeedSalt(2));
}

TEST(SupervisorTest, SupervisorEventLogDeterministicAcrossJobCounts) {
  // Events are emitted on the merge thread in merge order, so the log is
  // the same for any pool size.
  const auto seeds = seedItems(8);
  auto runWith = [&](int jobs) {
    obs::MemoryRecorder recorder;
    SupervisorOptions opts;
    opts.maxRetries = 2;
    opts.recorder = &recorder;
    superviseCampaign(
        seeds,
        [](std::uint64_t s, std::size_t index, const Attempt& att)
            -> std::string {
          if (index % 2 == 1 && att.number == 0) {
            throw std::runtime_error("transient attempt 0");
          }
          return "ok " + std::to_string(s);
        },
        [](std::size_t, std::string&&) {}, opts, jobs);
    std::vector<std::string> lines;
    for (const obs::Event& e : recorder.events()) {
      lines.push_back(obs::toJsonLine(e));
    }
    return lines;
  };
  const auto serial = runWith(1);
  const auto pooled = runWith(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, pooled);
}

TEST(SupervisorTest, OutOfOrderMailboxBuffersWhileIndexZeroRetries) {
  // Index 0 fails once and re-runs while later items finish: the merge
  // thread must buffer them (pending high water) and still merge in strict
  // index order, counting the retry exactly once.
  const auto seeds = seedItems(12);
  SupervisorOptions opts;
  opts.maxRetries = 2;
  CampaignStats stats;
  std::size_t expected = 0;
  const SupervisorReport report = superviseCampaign(
      seeds,
      [](std::uint64_t s, std::size_t index, const Attempt& att)
          -> std::string {
        if (index == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          if (att.number == 0) {
            throw std::runtime_error("slow transient");
          }
        }
        return "r" + std::to_string(s);
      },
      [&](std::size_t index, std::string&&) {
        EXPECT_EQ(index, expected) << "merge out of order";
        ++expected;
      },
      opts, /*jobs=*/4, &stats);

  EXPECT_EQ(expected, seeds.size());
  EXPECT_EQ(report.completed, seeds.size());
  EXPECT_EQ(report.retries, 1u);
  EXPECT_EQ(stats.jobs, 4);
  EXPECT_GE(stats.pendingHighWater, 1u);
}

// --------------------- acceptance (b): journaled kill-and-resume ---------

class JournalDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "apf_supervisor_test";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  static std::string slurp(const std::string& p) {
    std::ifstream is(p, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
  }

  std::filesystem::path dir_;
};

TEST_F(JournalDir, KillAndResumeMergesAndConvergesBitIdentical) {
  const auto seeds = seedItems(16);
  const std::string key = "journal-test-v1";
  JournalCodec<std::string> codec;
  codec.encode = [](const std::string& s) { return s; };
  codec.decode = [](const std::string& s) { return s; };
  auto worker = [](std::uint64_t s, std::size_t, const Attempt& att) {
    return "payload " + std::to_string(s ^ att.seedSalt);
  };

  // Uninterrupted reference campaign.
  std::vector<std::string> reference;
  {
    CampaignJournal journal(path("full.journal"), key, /*resume=*/false);
    superviseCampaign(
        seeds, worker,
        [&](std::size_t, std::string&& r) {
          reference.push_back(std::move(r));
        },
        journal, codec, SupervisorOptions{}, /*jobs=*/1);
  }
  const std::string fullBytes = slurp(path("full.journal"));
  ASSERT_EQ(reference.size(), seeds.size());

  for (int jobs : {1, 4}) {
    // Simulate a SIGKILL after 5 completed entries, mid-write of the 6th:
    // keep header + 5 lines, then a torn (unterminated) tail.
    std::istringstream full(fullBytes);
    std::string line, partial;
    for (int keep = 0; keep < 6 && std::getline(full, line); ++keep) {
      partial += line + "\n";
    }
    partial += "{\"i\":5,\"payl";  // torn mid-write
    const std::string killed = path("killed" + std::to_string(jobs));
    {
      std::ofstream os(killed, std::ios::binary);
      os << partial;
    }

    std::vector<std::string> resumed;
    SupervisorReport report;
    {
      CampaignJournal journal(killed, key, /*resume=*/true);
      EXPECT_TRUE(journal.recoveredTornLine());
      EXPECT_EQ(journal.completedCount(), 5u);
      report = superviseCampaign(
          seeds, worker,
          [&](std::size_t, std::string&& r) {
            resumed.push_back(std::move(r));
          },
          journal, codec, SupervisorOptions{}, jobs);
    }
    // Merged output AND the journal file itself converge bit-identical.
    EXPECT_EQ(resumed, reference) << "jobs=" << jobs;
    EXPECT_EQ(slurp(killed), fullBytes) << "jobs=" << jobs;
    EXPECT_EQ(report.replayed, 5u);
    EXPECT_EQ(report.completed, seeds.size() - 5u);
  }
}

TEST_F(JournalDir, ResumeWithNoJournalFileStartsFresh) {
  CampaignJournal journal(path("fresh.journal"), "k", /*resume=*/true);
  EXPECT_EQ(journal.completedCount(), 0u);
  EXPECT_FALSE(journal.recoveredTornLine());
  journal.append(0, "x");
  EXPECT_TRUE(journal.has(0));
  ASSERT_NE(journal.payload(0), nullptr);
  EXPECT_EQ(*journal.payload(0), "x");
}

TEST_F(JournalDir, FreshOpenTruncatesExistingJournal) {
  {
    CampaignJournal journal(path("j"), "k", /*resume=*/false);
    journal.append(0, "old");
  }
  CampaignJournal journal(path("j"), "k", /*resume=*/false);
  EXPECT_EQ(journal.completedCount(), 0u);
}

TEST_F(JournalDir, ConfigMismatchRefusesToMerge) {
  {
    CampaignJournal journal(path("j"), "config A", /*resume=*/false);
    journal.append(0, "x");
  }
  EXPECT_THROW(CampaignJournal(path("j"), "config B", /*resume=*/true),
               std::runtime_error);
}

TEST_F(JournalDir, MidFileCorruptionThrowsInsteadOfGuessing) {
  {
    CampaignJournal journal(path("j"), "k", /*resume=*/false);
    journal.append(0, "x");
    journal.append(1, "y");
  }
  // Corrupt the MIDDLE entry (complete line, bad JSON): that is not a torn
  // tail, it is real corruption, and resume must refuse.
  std::string bytes = slurp(path("j"));
  const std::size_t first = bytes.find("{\"i\":0");
  ASSERT_NE(first, std::string::npos);
  bytes[first] = '#';
  {
    std::ofstream os(path("j"), std::ios::binary);
    os << bytes;
  }
  EXPECT_THROW(CampaignJournal(path("j"), "k", /*resume=*/true),
               std::runtime_error);
}

// ------------------------------------------------- report plumbing ------

TEST(SupervisorTest, ReportAbsorbSumsAndToJsonRoundTrips) {
  SupervisorReport a;
  a.items = 4;
  a.completed = 3;
  a.retries = 2;
  a.quarantined = 1;
  a.timeoutsCycle = 2;
  QuarantinedItem q;
  q.index = 3;
  q.deterministic = true;
  q.attempts.push_back(
      {FailureKind::TimeoutCycles, 0, 0, 500, "watchdog: cycle budget"});
  a.quarantine.push_back(q);

  SupervisorReport b;
  b.items = 2;
  b.completed = 2;
  b.replayed = 1;
  b.exceptions = 4;
  b.absorb(a);
  EXPECT_EQ(b.items, 6u);
  EXPECT_EQ(b.completed, 5u);
  EXPECT_EQ(b.replayed, 1u);
  EXPECT_EQ(b.retries, 2u);
  EXPECT_EQ(b.quarantined, 1u);
  EXPECT_EQ(b.timeoutsCycle, 2u);
  EXPECT_EQ(b.exceptions, 4u);
  ASSERT_EQ(b.quarantine.size(), 1u);
  EXPECT_FALSE(b.allCompleted());

  const auto doc = obs::parseJson(b.toJson());
  ASSERT_TRUE(doc.has_value());
  ASSERT_EQ(doc->kind, obs::JsonNode::Kind::Object);
  EXPECT_EQ(doc->find("report")->asString(), "apf.supervisor.v1");
  EXPECT_EQ(doc->find("items")->asNumber(), 6.0);
  const obs::JsonNode* quarantine = doc->find("quarantine");
  ASSERT_NE(quarantine, nullptr);
  ASSERT_EQ(quarantine->items.size(), 1u);
  const obs::JsonNode& item = quarantine->items[0];
  EXPECT_EQ(item.find("index")->asNumber(), 3.0);
  EXPECT_TRUE(item.find("deterministic")->asBool(false));
  ASSERT_EQ(item.find("attempts")->items.size(), 1u);
  EXPECT_EQ(item.find("attempts")->items[0].find("kind")->asString(),
            "timeout_cycles");
}

TEST(SupervisorTest, ManifestKeysComplete) {
  SupervisorOptions opts;
  opts.cycleBudget = 123;
  opts.maxRetries = 3;
  SupervisorReport report;
  report.items = 9;
  obs::Manifest m;
  appendManifest(opts, report, m);
  for (const char* key :
       {"supervisor.cycle_budget", "supervisor.wall_budget_nanos",
        "supervisor.max_retries", "supervisor.items", "supervisor.completed",
        "supervisor.replayed", "supervisor.retries",
        "supervisor.quarantined", "supervisor.timeouts_cycle",
        "supervisor.timeouts_wall", "supervisor.exceptions"}) {
    EXPECT_NE(m.findEncoded(key), nullptr) << key;
  }
  EXPECT_EQ(*m.findEncoded("supervisor.cycle_budget"), "123");
  EXPECT_EQ(*m.findEncoded("supervisor.items"), "9");
}

}  // namespace
}  // namespace apf::sim
