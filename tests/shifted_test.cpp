#include <gtest/gtest.h>

#include <cmath>

#include "config/generator.h"
#include "config/shifted.h"
#include "geom/angle.h"

namespace apf::config {
namespace {

using geom::kTwoPi;
using geom::Vec2;

/// Builds a whole-configuration shifted set: an equiangular m-set with the
/// innermost robot rotated around the center by eps * alpha (alphamin(P') is
/// alpha for equiangular whole configs).
Configuration makeShiftedEquiangular(int m, double eps, Vec2 center,
                                     double phase, int* shiftedIdx) {
  std::vector<double> radii(m, 2.0);
  radii[2] = 1.0;  // robot 2 is the unique innermost robot
  Configuration p = equiangularSet(radii, center, phase);
  const double alpha = kTwoPi / m;
  const Vec2 d = p[2] - center;
  p[2] = center + d.rotated(eps * alpha);
  *shiftedIdx = 2;
  return p;
}

TEST(ShiftedTest, WholeConfigShiftDetected) {
  for (int m : {7, 9, 12}) {
    int idx = -1;
    const Configuration p =
        makeShiftedEquiangular(m, 0.125, {3, -2}, 0.8, &idx);
    const auto info = shiftedRegularSetOf(p);
    ASSERT_TRUE(info.has_value()) << "m=" << m;
    EXPECT_EQ(static_cast<int>(info->shiftedRobot), idx);
    EXPECT_NEAR(info->epsilon, 0.125, 1e-6);
    EXPECT_TRUE(info->wholeConfig);
    EXPECT_NEAR(info->grid.center.x, 3.0, 1e-6);
    EXPECT_NEAR(info->grid.center.y, -2.0, 1e-6);
  }
}

TEST(ShiftedTest, QuarterShiftDetected) {
  int idx = -1;
  const Configuration p = makeShiftedEquiangular(8, 0.25, {}, 0.1, &idx);
  const auto info = shiftedRegularSetOf(p);
  ASSERT_TRUE(info.has_value());
  EXPECT_NEAR(info->epsilon, 0.25, 1e-6);
}

TEST(ShiftedTest, OverQuarterShiftRejected) {
  int idx = -1;
  const Configuration p = makeShiftedEquiangular(8, 0.35, {}, 0.1, &idx);
  EXPECT_FALSE(shiftedRegularSetOf(p).has_value());
}

TEST(ShiftedTest, UnshiftedRegularRejected) {
  const double radii[] = {2, 2, 1, 2, 2, 2, 2};
  const Configuration p = equiangularSet(radii, {}, 0.3);
  EXPECT_FALSE(shiftedRegularSetOf(p).has_value());
}

TEST(ShiftedTest, GenericConfigRejected) {
  Rng rng(31);
  const Configuration p = randomConfiguration(9, rng);
  EXPECT_FALSE(shiftedRegularSetOf(p).has_value());
}

TEST(ShiftedTest, SubsetShiftDetected) {
  // Outer 6-gon on the SEC, inner 3-gon as reg(P) (3 divides 6), with one
  // inner robot moved inward (unique innermost) and rotated by eps*alpha.
  Configuration p = regularPolygon(6, 3.0, {}, 0.0);
  Configuration inner = regularPolygon(3, 1.0, {}, 0.21);
  // alphamin(P') is the minimum over ALL rays of P' (hexagon + triangle):
  // the 0.21 offset between a hexagon ray and a triangle ray. The legal
  // shift is at most a quarter of that.
  const double alphaMinPPrime = 0.21;
  const double shift = 0.2 * alphaMinPPrime;
  // Robot 0 of the inner triangle: pull to radius 0.8 (unique innermost)
  // and rotate by the shift TOWARD its nearest ray (the hexagon ray at
  // angle 0): condition (b) requires the shift to decrease the robot's
  // minimum angle with the other robots.
  inner[0] = Vec2{0.8 * std::cos(0.21 - shift), 0.8 * std::sin(0.21 - shift)};
  for (const Vec2& v : inner.points()) p.push_back(v);
  const auto info = shiftedRegularSetOf(p);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->shiftedRobot, 6u);  // first inner robot
  EXPECT_FALSE(info->wholeConfig);
  EXPECT_EQ(info->indices.size(), 3u);
  EXPECT_NEAR(info->alphaMinPPrime, alphaMinPPrime, 1e-9);
  EXPECT_NEAR(info->epsilon, 0.2, 1e-6);
}

TEST(ShiftedTest, ShiftedRobotInsideItsCircleStillDetected) {
  // After election the shifted robot moves radially inward (still on its
  // ray): detection must keep recognizing the shifted set (Property 2, M3).
  int idx = -1;
  Configuration p = makeShiftedEquiangular(9, 0.25, {}, 0.5, &idx);
  const Vec2 d = p[idx];
  p[idx] = d * 0.5;  // halve the radius, same direction
  const auto info = shiftedRegularSetOf(p);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(static_cast<int>(info->shiftedRobot), idx);
  EXPECT_NEAR(info->epsilon, 0.25, 1e-6);
}

TEST(ShiftedTest, BiangularWholeConfigShiftDetected) {
  const int m = 8;
  std::vector<double> radii(m, 2.0);
  radii[4] = 1.2;
  Configuration p = biangularSet(m, 0.5, radii, {1, 1}, 0.9);
  // alphamin(P') = min(alpha, beta) = 0.5; shift robot 4 by eps * 0.5.
  const double eps = 0.2;
  p[4] = Vec2{1, 1} + (p[4] - Vec2{1, 1}).rotated(eps * 0.5);
  const auto info = shiftedRegularSetOf(p);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->shiftedRobot, 4u);
  EXPECT_TRUE(info->biangular);
  EXPECT_NEAR(info->epsilon, eps, 1e-5);
}

TEST(ShiftedTest, Theorem1UniquenessAcrossCandidates) {
  // Theorem 1: for n >= 7 the shifted set is unique; the detector must
  // return the same answer regardless of robot ordering.
  int idx = -1;
  Configuration p = makeShiftedEquiangular(10, 0.125, {}, 1.7, &idx);
  const auto a = shiftedRegularSetOf(p);
  ASSERT_TRUE(a.has_value());
  // Reverse the robot order and re-detect.
  std::vector<Vec2> rev(p.points().rbegin(), p.points().rend());
  const Configuration q{std::move(rev)};
  const auto b = shiftedRegularSetOf(q);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->shiftedRobot + b->shiftedRobot, p.size() - 1);
  EXPECT_NEAR(a->epsilon, b->epsilon, 1e-9);
}

}  // namespace
}  // namespace apf::config
