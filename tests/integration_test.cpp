#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "config/generator.h"
#include "config/similarity.h"
#include "core/form_pattern.h"
#include "io/patterns.h"
#include "sim/engine.h"

namespace apf {
namespace {

using config::Configuration;
using geom::Vec2;

sched::SchedulerKind kindOf(const std::string& s) {
  if (s == "fsync") return sched::SchedulerKind::FSync;
  if (s == "ssync") return sched::SchedulerKind::SSync;
  return sched::SchedulerKind::Async;
}

sim::RunResult runFormation(const Configuration& start,
                            const Configuration& pattern,
                            sched::SchedulerKind kind, std::uint64_t seed,
                            std::uint64_t maxEvents = 400000,
                            bool multiplicity = false,
                            sim::Engine** engineOut = nullptr) {
  static core::FormPatternAlgorithm algo;
  sim::EngineOptions opts;
  opts.seed = seed;
  opts.maxEvents = maxEvents;
  opts.multiplicityDetection = multiplicity;
  opts.sched.kind = kind;
  static thread_local std::unique_ptr<sim::Engine> eng;
  eng = std::make_unique<sim::Engine>(start, pattern, algo, opts);
  if (engineOut) *engineOut = eng.get();
  return eng->run();
}

// ------------------------------------------------------- parameterized run

using Cell = std::tuple<std::string /*pattern*/, std::string /*sched*/,
                        std::size_t /*n*/>;

class FormationMatrix : public ::testing::TestWithParam<Cell> {};

TEST_P(FormationMatrix, RandomStartForms) {
  const auto& [patName, schedName, n] = GetParam();
  config::Rng rng(1234 + n);
  const Configuration start = config::randomConfiguration(n, rng, 5.0, 0.1);
  const Configuration pattern = io::patternByName(patName, n, 77);
  const auto res =
      runFormation(start, pattern, kindOf(schedName), 42 + n);
  EXPECT_TRUE(res.terminated);
  EXPECT_TRUE(res.success);
  // The headline randomness bound: never more than one bit per cycle.
  EXPECT_LE(res.metrics.randomBits, res.metrics.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    AllPatternsSchedulersSizes, FormationMatrix,
    ::testing::Combine(::testing::Values("polygon", "star", "grid", "spiral",
                                         "ringcore", "random"),
                       ::testing::Values("fsync", "ssync", "async"),
                       ::testing::Values(std::size_t{7}, std::size_t{12})),
    [](const ::testing::TestParamInfo<Cell>& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param) + "_n" +
             std::to_string(std::get<2>(info.param));
    });

// ----------------------------------------------------- symmetric starts

class SymmetricStart : public ::testing::TestWithParam<int> {};

TEST_P(SymmetricStart, ElectionBreaksSymmetry) {
  const int rho = GetParam();
  config::Rng rng(7 + rho);
  // Enough rings to keep n >= 7 (the theorem's regime).
  const int rings = (rho <= 3) ? 4 : 2;
  const Configuration start = config::symmetricConfiguration(rho, rings, rng);
  const Configuration pattern = io::randomPatternByName(start.size(), 55);
  const auto res = runFormation(start, pattern,
                                sched::SchedulerKind::Async, 100 + rho);
  EXPECT_TRUE(res.terminated) << "rho=" << rho;
  EXPECT_TRUE(res.success) << "rho=" << rho;
  EXPECT_GT(res.metrics.randomBits, 0u) << "symmetry required randomness";
}

INSTANTIATE_TEST_SUITE_P(Rho, SymmetricStart, ::testing::Values(2, 3, 4, 5),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "rho" + std::to_string(info.param);
                         });

TEST(IntegrationTest, AxiallySymmetricStartForms) {
  // Mirror-symmetric (rho = 1) start: Property 1 guarantees a regular set;
  // the election must still break the mirror tie.
  Configuration start({{0, 3},
                       {1.2, 1.4},
                       {-1.2, 1.4},
                       {0.7, -1.1},
                       {-0.7, -1.1},
                       {2.0, 0.3},
                       {-2.0, 0.3},
                       {0, -2.4}});
  const Configuration pattern = io::randomPatternByName(8, 91);
  const auto res =
      runFormation(start, pattern, sched::SchedulerKind::Async, 17);
  EXPECT_TRUE(res.terminated);
  EXPECT_TRUE(res.success);
}

TEST(IntegrationTest, PatternEqualsStartIsTerminalImmediately) {
  config::Rng rng(3);
  const Configuration p = config::randomConfiguration(8, rng, 2.0, 0.1);
  const auto res = runFormation(
      p.transformed(geom::Similarity(0.9, 2.0, true, {4, -1})), p,
      sched::SchedulerKind::Async, 5);
  EXPECT_TRUE(res.terminated);
  EXPECT_TRUE(res.success);
  EXPECT_EQ(res.metrics.distance, 0.0);
}

TEST(IntegrationTest, TinyDeltaStillConverges) {
  config::Rng rng(4);
  const Configuration start = config::randomConfiguration(8, rng, 5.0, 0.1);
  const Configuration pattern = io::starPattern(8);
  core::FormPatternAlgorithm algo;
  sim::EngineOptions opts;
  opts.seed = 6;
  opts.maxEvents = 1500000;
  opts.sched.kind = sched::SchedulerKind::Async;
  opts.sched.delta = 0.005;
  opts.sched.earlyStopProb = 0.9;  // aggressive stop-at-delta adversary
  sim::Engine eng(start, pattern, algo, opts);
  const auto res = eng.run();
  EXPECT_TRUE(res.terminated);
  EXPECT_TRUE(res.success);
}

TEST(IntegrationTest, NoUnintendedMultiplicityEverCreated) {
  // Without multiplicity in the target, robots must never collide along the
  // way (the paper's movements are collision-free by construction).
  config::Rng rng(8);
  const Configuration start = config::randomConfiguration(9, rng, 4.0, 0.1);
  const Configuration pattern = io::randomPatternByName(9, 33);
  core::FormPatternAlgorithm algo;
  sim::EngineOptions opts;
  opts.seed = 11;
  opts.maxEvents = 400000;
  opts.sched.kind = sched::SchedulerKind::Async;
  sim::Engine eng(start, pattern, algo, opts);
  bool collision = false;
  eng.setObserver([&](const sim::Engine& e, std::size_t) {
    if (e.positions().hasMultiplicity(geom::Tol{1e-9, 1e-9})) {
      collision = true;
    }
  });
  const auto res = eng.run();
  EXPECT_TRUE(res.success);
  EXPECT_FALSE(collision);
}

TEST(IntegrationTest, TerminalConfigurationStaysTerminal) {
  // Termination awareness: keep scheduling after success; nothing moves.
  config::Rng rng(5);
  const Configuration start = config::randomConfiguration(7, rng, 3.0, 0.1);
  const Configuration pattern = io::gridPattern(7);
  core::FormPatternAlgorithm algo;
  sim::EngineOptions opts;
  opts.seed = 19;
  opts.maxEvents = 400000;
  opts.sched.kind = sched::SchedulerKind::SSync;
  sim::Engine eng(start, pattern, algo, opts);
  auto res = eng.run();
  ASSERT_TRUE(res.terminated);
  ASSERT_TRUE(res.success);
  const Configuration frozen = eng.positions();
  // Force 200 more rounds.
  for (int i = 0; i < 200; ++i) eng.step();
  for (std::size_t i = 0; i < frozen.size(); ++i) {
    EXPECT_EQ(frozen[i], eng.positions()[i]) << "robot " << i << " moved";
  }
}

// --------------------------------------------------------- multiplicity

TEST(IntegrationTest, InteriorMultiplicityPatternForms) {
  config::Rng rng(6);
  const Configuration start = config::randomConfiguration(9, rng, 4.0, 0.1);
  const auto res = runFormation(start, io::multiplicityPattern(9),
                                sched::SchedulerKind::Async, 23, 400000,
                                /*multiplicity=*/true);
  EXPECT_TRUE(res.terminated);
  EXPECT_TRUE(res.success);
}

TEST(IntegrationTest, CenterMultiplicityPatternForms) {
  config::Rng rng(7);
  const Configuration start = config::randomConfiguration(9, rng, 4.0, 0.1);
  const auto res = runFormation(start, io::centerMultiplicityPattern(9),
                                sched::SchedulerKind::Async, 29, 400000,
                                /*multiplicity=*/true);
  EXPECT_TRUE(res.terminated);
  EXPECT_TRUE(res.success);
}

TEST(IntegrationTest, MultiplicityPointActuallyFormed) {
  // With detection on, the formed configuration contains a genuine
  // multiplicity point matching the pattern's doubled point.
  config::Rng rng(9);
  const Configuration start = config::randomConfiguration(9, rng, 4.0, 0.1);
  sim::Engine* eng = nullptr;
  const auto res = runFormation(start, io::multiplicityPattern(9),
                                sched::SchedulerKind::SSync, 31, 400000,
                                /*multiplicity=*/true, &eng);
  ASSERT_TRUE(res.success);
  int maxCount = 0;
  for (const auto& g : eng->positions().grouped(geom::Tol{1e-5, 1e-5})) {
    maxCount = std::max(maxCount, g.count);
  }
  EXPECT_EQ(maxCount, 2);
}

// ------------------------------------------------------- frame robustness

TEST(IntegrationTest, ScaledAndTranslatedWorldsForm) {
  // Same logical run at wildly different world scales: both succeed (the
  // algorithm normalizes; nothing depends on absolute units).
  config::Rng rng(10);
  const Configuration start = config::randomConfiguration(8, rng, 1.0, 0.02);
  const Configuration big =
      start.transformed(geom::Similarity(0.0, 1000.0, false, {5000, -300}));
  const Configuration pattern = io::starPattern(8);
  const auto small =
      runFormation(start, pattern, sched::SchedulerKind::SSync, 37);
  EXPECT_TRUE(small.success);
  core::FormPatternAlgorithm algo;
  sim::EngineOptions opts;
  opts.seed = 37;
  opts.maxEvents = 400000;
  opts.sched.kind = sched::SchedulerKind::SSync;
  opts.sched.delta = 50.0;  // delta scales with the world
  sim::Engine eng(big, pattern, algo, opts);
  EXPECT_TRUE(eng.run().success);
}

}  // namespace
}  // namespace apf
