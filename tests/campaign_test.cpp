/// Parallel-campaign determinism: the executor in sim/campaign.h must merge
/// results in strict run-index order so that every aggregate is
/// bit-identical to the serial loop for ANY thread count. These tests run
/// the same campaigns at jobs = 1, 4, and hardware concurrency and compare
/// every field — including full fuzz campaigns with a fault plan active.
/// Labelled `perf` so the TSan CI lane can target them (`ctest -L perf`).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <tuple>

#include "config/generator.h"
#include "core/form_pattern.h"
#include "io/patterns.h"
#include "obs/manifest.h"
#include "obs/span.h"
#include "sim/campaign.h"
#include "sim/engine.h"
#include "sim/fuzzer.h"

namespace apf::sim {
namespace {

/// Scoped APF_JOBS override; restores the previous value on destruction.
class ScopedJobsEnv {
 public:
  explicit ScopedJobsEnv(const char* value) {
    const char* prev = std::getenv("APF_JOBS");
    hadPrev_ = prev != nullptr;
    if (hadPrev_) prev_ = prev;
    if (value != nullptr) {
      ::setenv("APF_JOBS", value, 1);
    } else {
      ::unsetenv("APF_JOBS");
    }
  }
  ~ScopedJobsEnv() {
    if (hadPrev_) {
      ::setenv("APF_JOBS", prev_.c_str(), 1);
    } else {
      ::unsetenv("APF_JOBS");
    }
  }

 private:
  bool hadPrev_ = false;
  std::string prev_;
};

TEST(CampaignTest, MergesInStrictIndexOrder) {
  std::vector<int> items(100);
  for (int i = 0; i < 100; ++i) items[i] = i;
  for (int jobs : {1, 4}) {
    std::size_t expected = 0;
    runCampaign(
        items,
        [](int item, std::size_t idx) {
          EXPECT_EQ(static_cast<std::size_t>(item), idx);
          // Scramble completion order so the mailbox actually has to buffer
          // out-of-order arrivals before merging.
          if (item % 3 == 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
          return item * item;
        },
        [&](std::size_t idx, int&& r) {
          EXPECT_EQ(idx, expected) << "merge out of order at jobs=" << jobs;
          EXPECT_EQ(r, items[idx] * items[idx]);
          ++expected;
        },
        jobs);
    EXPECT_EQ(expected, items.size());
  }
}

TEST(CampaignTest, MapIdenticalAcrossJobCounts) {
  std::vector<int> items(64);
  for (int i = 0; i < 64; ++i) items[i] = 3 * i + 1;
  auto worker = [](int item, std::size_t idx) {
    return item * 1000 + static_cast<int>(idx);
  };
  const auto serial = campaignMap(items, worker, 1);
  const auto four = campaignMap(items, worker, 4);
  const auto hw = campaignMap(items, worker, campaignJobs());
  EXPECT_EQ(serial, four);
  EXPECT_EQ(serial, hw);
}

TEST(CampaignTest, WorkerExceptionPropagates) {
  std::vector<int> items(50);
  for (int i = 0; i < 50; ++i) items[i] = i;
  for (int jobs : {1, 4}) {
    auto run = [&] {
      campaignMap(
          items,
          [](int item, std::size_t) {
            if (item == 37) throw std::runtime_error("boom");
            return item;
          },
          jobs);
    };
    EXPECT_THROW(run(), std::runtime_error) << "jobs=" << jobs;
  }
}

/// When a worker throws, the campaign cancels, rethrows — and still fills
/// the caller's CampaignStats first, so a crashed campaign's telemetry
/// (jobs, wall time, how far it got) survives into the error report.
TEST(CampaignTest, WorkerExceptionStillFillsStats) {
  std::vector<int> items(50);
  for (int i = 0; i < 50; ++i) items[i] = i;
  for (int jobs : {1, 4}) {
    CampaignStats stats;
    auto run = [&] {
      campaignMap(
          items,
          [](int item, std::size_t) {
            if (item == 37) throw std::runtime_error("boom");
            return item;
          },
          jobs, &stats);
    };
    EXPECT_THROW(run(), std::runtime_error) << "jobs=" << jobs;
    EXPECT_EQ(stats.jobs, jobs);
    // The campaign cancels at item 37: everything merged before the throw
    // is counted, nothing after it ever runs.
    EXPECT_LE(stats.items, 37u);
    EXPECT_GT(stats.wallNanos, 0u);
  }
}

TEST(CampaignTest, JobsResolution) {
  {
    ScopedJobsEnv env(nullptr);
    EXPECT_EQ(campaignJobs(3), 3);  // explicit request wins
    EXPECT_GE(campaignJobs(0), 1);  // hardware fallback is at least 1
  }
  {
    ScopedJobsEnv env("5");
    EXPECT_EQ(campaignJobs(0), 5);
    EXPECT_EQ(campaignJobs(2), 2);  // explicit request still wins
  }
  {
    ScopedJobsEnv env("100000");
    EXPECT_EQ(campaignJobs(0), 512);  // clamped
  }
  {
    ScopedJobsEnv env("nonsense");
    EXPECT_GE(campaignJobs(0), 1);  // unparsable -> hardware fallback
  }
}

/// Garbage in APF_JOBS must not be swallowed silently (a typo'd `l6` used
/// to quietly run a different experiment): the resolver warns on stderr and
/// then falls back to hardware concurrency. Valid values stay quiet.
TEST(CampaignTest, JobsResolutionWarnsOnGarbageEnv) {
  const std::vector<const char*> garbage = {"nonsense", "4x", "0", "-2"};
  for (const char* value : garbage) {
    ScopedJobsEnv env(value);
    testing::internal::CaptureStderr();
    EXPECT_GE(campaignJobs(0), 1);
    const std::string err = testing::internal::GetCapturedStderr();
    const std::string expected =
        std::string("apf: ignoring unparsable APF_JOBS=\"") + value +
        "\" (want an integer >= 1); using hardware concurrency\n";
    EXPECT_EQ(err, expected) << "APF_JOBS=" << value;
  }
  for (const char* value : {"5", "512"}) {
    ScopedJobsEnv env(value);
    testing::internal::CaptureStderr();
    EXPECT_GE(campaignJobs(0), 1);
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "") << value;
  }
  {
    // An explicit request short-circuits the env var entirely: no warning
    // even when the env holds garbage.
    ScopedJobsEnv env("nonsense");
    testing::internal::CaptureStderr();
    EXPECT_EQ(campaignJobs(3), 3);
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
  }
}

/// Engine runs fanned out like the benches do: per-run aggregates must be
/// identical for any job count.
TEST(CampaignTest, EngineCampaignIdenticalAcrossJobCounts) {
  core::FormPatternAlgorithm algo;
  std::vector<int> seeds(8);
  for (int s = 0; s < 8; ++s) seeds[s] = s;
  auto worker = [&](int s, std::size_t) {
    config::Rng rng(500 + s);
    const auto start = config::randomConfiguration(8, rng, 5.0, 0.1);
    const auto pattern = io::randomPatternByName(8, 40 + s);
    EngineOptions opts;
    opts.seed = 13 * static_cast<std::uint64_t>(s) + 2;
    opts.sched.kind = sched::SchedulerKind::Async;
    Engine eng(start, pattern, algo, opts);
    const RunResult res = eng.run();
    return std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, bool>(
        res.metrics.events, res.metrics.cycles, res.metrics.randomBits,
        res.success);
  };
  const auto serial = campaignMap(seeds, worker, 1);
  const auto four = campaignMap(seeds, worker, 4);
  const auto hw = campaignMap(seeds, worker, campaignJobs());
  EXPECT_EQ(serial, four);
  EXPECT_EQ(serial, hw);
}

void expectFuzzEqual(const FuzzResult& a, const FuzzResult& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.terminated, b.terminated);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.outcomes, b.outcomes);
  EXPECT_EQ(a.distinctConfigurations, b.distinctConfigurations);
  EXPECT_EQ(a.collisionFree, b.collisionFree);
  EXPECT_EQ(a.secBounded, b.secBounded);
  EXPECT_EQ(a.maxSecGrowthFactor, b.maxSecGrowthFactor);  // bit-exact
  EXPECT_EQ(a.firstViolation, b.firstViolation);
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].seed, b.failures[i].seed);
    EXPECT_EQ(a.failures[i].earlyStopProb, b.failures[i].earlyStopProb);
    EXPECT_EQ(a.failures[i].violation, b.failures[i].violation);
  }
}

TEST(CampaignTest, FuzzResultIdenticalAcrossJobCounts) {
  core::FormPatternAlgorithm algo;
  config::Rng rng(21);
  const auto start = config::randomConfiguration(6, rng, 4.0, 0.1);
  const auto pattern = io::starPattern(6);
  FuzzOptions opts;
  opts.schedules = 6;
  const FuzzResult serial = [&] {
    FuzzOptions o = opts;
    o.jobs = 1;
    return fuzzSchedules(algo, start, pattern, o);
  }();
  EXPECT_EQ(serial.successes, serial.runs) << serial.firstViolation;
  for (int jobs : {4, campaignJobs()}) {
    FuzzOptions o = opts;
    o.jobs = jobs;
    expectFuzzEqual(serial, fuzzSchedules(algo, start, pattern, o));
  }
}

/// Telemetry must be passive: requesting CampaignStats and/or recording
/// spans cannot change a single merged bit (ISSUE acceptance: with no span
/// sink attached, campaign outputs are bit-identical to uninstrumented
/// binaries — and with one attached, still identical).
TEST(CampaignTest, StatsAndSpansLeaveMergedResultsBitIdentical) {
  core::FormPatternAlgorithm algo;
  std::vector<int> seeds(8);
  for (int s = 0; s < 8; ++s) seeds[s] = s;
  auto worker = [&](int s, std::size_t) {
    config::Rng rng(500 + s);
    const auto start = config::randomConfiguration(8, rng, 5.0, 0.1);
    const auto pattern = io::randomPatternByName(8, 40 + s);
    EngineOptions opts;
    opts.seed = 13 * static_cast<std::uint64_t>(s) + 2;
    opts.sched.kind = sched::SchedulerKind::Async;
    Engine eng(start, pattern, algo, opts);
    const RunResult res = eng.run();
    return std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, bool>(
        res.metrics.events, res.metrics.cycles, res.metrics.randomBits,
        res.success);
  };
  const auto plain = campaignMap(seeds, worker, 4);
  for (int jobs : {1, 4}) {
    CampaignStats stats;
    const auto withStats = campaignMap(seeds, worker, jobs, &stats);
    EXPECT_EQ(withStats, plain) << "jobs=" << jobs;
    EXPECT_EQ(stats.jobs, jobs);
    EXPECT_EQ(stats.items, seeds.size());
    EXPECT_GT(stats.workerBusyNanos, 0u);
    EXPECT_GT(stats.wallNanos, 0u);
    EXPECT_GE(stats.wallNanos, stats.mergeNanos);
    EXPECT_GE(stats.utilization(), 0.0);
    EXPECT_LE(stats.utilization(), 1.0);
    if (jobs == 1) {
      // Serial path spawns no threads: no idle, no mailbox, no stall.
      EXPECT_EQ(stats.workerIdleNanos, 0u);
      EXPECT_EQ(stats.mailboxHighWater, 0u);
      EXPECT_EQ(stats.pendingHighWater, 0u);
      EXPECT_EQ(stats.mergeStallNanos, 0u);
    } else {
      EXPECT_GE(stats.mailboxHighWater, 1u);
      EXPECT_GE(stats.pendingHighWater, 1u);
    }
    // Spans recording on top of stats must also change nothing.
    obs::SpanCollector collector;
    collector.install();
    CampaignStats tracedStats;
    const auto traced = campaignMap(seeds, worker, jobs, &tracedStats);
    obs::SpanCollector::uninstall();
    EXPECT_EQ(traced, plain) << "jobs=" << jobs;
    EXPECT_EQ(tracedStats.items, seeds.size());
    // The worker body emits engine spans of its own; check only that the
    // campaign-category spans cover both stages of the executor.
    bool sawRun = false, sawMerge = false;
    for (const obs::Span& s : collector.snapshot()) {
      if (std::string_view(s.cat) != "campaign") continue;
      if (std::string_view(s.name) == "run") sawRun = true;
      if (std::string_view(s.name) == "merge") sawMerge = true;
    }
    EXPECT_TRUE(sawRun);
    EXPECT_TRUE(sawMerge);
  }
}

TEST(CampaignTest, StatsManifestKeysComplete) {
  CampaignStats stats;
  stats.jobs = 4;
  stats.items = 22;
  stats.workerBusyNanos = 300;
  stats.workerIdleNanos = 100;
  obs::Manifest m;
  appendManifest(stats, m);
  for (const char* key :
       {"campaign.jobs", "campaign.items", "campaign.wall_nanos",
        "campaign.worker_busy_nanos", "campaign.worker_idle_nanos",
        "campaign.utilization", "campaign.mailbox_high_water",
        "campaign.pending_high_water", "campaign.merge_stall_nanos",
        "campaign.merge_nanos"}) {
    EXPECT_NE(m.findEncoded(key), nullptr) << key;
  }
  EXPECT_EQ(*m.findEncoded("campaign.jobs"), "4");
  EXPECT_EQ(*m.findEncoded("campaign.utilization"), "0.75");
}

TEST(CampaignTest, FuzzResultIdenticalAcrossJobCountsWithFaultPlan) {
  core::FormPatternAlgorithm algo;
  config::Rng rng(23);
  const auto start = config::randomConfiguration(6, rng, 4.0, 0.1);
  const auto pattern = io::randomPatternByName(6, 31);
  FuzzOptions opts;
  opts.schedules = 6;
  opts.expectSuccess = false;
  // Sensor-faulted runs never end by quiescence; keep the budget small so
  // this stays fast under TSan.
  opts.maxEventsPerRun = 4000;
  opts.crashCount = 1;
  opts.crashHorizon = 500;
  opts.noiseSigma = 0.01;
  const FuzzResult serial = [&] {
    FuzzOptions o = opts;
    o.jobs = 1;
    return fuzzSchedules(algo, start, pattern, o);
  }();
  for (int jobs : {4, campaignJobs()}) {
    FuzzOptions o = opts;
    o.jobs = jobs;
    expectFuzzEqual(serial, fuzzSchedules(algo, start, pattern, o));
  }
}

}  // namespace
}  // namespace apf::sim
