#include <gtest/gtest.h>

#include <cmath>

#include "config/canonical.h"
#include "config/generator.h"
#include "geom/angle.h"
#include "geom/intersect.h"
#include "io/patterns.h"

namespace apf {
namespace {

using geom::Circle;
using geom::Vec2;

TEST(IntersectTest, CircleCircleTwoPoints) {
  const auto pts = geom::intersectCircles({{0, 0}, 1.0}, {{1, 0}, 1.0});
  ASSERT_EQ(pts.size(), 2u);
  for (const Vec2& p : pts) {
    EXPECT_NEAR(p.norm(), 1.0, 1e-12);
    EXPECT_NEAR(geom::dist(p, {1, 0}), 1.0, 1e-12);
  }
  EXPECT_NEAR(pts[0].x, 0.5, 1e-12);
}

TEST(IntersectTest, CircleCircleTangentAndDisjoint) {
  const auto tangent = geom::intersectCircles({{0, 0}, 1.0}, {{2, 0}, 1.0});
  ASSERT_EQ(tangent.size(), 1u);
  EXPECT_NEAR(tangent[0].x, 1.0, 1e-6);
  EXPECT_TRUE(geom::intersectCircles({{0, 0}, 1.0}, {{5, 0}, 1.0}).empty());
  EXPECT_TRUE(geom::intersectCircles({{0, 0}, 3.0}, {{0.5, 0}, 1.0}).empty());
  EXPECT_TRUE(geom::intersectCircles({{0, 0}, 1.0}, {{0, 0}, 1.0}).empty());
}

TEST(IntersectTest, LineCircle) {
  const Circle c{{0, 0}, 2.0};
  const auto two = geom::intersectLineCircle({-5, 0}, {1, 0}, c);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_NEAR(two[0].x, -2.0, 1e-12);
  EXPECT_NEAR(two[1].x, 2.0, 1e-12);
  const auto tangent = geom::intersectLineCircle({-5, 2}, {1, 0}, c);
  ASSERT_EQ(tangent.size(), 1u);
  EXPECT_NEAR(tangent[0].y, 2.0, 1e-9);
  EXPECT_TRUE(geom::intersectLineCircle({-5, 3}, {1, 0}, c).empty());
  EXPECT_TRUE(geom::intersectLineCircle({0, 0}, {0, 0}, c).empty());
}

TEST(IntersectTest, RayFirstHit) {
  const Circle c{{0, 0}, 2.0};
  const auto hit = geom::rayCircleFirstHit({-5, 0}, {1, 0}, c);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->x, -2.0, 1e-12);
  // Ray pointing away misses.
  EXPECT_FALSE(geom::rayCircleFirstHit({-5, 0}, {-1, 0}, c).has_value());
  // Ray starting inside exits through the forward boundary point.
  const auto exit = geom::rayCircleFirstHit({0.5, 0}, {1, 0}, c);
  ASSERT_TRUE(exit.has_value());
  EXPECT_NEAR(exit->x, 2.0, 1e-12);
}

TEST(CanonicalTest, InvariantUnderSimilarity) {
  config::Rng rng(3);
  const config::Configuration p = config::randomConfiguration(9, rng);
  const auto base = config::canonicalSignature(p);
  for (int k = 0; k < 8; ++k) {
    const geom::Similarity t(0.7 * k, std::pow(1.5, k % 3), k % 2 == 1,
                             {1.0 * k, -2.0 * k});
    EXPECT_EQ(config::canonicalSignature(p.transformed(t)), base) << k;
  }
}

TEST(CanonicalTest, DistinguishesDifferentShapes) {
  config::Rng rng(4);
  const auto a = config::canonicalSignature(config::randomConfiguration(9, rng));
  const auto b = config::canonicalSignature(config::randomConfiguration(9, rng));
  EXPECT_NE(a, b);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(CanonicalTest, SymmetricShapesStillCanonical) {
  // A square has 8 equivalent anchors; the canonical form must still be
  // unique and invariant.
  const auto sq = config::canonicalSignature(io::polygonPattern(4));
  const auto sqRot = config::canonicalSignature(
      io::polygonPattern(4).transformed(geom::Similarity::rotation(0.77)));
  EXPECT_EQ(sq, sqRot);
  EXPECT_NE(sq, config::canonicalSignature(io::polygonPattern(5)));
}

TEST(CanonicalTest, DegenerateAllCoincident) {
  const config::Configuration blob({{1, 1}, {1, 1}, {1, 1}});
  const auto sig = config::canonicalSignature(blob);
  ASSERT_EQ(sig.key.size(), 1u);
  EXPECT_EQ(sig.key[0], 3);
}

}  // namespace
}  // namespace apf
