#include <gtest/gtest.h>

#include "config/classify.h"
#include "config/generator.h"
#include "geom/angle.h"
#include "io/patterns.h"

namespace apf::config {
namespace {

TEST(ClassifyTest, RegularPolygonReport) {
  const auto rep = classify(regularPolygon(6, 2.0, {1, 1}));
  EXPECT_EQ(rep.n, 6u);
  EXPECT_FALSE(rep.hasMultiplicity);
  EXPECT_EQ(rep.symmetricity, 6);
  EXPECT_EQ(rep.axes.size(), 6u);
  ASSERT_TRUE(rep.regular.has_value());
  EXPECT_TRUE(rep.regular->wholeConfig);
  EXPECT_FALSE(rep.shifted.has_value());
  EXPECT_EQ(rep.maxView.size(), 6u);  // all equivalent
  EXPECT_NEAR(rep.sec.center.x, 1.0, 1e-9);
}

TEST(ClassifyTest, GenericReport) {
  Rng rng(3);
  const auto rep = classify(randomConfiguration(9, rng));
  EXPECT_EQ(rep.symmetricity, 1);
  EXPECT_TRUE(rep.axes.empty());
  EXPECT_FALSE(rep.regular.has_value());
  EXPECT_FALSE(rep.shifted.has_value());
  EXPECT_EQ(rep.maxView.size(), 1u);
}

TEST(ClassifyTest, ShiftedReport) {
  std::vector<double> radii(8, 2.0);
  radii[0] = 1.0;
  Configuration p = equiangularSet(radii, {}, 0.3);
  p[0] = p[0].rotated(0.125 * geom::kTwoPi / 8);
  const auto rep = classify(p);
  ASSERT_TRUE(rep.shifted.has_value());
  EXPECT_EQ(rep.shifted->shiftedRobot, 0u);
  EXPECT_NEAR(rep.shifted->epsilon, 0.125, 1e-6);
}

TEST(ClassifyTest, MultiplicityFlag) {
  const auto rep = classify(io::multiplicityPattern(9));
  EXPECT_TRUE(rep.hasMultiplicity);
}

TEST(ClassifyTest, DescribeMentionsKeyFacts) {
  const auto rep = classify(regularPolygon(5, 1.0));
  const std::string d = rep.describe();
  EXPECT_NE(d.find("n = 5"), std::string::npos);
  EXPECT_NE(d.find("rho(P) = 5"), std::string::npos);
  EXPECT_NE(d.find("reg(P): 5 robots"), std::string::npos);
  EXPECT_NE(d.find("shifted set: none"), std::string::npos);
}

TEST(ClassifyTest, SkipShiftedFlag) {
  std::vector<double> radii(8, 2.0);
  radii[0] = 1.0;
  Configuration p = equiangularSet(radii, {}, 0.3);
  p[0] = p[0].rotated(0.125 * geom::kTwoPi / 8);
  const auto rep = classify(p, /*analyzeShifted=*/false);
  EXPECT_FALSE(rep.shifted.has_value());
}

}  // namespace
}  // namespace apf::config
