#include <gtest/gtest.h>

#include "baseline/det_election.h"
#include "config/generator.h"
#include "core/combination.h"
#include "core/form_pattern.h"
#include "core/rsb.h"
#include "io/patterns.h"
#include "sim/engine.h"

namespace apf::core {
namespace {

using config::Configuration;

TEST(CombinationTest, FormedPatternIsEmptyConfiguration) {
  // "P is empty for psi" on the goal configuration: nobody moves, nobody
  // randomizes — the terminal configuration of the paper's definition.
  FormPatternAlgorithm algo;
  const Configuration f = io::starPattern(8);
  const auto rep = probeActivity(
      algo, f.transformed(geom::Similarity(0.3, 2.0, false, {1, 1})), f);
  EXPECT_FALSE(rep.active());
}

TEST(CombinationTest, RandomStartIsActive) {
  FormPatternAlgorithm algo;
  config::Rng rng(3);
  const auto rep = probeActivity(algo, config::randomConfiguration(8, rng),
                                 io::starPattern(8));
  EXPECT_TRUE(rep.active());
  EXPECT_TRUE(rep.ordersMove);
}

TEST(CombinationTest, ElectionConfigurationIsActiveViaRandomnessAlone) {
  // Two concentric squares: the election flips coins even when a draw
  // orders no movement — such configurations must count as active, or the
  // engine would declare premature termination.
  RsbOnlyAlgorithm rsb;
  Configuration p = config::regularPolygon(4, 2.0, {}, 0.0);
  const Configuration inner = config::regularPolygon(4, 1.0, {}, 0.4);
  for (const auto& v : inner.points()) p.push_back(v);
  const auto rep = probeActivity(rsb, p, io::starPattern(8));
  EXPECT_TRUE(rep.active());
  EXPECT_TRUE(rep.consumesRandomness);
}

TEST(CombinationTest, RsbEmptyOnSelectedConfigurations) {
  // psi_RSB's phase condition: a selected robot exists => psi_RSB is empty
  // (its postcondition, the precondition of psi_DPF: disjoint active sets).
  RsbOnlyAlgorithm rsb;
  Configuration p = config::regularPolygon(7, 1.0, {}, 0.3);
  p.push_back({0.03, 0.01});  // selected robot
  const auto rep = probeActivity(rsb, p, io::starPattern(8));
  EXPECT_FALSE(rep.active());
}

TEST(CombinationTest, DpfActiveExactlyWhereRsbIsEmpty) {
  // On a selected configuration the full algorithm is active through its
  // DPF phase while psi_RSB alone is empty: the hand-off point.
  FormPatternAlgorithm form;
  RsbOnlyAlgorithm rsb;
  Configuration p = config::regularPolygon(7, 1.0, {}, 0.3);
  p.push_back({0.03, 0.01});
  const Configuration f = io::starPattern(8);
  EXPECT_FALSE(probeActivity(rsb, p, f).active());
  EXPECT_TRUE(probeActivity(form, p, f).active());
}

TEST(CombinationTest, TerminationAwarenessAlongExecution) {
  // The paper's termination-awareness property, checked empirically along
  // a real execution: the FIRST configuration that probes empty must also
  // be the last (nothing may reactivate later). The engine's quiescence
  // tracking depends on exactly this.
  FormPatternAlgorithm algo;
  config::Rng rng(9);
  const Configuration start = config::randomConfiguration(8, rng, 4.0, 0.1);
  const Configuration f = io::gridPattern(8);
  sim::EngineOptions opts;
  opts.seed = 4;
  opts.maxEvents = 300000;
  opts.sched.kind = sched::SchedulerKind::SSync;
  sim::Engine eng(start, f, algo, opts);
  const auto res = eng.run();
  ASSERT_TRUE(res.terminated);
  // Probe the final configuration from scratch: must be empty.
  EXPECT_FALSE(probeActivity(algo, eng.positions(), f).active());
}

TEST(CombinationTest, DeterministicElectionEmptySetIncludesSymmetric) {
  // The deterministic baseline is EMPTY on symmetric configurations — the
  // impossibility witness: empty but NOT the goal.
  baseline::DeterministicElection det;
  config::Rng rng(5);
  const Configuration p = config::symmetricConfiguration(4, 2, rng);
  const auto rep = probeActivity(det, p, io::starPattern(p.size()));
  EXPECT_FALSE(rep.active());
}

}  // namespace
}  // namespace apf::core
