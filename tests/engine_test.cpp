#include <gtest/gtest.h>

#include <cmath>

#include "config/generator.h"
#include "core/phases.h"
#include "sim/engine.h"

namespace apf::sim {
namespace {

using config::Configuration;
using geom::Vec2;

/// Moves once toward the local origin... actually: walks 1 unit along the
/// local +x axis on its first opportunity and then stays (recognizable by
/// whether its world displacement matches its frame).
class UnitXOnce : public Algorithm {
 public:
  Action compute(const Snapshot& snap, sched::RandomSource&) const override {
    // Oblivious trick: move only while within 0.5 of the closest other
    // robot... simpler: move if some other robot is within 10 units and we
    // have not moved (cannot know) — instead: always propose the same
    // destination in CONFIG-relative terms so the move is idempotent:
    // target = midpoint between self (origin) and the centroid.
    Vec2 centroid{};
    for (const Vec2& p : snap.robots.points()) centroid += p;
    centroid = centroid / static_cast<double>(snap.robots.size());
    geom::Path path(Vec2{});
    if (centroid.norm() > 1e-9) path.lineTo(centroid * 0.5);
    return Action{path, core::kBaseline};
  }
  std::string name() const override { return "unit-x-once"; }
};

/// Never moves; never consumes randomness.
class Idle : public Algorithm {
 public:
  Action compute(const Snapshot&, sched::RandomSource&) const override {
    return Action::stay(core::kTerminal);
  }
  std::string name() const override { return "idle"; }
};

/// Never moves but consumes one random bit per cycle (election-like): the
/// engine must NOT consider such configurations terminal.
class CoinFlipper : public Algorithm {
 public:
  Action compute(const Snapshot&, sched::RandomSource& rng) const override {
    (void)rng.bit();
    return Action::stay(core::kRsbElection);
  }
  std::string name() const override { return "coin-flipper"; }
};

EngineOptions basicOpts(sched::SchedulerKind kind, std::uint64_t seed = 3) {
  EngineOptions o;
  o.sched.kind = kind;
  o.seed = seed;
  o.maxEvents = 20000;
  return o;
}

Configuration square() {
  return Configuration({{1, 1}, {-1, 1}, {-1, -1}, {1, -1}});
}

TEST(EngineTest, IdleAlgorithmTerminatesImmediately) {
  for (auto kind : {sched::SchedulerKind::FSync, sched::SchedulerKind::SSync,
                    sched::SchedulerKind::Async}) {
    Idle algo;
    Engine eng(square(), square(), algo, basicOpts(kind));
    const RunResult res = eng.run();
    EXPECT_TRUE(res.terminated);
    EXPECT_EQ(res.metrics.randomBits, 0u);
    EXPECT_EQ(res.metrics.distance, 0.0);
    // Every robot completed at least one cycle before quiescence.
    EXPECT_GE(res.metrics.cycles, 4u);
  }
}

TEST(EngineTest, CoinFlipperNeverTerminates) {
  CoinFlipper algo;
  Engine eng(square(), square(), algo, basicOpts(sched::SchedulerKind::SSync));
  const RunResult res = eng.run();
  EXPECT_FALSE(res.terminated);  // ran to the event cap
  EXPECT_GT(res.metrics.randomBits, 0u);
  EXPECT_EQ(res.metrics.randomBits, res.metrics.cycles);  // 1 bit per cycle
}

TEST(EngineTest, SuccessDetectsSimilarity) {
  Idle algo;
  // Start IS the pattern up to rotation+scale: success immediately.
  config::Rng rng(5);
  const Configuration pat = config::randomConfiguration(6, rng);
  const Configuration start =
      pat.transformed(geom::Similarity(1.0, 3.0, true, {5, 5}));
  Engine eng(start, pat, algo, basicOpts(sched::SchedulerKind::FSync));
  const RunResult res = eng.run();
  EXPECT_TRUE(res.terminated);
  EXPECT_TRUE(res.success);
}

TEST(EngineTest, FramesHideGlobalOrientationButActionsAreConsistent) {
  // The UnitXOnce algorithm moves robots halfway toward the observed
  // centroid. Whatever the private frames are, the WORLD-frame effect must
  // be identical (frame covariance of the engine's transform plumbing):
  // after everyone's first FSYNC round, each robot sits halfway between its
  // start and the start centroid.
  UnitXOnce algo;
  const Configuration start = square();
  EngineOptions opts = basicOpts(sched::SchedulerKind::FSync, 77);
  Engine eng(start, square(), algo, opts);
  eng.step();  // one FSYNC round
  Vec2 centroid{};
  for (const Vec2& p : start.points()) centroid += p;
  centroid = centroid / 4.0;
  for (std::size_t i = 0; i < 4; ++i) {
    const Vec2 expect = geom::lerp(start[i], centroid, 0.5);
    EXPECT_NEAR(eng.positions()[i].x, expect.x, 1e-9) << i;
    EXPECT_NEAR(eng.positions()[i].y, expect.y, 1e-9) << i;
  }
}

TEST(EngineTest, DeltaGuaranteesMinimumProgress) {
  // With a tiny delta and an aggressive early-stop adversary, each Move
  // event advances by at least delta — except the final arrival step of a
  // path, which may legally be shorter ("at least delta OR reaches the
  // destination"). So sub-delta moves are bounded by the number of cycles.
  UnitXOnce algo;
  EngineOptions opts = basicOpts(sched::SchedulerKind::Async, 9);
  opts.sched.delta = 0.01;
  opts.sched.earlyStopProb = 1.0;
  Engine eng(square(), square(), algo, opts);
  std::size_t shortMoves = 0, totalMoves = 0;
  Configuration prev = eng.positions();
  eng.setObserver([&](const Engine& e, std::size_t robot) {
    const double d = geom::dist(e.positions()[robot], prev[robot]);
    ++totalMoves;
    if (d < 0.01 - 1e-12) ++shortMoves;
    prev = e.positions();
  });
  for (int i = 0; i < 500; ++i) {
    if (!eng.step()) break;
  }
  ASSERT_GT(totalMoves, 0u);
  EXPECT_LE(shortMoves, eng.metrics().cycles);
}

TEST(EngineTest, AsyncSnapshotsGoStale) {
  // In ASYNC mode some robot must Compute on a snapshot older than the
  // current configuration at least once during a busy run (statistical but
  // deterministic for a fixed seed).
  UnitXOnce algo;
  EngineOptions opts = basicOpts(sched::SchedulerKind::Async, 12);
  config::Rng rng(31);
  Engine eng(config::randomConfiguration(8, rng, 3.0, 0.2),
             config::randomConfiguration(8, rng, 1.0, 0.1), algo, opts);
  // Track: at least two robots are mid-cycle at once => interleaving.
  bool sawInterleaving = false;
  std::uint64_t moves = 0;
  eng.setObserver([&](const Engine&, std::size_t) { ++moves; });
  for (int i = 0; i < 2000 && eng.step(); ++i) {
    if (moves > 0 && i > 2) sawInterleaving = true;
  }
  EXPECT_TRUE(sawInterleaving);
}

TEST(EngineTest, MetricsDistanceMatchesDisplacementLowerBound) {
  UnitXOnce algo;
  Engine eng(square(), square(), algo,
             basicOpts(sched::SchedulerKind::FSync, 4));
  const Configuration start = eng.positions();
  eng.run();
  double displacement = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    displacement += geom::dist(start[i], eng.positions()[i]);
  }
  EXPECT_GE(eng.metrics().distance + 1e-9, displacement);
}

TEST(EngineTest, CommonChiralityDisablesReflections) {
  // With commonChirality, all frames are direct: an algorithm that walks
  // "90 degrees counterclockwise of the centroid direction" produces
  // rotationally consistent moves. We verify via frame plumbing: run twice
  // with the same seed; results must be identical (determinism).
  UnitXOnce algo;
  EngineOptions opts = basicOpts(sched::SchedulerKind::Async, 21);
  opts.commonChirality = true;
  config::Rng rng(8);
  const Configuration start = config::randomConfiguration(6, rng, 2.0, 0.2);
  Engine a(start, square(), algo, opts);
  Engine b(start, square(), algo, opts);
  a.run();
  b.run();
  for (std::size_t i = 0; i < start.size(); ++i) {
    EXPECT_EQ(a.positions()[i], b.positions()[i]);
  }
}

TEST(EngineTest, FairnessBoundsStarvation) {
  // Every robot must complete cycles under ASYNC: after a long run, each
  // robot has been activated (cycles >= n at minimum given run length).
  Idle algo;
  EngineOptions opts = basicOpts(sched::SchedulerKind::Async, 33);
  config::Rng rng(9);
  Engine eng(config::randomConfiguration(12, rng), square(), algo, opts);
  eng.run();
  EXPECT_GE(eng.metrics().cycles, 12u);
}

TEST(EngineTest, EventCapReportsNonTermination) {
  CoinFlipper algo;
  EngineOptions opts = basicOpts(sched::SchedulerKind::SSync);
  opts.maxEvents = 50;
  Engine eng(square(), square(), algo, opts);
  const RunResult res = eng.run();
  EXPECT_FALSE(res.terminated);
  EXPECT_LE(res.metrics.events, 60u);
}

}  // namespace
}  // namespace apf::sim
