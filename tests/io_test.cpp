#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "config/similarity.h"
#include "config/symmetry.h"
#include "io/csv.h"
#include "io/patterns.h"
#include "io/svg.h"

namespace apf::io {
namespace {

using config::Configuration;

TEST(PatternsTest, AllNamedPatternsHaveRequestedSize) {
  for (const auto& name : allPatternNames()) {
    for (std::size_t n : {7, 8, 12, 16, 33}) {
      const Configuration p = patternByName(name, n);
      EXPECT_EQ(p.size(), n) << name << " n=" << n;
      EXPECT_FALSE(p.hasMultiplicity()) << name << " n=" << n;
      EXPECT_GT(p.sec().radius, 0.0) << name;
    }
  }
}

TEST(PatternsTest, UnknownNameThrows) {
  EXPECT_THROW(patternByName("nope", 8), std::invalid_argument);
}

TEST(PatternsTest, PolygonHasFullSymmetry) {
  const Configuration p = polygonPattern(9);
  EXPECT_EQ(config::symmetricity(p, p.sec().center), 9);
}

TEST(PatternsTest, StarHasTwoRings) {
  const Configuration p = starPattern(10);
  auto sec = p.sec();
  int onBoundary = 0;
  for (const auto& q : p.points()) {
    if (sec.onBoundary(q)) ++onBoundary;
  }
  EXPECT_EQ(onBoundary, 5);
}

TEST(PatternsTest, GridSymmetry) {
  // A full w x h sheared grid is centro-symmetric (the shear preserves the
  // 180-degree rotation): rho = 2. A ragged grid is asymmetric.
  const Configuration full = gridPattern(12);  // 4 x 3 rectangle
  EXPECT_EQ(config::symmetricity(full, full.sec().center), 2);
  const Configuration ragged = gridPattern(11);
  EXPECT_EQ(config::symmetricity(ragged, ragged.sec().center), 1);
}

TEST(PatternsTest, MultiplicityPatterns) {
  const Configuration a = multiplicityPattern(9);
  EXPECT_EQ(a.size(), 9u);
  EXPECT_TRUE(a.hasMultiplicity());
  const Configuration b = centerMultiplicityPattern(9);
  EXPECT_TRUE(b.hasMultiplicity());
  // The doubled point of b is at the SEC center.
  const auto groups = b.grouped();
  bool centerDouble = false;
  for (const auto& g : groups) {
    if (g.count == 2 && geom::nearlyEqual(g.pos, b.sec().center,
                                          geom::Tol{1e-9, 1e-9})) {
      centerDouble = true;
    }
  }
  EXPECT_TRUE(centerDouble);
}

TEST(PatternsTest, RandomPatternSeedDeterminism) {
  const Configuration a = randomPatternByName(10, 5);
  const Configuration b = randomPatternByName(10, 5);
  const Configuration c = randomPatternByName(10, 6);
  EXPECT_TRUE(config::coincident(a, b));
  EXPECT_FALSE(config::coincident(a, c));
}

TEST(CsvTest, WritesHeaderAndRows) {
  CsvWriter csv("", {"a", "b", "c"});
  csv.row({"1", "2", "3"});
  csv.row({fmt(1.23456, 2), "x", ""});
  EXPECT_EQ(csv.str(), "a,b,c\n1,2,3\n1.23,x,\n");
}

TEST(CsvTest, WritesFile) {
  const std::string path = "/tmp/apf_csv_test.csv";
  {
    CsvWriter csv(path, {"h"});
    csv.row({"v"});
  }
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(all, "h\nv\n");
  std::remove(path.c_str());
}

TEST(SvgTest, ProducesWellFormedFile) {
  const std::string path = "/tmp/apf_svg_test.svg";
  SvgScene scene;
  scene.addLayer({polygonPattern(6), "#1f77b4", 0.03, false});
  scene.addLayer({starPattern(6), "#d62728", 0.03, true});
  scene.addCircle({}, 1.0, "#ddd");
  scene.addRays({}, {0.0, 1.0, 2.0}, 1.2, "#ccc");
  scene.addTrail({{0, 0}, {0.5, 0.5}, {1, 0}}, "#999");
  scene.write(path);
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("<svg"), std::string::npos);
  EXPECT_NE(all.find("</svg>"), std::string::npos);
  EXPECT_NE(all.find("<circle"), std::string::npos);
  EXPECT_NE(all.find("<polyline"), std::string::npos);
  EXPECT_NE(all.find("<line"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace apf::io
