/// \file cli_env_test.cpp
/// Unit tests for the consolidated APF_* environment surface (src/cli/
/// env.h): the jobs and boolean value parsers every tool and bench now
/// goes through. The env() snapshot itself is covered indirectly — it is
/// once-per-process, so its composition is exercised by the tool-level
/// drills (tools/kill_resume_check.sh) rather than a unit fixture that
/// would have to fork per case.

#include <gtest/gtest.h>

// The umbrella header (src/apf.h) is compile-checked here: this is the
// cheapest test target, and the umbrella must always pull in the whole
// public surface without conflicts.
#include "apf.h"
#include "cli/env.h"

namespace apf::cli {
namespace {

TEST(CliEnvTest, ParseJobsValueAcceptsPositiveIntegers) {
  EXPECT_EQ(parseJobsValue("1"), 1);
  EXPECT_EQ(parseJobsValue("4"), 4);
  EXPECT_EQ(parseJobsValue("512"), 512);
}

TEST(CliEnvTest, ParseJobsValueClampsTo512) {
  EXPECT_EQ(parseJobsValue("513"), 512);
  EXPECT_EQ(parseJobsValue("99999"), 512);
}

TEST(CliEnvTest, ParseJobsValueRejectsUnsetAndEmpty) {
  EXPECT_EQ(parseJobsValue(nullptr), 0);
  EXPECT_EQ(parseJobsValue(""), 0);
}

TEST(CliEnvTest, ParseJobsValueRejectsGarbage) {
  // These are the historical silent-failure spellings: a typo'd value must
  // resolve to 0 (caller falls back to hardware concurrency), never to a
  // partially-parsed number.
  EXPECT_EQ(parseJobsValue("l6"), 0);
  EXPECT_EQ(parseJobsValue("abc"), 0);
  EXPECT_EQ(parseJobsValue("4x"), 0);
  EXPECT_EQ(parseJobsValue("4 "), 0);
  EXPECT_EQ(parseJobsValue("0"), 0);
  EXPECT_EQ(parseJobsValue("-2"), 0);
}

TEST(CliEnvTest, ParseBoolValueRecognizedFalseSpellings) {
  EXPECT_FALSE(parseBoolValue("APF_TEST", nullptr));
  EXPECT_FALSE(parseBoolValue("APF_TEST", ""));
  EXPECT_FALSE(parseBoolValue("APF_TEST", "0"));
  EXPECT_FALSE(parseBoolValue("APF_TEST", "false"));
  EXPECT_FALSE(parseBoolValue("APF_TEST", "off"));
  EXPECT_FALSE(parseBoolValue("APF_TEST", "no"));
}

TEST(CliEnvTest, ParseBoolValueRecognizedTrueSpellings) {
  EXPECT_TRUE(parseBoolValue("APF_TEST", "1"));
  EXPECT_TRUE(parseBoolValue("APF_TEST", "true"));
  EXPECT_TRUE(parseBoolValue("APF_TEST", "on"));
  EXPECT_TRUE(parseBoolValue("APF_TEST", "yes"));
}

TEST(CliEnvTest, ParseBoolValueUnrecognizedCountsAsEnabled) {
  // The historical rule was v[0] != '0'; unknown spellings stay enabled
  // (with a loud stderr warning) so APF_OBS_EVENTS=ture doesn't silently
  // turn telemetry OFF — losing data is worse than extra data.
  EXPECT_TRUE(parseBoolValue("APF_TEST", "ture"));
  EXPECT_TRUE(parseBoolValue("APF_TEST", "2"));
  EXPECT_TRUE(parseBoolValue("APF_TEST", "enabled"));
}

TEST(CliEnvTest, EnvSnapshotIsStable) {
  // Two calls hand back the same object: the snapshot is parsed once per
  // process, which is what makes its warnings fire exactly once.
  const Env& a = env();
  const Env& b = env();
  EXPECT_EQ(&a, &b);
  EXPECT_FALSE(a.resultsDir.empty());
}

}  // namespace
}  // namespace apf::cli
