/// Tests of the trace-span profiler (obs/span.h): the null-sink-is-free
/// contract, multi-thread recording, buffer caps, structural validity of
/// the exported Chrome trace-event JSON, and — the load-bearing property —
/// that recording spans leaves engine and campaign outputs bit-identical.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "config/generator.h"
#include "core/form_pattern.h"
#include "io/patterns.h"
#include "obs/json.h"
#include "obs/span.h"
#include "sim/engine.h"

namespace apf {
namespace {

/// Every test leaves the process-global collector slot empty, even on
/// assertion failure, so tests stay independent.
struct ScopedInstall {
  explicit ScopedInstall(obs::SpanCollector& c) { c.install(); }
  ~ScopedInstall() { obs::SpanCollector::uninstall(); }
};

TEST(SpanTest, NullSinkSpanIsInert) {
  ASSERT_EQ(obs::SpanCollector::current(), nullptr);
  obs::ScopedSpan span("noop", "test", "arg", 7);
  span.arg2("late", 9);
  EXPECT_FALSE(span.active());
  // Destruction must not register anything anywhere (nothing to observe
  // directly — the assertion is that no collector exists to receive it).
}

TEST(SpanTest, RecordsNamesCategoriesAndArgs) {
  obs::SpanCollector collector;
  {
    ScopedInstall installed(collector);
    {
      obs::ScopedSpan outer("outer", "test", "x", 1);
      obs::ScopedSpan inner("inner", "test");
      inner.arg1("late", 5);
      inner.arg2("later", -3);
      EXPECT_TRUE(outer.active());
    }
  }
  const std::vector<obs::Span> spans = collector.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // snapshot() sorts by start time: outer began first.
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_STREQ(spans[0].arg1Name, "x");
  EXPECT_EQ(spans[0].arg1, 1);
  EXPECT_EQ(spans[0].arg2Name, nullptr);
  EXPECT_STREQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].arg1, 5);
  EXPECT_EQ(spans[1].arg2, -3);
  // Inner is contained in outer: starts no earlier, ends no later.
  EXPECT_GE(spans[1].startNanos, spans[0].startNanos);
  EXPECT_LE(spans[1].startNanos + spans[1].durNanos,
            spans[0].startNanos + spans[0].durNanos);
  EXPECT_EQ(collector.threadCount(), 1u);
  EXPECT_EQ(collector.droppedCount(), 0u);
}

TEST(SpanTest, UninstalledSpansGoNowhere) {
  obs::SpanCollector collector;
  {
    ScopedInstall installed(collector);
    obs::ScopedSpan span("recorded", "test");
  }
  {
    obs::ScopedSpan span("not-recorded", "test");
    EXPECT_FALSE(span.active());
  }
  const auto spans = collector.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "recorded");
}

TEST(SpanTest, PerThreadBuffersCollectEverySpan) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 100;
  obs::SpanCollector collector;
  {
    ScopedInstall installed(collector);
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([] {
        for (int i = 0; i < kSpansPerThread; ++i) {
          obs::ScopedSpan span("work", "test", "i", i);
        }
      });
    }
    for (auto& th : pool) th.join();
  }
  EXPECT_EQ(collector.snapshot().size(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(collector.threadCount(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(collector.droppedCount(), 0u);
}

TEST(SpanTest, BufferCapCountsDrops) {
  obs::SpanCollector collector(/*maxSpansPerThread=*/3);
  {
    ScopedInstall installed(collector);
    for (int i = 0; i < 10; ++i) {
      obs::ScopedSpan span("capped", "test");
    }
  }
  EXPECT_EQ(collector.snapshot().size(), 3u);
  EXPECT_EQ(collector.droppedCount(), 7u);
}

TEST(SpanTest, ReinstallAfterDestructionIsSafe) {
  // A thread that recorded into collector A must not hand its stale buffer
  // to collector B after A is gone (the generation-counter contract).
  auto first = std::make_unique<obs::SpanCollector>();
  first->install();
  {
    obs::ScopedSpan span("into-first", "test");
  }
  first.reset();  // destructor uninstalls
  EXPECT_EQ(obs::SpanCollector::current(), nullptr);
  obs::SpanCollector second;
  {
    ScopedInstall installed(second);
    obs::ScopedSpan span("into-second", "test");
  }
  const auto spans = second.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "into-second");
}

// ----------------------------------------------- Chrome trace export ---

TEST(SpanTest, ChromeTraceIsStructurallyValidTraceEventJson) {
  obs::SpanCollector collector;
  {
    ScopedInstall installed(collector);
    obs::ScopedSpan a("alpha", "cat-a", "k", 42);
    obs::ScopedSpan b("beta", "cat-b");
  }
  std::ostringstream os;
  collector.writeChromeTrace(os);

  const auto doc = obs::parseJson(os.str());
  ASSERT_TRUE(doc.has_value()) << os.str();
  ASSERT_EQ(doc->kind, obs::JsonNode::Kind::Object);
  const obs::JsonNode* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, obs::JsonNode::Kind::Array);

  std::size_t metaEvents = 0, completeEvents = 0;
  std::set<std::string> names;
  for (const obs::JsonNode& e : events->items) {
    ASSERT_EQ(e.kind, obs::JsonNode::Kind::Object);
    const obs::JsonNode* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    ASSERT_NE(e.find("name"), nullptr);
    if (ph->asString() == "M") {
      metaEvents += 1;
      EXPECT_EQ(e.find("name")->asString(), "thread_name");
    } else {
      ASSERT_EQ(ph->asString(), "X");
      completeEvents += 1;
      names.insert(e.find("name")->asString());
      // Complete events need a timestamp and a duration, in microseconds.
      const obs::JsonNode* ts = e.find("ts");
      const obs::JsonNode* dur = e.find("dur");
      ASSERT_NE(ts, nullptr);
      ASSERT_NE(dur, nullptr);
      EXPECT_GE(ts->asNumber(-1.0), 0.0);
      EXPECT_GE(dur->asNumber(-1.0), 0.0);
    }
  }
  EXPECT_EQ(metaEvents, 1u);  // one thread => one thread_name record
  EXPECT_EQ(completeEvents, 2u);
  EXPECT_TRUE(names.count("alpha"));
  EXPECT_TRUE(names.count("beta"));
  // Args survive the round trip.
  bool sawArg = false;
  for (const obs::JsonNode& e : events->items) {
    const obs::JsonNode* args = e.find("args");
    if (args == nullptr || e.find("ph")->asString() != "X") continue;
    const obs::JsonNode* k = args->find("k");
    if (k != nullptr) {
      EXPECT_DOUBLE_EQ(k->asNumber(), 42.0);
      sawArg = true;
    }
  }
  EXPECT_TRUE(sawArg);
  // Summary block matches the recorded set.
  const obs::JsonNode* other = doc->find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_DOUBLE_EQ(other->find("span_count")->asNumber(), 2.0);
  EXPECT_DOUBLE_EQ(other->find("dropped_spans")->asNumber(), 0.0);
}

TEST(SpanTest, ChromeTraceCreatesParentDirsAndThrowsWhenUnwritable) {
  obs::SpanCollector collector;
  // Missing parent directories are created on demand.
  const std::string nested = "/tmp/apf_span_nested/sub/x.trace.json";
  collector.writeChromeTrace(nested);
  EXPECT_TRUE(std::filesystem::exists(nested));
  std::filesystem::remove_all("/tmp/apf_span_nested");
  // A parent component that is a regular file still fails loudly.
  { std::ofstream block("/tmp/apf_span_block"); }
  EXPECT_THROW(collector.writeChromeTrace("/tmp/apf_span_block/x.json"),
               std::runtime_error);
  std::remove("/tmp/apf_span_block");
}

TEST(SpanTest, EmptyCollectorWritesValidTrace) {
  obs::SpanCollector collector;
  std::ostringstream os;
  collector.writeChromeTrace(os);
  const auto doc = obs::parseJson(os.str());
  ASSERT_TRUE(doc.has_value());
  const obs::JsonNode* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->items.empty());
}

// ------------------------------------------- engine bit-identity -------

TEST(SpanTest, EngineRunBitIdenticalWithCollectorInstalled) {
  config::Rng rng(11);
  const config::Configuration start = config::symmetricConfiguration(4, 2,
                                                                     rng);
  const config::Configuration pattern =
      io::randomPatternByName(start.size(), 55);
  core::FormPatternAlgorithm algo;
  sim::EngineOptions opts;
  opts.seed = 104;
  opts.maxEvents = 400000;
  opts.sched.kind = sched::SchedulerKind::Async;

  sim::Engine bare(start, pattern, algo, opts);
  const sim::RunResult bareRes = bare.run();

  obs::SpanCollector collector;
  sim::Engine traced(start, pattern, algo, opts);
  sim::RunResult tracedRes;
  {
    ScopedInstall installed(collector);
    tracedRes = traced.run();
  }

  EXPECT_EQ(tracedRes.success, bareRes.success);
  EXPECT_EQ(tracedRes.terminated, bareRes.terminated);
  EXPECT_EQ(tracedRes.metrics.cycles, bareRes.metrics.cycles);
  EXPECT_EQ(tracedRes.metrics.events, bareRes.metrics.events);
  EXPECT_EQ(tracedRes.metrics.randomBits, bareRes.metrics.randomBits);
  EXPECT_EQ(tracedRes.metrics.distance, bareRes.metrics.distance);
  EXPECT_EQ(tracedRes.metrics.phaseActivations,
            bareRes.metrics.phaseActivations);
  ASSERT_EQ(traced.positions().size(), bare.positions().size());
  for (std::size_t i = 0; i < bare.positions().size(); ++i) {
    EXPECT_EQ(traced.positions()[i], bare.positions()[i]) << i;
  }

  // And the trace actually captured the engine stages.
  std::set<std::string> names;
  for (const obs::Span& s : collector.snapshot()) names.insert(s.name);
  EXPECT_TRUE(names.count("engine_run"));
  EXPECT_TRUE(names.count("look"));
  EXPECT_TRUE(names.count("compute"));
  EXPECT_TRUE(names.count("move"));
}

}  // namespace
}  // namespace apf
