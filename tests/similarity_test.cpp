#include <gtest/gtest.h>

#include <cmath>

#include "config/generator.h"
#include "config/similarity.h"
#include "geom/angle.h"

namespace apf::config {
namespace {

using geom::Similarity;
using geom::Vec2;

TEST(SimilarityRelationTest, IdentityAndTransformsMatch) {
  Rng rng(41);
  const Configuration p = randomConfiguration(9, rng);
  EXPECT_TRUE(similar(p, p));
  const Similarity t(0.7, 2.5, false, {3, -8});
  EXPECT_TRUE(similar(p, p.transformed(t)));
  const Similarity m(1.9, 0.4, true, {-1, 2});
  EXPECT_TRUE(similar(p, p.transformed(m)));
}

TEST(SimilarityRelationTest, ReflectionControlledByFlag) {
  // A chiral configuration: reflection produces a non-congruent layout.
  const Configuration p({{1, 0}, {0, 2}, {-1.5, 0}, {0.2, 0.3}, {0.9, 1.1}});
  const Configuration mirrored = p.transformed(Similarity::mirrorX());
  EXPECT_TRUE(similar(p, mirrored));
  EXPECT_FALSE(findSimilarity(p, mirrored, /*allowReflection=*/false)
                   .has_value());
}

TEST(SimilarityRelationTest, DifferentConfigsRejected) {
  Rng rng(42);
  const Configuration p = randomConfiguration(8, rng);
  const Configuration q = randomConfiguration(8, rng);
  EXPECT_FALSE(similar(p, q));
  const Configuration shorter = randomConfiguration(7, rng);
  EXPECT_FALSE(similar(p, shorter));
}

TEST(SimilarityRelationTest, ReturnedTransformMapsAOntoB) {
  Rng rng(43);
  const Configuration p = randomConfiguration(10, rng);
  const Similarity t(2.2, 0.8, true, {5, 5});
  const Configuration q = p.transformed(t);
  const auto found = findSimilarity(p, q);
  ASSERT_TRUE(found.has_value());
  const Configuration mapped = p.transformed(*found);
  EXPECT_TRUE(coincident(mapped, q, Tol{1e-6, 1e-6}));
}

TEST(SimilarityRelationTest, MultiplicityRespected) {
  const Configuration a({{1, 0}, {1, 0}, {-1, 0}});
  const Configuration b({{2, 0}, {-2, 0}, {-2, 0}});
  // a has multiplicity 2 on one end; b on the other: still similar by
  // rotation by pi.
  EXPECT_TRUE(similar(a, b));
  const Configuration c({{2, 0}, {-2, 0}, {0, 0}});
  EXPECT_FALSE(similar(a, c));
}

TEST(SimilarityRelationTest, SymmetricPatternManyMatches) {
  const Configuration square = regularPolygon(4, 1.0);
  const Configuration rotated = regularPolygon(4, 3.0, {7, 7}, 0.3);
  EXPECT_TRUE(similar(square, rotated));
}

TEST(SimilarityRelationTest, DegenerateAllCoincident) {
  const Configuration a({{1, 1}, {1, 1}, {1, 1}});
  const Configuration b({{-2, 0}, {-2, 0}, {-2, 0}});
  EXPECT_TRUE(similar(a, b));
  const Configuration c({{-2, 0}, {-2, 0}, {0, 0}});
  EXPECT_FALSE(similar(a, c));
}

TEST(SimilarityRelationTest, SubpatternCheckUsedByFormPattern) {
  // The main algorithm checks P - {r} ~ F - {f}: removing matching points
  // from similar configurations keeps them similar.
  Rng rng(44);
  const Configuration f = randomConfiguration(9, rng);
  const Similarity t(1.0, 2.0, false, {1, 1});
  const Configuration p = f.transformed(t);
  EXPECT_TRUE(similar(p.without(3), f.without(3)));
  EXPECT_FALSE(similar(p.without(3), f.without(4)));
}

}  // namespace
}  // namespace apf::config
