/// \file bench_phases.cpp
/// Experiment T8 — phase anatomy: where do activations go? Aggregates the
/// per-phase activation histogram across runs, separately for random
/// (asymmetric) and symmetric starts.
///
/// Expected shape: random starts skip the election entirely (the Q^c branch
/// elects deterministically); symmetric starts spend activations in
/// rsb-election / rsb-shifted first; in both cases the bulk of activations
/// are DPF circle placement and rotation, plus a long tail of "terminal"
/// confirmations at the end of ASYNC runs.

#include <map>

#include "bench/common.h"
#include "core/form_pattern.h"
#include "core/phases.h"

using namespace apf;
using namespace apf::bench;

int main() {
  const int kSeeds = 10;
  core::FormPatternAlgorithm algo;

  Table table("T8: activations per phase (n = 10, ASYNC)",
              "bench_phases.csv",
              {"start", "phase", "activations_mean", "share_pct"});

  for (const std::string kind : {"random", "symmetric"}) {
    std::map<int, double> acc;
    double total = 0.0;
    for (int s = 0; s < kSeeds; ++s) {
      const std::size_t n = 10;
      config::Rng rng(910 + s);
      const auto start = kind == "random"
                             ? config::randomConfiguration(n, rng, 5.0, 0.1)
                             : symmetricStart(n, 910 + s);
      const auto pattern = io::randomPatternByName(n, 130 + s);
      RunSpec spec;
      spec.seed = 29 * s + 11;
      const auto res = runOnce(start, pattern, algo, spec);
      for (const auto& [tag, cnt] : res.metrics.phaseActivations) {
        acc[tag] += static_cast<double>(cnt);
        total += static_cast<double>(cnt);
      }
    }
    for (const auto& [tag, cnt] : acc) {
      table.row({kind, core::phaseName(tag), io::fmt(cnt / kSeeds, 1),
                 io::fmt(100.0 * cnt / total, 1)});
    }
  }
  table.print();
  return 0;
}
