#pragma once

/// \file common.h
/// Shared harness for the experiment benchmarks (T2-T9 in DESIGN.md): run
/// matrices of simulations, aggregate the metrics the paper's claims are
/// stated in, and print aligned tables (also dumped as CSV next to the
/// binary's working directory).
///
/// Telemetry: when the APF_OBS_DIR environment variable is set, every
/// simulation run writes a reproducibility manifest
/// (`<algo>_<sched>_n<n>_<k>.manifest.json`) into that directory, and —
/// with APF_OBS_EVENTS=1 — a JSONL event log next to it. `apf_report DIR`
/// then reproduces the CSV numbers from the raw per-run records. Each CSV
/// table also gets a `<csv>.manifest.json` describing the producing build.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "cli/env.h"
#include "config/configuration.h"
#include "config/generator.h"
#include "fault/fault.h"
#include "io/csv.h"
#include "io/patterns.h"
#include "obs/manifest.h"
#include "obs/recorder.h"
#include "obs/span.h"
#include "sim/campaign.h"
#include "sim/engine.h"
#include "sim/supervisor.h"

namespace apf::bench {

struct RunSpec {
  sched::SchedulerKind sched = sched::SchedulerKind::Async;
  std::uint64_t seed = 1;
  std::uint64_t maxEvents = 600000;
  double delta = 0.05;
  double earlyStopProb = 0.5;
  double activationProb = 0.5;
  bool multiplicity = false;
  bool commonChirality = false;
  /// Fault injectors for this run (empty = faithful paper model); always
  /// recorded in the run manifest under `fault.*`.
  fault::FaultPlan fault;
  /// Free-form label recorded in the run manifest (e.g. pattern name).
  std::string label;
  /// Telemetry file index: when >= 0, APF_OBS_DIR artifacts for this run
  /// are numbered with it instead of the process-wide counter, so names
  /// stay deterministic when runs execute on a campaign thread pool.
  long obsIndex = -1;
  /// Supervisor deadline for this run (not owned; sim/supervisor.h).
  /// Benches running under superviseCampaign pass Attempt::watchdog here so
  /// a livelocked cell times out instead of wedging the whole table.
  sim::Watchdog* watchdog = nullptr;
};

/// Directory every bench CSV (and its manifest) is written under:
/// APF_RESULTS_DIR when set, else "results" relative to the working
/// directory (the repo checkout keeps the canonical copies there). Created
/// on first use. Benches must never write to the repo root — stale
/// root-level copies of results/*.csv kept forking the two locations.
/// Environment parsing lives in cli::env() (src/cli/env.h), the one
/// parsed-and-validated-once snapshot all tools and benches share.
inline const std::string& resultsDir() {
  static const std::string dir = [] {
    const std::string& d = cli::env().resultsDir;
    std::filesystem::create_directories(d);
    return d;
  }();
  return dir;
}

/// Joins a bare CSV filename onto resultsDir(); absolute paths and paths
/// that already name a directory are passed through.
inline std::string resultsPath(const std::string& file) {
  if (file.empty()) return file;
  const std::filesystem::path p(file);
  if (p.is_absolute() || p.has_parent_path()) return file;
  return (std::filesystem::path(resultsDir()) / p).string();
}

/// Telemetry directory from APF_OBS_DIR (nullptr = telemetry off).
inline const char* obsDir() {
  const std::string& d = cli::env().obsDir;
  return d.empty() ? nullptr : d.c_str();
}

/// Whether to also write per-run JSONL event logs (APF_OBS_EVENTS=1).
inline bool obsEvents() { return cli::env().obsEvents; }

/// Whether to capture a Chrome trace of the whole bench (APF_OBS_TRACE=1).
inline bool obsTrace() { return cli::env().obsTrace; }

/// RAII trace capture for a bench binary. When APF_OBS_TRACE=1, installs an
/// obs::SpanCollector for the object's lifetime and writes
/// `<name>.trace.json` (into APF_OBS_DIR when set, else resultsDir()) at
/// destruction — load it in chrome://tracing or Perfetto. When the variable
/// is unset this is a no-op and every ScopedSpan in the bench stays on the
/// one-branch null-sink path. Construct in main() before any campaign and
/// destroy after all worker threads have joined (the collector's snapshot
/// contract); campaigns inside a bench always join before returning, so
/// scoping the session to main() satisfies this.
class TraceSession {
 public:
  explicit TraceSession(const std::string& name) {
    if (!obsTrace()) return;
    const char* dir = obsDir();
    const std::string d = dir != nullptr ? std::string(dir) : resultsDir();
    std::filesystem::create_directories(d);
    path_ = d + "/" + name + ".trace.json";
    collector_ = std::make_unique<obs::SpanCollector>();
    collector_->install();
  }
  ~TraceSession() {
    if (!collector_) return;
    obs::SpanCollector::uninstall();
    try {
      collector_->writeChromeTrace(path_);
      std::fprintf(stderr, "trace: wrote %s (%llu spans, %llu dropped)\n",
                   path_.c_str(),
                   static_cast<unsigned long long>(
                       collector_->snapshot().size()),
                   static_cast<unsigned long long>(
                       collector_->droppedCount()));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "trace: FAILED to write %s: %s\n", path_.c_str(),
                   e.what());
    }
  }
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  std::unique_ptr<obs::SpanCollector> collector_;
  std::string path_;
};

inline sim::RunResult runOnce(const config::Configuration& start,
                              const config::Configuration& pattern,
                              const sim::Algorithm& algo,
                              const RunSpec& spec) {
  sim::EngineOptions opts;
  opts.seed = spec.seed;
  opts.maxEvents = spec.maxEvents;
  opts.multiplicityDetection = spec.multiplicity;
  opts.commonChirality = spec.commonChirality;
  opts.sched.kind = spec.sched;
  opts.sched.delta = spec.delta;
  opts.sched.earlyStopProb = spec.earlyStopProb;
  opts.sched.activationProb = spec.activationProb;
  opts.fault = spec.fault;
  opts.watchdog = spec.watchdog;

  const char* dir = obsDir();
  std::unique_ptr<obs::JsonlRecorder> sink;
  std::string base;
  if (dir != nullptr) {
    // Fallback numbering for callers that don't pass RunSpec::obsIndex;
    // atomic because runOnce may execute on campaign worker threads (the
    // numbers are then allocation-ordered, not run-ordered).
    static std::atomic<long> runCounter{0};
    const long idx = spec.obsIndex >= 0
                         ? spec.obsIndex
                         : runCounter.fetch_add(1, std::memory_order_relaxed);
    std::filesystem::create_directories(dir);
    base = std::string(dir) + "/" + algo.name() + "_" +
           sched::schedulerName(spec.sched) + "_n" +
           std::to_string(start.size()) + "_" + std::to_string(idx);
    opts.collectTimings = true;
    if (obsEvents()) {
      sink = std::make_unique<obs::JsonlRecorder>(base + ".jsonl");
      opts.recorder = sink.get();
    }
  }

  sim::Engine eng(start, pattern, algo, opts);
  const sim::RunResult res = eng.run();

  if (dir != nullptr) {
    obs::Manifest m = sim::describeRun(
        opts, algo.name(), spec.label.empty() ? "(inline points)" : spec.label,
        start.size());
    sim::appendResult(m, res);
    m.write(base + ".manifest.json");
  }
  return res;
}

struct Stats {
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

inline Stats statsOf(std::vector<double> xs) {
  Stats s;
  if (xs.empty()) return s;
  std::sort(xs.begin(), xs.end());
  s.mean = std::accumulate(xs.begin(), xs.end(), 0.0) / xs.size();
  s.p50 = xs[xs.size() / 2];
  s.p95 = xs[static_cast<std::size_t>(0.95 * (xs.size() - 1))];
  s.min = xs.front();
  s.max = xs.back();
  return s;
}

/// Aligned stdout table + CSV file. Bare CSV filenames land under
/// resultsDir(), never the working directory's root.
class Table {
 public:
  Table(std::string title, std::string csvPath,
        std::vector<std::string> header)
      : title_(std::move(title)),
        csvPath_(resultsPath(std::move(csvPath))),
        header_(std::move(header)),
        csv_(csvPath_, header_) {}

  void row(std::vector<std::string> cells) {
    csv_.row(cells);
    rows_.push_back(std::move(cells));
  }

  /// Extra keys folded into the CSV's manifest at print() time. Benches use
  /// this to attach e.g. `campaign.*` pool statistics to their output.
  obs::Manifest& meta() { return meta_; }

  /// Records how many simulation runs back one aggregated cell, under
  /// `runs.<cell>` in the CSV manifest. Every mean/percentile row should
  /// carry this — an aggregate whose sample count isn't recorded anywhere
  /// can't be judged for precision (docs/STATISTICS.md).
  void recordRuns(const std::string& cell, std::uint64_t runs) {
    meta_.set("runs." + cell, runs);
  }

  void print() const {
    // A bench's CSV is a run/bench output: give it a manifest so any row
    // can be traced back to the producing build.
    if (!csvPath_.empty()) {
      obs::Manifest m;
      obs::addBuildInfo(m);
      m.set("tool", "bench");
      m.set("title", title_);
      m.set("csv", csvPath_);
      m.set("rows", static_cast<std::uint64_t>(rows_.size()));
      m.merge(meta_);
      m.write(csvPath_ + ".manifest.json");
    }
    std::printf("\n== %s ==\n", title_.c_str());
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], cells[i].size());
      }
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);
    auto printRow = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        std::printf("%-*s  ", static_cast<int>(widths[i]), cells[i].c_str());
      }
      std::printf("\n");
    };
    printRow(header_);
    for (const auto& r : rows_) printRow(r);
  }

 private:
  std::string title_;
  std::string csvPath_;
  std::vector<std::string> header_;
  io::CsvWriter csv_;
  std::vector<std::vector<std::string>> rows_;
  obs::Manifest meta_;
};

/// Symmetric start with n robots (n even >= 4): rho = n / rings-gons.
inline config::Configuration symmetricStart(std::size_t n,
                                            std::uint64_t seed) {
  config::Rng rng(seed);
  // Factor n as rho * rings with rho maximal <= n/2 (at least 2 rings).
  for (int rings = 2; rings <= static_cast<int>(n); ++rings) {
    if (n % rings == 0 && n / rings >= 2) {
      return config::symmetricConfiguration(static_cast<int>(n / rings),
                                            rings, rng);
    }
  }
  return config::randomConfiguration(n, rng);
}

}  // namespace apf::bench
