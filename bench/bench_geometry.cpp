/// \file bench_geometry.cpp
/// Experiment T1: geometry-kernel microbenchmarks (google-benchmark). These
/// are the per-Look costs of every predicate a robot evaluates, i.e. the
/// constants behind the simulator's scalability, plus detection sanity: the
/// regular/shifted detectors are exercised on positive instances so the
/// timings cover the expensive path.

#include <benchmark/benchmark.h>

#include "config/generator.h"
#include "config/regular.h"
#include "config/shifted.h"
#include "config/similarity.h"
#include "config/view.h"
#include "geom/angle.h"
#include "geom/sec.h"
#include "geom/weber.h"

namespace {

using namespace apf;
using config::Configuration;

Configuration randomConfig(std::size_t n) {
  config::Rng rng(n * 7 + 1);
  return config::randomConfiguration(n, rng);
}

Configuration shiftedConfig(std::size_t n) {
  std::vector<double> radii(n, 2.0);
  radii[0] = 1.0;
  Configuration p = config::equiangularSet(radii, {}, 0.3);
  p[0] = p[0].rotated(0.125 * geom::kTwoPi / n);
  return p;
}

void BM_SmallestEnclosingCircle(benchmark::State& state) {
  const Configuration p = randomConfig(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::smallestEnclosingCircle(p.span()));
  }
}
BENCHMARK(BM_SmallestEnclosingCircle)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_WeberPoint(benchmark::State& state) {
  const Configuration p = randomConfig(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::weberPoint(p.span()));
  }
}
BENCHMARK(BM_WeberPoint)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_AllViews(benchmark::State& state) {
  const Configuration p = randomConfig(state.range(0));
  const auto c = p.sec().center;
  for (auto _ : state) {
    benchmark::DoNotOptimize(config::allViews(p, c));
  }
}
BENCHMARK(BM_AllViews)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_RegularSetNegative(benchmark::State& state) {
  const Configuration p = randomConfig(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(config::regularSetOf(p));
  }
}
BENCHMARK(BM_RegularSetNegative)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_RegularSetPositive(benchmark::State& state) {
  config::Rng rng(3);
  const Configuration p =
      config::symmetricConfiguration(state.range(0) / 2, 2, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(config::regularSetOf(p));
  }
}
BENCHMARK(BM_RegularSetPositive)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_ShiftedDetectNegative(benchmark::State& state) {
  const Configuration p = randomConfig(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(config::shiftedRegularSetOf(p));
  }
}
BENCHMARK(BM_ShiftedDetectNegative)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_ShiftedDetectPositive(benchmark::State& state) {
  const Configuration p = shiftedConfig(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(config::shiftedRegularSetOf(p));
  }
}
BENCHMARK(BM_ShiftedDetectPositive)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_SimilarityMatch(benchmark::State& state) {
  const Configuration p = randomConfig(state.range(0));
  const Configuration q =
      p.transformed(geom::Similarity(1.1, 2.0, true, {3, 4}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(config::findSimilarity(p, q));
  }
}
BENCHMARK(BM_SimilarityMatch)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_SimilarityReject(benchmark::State& state) {
  const Configuration p = randomConfig(state.range(0));
  config::Rng rng(99);
  const Configuration q =
      config::randomConfiguration(state.range(0), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(config::findSimilarity(p, q));
  }
}
BENCHMARK(BM_SimilarityReject)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
