/// \file bench_scheduler.cpp
/// Experiment T7 — full asynchrony: FSYNC vs SSYNC vs ASYNC, including an
/// ASYNC pause-intensity sweep (higher early-stop probability = more
/// aggressive chopping and staler snapshots). The paper's claim: the
/// algorithm is correct under the weakest model, robots really may pause
/// mid-movement.
///
/// Expected shape: success everywhere; FSYNC cheapest in cycles, ASYNC
/// costliest; cost rises smoothly with adversary aggression.

#include "bench/common.h"
#include "core/form_pattern.h"

using namespace apf;
using namespace apf::bench;

int main() {
  apf::bench::TraceSession trace("bench_scheduler");
  const int kSeeds = 10;
  core::FormPatternAlgorithm algo;

  Table table("T7: scheduler comparison (n = 10, random starts + pattern)",
              "bench_scheduler.csv",
              {"scheduler", "earlyStop", "success", "cycles_mean",
               "events_mean"});

  struct Cell {
    const char* name;
    sched::SchedulerKind kind;
    double earlyStop;
  };
  const Cell cells[] = {
      {"FSYNC", sched::SchedulerKind::FSync, 0.0},
      {"SSYNC", sched::SchedulerKind::SSync, 0.5},
      {"ASYNC", sched::SchedulerKind::Async, 0.1},
      {"ASYNC", sched::SchedulerKind::Async, 0.5},
      {"ASYNC", sched::SchedulerKind::Async, 0.9},
  };

  // Seeds of one cell fan out across the campaign pool; rows aggregate the
  // merged in-order results, so the CSV is identical for any APF_JOBS.
  std::vector<int> seeds(kSeeds);
  for (int s = 0; s < kSeeds; ++s) seeds[s] = s;
  long obsBase = 0;

  for (const Cell& cell : cells) {
    const auto results = sim::campaignMap(seeds, [&](int s, std::size_t) {
      config::Rng rng(810 + s);
      const std::size_t n = 10;
      const auto start = config::randomConfiguration(n, rng, 5.0, 0.1);
      const auto pattern = io::randomPatternByName(n, 90 + s);
      RunSpec spec;
      spec.sched = cell.kind;
      spec.seed = 23 * s + 9;
      spec.earlyStopProb = cell.earlyStop;
      spec.maxEvents = 2000000;
      spec.obsIndex = obsBase + s;
      return runOnce(start, pattern, algo, spec);
    });
    obsBase += kSeeds;
    int ok = 0;
    std::vector<double> cycles, events;
    for (const auto& res : results) {
      ok += res.success;
      if (res.success) {
        cycles.push_back(static_cast<double>(res.metrics.cycles));
        events.push_back(static_cast<double>(res.metrics.events));
      }
    }
    table.row({cell.name, io::fmt(cell.earlyStop, 1),
               std::to_string(ok) + "/" + std::to_string(kSeeds),
               io::fmt(statsOf(cycles).mean, 0),
               io::fmt(statsOf(events).mean, 0)});
    table.recordRuns(std::string(cell.name) + "_es" +
                         io::fmt(cell.earlyStop, 1),
                     static_cast<std::uint64_t>(kSeeds));
  }
  table.print();
  return 0;
}
