/// \file bench_multiplicity.cpp
/// Experiment T9 — the §5 / appendix-C extension: patterns with
/// multiplicity points are formable when robots have multiplicity
/// detection, including the hard case of a multiplicity point at the
/// pattern's center (formed via the F~ relocation + final gather).
///
/// Expected shape: full success with detection for both interior and
/// center multiplicity; cycles comparable to plain formation plus the
/// gather tail for the center case.

#include "bench/common.h"
#include "core/form_pattern.h"

using namespace apf;
using namespace apf::bench;

int main() {
  const int kSeeds = 10;
  core::FormPatternAlgorithm algo;

  Table table("T9: multiplicity patterns (ASYNC, detection on)",
              "bench_multiplicity.csv",
              {"pattern", "n", "success", "cycles_mean", "cycles_p95"});

  struct Kind {
    const char* name;
    config::Configuration (*make)(std::size_t);
  };
  const Kind kinds[] = {{"interior-mult", io::multiplicityPattern},
                        {"center-mult", io::centerMultiplicityPattern}};

  for (const auto& [name, make] : kinds) {
    for (std::size_t n : {8, 12}) {
      int ok = 0;
      std::vector<double> cycles;
      for (int s = 0; s < kSeeds; ++s) {
        config::Rng rng(1010 + s);
        const auto start = config::randomConfiguration(n, rng, 5.0, 0.1);
        RunSpec spec;
        spec.seed = 31 * s + 13;
        spec.multiplicity = true;
        const auto res = runOnce(start, make(n), algo, spec);
        ok += res.success;
        if (res.success) {
          cycles.push_back(static_cast<double>(res.metrics.cycles));
        }
      }
      const Stats cs = statsOf(cycles);
      table.row({name, std::to_string(n),
                 std::to_string(ok) + "/" + std::to_string(kSeeds),
                 io::fmt(cs.mean, 0), io::fmt(cs.p95, 0)});
    }
  }
  table.print();
  return 0;
}
