/// \file bench_randbits.cpp
/// Experiment T5 — random-bit complexity: the paper's algorithm draws at
/// most ONE bit per robot per cycle (and only during the election), while
/// the Yamauchi-Yamashita-style baseline draws continuous uniforms (53 bits
/// each at double resolution; countably infinite in the model). Symmetric
/// starts force both algorithms to actually randomize; both run with common
/// chirality so the baseline is on its home turf.
///
/// Expected shape: ours consumes a handful of bits total (a few per
/// election participant); the baseline consumes 53x its draw count;
/// bits/cycle <= 1 for ours always.

#include "baseline/yy.h"
#include "bench/common.h"
#include "core/form_pattern.h"

using namespace apf;
using namespace apf::bench;

int main() {
  const int kSeeds = 20;
  core::FormPatternAlgorithm ours;
  baseline::YYAlgorithm yy;

  Table table("T5: random-bit complexity on symmetric starts (SSYNC)",
              "bench_randbits.csv",
              {"algorithm", "n", "success", "bits_mean", "bits_p95",
               "bits_per_cycle_max"});

  struct Algo {
    const char* name;
    const sim::Algorithm* algo;
  };
  const Algo algos[] = {{"bramas-tixeuil", &ours}, {"yy-baseline", &yy}};

  for (const auto& [name, algo] : algos) {
    for (std::size_t n : {8, 12, 16}) {
      int ok = 0;
      std::vector<double> bits, perCycle;
      for (int s = 0; s < kSeeds; ++s) {
        const auto start = symmetricStart(n, 300 + s);
        const auto pattern = io::randomPatternByName(n, 70 + s);
        RunSpec spec;
        spec.sched = sched::SchedulerKind::SSync;
        spec.seed = 11 * s + 5;
        spec.commonChirality = true;
        const auto res = runOnce(start, pattern, *algo, spec);
        ok += res.success;
        bits.push_back(static_cast<double>(res.metrics.randomBits));
        if (res.metrics.cycles > 0) {
          perCycle.push_back(static_cast<double>(res.metrics.randomBits) /
                             static_cast<double>(res.metrics.cycles));
        }
      }
      const Stats bs = statsOf(bits);
      table.row({name, std::to_string(n),
                 std::to_string(ok) + "/" + std::to_string(kSeeds),
                 io::fmt(bs.mean, 1), io::fmt(bs.p95, 0),
                 io::fmt(statsOf(perCycle).max, 3)});
      table.recordRuns(std::string(name) + "_n" + std::to_string(n),
                       static_cast<std::uint64_t>(kSeeds));
    }
  }
  table.print();
  return 0;
}
