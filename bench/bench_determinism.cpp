/// \file bench_determinism.cpp
/// Experiment T11 — the determinism ablation that motivates the paper:
/// deterministic algorithms cannot break symmetric configurations
/// (rho(P) > 1 or axial symmetry), so deterministic formation only works
/// when the initial views are all distinct. The paper's single random bit
/// removes exactly this wall. Runs the paper's algorithm and the
/// deterministic composition (unique-max-view election + psi_DPF) on
/// asymmetric vs. symmetric starts.
///
/// Expected shape: both succeed from random (asymmetric) starts; from
/// symmetric starts the deterministic baseline terminates UNCHANGED (0
/// distance — provably stuck) while ours still succeeds.

#include "baseline/det_formation.h"
#include "bench/common.h"
#include "core/form_pattern.h"

using namespace apf;
using namespace apf::bench;

int main() {
  const int kSeeds = 12;
  core::FormPatternAlgorithm ours;
  baseline::DeterministicFormation det;

  Table table("T11: determinism ablation (ASYNC, n = 8 / 12)",
              "bench_determinism.csv",
              {"algorithm", "start", "n", "success", "stuck", "bits_mean"});

  struct Algo {
    const char* name;
    const sim::Algorithm* algo;
  };
  const Algo algos[] = {{"bramas-tixeuil", &ours},
                        {"det-formation", &det}};

  for (const auto& [name, algo] : algos) {
    for (const std::string startKind : {"random", "symmetric"}) {
      for (std::size_t n : {8, 12}) {
        int ok = 0, stuck = 0;
        std::vector<double> bits;
        for (int s = 0; s < kSeeds; ++s) {
          config::Configuration start;
          if (startKind == "random") {
            config::Rng rng(600 + s);
            start = config::randomConfiguration(n, rng, 4.0, 0.1);
          } else {
            start = symmetricStart(n, 600 + s);
          }
          const auto pattern = io::randomPatternByName(n, 300 + s);
          RunSpec spec;
          spec.seed = 37 * s + 11;
          const auto res = runOnce(start, pattern, *algo, spec);
          ok += res.success;
          // "Stuck": terminated without success and without any movement —
          // the deterministic impossibility made visible.
          if (res.terminated && !res.success && res.metrics.distance == 0.0) {
            ++stuck;
          }
          bits.push_back(static_cast<double>(res.metrics.randomBits));
        }
        table.row({name, startKind, std::to_string(n),
                   std::to_string(ok) + "/" + std::to_string(kSeeds),
                   std::to_string(stuck) + "/" + std::to_string(kSeeds),
                   io::fmt(statsOf(bits).mean, 1)});
      }
    }
  }
  table.print();
  return 0;
}
