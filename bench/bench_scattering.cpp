/// \file bench_scattering.cpp
/// Experiment T10 — the §5 composition implemented as future work made
/// present: SSYNC scattering (initial configurations WITH multiplicity
/// points) followed by full pattern formation. Reports the scattering
/// overhead (cycles, random bits) and end-to-end success.
///
/// Expected shape: full success; scattering consumes a handful of extra
/// bits (one per co-located robot per cycle until the groups dissolve);
/// the formation tail dominates total cycles.

#include "bench/common.h"
#include "core/scattering.h"

using namespace apf;
using namespace apf::bench;

namespace {

config::Configuration clusteredStart(std::size_t n, std::uint64_t seed) {
  config::Rng rng(seed);
  const std::size_t spots = n / 3 + 2;
  const auto anchors = config::randomConfiguration(spots, rng, 3.0, 0.5);
  config::Configuration out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(anchors[i % spots]);
  return out;
}

}  // namespace

int main() {
  const int kSeeds = 10;
  core::ScatterThenForm algo;
  core::ScatterAlgorithm scatterOnly;

  Table table("T10: SSYNC scattering + formation from clustered starts",
              "bench_scattering.csv",
              {"n", "stage", "success", "cycles_mean", "bits_mean"});

  for (std::size_t n : {9, 12, 15}) {
    // Stage A: scattering alone (until no multiplicity point remains).
    {
      int ok = 0;
      std::vector<double> cycles, bits;
      for (int s = 0; s < kSeeds; ++s) {
        RunSpec spec;
        spec.sched = sched::SchedulerKind::SSync;
        spec.seed = 41 * s + 3;
        spec.multiplicity = true;
        const auto res = runOnce(clusteredStart(n, 100 + s),
                                 io::starPattern(n), scatterOnly, spec);
        ok += res.terminated;
        cycles.push_back(static_cast<double>(res.metrics.cycles));
        bits.push_back(static_cast<double>(res.metrics.randomBits));
      }
      table.row({std::to_string(n), "scatter",
                 std::to_string(ok) + "/" + std::to_string(kSeeds),
                 io::fmt(statsOf(cycles).mean, 0),
                 io::fmt(statsOf(bits).mean, 1)});
    }
    // Stage B: the full composition, ending in a formed pattern.
    {
      int ok = 0;
      std::vector<double> cycles, bits;
      for (int s = 0; s < kSeeds; ++s) {
        RunSpec spec;
        spec.sched = sched::SchedulerKind::SSync;
        spec.seed = 41 * s + 3;
        spec.multiplicity = true;
        const auto res =
            runOnce(clusteredStart(n, 100 + s),
                    io::randomPatternByName(n, 200 + s), algo, spec);
        ok += res.success;
        if (res.success) {
          cycles.push_back(static_cast<double>(res.metrics.cycles));
          bits.push_back(static_cast<double>(res.metrics.randomBits));
        }
      }
      table.row({std::to_string(n), "scatter+form",
                 std::to_string(ok) + "/" + std::to_string(kSeeds),
                 io::fmt(statsOf(cycles).mean, 0),
                 io::fmt(statsOf(bits).mean, 1)});
    }
  }
  table.print();
  return 0;
}
