/// \file bench_election.cpp
/// Experiment T2 / F2 (Lemmas 1-2): the randomized election terminates with
/// probability 1. From fully symmetric starts (where any deterministic
/// election is impossible), psi_RSB runs until a selected robot exists.
/// Reports per-n, per-scheduler cycle counts (mean/p50/p95) and random-bit
/// usage, plus the cycle-count CDF as a printed series (figure data).
///
/// Expected shape: success on every seed; common-case cycles grow mildly
/// with n; bits consumed ~= number of election activations (1 bit each).

#include "bench/common.h"
#include "core/rsb.h"

using namespace apf;
using namespace apf::bench;

int main() {
  apf::bench::TraceSession trace("bench_election");
  const int kSeeds = 60;
  core::RsbOnlyAlgorithm rsb;

  Table table("T2: psi_RSB election from symmetric starts",
              "bench_election.csv",
              {"n", "sched", "success", "cycles_mean", "cycles_p50",
               "cycles_p95", "bits_mean", "bits_per_cycle"});

  std::vector<std::pair<std::string, sched::SchedulerKind>> scheds = {
      {"SSYNC", sched::SchedulerKind::SSync},
      {"ASYNC", sched::SchedulerKind::Async}};

  std::vector<std::vector<double>> cdfData;  // ASYNC cycles per n for F2
  std::vector<std::size_t> cdfNs;

  // Per-cell seeds fan out across the campaign pool (sim/campaign.h);
  // in-order merge keeps every CSV row identical for any APF_JOBS.
  std::vector<int> seeds(kSeeds);
  for (int s = 0; s < kSeeds; ++s) seeds[s] = s;
  long obsBase = 0;

  for (std::size_t n : {8, 12, 16, 24, 32}) {
    for (const auto& [schedName, kind] : scheds) {
      const auto results = sim::campaignMap(seeds, [&](int s, std::size_t) {
        const auto start = symmetricStart(n, 1000 + s);
        const auto pattern = io::starPattern(n);
        RunSpec spec;
        spec.sched = kind;
        spec.seed = 7 * s + 1;
        spec.obsIndex = obsBase + s;
        return runOnce(start, pattern, rsb, spec);
      });
      obsBase += kSeeds;
      int ok = 0;
      std::vector<double> cycles, bits;
      for (const auto& res : results) {
        ok += res.terminated;
        if (res.terminated) {
          cycles.push_back(static_cast<double>(res.metrics.cycles));
          bits.push_back(static_cast<double>(res.metrics.randomBits));
        }
      }
      const Stats cs = statsOf(cycles);
      const Stats bs = statsOf(bits);
      table.row({std::to_string(n), schedName,
                 std::to_string(ok) + "/" + std::to_string(kSeeds),
                 io::fmt(cs.mean, 1), io::fmt(cs.p50, 0), io::fmt(cs.p95, 0),
                 io::fmt(bs.mean, 1),
                 io::fmt(cs.mean > 0 ? bs.mean / cs.mean : 0.0, 4)});
      if (kind == sched::SchedulerKind::Async) {
        cdfData.push_back(cycles);
        cdfNs.push_back(n);
      }
    }
  }
  table.print();

  Table cdf("F2: election cycles CDF (ASYNC), deciles",
            "bench_election_cdf.csv",
            {"n", "d10", "d20", "d30", "d40", "d50", "d60", "d70", "d80",
             "d90", "d100"});
  for (std::size_t k = 0; k < cdfData.size(); ++k) {
    auto xs = cdfData[k];
    std::sort(xs.begin(), xs.end());
    std::vector<std::string> row{std::to_string(cdfNs[k])};
    for (int d = 1; d <= 10; ++d) {
      const std::size_t idx =
          std::min(xs.size() - 1, (d * xs.size()) / 10);
      row.push_back(io::fmt(xs.empty() ? 0.0 : xs[idx == 0 ? 0 : idx - 1], 0));
    }
    cdf.row(row);
  }
  cdf.print();
  return 0;
}
