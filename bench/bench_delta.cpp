/// \file bench_delta.cpp
/// Experiment T6 / F6 — non-rigid movement: the adversary stops robots
/// after delta; the algorithm must converge for EVERY delta > 0 (delta is
/// unknown to the robots). Sweeps delta with an aggressive stop-at-delta
/// adversary and reports cycles to completion.
///
/// Expected shape: success everywhere; cycles grow roughly like 1/delta
/// for small delta (long radial or arc moves get chopped into delta-sized
/// pieces, each costing one cycle).

#include "bench/common.h"
#include "core/form_pattern.h"

using namespace apf;
using namespace apf::bench;

int main() {
  const int kSeeds = 8;
  core::FormPatternAlgorithm algo;

  Table table("T6: delta sensitivity (ASYNC, aggressive stop-at-delta, n=8)",
              "bench_delta.csv",
              {"delta", "success", "cycles_mean", "cycles_p95",
               "moves_per_robot"});

  for (double delta : {0.005, 0.01, 0.05, 0.1, 0.25, 0.5}) {
    int ok = 0;
    std::vector<double> cycles;
    for (int s = 0; s < kSeeds; ++s) {
      config::Rng rng(700 + s);
      const std::size_t n = 8;
      const auto start = config::randomConfiguration(n, rng, 5.0, 0.1);
      const auto pattern = io::starPattern(n);
      RunSpec spec;
      spec.seed = 19 * s + 7;
      spec.delta = delta;
      spec.earlyStopProb = 0.9;
      spec.maxEvents = 3000000;
      const auto res = runOnce(start, pattern, algo, spec);
      ok += res.success;
      if (res.success) {
        cycles.push_back(static_cast<double>(res.metrics.cycles));
      }
    }
    const Stats cs = statsOf(cycles);
    table.row({io::fmt(delta, 3),
               std::to_string(ok) + "/" + std::to_string(kSeeds),
               io::fmt(cs.mean, 0), io::fmt(cs.p95, 0),
               io::fmt(cs.mean / 8.0, 1)});
  }
  table.print();
  return 0;
}
