/// \file bench_faults.cpp
/// Degradation measurement under injected faults: sweep crash count
/// f in {0, 1, 2} x Look-noise sigma x snapshot-omission probability on the
/// reference configurations of bench_scheduler (n = 10, random starts and
/// patterns, ASYNC earlyStop 0.5), and tabulate per-cell run outcomes
/// {success, crashed_short, stalled, safety_violation} plus an
/// approximate-success column (pattern matched within 2% of the SEC
/// radius — the "came close" grade exact matching hides under noise).
///
/// The f=0 / sigma=0 / omit=0 cell reproduces bench_scheduler's
/// ASYNC earlyStop=0.5 row exactly (same starts, patterns, and seeds).
///
/// Measured shape (results/bench_faults.csv): success is monotone
/// non-increasing in f and in sigma. Crashes leave survivors safely parked
/// short of the pattern (crashed_short); persistent noise defeats the
/// phase detection entirely, so those runs burn the whole event budget
/// without converging (stalled at the cap); omission only slows progress —
/// psi_DPF refuses to act on snapshots whose cardinality disagrees with
/// the pattern, so a fraction of runs still finish within budget.

#include "bench/common.h"
#include "config/similarity.h"
#include "core/form_pattern.h"

using namespace apf;
using namespace apf::bench;

int main() {
  apf::bench::TraceSession trace("bench_faults");
  const int kSeeds = 10;
  const std::size_t kN = 10;
  core::FormPatternAlgorithm algo;

  Table table(
      "TF: fault degradation (n = 10, ASYNC 0.5, reference starts/patterns)",
      "bench_faults.csv",
      {"f", "sigma", "omit", "success", "approx", "crashed_short", "stalled",
       "violation", "events_mean"});

  const int crashCounts[] = {0, 1, 2};
  const double sigmas[] = {0.0, 0.02, 0.1};
  const double omits[] = {0.0, 0.1};

  // Every cell runs under the campaign supervisor (sim/supervisor.h): a
  // livelocked run trips the cycle watchdog and lands in quarantine
  // instead of wedging the table. The budget sits above every cell's
  // maxEvents, so a run that respects its own cap never times out and the
  // CSV stays bit-identical to the unsupervised bench.
  sim::SupervisorOptions supOpts;
  supOpts.cycleBudget = 3'000'000;
  sim::SupervisorReport supTotal;

  // Per-cell seeds fan out across the campaign pool (sim/campaign.h); each
  // worker builds its own start/pattern/fault plan, and the in-order merge
  // keeps every CSV row identical for any APF_JOBS.
  std::vector<int> seeds(kSeeds);
  for (int s = 0; s < kSeeds; ++s) seeds[s] = s;
  long obsBase = 0;

  for (const int f : crashCounts) {
    for (const double sigma : sigmas) {
      for (const double omit : omits) {
        const bool faulty = f > 0 || sigma > 0.0 || omit > 0.0;
        struct CellRun {
          sim::RunResult res;
          bool approx = false;
        };
        std::vector<CellRun> results(seeds.size());
        const sim::SupervisorReport cellReport = sim::superviseCampaign(
            seeds,
            [&](int s, std::size_t, const sim::Attempt& att) {
          // Reference configurations: identical to bench_scheduler's
          // ASYNC earlyStop=0.5 row so the clean cell cross-checks it.
          config::Rng rng(810 + s);
          const auto start = config::randomConfiguration(kN, rng, 5.0, 0.1);
          const auto pattern = io::randomPatternByName(kN, 90 + s);
          RunSpec spec;
          spec.sched = sched::SchedulerKind::Async;
          spec.seed = 23 * s + 9;
          spec.earlyStopProb = 0.5;
          // Clean reference cell keeps bench_scheduler's event budget;
          // fault cells cap earlier (clean runs settle in ~1.2k events, and
          // sensor-faulted runs cannot end by quiescence, only by success
          // poll or this cap) — a faulted run that has not settled within
          // 50x the clean budget is the degradation being measured.
          spec.maxEvents = faulty ? 60000 : 2000000;
          spec.fault.noiseSigma = sigma;
          spec.fault.omitProb = omit;
          spec.fault.seed = spec.seed;
          if (f > 0) {
            // Crashes land inside the active phase of a typical clean run
            // (events_mean ~1.2k): the adversary strikes while it hurts.
            spec.fault.crashes =
                fault::planWithRandomCrashes(kN, f, spec.seed, 800).crashes;
          }
          spec.label = "faults";
          spec.obsIndex = obsBase + s;
          // Attempt::seedSalt is deliberately NOT folded into spec.seed:
          // bench rows are reference numbers, so a (never expected) retry
          // re-measures the same run instead of a reseeded variant.
          spec.watchdog = att.watchdog;
          CellRun out;
          out.res = runOnce(start, pattern, algo, spec);
          out.approx = config::similar(out.res.finalPositions, pattern,
                                       geom::Tol{2e-2, 2e-2});
          return out;
        },
            [&](std::size_t i, CellRun&& run) { results[i] = std::move(run); },
            supOpts);
        supTotal.absorb(cellReport);
        if (!cellReport.allCompleted()) {
          std::fprintf(stderr,
                       "bench_faults: %llu run(s) quarantined in cell f=%d "
                       "sigma=%.2f omit=%.2f (their rows count as defaults)\n",
                       static_cast<unsigned long long>(
                           cellReport.quarantined),
                       f, sigma, omit);
        }
        obsBase += kSeeds;
        int byOutcome[4] = {0, 0, 0, 0};
        int approx = 0;
        std::vector<double> events;
        for (const auto& run : results) {
          byOutcome[static_cast<int>(run.res.outcome)] += 1;
          approx += run.approx;
          events.push_back(static_cast<double>(run.res.metrics.events));
        }
        auto frac = [&](sim::Outcome o) {
          return std::to_string(byOutcome[static_cast<int>(o)]) + "/" +
                 std::to_string(kSeeds);
        };
        table.row({std::to_string(f), io::fmt(sigma, 2), io::fmt(omit, 2),
                   frac(sim::Outcome::Success), std::to_string(approx) + "/" +
                       std::to_string(kSeeds),
                   frac(sim::Outcome::CrashedShort),
                   frac(sim::Outcome::Stalled),
                   frac(sim::Outcome::SafetyViolation),
                   io::fmt(statsOf(events).mean, 0)});
        table.recordRuns("f" + std::to_string(f) + "_s" + io::fmt(sigma, 2) +
                             "_o" + io::fmt(omit, 2),
                         static_cast<std::uint64_t>(kSeeds));
      }
    }
  }
  sim::appendManifest(supOpts, supTotal, table.meta());
  table.print();
  return 0;
}
