/// \file bench_perf.cpp
/// TP — perf-baseline harness. Times representative workloads and emits a
/// machine-readable `BENCH_perf.json` next to the CSVs (results/ or
/// APF_RESULTS_DIR), so every future PR can regress against this one:
///
///  * campaign throughput: election (psi_RSB from symmetric starts) and
///    formation (full algorithm from random starts) campaigns at
///    n in {16, 64, 256}, each measured serially (jobs = 1) and on the
///    campaign thread pool (jobs = APF_JOBS / hardware concurrency), with
///    an in-process determinism cross-check that both produce identical
///    aggregates;
///  * geometry microbenches: fresh Welzl SEC vs the memoized
///    Configuration::sec() cache, and the Weiszfeld Weber point;
///  * engine hot loop: Engine::step() driven directly under a trivial
///    always-move algorithm, reporting events_per_sec AND allocs_per_event
///    (this binary links src/obs/alloc_hook.cpp, so obs::allocStats()
///    counts every operator new). The scratch-buffer engine holds
///    allocs_per_event at 0 in steady state; tools/apf_bench_diff gates the
///    exact count so any new per-event allocation fails CI.
///
/// Runs are capped by a fixed event budget so a workload is a bounded,
/// deterministic amount of work whether or not individual runs converge.
/// `--quick` shrinks every workload for the CI perf smoke job.

#include <sys/resource.h>

#include <cstring>
#include <fstream>
#include <numeric>
#include <thread>

#include "bench/common.h"
#include "core/form_pattern.h"
#include "core/rsb.h"
#include "geom/sec.h"
#include "geom/weber.h"
#include "obs/alloc.h"
#include "obs/json.h"
#include "obs/stats.h"
#include "sim/campaign.h"
#include "sim/shard.h"
#include "tools/algo_select.h"

using namespace apf;
using namespace apf::bench;

namespace {

struct WorkloadResult {
  std::string workload;
  std::size_t n = 0;
  int jobs = 1;
  int runs = 0;  ///< campaign runs, or micro-bench iterations
  double wallMs = 0.0;
  double perSec = 0.0;   ///< runs (or ops) per second
  double speedup = 1.0;  ///< vs. the serial / un-memoized baseline
  /// Pool telemetry, present on parallel campaign rows only.
  bool hasPool = false;
  sim::CampaignStats pool;
  /// Allocation accounting, present on engine hot-loop rows only.
  bool hasAlloc = false;
  std::uint64_t allocs = 0;       ///< operator-new calls in the timed region
  double allocsPerEvent = 0.0;    ///< allocs / events (0 in steady state)
};

/// Order-independent campaign fingerprint for the determinism cross-check.
/// Includes the geometry-cache counters: their per-run deltas are
/// thread-confined (sim/metrics.h), so serial and pooled campaigns must
/// agree on the sums too.
struct Aggregate {
  std::uint64_t events = 0;
  std::uint64_t cycles = 0;
  std::uint64_t randomBits = 0;
  std::uint64_t secCacheHits = 0;
  std::uint64_t secCacheMisses = 0;
  std::uint64_t weberCacheHits = 0;
  std::uint64_t weberCacheMisses = 0;
  int successes = 0;
  bool operator==(const Aggregate&) const = default;
};

template <typename F>
double timeMs(F&& f) {
  const std::uint64_t t0 = obs::nowNanos();
  f();
  return static_cast<double>(obs::nowNanos() - t0) / 1e6;
}

Aggregate runWorkload(bool formation, std::size_t n, int runs,
                      std::uint64_t maxEvents, int jobs,
                      sim::CampaignStats* stats = nullptr) {
  core::FormPatternAlgorithm form;
  core::RsbOnlyAlgorithm rsb;
  const sim::Algorithm& algo =
      formation ? static_cast<const sim::Algorithm&>(form)
                : static_cast<const sim::Algorithm&>(rsb);
  std::vector<int> seeds(static_cast<std::size_t>(runs));
  std::iota(seeds.begin(), seeds.end(), 0);
  Aggregate agg;
  sim::runCampaign(
      seeds,
      [&](int s, std::size_t) {
        config::Configuration start, pattern;
        sim::EngineOptions opts;
        if (formation) {
          config::Rng rng(500 + s);
          start = config::randomConfiguration(n, rng, 5.0, 0.1);
          pattern = io::randomPatternByName(n, 40 + s);
          opts.seed = 13 * static_cast<std::uint64_t>(s) + 2;
        } else {
          start = symmetricStart(n, 1000 + static_cast<std::uint64_t>(s));
          pattern = io::starPattern(n);
          opts.seed = 7 * static_cast<std::uint64_t>(s) + 1;
        }
        opts.maxEvents = maxEvents;
        opts.sched.kind = sched::SchedulerKind::Async;
        sim::Engine eng(start, pattern, algo, opts);
        return eng.run();
      },
      [&](std::size_t, sim::RunResult&& res) {
        agg.events += res.metrics.events;
        agg.cycles += res.metrics.cycles;
        agg.randomBits += res.metrics.randomBits;
        agg.secCacheHits += res.metrics.secCacheHits;
        agg.secCacheMisses += res.metrics.secCacheMisses;
        agg.weberCacheHits += res.metrics.weberCacheHits;
        agg.weberCacheMisses += res.metrics.weberCacheMisses;
        agg.successes += res.success;
      },
      jobs, stats);
  return agg;
}

/// Always-move algorithm for the hot-loop row: one inline line segment per
/// Compute, never terminates. Deliberately trivial so the measurement
/// isolates the engine's own look/compute/move machinery (snapshot refresh,
/// fault filters, scheduler bookkeeping) rather than algorithm geometry —
/// exactly the code the scratch workspace made allocation-free.
class DriftAlgorithm final : public sim::Algorithm {
 public:
  sim::Action compute(const sim::Snapshot&,
                      sched::RandomSource&) const override {
    sim::Action act;
    act.path = geom::Path({0.0, 0.0});
    act.path.lineTo({0.01, 0.0});
    act.phaseTag = 1;
    return act;
  }
  std::string name() const override { return "drift"; }
};

struct HotLoopResult {
  double wallMs = 0.0;
  std::uint64_t allocs = 0;
};

/// Drives Engine::step() for `events` scheduler events after a warmup that
/// reaches buffer steady state (scratch capacities grown, per-robot
/// snapshot storage in place), then reports wall time and the exact
/// operator-new count of the measured region.
HotLoopResult runHotLoop(std::size_t n, std::uint64_t events,
                         bool withFaults) {
  DriftAlgorithm drift;
  config::Rng rng(90 + n);
  const auto start = config::randomConfiguration(n, rng, 5.0, 0.1);
  const auto pattern = io::starPattern(n);
  sim::EngineOptions opts;
  opts.seed = 1234;
  opts.sched.kind = sched::SchedulerKind::Async;
  if (withFaults) {
    opts.fault.noiseSigma = 0.01;
    opts.fault.omitProb = 0.02;
    opts.fault.multFlipProb = 0.01;
    opts.fault.dropProb = 0.02;
    opts.fault.truncProb = 0.05;
    opts.fault.seed = 7;
  }
  sim::Engine eng(start, pattern, drift, opts);
  for (int w = 0; w < 4096; ++w) eng.step();
  HotLoopResult out;
  const obs::AllocStats before = obs::allocStats();
  out.wallMs = timeMs([&] {
    for (std::uint64_t e = 0; e < events; ++e) eng.step();
  });
  const obs::AllocStats after = obs::allocStats();
  out.allocs = after.news - before.news;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  // APF_OBS_TRACE=1 captures every engine/campaign span of the bench into
  // results/bench_perf.trace.json (timing numbers then include the ~2
  // clock reads per span; don't mix traced and untraced baselines).
  TraceSession trace("bench_perf");
  const int parJobs = sim::campaignJobs();

  Table table("TP: perf baseline (campaign throughput + geometry micro)",
              "bench_perf.csv",
              {"workload", "n", "jobs", "runs", "wall_ms", "per_sec",
               "speedup"});
  std::vector<WorkloadResult> out;
  auto record = [&](WorkloadResult w) {
    table.row({w.workload, std::to_string(w.n), std::to_string(w.jobs),
               std::to_string(w.runs), io::fmt(w.wallMs, 1),
               io::fmt(w.perSec, 2), io::fmt(w.speedup, 2)});
    out.push_back(std::move(w));
  };
  auto make = [](const char* workload, std::size_t n, int jobs, int runs,
                 double wallMs, double perSec, double speedup) {
    WorkloadResult w;
    w.workload = workload;
    w.n = n;
    w.jobs = jobs;
    w.runs = runs;
    w.wallMs = wallMs;
    w.perSec = perSec;
    w.speedup = speedup;
    return w;
  };

  // --- campaign throughput -----------------------------------------------
  // Event caps and run counts are sized per cell so each measurement is a
  // few tens of seconds of work on one core — per-event cost spans three
  // orders of magnitude between n=16 and n=256 (the n=256 formation
  // compute runs the Weber point and shifted-regular detection each event).
  struct Cell {
    const char* name;
    bool formation;
    std::size_t n;
    std::uint64_t maxEvents;
    int runs;
  };
  const Cell cells[] = {
      {"election_campaign", false, 16, 8000, 8},
      {"election_campaign", false, 64, 1200, 8},
      {"election_campaign", false, 256, 300, 8},
      {"formation_campaign", true, 16, 8000, 8},
      {"formation_campaign", true, 64, 2400, 8},
      {"formation_campaign", true, 256, 150, 4},
  };
  // Pool behavior aggregated over every parallel campaign in the bench;
  // attached to the CSV manifest under campaign.* for apf_report.
  sim::CampaignStats poolTotal;
  // Geometry-cache totals over every campaign run the bench executed
  // (serial and pooled); surfaced as campaign.geom.* manifest keys.
  Aggregate geomTotal;
  auto foldPool = [&](const sim::CampaignStats& s) {
    poolTotal.jobs = std::max(poolTotal.jobs, s.jobs);
    poolTotal.items += s.items;
    poolTotal.wallNanos += s.wallNanos;
    poolTotal.workerBusyNanos += s.workerBusyNanos;
    poolTotal.workerIdleNanos += s.workerIdleNanos;
    poolTotal.mailboxHighWater =
        std::max(poolTotal.mailboxHighWater, s.mailboxHighWater);
    poolTotal.pendingHighWater =
        std::max(poolTotal.pendingHighWater, s.pendingHighWater);
    poolTotal.mergeStallNanos += s.mergeStallNanos;
    poolTotal.mergeNanos += s.mergeNanos;
  };
  for (const Cell& cell : cells) {
    const std::uint64_t cap =
        quick ? std::max<std::uint64_t>(50, cell.maxEvents / 4)
              : cell.maxEvents;
    const int runs = quick ? std::max(2, cell.runs / 2) : cell.runs;
    Aggregate serialAgg, parAgg;
    sim::CampaignStats poolStats;
    const double serialMs = timeMs([&] {
      serialAgg = runWorkload(cell.formation, cell.n, runs, cap, 1);
    });
    const double parMs = timeMs([&] {
      parAgg = runWorkload(cell.formation, cell.n, runs, cap, parJobs,
                           &poolStats);
    });
    if (!(serialAgg == parAgg)) {
      std::fprintf(stderr,
                   "FATAL: %s n=%zu: parallel aggregate differs from serial "
                   "(determinism violation)\n",
                   cell.name, cell.n);
      return 1;
    }
    record(make(cell.name, cell.n, 1, runs, serialMs,
                1000.0 * runs / serialMs, 1.0));
    WorkloadResult par = make(cell.name, cell.n, parJobs, runs, parMs,
                              1000.0 * runs / parMs, serialMs / parMs);
    par.hasPool = true;
    par.pool = poolStats;
    foldPool(poolStats);
    record(std::move(par));
    geomTotal.secCacheHits += serialAgg.secCacheHits + parAgg.secCacheHits;
    geomTotal.secCacheMisses +=
        serialAgg.secCacheMisses + parAgg.secCacheMisses;
    geomTotal.weberCacheHits +=
        serialAgg.weberCacheHits + parAgg.weberCacheHits;
    geomTotal.weberCacheMisses +=
        serialAgg.weberCacheMisses + parAgg.weberCacheMisses;
  }

  // --- multi-process sharded campaign --------------------------------------
  // Times the fork/exec coordinator (sim/shard.h) against the identical
  // spec executed in-process, and cross-checks payload determinism: every
  // run's journal payload must be byte-identical whichever process
  // executed it. The check failing means the apf.shard.v1 contract broke —
  // a payload picked up wall-clock or process-identity state.
  {
    sim::ShardSpec spec;
    spec.algo = "form";
    spec.n = 16;
    spec.patternLabel = "star";
    spec.pattern = io::starPattern(16);
    spec.startKind = "random";
    spec.baseSeed = 21;
    spec.runs = quick ? 8 : 16;
    spec.maxEvents = quick ? 2000 : 8000;
    const std::string specErr = sim::validateShardSpec(spec);
    if (!specErr.empty()) {
      std::fprintf(stderr, "FATAL: campaign_sharded spec: %s\n",
                   specErr.c_str());
      return 1;
    }
    const std::string worker = sim::resolveWorkerPath("");
    if (worker.empty()) {
      std::fprintf(stderr,
                   "FATAL: campaign_sharded: cannot resolve the apf_worker "
                   "binary (build tools/apf_worker or set APF_WORKER)\n");
      return 1;
    }
    bool multiplicity = false;
    const auto algo = cli::makeAlgorithm(spec.algo, multiplicity);
    const int runs = static_cast<int>(spec.runs);
    std::vector<std::string> serialPayloads(spec.runs);
    const double serialMs = timeMs([&] {
      sim::runShard(spec, *algo, 0, spec.runs, nullptr, nullptr, 1, nullptr,
                    &serialPayloads);
    });
    sim::CoordinatorOptions copts;
    copts.workerPath = worker;
    copts.shards = 4;
    copts.workDir = resultsDir() + "/.bench_perf.shards";
    sim::CoordinatorReport crep;
    const double shardMs =
        timeMs([&] { crep = sim::runShardedCampaign(spec, copts); });
    if (!crep.allShardsOk() || !crep.runs.allCompleted()) {
      std::fprintf(stderr,
                   "FATAL: campaign_sharded: worker processes did not "
                   "complete the campaign (see %s/shard*.log)\n",
                   copts.workDir.c_str());
      return 1;
    }
    {
      sim::CampaignJournal merged(crep.mergedJournalPath,
                                  sim::shardConfigKey(spec),
                                  /*resume=*/true);
      for (std::uint64_t i = 0; i < spec.runs; ++i) {
        const std::string* p = merged.payload(i);
        if (p == nullptr ||
            *p != serialPayloads[static_cast<std::size_t>(i)]) {
          std::fprintf(stderr,
                       "FATAL: campaign_sharded: run %llu payload differs "
                       "between in-process and worker execution "
                       "(determinism violation)\n",
                       static_cast<unsigned long long>(i));
          return 1;
        }
      }
    }
    std::error_code ec;
    std::filesystem::remove_all(copts.workDir, ec);
    record(make("campaign_sharded", spec.n, 1, runs, serialMs,
                1000.0 * runs / serialMs, 1.0));
    // jobs here counts worker PROCESSES; apf_bench_diff keys only on
    // serial-vs-parallel, so the shard count can evolve with the machine.
    record(make("campaign_sharded", spec.n, static_cast<int>(copts.shards),
                runs, shardMs, 1000.0 * runs / shardMs,
                serialMs / shardMs));
  }

  // --- engine hot loop ----------------------------------------------------
  // runs == scheduler events here, so runs_per_sec is events_per_sec and
  // the standard throughput gate applies; allocs_per_event is additionally
  // gated exactly (tools/apf_bench_diff) — steady state must stay at 0.
  const std::uint64_t hotEvents = quick ? 20000 : 200000;
  for (const bool withFaults : {false, true}) {
    const HotLoopResult hot = runHotLoop(16, hotEvents, withFaults);
    WorkloadResult w =
        make(withFaults ? "engine_hot_loop_fault" : "engine_hot_loop", 16, 1,
             static_cast<int>(hotEvents), hot.wallMs,
             1000.0 * static_cast<double>(hotEvents) / hot.wallMs, 1.0);
    w.hasAlloc = true;
    w.allocs = hot.allocs;
    w.allocsPerEvent =
        static_cast<double>(hot.allocs) / static_cast<double>(hotEvents);
    record(std::move(w));
  }

  // --- geometry microbenches ---------------------------------------------
  double checksum = 0.0;  // defeat dead-code elimination
  for (std::size_t n : {16, 64, 256}) {
    config::Rng rng(42 + n);
    const auto cfg = config::randomConfiguration(n, rng, 5.0, 0.1);
    const int secIters = (quick ? 200 : 2000) * 64 / static_cast<int>(n);
    const double freshMs = timeMs([&] {
      for (int i = 0; i < secIters; ++i) {
        checksum += geom::smallestEnclosingCircle(cfg.span()).radius;
      }
    });
    record(make("sec_fresh", n, 1, secIters, freshMs,
                1000.0 * secIters / freshMs, 1.0));
    const double cachedMs = timeMs([&] {
      for (int i = 0; i < secIters; ++i) checksum += cfg.sec().radius;
    });
    // For sec_cached, "speedup" is the memoization win over sec_fresh.
    record(make("sec_cached", n, 1, secIters, cachedMs,
                1000.0 * secIters / cachedMs,
                cachedMs > 0.0 ? freshMs / cachedMs : 0.0));
    const int weberIters = std::max(5, (quick ? 20 : 200) * 64 /
                                           static_cast<int>(n));
    const double weberMs = timeMs([&] {
      for (int i = 0; i < weberIters; ++i) {
        checksum += geom::weberPoint(cfg.span()).x;
      }
    });
    record(make("weber", n, 1, weberIters, weberMs,
                1000.0 * weberIters / weberMs, 1.0));
  }

  // Peak RSS (all workloads have run by now): memory regressions show up
  // in the manifest and BENCH_perf.json even when throughput holds.
  std::uint64_t peakRssKb = 0;
  {
    struct rusage ru {};
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
      peakRssKb = static_cast<std::uint64_t>(ru.ru_maxrss);  // KB on Linux
    }
  }
  sim::appendManifest(poolTotal, table.meta());
  table.meta().set("campaign.geom.sec_cache_hits", geomTotal.secCacheHits);
  table.meta().set("campaign.geom.sec_cache_misses",
                   geomTotal.secCacheMisses);
  table.meta().set("campaign.geom.weber_cache_hits",
                   geomTotal.weberCacheHits);
  table.meta().set("campaign.geom.weber_cache_misses",
                   geomTotal.weberCacheMisses);
  table.meta().set("bench.peak_rss_kb", peakRssKb);
  table.print();
  std::printf("(checksum %.3f, hardware_concurrency %u)\n", checksum,
              std::thread::hardware_concurrency());
  for (const WorkloadResult& w : out) {
    if (!w.hasAlloc) continue;
    std::printf(
        "%s: %.0f events/s, allocs_per_event %.6f (%llu allocs / %d "
        "events)%s\n",
        w.workload.c_str(), w.perSec, w.allocsPerEvent,
        static_cast<unsigned long long>(w.allocs), w.runs,
        obs::allocCountingActive() ? "" : " [alloc counting INACTIVE]");
  }
  std::printf("peak RSS: %llu KB\n",
              static_cast<unsigned long long>(peakRssKb));
  std::printf(
      "campaign pool: jobs %d, utilization %.1f%%, mailbox hwm %llu, "
      "pending hwm %llu, merge stall %.1f ms\n",
      poolTotal.jobs, 100.0 * poolTotal.utilization(),
      static_cast<unsigned long long>(poolTotal.mailboxHighWater),
      static_cast<unsigned long long>(poolTotal.pendingHighWater),
      static_cast<double>(poolTotal.mergeStallNanos) / 1e6);

  // --- BENCH_perf.json ----------------------------------------------------
  std::string entries;
  for (const WorkloadResult& w : out) {
    obs::JsonObjectWriter jw;
    jw.field("workload", w.workload);
    jw.field("n", static_cast<std::uint64_t>(w.n));
    jw.field("jobs", w.jobs);
    jw.field("runs", w.runs);
    jw.field("wall_ms", w.wallMs);
    jw.field("runs_per_sec", w.perSec);
    jw.field("speedup_vs_serial", w.speedup);
    if (w.hasPool) {
      jw.field("pool_utilization", w.pool.utilization());
      jw.field("pool_mailbox_high_water", w.pool.mailboxHighWater);
      jw.field("pool_pending_high_water", w.pool.pendingHighWater);
      jw.field("pool_merge_stall_ms",
               static_cast<double>(w.pool.mergeStallNanos) / 1e6);
    }
    if (w.hasAlloc) {
      jw.field("events_per_sec", w.perSec);
      jw.field("allocs", w.allocs);
      jw.field("allocs_per_event", w.allocsPerEvent);
    }
    if (!entries.empty()) entries += ",";
    entries += jw.str();
  }
  obs::JsonObjectWriter top;
  top.field("schema", "apf.bench_perf.v1");
  top.field("quick", quick);
  top.field("hardware_concurrency",
            static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  top.field("serial_jobs", 1);
  top.field("parallel_jobs", parJobs);
  top.field("alloc_counting", obs::allocCountingActive());
  top.field("peak_rss_kb", peakRssKb);
  {
    obs::Manifest cm;
    sim::appendManifest(poolTotal, cm);
    cm.set("campaign.geom.sec_cache_hits", geomTotal.secCacheHits);
    cm.set("campaign.geom.sec_cache_misses", geomTotal.secCacheMisses);
    cm.set("campaign.geom.weber_cache_hits", geomTotal.weberCacheHits);
    cm.set("campaign.geom.weber_cache_misses", geomTotal.weberCacheMisses);
    obs::JsonObjectWriter cw;
    for (const auto& [k, v] : cm.entries()) {
      // Strip the "campaign." prefix: the keys nest under one object here.
      cw.rawField(k.substr(k.find('.') + 1), v);
    }
    top.rawField("campaign", cw.str());
  }
  top.rawField("workloads", "[" + entries + "]");
  const std::string jsonPath = resultsPath("BENCH_perf.json");
  std::ofstream js(jsonPath);
  js << top.str() << "\n";
  if (!js) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", jsonPath.c_str());
    return 1;
  }
  std::printf("wrote %s\n", jsonPath.c_str());
  return 0;
}
