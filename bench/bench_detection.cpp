/// \file bench_detection.cpp
/// Experiment T1b / F1 — detection accuracy of the Definition-1/2/3
/// machinery on generated corpora: positives must be found (with the right
/// parameters), negatives must be rejected. This is the quantitative
/// counterpart of the paper's figures 1-2, which only illustrate the
/// definitions.
///
/// Expected shape: 100% on every row — the detectors are
/// candidates + exact verification, so misses/false-positives indicate
/// numerical trouble, not heuristic gaps.

#include <cmath>

#include "bench/common.h"
#include "config/regular.h"
#include "config/shifted.h"
#include "geom/angle.h"

using namespace apf;
using namespace apf::bench;
using config::Configuration;
using geom::kTwoPi;

int main() {
  const int kCases = 100;
  Table table("T1b: detection accuracy (100 cases per row)",
              "bench_detection.csv",
              {"corpus", "expected", "correct", "rate_pct"});

  auto row = [&](const char* name, const char* expected, int correct) {
    table.row({name, expected, std::to_string(correct) + "/" +
                                   std::to_string(kCases),
               io::fmt(100.0 * correct / kCases, 1)});
  };

  // Equiangular whole configurations (random m, radii, phase, center).
  {
    int ok = 0;
    for (int t = 0; t < kCases; ++t) {
      config::Rng rng(100 + t);
      std::uniform_int_distribution<int> um(7, 16);
      std::uniform_real_distribution<double> ur(0.5, 3.0);
      const int m = um(rng);
      std::vector<double> radii(m);
      for (double& r : radii) r = ur(rng);
      const config::Vec2 center{ur(rng) - 1.5, ur(rng) - 1.5};
      const Configuration p = config::equiangularSet(radii, center, ur(rng));
      const auto info = config::checkRegularFreeCenter(p);
      ok += info && !info->biangular &&
            geom::dist(info->grid.center, center) < 1e-6;
    }
    row("equiangular", "detected+center", ok);
  }

  // Bi-angled whole configurations.
  {
    int ok = 0;
    for (int t = 0; t < kCases; ++t) {
      config::Rng rng(200 + t);
      std::uniform_int_distribution<int> um(4, 8);
      std::uniform_real_distribution<double> ur(0.5, 2.5);
      const int m = 2 * um(rng);
      const double pairSum = 2.0 * kTwoPi / m;
      std::uniform_real_distribution<double> ua(0.15 * pairSum,
                                                0.45 * pairSum);
      std::vector<double> radii(m);
      for (double& r : radii) r = ur(rng);
      const config::Vec2 center{ur(rng) - 1.0, ur(rng) - 1.0};
      const Configuration p =
          config::biangularSet(m, ua(rng), radii, center, ur(rng));
      const auto info = config::checkRegularFreeCenter(p);
      ok += info && info->biangular &&
            geom::dist(info->grid.center, center) < 1e-6;
    }
    row("bi-angled", "detected+center", ok);
  }

  // Shifted whole configurations: random m, eps in (0, 1/4].
  {
    int ok = 0;
    for (int t = 0; t < kCases; ++t) {
      config::Rng rng(300 + t);
      std::uniform_int_distribution<int> um(7, 14);
      std::uniform_real_distribution<double> ue(0.02, 0.25);
      std::uniform_real_distribution<double> up(0.0, kTwoPi);
      const int m = um(rng);
      const double eps = ue(rng);
      std::vector<double> radii(m, 2.0);
      const std::size_t shiftedIdx = rng() % m;
      radii[shiftedIdx] = 1.0;
      Configuration p = config::equiangularSet(radii, {}, up(rng));
      p[shiftedIdx] = p[shiftedIdx].rotated(eps * kTwoPi / m);
      const auto info = config::shiftedRegularSetOf(p);
      ok += info && info->shiftedRobot == shiftedIdx &&
            std::fabs(info->epsilon - eps) < 1e-5;
    }
    row("shifted (whole)", "robot+eps", ok);
  }

  // Symmetric configurations: Property 1 (a regular set must exist).
  {
    int ok = 0;
    for (int t = 0; t < kCases; ++t) {
      config::Rng rng(400 + t);
      std::uniform_int_distribution<int> urho(2, 6);
      const Configuration p =
          config::symmetricConfiguration(urho(rng), 3, rng);
      ok += config::regularSetOf(p).has_value();
    }
    row("symmetric (Property 1)", "reg(P) exists", ok);
  }

  // Negatives: random general-position configurations.
  {
    int ok = 0;
    for (int t = 0; t < kCases; ++t) {
      config::Rng rng(500 + t);
      const Configuration p = config::randomConfiguration(10, rng);
      ok += !config::regularSetOf(p).has_value() &&
            !config::shiftedRegularSetOf(p).has_value();
    }
    row("random (negatives)", "nothing detected", ok);
  }

  // Near-misses: a regular set with one robot pushed off its ray by far
  // more than the tolerance (but less than a ray gap) must NOT be detected
  // as regular, and the off-ray displacement exceeds the legal shift.
  {
    int ok = 0;
    for (int t = 0; t < kCases; ++t) {
      config::Rng rng(600 + t);
      std::uniform_int_distribution<int> um(7, 12);
      const int m = um(rng);
      std::vector<double> radii(m, 2.0);
      Configuration p = config::equiangularSet(radii, {}, 0.1 * t);
      p[0] = p[0].rotated(0.45 * kTwoPi / m);  // beyond eps = 1/4
      const auto reg = config::checkRegularFreeCenter(p);
      const auto sh = config::shiftedRegularSetOf(p);
      ok += !reg && !sh;
    }
    row("off-ray (near miss)", "rejected", ok);
  }

  table.print();
  return 0;
}
