/// \file bench_chirality.cpp
/// Experiment T4 — the paper's headline contribution: pattern formation
/// WITHOUT common chirality. The Yamauchi-Yamashita-style baseline assumes
/// a shared handedness; ours does not. Each cell runs both algorithms with
/// robot frames (a) all direct (common chirality) and (b) independently
/// reflected with probability 1/2.
///
/// Expected shape: baseline succeeds with chirality and collapses without;
/// ours is unaffected by the ablation.

#include "baseline/yy.h"
#include "bench/common.h"
#include "core/form_pattern.h"

using namespace apf;
using namespace apf::bench;

int main() {
  const int kSeeds = 20;
  core::FormPatternAlgorithm ours;
  baseline::YYAlgorithm yy;

  Table table("T4: chirality ablation (SSYNC, random starts, n = 8 / 12)",
              "bench_chirality.csv",
              {"algorithm", "n", "chirality", "success", "cycles_mean"});

  struct Algo {
    const char* name;
    const sim::Algorithm* algo;
  };
  const Algo algos[] = {{"bramas-tixeuil", &ours}, {"yy-baseline", &yy}};

  for (const auto& [name, algo] : algos) {
    for (std::size_t n : {8, 12}) {
      for (bool chirality : {true, false}) {
        int ok = 0;
        std::vector<double> cycles;
        for (int s = 0; s < kSeeds; ++s) {
          config::Rng rng(100 + s);
          const auto start = config::randomConfiguration(n, rng, 3.0, 0.1);
          const auto pattern = io::randomPatternByName(n, 1000 + s);
          RunSpec spec;
          spec.sched = sched::SchedulerKind::SSync;
          spec.seed = s + 1;
          spec.maxEvents = 300000;
          spec.commonChirality = chirality;
          const auto res = runOnce(start, pattern, *algo, spec);
          ok += res.success;
          if (res.success) {
            cycles.push_back(static_cast<double>(res.metrics.cycles));
          }
        }
        table.row({name, std::to_string(n), chirality ? "common" : "none",
                   std::to_string(ok) + "/" + std::to_string(kSeeds),
                   io::fmt(statsOf(cycles).mean, 0)});
      }
    }
  }
  table.print();
  return 0;
}
