/// \file bench_formation.cpp
/// Experiment T3 (Theorem 2): the full algorithm forms every pattern class
/// from random starts under the ASYNC adversary, for n >= 7. Reports
/// success rates, cycles, distance, and random bits per cell.
///
/// Expected shape: 100% success everywhere; cycles grow superlinearly in n
/// (each robot placement is sequential in phase 2); random bits stay 0 for
/// asymmetric random starts (the election short-circuits through the
/// deterministic Q^c branch).

#include "bench/common.h"
#include "core/form_pattern.h"

using namespace apf;
using namespace apf::bench;

int main() {
  apf::bench::TraceSession trace("bench_formation");
  const int kSeeds = 10;
  core::FormPatternAlgorithm algo;

  Table table("T3: full pattern formation from random starts (ASYNC)",
              "bench_formation.csv",
              {"pattern", "n", "success", "cycles_mean", "cycles_p95",
               "bits_mean", "dist_mean"});

  // Per-cell seeds fan out across the campaign pool (sim/campaign.h);
  // in-order merge keeps every CSV row identical for any APF_JOBS.
  std::vector<int> seeds(kSeeds);
  for (int s = 0; s < kSeeds; ++s) seeds[s] = s;
  long obsBase = 0;

  for (const std::string pat : {"polygon", "star", "grid", "spiral",
                                "random"}) {
    for (std::size_t n : {8, 12, 16}) {
      const auto results = sim::campaignMap(seeds, [&](int s, std::size_t) {
        config::Rng rng(500 + s);
        const auto start = config::randomConfiguration(n, rng, 5.0, 0.1);
        const auto pattern = io::patternByName(pat, n, 40 + s);
        RunSpec spec;
        spec.seed = 13 * s + 2;
        spec.obsIndex = obsBase + s;
        return runOnce(start, pattern, algo, spec);
      });
      obsBase += kSeeds;
      int ok = 0;
      std::vector<double> cycles, bits, dist;
      for (const auto& res : results) {
        ok += res.success;
        if (res.success) {
          cycles.push_back(static_cast<double>(res.metrics.cycles));
          bits.push_back(static_cast<double>(res.metrics.randomBits));
          dist.push_back(res.metrics.distance);
        }
      }
      const Stats cs = statsOf(cycles);
      table.row({pat, std::to_string(n),
                 std::to_string(ok) + "/" + std::to_string(kSeeds),
                 io::fmt(cs.mean, 0), io::fmt(cs.p95, 0),
                 io::fmt(statsOf(bits).mean, 1),
                 io::fmt(statsOf(dist).mean, 1)});
    }
  }
  table.print();

  // Symmetric starts: the probability-1 claim where randomness is REQUIRED.
  Table sym("T3b: formation from symmetric starts (ASYNC)",
            "bench_formation_symmetric.csv",
            {"n", "success", "cycles_mean", "bits_mean"});
  for (std::size_t n : {8, 12, 16}) {
    const auto results = sim::campaignMap(seeds, [&](int s, std::size_t) {
      const auto start = symmetricStart(n, 900 + s);
      const auto pattern = io::randomPatternByName(n, 60 + s);
      RunSpec spec;
      spec.seed = 17 * s + 3;
      spec.obsIndex = obsBase + s;
      return runOnce(start, pattern, algo, spec);
    });
    obsBase += kSeeds;
    int ok = 0;
    std::vector<double> cycles, bits;
    for (const auto& res : results) {
      ok += res.success;
      if (res.success) {
        cycles.push_back(static_cast<double>(res.metrics.cycles));
        bits.push_back(static_cast<double>(res.metrics.randomBits));
      }
    }
    sym.row({std::to_string(n),
             std::to_string(ok) + "/" + std::to_string(kSeeds),
             io::fmt(statsOf(cycles).mean, 0),
             io::fmt(statsOf(bits).mean, 1)});
  }
  sym.print();
  return 0;
}
