/// \file bench_estimate.cpp
/// TE — adaptive estimation throughput bench. Times est::runAdaptive
/// campaigns (src/est/adaptive.h) end to end — seeded trials on the
/// campaign pool, streaming summary merges, sequential stopping — and
/// emits a machine-readable `BENCH_estimate.json` so the estimate-smoke CI
/// job can gate regressions with apf_bench_diff (same row schema as
/// BENCH_perf.json, schema tag "apf.bench_estimate.v1").
///
/// Every adaptive cell is measured serially (jobs = 1) and on the pool,
/// with an in-process determinism cross-check: the two ArmEstimate JSON
/// documents must be byte-identical (the adaptive.h contract). A stopping
/// rule that drifted with the thread count would abort the bench, not
/// just skew a number.
///
/// An estimator microbench times the Clopper–Pearson path (normal
/// quantile + Beta-quantile bisection) — the only estimator with a real
/// inner loop; Wilson and the streaming merges are a handful of flops.
///
/// `--quick` shrinks the sample budgets for the CI smoke job.

#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "baseline/yy.h"
#include "bench/common.h"
#include "core/form_pattern.h"
#include "est/adaptive.h"
#include "obs/json.h"
#include "sim/campaign.h"

using namespace apf;
using namespace apf::bench;

namespace {

struct WorkloadResult {
  std::string workload;
  std::size_t n = 0;
  int jobs = 1;
  int runs = 0;  ///< samples the adaptive run consumed, or micro iterations
  double wallMs = 0.0;
  double perSec = 0.0;   ///< samples (or ops) per second
  double speedup = 1.0;  ///< vs. the serial baseline
};

template <typename F>
double timeMs(F&& f) {
  const std::uint64_t t0 = obs::nowNanos();
  f();
  return static_cast<double>(obs::nowNanos() - t0) / 1e6;
}

/// One arm's Trial: a pure function of (seed, index) building its own
/// start and Engine (the campaign worker contract) — the same wiring as
/// tools/apf_estimate.cpp, shrunk to the bench's fixed experiment.
est::Trial makeTrial(const sim::Algorithm& algo, std::size_t n,
                     const config::Configuration& pattern,
                     std::uint64_t maxEvents, bool chirality) {
  return [&algo, n, pattern, maxEvents, chirality](
             std::uint64_t seed, std::uint64_t) -> est::Sample {
    config::Rng rng(seed + 7);
    const auto start = config::randomConfiguration(n, rng, 5.0, 0.1);
    sim::EngineOptions opts;
    opts.seed = seed;
    opts.maxEvents = maxEvents;
    opts.commonChirality = chirality;
    opts.sched.kind = sched::SchedulerKind::Async;
    sim::Engine engine(start, pattern, algo, opts);
    const sim::RunResult res = engine.run();
    est::Sample s;
    s.success = res.success;
    s.cycles = static_cast<double>(res.metrics.cycles);
    s.events = static_cast<double>(res.metrics.events);
    s.bits = res.metrics.randomBits;
    return s;
  };
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  TraceSession trace("bench_estimate");
  const int parJobs = sim::campaignJobs();

  Table table("TE: adaptive estimation throughput (est::runAdaptive)",
              "bench_estimate.csv",
              {"workload", "n", "jobs", "samples", "wall_ms", "per_sec",
               "speedup", "stop"});
  std::vector<WorkloadResult> out;

  // --- adaptive campaign cells -------------------------------------------
  // form converges on random starts, so its cells exercise the early-stop
  // path (half-width fires well before the budget); yy with common
  // chirality does the same with a far costlier per-trial engine (53-bit
  // uniform draws). The budgets keep full mode under a minute per cell.
  struct Cell {
    const char* name;
    bool yy;  ///< yy-baseline arm (common chirality) instead of form
    std::size_t n;
    std::uint64_t maxEvents;
    std::uint64_t maxSamples;
  };
  const Cell cells[] = {
      {"adaptive_form", false, 8, 200000, 256},
      {"adaptive_form", false, 16, 200000, 128},
      {"adaptive_yy", true, 8, 200000, 256},
  };
  core::FormPatternAlgorithm form;
  baseline::YYAlgorithm yy;

  for (const Cell& cell : cells) {
    const sim::Algorithm& algo =
        cell.yy ? static_cast<const sim::Algorithm&>(yy)
                : static_cast<const sim::Algorithm&>(form);
    const config::Configuration pattern = io::starPattern(cell.n);
    const est::Trial trial =
        makeTrial(algo, cell.n, pattern, cell.maxEvents, cell.yy);

    est::AdaptiveOptions aopts;
    aopts.baseSeed = 9000 + cell.n;
    aopts.stop.batchSize = quick ? 4 : 16;
    aopts.stop.minSamples = quick ? 8 : 32;
    aopts.stop.maxSamples = quick ? 16 : cell.maxSamples;
    aopts.stop.targetHalfWidth = 0.05;

    est::ArmEstimate serial, pooled;
    aopts.jobs = 1;
    const double serialMs =
        timeMs([&] { serial = est::runAdaptive(cell.name, trial, aopts); });
    aopts.jobs = parJobs;
    const double parMs =
        timeMs([&] { pooled = est::runAdaptive(cell.name, trial, aopts); });
    if (serial.toJson() != pooled.toJson()) {
      std::fprintf(stderr,
                   "FATAL: %s n=%zu: pooled adaptive run differs from "
                   "serial (determinism violation)\n",
                   cell.name, cell.n);
      return 1;
    }

    const int samples = static_cast<int>(serial.samples);
    auto emit = [&](int jobs, double wallMs, double speedup) {
      table.row({cell.name, std::to_string(cell.n), std::to_string(jobs),
                 std::to_string(samples), io::fmt(wallMs, 1),
                 io::fmt(1000.0 * samples / wallMs, 2), io::fmt(speedup, 2),
                 est::stopReasonName(serial.stopReason)});
      WorkloadResult w;
      w.workload = cell.name;
      w.n = cell.n;
      w.jobs = jobs;
      w.runs = samples;
      w.wallMs = wallMs;
      w.perSec = 1000.0 * samples / wallMs;
      w.speedup = speedup;
      out.push_back(std::move(w));
    };
    emit(1, serialMs, 1.0);
    emit(parJobs, parMs, serialMs / parMs);
    table.recordRuns(std::string(cell.name) + "_n" + std::to_string(cell.n),
                     serial.samples);
  }

  // --- estimator microbench ----------------------------------------------
  // Clopper–Pearson is a Beta-quantile bisection over the incomplete-beta
  // continued fraction — the one estimator whose cost could silently
  // balloon. Sweep (trials, successes) pairs so both tails and the
  // midrange are hit.
  {
    const int iters = quick ? 2000 : 50000;
    double checksum = 0.0;  // defeat dead-code elimination
    const double cpMs = timeMs([&] {
      for (int i = 0; i < iters; ++i) {
        est::BernoulliSummary s;
        s.trials = 40 + static_cast<std::uint64_t>(i % 200);
        s.successes = static_cast<std::uint64_t>(i) % (s.trials + 1);
        const est::Interval ci = est::clopperPearson(s, 0.95);
        checksum += ci.lo + ci.hi;
      }
    });
    table.row({"clopper_pearson", "-", "1", std::to_string(iters),
               io::fmt(cpMs, 1), io::fmt(1000.0 * iters / cpMs, 2), "1.00",
               "-"});
    table.recordRuns("clopper_pearson", static_cast<std::uint64_t>(iters));
    WorkloadResult w;
    w.workload = "clopper_pearson";
    w.n = 0;
    w.jobs = 1;
    w.runs = iters;
    w.wallMs = cpMs;
    w.perSec = 1000.0 * iters / cpMs;
    out.push_back(std::move(w));
    std::printf("(checksum %.3f)\n", checksum);
  }

  table.print();

  // --- BENCH_estimate.json ------------------------------------------------
  std::string entries;
  for (const WorkloadResult& w : out) {
    obs::JsonObjectWriter jw;
    jw.field("workload", w.workload);
    jw.field("n", static_cast<std::uint64_t>(w.n));
    jw.field("jobs", w.jobs);
    jw.field("runs", w.runs);
    jw.field("wall_ms", w.wallMs);
    jw.field("runs_per_sec", w.perSec);
    jw.field("speedup_vs_serial", w.speedup);
    if (!entries.empty()) entries += ",";
    entries += jw.str();
  }
  obs::JsonObjectWriter top;
  top.field("schema", "apf.bench_estimate.v1");
  top.field("quick", quick);
  top.field("hardware_concurrency",
            static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  top.field("serial_jobs", 1);
  top.field("parallel_jobs", parJobs);
  top.rawField("workloads", "[" + entries + "]");
  const std::string jsonPath = resultsPath("BENCH_estimate.json");
  std::ofstream js(jsonPath);
  js << top.str() << "\n";
  if (!js) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", jsonPath.c_str());
    return 1;
  }
  std::printf("wrote %s\n", jsonPath.c_str());
  return 0;
}
