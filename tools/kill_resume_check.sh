#!/usr/bin/env bash
# Kill-and-resume resilience check (docs/RESILIENCE.md, run nightly by CI):
#
#  1. Runs a journaled apf_sim campaign to completion (the reference).
#  2. Starts the identical campaign on a fresh journal, SIGKILLs it
#     mid-flight (no destructors, no flush beyond the journal's own fsync),
#     appends a torn half-written line to simulate dying mid-append, and
#     resumes with --resume.
#  3. Requires the resumed run's --json document AND its journal file to be
#     byte-identical to the uninterrupted run's, at APF_JOBS=1 and 4.
#  4. Multi-process shard drills (sim/shard.h, docs/API.md): runs the same
#     campaign with `--shards 4`, requiring the merged output and journal
#     to be byte-identical to the single-process reference — uninterrupted,
#     after SIGKILLing one worker process mid-shard (the coordinator must
#     retry it), and after SIGKILLing the coordinator itself (the rerun
#     with --resume must converge with zero re-runs of journaled work).
#  5. Exercises the failure-repro chain end to end: provokes a safety
#     violation with extreme snapshot noise, shrinks it to a .repro.json,
#     and requires `apf_sim --replay` to reproduce it (exit 0).
#
# Usage: kill_resume_check.sh path/to/apf_sim [workdir]
# The apf_worker binary is resolved next to apf_sim (override: APF_WORKER).
set -u

SIM=${1:?usage: kill_resume_check.sh path/to/apf_sim [workdir]}
WORK=${2:-$(mktemp -d)}
mkdir -p "$WORK"
fail() { echo "kill_resume_check: FAIL: $*" >&2; exit 1; }

# Noisy runs never end by quiescence, so every run burns its whole event
# budget — slow enough that the SIGKILL reliably lands mid-campaign.
ARGS=(--algo form --n 8 --campaign 24 --seed 5 --noise 0.05 --max-events 30000 --json)

echo "== reference: uninterrupted journaled campaign =="
APF_JOBS=1 "$SIM" "${ARGS[@]}" --journal "$WORK/full.journal" \
  > "$WORK/full.json" || fail "reference campaign failed"
REF_LINES=$(wc -l < "$WORK/full.journal")
echo "reference journal: $REF_LINES lines"

for JOBS in 1 4; do
  echo "== kill and resume (APF_JOBS=$JOBS) =="
  rm -f "$WORK/killed.journal"
  APF_JOBS=$JOBS "$SIM" "${ARGS[@]}" --journal "$WORK/killed.journal" \
    > /dev/null 2>&1 &
  PID=$!
  # Wait for a few fsync'd entries (header + >= 4 runs), then SIGKILL.
  for _ in $(seq 1 400); do
    [ -f "$WORK/killed.journal" ] &&
      [ "$(wc -l < "$WORK/killed.journal")" -ge 5 ] && break
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.05
  done
  if kill -9 "$PID" 2>/dev/null; then
    wait "$PID" 2>/dev/null
    echo "killed pid $PID with $(wc -l < "$WORK/killed.journal") journal lines"
    # Dying mid-append leaves a torn, unterminated last line; simulate the
    # worst case explicitly so resume always exercises the recovery path.
    printf '{"i":9999,"payl' >> "$WORK/killed.journal"
  else
    wait "$PID" 2>/dev/null
    echo "WARN: campaign finished before the kill landed; resume will replay all"
  fi

  APF_JOBS=$JOBS "$SIM" "${ARGS[@]}" --resume "$WORK/killed.journal" \
    > "$WORK/resumed.json" || fail "resume failed (APF_JOBS=$JOBS)"
  cmp -s "$WORK/resumed.json" "$WORK/full.json" ||
    fail "resumed --json differs from uninterrupted (APF_JOBS=$JOBS)"
  cmp -s "$WORK/killed.journal" "$WORK/full.journal" ||
    fail "resumed journal bytes differ from uninterrupted (APF_JOBS=$JOBS)"
  echo "OK: resumed output and journal byte-identical (APF_JOBS=$JOBS)"
done

WORKER=${APF_WORKER:-$(dirname "$SIM")/apf_worker}
[ -x "$WORKER" ] || fail "apf_worker not found at $WORKER (build it or set APF_WORKER)"
export APF_WORKER="$WORKER"

echo "== sharded: uninterrupted 4-shard campaign =="
rm -rf "$WORK/shards.journal" "$WORK/shards.journal.shards"
APF_JOBS=1 "$SIM" "${ARGS[@]}" --shards 4 --journal "$WORK/shards.journal" \
  > "$WORK/shards.json" || fail "sharded campaign failed"
cmp -s "$WORK/shards.json" "$WORK/full.json" ||
  fail "4-shard --json differs from single-process"
cmp -s "$WORK/shards.journal" "$WORK/full.journal" ||
  fail "4-shard merged journal differs from single-process"
echo "OK: 4-shard output and merged journal byte-identical to single-process"

echo "== sharded: SIGKILL one worker mid-shard =="
rm -rf "$WORK/wkill.journal" "$WORK/wkill.journal.shards"
APF_JOBS=1 "$SIM" "${ARGS[@]}" --shards 4 --journal "$WORK/wkill.journal" \
  > "$WORK/wkill.json" 2> "$WORK/wkill.err" &
PID=$!
KILLED_WORKER=0
for _ in $(seq 1 400); do
  if pkill -9 -o -f "$WORK/wkill.journal.shards" 2>/dev/null; then
    KILLED_WORKER=1
    echo "SIGKILLed the oldest worker process"
    break
  fi
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.05
done
[ "$KILLED_WORKER" -eq 1 ] ||
  echo "WARN: no worker alive to kill; drill degrades to the uninterrupted case"
wait "$PID" || fail "coordinator failed after a worker was SIGKILLed"
cmp -s "$WORK/wkill.json" "$WORK/full.json" ||
  fail "output differs after a worker was SIGKILLed and retried"
cmp -s "$WORK/wkill.journal" "$WORK/full.journal" ||
  fail "merged journal differs after a worker was SIGKILLed and retried"
echo "OK: worker SIGKILL retried; output still byte-identical"

echo "== sharded: SIGKILL the coordinator, resume =="
rm -rf "$WORK/ckill.journal" "$WORK/ckill.journal.shards"
APF_JOBS=1 "$SIM" "${ARGS[@]}" --shards 4 --journal "$WORK/ckill.journal" \
  > /dev/null 2>&1 &
PID=$!
# Wait until at least one shard journal holds fsync'd run entries (header
# plus one run), so the resume has journaled work it must NOT redo.
for _ in $(seq 1 400); do
  ENTRIES=$(cat "$WORK/ckill.journal.shards"/shard-*.journal 2>/dev/null | wc -l)
  [ "$ENTRIES" -ge 5 ] && break
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.05
done
if kill -9 "$PID" 2>/dev/null; then
  wait "$PID" 2>/dev/null
  echo "SIGKILLed the coordinator with $ENTRIES shard journal lines on disk"
else
  wait "$PID" 2>/dev/null
  echo "WARN: sharded campaign finished before the kill landed"
fi
# Workers die with the coordinator (PR_SET_PDEATHSIG); wait out the race
# so the resumed coordinator never contends for a shard journal lock.
for _ in $(seq 1 100); do
  pgrep -f "$WORK/ckill.journal.shards" > /dev/null 2>&1 || break
  sleep 0.05
done
pgrep -f "$WORK/ckill.journal.shards" > /dev/null 2>&1 &&
  fail "orphan workers survived the coordinator SIGKILL"
APF_JOBS=1 "$SIM" "${ARGS[@]}" --shards 4 --resume "$WORK/ckill.journal" \
  > "$WORK/ckill.json" || fail "sharded resume failed"
cmp -s "$WORK/ckill.json" "$WORK/full.json" ||
  fail "resumed sharded --json differs from uninterrupted single-process"
cmp -s "$WORK/ckill.journal" "$WORK/full.journal" ||
  fail "resumed sharded merged journal differs from uninterrupted"
echo "OK: coordinator SIGKILL resumed; output still byte-identical"

echo "== repro chain: provoke -> shrink -> replay =="
# Extreme snapshot noise (sigma 8 on a diameter-10 configuration) reliably
# breaks SEC stability; exit 1 just means "pattern not formed", which is
# expected here — the artifact is the shrunken .repro.json.
"$SIM" --algo form --n 8 --seed 1 --noise 8.0 --max-events 40000 \
  --repro-out "$WORK/case.repro.json" --shrink > /dev/null
RC=$?
[ "$RC" -le 1 ] || fail "repro-provoking run exited $RC"
[ -s "$WORK/case.repro.json" ] || fail "no .repro.json written"
"$SIM" --replay "$WORK/case.repro.json" ||
  fail "minimized repro did not replay its violation"
echo "OK: shrunken repro replays its safety violation"

echo "kill_resume_check: PASS"
