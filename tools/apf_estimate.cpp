/// \file apf_estimate.cpp
/// Adaptive Monte Carlo estimation CLI (docs/STATISTICS.md): runs seeded
/// simulation trials in deterministic batches on the campaign pool,
/// maintains streaming estimates of the success probability (Wilson /
/// Clopper–Pearson), run cost, and random-bit consumption, and stops as
/// soon as a sequential rule is satisfied — instead of guessing a fixed
/// run count. With --ab it runs TWO arms (two algorithms) and prints the
/// comparison gates (Newcombe interval on the success-rate difference,
/// bound separation on the means).
///
/// Everything printed is deterministic: same options + seed produce a
/// byte-identical apf.estimate.v1 document for any --jobs / APF_JOBS
/// (CI's estimate-smoke job byte-compares them), and --journal/--resume
/// replay a killed campaign to the same document.
///
/// Examples:
///   apf_estimate --n 8 --sched async --half-width 0.05
///   apf_estimate --ab --algo rsb --algo-b yy --chirality --sched async
///   apf_estimate --journal est.journal ... ; apf_estimate --resume ...

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "config/generator.h"
#include "est/ab.h"
#include "est/adaptive.h"
#include "io/patterns.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/recorder.h"
#include "sched/seed.h"
#include "sim/engine.h"
#include "sim/supervisor.h"
#include "algo_select.h"
#include "cli_parse.h"

namespace {

struct Options {
  std::uint64_t n = 8;
  std::string pattern = "star";
  std::string startKind = "random";  // random | symmetric
  std::string sched = "async";
  std::string algo = "form";
  std::string algoB = "yy";  // --ab second arm
  bool ab = false;
  std::uint64_t seed = 1;
  double delta = 0.05;
  std::uint64_t maxEvents = 1000000;
  bool multiplicity = false;
  bool commonChirality = false;
  apf::est::StoppingOptions stop;
  int jobs = 0;
  std::string outPath;
  std::string manifestPath;
  std::string jsonlPath;
  std::string journalPath;  // fresh journal (truncates)
  std::string resumePath;   // resume an existing journal
  bool quiet = false;
};

void registerFlags(apf::cli::ArgParser& args, Options& o) {
  using apf::cli::ArgParser;
  args.section("experiment");
  args.u64("--n", &o.n, "N", "robots (default 8)", nullptr,
           /*positive=*/true);
  args.str("--pattern", &o.pattern, "NAME",
           "target pattern (io/patterns.h names; default\nstar)");
  args.str("--start", &o.startKind, "KIND",
           "random|symmetric start per trial (default\nrandom)");
  args.str("--sched", &o.sched, "S", "fsync|ssync|async (default async)");
  args.str("--algo", &o.algo, "A",
           std::string(apf::cli::algorithmNames()) + " (default form)");
  args.flag("--ab", &o.ab,
            "two-arm mode: estimate --algo and --algo-b,\n"
            "print comparison gates");
  args.str("--algo-b", &o.algoB, "A", "second arm for --ab (default yy)");
  args.u64("--seed", &o.seed, "S",
           "base seed; trial i uses sampleSeed(S, i)");
  args.num("--delta", &o.delta, ArgParser::Num::NonNegative, "D",
           "adversary min-move distance (default 0.05)");
  args.u64("--max-events", &o.maxEvents, "N",
           "per-trial event cap (default 1e6)");
  args.flag("--multiplicity", &o.multiplicity,
            "enable multiplicity detection");
  args.flag("--chirality", &o.commonChirality,
            "give all robots a common chirality");

  args.section("stopping rule (evaluated at batch boundaries only)");
  args.u64("--batch", &o.stop.batchSize, "N",
           "samples per batch (default 16)");
  args.u64("--min-samples", &o.stop.minSamples, "N",
           "no early stop before N samples (default 32)");
  args.u64("--max-samples", &o.stop.maxSamples, "N",
           "hard budget (default 512)");
  args.num("--confidence", &o.stop.confidence, ArgParser::Num::Confidence,
           "P", "interval confidence in (0, 1) (default 0.95)");
  args.num("--half-width", &o.stop.targetHalfWidth,
           ArgParser::Num::Probability, "W",
           "stop when the Wilson half-width on the success\n"
           "rate reaches W; 0 disables (default 0.05)");
  args.num("--futility", &o.stop.futilityFloor, ArgParser::Num::Probability,
           "P",
           "stop when the Wilson upper bound falls below\n"
           "P; 0 disables (default 0)");

  args.section("execution");
  args.intNonNegative("--jobs", &o.jobs, "N",
                      "campaign threads (0 = APF_JOBS/hardware); any\n"
                      "value prints the byte-identical report");
  args.str("--journal", &o.journalPath, "F",
           "crash-safe checkpoint journal (fresh file;\n"
           "--ab appends .a/.b per arm)");
  args.str("--resume", &o.resumePath, "F",
           "resume from journal F (completed samples are\n"
           "not re-run; report is byte-identical)");

  args.section("output");
  args.str("--out", &o.outPath, "F", "also write the JSON document to F");
  args.str("--manifest", &o.manifestPath, "F",
           "write est.* manifest (apf_report ingests it)");
  args.str("--jsonl", &o.jsonlPath, "F",
           "write batch_scheduled/estimate_converged\nevents (JSONL)");
  args.flag("--quiet", &o.quiet, "JSON document only, no human summary");
}

/// Builds one arm's Trial closure: a pure function of (seed, index) — its
/// own start configuration, its own Engine, nothing shared (the
/// sim::runCampaign worker contract).
apf::est::Trial makeTrial(const Options& o,
                          const apf::config::Configuration& pattern,
                          apf::sim::Algorithm& algo, bool multiplicity) {
  using namespace apf;
  sim::EngineOptions eopts;
  eopts.maxEvents = o.maxEvents;
  eopts.multiplicityDetection = multiplicity || o.multiplicity;
  eopts.commonChirality = o.commonChirality;
  eopts.sched.delta = o.delta;
  const auto kind = sched::schedulerFromName(o.sched);
  if (!kind) {
    std::fprintf(stderr, "apf_estimate: unknown scheduler: %s\n",
                 o.sched.c_str());
    std::exit(2);
  }
  eopts.sched.kind = *kind;
  const std::string startKind = o.startKind;
  const auto n = static_cast<std::size_t>(o.n);
  return [eopts, startKind, n, pattern, &algo](
             std::uint64_t seed, std::uint64_t) -> est::Sample {
    config::Rng rng(seed + 7);
    config::Configuration start;
    if (startKind == "symmetric") {
      const int rho = static_cast<int>(n) / 2;
      start = config::symmetricConfiguration(rho > 1 ? rho : 2, 2, rng);
    } else {
      start = config::randomConfiguration(n, rng, 5.0, 0.1);
    }
    sim::EngineOptions opts = eopts;
    opts.seed = seed;
    sim::Engine engine(start, pattern, algo, opts);
    const sim::RunResult res = engine.run();
    est::Sample s;
    s.success = res.success;
    s.cycles = static_cast<double>(res.metrics.cycles);
    s.events = static_cast<double>(res.metrics.events);
    s.bits = res.metrics.randomBits;
    return s;
  };
}

/// Arm-defining options as a flat manifest; its JSON is the journal config
/// key (resuming under ANY different option must be refused).
apf::obs::Manifest armConfig(const Options& o, const std::string& label,
                             std::uint64_t baseSeed) {
  apf::obs::Manifest m;
  m.set("campaign", "apf_estimate");
  m.set("algo", label);
  m.set("n", static_cast<std::uint64_t>(o.n));
  m.set("pattern", o.pattern);
  m.set("start", o.startKind);
  m.set("sched", o.sched);
  m.set("base_seed", baseSeed);
  m.set("batch", o.stop.batchSize);
  m.set("min_samples", o.stop.minSamples);
  m.set("max_samples", o.stop.maxSamples);
  m.set("confidence", o.stop.confidence);
  m.set("half_width", o.stop.targetHalfWidth);
  m.set("futility", o.stop.futilityFloor);
  m.set("max_events", o.maxEvents);
  m.set("delta", o.delta);
  m.set("multiplicity", o.multiplicity);
  m.set("chirality", o.commonChirality);
  return m;
}

struct Arm {
  std::string label;
  apf::est::ArmEstimate estimate;
};

Arm runArm(const Options& o, const std::string& algoName,
           std::uint64_t baseSeed, const std::string& journalSuffix,
           apf::obs::Recorder* recorder) {
  using namespace apf;
  bool multiplicity = false;
  std::unique_ptr<sim::Algorithm> algo =
      cli::makeAlgorithm(algoName, multiplicity);
  if (algo == nullptr) {
    std::fprintf(stderr, "apf_estimate: unknown algorithm: %s (want %s)\n",
                 algoName.c_str(), cli::algorithmNames());
    std::exit(2);
  }
  const config::Configuration pattern =
      io::patternByName(o.pattern, o.n, o.seed + 1000);

  std::unique_ptr<sim::CampaignJournal> journal;
  const bool resuming = !o.resumePath.empty();
  const std::string jpath =
      (resuming ? o.resumePath : o.journalPath) + journalSuffix;
  if (jpath != journalSuffix) {  // a journal path was given
    journal = std::make_unique<sim::CampaignJournal>(
        jpath, armConfig(o, algo->name(), baseSeed).toJson(), resuming);
  }

  est::AdaptiveOptions aopts;
  aopts.stop = o.stop;
  aopts.baseSeed = baseSeed;
  aopts.jobs = o.jobs;
  aopts.recorder = recorder;
  aopts.journal = journal.get();

  Arm arm;
  arm.label = algo->name();
  arm.estimate = est::runAdaptive(algo->name(),
                                  makeTrial(o, pattern, *algo, multiplicity),
                                  aopts);
  return arm;
}

void printHuman(const Arm& arm) {
  using apf::est::Interval;
  const apf::est::ArmEstimate& e = arm.estimate;
  const Interval w = apf::est::wilson(e.success, e.confidence);
  const Interval bits = apf::est::empiricalBernstein(e.bits, e.confidence);
  std::printf(
      "arm %-12s %llu/%llu samples in %llu batches, stop=%s%s\n"
      "  success %llu/%llu = %.3f, wilson [%.3f, %.3f] @ %.0f%%\n"
      "  bits mean %.1f, eb [%.1f, %.1f]; cycles mean %.1f; events mean "
      "%.1f\n",
      arm.label.c_str(), static_cast<unsigned long long>(e.samples),
      static_cast<unsigned long long>(e.maxSamples),
      static_cast<unsigned long long>(e.batches),
      apf::est::stopReasonName(e.stopReason),
      e.converged ? " (early)" : "",
      static_cast<unsigned long long>(e.success.successes),
      static_cast<unsigned long long>(e.success.trials), e.success.rate(),
      w.lo, w.hi, 100.0 * e.confidence, e.bits.mean, bits.lo, bits.hi,
      e.cycles.mean, e.events.mean);
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace apf;
  Options o;
  cli::ArgParser args(
      "apf_estimate",
      "adaptive Monte Carlo estimation for APF campaigns\n"
      "(sequential stopping + confidence intervals; docs/STATISTICS.md)");
  registerFlags(args, o);
  args.parse(argc, argv);
  try {
    o.stop.validate();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "apf_estimate: %s\n", e.what());
    return 2;
  }
  if (!o.journalPath.empty() && !o.resumePath.empty()) {
    std::fprintf(stderr,
                 "apf_estimate: --journal and --resume are exclusive\n");
    return 2;
  }

  std::unique_ptr<obs::JsonlRecorder> sink;
  if (!o.jsonlPath.empty()) {
    sink = std::make_unique<obs::JsonlRecorder>(o.jsonlPath);
  }

  // Per-arm base seeds are derived, not shared: two arms must not reuse
  // the same trial seeds (that would correlate them), and the derivation
  // must be a pure function of --seed for reproducibility.
  const std::uint64_t seedA = sched::sampleSeed(o.seed, 0);
  const std::uint64_t seedB = sched::sampleSeed(o.seed, 1);

  const Arm a = runArm(o, o.algo, seedA, o.ab ? ".a" : "", sink.get());
  std::unique_ptr<Arm> b;
  if (o.ab) {
    b = std::make_unique<Arm>(runArm(o, o.algoB, seedB, ".b", sink.get()));
  }
  if (sink != nullptr) sink->flush();

  // The apf.estimate.v1 document. No wall-clock, no thread counts:
  // byte-identical across --jobs values and kill/resume (CI byte-compares).
  obs::JsonObjectWriter top;
  top.field("schema", "apf.estimate.v1");
  top.field("n", static_cast<std::uint64_t>(o.n));
  top.field("pattern", o.pattern);
  top.field("start", o.startKind);
  top.field("sched", o.sched);
  top.field("seed", o.seed);
  if (o.ab) {
    top.rawField("a", a.estimate.toJson());
    top.rawField("b", b->estimate.toJson());
    top.rawField("ab", est::compareArms(a.estimate, b->estimate).toJson());
  } else {
    top.rawField("arm", a.estimate.toJson());
  }
  const std::string doc = top.str();

  if (!o.outPath.empty()) {
    obs::createParentDirs(o.outPath);
    std::FILE* f = std::fopen(o.outPath.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "apf_estimate: cannot write %s\n",
                   o.outPath.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", doc.c_str());
    std::fclose(f);
  }
  if (!o.manifestPath.empty()) {
    obs::Manifest m;
    obs::addBuildInfo(m);
    m.set("tool", "apf_estimate");
    m.merge(armConfig(o, a.label, seedA));
    if (o.ab) {
      est::appendManifest(a.estimate, m, "est.a.");
      est::appendManifest(b->estimate, m, "est.b.");
    } else {
      est::appendManifest(a.estimate, m);
    }
    m.write(o.manifestPath);
  }

  if (!o.quiet) {
    printHuman(a);
    if (o.ab) {
      printHuman(*b);
      const est::AbReport ab = est::compareArms(a.estimate, b->estimate);
      std::printf(
          "A/B (%s vs %s) @ %.0f%%:\n"
          "  success diff %+.3f, newcombe [%+.3f, %+.3f] -> %s\n"
          "  bits   diff %+.1f, bounds [%.1f, %.1f] vs [%.1f, %.1f] -> %s\n"
          "  cycles diff %+.1f -> %s; events diff %+.1f -> %s\n",
          a.label.c_str(), b->label.c_str(), 100.0 * ab.confidence,
          ab.success.diff, ab.success.ci.lo, ab.success.ci.hi,
          est::verdictName(ab.success.verdict), ab.bits.diff, ab.bits.a.lo,
          ab.bits.a.hi, ab.bits.b.lo, ab.bits.b.hi,
          est::verdictName(ab.bits.verdict), ab.cycles.diff,
          est::verdictName(ab.cycles.verdict), ab.events.diff,
          est::verdictName(ab.events.verdict));
    }
  }
  std::printf("%s\n", doc.c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "apf_estimate: %s\n", e.what());
  return 1;
}
