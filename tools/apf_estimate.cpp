/// \file apf_estimate.cpp
/// Adaptive Monte Carlo estimation CLI (docs/STATISTICS.md): runs seeded
/// simulation trials in deterministic batches on the campaign pool,
/// maintains streaming estimates of the success probability (Wilson /
/// Clopper–Pearson), run cost, and random-bit consumption, and stops as
/// soon as a sequential rule is satisfied — instead of guessing a fixed
/// run count. With --ab it runs TWO arms (two algorithms) and prints the
/// comparison gates (Newcombe interval on the success-rate difference,
/// bound separation on the means).
///
/// Everything printed is deterministic: same options + seed produce a
/// byte-identical apf.estimate.v1 document for any --jobs / APF_JOBS
/// (CI's estimate-smoke job byte-compares them), and --journal/--resume
/// replay a killed campaign to the same document.
///
/// Examples:
///   apf_estimate --n 8 --sched async --half-width 0.05
///   apf_estimate --ab --algo rsb --algo-b yy --chirality --sched async
///   apf_estimate --journal est.journal ... ; apf_estimate --resume ...

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "baseline/det_election.h"
#include "baseline/yy.h"
#include "config/generator.h"
#include "core/form_pattern.h"
#include "core/rsb.h"
#include "core/scattering.h"
#include "est/ab.h"
#include "est/adaptive.h"
#include "io/patterns.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/recorder.h"
#include "sched/seed.h"
#include "sim/engine.h"
#include "sim/supervisor.h"
#include "cli_parse.h"

namespace {

struct Options {
  std::size_t n = 8;
  std::string pattern = "star";
  std::string startKind = "random";  // random | symmetric
  std::string sched = "async";
  std::string algo = "form";
  std::string algoB = "yy";  // --ab second arm
  bool ab = false;
  std::uint64_t seed = 1;
  double delta = 0.05;
  std::uint64_t maxEvents = 1000000;
  bool multiplicity = false;
  bool commonChirality = false;
  apf::est::StoppingOptions stop;
  int jobs = 0;
  std::string outPath;
  std::string manifestPath;
  std::string jsonlPath;
  std::string journalPath;  // fresh journal (truncates)
  std::string resumePath;   // resume an existing journal
  bool quiet = false;
};

void usage() {
  std::printf(
      "apf_estimate — adaptive Monte Carlo estimation for APF campaigns\n"
      "(sequential stopping + confidence intervals; docs/STATISTICS.md)\n\n"
      "experiment:\n"
      "  --n N              robots (default 8)\n"
      "  --pattern NAME     target pattern (io/patterns.h names; default\n"
      "                     star)\n"
      "  --start KIND       random|symmetric start per trial (default\n"
      "                     random)\n"
      "  --sched S          fsync|ssync|async (default async)\n"
      "  --algo A           form|rsb|yy|det|scatter-form (default form)\n"
      "  --ab               two-arm mode: estimate --algo and --algo-b,\n"
      "                     print comparison gates\n"
      "  --algo-b A         second arm for --ab (default yy)\n"
      "  --seed S           base seed; trial i uses sampleSeed(S, i)\n"
      "  --delta D          adversary min-move distance (default 0.05)\n"
      "  --max-events N     per-trial event cap (default 1e6)\n"
      "  --multiplicity     enable multiplicity detection\n"
      "  --chirality        give all robots a common chirality\n"
      "stopping rule (evaluated at batch boundaries only):\n"
      "  --batch N          samples per batch (default 16)\n"
      "  --min-samples N    no early stop before N samples (default 32)\n"
      "  --max-samples N    hard budget (default 512)\n"
      "  --confidence P     interval confidence in (0, 1) (default 0.95)\n"
      "  --half-width W     stop when the Wilson half-width on the success\n"
      "                     rate reaches W; 0 disables (default 0.05)\n"
      "  --futility P       stop when the Wilson upper bound falls below\n"
      "                     P; 0 disables (default 0)\n"
      "execution:\n"
      "  --jobs N           campaign threads (0 = APF_JOBS/hardware); any\n"
      "                     value prints the byte-identical report\n"
      "  --journal F        crash-safe checkpoint journal (fresh file;\n"
      "                     --ab appends .a/.b per arm)\n"
      "  --resume F         resume from journal F (completed samples are\n"
      "                     not re-run; report is byte-identical)\n"
      "output:\n"
      "  --out F            also write the JSON document to F\n"
      "  --manifest F       write est.* manifest (apf_report ingests it)\n"
      "  --jsonl F          write batch_scheduled/estimate_converged\n"
      "                     events (JSONL)\n"
      "  --quiet            JSON document only, no human summary\n");
}

double parseProb(const char* flag, const char* s) {
  return apf::cli::parseProb("apf_estimate", flag, s);
}

std::uint64_t parseU64(const char* flag, const char* s) {
  return apf::cli::parseU64("apf_estimate", flag, s);
}

bool parse(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "apf_estimate: missing value for %s\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--n") {
      o.n = static_cast<std::size_t>(parseU64("--n", next("--n")));
      if (o.n == 0) apf::cli::badValue("apf_estimate", "--n", "0",
                                       "at least one robot");
    } else if (a == "--pattern") {
      o.pattern = next("--pattern");
    } else if (a == "--start") {
      o.startKind = next("--start");
    } else if (a == "--sched") {
      o.sched = next("--sched");
    } else if (a == "--algo") {
      o.algo = next("--algo");
    } else if (a == "--algo-b") {
      o.algoB = next("--algo-b");
    } else if (a == "--ab") {
      o.ab = true;
    } else if (a == "--seed") {
      o.seed = parseU64("--seed", next("--seed"));
    } else if (a == "--delta") {
      o.delta = apf::cli::parseNonNegative("apf_estimate", "--delta",
                                           next("--delta"));
    } else if (a == "--max-events") {
      o.maxEvents = parseU64("--max-events", next("--max-events"));
    } else if (a == "--multiplicity") {
      o.multiplicity = true;
    } else if (a == "--chirality") {
      o.commonChirality = true;
    } else if (a == "--batch") {
      o.stop.batchSize = parseU64("--batch", next("--batch"));
    } else if (a == "--min-samples") {
      o.stop.minSamples = parseU64("--min-samples", next("--min-samples"));
    } else if (a == "--max-samples") {
      o.stop.maxSamples = parseU64("--max-samples", next("--max-samples"));
    } else if (a == "--confidence") {
      o.stop.confidence = apf::cli::parseConfidence(
          "apf_estimate", "--confidence", next("--confidence"));
    } else if (a == "--half-width") {
      o.stop.targetHalfWidth = parseProb("--half-width", next("--half-width"));
    } else if (a == "--futility") {
      o.stop.futilityFloor = parseProb("--futility", next("--futility"));
    } else if (a == "--jobs") {
      o.jobs = static_cast<int>(parseU64("--jobs", next("--jobs")));
    } else if (a == "--journal") {
      o.journalPath = next("--journal");
    } else if (a == "--resume") {
      o.resumePath = next("--resume");
    } else if (a == "--out") {
      o.outPath = next("--out");
    } else if (a == "--manifest") {
      o.manifestPath = next("--manifest");
    } else if (a == "--jsonl") {
      o.jsonlPath = next("--jsonl");
    } else if (a == "--quiet") {
      o.quiet = true;
    } else if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "apf_estimate: unknown option: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

std::unique_ptr<apf::sim::Algorithm> makeAlgorithm(const std::string& name,
                                                   bool& multiplicity) {
  using namespace apf;
  if (name == "form") return std::make_unique<core::FormPatternAlgorithm>();
  if (name == "rsb") return std::make_unique<core::RsbOnlyAlgorithm>();
  if (name == "yy") return std::make_unique<baseline::YYAlgorithm>();
  if (name == "det") {
    return std::make_unique<baseline::DeterministicElection>();
  }
  if (name == "scatter-form") {
    multiplicity = true;
    return std::make_unique<core::ScatterThenForm>();
  }
  return nullptr;
}

/// Builds one arm's Trial closure: a pure function of (seed, index) — its
/// own start configuration, its own Engine, nothing shared (the
/// sim::runCampaign worker contract).
apf::est::Trial makeTrial(const Options& o,
                          const apf::config::Configuration& pattern,
                          apf::sim::Algorithm& algo, bool multiplicity) {
  using namespace apf;
  sim::EngineOptions eopts;
  eopts.maxEvents = o.maxEvents;
  eopts.multiplicityDetection = multiplicity || o.multiplicity;
  eopts.commonChirality = o.commonChirality;
  eopts.sched.delta = o.delta;
  const auto kind = sched::schedulerFromName(o.sched);
  if (!kind) {
    std::fprintf(stderr, "apf_estimate: unknown scheduler: %s\n",
                 o.sched.c_str());
    std::exit(2);
  }
  eopts.sched.kind = *kind;
  const std::string startKind = o.startKind;
  const std::size_t n = o.n;
  return [eopts, startKind, n, pattern, &algo](
             std::uint64_t seed, std::uint64_t) -> est::Sample {
    config::Rng rng(seed + 7);
    config::Configuration start;
    if (startKind == "symmetric") {
      const int rho = static_cast<int>(n) / 2;
      start = config::symmetricConfiguration(rho > 1 ? rho : 2, 2, rng);
    } else {
      start = config::randomConfiguration(n, rng, 5.0, 0.1);
    }
    sim::EngineOptions opts = eopts;
    opts.seed = seed;
    sim::Engine engine(start, pattern, algo, opts);
    const sim::RunResult res = engine.run();
    est::Sample s;
    s.success = res.success;
    s.cycles = static_cast<double>(res.metrics.cycles);
    s.events = static_cast<double>(res.metrics.events);
    s.bits = res.metrics.randomBits;
    return s;
  };
}

/// Arm-defining options as a flat manifest; its JSON is the journal config
/// key (resuming under ANY different option must be refused).
apf::obs::Manifest armConfig(const Options& o, const std::string& label,
                             std::uint64_t baseSeed) {
  apf::obs::Manifest m;
  m.set("campaign", "apf_estimate");
  m.set("algo", label);
  m.set("n", static_cast<std::uint64_t>(o.n));
  m.set("pattern", o.pattern);
  m.set("start", o.startKind);
  m.set("sched", o.sched);
  m.set("base_seed", baseSeed);
  m.set("batch", o.stop.batchSize);
  m.set("min_samples", o.stop.minSamples);
  m.set("max_samples", o.stop.maxSamples);
  m.set("confidence", o.stop.confidence);
  m.set("half_width", o.stop.targetHalfWidth);
  m.set("futility", o.stop.futilityFloor);
  m.set("max_events", o.maxEvents);
  m.set("delta", o.delta);
  m.set("multiplicity", o.multiplicity);
  m.set("chirality", o.commonChirality);
  return m;
}

struct Arm {
  std::string label;
  apf::est::ArmEstimate estimate;
};

Arm runArm(const Options& o, const std::string& algoName,
           std::uint64_t baseSeed, const std::string& journalSuffix,
           apf::obs::Recorder* recorder) {
  using namespace apf;
  bool multiplicity = false;
  std::unique_ptr<sim::Algorithm> algo = makeAlgorithm(algoName, multiplicity);
  if (algo == nullptr) {
    std::fprintf(stderr, "apf_estimate: unknown algorithm: %s\n",
                 algoName.c_str());
    std::exit(2);
  }
  const config::Configuration pattern =
      io::patternByName(o.pattern, o.n, o.seed + 1000);

  std::unique_ptr<sim::CampaignJournal> journal;
  const bool resuming = !o.resumePath.empty();
  const std::string jpath =
      (resuming ? o.resumePath : o.journalPath) + journalSuffix;
  if (jpath != journalSuffix) {  // a journal path was given
    journal = std::make_unique<sim::CampaignJournal>(
        jpath, armConfig(o, algo->name(), baseSeed).toJson(), resuming);
  }

  est::AdaptiveOptions aopts;
  aopts.stop = o.stop;
  aopts.baseSeed = baseSeed;
  aopts.jobs = o.jobs;
  aopts.recorder = recorder;
  aopts.journal = journal.get();

  Arm arm;
  arm.label = algo->name();
  arm.estimate = est::runAdaptive(algo->name(),
                                  makeTrial(o, pattern, *algo, multiplicity),
                                  aopts);
  return arm;
}

void printHuman(const Arm& arm) {
  using apf::est::Interval;
  const apf::est::ArmEstimate& e = arm.estimate;
  const Interval w = apf::est::wilson(e.success, e.confidence);
  const Interval bits = apf::est::empiricalBernstein(e.bits, e.confidence);
  std::printf(
      "arm %-12s %llu/%llu samples in %llu batches, stop=%s%s\n"
      "  success %llu/%llu = %.3f, wilson [%.3f, %.3f] @ %.0f%%\n"
      "  bits mean %.1f, eb [%.1f, %.1f]; cycles mean %.1f; events mean "
      "%.1f\n",
      arm.label.c_str(), static_cast<unsigned long long>(e.samples),
      static_cast<unsigned long long>(e.maxSamples),
      static_cast<unsigned long long>(e.batches),
      apf::est::stopReasonName(e.stopReason),
      e.converged ? " (early)" : "",
      static_cast<unsigned long long>(e.success.successes),
      static_cast<unsigned long long>(e.success.trials), e.success.rate(),
      w.lo, w.hi, 100.0 * e.confidence, e.bits.mean, bits.lo, bits.hi,
      e.cycles.mean, e.events.mean);
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace apf;
  Options o;
  if (!parse(argc, argv, o)) {
    usage();
    return 2;
  }
  try {
    o.stop.validate();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "apf_estimate: %s\n", e.what());
    return 2;
  }
  if (!o.journalPath.empty() && !o.resumePath.empty()) {
    std::fprintf(stderr,
                 "apf_estimate: --journal and --resume are exclusive\n");
    return 2;
  }

  std::unique_ptr<obs::JsonlRecorder> sink;
  if (!o.jsonlPath.empty()) {
    sink = std::make_unique<obs::JsonlRecorder>(o.jsonlPath);
  }

  // Per-arm base seeds are derived, not shared: two arms must not reuse
  // the same trial seeds (that would correlate them), and the derivation
  // must be a pure function of --seed for reproducibility.
  const std::uint64_t seedA = sched::sampleSeed(o.seed, 0);
  const std::uint64_t seedB = sched::sampleSeed(o.seed, 1);

  const Arm a = runArm(o, o.algo, seedA, o.ab ? ".a" : "", sink.get());
  std::unique_ptr<Arm> b;
  if (o.ab) {
    b = std::make_unique<Arm>(runArm(o, o.algoB, seedB, ".b", sink.get()));
  }
  if (sink != nullptr) sink->flush();

  // The apf.estimate.v1 document. No wall-clock, no thread counts:
  // byte-identical across --jobs values and kill/resume (CI byte-compares).
  obs::JsonObjectWriter top;
  top.field("schema", "apf.estimate.v1");
  top.field("n", static_cast<std::uint64_t>(o.n));
  top.field("pattern", o.pattern);
  top.field("start", o.startKind);
  top.field("sched", o.sched);
  top.field("seed", o.seed);
  if (o.ab) {
    top.rawField("a", a.estimate.toJson());
    top.rawField("b", b->estimate.toJson());
    top.rawField("ab", est::compareArms(a.estimate, b->estimate).toJson());
  } else {
    top.rawField("arm", a.estimate.toJson());
  }
  const std::string doc = top.str();

  if (!o.outPath.empty()) {
    obs::createParentDirs(o.outPath);
    std::FILE* f = std::fopen(o.outPath.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "apf_estimate: cannot write %s\n",
                   o.outPath.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", doc.c_str());
    std::fclose(f);
  }
  if (!o.manifestPath.empty()) {
    obs::Manifest m;
    obs::addBuildInfo(m);
    m.set("tool", "apf_estimate");
    m.merge(armConfig(o, a.label, seedA));
    if (o.ab) {
      est::appendManifest(a.estimate, m, "est.a.");
      est::appendManifest(b->estimate, m, "est.b.");
    } else {
      est::appendManifest(a.estimate, m);
    }
    m.write(o.manifestPath);
  }

  if (!o.quiet) {
    printHuman(a);
    if (o.ab) {
      printHuman(*b);
      const est::AbReport ab = est::compareArms(a.estimate, b->estimate);
      std::printf(
          "A/B (%s vs %s) @ %.0f%%:\n"
          "  success diff %+.3f, newcombe [%+.3f, %+.3f] -> %s\n"
          "  bits   diff %+.1f, bounds [%.1f, %.1f] vs [%.1f, %.1f] -> %s\n"
          "  cycles diff %+.1f -> %s; events diff %+.1f -> %s\n",
          a.label.c_str(), b->label.c_str(), 100.0 * ab.confidence,
          ab.success.diff, ab.success.ci.lo, ab.success.ci.hi,
          est::verdictName(ab.success.verdict), ab.bits.diff, ab.bits.a.lo,
          ab.bits.a.hi, ab.bits.b.lo, ab.bits.b.hi,
          est::verdictName(ab.bits.verdict), ab.cycles.diff,
          est::verdictName(ab.cycles.verdict), ab.events.diff,
          est::verdictName(ab.events.verdict));
    }
  }
  std::printf("%s\n", doc.c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "apf_estimate: %s\n", e.what());
  return 1;
}
