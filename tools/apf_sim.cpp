/// \file apf_sim.cpp
/// Command-line simulator: run any of the library's algorithms on a chosen
/// start/pattern under a chosen adversary, print the run summary, and
/// optionally dump a trajectory SVG and a trace (position CSV, or Chrome
/// trace-event spans when the --trace file ends in .json).
///
/// Usage examples:
///   apf_sim --n 10 --pattern star --sched async --seed 7
///   apf_sim --start symmetric --pattern random --svg run.svg
///   apf_sim --algo yy --no-chirality            # watch the baseline fail
///   apf_sim --start-file my_start.txt --pattern-file my_pattern.txt
///   apf_sim --jsonl run.jsonl --manifest run.manifest.json   # telemetry
///   apf_sim --json                              # one JSON line for scripts

#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>
#include <string>

#include "baseline/det_election.h"
#include "baseline/yy.h"
#include "config/classify.h"
#include "config/generator.h"
#include "core/form_pattern.h"
#include "core/phases.h"
#include "core/rsb.h"
#include "core/scattering.h"
#include "fault/fault.h"
#include "io/patterns.h"
#include "io/serialize.h"
#include "io/svg.h"
#include "obs/manifest.h"
#include "obs/recorder.h"
#include "obs/span.h"
#include "sim/engine.h"
#include "sim/trace.h"

namespace {

struct Options {
  std::size_t n = 8;
  std::string pattern = "star";
  std::string patternFile;
  std::string startFile;
  std::string startKind = "random";  // random | symmetric
  std::string sched = "async";
  std::string algo = "form";  // form | rsb | yy | det | scatter-form
  std::uint64_t seed = 1;
  double delta = 0.05;
  std::uint64_t maxEvents = 1000000;
  bool multiplicity = false;
  bool commonChirality = false;
  std::string svgPath;
  std::string tracePath;
  std::string jsonlPath;
  std::string manifestPath;
  bool json = false;
  bool quiet = false;
  /// Analyze the start configuration (Definitions 1-3) instead of running.
  bool analyze = false;
  // Fault injection (docs/FAULTS.md). Crash victims/timings are drawn from
  // --fault-seed once n is known; the sensor/compute knobs go straight into
  // the FaultPlan.
  int crashF = 0;
  std::uint64_t crashHorizon = 2000;
  double noiseSigma = 0.0;
  double omitProb = 0.0;
  double multFlipProb = 0.0;
  double dropProb = 0.0;
  double truncProb = 0.0;
  std::uint64_t faultSeed = 0;
  bool faultSeedSet = false;
};

void usage() {
  std::printf(
      "apf_sim — LCM robot simulator for probabilistic asynchronous\n"
      "arbitrary pattern formation (Bramas & Tixeuil, PODC 2016)\n\n"
      "options:\n"
      "  --n N              robots (default 8)\n"
      "  --pattern NAME     polygon|star|grid|spiral|ringcore|random|\n"
      "                     mult|center-mult (default star)\n"
      "  --pattern-file F   load pattern points from file ('x y' per line)\n"
      "  --start KIND       random|symmetric (default random)\n"
      "  --start-file F     load start points from file\n"
      "  --sched S          fsync|ssync|async (default async)\n"
      "  --algo A           form|rsb|yy|det|scatter-form (default form)\n"
      "  --seed S           RNG seed (default 1)\n"
      "  --delta D          adversary min-move distance (default 0.05)\n"
      "  --max-events N     event cap (default 1e6)\n"
      "  --multiplicity     enable multiplicity detection\n"
      "  --chirality        give all robots a common chirality\n"
      "  --svg FILE         write trajectory SVG\n"
      "  --trace FILE       write a position trace CSV; a FILE ending in\n"
      "                     .json instead captures look/compute/move spans\n"
      "                     as Chrome trace-event JSON (chrome://tracing)\n"
      "  --jsonl FILE       write structured event log (JSONL; see\n"
      "                     docs/OBSERVABILITY.md and apf_report)\n"
      "  --manifest FILE    write run manifest (reproducibility record)\n"
      "fault injection (docs/FAULTS.md):\n"
      "  --crash F          crash-stop F random robots (victims/timings\n"
      "                     drawn from --fault-seed)\n"
      "  --crash-horizon N  scheduler-event window for crashes (default\n"
      "                     2000)\n"
      "  --noise S          Gaussian snapshot noise, std dev S (global\n"
      "                     units)\n"
      "  --omit P           omit each observed robot with probability P\n"
      "  --mult-flip P      flip perceived multiplicity with probability P\n"
      "  --drop P           drop a computed path with probability P\n"
      "  --trunc P          truncate a computed path with probability P\n"
      "  --fault-seed S     fault RNG stream seed (default: --seed)\n"
      "  --json             print run manifest + result as one JSON line\n"
      "  --analyze          classify the start configuration and exit\n"
      "  --quiet            summary line only\n");
}

// Numeric argument parsing with validation: every flag rejects garbage,
// trailing junk, and out-of-domain values with a clear message and exit
// code 2 (usage error), instead of surfacing a bare std::stod exception.
[[noreturn]] void badValue(const char* flag, const char* got,
                           const char* want) {
  std::fprintf(stderr, "apf_sim: %s expects %s, got '%s'\n", flag, want, got);
  std::exit(2);
}

double parseDouble(const char* flag, const char* s) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != std::strlen(s)) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    badValue(flag, s, "a number");
  }
}

double parseNonNegative(const char* flag, const char* s) {
  const double v = parseDouble(flag, s);
  if (v < 0.0 || !(v == v)) badValue(flag, s, "a non-negative number");
  return v;
}

double parseProb(const char* flag, const char* s) {
  const double v = parseDouble(flag, s);
  if (v < 0.0 || v > 1.0 || !(v == v)) {
    badValue(flag, s, "a probability in [0, 1]");
  }
  return v;
}

std::uint64_t parseU64(const char* flag, const char* s) {
  if (s[0] == '-') badValue(flag, s, "a non-negative integer");
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(s, &pos);
    if (pos != std::strlen(s)) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    badValue(flag, s, "a non-negative integer");
  }
}

bool parse(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--n") {
      o.n = static_cast<std::size_t>(parseU64("--n", next("--n")));
      if (o.n == 0) badValue("--n", "0", "at least one robot");
    } else if (a == "--pattern") {
      o.pattern = next("--pattern");
    } else if (a == "--pattern-file") {
      o.patternFile = next("--pattern-file");
    } else if (a == "--start") {
      o.startKind = next("--start");
    } else if (a == "--start-file") {
      o.startFile = next("--start-file");
    } else if (a == "--sched") {
      o.sched = next("--sched");
    } else if (a == "--algo") {
      o.algo = next("--algo");
    } else if (a == "--seed") {
      o.seed = parseU64("--seed", next("--seed"));
    } else if (a == "--delta") {
      o.delta = parseNonNegative("--delta", next("--delta"));
    } else if (a == "--max-events") {
      o.maxEvents = parseU64("--max-events", next("--max-events"));
    } else if (a == "--crash") {
      o.crashF = static_cast<int>(parseU64("--crash", next("--crash")));
    } else if (a == "--crash-horizon") {
      o.crashHorizon = parseU64("--crash-horizon", next("--crash-horizon"));
      if (o.crashHorizon == 0) {
        badValue("--crash-horizon", "0", "a positive event count");
      }
    } else if (a == "--noise") {
      o.noiseSigma = parseNonNegative("--noise", next("--noise"));
    } else if (a == "--omit") {
      o.omitProb = parseProb("--omit", next("--omit"));
    } else if (a == "--mult-flip") {
      o.multFlipProb = parseProb("--mult-flip", next("--mult-flip"));
    } else if (a == "--drop") {
      o.dropProb = parseProb("--drop", next("--drop"));
    } else if (a == "--trunc") {
      o.truncProb = parseProb("--trunc", next("--trunc"));
    } else if (a == "--fault-seed") {
      o.faultSeed = parseU64("--fault-seed", next("--fault-seed"));
      o.faultSeedSet = true;
    } else if (a == "--multiplicity") {
      o.multiplicity = true;
    } else if (a == "--chirality") {
      o.commonChirality = true;
    } else if (a == "--svg") {
      o.svgPath = next("--svg");
    } else if (a == "--trace") {
      o.tracePath = next("--trace");
    } else if (a == "--jsonl") {
      o.jsonlPath = next("--jsonl");
    } else if (a == "--manifest") {
      o.manifestPath = next("--manifest");
    } else if (a == "--json") {
      o.json = true;
    } else if (a == "--quiet") {
      o.quiet = true;
    } else if (a == "--analyze") {
      o.analyze = true;
    } else if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace apf;
  Options o;
  if (!parse(argc, argv, o)) {
    usage();
    return 2;
  }

  // Pattern.
  config::Configuration pattern;
  if (!o.patternFile.empty()) {
    pattern = io::loadConfiguration(o.patternFile);
    o.n = pattern.size();
  } else if (o.pattern == "mult") {
    pattern = io::multiplicityPattern(o.n);
    o.multiplicity = true;
  } else if (o.pattern == "center-mult") {
    pattern = io::centerMultiplicityPattern(o.n);
    o.multiplicity = true;
  } else {
    pattern = io::patternByName(o.pattern, o.n, o.seed + 1000);
  }

  // Start.
  config::Configuration start;
  if (!o.startFile.empty()) {
    start = io::loadConfiguration(o.startFile);
  } else if (o.startKind == "symmetric") {
    config::Rng rng(o.seed + 7);
    const int rho = static_cast<int>(o.n) / 2;
    start = config::symmetricConfiguration(rho > 1 ? rho : 2, 2, rng);
  } else {
    config::Rng rng(o.seed + 7);
    start = config::randomConfiguration(o.n, rng, 5.0, 0.1);
  }
  if (o.analyze) {
    const auto report = config::classify(start);
    std::printf("%s", report.describe().c_str());
    return 0;
  }

  if (start.size() != pattern.size()) {
    std::fprintf(stderr, "start has %zu robots but pattern has %zu points\n",
                 start.size(), pattern.size());
    return 2;
  }

  // Algorithm.
  std::unique_ptr<sim::Algorithm> algo;
  if (o.algo == "form") {
    algo = std::make_unique<core::FormPatternAlgorithm>();
  } else if (o.algo == "rsb") {
    algo = std::make_unique<core::RsbOnlyAlgorithm>();
  } else if (o.algo == "yy") {
    algo = std::make_unique<baseline::YYAlgorithm>();
  } else if (o.algo == "det") {
    algo = std::make_unique<baseline::DeterministicElection>();
  } else if (o.algo == "scatter-form") {
    algo = std::make_unique<core::ScatterThenForm>();
    o.multiplicity = true;
  } else {
    std::fprintf(stderr, "unknown algorithm: %s\n", o.algo.c_str());
    return 2;
  }

  sim::EngineOptions opts;
  opts.seed = o.seed;
  opts.maxEvents = o.maxEvents;
  opts.multiplicityDetection = o.multiplicity;
  opts.commonChirality = o.commonChirality;
  opts.sched.delta = o.delta;
  const auto kind = sched::schedulerFromName(o.sched);
  if (!kind) {
    std::fprintf(stderr, "unknown scheduler: %s\n", o.sched.c_str());
    return 2;
  }
  opts.sched.kind = *kind;

  // Fault plan (empty by default — the engine is then bit-identical to a
  // fault-free build). Crash victims/timings are drawn here so the summary
  // and manifest record the concrete plan, not just "F crashes".
  const std::uint64_t faultSeed = o.faultSeedSet ? o.faultSeed : o.seed;
  if (o.crashF > 0) {
    if (static_cast<std::size_t>(o.crashF) >= start.size()) {
      std::fprintf(stderr,
                   "apf_sim: --crash %d must leave at least one live robot "
                   "(n = %zu)\n",
                   o.crashF, start.size());
      return 2;
    }
    opts.fault = fault::planWithRandomCrashes(start.size(), o.crashF,
                                              faultSeed, o.crashHorizon);
  }
  opts.fault.noiseSigma = o.noiseSigma;
  opts.fault.omitProb = o.omitProb;
  opts.fault.multFlipProb = o.multFlipProb;
  opts.fault.dropProb = o.dropProb;
  opts.fault.truncProb = o.truncProb;
  opts.fault.seed = faultSeed;

  std::unique_ptr<obs::JsonlRecorder> sink;
  if (!o.jsonlPath.empty()) {
    sink = std::make_unique<obs::JsonlRecorder>(o.jsonlPath);
    opts.recorder = sink.get();
  }
  opts.collectTimings =
      !o.jsonlPath.empty() || !o.manifestPath.empty() || o.json;

  // --trace dispatches on extension: .json = Chrome trace-event spans,
  // anything else = the legacy position CSV.
  const bool chromeTrace =
      o.tracePath.size() >= 5 &&
      o.tracePath.compare(o.tracePath.size() - 5, 5, ".json") == 0;

  sim::Engine engine(start, pattern, *algo, opts);
  sim::Trace trace;
  if (!o.svgPath.empty() || (!o.tracePath.empty() && !chromeTrace)) {
    trace.attach(engine);
  }

  std::unique_ptr<obs::SpanCollector> spans;
  if (chromeTrace) {
    spans = std::make_unique<obs::SpanCollector>();
    spans->install();
  }
  const sim::RunResult res = engine.run();
  if (spans != nullptr) {
    obs::SpanCollector::uninstall();
    spans->writeChromeTrace(o.tracePath);
  }

  const std::string patternLabel =
      !o.patternFile.empty() ? o.patternFile : o.pattern;
  obs::Manifest manifest =
      sim::describeRun(opts, algo->name(), patternLabel, start.size());
  sim::appendResult(manifest, res);
  if (!o.manifestPath.empty()) manifest.write(o.manifestPath);

  if (o.json) {
    std::printf("%s\n", manifest.toJson().c_str());
  } else {
    std::printf(
        "algo=%s n=%zu sched=%s seed=%llu  terminated=%s success=%s "
        "outcome=%s  cycles=%llu bits=%llu distance=%.2f\n",
        algo->name().c_str(), start.size(), o.sched.c_str(),
        static_cast<unsigned long long>(o.seed),
        res.terminated ? "yes" : "no", res.success ? "yes" : "no",
        sim::outcomeName(res.outcome),
        static_cast<unsigned long long>(res.metrics.cycles),
        static_cast<unsigned long long>(res.metrics.randomBits),
        res.metrics.distance);
    if (opts.fault.active()) {
      std::printf("  faults: crashed=%llu injected=%llu\n",
                  static_cast<unsigned long long>(res.metrics.crashed),
                  static_cast<unsigned long long>(res.metrics.faultsInjected));
    }
    if (!o.quiet) {
      for (const auto& [tag, cnt] : res.metrics.phaseActivations) {
        std::printf("  %-16s %llu\n", core::phaseName(tag),
                    static_cast<unsigned long long>(cnt));
      }
    }
  }

  if (!o.tracePath.empty() && !chromeTrace) trace.writeCsv(o.tracePath);
  if (!o.svgPath.empty()) {
    io::SvgScene scene;
    for (auto& t : trace.trails()) scene.addTrail(std::move(t));
    scene.addLayer({start, "#999", 0.05, true});
    scene.addLayer({engine.positions(), "#1f77b4", 0.06, false});
    scene.write(o.svgPath);
  }
  return res.success ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "apf_sim: %s\n", e.what());
  return 1;
}
