/// \file apf_sim.cpp
/// Command-line simulator: run any of the library's algorithms on a chosen
/// start/pattern under a chosen adversary, print the run summary, and
/// optionally dump a trajectory SVG and a trace (position CSV, or Chrome
/// trace-event spans when the --trace file ends in .json).
///
/// Usage examples:
///   apf_sim --n 10 --pattern star --sched async --seed 7
///   apf_sim --start symmetric --pattern random --svg run.svg
///   apf_sim --algo yy --no-chirality            # watch the baseline fail
///   apf_sim --start-file my_start.txt --pattern-file my_pattern.txt
///   apf_sim --jsonl run.jsonl --manifest run.manifest.json   # telemetry
///   apf_sim --json                              # one JSON line for scripts
///
/// Supervised campaigns (docs/RESILIENCE.md): --campaign N runs N seeded
/// runs on the campaign pool under watchdog deadlines, bounded retry, and
/// quarantine; --journal/--resume add a crash-safe checkpoint so a killed
/// campaign continues where it stopped and merges bit-identical to an
/// uninterrupted one:
///   apf_sim --campaign 50 --journal c.journal --json > out.json
///   apf_sim --campaign 50 --resume  c.journal --json > out.json
/// With --shards K the same campaign fans out over K apf_worker PROCESSES
/// (sim/shard.h, docs/API.md): the options compile into an apf.shard.v1
/// spec, each worker journals its slice, and the merged journal plus the
/// printed --json document are byte-identical to the single-process run's
/// — including after SIGKILLing a worker or this coordinator and
/// re-running with --resume:
///   apf_sim --campaign 50 --shards 4 --journal c.journal --json
/// Failure repro (sim/shrink.h): --repro-out captures a run's replay
/// coordinates as a self-contained .repro.json (minimized with --shrink),
/// and --replay re-executes one, exiting 0 iff the violation reproduces.

#include <cstdio>
#include <cstring>
#include <exception>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "config/classify.h"
#include "config/generator.h"
#include "core/phases.h"
#include "fault/fault.h"
#include "io/patterns.h"
#include "io/serialize.h"
#include "io/svg.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/recorder.h"
#include "obs/span.h"
#include "sim/engine.h"
#include "sim/shard.h"
#include "sim/shrink.h"
#include "sim/supervisor.h"
#include "sim/trace.h"
#include "algo_select.h"
#include "cli_parse.h"

namespace {

struct Options {
  std::uint64_t n = 8;
  std::string pattern = "star";
  std::string patternFile;
  std::string startFile;
  std::string startKind = "random";  // random | symmetric
  std::string sched = "async";
  std::string algo = "form";  // form | rsb | yy | det | scatter-form
  std::uint64_t seed = 1;
  double delta = 0.05;
  std::uint64_t maxEvents = 1000000;
  bool multiplicity = false;
  bool commonChirality = false;
  std::string svgPath;
  std::string tracePath;
  std::string jsonlPath;
  std::string manifestPath;
  bool json = false;
  bool quiet = false;
  /// Analyze the start configuration (Definitions 1-3) instead of running.
  bool analyze = false;
  // Fault injection (docs/FAULTS.md). Crash victims/timings are drawn from
  // --fault-seed once n is known; the sensor/compute knobs go straight into
  // the FaultPlan.
  int crashF = 0;
  std::uint64_t crashHorizon = 2000;
  double noiseSigma = 0.0;
  double omitProb = 0.0;
  double multFlipProb = 0.0;
  double dropProb = 0.0;
  double truncProb = 0.0;
  std::uint64_t faultSeed = 0;
  bool faultSeedSet = false;
  // Supervised campaigns (docs/RESILIENCE.md).
  std::uint64_t campaignRuns = 0;  // 0 = single-run mode
  std::string journalPath;         // fresh journal (truncates)
  std::string resumePath;          // resume an existing journal
  std::uint64_t watchdogEvents = 0;
  std::uint64_t watchdogMs = 0;
  int retries = 2;
  std::string quarantinePath;
  // Multi-process sharding (sim/shard.h, docs/API.md).
  int shards = 0;  // 0 = in-process campaign
  std::string workerPath;
  std::uint64_t shardWallMs = 0;
  int shardRetries = 2;
  // Failure repro (sim/shrink.h).
  std::string replayPath;
  std::string reproOutPath;
  bool doShrink = false;
};

void registerFlags(apf::cli::ArgParser& args, Options& o) {
  using apf::cli::ArgParser;
  args.u64("--n", &o.n, "N", "robots (default 8)", nullptr,
           /*positive=*/true);
  args.str("--pattern", &o.pattern, "NAME",
           "polygon|star|grid|spiral|ringcore|random|\n"
           "mult|center-mult (default star)");
  args.str("--pattern-file", &o.patternFile, "F",
           "load pattern points from file ('x y' per line)");
  args.str("--start", &o.startKind, "KIND",
           "random|symmetric (default random)");
  args.str("--start-file", &o.startFile, "F", "load start points from file");
  args.str("--sched", &o.sched, "S", "fsync|ssync|async (default async)");
  args.str("--algo", &o.algo, "A",
           std::string(apf::cli::algorithmNames()) + " (default form)");
  args.u64("--seed", &o.seed, "S", "RNG seed (default 1)");
  args.num("--delta", &o.delta, ArgParser::Num::NonNegative, "D",
           "adversary min-move distance (default 0.05)");
  args.u64("--max-events", &o.maxEvents, "N", "event cap (default 1e6)");
  args.flag("--multiplicity", &o.multiplicity,
            "enable multiplicity detection");
  args.flag("--chirality", &o.commonChirality,
            "give all robots a common chirality");
  args.str("--svg", &o.svgPath, "FILE", "write trajectory SVG");
  args.str("--trace", &o.tracePath, "FILE",
           "write a position trace CSV; a FILE ending in\n"
           ".json instead captures look/compute/move spans\n"
           "as Chrome trace-event JSON (chrome://tracing)");
  args.str("--jsonl", &o.jsonlPath, "FILE",
           "write structured event log (JSONL; see\n"
           "docs/OBSERVABILITY.md and apf_report)");
  args.str("--manifest", &o.manifestPath, "FILE",
           "write run manifest (reproducibility record)");

  args.section("fault injection (docs/FAULTS.md)");
  args.intNonNegative("--crash", &o.crashF, "F",
                      "crash-stop F random robots (victims/timings\n"
                      "drawn from --fault-seed)");
  args.u64("--crash-horizon", &o.crashHorizon, "N",
           "scheduler-event window for crashes (default\n2000)",
           nullptr, /*positive=*/true);
  args.num("--noise", &o.noiseSigma, ArgParser::Num::NonNegative, "S",
           "Gaussian snapshot noise, std dev S (global\nunits)");
  args.num("--omit", &o.omitProb, ArgParser::Num::Probability, "P",
           "omit each observed robot with probability P");
  args.num("--mult-flip", &o.multFlipProb, ArgParser::Num::Probability, "P",
           "flip perceived multiplicity with probability P");
  args.num("--drop", &o.dropProb, ArgParser::Num::Probability, "P",
           "drop a computed path with probability P");
  args.num("--trunc", &o.truncProb, ArgParser::Num::Probability, "P",
           "truncate a computed path with probability P");
  args.u64("--fault-seed", &o.faultSeed, "S",
           "fault RNG stream seed (default: --seed)", &o.faultSeedSet);

  args.section("supervised campaigns (docs/RESILIENCE.md)");
  args.u64("--campaign", &o.campaignRuns, "N",
           "run N seeded runs (seeds --seed..+N-1) on the\n"
           "campaign pool under the supervisor; exit 0 iff\n"
           "nothing was quarantined",
           nullptr, /*positive=*/true);
  args.str("--journal", &o.journalPath, "F",
           "crash-safe checkpoint journal (fresh file)");
  args.str("--resume", &o.resumePath, "F",
           "resume from journal F (skips completed runs;\n"
           "merges bit-identical to an uninterrupted\ncampaign)");
  args.u64("--watchdog-events", &o.watchdogEvents, "N",
           "per-attempt cycle budget (deterministic;\n"
           "also applies to single runs, exit code 3)");
  args.u64("--watchdog-ms", &o.watchdogMs, "N",
           "per-attempt wall budget (nondeterministic)");
  args.intNonNegative("--retries", &o.retries, "N",
                      "retry budget per run (default 2; attempt 1\n"
                      "reuses the same seed to prove determinism)");
  args.str("--quarantine", &o.quarantinePath, "F",
           "write the supervisor report JSON to F");

  args.section("multi-process sharding (sim/shard.h, docs/API.md)");
  args.intNonNegative("--shards", &o.shards, "K",
                      "fan the campaign out over K apf_worker\n"
                      "processes (needs --journal or --resume; the\n"
                      "merged journal and --json document are\n"
                      "byte-identical to the in-process run's)");
  args.str("--worker", &o.workerPath, "PATH",
           "apf_worker binary (default: $APF_WORKER, then\n"
           "next to this executable)");
  args.u64("--shard-wall-ms", &o.shardWallMs, "N",
           "per-attempt wall budget for each worker\n"
           "process; on expiry the worker is SIGKILLed and\n"
           "retried from its shard journal (0 = none)");
  args.intNonNegative("--shard-retries", &o.shardRetries, "N",
                      "process-level retry budget per shard (default 2)");

  args.section("failure repro (sim/shrink.h)");
  args.str("--replay", &o.replayPath, "F",
           "re-execute a .repro.json; exit 0 iff the\n"
           "recorded violation reproduces");
  args.str("--repro-out", &o.reproOutPath, "F",
           "write this run's replay coordinates as a\n"
           "self-contained .repro.json");
  args.flag("--shrink", &o.doShrink,
            "minimize the repro before writing (delta\n"
            "debugging; only with --repro-out)");

  args.section("general");
  args.flag("--json", &o.json,
            "print run manifest + result as one JSON line");
  args.flag("--analyze", &o.analyze,
            "classify the start configuration and exit");
  args.flag("--quiet", &o.quiet, "summary line only");
}

/// Compiles the CLI options into the versioned wire spec (apf.shard.v1)
/// that defines a campaign — the single source of truth for BOTH the
/// in-process pool and apf_worker processes, and (as canonical JSON) the
/// journal config key. `spec.algo` carries the CLI spelling, not
/// Algorithm::name(): a worker re-instantiates it via the same
/// cli::makeAlgorithm table.
apf::sim::ShardSpec specFromOptions(const Options& o,
                                    const apf::config::Configuration& pattern,
                                    const apf::config::Configuration& start,
                                    const std::string& patternLabel,
                                    apf::sched::SchedulerKind sched) {
  apf::sim::ShardSpec spec;
  spec.algo = o.algo;
  spec.n = static_cast<std::size_t>(o.n);
  spec.patternLabel = patternLabel;
  spec.pattern = pattern;
  if (!o.startFile.empty()) {
    spec.startKind = "points";
    spec.start = start;
  } else {
    spec.startKind = o.startKind;
  }
  spec.sched = sched;
  spec.baseSeed = o.seed;
  spec.runs = o.campaignRuns;
  spec.maxEvents = o.maxEvents;
  spec.delta = o.delta;
  spec.multiplicity = o.multiplicity;
  spec.commonChirality = o.commonChirality;
  spec.crashF = o.crashF;
  spec.crashHorizon = o.crashHorizon;
  // Base plan: sensor/compute knobs + fault-stream seed only. Crash
  // victims/timings are re-drawn per run from the effective seed (or the
  // pinned fault seed) inside runScenarioPayload.
  spec.fault.noiseSigma = o.noiseSigma;
  spec.fault.omitProb = o.omitProb;
  spec.fault.multFlipProb = o.multFlipProb;
  spec.fault.dropProb = o.dropProb;
  spec.fault.truncProb = o.truncProb;
  spec.fault.seed = o.faultSeedSet ? o.faultSeed : o.seed;
  spec.faultSeedSet = o.faultSeedSet;
  spec.watchdogEvents = o.watchdogEvents;
  spec.watchdogMs = o.watchdogMs;
  spec.retries = o.retries;
  return spec;
}

/// The campaign-describing manifest fields, derived from the wire spec so
/// sharded and in-process manifests cannot differ.
apf::obs::Manifest campaignManifest(const apf::sim::ShardSpec& spec,
                                    const std::string& algoName) {
  apf::obs::Manifest m;
  m.set("campaign", "apf_sim");
  m.set("algo", algoName);
  m.set("n", static_cast<std::uint64_t>(spec.n));
  m.set("pattern", spec.patternLabel);
  m.set("start", spec.startKind);
  m.set("sched", apf::sched::schedulerName(spec.sched));
  m.set("seed", spec.baseSeed);
  m.set("runs", spec.runs);
  m.set("max_events", spec.maxEvents);
  m.set("delta", spec.delta);
  m.set("multiplicity", spec.multiplicity);
  m.set("chirality", spec.commonChirality);
  m.set("crash_f", spec.crashF);
  m.set("crash_horizon", spec.crashHorizon);
  m.set("fault", apf::fault::toJson(spec.fault));
  return m;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace apf;
  Options o;
  cli::ArgParser args(
      "apf_sim",
      "LCM robot simulator for probabilistic asynchronous\n"
      "arbitrary pattern formation (Bramas & Tixeuil, PODC 2016)");
  registerFlags(args, o);
  args.exitNotes(", 3 watchdog expired");
  args.parse(argc, argv);

  // --replay re-executes a self-contained .repro.json exactly (same safety
  // observer as the fuzzer) and reports whether the recorded violation
  // reproduces. Every run coordinate comes from the file, not the CLI.
  if (!o.replayPath.empty()) {
    const sim::ReproCase repro = sim::loadRepro(o.replayPath);
    bool ignoredMult = false;
    const auto replayAlgo = cli::makeAlgorithm(repro.algo, ignoredMult);
    if (replayAlgo == nullptr) {
      std::fprintf(stderr, "apf_sim: repro names unknown algorithm '%s'\n",
                   repro.algo.c_str());
      return 2;
    }
    const sim::ReplayResult r = sim::replay(repro, *replayAlgo);
    const bool ok = r.reproduces(repro);
    std::printf(
        "replay %s: algo=%s n=%zu expect=%s -> %s\n", o.replayPath.c_str(),
        repro.algo.c_str(), repro.start.size(),
        repro.violationKind.empty() ? "(any violation)"
                                    : repro.violationKind.c_str(),
        ok ? "REPRODUCED" : (r.violated ? "different violation" : "clean"));
    if (r.violated && !o.quiet) {
      std::printf("  %s at event %llu: %s\n", r.violationKind.c_str(),
                  static_cast<unsigned long long>(r.violationEvent),
                  r.violation.c_str());
    }
    return ok ? 0 : 1;
  }

  // Pattern.
  config::Configuration pattern;
  if (!o.patternFile.empty()) {
    pattern = io::loadConfiguration(o.patternFile);
    o.n = pattern.size();
  } else if (o.pattern == "mult") {
    pattern = io::multiplicityPattern(o.n);
    o.multiplicity = true;
  } else if (o.pattern == "center-mult") {
    pattern = io::centerMultiplicityPattern(o.n);
    o.multiplicity = true;
  } else {
    pattern = io::patternByName(o.pattern, o.n, o.seed + 1000);
  }

  // Start.
  config::Configuration start;
  if (!o.startFile.empty()) {
    start = io::loadConfiguration(o.startFile);
  } else if (o.startKind == "symmetric") {
    config::Rng rng(o.seed + 7);
    const int rho = static_cast<int>(o.n) / 2;
    start = config::symmetricConfiguration(rho > 1 ? rho : 2, 2, rng);
  } else {
    config::Rng rng(o.seed + 7);
    start = config::randomConfiguration(o.n, rng, 5.0, 0.1);
  }
  if (o.analyze) {
    const auto report = config::classify(start);
    std::printf("%s", report.describe().c_str());
    return 0;
  }

  if (start.size() != pattern.size()) {
    std::fprintf(stderr, "start has %zu robots but pattern has %zu points\n",
                 start.size(), pattern.size());
    return 2;
  }

  // Algorithm.
  std::unique_ptr<sim::Algorithm> algo =
      cli::makeAlgorithm(o.algo, o.multiplicity);
  if (algo == nullptr) {
    std::fprintf(stderr, "unknown algorithm: %s (want %s)\n", o.algo.c_str(),
                 cli::algorithmNames());
    return 2;
  }

  sim::EngineOptions opts;
  opts.seed = o.seed;
  opts.maxEvents = o.maxEvents;
  opts.multiplicityDetection = o.multiplicity;
  opts.commonChirality = o.commonChirality;
  opts.sched.delta = o.delta;
  const auto kind = sched::schedulerFromName(o.sched);
  if (!kind) {
    std::fprintf(stderr, "unknown scheduler: %s\n", o.sched.c_str());
    return 2;
  }
  opts.sched.kind = *kind;

  // Fault plan (empty by default — the engine is then bit-identical to a
  // fault-free build). Crash victims/timings are drawn here so the summary
  // and manifest record the concrete plan, not just "F crashes".
  const std::uint64_t faultSeed = o.faultSeedSet ? o.faultSeed : o.seed;
  if (o.crashF > 0) {
    if (static_cast<std::size_t>(o.crashF) >= start.size()) {
      std::fprintf(stderr,
                   "apf_sim: --crash %d must leave at least one live robot "
                   "(n = %zu)\n",
                   o.crashF, start.size());
      return 2;
    }
    opts.fault = fault::planWithRandomCrashes(start.size(), o.crashF,
                                              faultSeed, o.crashHorizon);
  }
  opts.fault.noiseSigma = o.noiseSigma;
  opts.fault.omitProb = o.omitProb;
  opts.fault.multFlipProb = o.multFlipProb;
  opts.fault.dropProb = o.dropProb;
  opts.fault.truncProb = o.truncProb;
  opts.fault.seed = faultSeed;

  std::unique_ptr<obs::JsonlRecorder> sink;
  if (!o.jsonlPath.empty()) {
    sink = std::make_unique<obs::JsonlRecorder>(o.jsonlPath);
    opts.recorder = sink.get();
  }
  opts.collectTimings =
      !o.jsonlPath.empty() || !o.manifestPath.empty() || o.json;

  // ------------------------------------------------ supervised campaign --
  if (o.campaignRuns > 0) {
    const std::string patternLabel =
        !o.patternFile.empty() ? o.patternFile : o.pattern;
    const sim::ShardSpec spec =
        specFromOptions(o, pattern, start, patternLabel, *kind);
    if (const std::string why = sim::validateShardSpec(spec); !why.empty()) {
      std::fprintf(stderr, "apf_sim: invalid campaign: %s\n", why.c_str());
      return 2;
    }
    // The spec's canonical JSON is the journal config key: resuming with
    // ANY different option is a different experiment and must be refused,
    // not silently merged — and a journal written by apf_worker carries the
    // byte-identical key, so in-process and sharded journals interoperate.
    const std::string configKey = sim::shardConfigKey(spec);
    const bool resuming = !o.resumePath.empty();
    const std::string jpath = resuming ? o.resumePath : o.journalPath;

    const sim::SupervisorOptions sopts =
        sim::shardSupervisorOptions(spec, sink.get());
    std::vector<std::string> payloads(spec.runs);
    sim::SupervisorReport report;
    std::unique_ptr<sim::CampaignJournal> journal;
    bool shardsOk = true;

    if (o.shards > 0) {
      // Multi-process mode: fan out over apf_worker processes. The shard
      // scratch space (spec, per-shard journals/reports/logs) lives next to
      // the merged journal, which is why a journal path is required.
      if (jpath.empty()) {
        std::fprintf(stderr,
                     "apf_sim: --shards needs --journal F (fresh) or "
                     "--resume F\n");
        return 2;
      }
      sim::CoordinatorOptions copts;
      copts.workerPath = o.workerPath;
      copts.shards = static_cast<unsigned>(o.shards);
      copts.workDir = jpath + ".shards";
      copts.workerWallBudgetNanos = o.shardWallMs * 1'000'000ull;
      copts.maxRetries = o.shardRetries;
      copts.resume = resuming;
      copts.verbose = !o.quiet;
      copts.mergedJournalPath = jpath;
      const sim::CoordinatorReport creport =
          sim::runShardedCampaign(spec, copts);
      shardsOk = creport.allShardsOk();
      report = creport.runs;
      // Payloads come back from the merged journal — the same decode path
      // a resumed in-process campaign replays through.
      journal = std::make_unique<sim::CampaignJournal>(jpath, configKey,
                                                       /*resume=*/true);
      for (std::uint64_t i = 0; i < spec.runs; ++i) {
        if (const std::string* p =
                journal->payload(static_cast<std::size_t>(i))) {
          payloads[static_cast<std::size_t>(i)] = *p;
        }
      }
    } else {
      if (!jpath.empty()) {
        journal = std::make_unique<sim::CampaignJournal>(jpath, configKey,
                                                         resuming);
      }
      report = sim::runShard(spec, *algo, 0, spec.runs, journal.get(),
                             sink.get(), /*jobs=*/0, /*stats=*/nullptr,
                             &payloads);
    }

    if (!o.quarantinePath.empty()) report.write(o.quarantinePath);
    if (!o.manifestPath.empty()) {
      obs::Manifest m;
      obs::addBuildInfo(m);
      m.set("tool", "apf_sim.campaign");
      m.merge(campaignManifest(spec, algo->name()));
      // The resume/shard-invariant variant: fresh-vs-replayed collapses
      // into supervisor.finished, so this manifest is byte-identical for
      // uninterrupted, resumed, and K-shard executions of the same spec.
      sim::appendManifestInvariant(sopts, report, m);
      m.write(o.manifestPath);
    }

    std::map<std::string, int> outcomes;
    for (const std::string& p : payloads) {
      if (p.empty()) continue;  // quarantined run: no payload
      const auto obj = obs::parseFlatObject(p);
      if (!obj) continue;
      const auto it = obj->find("outcome");
      if (it != obj->end()) outcomes[it->second.asString("?")] += 1;
    }

    if (o.json) {
      // Deliberately free of wall-clock fields AND of the fresh-vs-replayed
      // split (only their sum is invariant): a resumed campaign must print
      // a document byte-identical to an uninterrupted one's — the CI
      // kill-and-resume check diffs them directly, and the sharded drill
      // diffs a 4-process run against APF_JOBS=1. The split lives in the
      // human output and the --quarantine report.
      obs::JsonObjectWriter top;
      top.field("schema", "apf.campaign.v1");
      top.field("runs", o.campaignRuns);
      top.field("finished", report.completed + report.replayed);
      top.field("retries", report.retries);
      top.field("quarantined", report.quarantined);
      obs::JsonObjectWriter byOutcome;
      for (const auto& [name, count] : outcomes) {
        byOutcome.field(name, count);
      }
      top.rawField("outcomes", byOutcome.str());
      std::string rows;
      for (std::size_t i = 0; i < payloads.size(); ++i) {
        if (i) rows += ',';
        rows += payloads[i].empty() ? "null" : payloads[i];
      }
      top.rawField("results", "[" + rows + "]");
      std::printf("%s\n", top.str().c_str());
    } else {
      std::printf(
          "campaign: %llu runs  algo=%s n=%zu sched=%s seeds=%llu..%llu%s\n"
          "  completed=%llu replayed=%llu retries=%llu quarantined=%llu\n",
          static_cast<unsigned long long>(o.campaignRuns),
          algo->name().c_str(), static_cast<std::size_t>(o.n),
          o.sched.c_str(), static_cast<unsigned long long>(o.seed),
          static_cast<unsigned long long>(o.seed + o.campaignRuns - 1),
          o.shards > 0 ? (" shards=" + std::to_string(o.shards)).c_str()
                       : "",
          static_cast<unsigned long long>(report.completed),
          static_cast<unsigned long long>(report.replayed),
          static_cast<unsigned long long>(report.retries),
          static_cast<unsigned long long>(report.quarantined));
      std::printf("  outcomes:");
      for (const auto& [name, count] : outcomes) {
        std::printf("  %s=%d", name.c_str(), count);
      }
      std::printf("\n");
      if (journal != nullptr) {
        std::printf("  journal: %s (%zu entries%s)\n",
                    journal->path().c_str(), journal->completedCount(),
                    journal->recoveredTornLine() ? ", recovered torn tail"
                                                 : "");
      }
      for (const sim::QuarantinedItem& q : report.quarantine) {
        std::printf("  quarantined run %zu%s: %s\n", q.index,
                    q.deterministic ? " (deterministic)" : "",
                    q.attempts.empty() ? "?"
                                       : q.attempts.back().message.c_str());
      }
    }
    return shardsOk && report.allCompleted() ? 0 : 1;
  }

  // --trace dispatches on extension: .json = Chrome trace-event spans,
  // anything else = the legacy position CSV.
  const bool chromeTrace =
      o.tracePath.size() >= 5 &&
      o.tracePath.compare(o.tracePath.size() - 5, 5, ".json") == 0;

  // Single runs honor the watchdog flags too: a cycle budget makes a
  // suspected livelock reproducible ("times out at event N" is a fact, not
  // a wall-clock accident).
  sim::Watchdog watchdog(o.watchdogEvents, o.watchdogMs * 1'000'000ull);
  if (o.watchdogEvents != 0 || o.watchdogMs != 0) {
    opts.watchdog = &watchdog;
  }

  sim::Engine engine(start, pattern, *algo, opts);
  sim::Trace trace;
  if (!o.svgPath.empty() || (!o.tracePath.empty() && !chromeTrace)) {
    trace.attach(engine);
  }

  std::unique_ptr<obs::SpanCollector> spans;
  if (chromeTrace) {
    spans = std::make_unique<obs::SpanCollector>();
    spans->install();
  }
  sim::RunResult res;
  try {
    res = engine.run();
  } catch (const sim::WatchdogExpired& e) {
    if (spans != nullptr) obs::SpanCollector::uninstall();
    std::fprintf(stderr, "apf_sim: %s\n", e.what());
    return 3;
  }
  if (spans != nullptr) {
    obs::SpanCollector::uninstall();
    spans->writeChromeTrace(o.tracePath);
  }

  const std::string patternLabel =
      !o.patternFile.empty() ? o.patternFile : o.pattern;
  obs::Manifest manifest =
      sim::describeRun(opts, algo->name(), patternLabel, start.size());
  sim::appendResult(manifest, res);
  if (!o.manifestPath.empty()) manifest.write(o.manifestPath);

  if (o.json) {
    std::printf("%s\n", manifest.toJson().c_str());
  } else {
    std::printf(
        "algo=%s n=%zu sched=%s seed=%llu  terminated=%s success=%s "
        "outcome=%s  cycles=%llu bits=%llu distance=%.2f\n",
        algo->name().c_str(), start.size(), o.sched.c_str(),
        static_cast<unsigned long long>(o.seed),
        res.terminated ? "yes" : "no", res.success ? "yes" : "no",
        sim::outcomeName(res.outcome),
        static_cast<unsigned long long>(res.metrics.cycles),
        static_cast<unsigned long long>(res.metrics.randomBits),
        res.metrics.distance);
    if (opts.fault.active()) {
      std::printf("  faults: crashed=%llu injected=%llu\n",
                  static_cast<unsigned long long>(res.metrics.crashed),
                  static_cast<unsigned long long>(res.metrics.faultsInjected));
    }
    if (!o.quiet) {
      for (const auto& [tag, cnt] : res.metrics.phaseActivations) {
        std::printf("  %-16s %llu\n", core::phaseName(tag),
                    static_cast<unsigned long long>(cnt));
      }
    }
  }

  // --repro-out: capture this run's exact replay coordinates. The case is
  // probed under the fuzzer's safety observer first; when it violates, the
  // violation kind is pinned (and --shrink minimizes the case) so
  // `apf_sim --replay` asserts the same invariant breaks again.
  if (!o.reproOutPath.empty()) {
    sim::ReproCase repro;
    repro.algo = o.algo;
    repro.start = start;
    repro.pattern = pattern;
    repro.seed = o.seed;
    repro.maxEvents = o.maxEvents;
    repro.delta = o.delta;
    repro.earlyStopProb = opts.sched.earlyStopProb;
    repro.multiplicityDetection = o.multiplicity;
    repro.commonChirality = o.commonChirality;
    repro.sched = opts.sched.kind;
    repro.fault = opts.fault;
    const sim::ReplayResult probe = sim::replay(repro, *algo);
    if (probe.violated) {
      repro.violationKind = probe.violationKind;
      if (o.doShrink) {
        const sim::ShrinkResult sr = sim::shrink(repro, *algo);
        std::fprintf(stderr,
                     "apf_sim: shrink: %d probes, removed %zu robots and "
                     "%zu crash entries, cleared %d fault knobs\n",
                     sr.probes, sr.robotsRemoved, sr.crashesRemoved,
                     sr.knobsCleared);
        repro = sr.minimized;
      }
      sim::saveRepro(o.reproOutPath, repro);
      std::fprintf(stderr, "apf_sim: wrote %s (%s, n=%zu, %zu crash entries)\n",
                   o.reproOutPath.c_str(), repro.violationKind.c_str(),
                   repro.start.size(), repro.fault.crashes.size());
    } else {
      sim::saveRepro(o.reproOutPath, repro);
      std::fprintf(stderr,
                   "apf_sim: wrote %s (no safety violation under the replay "
                   "observer; repro records the run coordinates only)\n",
                   o.reproOutPath.c_str());
    }
  }

  if (!o.tracePath.empty() && !chromeTrace) trace.writeCsv(o.tracePath);
  if (!o.svgPath.empty()) {
    io::SvgScene scene;
    for (auto& t : trace.trails()) scene.addTrail(std::move(t));
    scene.addLayer({start, "#999", 0.05, true});
    scene.addLayer({engine.positions(), "#1f77b4", 0.06, false});
    scene.write(o.svgPath);
  }
  return res.success ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "apf_sim: %s\n", e.what());
  return 1;
}
