/// \file apf_sim.cpp
/// Command-line simulator: run any of the library's algorithms on a chosen
/// start/pattern under a chosen adversary, print the run summary, and
/// optionally dump a trajectory SVG and a trace (position CSV, or Chrome
/// trace-event spans when the --trace file ends in .json).
///
/// Usage examples:
///   apf_sim --n 10 --pattern star --sched async --seed 7
///   apf_sim --start symmetric --pattern random --svg run.svg
///   apf_sim --algo yy --no-chirality            # watch the baseline fail
///   apf_sim --start-file my_start.txt --pattern-file my_pattern.txt
///   apf_sim --jsonl run.jsonl --manifest run.manifest.json   # telemetry
///   apf_sim --json                              # one JSON line for scripts
///
/// Supervised campaigns (docs/RESILIENCE.md): --campaign N runs N seeded
/// runs on the campaign pool under watchdog deadlines, bounded retry, and
/// quarantine; --journal/--resume add a crash-safe checkpoint so a killed
/// campaign continues where it stopped and merges bit-identical to an
/// uninterrupted one:
///   apf_sim --campaign 50 --journal c.journal --json > out.json
///   apf_sim --campaign 50 --resume  c.journal --json > out.json
/// Failure repro (sim/shrink.h): --repro-out captures a run's replay
/// coordinates as a self-contained .repro.json (minimized with --shrink),
/// and --replay re-executes one, exiting 0 iff the violation reproduces.

#include <cstdio>
#include <cstring>
#include <exception>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baseline/det_election.h"
#include "baseline/yy.h"
#include "config/classify.h"
#include "config/generator.h"
#include "core/form_pattern.h"
#include "core/phases.h"
#include "core/rsb.h"
#include "core/scattering.h"
#include "fault/fault.h"
#include "io/patterns.h"
#include "io/serialize.h"
#include "io/svg.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/recorder.h"
#include "obs/span.h"
#include "sim/engine.h"
#include "sim/shrink.h"
#include "sim/supervisor.h"
#include "sim/trace.h"
#include "cli_parse.h"

namespace {

struct Options {
  std::size_t n = 8;
  std::string pattern = "star";
  std::string patternFile;
  std::string startFile;
  std::string startKind = "random";  // random | symmetric
  std::string sched = "async";
  std::string algo = "form";  // form | rsb | yy | det | scatter-form
  std::uint64_t seed = 1;
  double delta = 0.05;
  std::uint64_t maxEvents = 1000000;
  bool multiplicity = false;
  bool commonChirality = false;
  std::string svgPath;
  std::string tracePath;
  std::string jsonlPath;
  std::string manifestPath;
  bool json = false;
  bool quiet = false;
  /// Analyze the start configuration (Definitions 1-3) instead of running.
  bool analyze = false;
  // Fault injection (docs/FAULTS.md). Crash victims/timings are drawn from
  // --fault-seed once n is known; the sensor/compute knobs go straight into
  // the FaultPlan.
  int crashF = 0;
  std::uint64_t crashHorizon = 2000;
  double noiseSigma = 0.0;
  double omitProb = 0.0;
  double multFlipProb = 0.0;
  double dropProb = 0.0;
  double truncProb = 0.0;
  std::uint64_t faultSeed = 0;
  bool faultSeedSet = false;
  // Supervised campaigns (docs/RESILIENCE.md).
  std::uint64_t campaignRuns = 0;  // 0 = single-run mode
  std::string journalPath;         // fresh journal (truncates)
  std::string resumePath;          // resume an existing journal
  std::uint64_t watchdogEvents = 0;
  std::uint64_t watchdogMs = 0;
  int retries = 2;
  std::string quarantinePath;
  // Failure repro (sim/shrink.h).
  std::string replayPath;
  std::string reproOutPath;
  bool doShrink = false;
};

void usage() {
  std::printf(
      "apf_sim — LCM robot simulator for probabilistic asynchronous\n"
      "arbitrary pattern formation (Bramas & Tixeuil, PODC 2016)\n\n"
      "options:\n"
      "  --n N              robots (default 8)\n"
      "  --pattern NAME     polygon|star|grid|spiral|ringcore|random|\n"
      "                     mult|center-mult (default star)\n"
      "  --pattern-file F   load pattern points from file ('x y' per line)\n"
      "  --start KIND       random|symmetric (default random)\n"
      "  --start-file F     load start points from file\n"
      "  --sched S          fsync|ssync|async (default async)\n"
      "  --algo A           form|rsb|yy|det|scatter-form (default form)\n"
      "  --seed S           RNG seed (default 1)\n"
      "  --delta D          adversary min-move distance (default 0.05)\n"
      "  --max-events N     event cap (default 1e6)\n"
      "  --multiplicity     enable multiplicity detection\n"
      "  --chirality        give all robots a common chirality\n"
      "  --svg FILE         write trajectory SVG\n"
      "  --trace FILE       write a position trace CSV; a FILE ending in\n"
      "                     .json instead captures look/compute/move spans\n"
      "                     as Chrome trace-event JSON (chrome://tracing)\n"
      "  --jsonl FILE       write structured event log (JSONL; see\n"
      "                     docs/OBSERVABILITY.md and apf_report)\n"
      "  --manifest FILE    write run manifest (reproducibility record)\n"
      "fault injection (docs/FAULTS.md):\n"
      "  --crash F          crash-stop F random robots (victims/timings\n"
      "                     drawn from --fault-seed)\n"
      "  --crash-horizon N  scheduler-event window for crashes (default\n"
      "                     2000)\n"
      "  --noise S          Gaussian snapshot noise, std dev S (global\n"
      "                     units)\n"
      "  --omit P           omit each observed robot with probability P\n"
      "  --mult-flip P      flip perceived multiplicity with probability P\n"
      "  --drop P           drop a computed path with probability P\n"
      "  --trunc P          truncate a computed path with probability P\n"
      "  --fault-seed S     fault RNG stream seed (default: --seed)\n"
      "supervised campaigns (docs/RESILIENCE.md):\n"
      "  --campaign N       run N seeded runs (seeds --seed..+N-1) on the\n"
      "                     campaign pool under the supervisor; exit 0 iff\n"
      "                     nothing was quarantined\n"
      "  --journal F        crash-safe checkpoint journal (fresh file)\n"
      "  --resume F         resume from journal F (skips completed runs;\n"
      "                     merges bit-identical to an uninterrupted\n"
      "                     campaign)\n"
      "  --watchdog-events N  per-attempt cycle budget (deterministic;\n"
      "                     also applies to single runs, exit code 3)\n"
      "  --watchdog-ms N    per-attempt wall budget (nondeterministic)\n"
      "  --retries N        retry budget per run (default 2; attempt 1\n"
      "                     reuses the same seed to prove determinism)\n"
      "  --quarantine F     write the supervisor report JSON to F\n"
      "failure repro (sim/shrink.h):\n"
      "  --replay F         re-execute a .repro.json; exit 0 iff the\n"
      "                     recorded violation reproduces\n"
      "  --repro-out F      write this run's replay coordinates as a\n"
      "                     self-contained .repro.json\n"
      "  --shrink           minimize the repro before writing (delta\n"
      "                     debugging; only with --repro-out)\n"
      "general:\n"
      "  --json             print run manifest + result as one JSON line\n"
      "  --analyze          classify the start configuration and exit\n"
      "  --quiet            summary line only\n");
}

// Numeric argument parsing with validation (tools/cli_parse.h): every flag
// rejects garbage, trailing junk, and out-of-domain values with a clear
// message and exit code 2 (usage error).
[[noreturn]] void badValue(const char* flag, const char* got,
                           const char* want) {
  apf::cli::badValue("apf_sim", flag, got, want);
}

double parseDouble(const char* flag, const char* s) {
  return apf::cli::parseDouble("apf_sim", flag, s);
}

double parseNonNegative(const char* flag, const char* s) {
  return apf::cli::parseNonNegative("apf_sim", flag, s);
}

double parseProb(const char* flag, const char* s) {
  return apf::cli::parseProb("apf_sim", flag, s);
}

std::uint64_t parseU64(const char* flag, const char* s) {
  return apf::cli::parseU64("apf_sim", flag, s);
}

bool parse(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--n") {
      o.n = static_cast<std::size_t>(parseU64("--n", next("--n")));
      if (o.n == 0) badValue("--n", "0", "at least one robot");
    } else if (a == "--pattern") {
      o.pattern = next("--pattern");
    } else if (a == "--pattern-file") {
      o.patternFile = next("--pattern-file");
    } else if (a == "--start") {
      o.startKind = next("--start");
    } else if (a == "--start-file") {
      o.startFile = next("--start-file");
    } else if (a == "--sched") {
      o.sched = next("--sched");
    } else if (a == "--algo") {
      o.algo = next("--algo");
    } else if (a == "--seed") {
      o.seed = parseU64("--seed", next("--seed"));
    } else if (a == "--delta") {
      o.delta = parseNonNegative("--delta", next("--delta"));
    } else if (a == "--max-events") {
      o.maxEvents = parseU64("--max-events", next("--max-events"));
    } else if (a == "--crash") {
      o.crashF = static_cast<int>(parseU64("--crash", next("--crash")));
    } else if (a == "--crash-horizon") {
      o.crashHorizon = parseU64("--crash-horizon", next("--crash-horizon"));
      if (o.crashHorizon == 0) {
        badValue("--crash-horizon", "0", "a positive event count");
      }
    } else if (a == "--noise") {
      o.noiseSigma = parseNonNegative("--noise", next("--noise"));
    } else if (a == "--omit") {
      o.omitProb = parseProb("--omit", next("--omit"));
    } else if (a == "--mult-flip") {
      o.multFlipProb = parseProb("--mult-flip", next("--mult-flip"));
    } else if (a == "--drop") {
      o.dropProb = parseProb("--drop", next("--drop"));
    } else if (a == "--trunc") {
      o.truncProb = parseProb("--trunc", next("--trunc"));
    } else if (a == "--fault-seed") {
      o.faultSeed = parseU64("--fault-seed", next("--fault-seed"));
      o.faultSeedSet = true;
    } else if (a == "--campaign") {
      o.campaignRuns = parseU64("--campaign", next("--campaign"));
      if (o.campaignRuns == 0) badValue("--campaign", "0", "at least one run");
    } else if (a == "--journal") {
      o.journalPath = next("--journal");
    } else if (a == "--resume") {
      o.resumePath = next("--resume");
    } else if (a == "--watchdog-events") {
      o.watchdogEvents =
          parseU64("--watchdog-events", next("--watchdog-events"));
    } else if (a == "--watchdog-ms") {
      o.watchdogMs = parseU64("--watchdog-ms", next("--watchdog-ms"));
    } else if (a == "--retries") {
      o.retries = static_cast<int>(parseU64("--retries", next("--retries")));
    } else if (a == "--quarantine") {
      o.quarantinePath = next("--quarantine");
    } else if (a == "--replay") {
      o.replayPath = next("--replay");
    } else if (a == "--repro-out") {
      o.reproOutPath = next("--repro-out");
    } else if (a == "--shrink") {
      o.doShrink = true;
    } else if (a == "--multiplicity") {
      o.multiplicity = true;
    } else if (a == "--chirality") {
      o.commonChirality = true;
    } else if (a == "--svg") {
      o.svgPath = next("--svg");
    } else if (a == "--trace") {
      o.tracePath = next("--trace");
    } else if (a == "--jsonl") {
      o.jsonlPath = next("--jsonl");
    } else if (a == "--manifest") {
      o.manifestPath = next("--manifest");
    } else if (a == "--json") {
      o.json = true;
    } else if (a == "--quiet") {
      o.quiet = true;
    } else if (a == "--analyze") {
      o.analyze = true;
    } else if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

/// Maps an --algo (or ReproCase::algo) spelling to an instance; sets
/// `multiplicity` when the algorithm requires detection. nullptr = unknown.
std::unique_ptr<apf::sim::Algorithm> makeAlgorithm(const std::string& name,
                                                   bool& multiplicity) {
  using namespace apf;
  if (name == "form") return std::make_unique<core::FormPatternAlgorithm>();
  if (name == "rsb") return std::make_unique<core::RsbOnlyAlgorithm>();
  if (name == "yy") return std::make_unique<baseline::YYAlgorithm>();
  if (name == "det") {
    return std::make_unique<baseline::DeterministicElection>();
  }
  if (name == "scatter-form") {
    multiplicity = true;
    return std::make_unique<core::ScatterThenForm>();
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace apf;
  Options o;
  if (!parse(argc, argv, o)) {
    usage();
    return 2;
  }

  // --replay re-executes a self-contained .repro.json exactly (same safety
  // observer as the fuzzer) and reports whether the recorded violation
  // reproduces. Every run coordinate comes from the file, not the CLI.
  if (!o.replayPath.empty()) {
    const sim::ReproCase repro = sim::loadRepro(o.replayPath);
    bool ignoredMult = false;
    const auto replayAlgo = makeAlgorithm(repro.algo, ignoredMult);
    if (replayAlgo == nullptr) {
      std::fprintf(stderr, "apf_sim: repro names unknown algorithm '%s'\n",
                   repro.algo.c_str());
      return 2;
    }
    const sim::ReplayResult r = sim::replay(repro, *replayAlgo);
    const bool ok = r.reproduces(repro);
    std::printf(
        "replay %s: algo=%s n=%zu expect=%s -> %s\n", o.replayPath.c_str(),
        repro.algo.c_str(), repro.start.size(),
        repro.violationKind.empty() ? "(any violation)"
                                    : repro.violationKind.c_str(),
        ok ? "REPRODUCED" : (r.violated ? "different violation" : "clean"));
    if (r.violated && !o.quiet) {
      std::printf("  %s at event %llu: %s\n", r.violationKind.c_str(),
                  static_cast<unsigned long long>(r.violationEvent),
                  r.violation.c_str());
    }
    return ok ? 0 : 1;
  }

  // Pattern.
  config::Configuration pattern;
  if (!o.patternFile.empty()) {
    pattern = io::loadConfiguration(o.patternFile);
    o.n = pattern.size();
  } else if (o.pattern == "mult") {
    pattern = io::multiplicityPattern(o.n);
    o.multiplicity = true;
  } else if (o.pattern == "center-mult") {
    pattern = io::centerMultiplicityPattern(o.n);
    o.multiplicity = true;
  } else {
    pattern = io::patternByName(o.pattern, o.n, o.seed + 1000);
  }

  // Start.
  config::Configuration start;
  if (!o.startFile.empty()) {
    start = io::loadConfiguration(o.startFile);
  } else if (o.startKind == "symmetric") {
    config::Rng rng(o.seed + 7);
    const int rho = static_cast<int>(o.n) / 2;
    start = config::symmetricConfiguration(rho > 1 ? rho : 2, 2, rng);
  } else {
    config::Rng rng(o.seed + 7);
    start = config::randomConfiguration(o.n, rng, 5.0, 0.1);
  }
  if (o.analyze) {
    const auto report = config::classify(start);
    std::printf("%s", report.describe().c_str());
    return 0;
  }

  if (start.size() != pattern.size()) {
    std::fprintf(stderr, "start has %zu robots but pattern has %zu points\n",
                 start.size(), pattern.size());
    return 2;
  }

  // Algorithm.
  std::unique_ptr<sim::Algorithm> algo = makeAlgorithm(o.algo, o.multiplicity);
  if (algo == nullptr) {
    std::fprintf(stderr, "unknown algorithm: %s\n", o.algo.c_str());
    return 2;
  }

  sim::EngineOptions opts;
  opts.seed = o.seed;
  opts.maxEvents = o.maxEvents;
  opts.multiplicityDetection = o.multiplicity;
  opts.commonChirality = o.commonChirality;
  opts.sched.delta = o.delta;
  const auto kind = sched::schedulerFromName(o.sched);
  if (!kind) {
    std::fprintf(stderr, "unknown scheduler: %s\n", o.sched.c_str());
    return 2;
  }
  opts.sched.kind = *kind;

  // Fault plan (empty by default — the engine is then bit-identical to a
  // fault-free build). Crash victims/timings are drawn here so the summary
  // and manifest record the concrete plan, not just "F crashes".
  const std::uint64_t faultSeed = o.faultSeedSet ? o.faultSeed : o.seed;
  if (o.crashF > 0) {
    if (static_cast<std::size_t>(o.crashF) >= start.size()) {
      std::fprintf(stderr,
                   "apf_sim: --crash %d must leave at least one live robot "
                   "(n = %zu)\n",
                   o.crashF, start.size());
      return 2;
    }
    opts.fault = fault::planWithRandomCrashes(start.size(), o.crashF,
                                              faultSeed, o.crashHorizon);
  }
  opts.fault.noiseSigma = o.noiseSigma;
  opts.fault.omitProb = o.omitProb;
  opts.fault.multFlipProb = o.multFlipProb;
  opts.fault.dropProb = o.dropProb;
  opts.fault.truncProb = o.truncProb;
  opts.fault.seed = faultSeed;

  std::unique_ptr<obs::JsonlRecorder> sink;
  if (!o.jsonlPath.empty()) {
    sink = std::make_unique<obs::JsonlRecorder>(o.jsonlPath);
    opts.recorder = sink.get();
  }
  opts.collectTimings =
      !o.jsonlPath.empty() || !o.manifestPath.empty() || o.json;

  // ------------------------------------------------ supervised campaign --
  if (o.campaignRuns > 0) {
    const std::string patternLabel =
        !o.patternFile.empty() ? o.patternFile : o.pattern;

    // The campaign-defining options, as a flat manifest. Its JSON doubles
    // as the journal's config key: resuming with ANY different option is a
    // different experiment and must be refused, not silently merged.
    obs::Manifest campaignKey;
    campaignKey.set("campaign", "apf_sim");
    campaignKey.set("algo", algo->name());
    campaignKey.set("n", static_cast<std::uint64_t>(o.n));
    campaignKey.set("pattern", patternLabel);
    campaignKey.set("start", o.startFile.empty() ? o.startKind : o.startFile);
    campaignKey.set("sched", o.sched);
    campaignKey.set("seed", o.seed);
    campaignKey.set("runs", o.campaignRuns);
    campaignKey.set("max_events", o.maxEvents);
    campaignKey.set("delta", o.delta);
    campaignKey.set("multiplicity", o.multiplicity);
    campaignKey.set("chirality", o.commonChirality);
    campaignKey.set("crash_f", o.crashF);
    campaignKey.set("crash_horizon", o.crashHorizon);
    campaignKey.set("fault", fault::toJson(opts.fault));
    const std::string configKey = campaignKey.toJson();

    std::unique_ptr<sim::CampaignJournal> journal;
    const bool resuming = !o.resumePath.empty();
    const std::string jpath = resuming ? o.resumePath : o.journalPath;
    if (!jpath.empty()) {
      journal =
          std::make_unique<sim::CampaignJournal>(jpath, configKey, resuming);
    }

    sim::SupervisorOptions sopts;
    sopts.cycleBudget = o.watchdogEvents;
    sopts.wallBudgetNanos = o.watchdogMs * 1'000'000ull;
    sopts.maxRetries = o.retries;
    sopts.recorder = sink.get();  // supervisor events only (merge thread)

    std::vector<std::uint64_t> runSeeds(o.campaignRuns);
    for (std::size_t i = 0; i < runSeeds.size(); ++i) {
      runSeeds[i] = o.seed + i;
    }

    // Worker: one engine run per seed. Retry salts XOR into the effective
    // seed (0 for attempts 0/1 — the same-seed determinism proof); crash
    // victims/timings are re-drawn per run so the campaign explores many
    // crash schedules. The payload is a flat JSON line with only
    // deterministic fields, so campaign outputs diff bit-identical.
    auto worker = [&](std::uint64_t runSeed, std::size_t,
                      const sim::Attempt& att) -> std::string {
      const std::uint64_t eff = runSeed ^ att.seedSalt;
      sim::EngineOptions eopts = opts;
      eopts.seed = eff;
      eopts.watchdog = att.watchdog;
      eopts.recorder = nullptr;  // per-run event logs stay off on the pool
      eopts.collectTimings = false;
      const std::uint64_t fseed = o.faultSeedSet ? o.faultSeed : eff;
      fault::FaultPlan plan;
      if (o.crashF > 0) {
        plan = fault::planWithRandomCrashes(o.n, o.crashF, fseed,
                                            o.crashHorizon);
      }
      plan.noiseSigma = o.noiseSigma;
      plan.omitProb = o.omitProb;
      plan.multFlipProb = o.multFlipProb;
      plan.dropProb = o.dropProb;
      plan.truncProb = o.truncProb;
      plan.seed = fseed;
      eopts.fault = plan;

      config::Configuration runStart = start;
      if (o.startFile.empty()) {
        config::Rng rng(eff + 7);
        if (o.startKind == "symmetric") {
          const int rho = static_cast<int>(o.n) / 2;
          runStart = config::symmetricConfiguration(rho > 1 ? rho : 2, 2,
                                                    rng);
        } else {
          runStart = config::randomConfiguration(o.n, rng, 5.0, 0.1);
        }
      }

      sim::Engine eng(runStart, pattern, *algo, eopts);
      const sim::RunResult res = eng.run();
      obs::JsonObjectWriter w;
      w.field("seed", eff);
      w.field("outcome", sim::outcomeName(res.outcome));
      w.field("success", res.success);
      w.field("terminated", res.terminated);
      w.field("cycles", res.metrics.cycles);
      w.field("events", res.metrics.events);
      w.field("bits", res.metrics.randomBits);
      w.field("distance", res.metrics.distance);
      return w.str();
    };

    std::vector<std::string> payloads(o.campaignRuns);
    auto mergeFn = [&](std::size_t i, std::string&& p) {
      payloads[i] = std::move(p);
    };

    sim::SupervisorReport report;
    if (journal != nullptr) {
      sim::JournalCodec<std::string> codec;
      codec.encode = [](const std::string& s) { return s; };
      codec.decode = [](const std::string& s) { return s; };
      report = sim::superviseCampaign(runSeeds, worker, mergeFn, *journal,
                                      codec, sopts);
    } else {
      report = sim::superviseCampaign(runSeeds, worker, mergeFn, sopts);
    }

    if (!o.quarantinePath.empty()) report.write(o.quarantinePath);
    if (!o.manifestPath.empty()) {
      obs::Manifest m;
      obs::addBuildInfo(m);
      m.set("tool", "apf_sim.campaign");
      m.merge(campaignKey);
      sim::appendManifest(sopts, report, m);
      m.write(o.manifestPath);
    }

    std::map<std::string, int> outcomes;
    for (const std::string& p : payloads) {
      if (p.empty()) continue;  // quarantined run: no payload
      const auto obj = obs::parseFlatObject(p);
      if (!obj) continue;
      const auto it = obj->find("outcome");
      if (it != obj->end()) outcomes[it->second.asString("?")] += 1;
    }

    if (o.json) {
      // Deliberately free of wall-clock fields AND of the fresh-vs-replayed
      // split (only their sum is invariant): a resumed campaign must print
      // a document byte-identical to an uninterrupted one's — the CI
      // kill-and-resume check diffs them directly. The split lives in the
      // human output and the --quarantine report.
      obs::JsonObjectWriter top;
      top.field("schema", "apf.campaign.v1");
      top.field("runs", o.campaignRuns);
      top.field("finished", report.completed + report.replayed);
      top.field("retries", report.retries);
      top.field("quarantined", report.quarantined);
      obs::JsonObjectWriter byOutcome;
      for (const auto& [name, count] : outcomes) {
        byOutcome.field(name, count);
      }
      top.rawField("outcomes", byOutcome.str());
      std::string rows;
      for (std::size_t i = 0; i < payloads.size(); ++i) {
        if (i) rows += ',';
        rows += payloads[i].empty() ? "null" : payloads[i];
      }
      top.rawField("results", "[" + rows + "]");
      std::printf("%s\n", top.str().c_str());
    } else {
      std::printf(
          "campaign: %llu runs  algo=%s n=%zu sched=%s seeds=%llu..%llu\n"
          "  completed=%llu replayed=%llu retries=%llu quarantined=%llu\n",
          static_cast<unsigned long long>(o.campaignRuns),
          algo->name().c_str(), o.n, o.sched.c_str(),
          static_cast<unsigned long long>(o.seed),
          static_cast<unsigned long long>(o.seed + o.campaignRuns - 1),
          static_cast<unsigned long long>(report.completed),
          static_cast<unsigned long long>(report.replayed),
          static_cast<unsigned long long>(report.retries),
          static_cast<unsigned long long>(report.quarantined));
      std::printf("  outcomes:");
      for (const auto& [name, count] : outcomes) {
        std::printf("  %s=%d", name.c_str(), count);
      }
      std::printf("\n");
      if (journal != nullptr) {
        std::printf("  journal: %s (%zu entries%s)\n",
                    journal->path().c_str(), journal->completedCount(),
                    journal->recoveredTornLine() ? ", recovered torn tail"
                                                 : "");
      }
      for (const sim::QuarantinedItem& q : report.quarantine) {
        std::printf("  quarantined run %zu%s: %s\n", q.index,
                    q.deterministic ? " (deterministic)" : "",
                    q.attempts.empty() ? "?"
                                       : q.attempts.back().message.c_str());
      }
    }
    return report.allCompleted() ? 0 : 1;
  }

  // --trace dispatches on extension: .json = Chrome trace-event spans,
  // anything else = the legacy position CSV.
  const bool chromeTrace =
      o.tracePath.size() >= 5 &&
      o.tracePath.compare(o.tracePath.size() - 5, 5, ".json") == 0;

  // Single runs honor the watchdog flags too: a cycle budget makes a
  // suspected livelock reproducible ("times out at event N" is a fact, not
  // a wall-clock accident).
  sim::Watchdog watchdog(o.watchdogEvents, o.watchdogMs * 1'000'000ull);
  if (o.watchdogEvents != 0 || o.watchdogMs != 0) {
    opts.watchdog = &watchdog;
  }

  sim::Engine engine(start, pattern, *algo, opts);
  sim::Trace trace;
  if (!o.svgPath.empty() || (!o.tracePath.empty() && !chromeTrace)) {
    trace.attach(engine);
  }

  std::unique_ptr<obs::SpanCollector> spans;
  if (chromeTrace) {
    spans = std::make_unique<obs::SpanCollector>();
    spans->install();
  }
  sim::RunResult res;
  try {
    res = engine.run();
  } catch (const sim::WatchdogExpired& e) {
    if (spans != nullptr) obs::SpanCollector::uninstall();
    std::fprintf(stderr, "apf_sim: %s\n", e.what());
    return 3;
  }
  if (spans != nullptr) {
    obs::SpanCollector::uninstall();
    spans->writeChromeTrace(o.tracePath);
  }

  const std::string patternLabel =
      !o.patternFile.empty() ? o.patternFile : o.pattern;
  obs::Manifest manifest =
      sim::describeRun(opts, algo->name(), patternLabel, start.size());
  sim::appendResult(manifest, res);
  if (!o.manifestPath.empty()) manifest.write(o.manifestPath);

  if (o.json) {
    std::printf("%s\n", manifest.toJson().c_str());
  } else {
    std::printf(
        "algo=%s n=%zu sched=%s seed=%llu  terminated=%s success=%s "
        "outcome=%s  cycles=%llu bits=%llu distance=%.2f\n",
        algo->name().c_str(), start.size(), o.sched.c_str(),
        static_cast<unsigned long long>(o.seed),
        res.terminated ? "yes" : "no", res.success ? "yes" : "no",
        sim::outcomeName(res.outcome),
        static_cast<unsigned long long>(res.metrics.cycles),
        static_cast<unsigned long long>(res.metrics.randomBits),
        res.metrics.distance);
    if (opts.fault.active()) {
      std::printf("  faults: crashed=%llu injected=%llu\n",
                  static_cast<unsigned long long>(res.metrics.crashed),
                  static_cast<unsigned long long>(res.metrics.faultsInjected));
    }
    if (!o.quiet) {
      for (const auto& [tag, cnt] : res.metrics.phaseActivations) {
        std::printf("  %-16s %llu\n", core::phaseName(tag),
                    static_cast<unsigned long long>(cnt));
      }
    }
  }

  // --repro-out: capture this run's exact replay coordinates. The case is
  // probed under the fuzzer's safety observer first; when it violates, the
  // violation kind is pinned (and --shrink minimizes the case) so
  // `apf_sim --replay` asserts the same invariant breaks again.
  if (!o.reproOutPath.empty()) {
    sim::ReproCase repro;
    repro.algo = o.algo;
    repro.start = start;
    repro.pattern = pattern;
    repro.seed = o.seed;
    repro.maxEvents = o.maxEvents;
    repro.delta = o.delta;
    repro.earlyStopProb = opts.sched.earlyStopProb;
    repro.multiplicityDetection = o.multiplicity;
    repro.commonChirality = o.commonChirality;
    repro.sched = opts.sched.kind;
    repro.fault = opts.fault;
    const sim::ReplayResult probe = sim::replay(repro, *algo);
    if (probe.violated) {
      repro.violationKind = probe.violationKind;
      if (o.doShrink) {
        const sim::ShrinkResult sr = sim::shrink(repro, *algo);
        std::fprintf(stderr,
                     "apf_sim: shrink: %d probes, removed %zu robots and "
                     "%zu crash entries, cleared %d fault knobs\n",
                     sr.probes, sr.robotsRemoved, sr.crashesRemoved,
                     sr.knobsCleared);
        repro = sr.minimized;
      }
      sim::saveRepro(o.reproOutPath, repro);
      std::fprintf(stderr, "apf_sim: wrote %s (%s, n=%zu, %zu crash entries)\n",
                   o.reproOutPath.c_str(), repro.violationKind.c_str(),
                   repro.start.size(), repro.fault.crashes.size());
    } else {
      sim::saveRepro(o.reproOutPath, repro);
      std::fprintf(stderr,
                   "apf_sim: wrote %s (no safety violation under the replay "
                   "observer; repro records the run coordinates only)\n",
                   o.reproOutPath.c_str());
    }
  }

  if (!o.tracePath.empty() && !chromeTrace) trace.writeCsv(o.tracePath);
  if (!o.svgPath.empty()) {
    io::SvgScene scene;
    for (auto& t : trace.trails()) scene.addTrail(std::move(t));
    scene.addLayer({start, "#999", 0.05, true});
    scene.addLayer({engine.positions(), "#1f77b4", 0.06, false});
    scene.write(o.svgPath);
  }
  return res.success ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "apf_sim: %s\n", e.what());
  return 1;
}
