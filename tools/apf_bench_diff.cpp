/// \file apf_bench_diff.cpp
/// Perf-regression gate: compares two bench documents — `BENCH_perf.json`
/// (bench/bench_perf.cpp) or `BENCH_estimate.json` (bench/
/// bench_estimate.cpp) — metric by metric, prints a delta table, and
/// exits non-zero when any workload regressed beyond the noise threshold.
/// CI's perf-smoke and estimate-smoke jobs run it against the tracked
/// quick-mode baselines in `results/ci/` (see docs/PERFORMANCE.md for the
/// threshold rationale).
///
/// Usage:
///   apf_bench_diff [options] BASELINE CURRENT
/// where BASELINE and CURRENT are bench JSON files, or directories
/// containing a BENCH_perf.json. Both files must carry the same schema
/// (comparing a perf bench against an estimation bench is a usage error).
///
/// Workloads are matched by (workload, n, serial-vs-parallel) — not by the
/// literal job count, which varies with the machine running the bench.
/// A workload present in the baseline but missing from the current file is
/// itself a regression (coverage loss); new workloads are informational.
///
/// Rows carrying `allocs_per_event` (the engine hot-loop rows of
/// bench_perf) are additionally gated exactly: any increase over the
/// baseline count fails, with no noise floor — allocation counts are a
/// deterministic property of the code, not the machine.
///
/// Exit codes: 0 = no regressions, 1 = regression(s), 2 = usage/parse
/// error or incomparable inputs (quick-mode flag mismatch — quick runs cap
/// per-run events at a quarter of full mode, so their throughput numbers
/// are not comparable).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "cli_parse.h"

namespace fs = std::filesystem;
using apf::obs::JsonNode;

namespace {

struct Row {
  std::string workload;
  long n = 0;
  int jobs = 1;
  double wallMs = 0.0;
  double perSec = 0.0;
  double speedup = 1.0;
  /// Allocation count per event (engine hot-loop rows); negative when the
  /// row carries no allocation accounting.
  double allocsPerEvent = -1.0;
};

struct BenchDoc {
  std::string schema;
  bool quick = false;
  std::vector<Row> rows;
};

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "apf_bench_diff: %s\n", msg.c_str());
  std::exit(2);
}

std::string resolvePath(const std::string& arg) {
  fs::path p(arg);
  std::error_code ec;
  if (fs::is_directory(p, ec)) p /= "BENCH_perf.json";
  return p.string();
}

double num(const JsonNode& obj, const char* key, double fallback = 0.0) {
  const JsonNode* v = obj.find(key);
  return v == nullptr ? fallback : v->asNumber(fallback);
}

BenchDoc load(const std::string& path) {
  std::ifstream is(path);
  if (!is) die("cannot open: " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  const auto doc = apf::obs::parseJson(buf.str());
  if (!doc || doc->kind != JsonNode::Kind::Object) {
    die("malformed JSON: " + path);
  }
  const JsonNode* schema = doc->find("schema");
  const std::string schemaName =
      schema == nullptr ? "" : schema->asString();
  if (schemaName != "apf.bench_perf.v1" &&
      schemaName != "apf.bench_estimate.v1") {
    die("not a bench JSON (schema mismatch): " + path);
  }
  BenchDoc out;
  out.schema = schemaName;
  const JsonNode* quick = doc->find("quick");
  out.quick = quick != nullptr && quick->asBool(false);
  const JsonNode* workloads = doc->find("workloads");
  if (workloads == nullptr || workloads->kind != JsonNode::Kind::Array) {
    die("missing workloads array: " + path);
  }
  for (const JsonNode& w : workloads->items) {
    if (w.kind != JsonNode::Kind::Object) die("malformed workload: " + path);
    Row r;
    const JsonNode* name = w.find("workload");
    r.workload = name == nullptr ? "?" : name->asString("?");
    r.n = static_cast<long>(num(w, "n"));
    r.jobs = static_cast<int>(num(w, "jobs", 1.0));
    r.wallMs = num(w, "wall_ms");
    r.perSec = num(w, "runs_per_sec");
    r.speedup = num(w, "speedup_vs_serial", 1.0);
    r.allocsPerEvent = num(w, "allocs_per_event", -1.0);
    out.rows.push_back(std::move(r));
  }
  return out;
}

/// Machine-independent match key: the parallel job count varies with the
/// host, so rows are identified only by whether they are serial.
std::string keyOf(const Row& r) {
  // Built with append: GCC 12's -Wrestrict false-fires on + chains at -O3.
  std::string key = r.workload;
  key.append("|n=").append(std::to_string(r.n));
  key.append(r.jobs == 1 ? "|serial" : "|parallel");
  return key;
}

std::string fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.35;
  double minWallMs = 5.0;
  apf::cli::ArgParser args(
      "apf_bench_diff",
      "perf-regression gate: compares two bench JSON documents and exits\n"
      "non-zero on regressions (docs/PERFORMANCE.md)");
  // The threshold's (0, 1) domain matches Num::Confidence exactly — open
  // at both ends, since 0 would fail on noise and 1 would never fail.
  args.num("--threshold", &threshold, apf::cli::ArgParser::Num::Confidence,
           "R",
           "allowed runs_per_sec drop as a fraction of the\n"
           "baseline (default 0.35; 0.35 = fail below 65%\n"
           "of baseline throughput)");
  args.num("--min-wall-ms", &minWallMs,
           apf::cli::ArgParser::Num::NonNegative, "MS",
           "noise floor: rows measured in under MS of wall\n"
           "time in BOTH files are reported but never fail\n"
           "the gate (default 5.0)");
  args.positionals("BASELINE CURRENT",
                   "bench JSON files (BENCH_perf.json / BENCH_estimate.json)"
                   ",\nor directories containing a BENCH_perf.json",
                   2, 2);
  args.exitNotes(
      " (1 = regression; 2 also covers\nincomparable inputs)");
  args.parse(argc, argv);

  const std::string basePath = resolvePath(args.pos()[0]);
  const std::string curPath = resolvePath(args.pos()[1]);
  const BenchDoc base = load(basePath);
  const BenchDoc cur = load(curPath);
  if (base.schema != cur.schema) {
    die("incomparable: baseline schema " + base.schema +
        " vs current schema " + cur.schema);
  }
  if (base.quick != cur.quick) {
    std::string msg = "incomparable: baseline is ";
    msg.append(base.quick ? "quick" : "full");
    msg.append(" mode but current is ");
    msg.append(cur.quick ? "quick" : "full");
    msg.append(" mode (per-run event caps differ; regenerate the baseline "
               "with the same mode)");
    die(msg);
  }

  std::map<std::string, Row> current;
  for (const Row& r : cur.rows) current[keyOf(r)] = r;

  std::printf("baseline: %s\ncurrent:  %s\n", basePath.c_str(),
              curPath.c_str());
  std::printf("gate: fail when runs_per_sec < %.0f%% of baseline and "
              "wall_ms >= %.1f in either file, or when allocs_per_event "
              "exceeds the baseline (exact, no floor)\n\n",
              100.0 * (1.0 - threshold), minWallMs);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"workload", "base/s", "cur/s", "delta", "allocs/ev",
                  "wall_ms", "verdict"});
  int regressions = 0;
  std::map<std::string, bool> seen;
  for (const Row& b : base.rows) {
    const std::string key = keyOf(b);
    seen[key] = true;
    const auto it = current.find(key);
    if (it == current.end()) {
      rows.push_back({key, fmt(b.perSec, 2), "-", "-", "-",
                      fmt(b.wallMs, 1), "MISSING"});
      ++regressions;
      continue;
    }
    const Row& c = it->second;
    const double ratio = b.perSec > 0.0 ? c.perSec / b.perSec : 1.0;
    const double deltaPct = 100.0 * (ratio - 1.0);
    const bool aboveFloor = b.wallMs >= minWallMs || c.wallMs >= minWallMs;
    const bool regressed = ratio < 1.0 - threshold && aboveFloor;
    // Allocation-count gate: exact, no noise floor. Allocation counts are
    // a deterministic property of the code (not the machine), so ANY
    // increase over the baseline is a regression — the whole point is to
    // catch a single stray allocation sneaking back into the hot loop.
    const bool gateAllocs = b.allocsPerEvent >= 0.0 && c.allocsPerEvent >= 0.0;
    const bool allocsRegressed =
        gateAllocs && c.allocsPerEvent > b.allocsPerEvent;
    std::string verdict = "ok";
    if (regressed || allocsRegressed) {
      verdict = allocsRegressed && !regressed ? "ALLOCS-REGRESSED"
                                              : "REGRESSED";
      ++regressions;
    } else if (!aboveFloor && ratio < 1.0 - threshold) {
      verdict = "noise";  // would fail, but both runs are below the floor
    }
    std::string delta = deltaPct >= 0 ? "+" : "";
    delta.append(fmt(deltaPct, 1)).append("%");
    std::string allocCol = "-";
    if (gateAllocs) {
      allocCol = fmt(b.allocsPerEvent, 4);
      allocCol.append(">").append(fmt(c.allocsPerEvent, 4));
    }
    rows.push_back({key, fmt(b.perSec, 2), fmt(c.perSec, 2), delta,
                    allocCol, fmt(c.wallMs, 1), verdict});
  }
  for (const Row& c : cur.rows) {
    const std::string key = keyOf(c);
    if (!seen.count(key)) {
      rows.push_back({key, "-", fmt(c.perSec, 2), "-",
                      c.allocsPerEvent >= 0.0 ? fmt(c.allocsPerEvent, 4)
                                              : std::string("-"),
                      fmt(c.wallMs, 1), "new"});
    }
  }

  std::vector<std::size_t> widths(rows[0].size(), 0);
  for (const auto& r : rows) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      widths[i] = std::max(widths[i], r[i].size());
    }
  }
  for (const auto& r : rows) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(widths[i]), r[i].c_str());
    }
    std::printf("\n");
  }

  if (regressions > 0) {
    std::printf("\n%d workload(s) regressed beyond the %.0f%% threshold\n",
                regressions, 100.0 * threshold);
    return 1;
  }
  std::printf("\nno regressions\n");
  return 0;
}
