#pragma once

/// \file algo_select.h
/// The one --algo-name-to-instance map shared by apf_sim, apf_worker, and
/// apf_estimate. Lives in tools/ (not src/sim) on purpose: core and
/// baseline depend on sim's Algorithm interface, not vice versa, so the
/// sim library can never name a concrete algorithm — binaries do, and
/// they must all agree on the spelling (an apf.shard.v1 spec written by
/// apf_sim is executed by apf_worker via this same table).

#include <memory>
#include <string>

#include "baseline/det_election.h"
#include "baseline/yy.h"
#include "core/form_pattern.h"
#include "core/rsb.h"
#include "core/scattering.h"
#include "sim/algorithm.h"

namespace apf::cli {

/// Maps an --algo (or wire-schema algo field) spelling to an instance;
/// sets `multiplicity` when the algorithm requires detection. nullptr =
/// unknown name.
inline std::unique_ptr<sim::Algorithm> makeAlgorithm(const std::string& name,
                                                     bool& multiplicity) {
  if (name == "form") return std::make_unique<core::FormPatternAlgorithm>();
  if (name == "rsb") return std::make_unique<core::RsbOnlyAlgorithm>();
  if (name == "yy") return std::make_unique<baseline::YYAlgorithm>();
  if (name == "det") {
    return std::make_unique<baseline::DeterministicElection>();
  }
  if (name == "scatter-form") {
    multiplicity = true;
    return std::make_unique<core::ScatterThenForm>();
  }
  return nullptr;
}

/// Names accepted by makeAlgorithm, for --help strings.
inline const char* algorithmNames() { return "form|rsb|yy|det|scatter-form"; }

}  // namespace apf::cli
