/// \file apf_report.cpp
/// Telemetry aggregator: ingests run manifests (`*.manifest.json`) and
/// structured event logs (`*.jsonl`) from a directory and prints
///  * success rates and run-cost statistics grouped by (algo, sched, n),
///  * random-bit accounting (the paper's one-bit-per-cycle claim),
///  * per-phase activation and wall-time breakdowns,
///  * fault-injection accounting (run outcomes, injected faults by kind;
///    docs/FAULTS.md),
///  * campaign-pool statistics (`campaign.*` manifest keys: worker
///    utilization, mailbox/pending high-water marks, merge stall),
///  * supervisor resilience accounting (`supervisor.*` manifest keys:
///    retries, quarantine, timeout kinds; docs/RESILIENCE.md) plus a
///    listing of minimized counterexamples (`*.repro.json`; sim/shrink.h),
///  * event-log statistics (event counts by kind, snapshot staleness),
///  * a cross-check that event-log per-phase totals match the manifests'
///    `Metrics::phaseActivations` numbers, and that fault/crash event
///    counts match the manifests' `result.faults_injected`/`result.crashed`.
///
/// Produce inputs with either
///   apf_sim --jsonl run.jsonl --manifest run.manifest.json ...
/// or, for whole benchmark campaigns,
///   APF_OBS_DIR=obsout [APF_OBS_EVENTS=1] ./build/bench/bench_randbits
/// and then:
///   apf_report obsout            # human tables
///   apf_report --json obsout     # one machine-readable JSON object

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "core/phases.h"
#include "est/estimators.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/stats.h"
#include "cli/env.h"
#include "cli_parse.h"

namespace fs = std::filesystem;
using apf::obs::JsonObject;
using apf::obs::JsonValue;

namespace {

double num(const JsonObject& obj, const char* key, double fallback = 0.0) {
  const auto it = obj.find(key);
  return it == obj.end() ? fallback : it->second.asNumber(fallback);
}

std::string str(const JsonObject& obj, const char* key,
                const std::string& fallback = "?") {
  const auto it = obj.find(key);
  return it == obj.end() ? fallback : it->second.asString(fallback);
}

bool boolean(const JsonObject& obj, const char* key) {
  const auto it = obj.find(key);
  return it != obj.end() && it->second.asBool(false);
}

double mean(const std::vector<double>& xs) {
  return xs.empty() ? 0.0
                    : std::accumulate(xs.begin(), xs.end(), 0.0) /
                          static_cast<double>(xs.size());
}

double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(q * (xs.size() - 1));
  return xs[idx];
}

/// Statistics accumulated per (algo, sched, n) manifest group.
struct Group {
  int runs = 0;
  int successes = 0;
  int terminated = 0;
  std::vector<double> bits;
  std::vector<double> cycles;
  std::vector<double> events;
  std::vector<double> distance;
  double bitsPerCycleMax = 0.0;
  std::uint64_t electionRounds = 0;
};

/// Whole-directory aggregation.
struct Report {
  std::map<std::string, Group> groups;  // key: algo|sched|n
  // Per-phase totals from manifests.
  std::map<int, std::uint64_t> phaseActivations;
  std::map<int, std::uint64_t> phaseNanos;
  std::uint64_t totalBits = 0;
  std::uint64_t totalCycles = 0;
  // Fault accounting from manifests (docs/FAULTS.md).
  int faultRuns = 0;  // manifests with fault.active=true
  std::map<std::string, int> outcomes;  // result.outcome tallies
  std::uint64_t manifestFaultsInjected = 0;  // sum of result.faults_injected
  std::uint64_t manifestCrashed = 0;         // sum of result.crashed
  // Event-log aggregation.
  std::map<std::string, std::uint64_t> eventsByKind;
  std::map<int, std::uint64_t> computeByPhase;  // from compute events
  std::map<std::string, std::uint64_t> faultsByKind;  // fault_injected "fault"
  std::uint64_t eventLogFaults = 0;   // fault_injected event count
  std::uint64_t eventLogCrashes = 0;  // robot_crashed event count
  std::uint64_t eventLogBits = 0;
  std::uint64_t eventLogElections = 0;
  std::vector<double> staleness;
  std::uint64_t jsonlFiles = 0;
  std::uint64_t badLines = 0;
  // Campaign-pool telemetry (`campaign.*` manifest keys; sim/campaign.h).
  // These manifests describe a bench's thread pool, not a single run, so
  // they are tallied separately from the (algo, sched, n) groups.
  int campaignManifests = 0;
  int campaignJobsMax = 0;
  std::uint64_t campaignItems = 0;
  std::uint64_t campaignWallNanos = 0;
  std::uint64_t campaignBusyNanos = 0;
  std::uint64_t campaignIdleNanos = 0;
  std::uint64_t campaignMailboxHwm = 0;   // max over manifests
  std::uint64_t campaignPendingHwm = 0;   // max over manifests
  std::uint64_t campaignStallNanos = 0;
  std::uint64_t campaignMergeNanos = 0;
  // Supervisor telemetry (`supervisor.*` manifest keys; sim/supervisor.h
  // and docs/RESILIENCE.md).
  int supervisorManifests = 0;
  std::uint64_t supItems = 0;
  std::uint64_t supFinished = 0;
  std::uint64_t supRetries = 0;
  std::uint64_t supQuarantined = 0;
  std::uint64_t supTimeoutsCycle = 0;
  std::uint64_t supTimeoutsWall = 0;
  std::uint64_t supExceptions = 0;
  // Minimized counterexamples (`*.repro.json`; sim/shrink.h).
  struct ReproInfo {
    std::string file;
    std::string algo;
    std::string kind;
    std::size_t robots = 0;
    std::size_t crashes = 0;
  };
  std::vector<ReproInfo> repros;
  // Adaptive-estimation manifests (`est.*` keys; est/adaptive.h and
  // docs/STATISTICS.md). One entry per arm found in a manifest.
  struct EstimateInfo {
    std::string label;
    std::string stopReason;
    bool converged = false;
    std::uint64_t samples = 0;
    std::uint64_t batches = 0;
    std::uint64_t maxSamples = 0;
    double confidence = 0.0;
    double successRate = 0.0;
    double wilsonLo = 0.0;
    double wilsonHi = 1.0;
    double bitsMean = 0.0;
    double bitsEbLo = 0.0;
    double bitsEbHi = 0.0;
  };
  std::vector<EstimateInfo> estimates;
};

void ingestManifest(const fs::path& path, Report& rep) {
  const JsonObject m = apf::obs::loadFlatJsonFile(path.string());
  if (m.count("campaign.jobs") != 0) {
    // Bench-level manifest carrying thread-pool telemetry (bench/common.h
    // Table::meta()); may coexist with run keys, so not an early return.
    rep.campaignManifests += 1;
    rep.campaignJobsMax =
        std::max(rep.campaignJobsMax, static_cast<int>(num(m, "campaign.jobs")));
    rep.campaignItems += static_cast<std::uint64_t>(num(m, "campaign.items"));
    rep.campaignWallNanos +=
        static_cast<std::uint64_t>(num(m, "campaign.wall_nanos"));
    rep.campaignBusyNanos +=
        static_cast<std::uint64_t>(num(m, "campaign.worker_busy_nanos"));
    rep.campaignIdleNanos +=
        static_cast<std::uint64_t>(num(m, "campaign.worker_idle_nanos"));
    rep.campaignMailboxHwm = std::max(
        rep.campaignMailboxHwm,
        static_cast<std::uint64_t>(num(m, "campaign.mailbox_high_water")));
    rep.campaignPendingHwm = std::max(
        rep.campaignPendingHwm,
        static_cast<std::uint64_t>(num(m, "campaign.pending_high_water")));
    rep.campaignStallNanos +=
        static_cast<std::uint64_t>(num(m, "campaign.merge_stall_nanos"));
    rep.campaignMergeNanos +=
        static_cast<std::uint64_t>(num(m, "campaign.merge_nanos"));
  }
  if (m.count("supervisor.items") != 0) {
    // Supervised-campaign manifest; may coexist with campaign.* pool keys
    // on the same bench manifest. Resume/shard-invariant manifests
    // (sim::appendManifestInvariant) carry `supervisor.finished`; older
    // ones (sim::appendManifest) split it into completed + replayed — the
    // sum is the same quantity either way.
    rep.supervisorManifests += 1;
    rep.supItems += static_cast<std::uint64_t>(num(m, "supervisor.items"));
    rep.supFinished += static_cast<std::uint64_t>(
        num(m, "supervisor.finished",
            num(m, "supervisor.completed") + num(m, "supervisor.replayed")));
    rep.supRetries +=
        static_cast<std::uint64_t>(num(m, "supervisor.retries"));
    rep.supQuarantined +=
        static_cast<std::uint64_t>(num(m, "supervisor.quarantined"));
    rep.supTimeoutsCycle +=
        static_cast<std::uint64_t>(num(m, "supervisor.timeouts_cycle"));
    rep.supTimeoutsWall +=
        static_cast<std::uint64_t>(num(m, "supervisor.timeouts_wall"));
    rep.supExceptions +=
        static_cast<std::uint64_t>(num(m, "supervisor.exceptions"));
  }
  // Adaptive-estimation arms (est::appendManifest). A manifest may carry
  // several arms under distinct prefixes ("est.", "est.a.", "est.b.") —
  // detect each by its `<prefix>samples` key.
  for (const auto& [k, v] : m) {
    constexpr const char* kSuffix = "samples";
    if (k.rfind("est.", 0) != 0) continue;
    if (k.size() <= std::strlen(kSuffix) ||
        k.compare(k.size() - std::strlen(kSuffix), std::string::npos,
                  kSuffix) != 0) {
      continue;
    }
    const std::string prefix = k.substr(0, k.size() - std::strlen(kSuffix));
    // `<prefix>max_samples` also ends in "samples" but is not an arm root.
    if (prefix.size() >= 4 &&
        prefix.compare(prefix.size() - 4, 4, "max_") == 0) {
      continue;
    }
    auto pk = [&](const char* field) { return prefix + field; };
    Report::EstimateInfo info;
    info.label = str(m, pk("label").c_str(), "?");
    info.stopReason = str(m, pk("stop_reason").c_str(), "?");
    info.converged = boolean(m, pk("converged").c_str());
    info.samples = static_cast<std::uint64_t>(v.asNumber(0.0));
    info.batches = static_cast<std::uint64_t>(num(m, pk("batches").c_str()));
    info.maxSamples =
        static_cast<std::uint64_t>(num(m, pk("max_samples").c_str()));
    info.confidence = num(m, pk("confidence").c_str());
    info.successRate = num(m, pk("success_rate").c_str());
    info.wilsonLo = num(m, pk("wilson_lo").c_str());
    info.wilsonHi = num(m, pk("wilson_hi").c_str(), 1.0);
    info.bitsMean = num(m, pk("bits_mean").c_str());
    info.bitsEbLo = num(m, pk("bits_eb_lo").c_str());
    info.bitsEbHi = num(m, pk("bits_eb_hi").c_str());
    rep.estimates.push_back(std::move(info));
  }
  if (m.count("result.success") == 0) return;  // table manifest, not a run
  const std::string key = str(m, "algo") + " | " + str(m, "sched.kind") +
                          " | n=" + std::to_string(
                                        static_cast<long>(num(m, "n")));
  Group& g = rep.groups[key];
  g.runs += 1;
  g.successes += boolean(m, "result.success") ? 1 : 0;
  g.terminated += boolean(m, "result.terminated") ? 1 : 0;
  const double bits = num(m, "result.random_bits");
  const double cycles = num(m, "result.cycles");
  g.bits.push_back(bits);
  g.cycles.push_back(cycles);
  g.events.push_back(num(m, "result.events"));
  g.distance.push_back(num(m, "result.distance"));
  if (cycles > 0) {
    g.bitsPerCycleMax = std::max(g.bitsPerCycleMax, bits / cycles);
  }
  g.electionRounds +=
      static_cast<std::uint64_t>(num(m, "result.election_rounds"));
  rep.totalBits += static_cast<std::uint64_t>(bits);
  rep.totalCycles += static_cast<std::uint64_t>(cycles);

  rep.outcomes[str(m, "result.outcome", "?")] += 1;
  if (boolean(m, "fault.active")) rep.faultRuns += 1;
  rep.manifestFaultsInjected +=
      static_cast<std::uint64_t>(num(m, "result.faults_injected"));
  rep.manifestCrashed += static_cast<std::uint64_t>(num(m, "result.crashed"));

  for (const auto& [k, v] : m) {
    // result.phase.<tag>.activations / result.phase.<tag>.ns
    constexpr const char* kPrefix = "result.phase.";
    if (k.rfind(kPrefix, 0) != 0) continue;
    const std::size_t tagStart = std::strlen(kPrefix);
    const std::size_t tagEnd = k.find('.', tagStart);
    if (tagEnd == std::string::npos) continue;
    const int tag = std::atoi(k.substr(tagStart, tagEnd - tagStart).c_str());
    const auto amount = static_cast<std::uint64_t>(v.asNumber(0.0));
    if (k.compare(tagEnd, std::string::npos, ".activations") == 0) {
      rep.phaseActivations[tag] += amount;
    } else if (k.compare(tagEnd, std::string::npos, ".ns") == 0) {
      rep.phaseNanos[tag] += amount;
    }
  }
}

void ingestJsonl(const fs::path& path, Report& rep) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "apf_report: cannot open %s\n",
                 path.string().c_str());
    return;
  }
  rep.jsonlFiles += 1;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto obj = apf::obs::parseFlatObject(line);
    if (!obj) {
      rep.badLines += 1;
      continue;
    }
    const std::string kind = str(*obj, "ev");
    rep.eventsByKind[kind] += 1;
    if (kind == "compute") {
      rep.computeByPhase[static_cast<int>(num(*obj, "phase"))] += 1;
      rep.eventLogBits += static_cast<std::uint64_t>(num(*obj, "bits"));
      rep.staleness.push_back(num(*obj, "stale"));
    } else if (kind == "election_round") {
      rep.eventLogElections += 1;
    } else if (kind == "fault_injected") {
      rep.eventLogFaults += 1;
      rep.faultsByKind[str(*obj, "fault", "?")] += 1;
    } else if (kind == "robot_crashed") {
      rep.eventLogCrashes += 1;
    }
  }
}

void ingestRepro(const fs::path& path, Report& rep) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "apf_report: cannot open %s\n",
                 path.string().c_str());
    return;
  }
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  const auto doc = apf::obs::parseJson(text);
  if (!doc || doc->kind != apf::obs::JsonNode::Kind::Object) {
    std::fprintf(stderr, "apf_report: skipping malformed repro %s\n",
                 path.string().c_str());
    return;
  }
  Report::ReproInfo info;
  info.file = path.filename().string();
  const auto* algo = doc->find("algo");
  const auto* kind = doc->find("violation_kind");
  const auto* start = doc->find("start");
  const auto* fault = doc->find("fault");
  info.algo = algo != nullptr ? algo->asString("?") : "?";
  info.kind = kind != nullptr ? kind->asString("") : "";
  if (info.kind.empty()) info.kind = "(unpinned)";
  if (start != nullptr && start->kind == apf::obs::JsonNode::Kind::Array) {
    info.robots = start->items.size();
  }
  if (fault != nullptr) {
    const auto* crashes = fault->find("crashes");
    if (crashes != nullptr &&
        crashes->kind == apf::obs::JsonNode::Kind::Array) {
      info.crashes = crashes->items.size();
    }
  }
  rep.repros.push_back(std::move(info));
}

/// Wilson interval on a group's success rate at `confidence`
/// (est/estimators.h — the same arithmetic the adaptive driver stops on).
apf::est::Interval groupWilson(const Group& g, double confidence) {
  apf::est::BernoulliSummary s;
  s.trials = static_cast<std::uint64_t>(g.runs);
  s.successes = static_cast<std::uint64_t>(g.successes);
  return apf::est::wilson(s, confidence);
}

void printGroups(const Report& rep, double confidence) {
  std::printf("== runs (from %zu-group manifest set) ==\n",
              rep.groups.size());
  std::printf("%-40s %5s %9s %15s %9s %9s %11s %11s %9s\n", "group", "runs",
              "success", "wilson", "bits_mean", "bits_p95", "cycles_mean",
              "events_mean", "b/c_max");
  for (const auto& [key, g] : rep.groups) {
    const apf::est::Interval w = groupWilson(g, confidence);
    std::printf(
        "%-40s %5d %6d/%-2d [%5.3f,%5.3f] %9.1f %9.0f %11.0f %11.0f %9.3f\n",
        key.c_str(), g.runs, g.successes, g.runs, w.lo, w.hi, mean(g.bits),
        percentile(g.bits, 0.95), mean(g.cycles), mean(g.events),
        g.bitsPerCycleMax);
  }
  int runs = 0, ok = 0;
  for (const auto& [key, g] : rep.groups) {
    runs += g.runs;
    ok += g.successes;
  }
  if (runs > 0) {
    std::printf("overall: %d/%d succeeded (%.1f%%)\n", ok, runs,
                100.0 * ok / runs);
  }
}

void printBits(const Report& rep) {
  std::printf("\n== random-bit accounting ==\n");
  std::uint64_t elections = 0;
  for (const auto& [key, g] : rep.groups) elections += g.electionRounds;
  std::printf("total algorithm bits: %llu over %llu cycles",
              static_cast<unsigned long long>(rep.totalBits),
              static_cast<unsigned long long>(rep.totalCycles));
  if (rep.totalCycles > 0) {
    std::printf("  (%.4f bits/cycle)",
                static_cast<double>(rep.totalBits) /
                    static_cast<double>(rep.totalCycles));
  }
  std::printf("\nelection rounds (one bit each): %llu\n",
              static_cast<unsigned long long>(elections));
}

void printPhases(const Report& rep) {
  if (rep.phaseActivations.empty()) return;
  std::printf("\n== per-phase breakdown (manifests) ==\n");
  std::uint64_t total = 0, totalNs = 0;
  for (const auto& [tag, n] : rep.phaseActivations) total += n;
  for (const auto& [tag, ns] : rep.phaseNanos) totalNs += ns;
  std::printf("%-18s %12s %7s %12s %7s\n", "phase", "activations", "share",
              "wall_ms", "share");
  for (const auto& [tag, n] : rep.phaseActivations) {
    const auto nsIt = rep.phaseNanos.find(tag);
    const std::uint64_t ns =
        nsIt == rep.phaseNanos.end() ? 0 : nsIt->second;
    std::printf("%-18s %12llu %6.1f%% %12.2f %6.1f%%\n",
                apf::core::phaseName(tag),
                static_cast<unsigned long long>(n),
                total > 0 ? 100.0 * static_cast<double>(n) /
                                static_cast<double>(total)
                          : 0.0,
                static_cast<double>(ns) / 1e6,
                totalNs > 0 ? 100.0 * static_cast<double>(ns) /
                                  static_cast<double>(totalNs)
                            : 0.0);
  }
}

void printFaults(const Report& rep) {
  if (rep.faultRuns == 0 && rep.eventLogFaults == 0 &&
      rep.eventLogCrashes == 0) {
    return;  // fault-free telemetry: keep the report unchanged
  }
  std::printf("\n== fault injection (docs/FAULTS.md) ==\n");
  std::printf("fault-active runs: %d\n", rep.faultRuns);
  std::printf("run outcomes:");
  for (const auto& [name, n] : rep.outcomes) {
    std::printf("  %s=%d", name.c_str(), n);
  }
  std::printf("\ninjected faults: %llu; crashed robots: %llu (manifests)\n",
              static_cast<unsigned long long>(rep.manifestFaultsInjected),
              static_cast<unsigned long long>(rep.manifestCrashed));
  if (!rep.faultsByKind.empty()) {
    std::printf("injected by kind (event logs):\n");
    for (const auto& [kind, n] : rep.faultsByKind) {
      std::printf("  %-18s %12llu\n", kind.c_str(),
                  static_cast<unsigned long long>(n));
    }
  }
}

void printCampaign(const Report& rep) {
  if (rep.campaignManifests == 0) return;
  std::printf("\n== campaign pool (sim/campaign.h) ==\n");
  const double total =
      static_cast<double>(rep.campaignBusyNanos + rep.campaignIdleNanos);
  std::printf(
      "manifests: %d; jobs (max): %d; items: %llu\n"
      "worker busy %.1f ms, idle %.1f ms (utilization %.1f%%)\n"
      "mailbox hwm %llu, pending hwm %llu, merge stall %.1f ms, "
      "merge %.1f ms\n",
      rep.campaignManifests, rep.campaignJobsMax,
      static_cast<unsigned long long>(rep.campaignItems),
      static_cast<double>(rep.campaignBusyNanos) / 1e6,
      static_cast<double>(rep.campaignIdleNanos) / 1e6,
      total > 0.0 ? 100.0 * static_cast<double>(rep.campaignBusyNanos) / total
                  : 0.0,
      static_cast<unsigned long long>(rep.campaignMailboxHwm),
      static_cast<unsigned long long>(rep.campaignPendingHwm),
      static_cast<double>(rep.campaignStallNanos) / 1e6,
      static_cast<double>(rep.campaignMergeNanos) / 1e6);
}

void printSupervisor(const Report& rep) {
  if (rep.supervisorManifests == 0 && rep.repros.empty()) return;
  std::printf("\n== supervisor (docs/RESILIENCE.md) ==\n");
  if (rep.supervisorManifests > 0) {
    std::printf(
        "manifests: %d; items: %llu (finished %llu)\n"
        "retries: %llu; quarantined: %llu\n"
        "failures by kind: timeout_cycles=%llu timeout_wall=%llu "
        "exception=%llu\n",
        rep.supervisorManifests,
        static_cast<unsigned long long>(rep.supItems),
        static_cast<unsigned long long>(rep.supFinished),
        static_cast<unsigned long long>(rep.supRetries),
        static_cast<unsigned long long>(rep.supQuarantined),
        static_cast<unsigned long long>(rep.supTimeoutsCycle),
        static_cast<unsigned long long>(rep.supTimeoutsWall),
        static_cast<unsigned long long>(rep.supExceptions));
  }
  if (!rep.repros.empty()) {
    std::printf("minimized counterexamples (*.repro.json):\n");
    for (const auto& r : rep.repros) {
      std::printf("  %-32s %-10s algo=%s n=%zu crashes=%zu\n",
                  r.file.c_str(), r.kind.c_str(), r.algo.c_str(), r.robots,
                  r.crashes);
    }
  }
}

void printEstimates(const Report& rep) {
  if (rep.estimates.empty()) return;
  std::printf("\n== adaptive estimation (docs/STATISTICS.md) ==\n");
  std::printf("%-24s %9s %7s %11s %9s %15s %9s\n", "arm", "samples",
              "batches", "stop", "rate", "wilson", "bits_mean");
  for (const auto& e : rep.estimates) {
    std::printf(
        "%-24s %5llu/%-3llu %7llu %11s %9.3f [%5.3f,%5.3f] %9.1f\n",
        e.label.c_str(), static_cast<unsigned long long>(e.samples),
        static_cast<unsigned long long>(e.maxSamples),
        static_cast<unsigned long long>(e.batches), e.stopReason.c_str(),
        e.successRate, e.wilsonLo, e.wilsonHi, e.bitsMean);
  }
}

void printEventLogs(const Report& rep) {
  if (rep.jsonlFiles == 0) return;
  std::printf("\n== event logs (%llu files) ==\n",
              static_cast<unsigned long long>(rep.jsonlFiles));
  for (const auto& [kind, n] : rep.eventsByKind) {
    std::printf("%-18s %12llu\n", kind.c_str(),
                static_cast<unsigned long long>(n));
  }
  if (rep.badLines > 0) {
    std::printf("WARNING: %llu malformed lines skipped\n",
                static_cast<unsigned long long>(rep.badLines));
  }
  if (!rep.staleness.empty()) {
    std::printf(
        "snapshot staleness (config versions): mean=%.2f p50=%.0f "
        "p95=%.0f max=%.0f\n",
        mean(rep.staleness), percentile(rep.staleness, 0.50),
        percentile(rep.staleness, 0.95),
        *std::max_element(rep.staleness.begin(), rep.staleness.end()));
  }
  std::printf("bits from compute events: %llu; election rounds: %llu\n",
              static_cast<unsigned long long>(rep.eventLogBits),
              static_cast<unsigned long long>(rep.eventLogElections));
}

/// Returns false on mismatch. Only meaningful when every manifest in the
/// directory has a sibling event log (APF_OBS_EVENTS=1 campaigns).
/// `verbose` prints the per-phase table (off in --json mode, where the
/// verdict lands in the document instead).
bool crossCheck(const Report& rep, bool verbose) {
  if (rep.jsonlFiles == 0) return true;
  if (rep.phaseActivations.empty() && rep.supervisorManifests == 0 &&
      rep.estimates.empty() && rep.faultRuns == 0 &&
      rep.eventLogFaults == 0 && rep.eventLogCrashes == 0) {
    return true;  // nothing to reconcile against the event logs
  }
  if (verbose) {
    std::printf(
        "\n== cross-check: event log vs Metrics::phaseActivations ==\n");
  }
  bool allOk = true;
  for (const auto& [tag, n] : rep.phaseActivations) {
    const auto it = rep.computeByPhase.find(tag);
    const std::uint64_t fromEvents =
        it == rep.computeByPhase.end() ? 0 : it->second;
    const bool ok = fromEvents == n;
    allOk = allOk && ok;
    if (verbose) {
      std::printf("%-18s manifests=%llu events=%llu %s\n",
                  apf::core::phaseName(tag),
                  static_cast<unsigned long long>(n),
                  static_cast<unsigned long long>(fromEvents),
                  ok ? "OK" : "MISMATCH");
    }
  }
  // Supervisor accounting: every quarantined item and every retry appears
  // exactly once in the event stream (sim/supervisor.h merge-thread
  // contract), so manifest tallies and event counts must agree.
  if (rep.supervisorManifests > 0 && rep.jsonlFiles > 0) {
    auto count = [&](const char* kind) -> std::uint64_t {
      const auto it = rep.eventsByKind.find(kind);
      return it == rep.eventsByKind.end() ? 0 : it->second;
    };
    const bool quarOk = count("run_quarantined") == rep.supQuarantined;
    const bool retryOk = count("run_retried") == rep.supRetries;
    allOk = allOk && quarOk && retryOk;
    if (verbose) {
      std::printf("%-18s manifests=%llu events=%llu %s\n", "quarantined",
                  static_cast<unsigned long long>(rep.supQuarantined),
                  static_cast<unsigned long long>(count("run_quarantined")),
                  quarOk ? "OK" : "MISMATCH");
      std::printf("%-18s manifests=%llu events=%llu %s\n", "retries",
                  static_cast<unsigned long long>(rep.supRetries),
                  static_cast<unsigned long long>(count("run_retried")),
                  retryOk ? "OK" : "MISMATCH");
    }
  }
  // Estimation accounting: the adaptive driver emits exactly one
  // batch_scheduled event per batch it commits to and one
  // estimate_converged per arm that stopped early (est/adaptive.h), so
  // event counts must match the manifests' `est.*` tallies.
  if (!rep.estimates.empty() && rep.jsonlFiles > 0) {
    auto count = [&](const char* kind) -> std::uint64_t {
      const auto it = rep.eventsByKind.find(kind);
      return it == rep.eventsByKind.end() ? 0 : it->second;
    };
    std::uint64_t batches = 0;
    std::uint64_t converged = 0;
    for (const auto& e : rep.estimates) {
      batches += e.batches;
      converged += e.converged ? 1 : 0;
    }
    const bool batchOk = count("batch_scheduled") == batches;
    const bool convOk = count("estimate_converged") == converged;
    allOk = allOk && batchOk && convOk;
    if (verbose) {
      std::printf("%-18s manifests=%llu events=%llu %s\n", "est_batches",
                  static_cast<unsigned long long>(batches),
                  static_cast<unsigned long long>(count("batch_scheduled")),
                  batchOk ? "OK" : "MISMATCH");
      std::printf("%-18s manifests=%llu events=%llu %s\n", "est_converged",
                  static_cast<unsigned long long>(converged),
                  static_cast<unsigned long long>(
                      count("estimate_converged")),
                  convOk ? "OK" : "MISMATCH");
    }
  }
  // Fault accounting must agree too: every injected fault and every crash
  // appears exactly once in the event stream (obs/event.h contract).
  if (rep.faultRuns > 0 || rep.eventLogFaults > 0 || rep.eventLogCrashes > 0) {
    const bool faultsOk = rep.eventLogFaults == rep.manifestFaultsInjected;
    const bool crashesOk = rep.eventLogCrashes == rep.manifestCrashed;
    allOk = allOk && faultsOk && crashesOk;
    if (verbose) {
      std::printf("%-18s manifests=%llu events=%llu %s\n", "faults_injected",
                  static_cast<unsigned long long>(rep.manifestFaultsInjected),
                  static_cast<unsigned long long>(rep.eventLogFaults),
                  faultsOk ? "OK" : "MISMATCH");
      std::printf("%-18s manifests=%llu events=%llu %s\n", "robots_crashed",
                  static_cast<unsigned long long>(rep.manifestCrashed),
                  static_cast<unsigned long long>(rep.eventLogCrashes),
                  crashesOk ? "OK" : "MISMATCH");
    }
  }
  return allOk;
}

/// Machine-readable report: one JSON object on stdout mirroring every
/// section of the human output (see docs/OBSERVABILITY.md for the schema).
void printJson(const Report& rep, bool consistent, double confidence) {
  using apf::obs::JsonObjectWriter;
  JsonObjectWriter top;
  top.field("schema", "apf.report.v1");
  top.field("confidence", confidence);

  std::string groups;
  for (const auto& [key, g] : rep.groups) {
    const apf::est::Interval wilson = groupWilson(g, confidence);
    JsonObjectWriter w;
    w.field("group", key);
    w.field("runs", g.runs);
    w.field("successes", g.successes);
    w.field("success_lo", wilson.lo);
    w.field("success_hi", wilson.hi);
    w.field("terminated", g.terminated);
    w.field("bits_mean", mean(g.bits));
    w.field("bits_p95", percentile(g.bits, 0.95));
    w.field("cycles_mean", mean(g.cycles));
    w.field("events_mean", mean(g.events));
    w.field("distance_mean", mean(g.distance));
    w.field("bits_per_cycle_max", g.bitsPerCycleMax);
    w.field("election_rounds", g.electionRounds);
    if (!groups.empty()) groups += ",";
    groups += w.str();
  }
  top.rawField("groups", "[" + groups + "]");
  top.field("total_random_bits", rep.totalBits);
  top.field("total_cycles", rep.totalCycles);

  std::string phases;
  for (const auto& [tag, n] : rep.phaseActivations) {
    const auto nsIt = rep.phaseNanos.find(tag);
    JsonObjectWriter w;
    w.field("phase", apf::core::phaseName(tag));
    w.field("activations", n);
    w.field("wall_ns",
            nsIt == rep.phaseNanos.end() ? std::uint64_t{0} : nsIt->second);
    if (!phases.empty()) phases += ",";
    phases += w.str();
  }
  top.rawField("phases", "[" + phases + "]");

  {
    JsonObjectWriter w;
    w.field("fault_runs", rep.faultRuns);
    w.field("faults_injected", rep.manifestFaultsInjected);
    w.field("crashed", rep.manifestCrashed);
    JsonObjectWriter outcomes;
    for (const auto& [name, n] : rep.outcomes) outcomes.field(name, n);
    w.rawField("outcomes", outcomes.str());
    JsonObjectWriter byKind;
    for (const auto& [kind, n] : rep.faultsByKind) byKind.field(kind, n);
    w.rawField("by_kind", byKind.str());
    top.rawField("faults", w.str());
  }
  {
    JsonObjectWriter w;
    w.field("files", rep.jsonlFiles);
    w.field("bad_lines", rep.badLines);
    w.field("bits", rep.eventLogBits);
    w.field("election_rounds", rep.eventLogElections);
    JsonObjectWriter byKind;
    for (const auto& [kind, n] : rep.eventsByKind) byKind.field(kind, n);
    w.rawField("events_by_kind", byKind.str());
    top.rawField("event_logs", w.str());
  }
  if (rep.campaignManifests > 0) {
    JsonObjectWriter w;
    w.field("manifests", rep.campaignManifests);
    w.field("jobs_max", rep.campaignJobsMax);
    w.field("items", rep.campaignItems);
    w.field("wall_nanos", rep.campaignWallNanos);
    w.field("worker_busy_nanos", rep.campaignBusyNanos);
    w.field("worker_idle_nanos", rep.campaignIdleNanos);
    const double total =
        static_cast<double>(rep.campaignBusyNanos + rep.campaignIdleNanos);
    w.field("utilization",
            total > 0.0
                ? static_cast<double>(rep.campaignBusyNanos) / total
                : 0.0);
    w.field("mailbox_high_water", rep.campaignMailboxHwm);
    w.field("pending_high_water", rep.campaignPendingHwm);
    w.field("merge_stall_nanos", rep.campaignStallNanos);
    w.field("merge_nanos", rep.campaignMergeNanos);
    top.rawField("campaign", w.str());
  }
  if (rep.supervisorManifests > 0 || !rep.repros.empty()) {
    JsonObjectWriter w;
    w.field("manifests", rep.supervisorManifests);
    w.field("items", rep.supItems);
    w.field("finished", rep.supFinished);
    w.field("retries", rep.supRetries);
    w.field("quarantined", rep.supQuarantined);
    w.field("timeouts_cycle", rep.supTimeoutsCycle);
    w.field("timeouts_wall", rep.supTimeoutsWall);
    w.field("exceptions", rep.supExceptions);
    std::string repros;
    for (const auto& r : rep.repros) {
      JsonObjectWriter rw;
      rw.field("file", r.file);
      rw.field("algo", r.algo);
      rw.field("violation_kind", r.kind);
      rw.field("robots", static_cast<std::uint64_t>(r.robots));
      rw.field("crashes", static_cast<std::uint64_t>(r.crashes));
      if (!repros.empty()) repros += ",";
      repros += rw.str();
    }
    w.rawField("repros", "[" + repros + "]");
    top.rawField("supervisor", w.str());
  }
  if (!rep.estimates.empty()) {
    std::string arms;
    for (const auto& e : rep.estimates) {
      JsonObjectWriter w;
      w.field("label", e.label);
      w.field("samples", e.samples);
      w.field("batches", e.batches);
      w.field("max_samples", e.maxSamples);
      w.field("confidence", e.confidence);
      w.field("stop_reason", e.stopReason);
      w.field("converged", e.converged);
      w.field("success_rate", e.successRate);
      w.field("wilson_lo", e.wilsonLo);
      w.field("wilson_hi", e.wilsonHi);
      w.field("bits_mean", e.bitsMean);
      w.field("bits_eb_lo", e.bitsEbLo);
      w.field("bits_eb_hi", e.bitsEbHi);
      if (!arms.empty()) arms += ",";
      arms += w.str();
    }
    JsonObjectWriter w;
    w.rawField("arms", "[" + arms + "]");
    top.rawField("estimation", w.str());
  }
  top.field("consistent", consistent);
  std::printf("%s\n", top.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  double confidence = 0.95;
  apf::cli::ArgParser args(
      "apf_report",
      "aggregates *.manifest.json and *.jsonl telemetry from DIR\n"
      "(see docs/OBSERVABILITY.md)");
  args.flag("--json",
            &json,
            "print one machine-readable JSON object\n"
            "instead of the human report");
  args.num("--confidence", &confidence,
           apf::cli::ArgParser::Num::Confidence, "P",
           "level for the Wilson intervals on group\n"
           "success rates, in (0, 1) (default 0.95;\n"
           "see docs/STATISTICS.md)");
  args.positionals("DIR",
                   "telemetry directory (default: $APF_OBS_DIR)", 0, 1);
  args.exitNotes(" (1 = cross-check inconsistency)");
  args.parse(argc, argv);

  const std::string dirArg =
      args.pos().empty() ? apf::cli::env().obsDir : args.pos().front();
  if (dirArg.empty()) {
    std::fprintf(stderr,
                 "apf_report: no DIR argument and APF_OBS_DIR is unset "
                 "(try --help)\n");
    return 2;
  }
  const fs::path dir(dirArg);
  if (!fs::is_directory(dir)) {
    std::fprintf(stderr, "apf_report: not a directory: %s\n",
                 dirArg.c_str());
    return 2;
  }

  Report rep;
  std::vector<fs::path> manifests, logs, repros;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() > 14 &&
        name.compare(name.size() - 14, 14, ".manifest.json") == 0) {
      manifests.push_back(entry.path());
    } else if (name.size() > 11 &&
               name.compare(name.size() - 11, 11, ".repro.json") == 0) {
      repros.push_back(entry.path());
    } else if (name.size() > 6 &&
               name.compare(name.size() - 6, 6, ".jsonl") == 0) {
      logs.push_back(entry.path());
    }
  }
  std::sort(manifests.begin(), manifests.end());
  std::sort(logs.begin(), logs.end());
  std::sort(repros.begin(), repros.end());

  for (const auto& p : manifests) {
    try {
      ingestManifest(p, rep);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "apf_report: skipping %s: %s\n",
                   p.string().c_str(), e.what());
    }
  }
  for (const auto& p : logs) ingestJsonl(p, rep);
  for (const auto& p : repros) ingestRepro(p, rep);

  if (rep.groups.empty() && rep.jsonlFiles == 0 &&
      rep.campaignManifests == 0 && rep.supervisorManifests == 0 &&
      rep.repros.empty() && rep.estimates.empty()) {
    std::fprintf(stderr, "apf_report: no telemetry found in %s\n",
                 dirArg.c_str());
    return 2;
  }

  if (json) {
    const bool consistent = crossCheck(rep, /*verbose=*/false);
    printJson(rep, consistent, confidence);
    return consistent ? 0 : 1;
  }
  printGroups(rep, confidence);
  printBits(rep);
  printPhases(rep);
  printCampaign(rep);
  printSupervisor(rep);
  printEstimates(rep);
  printFaults(rep);
  printEventLogs(rep);
  const bool consistent = crossCheck(rep, /*verbose=*/true);
  return consistent ? 0 : 1;
}
