/// \file apf_report.cpp
/// Telemetry aggregator: ingests run manifests (`*.manifest.json`) and
/// structured event logs (`*.jsonl`) from a directory and prints
///  * success rates and run-cost statistics grouped by (algo, sched, n),
///  * random-bit accounting (the paper's one-bit-per-cycle claim),
///  * per-phase activation and wall-time breakdowns,
///  * fault-injection accounting (run outcomes, injected faults by kind;
///    docs/FAULTS.md),
///  * event-log statistics (event counts by kind, snapshot staleness),
///  * a cross-check that event-log per-phase totals match the manifests'
///    `Metrics::phaseActivations` numbers, and that fault/crash event
///    counts match the manifests' `result.faults_injected`/`result.crashed`.
///
/// Produce inputs with either
///   apf_sim --jsonl run.jsonl --manifest run.manifest.json ...
/// or, for whole benchmark campaigns,
///   APF_OBS_DIR=obsout [APF_OBS_EVENTS=1] ./build/bench/bench_randbits
/// and then:
///   apf_report obsout

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "core/phases.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/stats.h"

namespace fs = std::filesystem;
using apf::obs::JsonObject;
using apf::obs::JsonValue;

namespace {

double num(const JsonObject& obj, const char* key, double fallback = 0.0) {
  const auto it = obj.find(key);
  return it == obj.end() ? fallback : it->second.asNumber(fallback);
}

std::string str(const JsonObject& obj, const char* key,
                const std::string& fallback = "?") {
  const auto it = obj.find(key);
  return it == obj.end() ? fallback : it->second.asString(fallback);
}

bool boolean(const JsonObject& obj, const char* key) {
  const auto it = obj.find(key);
  return it != obj.end() && it->second.asBool(false);
}

double mean(const std::vector<double>& xs) {
  return xs.empty() ? 0.0
                    : std::accumulate(xs.begin(), xs.end(), 0.0) /
                          static_cast<double>(xs.size());
}

double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(q * (xs.size() - 1));
  return xs[idx];
}

/// Statistics accumulated per (algo, sched, n) manifest group.
struct Group {
  int runs = 0;
  int successes = 0;
  int terminated = 0;
  std::vector<double> bits;
  std::vector<double> cycles;
  std::vector<double> events;
  std::vector<double> distance;
  double bitsPerCycleMax = 0.0;
  std::uint64_t electionRounds = 0;
};

/// Whole-directory aggregation.
struct Report {
  std::map<std::string, Group> groups;  // key: algo|sched|n
  // Per-phase totals from manifests.
  std::map<int, std::uint64_t> phaseActivations;
  std::map<int, std::uint64_t> phaseNanos;
  std::uint64_t totalBits = 0;
  std::uint64_t totalCycles = 0;
  // Fault accounting from manifests (docs/FAULTS.md).
  int faultRuns = 0;  // manifests with fault.active=true
  std::map<std::string, int> outcomes;  // result.outcome tallies
  std::uint64_t manifestFaultsInjected = 0;  // sum of result.faults_injected
  std::uint64_t manifestCrashed = 0;         // sum of result.crashed
  // Event-log aggregation.
  std::map<std::string, std::uint64_t> eventsByKind;
  std::map<int, std::uint64_t> computeByPhase;  // from compute events
  std::map<std::string, std::uint64_t> faultsByKind;  // fault_injected "fault"
  std::uint64_t eventLogFaults = 0;   // fault_injected event count
  std::uint64_t eventLogCrashes = 0;  // robot_crashed event count
  std::uint64_t eventLogBits = 0;
  std::uint64_t eventLogElections = 0;
  std::vector<double> staleness;
  std::uint64_t jsonlFiles = 0;
  std::uint64_t badLines = 0;
};

void ingestManifest(const fs::path& path, Report& rep) {
  const JsonObject m = apf::obs::loadFlatJsonFile(path.string());
  if (m.count("result.success") == 0) return;  // table manifest, not a run
  const std::string key = str(m, "algo") + " | " + str(m, "sched.kind") +
                          " | n=" + std::to_string(
                                        static_cast<long>(num(m, "n")));
  Group& g = rep.groups[key];
  g.runs += 1;
  g.successes += boolean(m, "result.success") ? 1 : 0;
  g.terminated += boolean(m, "result.terminated") ? 1 : 0;
  const double bits = num(m, "result.random_bits");
  const double cycles = num(m, "result.cycles");
  g.bits.push_back(bits);
  g.cycles.push_back(cycles);
  g.events.push_back(num(m, "result.events"));
  g.distance.push_back(num(m, "result.distance"));
  if (cycles > 0) {
    g.bitsPerCycleMax = std::max(g.bitsPerCycleMax, bits / cycles);
  }
  g.electionRounds +=
      static_cast<std::uint64_t>(num(m, "result.election_rounds"));
  rep.totalBits += static_cast<std::uint64_t>(bits);
  rep.totalCycles += static_cast<std::uint64_t>(cycles);

  rep.outcomes[str(m, "result.outcome", "?")] += 1;
  if (boolean(m, "fault.active")) rep.faultRuns += 1;
  rep.manifestFaultsInjected +=
      static_cast<std::uint64_t>(num(m, "result.faults_injected"));
  rep.manifestCrashed += static_cast<std::uint64_t>(num(m, "result.crashed"));

  for (const auto& [k, v] : m) {
    // result.phase.<tag>.activations / result.phase.<tag>.ns
    constexpr const char* kPrefix = "result.phase.";
    if (k.rfind(kPrefix, 0) != 0) continue;
    const std::size_t tagStart = std::strlen(kPrefix);
    const std::size_t tagEnd = k.find('.', tagStart);
    if (tagEnd == std::string::npos) continue;
    const int tag = std::atoi(k.substr(tagStart, tagEnd - tagStart).c_str());
    const auto amount = static_cast<std::uint64_t>(v.asNumber(0.0));
    if (k.compare(tagEnd, std::string::npos, ".activations") == 0) {
      rep.phaseActivations[tag] += amount;
    } else if (k.compare(tagEnd, std::string::npos, ".ns") == 0) {
      rep.phaseNanos[tag] += amount;
    }
  }
}

void ingestJsonl(const fs::path& path, Report& rep) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "apf_report: cannot open %s\n",
                 path.string().c_str());
    return;
  }
  rep.jsonlFiles += 1;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto obj = apf::obs::parseFlatObject(line);
    if (!obj) {
      rep.badLines += 1;
      continue;
    }
    const std::string kind = str(*obj, "ev");
    rep.eventsByKind[kind] += 1;
    if (kind == "compute") {
      rep.computeByPhase[static_cast<int>(num(*obj, "phase"))] += 1;
      rep.eventLogBits += static_cast<std::uint64_t>(num(*obj, "bits"));
      rep.staleness.push_back(num(*obj, "stale"));
    } else if (kind == "election_round") {
      rep.eventLogElections += 1;
    } else if (kind == "fault_injected") {
      rep.eventLogFaults += 1;
      rep.faultsByKind[str(*obj, "fault", "?")] += 1;
    } else if (kind == "robot_crashed") {
      rep.eventLogCrashes += 1;
    }
  }
}

void printGroups(const Report& rep) {
  std::printf("== runs (from %zu-group manifest set) ==\n",
              rep.groups.size());
  std::printf("%-40s %5s %9s %9s %9s %11s %11s %9s\n", "group", "runs",
              "success", "bits_mean", "bits_p95", "cycles_mean",
              "events_mean", "b/c_max");
  for (const auto& [key, g] : rep.groups) {
    std::printf("%-40s %5d %6d/%-2d %9.1f %9.0f %11.0f %11.0f %9.3f\n",
                key.c_str(), g.runs, g.successes, g.runs, mean(g.bits),
                percentile(g.bits, 0.95), mean(g.cycles), mean(g.events),
                g.bitsPerCycleMax);
  }
  int runs = 0, ok = 0;
  for (const auto& [key, g] : rep.groups) {
    runs += g.runs;
    ok += g.successes;
  }
  if (runs > 0) {
    std::printf("overall: %d/%d succeeded (%.1f%%)\n", ok, runs,
                100.0 * ok / runs);
  }
}

void printBits(const Report& rep) {
  std::printf("\n== random-bit accounting ==\n");
  std::uint64_t elections = 0;
  for (const auto& [key, g] : rep.groups) elections += g.electionRounds;
  std::printf("total algorithm bits: %llu over %llu cycles",
              static_cast<unsigned long long>(rep.totalBits),
              static_cast<unsigned long long>(rep.totalCycles));
  if (rep.totalCycles > 0) {
    std::printf("  (%.4f bits/cycle)",
                static_cast<double>(rep.totalBits) /
                    static_cast<double>(rep.totalCycles));
  }
  std::printf("\nelection rounds (one bit each): %llu\n",
              static_cast<unsigned long long>(elections));
}

void printPhases(const Report& rep) {
  if (rep.phaseActivations.empty()) return;
  std::printf("\n== per-phase breakdown (manifests) ==\n");
  std::uint64_t total = 0, totalNs = 0;
  for (const auto& [tag, n] : rep.phaseActivations) total += n;
  for (const auto& [tag, ns] : rep.phaseNanos) totalNs += ns;
  std::printf("%-18s %12s %7s %12s %7s\n", "phase", "activations", "share",
              "wall_ms", "share");
  for (const auto& [tag, n] : rep.phaseActivations) {
    const auto nsIt = rep.phaseNanos.find(tag);
    const std::uint64_t ns =
        nsIt == rep.phaseNanos.end() ? 0 : nsIt->second;
    std::printf("%-18s %12llu %6.1f%% %12.2f %6.1f%%\n",
                apf::core::phaseName(tag),
                static_cast<unsigned long long>(n),
                total > 0 ? 100.0 * static_cast<double>(n) /
                                static_cast<double>(total)
                          : 0.0,
                static_cast<double>(ns) / 1e6,
                totalNs > 0 ? 100.0 * static_cast<double>(ns) /
                                  static_cast<double>(totalNs)
                            : 0.0);
  }
}

void printFaults(const Report& rep) {
  if (rep.faultRuns == 0 && rep.eventLogFaults == 0 &&
      rep.eventLogCrashes == 0) {
    return;  // fault-free telemetry: keep the report unchanged
  }
  std::printf("\n== fault injection (docs/FAULTS.md) ==\n");
  std::printf("fault-active runs: %d\n", rep.faultRuns);
  std::printf("run outcomes:");
  for (const auto& [name, n] : rep.outcomes) {
    std::printf("  %s=%d", name.c_str(), n);
  }
  std::printf("\ninjected faults: %llu; crashed robots: %llu (manifests)\n",
              static_cast<unsigned long long>(rep.manifestFaultsInjected),
              static_cast<unsigned long long>(rep.manifestCrashed));
  if (!rep.faultsByKind.empty()) {
    std::printf("injected by kind (event logs):\n");
    for (const auto& [kind, n] : rep.faultsByKind) {
      std::printf("  %-18s %12llu\n", kind.c_str(),
                  static_cast<unsigned long long>(n));
    }
  }
}

void printEventLogs(const Report& rep) {
  if (rep.jsonlFiles == 0) return;
  std::printf("\n== event logs (%llu files) ==\n",
              static_cast<unsigned long long>(rep.jsonlFiles));
  for (const auto& [kind, n] : rep.eventsByKind) {
    std::printf("%-18s %12llu\n", kind.c_str(),
                static_cast<unsigned long long>(n));
  }
  if (rep.badLines > 0) {
    std::printf("WARNING: %llu malformed lines skipped\n",
                static_cast<unsigned long long>(rep.badLines));
  }
  if (!rep.staleness.empty()) {
    std::printf(
        "snapshot staleness (config versions): mean=%.2f p50=%.0f "
        "p95=%.0f max=%.0f\n",
        mean(rep.staleness), percentile(rep.staleness, 0.50),
        percentile(rep.staleness, 0.95),
        *std::max_element(rep.staleness.begin(), rep.staleness.end()));
  }
  std::printf("bits from compute events: %llu; election rounds: %llu\n",
              static_cast<unsigned long long>(rep.eventLogBits),
              static_cast<unsigned long long>(rep.eventLogElections));
}

/// Returns false on mismatch. Only meaningful when every manifest in the
/// directory has a sibling event log (APF_OBS_EVENTS=1 campaigns).
bool crossCheck(const Report& rep) {
  if (rep.jsonlFiles == 0 || rep.phaseActivations.empty()) return true;
  std::printf("\n== cross-check: event log vs Metrics::phaseActivations ==\n");
  bool allOk = true;
  for (const auto& [tag, n] : rep.phaseActivations) {
    const auto it = rep.computeByPhase.find(tag);
    const std::uint64_t fromEvents =
        it == rep.computeByPhase.end() ? 0 : it->second;
    const bool ok = fromEvents == n;
    allOk = allOk && ok;
    std::printf("%-18s manifests=%llu events=%llu %s\n",
                apf::core::phaseName(tag),
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(fromEvents),
                ok ? "OK" : "MISMATCH");
  }
  // Fault accounting must agree too: every injected fault and every crash
  // appears exactly once in the event stream (obs/event.h contract).
  if (rep.faultRuns > 0 || rep.eventLogFaults > 0 || rep.eventLogCrashes > 0) {
    const bool faultsOk = rep.eventLogFaults == rep.manifestFaultsInjected;
    const bool crashesOk = rep.eventLogCrashes == rep.manifestCrashed;
    allOk = allOk && faultsOk && crashesOk;
    std::printf("%-18s manifests=%llu events=%llu %s\n", "faults_injected",
                static_cast<unsigned long long>(rep.manifestFaultsInjected),
                static_cast<unsigned long long>(rep.eventLogFaults),
                faultsOk ? "OK" : "MISMATCH");
    std::printf("%-18s manifests=%llu events=%llu %s\n", "robots_crashed",
                static_cast<unsigned long long>(rep.manifestCrashed),
                static_cast<unsigned long long>(rep.eventLogCrashes),
                crashesOk ? "OK" : "MISMATCH");
  }
  return allOk;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2 || std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "-h") == 0) {
    std::fprintf(stderr,
                 "usage: apf_report DIR\n"
                 "  aggregates *.manifest.json and *.jsonl telemetry from\n"
                 "  DIR (see docs/OBSERVABILITY.md)\n");
    return 2;
  }
  const fs::path dir(argv[1]);
  if (!fs::is_directory(dir)) {
    std::fprintf(stderr, "apf_report: not a directory: %s\n", argv[1]);
    return 2;
  }

  Report rep;
  std::vector<fs::path> manifests, logs;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() > 14 &&
        name.compare(name.size() - 14, 14, ".manifest.json") == 0) {
      manifests.push_back(entry.path());
    } else if (name.size() > 6 &&
               name.compare(name.size() - 6, 6, ".jsonl") == 0) {
      logs.push_back(entry.path());
    }
  }
  std::sort(manifests.begin(), manifests.end());
  std::sort(logs.begin(), logs.end());

  for (const auto& p : manifests) {
    try {
      ingestManifest(p, rep);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "apf_report: skipping %s: %s\n",
                   p.string().c_str(), e.what());
    }
  }
  for (const auto& p : logs) ingestJsonl(p, rep);

  if (rep.groups.empty() && rep.jsonlFiles == 0) {
    std::fprintf(stderr, "apf_report: no telemetry found in %s\n", argv[1]);
    return 1;
  }

  printGroups(rep);
  printBits(rep);
  printPhases(rep);
  printFaults(rep);
  printEventLogs(rep);
  const bool consistent = crossCheck(rep);
  return consistent ? 0 : 1;
}
