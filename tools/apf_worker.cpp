/// \file apf_worker.cpp
/// Shard worker for multi-process campaign execution (sim/shard.h,
/// docs/API.md). Reads an apf.shard.v1 spec, executes its slice of the
/// campaign's global run indices through the same supervised path apf_sim
/// uses in-process, and streams every completed run into an fsync'd shard
/// journal keyed by the spec's canonical JSON. Normally spawned by the
/// coordinator (apf_sim --shards K), but `--shard i/k` is a stable
/// interface for external launchers placing shards on other machines.
///
/// The journal is always opened resume-or-create: a relaunched worker
/// (coordinator retry after a SIGKILL) replays what it already journaled
/// and re-runs only the rest. A `<journal>.lock` flock serializes workers
/// per shard — a second worker on a live shard exits 4 (retryable) instead
/// of interleaving appends.
///
/// stdout is reserved for nothing: all human output goes to stderr, so the
/// coordinator can capture both into the shard log without polluting
/// byte-compared campaign output.

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

#include "sim/campaign.h"
#include "sim/shard.h"
#include "sim/supervisor.h"
#include "algo_select.h"
#include "cli_parse.h"

namespace {

/// Parses "--shard i/k" (shard i of k, 0-based). Exits 2 on garbage.
void parseShard(const std::string& s, unsigned& index, unsigned& count) {
  const std::size_t slash = s.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= s.size()) {
    apf::cli::badValue("apf_worker", "--shard", s.c_str(),
                       "INDEX/COUNT (e.g. 0/4)");
  }
  const std::uint64_t i =
      apf::cli::parseU64("apf_worker", "--shard", s.substr(0, slash).c_str());
  const std::uint64_t k =
      apf::cli::parseU64("apf_worker", "--shard", s.substr(slash + 1).c_str());
  if (k == 0 || i >= k || k > 1u << 20) {
    apf::cli::badValue("apf_worker", "--shard", s.c_str(),
                       "INDEX < COUNT (e.g. 0/4)");
  }
  index = static_cast<unsigned>(i);
  count = static_cast<unsigned>(k);
}

/// Takes the shard's advisory lock, or exits 4 when another worker holds
/// it. The fd is deliberately leaked: the lock must live exactly as long
/// as the process (the kernel releases it on any exit, including SIGKILL).
void lockShardJournal(const std::string& journalPath) {
#ifndef _WIN32
  const std::string lockPath = journalPath + ".lock";
  const int fd = ::open(lockPath.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (fd < 0) {
    std::fprintf(stderr, "apf_worker: cannot open lock %s: %s\n",
                 lockPath.c_str(), std::strerror(errno));
    std::exit(1);
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    std::fprintf(stderr,
                 "apf_worker: shard journal lock held by another process "
                 "(%s); exiting 4 (retryable)\n",
                 lockPath.c_str());
    std::exit(4);
  }
#else
  (void)journalPath;
#endif
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace apf;

  std::string specPath;
  std::string shardStr = "0/1";
  std::string journalPath;
  std::string reportPath;
  int jobs = 1;
  bool quiet = false;

  cli::ArgParser args(
      "apf_worker",
      "executes one shard of an apf.shard.v1 campaign spec (sim/shard.h);\n"
      "spawned by apf_sim --shards K, or placed externally via --shard");
  args.str("--spec", &specPath, "F", "apf.shard.v1 spec file (required)");
  args.str("--shard", &shardStr, "I/K",
           "this worker owns shard I of K contiguous slices of the\n"
           "campaign's run indices (default 0/1 = the whole campaign)");
  args.str("--journal", &journalPath, "F",
           "shard journal, resume-or-create (required); appends are\n"
           "fsync'd per run and keyed by the spec's canonical JSON");
  args.str("--report", &reportPath, "F",
           "write the shard's apf.supervisor.v1 report here");
  args.intNonNegative("--jobs", &jobs, "N",
                      "threads inside this worker (default 1; the\n"
                      "coordinator provides process-level parallelism)");
  args.flag("--quiet", &quiet, "no summary line on stderr");
  args.exitNotes(
      ", 2 bad spec/schema,\n"
      "4 shard journal lock held (retryable)");
  args.parse(argc, argv);

  if (specPath.empty() || journalPath.empty()) {
    std::fprintf(stderr,
                 "apf_worker: --spec and --journal are required (try "
                 "--help)\n");
    return 2;
  }

  unsigned shardIndex = 0;
  unsigned shardCount = 1;
  parseShard(shardStr, shardIndex, shardCount);

  sim::ShardSpec spec;
  try {
    spec = sim::loadShardSpec(specPath);
  } catch (const std::exception& e) {
    // Covers unreadable files, malformed JSON, and the cross-version
    // refusal ("this build speaks apf.shard.v1") — all fatal spec errors.
    std::fprintf(stderr, "apf_worker: %s\n", e.what());
    return 2;
  }
  if (const std::string err = sim::validateShardSpec(spec); !err.empty()) {
    std::fprintf(stderr, "apf_worker: invalid spec: %s\n", err.c_str());
    return 2;
  }

  bool multiplicity = false;
  const std::unique_ptr<sim::Algorithm> algo =
      cli::makeAlgorithm(spec.algo, multiplicity);
  if (algo == nullptr) {
    std::fprintf(stderr, "apf_worker: unknown algorithm in spec: %s (want %s)\n",
                 spec.algo.c_str(), cli::algorithmNames());
    return 2;
  }
  if (multiplicity) spec.multiplicity = true;

  lockShardJournal(journalPath);

  const sim::ShardRange range =
      sim::shardRange(spec.runs, shardIndex, shardCount);
  sim::CampaignJournal journal(journalPath, sim::shardConfigKey(spec),
                               /*resume=*/true);
  const std::size_t replayable = journal.completedCount();

  const sim::SupervisorReport report = sim::runShard(
      spec, *algo, range.lo, range.hi, &journal, /*recorder=*/nullptr,
      sim::campaignJobs(jobs));

  if (!reportPath.empty()) report.write(reportPath);

  if (!quiet) {
    std::fprintf(stderr,
                 "apf_worker: shard %u/%u runs [%llu, %llu): %llu fresh, "
                 "%llu replayed (%zu journaled at start), %llu retries, "
                 "%llu quarantined\n",
                 shardIndex, shardCount,
                 static_cast<unsigned long long>(range.lo),
                 static_cast<unsigned long long>(range.hi),
                 static_cast<unsigned long long>(report.completed),
                 static_cast<unsigned long long>(report.replayed), replayable,
                 static_cast<unsigned long long>(report.retries),
                 static_cast<unsigned long long>(report.quarantined));
  }
  return report.allCompleted() ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "apf_worker: %s\n", e.what());
  return 1;
}
