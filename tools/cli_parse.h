#pragma once

/// \file cli_parse.h
/// Loud numeric CLI parsing shared by the apf_* tools. Every flag rejects
/// garbage, trailing junk, and out-of-domain values with a clear message
/// and exit code 2 (usage error) instead of surfacing a bare std::stod
/// exception — or worse, atof's silent 0.0, which once turned a mistyped
/// threshold into "compare everything against zero".

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace apf::cli {

[[noreturn]] inline void badValue(const char* tool, const char* flag,
                                  const char* got, const char* want) {
  std::fprintf(stderr, "%s: %s expects %s, got '%s'\n", tool, flag, want,
               got);
  std::exit(2);
}

inline double parseDouble(const char* tool, const char* flag, const char* s) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != std::strlen(s)) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    badValue(tool, flag, s, "a number");
  }
}

inline double parseNonNegative(const char* tool, const char* flag,
                               const char* s) {
  const double v = parseDouble(tool, flag, s);
  if (v < 0.0 || !(v == v)) badValue(tool, flag, s, "a non-negative number");
  return v;
}

/// Probability in the closed interval [0, 1].
inline double parseProb(const char* tool, const char* flag, const char* s) {
  const double v = parseDouble(tool, flag, s);
  if (v < 0.0 || v > 1.0 || !(v == v)) {
    badValue(tool, flag, s, "a probability in [0, 1]");
  }
  return v;
}

/// Confidence level in the OPEN interval (0, 1) — 0 and 1 make every
/// interval degenerate or vacuous, so they are usage errors, not settings.
inline double parseConfidence(const char* tool, const char* flag,
                              const char* s) {
  const double v = parseDouble(tool, flag, s);
  if (!(v > 0.0 && v < 1.0)) {
    badValue(tool, flag, s, "a confidence level in (0, 1)");
  }
  return v;
}

inline std::uint64_t parseU64(const char* tool, const char* flag,
                              const char* s) {
  if (s[0] == '-') badValue(tool, flag, s, "a non-negative integer");
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(s, &pos);
    if (pos != std::strlen(s)) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    badValue(tool, flag, s, "a non-negative integer");
  }
}

}  // namespace apf::cli
