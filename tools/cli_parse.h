#pragma once

/// \file cli_parse.h
/// The shared CLI surface of the apf_* tools: loud numeric parsing plus
/// the declarative ArgParser every binary's --flag handling and --help is
/// generated from. Every flag rejects garbage, trailing junk, and
/// out-of-domain values with a clear message and exit code 2 (usage
/// error) instead of surfacing a bare std::stod exception — or worse,
/// atof's silent 0.0, which once turned a mistyped threshold into
/// "compare everything against zero".
///
/// Exit-code conventions (ALL apf_* tools; documented once here and in
/// docs/API.md instead of drifting per binary):
///   0  success
///   1  domain failure (run unsuccessful, campaign quarantined runs,
///      regression found, violation did not reproduce, ...)
///   2  usage error: unknown flag, malformed value, unreadable or
///      wrong-schema input (cross-version refusal)
///   3  watchdog expiry on a single supervised run
///   4  shard journal lock held by another process (apf_worker; the
///      coordinator treats this as retryable with backoff)

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace apf::cli {

[[noreturn]] inline void badValue(const char* tool, const char* flag,
                                  const char* got, const char* want) {
  std::fprintf(stderr, "%s: %s expects %s, got '%s'\n", tool, flag, want,
               got);
  std::exit(2);
}

inline double parseDouble(const char* tool, const char* flag, const char* s) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != std::strlen(s)) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    badValue(tool, flag, s, "a number");
  }
}

inline double parseNonNegative(const char* tool, const char* flag,
                               const char* s) {
  const double v = parseDouble(tool, flag, s);
  if (v < 0.0 || !(v == v)) badValue(tool, flag, s, "a non-negative number");
  return v;
}

/// Probability in the closed interval [0, 1].
inline double parseProb(const char* tool, const char* flag, const char* s) {
  const double v = parseDouble(tool, flag, s);
  if (v < 0.0 || v > 1.0 || !(v == v)) {
    badValue(tool, flag, s, "a probability in [0, 1]");
  }
  return v;
}

/// Confidence level in the OPEN interval (0, 1) — 0 and 1 make every
/// interval degenerate or vacuous, so they are usage errors, not settings.
inline double parseConfidence(const char* tool, const char* flag,
                              const char* s) {
  const double v = parseDouble(tool, flag, s);
  if (!(v > 0.0 && v < 1.0)) {
    badValue(tool, flag, s, "a confidence level in (0, 1)");
  }
  return v;
}

inline std::uint64_t parseU64(const char* tool, const char* flag,
                              const char* s) {
  if (s[0] == '-') badValue(tool, flag, s, "a non-negative integer");
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(s, &pos);
    if (pos != std::strlen(s)) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    badValue(tool, flag, s, "a non-negative integer");
  }
}

/// Declarative argv parser: each tool registers its flags (with targets,
/// metavars, and help text), and parse() handles `--flag value` pairs,
/// unknown-flag/missing-value errors (exit 2), and a generated --help —
/// one implementation instead of four hand-rolled drifting loops.
///
///   cli::ArgParser args("apf_sim", "LCM robot simulator ...");
///   args.u64("--seed", &o.seed, "S", "RNG seed (default 1)");
///   args.flag("--json", &o.json, "print one JSON line");
///   args.parse(argc, argv);
class ArgParser {
 public:
  /// Value domains for numeric flags, enforced at parse time with the loud
  /// parse* helpers above.
  enum class Num {
    Any,          ///< any double
    NonNegative,  ///< >= 0
    Probability,  ///< [0, 1]
    Confidence,   ///< (0, 1) open
  };

  ArgParser(std::string tool, std::string oneLiner)
      : tool_(std::move(tool)), oneLiner_(std::move(oneLiner)) {
    sections_.push_back("options");
  }

  /// Starts a new --help section; flags registered after land under it.
  void section(std::string title) { sections_.push_back(std::move(title)); }

  /// Free text printed at the end of --help (examples, exit codes).
  void notes(std::string text) { notes_ = std::move(text); }

  void flag(const char* name, bool* target, std::string help) {
    add(name, Kind::Bool, target, "", std::move(help), nullptr);
  }
  void str(const char* name, std::string* target, const char* metavar,
           std::string help, bool* seen = nullptr) {
    add(name, Kind::String, target, metavar, std::move(help), seen);
  }
  void u64(const char* name, std::uint64_t* target, const char* metavar,
           std::string help, bool* seen = nullptr, bool positive = false) {
    Spec& s = add(name, Kind::U64, target, metavar, std::move(help), seen);
    s.positive = positive;
  }
  void intNonNegative(const char* name, int* target, const char* metavar,
                      std::string help, bool positive = false) {
    Spec& s =
        add(name, Kind::Int, target, metavar, std::move(help), nullptr);
    s.positive = positive;
  }
  void num(const char* name, double* target, Num domain, const char* metavar,
           std::string help) {
    Spec& s =
        add(name, Kind::Double, target, metavar, std::move(help), nullptr);
    s.domain = domain;
  }

  /// Declares positional arguments (default: none allowed).
  void positionals(const char* metavar, std::string help, std::size_t min,
                   std::size_t max) {
    posMeta_ = metavar;
    posHelp_ = std::move(help);
    posMin_ = min;
    posMax_ = max;
  }

  const std::vector<std::string>& pos() const { return pos_; }

  /// Parses argv. Exits 0 on --help/-h, 2 on any usage error.
  void parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
        printHelp(stdout);
        std::exit(0);
      }
      Spec* spec = findSpec(a);
      if (spec == nullptr) {
        if (a[0] == '-' && a[1] != '\0') {
          std::fprintf(stderr, "%s: unknown option '%s' (try --help)\n",
                       tool_.c_str(), a);
          std::exit(2);
        }
        pos_.push_back(a);
        if (pos_.size() > posMax_) {
          std::fprintf(stderr, "%s: unexpected argument '%s' (try --help)\n",
                       tool_.c_str(), a);
          std::exit(2);
        }
        continue;
      }
      if (spec->kind == Kind::Bool) {
        *static_cast<bool*>(spec->target) = true;
        if (spec->seen != nullptr) *spec->seen = true;
        continue;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s (want %s)\n",
                     tool_.c_str(), spec->name.c_str(),
                     spec->metavar.c_str());
        std::exit(2);
      }
      const char* value = argv[++i];
      apply(*spec, value);
      if (spec->seen != nullptr) *spec->seen = true;
    }
    if (pos_.size() < posMin_) {
      std::fprintf(stderr, "%s: missing %s argument (try --help)\n",
                   tool_.c_str(), posMeta_.c_str());
      std::exit(2);
    }
  }

  void printHelp(std::FILE* out) const {
    std::fprintf(out, "usage: %s [options]%s\n%s\n", tool_.c_str(),
                 posMax_ > 0 ? (" " + posMeta_).c_str() : "",
                 oneLiner_.c_str());
    if (posMax_ > 0 && !posHelp_.empty()) {
      std::fprintf(out, "\n  %-*s %s\n", static_cast<int>(columnWidth()),
                   posMeta_.c_str(), posHelp_.c_str());
    }
    const std::size_t width = columnWidth();
    for (std::size_t s = 0; s < sections_.size(); ++s) {
      bool any = false;
      for (const Spec& spec : specs_) {
        if (spec.section != s) continue;
        if (!any) {
          std::fprintf(out, "\n%s:\n", sections_[s].c_str());
          any = true;
        }
        const std::string head = headOf(spec);
        // Help strings may be multi-line; continuation lines align under
        // the first.
        std::size_t start = 0;
        bool first = true;
        while (start <= spec.help.size()) {
          std::size_t nl = spec.help.find('\n', start);
          if (nl == std::string::npos) nl = spec.help.size();
          std::fprintf(out, "  %-*s %.*s\n", static_cast<int>(width),
                       first ? head.c_str() : "",
                       static_cast<int>(nl - start),
                       spec.help.c_str() + start);
          first = false;
          start = nl + 1;
        }
      }
    }
    if (!notes_.empty()) std::fprintf(out, "\n%s\n", notes_.c_str());
    std::fprintf(out,
                 "\nexit codes: 0 success, 1 domain failure, 2 usage error"
                 "%s\n(full conventions: tools/cli_parse.h, docs/API.md)\n",
                 exitNotes_.empty() ? "" : exitNotes_.c_str());
  }

  /// Appends tool-specific entries to the generated exit-code line, e.g.
  /// ", 3 watchdog expired".
  void exitNotes(std::string text) { exitNotes_ = std::move(text); }

 private:
  enum class Kind { Bool, String, U64, Int, Double };

  struct Spec {
    std::string name;
    Kind kind = Kind::Bool;
    void* target = nullptr;
    std::string metavar;
    std::string help;
    std::size_t section = 0;
    bool* seen = nullptr;
    bool positive = false;
    Num domain = Num::Any;
  };

  Spec& add(const char* name, Kind kind, void* target, const char* metavar,
            std::string help, bool* seen) {
    Spec s;
    s.name = name;
    s.kind = kind;
    s.target = target;
    s.metavar = metavar;
    s.help = std::move(help);
    s.section = sections_.size() - 1;
    s.seen = seen;
    specs_.push_back(std::move(s));
    return specs_.back();
  }

  Spec* findSpec(const char* arg) {
    for (Spec& s : specs_) {
      if (s.name == arg) return &s;
    }
    return nullptr;
  }

  std::string headOf(const Spec& s) const {
    return s.kind == Kind::Bool ? s.name : s.name + " " + s.metavar;
  }

  std::size_t columnWidth() const {
    std::size_t w = posMeta_.size();
    for (const Spec& s : specs_) w = std::max(w, headOf(s).size());
    return w;
  }

  void apply(Spec& spec, const char* value) {
    const char* tool = tool_.c_str();
    const char* name = spec.name.c_str();
    switch (spec.kind) {
      case Kind::Bool:
        break;  // handled by caller
      case Kind::String:
        *static_cast<std::string*>(spec.target) = value;
        break;
      case Kind::U64: {
        const std::uint64_t v = parseU64(tool, name, value);
        if (spec.positive && v == 0) {
          badValue(tool, name, value, "a positive integer");
        }
        *static_cast<std::uint64_t*>(spec.target) = v;
        break;
      }
      case Kind::Int: {
        const std::uint64_t v = parseU64(tool, name, value);
        if (spec.positive && v == 0) {
          badValue(tool, name, value, "a positive integer");
        }
        if (v > 1u << 30) {
          badValue(tool, name, value, "a sane integer");
        }
        *static_cast<int*>(spec.target) = static_cast<int>(v);
        break;
      }
      case Kind::Double: {
        double v = 0.0;
        switch (spec.domain) {
          case Num::Any:
            v = parseDouble(tool, name, value);
            break;
          case Num::NonNegative:
            v = parseNonNegative(tool, name, value);
            break;
          case Num::Probability:
            v = parseProb(tool, name, value);
            break;
          case Num::Confidence:
            v = parseConfidence(tool, name, value);
            break;
        }
        *static_cast<double*>(spec.target) = v;
        break;
      }
    }
  }

  std::string tool_;
  std::string oneLiner_;
  std::string notes_;
  std::string exitNotes_;
  std::vector<std::string> sections_;
  std::vector<Spec> specs_;
  std::vector<std::string> pos_;
  std::string posMeta_;
  std::string posHelp_;
  std::size_t posMin_ = 0;
  std::size_t posMax_ = 0;
};

}  // namespace apf::cli
