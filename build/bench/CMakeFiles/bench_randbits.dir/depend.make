# Empty dependencies file for bench_randbits.
# This may be replaced when dependencies are built.
