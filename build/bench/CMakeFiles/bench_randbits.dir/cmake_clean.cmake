file(REMOVE_RECURSE
  "CMakeFiles/bench_randbits.dir/bench_randbits.cpp.o"
  "CMakeFiles/bench_randbits.dir/bench_randbits.cpp.o.d"
  "bench_randbits"
  "bench_randbits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_randbits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
