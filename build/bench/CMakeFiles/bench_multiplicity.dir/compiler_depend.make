# Empty compiler generated dependencies file for bench_multiplicity.
# This may be replaced when dependencies are built.
