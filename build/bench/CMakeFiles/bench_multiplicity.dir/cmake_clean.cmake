file(REMOVE_RECURSE
  "CMakeFiles/bench_multiplicity.dir/bench_multiplicity.cpp.o"
  "CMakeFiles/bench_multiplicity.dir/bench_multiplicity.cpp.o.d"
  "bench_multiplicity"
  "bench_multiplicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiplicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
