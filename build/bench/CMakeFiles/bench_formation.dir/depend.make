# Empty dependencies file for bench_formation.
# This may be replaced when dependencies are built.
