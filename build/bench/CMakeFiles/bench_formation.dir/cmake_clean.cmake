file(REMOVE_RECURSE
  "CMakeFiles/bench_formation.dir/bench_formation.cpp.o"
  "CMakeFiles/bench_formation.dir/bench_formation.cpp.o.d"
  "bench_formation"
  "bench_formation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_formation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
