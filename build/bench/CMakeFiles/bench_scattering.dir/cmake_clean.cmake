file(REMOVE_RECURSE
  "CMakeFiles/bench_scattering.dir/bench_scattering.cpp.o"
  "CMakeFiles/bench_scattering.dir/bench_scattering.cpp.o.d"
  "bench_scattering"
  "bench_scattering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scattering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
