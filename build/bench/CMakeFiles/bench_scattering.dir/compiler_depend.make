# Empty compiler generated dependencies file for bench_scattering.
# This may be replaced when dependencies are built.
