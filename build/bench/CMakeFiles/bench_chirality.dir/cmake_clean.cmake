file(REMOVE_RECURSE
  "CMakeFiles/bench_chirality.dir/bench_chirality.cpp.o"
  "CMakeFiles/bench_chirality.dir/bench_chirality.cpp.o.d"
  "bench_chirality"
  "bench_chirality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chirality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
