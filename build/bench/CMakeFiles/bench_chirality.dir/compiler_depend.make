# Empty compiler generated dependencies file for bench_chirality.
# This may be replaced when dependencies are built.
