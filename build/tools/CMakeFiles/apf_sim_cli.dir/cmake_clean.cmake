file(REMOVE_RECURSE
  "CMakeFiles/apf_sim_cli.dir/apf_sim.cpp.o"
  "CMakeFiles/apf_sim_cli.dir/apf_sim.cpp.o.d"
  "apf_sim"
  "apf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apf_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
