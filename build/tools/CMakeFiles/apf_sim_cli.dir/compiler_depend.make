# Empty compiler generated dependencies file for apf_sim_cli.
# This may be replaced when dependencies are built.
