# Empty compiler generated dependencies file for async_adversary.
# This may be replaced when dependencies are built.
