file(REMOVE_RECURSE
  "CMakeFiles/async_adversary.dir/async_adversary.cpp.o"
  "CMakeFiles/async_adversary.dir/async_adversary.cpp.o.d"
  "async_adversary"
  "async_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
