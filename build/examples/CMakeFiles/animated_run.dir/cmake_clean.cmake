file(REMOVE_RECURSE
  "CMakeFiles/animated_run.dir/animated_run.cpp.o"
  "CMakeFiles/animated_run.dir/animated_run.cpp.o.d"
  "animated_run"
  "animated_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/animated_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
