# Empty compiler generated dependencies file for animated_run.
# This may be replaced when dependencies are built.
