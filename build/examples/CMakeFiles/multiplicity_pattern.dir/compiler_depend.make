# Empty compiler generated dependencies file for multiplicity_pattern.
# This may be replaced when dependencies are built.
