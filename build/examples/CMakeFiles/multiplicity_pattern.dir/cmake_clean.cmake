file(REMOVE_RECURSE
  "CMakeFiles/multiplicity_pattern.dir/multiplicity_pattern.cpp.o"
  "CMakeFiles/multiplicity_pattern.dir/multiplicity_pattern.cpp.o.d"
  "multiplicity_pattern"
  "multiplicity_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiplicity_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
