# Empty compiler generated dependencies file for election_demo.
# This may be replaced when dependencies are built.
