file(REMOVE_RECURSE
  "CMakeFiles/election_demo.dir/election_demo.cpp.o"
  "CMakeFiles/election_demo.dir/election_demo.cpp.o.d"
  "election_demo"
  "election_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/election_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
