file(REMOVE_RECURSE
  "CMakeFiles/diagram_svg.dir/diagram_svg.cpp.o"
  "CMakeFiles/diagram_svg.dir/diagram_svg.cpp.o.d"
  "diagram_svg"
  "diagram_svg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagram_svg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
