# Empty compiler generated dependencies file for diagram_svg.
# This may be replaced when dependencies are built.
