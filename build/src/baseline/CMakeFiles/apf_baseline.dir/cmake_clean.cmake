file(REMOVE_RECURSE
  "CMakeFiles/apf_baseline.dir/det_election.cpp.o"
  "CMakeFiles/apf_baseline.dir/det_election.cpp.o.d"
  "CMakeFiles/apf_baseline.dir/det_formation.cpp.o"
  "CMakeFiles/apf_baseline.dir/det_formation.cpp.o.d"
  "CMakeFiles/apf_baseline.dir/yy.cpp.o"
  "CMakeFiles/apf_baseline.dir/yy.cpp.o.d"
  "libapf_baseline.a"
  "libapf_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apf_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
