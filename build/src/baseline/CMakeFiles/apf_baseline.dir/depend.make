# Empty dependencies file for apf_baseline.
# This may be replaced when dependencies are built.
