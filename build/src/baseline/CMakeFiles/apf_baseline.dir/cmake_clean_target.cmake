file(REMOVE_RECURSE
  "libapf_baseline.a"
)
