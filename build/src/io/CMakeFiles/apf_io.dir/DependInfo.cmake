
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/animation.cpp" "src/io/CMakeFiles/apf_io.dir/animation.cpp.o" "gcc" "src/io/CMakeFiles/apf_io.dir/animation.cpp.o.d"
  "/root/repo/src/io/csv.cpp" "src/io/CMakeFiles/apf_io.dir/csv.cpp.o" "gcc" "src/io/CMakeFiles/apf_io.dir/csv.cpp.o.d"
  "/root/repo/src/io/patterns.cpp" "src/io/CMakeFiles/apf_io.dir/patterns.cpp.o" "gcc" "src/io/CMakeFiles/apf_io.dir/patterns.cpp.o.d"
  "/root/repo/src/io/serialize.cpp" "src/io/CMakeFiles/apf_io.dir/serialize.cpp.o" "gcc" "src/io/CMakeFiles/apf_io.dir/serialize.cpp.o.d"
  "/root/repo/src/io/svg.cpp" "src/io/CMakeFiles/apf_io.dir/svg.cpp.o" "gcc" "src/io/CMakeFiles/apf_io.dir/svg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/config/CMakeFiles/apf_config.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/apf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/apf_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/apf_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
