# Empty compiler generated dependencies file for apf_io.
# This may be replaced when dependencies are built.
