file(REMOVE_RECURSE
  "CMakeFiles/apf_io.dir/animation.cpp.o"
  "CMakeFiles/apf_io.dir/animation.cpp.o.d"
  "CMakeFiles/apf_io.dir/csv.cpp.o"
  "CMakeFiles/apf_io.dir/csv.cpp.o.d"
  "CMakeFiles/apf_io.dir/patterns.cpp.o"
  "CMakeFiles/apf_io.dir/patterns.cpp.o.d"
  "CMakeFiles/apf_io.dir/serialize.cpp.o"
  "CMakeFiles/apf_io.dir/serialize.cpp.o.d"
  "CMakeFiles/apf_io.dir/svg.cpp.o"
  "CMakeFiles/apf_io.dir/svg.cpp.o.d"
  "libapf_io.a"
  "libapf_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apf_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
