file(REMOVE_RECURSE
  "libapf_io.a"
)
