file(REMOVE_RECURSE
  "libapf_sched.a"
)
