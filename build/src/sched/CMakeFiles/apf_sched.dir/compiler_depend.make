# Empty compiler generated dependencies file for apf_sched.
# This may be replaced when dependencies are built.
