file(REMOVE_RECURSE
  "CMakeFiles/apf_sched.dir/scheduler.cpp.o"
  "CMakeFiles/apf_sched.dir/scheduler.cpp.o.d"
  "libapf_sched.a"
  "libapf_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apf_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
