file(REMOVE_RECURSE
  "CMakeFiles/apf_config.dir/canonical.cpp.o"
  "CMakeFiles/apf_config.dir/canonical.cpp.o.d"
  "CMakeFiles/apf_config.dir/classify.cpp.o"
  "CMakeFiles/apf_config.dir/classify.cpp.o.d"
  "CMakeFiles/apf_config.dir/configuration.cpp.o"
  "CMakeFiles/apf_config.dir/configuration.cpp.o.d"
  "CMakeFiles/apf_config.dir/generator.cpp.o"
  "CMakeFiles/apf_config.dir/generator.cpp.o.d"
  "CMakeFiles/apf_config.dir/rays.cpp.o"
  "CMakeFiles/apf_config.dir/rays.cpp.o.d"
  "CMakeFiles/apf_config.dir/regular.cpp.o"
  "CMakeFiles/apf_config.dir/regular.cpp.o.d"
  "CMakeFiles/apf_config.dir/shifted.cpp.o"
  "CMakeFiles/apf_config.dir/shifted.cpp.o.d"
  "CMakeFiles/apf_config.dir/similarity.cpp.o"
  "CMakeFiles/apf_config.dir/similarity.cpp.o.d"
  "CMakeFiles/apf_config.dir/symmetry.cpp.o"
  "CMakeFiles/apf_config.dir/symmetry.cpp.o.d"
  "CMakeFiles/apf_config.dir/view.cpp.o"
  "CMakeFiles/apf_config.dir/view.cpp.o.d"
  "libapf_config.a"
  "libapf_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apf_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
