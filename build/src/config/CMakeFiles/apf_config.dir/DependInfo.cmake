
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/config/canonical.cpp" "src/config/CMakeFiles/apf_config.dir/canonical.cpp.o" "gcc" "src/config/CMakeFiles/apf_config.dir/canonical.cpp.o.d"
  "/root/repo/src/config/classify.cpp" "src/config/CMakeFiles/apf_config.dir/classify.cpp.o" "gcc" "src/config/CMakeFiles/apf_config.dir/classify.cpp.o.d"
  "/root/repo/src/config/configuration.cpp" "src/config/CMakeFiles/apf_config.dir/configuration.cpp.o" "gcc" "src/config/CMakeFiles/apf_config.dir/configuration.cpp.o.d"
  "/root/repo/src/config/generator.cpp" "src/config/CMakeFiles/apf_config.dir/generator.cpp.o" "gcc" "src/config/CMakeFiles/apf_config.dir/generator.cpp.o.d"
  "/root/repo/src/config/rays.cpp" "src/config/CMakeFiles/apf_config.dir/rays.cpp.o" "gcc" "src/config/CMakeFiles/apf_config.dir/rays.cpp.o.d"
  "/root/repo/src/config/regular.cpp" "src/config/CMakeFiles/apf_config.dir/regular.cpp.o" "gcc" "src/config/CMakeFiles/apf_config.dir/regular.cpp.o.d"
  "/root/repo/src/config/shifted.cpp" "src/config/CMakeFiles/apf_config.dir/shifted.cpp.o" "gcc" "src/config/CMakeFiles/apf_config.dir/shifted.cpp.o.d"
  "/root/repo/src/config/similarity.cpp" "src/config/CMakeFiles/apf_config.dir/similarity.cpp.o" "gcc" "src/config/CMakeFiles/apf_config.dir/similarity.cpp.o.d"
  "/root/repo/src/config/symmetry.cpp" "src/config/CMakeFiles/apf_config.dir/symmetry.cpp.o" "gcc" "src/config/CMakeFiles/apf_config.dir/symmetry.cpp.o.d"
  "/root/repo/src/config/view.cpp" "src/config/CMakeFiles/apf_config.dir/view.cpp.o" "gcc" "src/config/CMakeFiles/apf_config.dir/view.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/apf_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
