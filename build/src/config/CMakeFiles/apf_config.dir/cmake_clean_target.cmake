file(REMOVE_RECURSE
  "libapf_config.a"
)
