# Empty compiler generated dependencies file for apf_config.
# This may be replaced when dependencies are built.
