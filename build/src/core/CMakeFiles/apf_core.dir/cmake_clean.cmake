file(REMOVE_RECURSE
  "CMakeFiles/apf_core.dir/analysis.cpp.o"
  "CMakeFiles/apf_core.dir/analysis.cpp.o.d"
  "CMakeFiles/apf_core.dir/combination.cpp.o"
  "CMakeFiles/apf_core.dir/combination.cpp.o.d"
  "CMakeFiles/apf_core.dir/dpf.cpp.o"
  "CMakeFiles/apf_core.dir/dpf.cpp.o.d"
  "CMakeFiles/apf_core.dir/form_pattern.cpp.o"
  "CMakeFiles/apf_core.dir/form_pattern.cpp.o.d"
  "CMakeFiles/apf_core.dir/moves.cpp.o"
  "CMakeFiles/apf_core.dir/moves.cpp.o.d"
  "CMakeFiles/apf_core.dir/multiplicity.cpp.o"
  "CMakeFiles/apf_core.dir/multiplicity.cpp.o.d"
  "CMakeFiles/apf_core.dir/pattern_info.cpp.o"
  "CMakeFiles/apf_core.dir/pattern_info.cpp.o.d"
  "CMakeFiles/apf_core.dir/rsb.cpp.o"
  "CMakeFiles/apf_core.dir/rsb.cpp.o.d"
  "CMakeFiles/apf_core.dir/scattering.cpp.o"
  "CMakeFiles/apf_core.dir/scattering.cpp.o.d"
  "libapf_core.a"
  "libapf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
