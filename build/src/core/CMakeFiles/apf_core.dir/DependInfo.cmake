
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/apf_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/apf_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/combination.cpp" "src/core/CMakeFiles/apf_core.dir/combination.cpp.o" "gcc" "src/core/CMakeFiles/apf_core.dir/combination.cpp.o.d"
  "/root/repo/src/core/dpf.cpp" "src/core/CMakeFiles/apf_core.dir/dpf.cpp.o" "gcc" "src/core/CMakeFiles/apf_core.dir/dpf.cpp.o.d"
  "/root/repo/src/core/form_pattern.cpp" "src/core/CMakeFiles/apf_core.dir/form_pattern.cpp.o" "gcc" "src/core/CMakeFiles/apf_core.dir/form_pattern.cpp.o.d"
  "/root/repo/src/core/moves.cpp" "src/core/CMakeFiles/apf_core.dir/moves.cpp.o" "gcc" "src/core/CMakeFiles/apf_core.dir/moves.cpp.o.d"
  "/root/repo/src/core/multiplicity.cpp" "src/core/CMakeFiles/apf_core.dir/multiplicity.cpp.o" "gcc" "src/core/CMakeFiles/apf_core.dir/multiplicity.cpp.o.d"
  "/root/repo/src/core/pattern_info.cpp" "src/core/CMakeFiles/apf_core.dir/pattern_info.cpp.o" "gcc" "src/core/CMakeFiles/apf_core.dir/pattern_info.cpp.o.d"
  "/root/repo/src/core/rsb.cpp" "src/core/CMakeFiles/apf_core.dir/rsb.cpp.o" "gcc" "src/core/CMakeFiles/apf_core.dir/rsb.cpp.o.d"
  "/root/repo/src/core/scattering.cpp" "src/core/CMakeFiles/apf_core.dir/scattering.cpp.o" "gcc" "src/core/CMakeFiles/apf_core.dir/scattering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/config/CMakeFiles/apf_config.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/apf_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/apf_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
