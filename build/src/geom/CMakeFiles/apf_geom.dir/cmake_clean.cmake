file(REMOVE_RECURSE
  "CMakeFiles/apf_geom.dir/angle.cpp.o"
  "CMakeFiles/apf_geom.dir/angle.cpp.o.d"
  "CMakeFiles/apf_geom.dir/intersect.cpp.o"
  "CMakeFiles/apf_geom.dir/intersect.cpp.o.d"
  "CMakeFiles/apf_geom.dir/path.cpp.o"
  "CMakeFiles/apf_geom.dir/path.cpp.o.d"
  "CMakeFiles/apf_geom.dir/sec.cpp.o"
  "CMakeFiles/apf_geom.dir/sec.cpp.o.d"
  "CMakeFiles/apf_geom.dir/transform.cpp.o"
  "CMakeFiles/apf_geom.dir/transform.cpp.o.d"
  "CMakeFiles/apf_geom.dir/vec2.cpp.o"
  "CMakeFiles/apf_geom.dir/vec2.cpp.o.d"
  "CMakeFiles/apf_geom.dir/weber.cpp.o"
  "CMakeFiles/apf_geom.dir/weber.cpp.o.d"
  "libapf_geom.a"
  "libapf_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apf_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
