# Empty compiler generated dependencies file for apf_geom.
# This may be replaced when dependencies are built.
