
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/angle.cpp" "src/geom/CMakeFiles/apf_geom.dir/angle.cpp.o" "gcc" "src/geom/CMakeFiles/apf_geom.dir/angle.cpp.o.d"
  "/root/repo/src/geom/intersect.cpp" "src/geom/CMakeFiles/apf_geom.dir/intersect.cpp.o" "gcc" "src/geom/CMakeFiles/apf_geom.dir/intersect.cpp.o.d"
  "/root/repo/src/geom/path.cpp" "src/geom/CMakeFiles/apf_geom.dir/path.cpp.o" "gcc" "src/geom/CMakeFiles/apf_geom.dir/path.cpp.o.d"
  "/root/repo/src/geom/sec.cpp" "src/geom/CMakeFiles/apf_geom.dir/sec.cpp.o" "gcc" "src/geom/CMakeFiles/apf_geom.dir/sec.cpp.o.d"
  "/root/repo/src/geom/transform.cpp" "src/geom/CMakeFiles/apf_geom.dir/transform.cpp.o" "gcc" "src/geom/CMakeFiles/apf_geom.dir/transform.cpp.o.d"
  "/root/repo/src/geom/vec2.cpp" "src/geom/CMakeFiles/apf_geom.dir/vec2.cpp.o" "gcc" "src/geom/CMakeFiles/apf_geom.dir/vec2.cpp.o.d"
  "/root/repo/src/geom/weber.cpp" "src/geom/CMakeFiles/apf_geom.dir/weber.cpp.o" "gcc" "src/geom/CMakeFiles/apf_geom.dir/weber.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
