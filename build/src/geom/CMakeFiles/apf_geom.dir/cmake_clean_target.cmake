file(REMOVE_RECURSE
  "libapf_geom.a"
)
