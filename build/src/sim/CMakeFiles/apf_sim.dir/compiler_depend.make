# Empty compiler generated dependencies file for apf_sim.
# This may be replaced when dependencies are built.
