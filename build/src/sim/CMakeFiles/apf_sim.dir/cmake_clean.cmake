file(REMOVE_RECURSE
  "CMakeFiles/apf_sim.dir/engine.cpp.o"
  "CMakeFiles/apf_sim.dir/engine.cpp.o.d"
  "CMakeFiles/apf_sim.dir/fuzzer.cpp.o"
  "CMakeFiles/apf_sim.dir/fuzzer.cpp.o.d"
  "CMakeFiles/apf_sim.dir/trace.cpp.o"
  "CMakeFiles/apf_sim.dir/trace.cpp.o.d"
  "libapf_sim.a"
  "libapf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
