file(REMOVE_RECURSE
  "libapf_sim.a"
)
