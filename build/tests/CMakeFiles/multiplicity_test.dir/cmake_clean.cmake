file(REMOVE_RECURSE
  "CMakeFiles/multiplicity_test.dir/multiplicity_test.cpp.o"
  "CMakeFiles/multiplicity_test.dir/multiplicity_test.cpp.o.d"
  "multiplicity_test"
  "multiplicity_test.pdb"
  "multiplicity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiplicity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
