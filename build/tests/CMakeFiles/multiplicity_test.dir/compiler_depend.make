# Empty compiler generated dependencies file for multiplicity_test.
# This may be replaced when dependencies are built.
