
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/moves_test.cpp" "tests/CMakeFiles/moves_test.dir/moves_test.cpp.o" "gcc" "tests/CMakeFiles/moves_test.dir/moves_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/apf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/apf_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/apf_io.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/apf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/apf_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/apf_config.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/apf_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
