# Empty dependencies file for rsb_test.
# This may be replaced when dependencies are built.
