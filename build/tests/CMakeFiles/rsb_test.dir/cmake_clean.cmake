file(REMOVE_RECURSE
  "CMakeFiles/rsb_test.dir/rsb_test.cpp.o"
  "CMakeFiles/rsb_test.dir/rsb_test.cpp.o.d"
  "rsb_test"
  "rsb_test.pdb"
  "rsb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
