file(REMOVE_RECURSE
  "CMakeFiles/scattering_test.dir/scattering_test.cpp.o"
  "CMakeFiles/scattering_test.dir/scattering_test.cpp.o.d"
  "scattering_test"
  "scattering_test.pdb"
  "scattering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scattering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
