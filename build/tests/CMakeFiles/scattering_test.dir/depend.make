# Empty dependencies file for scattering_test.
# This may be replaced when dependencies are built.
