# Empty dependencies file for dpf_edge_test.
# This may be replaced when dependencies are built.
