file(REMOVE_RECURSE
  "CMakeFiles/dpf_edge_test.dir/dpf_edge_test.cpp.o"
  "CMakeFiles/dpf_edge_test.dir/dpf_edge_test.cpp.o.d"
  "dpf_edge_test"
  "dpf_edge_test.pdb"
  "dpf_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpf_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
