# Empty dependencies file for intersect_canonical_test.
# This may be replaced when dependencies are built.
