file(REMOVE_RECURSE
  "CMakeFiles/intersect_canonical_test.dir/intersect_canonical_test.cpp.o"
  "CMakeFiles/intersect_canonical_test.dir/intersect_canonical_test.cpp.o.d"
  "intersect_canonical_test"
  "intersect_canonical_test.pdb"
  "intersect_canonical_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intersect_canonical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
