# Empty dependencies file for shifted_test.
# This may be replaced when dependencies are built.
