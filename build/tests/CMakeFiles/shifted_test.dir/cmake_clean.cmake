file(REMOVE_RECURSE
  "CMakeFiles/shifted_test.dir/shifted_test.cpp.o"
  "CMakeFiles/shifted_test.dir/shifted_test.cpp.o.d"
  "shifted_test"
  "shifted_test.pdb"
  "shifted_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shifted_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
