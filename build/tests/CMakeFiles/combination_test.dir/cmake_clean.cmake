file(REMOVE_RECURSE
  "CMakeFiles/combination_test.dir/combination_test.cpp.o"
  "CMakeFiles/combination_test.dir/combination_test.cpp.o.d"
  "combination_test"
  "combination_test.pdb"
  "combination_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combination_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
