# Empty dependencies file for regular_test.
# This may be replaced when dependencies are built.
