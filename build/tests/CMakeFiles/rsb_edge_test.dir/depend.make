# Empty dependencies file for rsb_edge_test.
# This may be replaced when dependencies are built.
