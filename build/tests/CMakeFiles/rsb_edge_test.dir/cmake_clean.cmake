file(REMOVE_RECURSE
  "CMakeFiles/rsb_edge_test.dir/rsb_edge_test.cpp.o"
  "CMakeFiles/rsb_edge_test.dir/rsb_edge_test.cpp.o.d"
  "rsb_edge_test"
  "rsb_edge_test.pdb"
  "rsb_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsb_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
