# Empty compiler generated dependencies file for scripted_test.
# This may be replaced when dependencies are built.
