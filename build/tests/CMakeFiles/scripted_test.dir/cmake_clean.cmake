file(REMOVE_RECURSE
  "CMakeFiles/scripted_test.dir/scripted_test.cpp.o"
  "CMakeFiles/scripted_test.dir/scripted_test.cpp.o.d"
  "scripted_test"
  "scripted_test.pdb"
  "scripted_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scripted_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
