file(REMOVE_RECURSE
  "CMakeFiles/dpf_test.dir/dpf_test.cpp.o"
  "CMakeFiles/dpf_test.dir/dpf_test.cpp.o.d"
  "dpf_test"
  "dpf_test.pdb"
  "dpf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
