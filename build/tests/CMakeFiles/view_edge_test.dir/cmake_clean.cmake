file(REMOVE_RECURSE
  "CMakeFiles/view_edge_test.dir/view_edge_test.cpp.o"
  "CMakeFiles/view_edge_test.dir/view_edge_test.cpp.o.d"
  "view_edge_test"
  "view_edge_test.pdb"
  "view_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
