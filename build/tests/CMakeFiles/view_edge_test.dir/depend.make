# Empty dependencies file for view_edge_test.
# This may be replaced when dependencies are built.
