# Empty compiler generated dependencies file for view_symmetry_test.
# This may be replaced when dependencies are built.
