file(REMOVE_RECURSE
  "CMakeFiles/view_symmetry_test.dir/view_symmetry_test.cpp.o"
  "CMakeFiles/view_symmetry_test.dir/view_symmetry_test.cpp.o.d"
  "view_symmetry_test"
  "view_symmetry_test.pdb"
  "view_symmetry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_symmetry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
