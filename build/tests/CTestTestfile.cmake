# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/view_symmetry_test[1]_include.cmake")
include("/root/repo/build/tests/regular_test[1]_include.cmake")
include("/root/repo/build/tests/shifted_test[1]_include.cmake")
include("/root/repo/build/tests/similarity_test[1]_include.cmake")
include("/root/repo/build/tests/moves_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/rsb_test[1]_include.cmake")
include("/root/repo/build/tests/dpf_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/combination_test[1]_include.cmake")
include("/root/repo/build/tests/scattering_test[1]_include.cmake")
include("/root/repo/build/tests/trace_serialize_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/classify_test[1]_include.cmake")
include("/root/repo/build/tests/dpf_edge_test[1]_include.cmake")
include("/root/repo/build/tests/engine_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/geom_edge_test[1]_include.cmake")
include("/root/repo/build/tests/view_edge_test[1]_include.cmake")
include("/root/repo/build/tests/scripted_test[1]_include.cmake")
include("/root/repo/build/tests/intersect_canonical_test[1]_include.cmake")
include("/root/repo/build/tests/fuzzer_test[1]_include.cmake")
include("/root/repo/build/tests/rsb_edge_test[1]_include.cmake")
include("/root/repo/build/tests/multiplicity_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
