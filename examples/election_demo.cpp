/// \file election_demo.cpp
/// psi_RSB alone, from a perfectly symmetric start — the scenario where
/// every deterministic algorithm provably fails and the paper's randomized
/// election shines. Two concentric squares (rho = 4): robots are pairwise
/// indistinguishable, yet within a few coin flips one robot walks inside,
/// creates a shifted regular set, and becomes "selected".
///
/// The demo prints the election's progress: each position change, the
/// random bits consumed so far, and the final selected robot.

#include <cstdio>

#include "config/generator.h"
#include "core/analysis.h"
#include "core/rsb.h"
#include "io/patterns.h"
#include "sim/engine.h"

int main() {
  using namespace apf;

  // A 4-fold symmetric start: outer square + rotated inner square.
  config::Configuration start = config::regularPolygon(4, 2.0, {}, 0.0);
  const config::Configuration inner = config::regularPolygon(4, 1.0, {}, 0.5);
  for (const auto& v : inner.points()) start.push_back(v);
  const config::Configuration pattern = io::starPattern(start.size());

  core::RsbOnlyAlgorithm rsb;
  sim::EngineOptions opts;
  opts.seed = 42;
  opts.sched.kind = sched::SchedulerKind::Async;

  sim::Engine engine(start, pattern, rsb, opts);
  std::printf("start: two concentric squares, symmetricity 4\n");
  std::printf("%-8s %-8s %-10s %s\n", "event", "robot", "bits", "position");
  engine.setObserver([&](const sim::Engine& e, std::size_t robot) {
    std::printf("%-8llu %-8zu %-10llu (%.4f, %.4f)\n",
                static_cast<unsigned long long>(e.metrics().events), robot,
                static_cast<unsigned long long>(e.metrics().randomBits),
                e.positions()[robot].x, e.positions()[robot].y);
  });
  const auto result = engine.run();

  std::printf("\nterminated: %s after %llu cycles, %llu random bits\n",
              result.terminated ? "yes" : "no",
              static_cast<unsigned long long>(result.metrics.cycles),
              static_cast<unsigned long long>(result.metrics.randomBits));

  // Identify the selected robot in the final configuration.
  sim::Snapshot snap;
  snap.robots = engine.positions();
  snap.pattern = pattern;
  snap.selfIndex = 0;
  core::Analysis analysis(snap);
  if (const auto sel = analysis.selectedRobot()) {
    std::printf("selected robot: %zu at (%.4f, %.4f)\n", *sel,
                engine.positions()[*sel].x, engine.positions()[*sel].y);
  } else {
    std::printf("no selected robot (unexpected)\n");
  }
  return result.terminated ? 0 : 1;
}
