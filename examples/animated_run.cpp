/// \file animated_run.cpp
/// Renders a full formation run as a self-contained animated SVG
/// (animated_run.svg in the current directory — open it in any browser):
/// colored robots glide from a random start into a star pattern, hollow
/// markers show the target, faint lines the trajectories. A second
/// animation (animated_election.svg) shows psi_RSB breaking a perfectly
/// symmetric configuration.

#include <cstdio>

#include "config/generator.h"
#include "core/form_pattern.h"
#include "core/rsb.h"
#include "io/animation.h"
#include "io/patterns.h"
#include "sim/engine.h"
#include "sim/trace.h"

int main() {
  using namespace apf;

  {
    config::Rng rng(12);
    const auto start = config::randomConfiguration(8, rng, 4.0, 0.1);
    const auto pattern = io::starPattern(8);
    core::FormPatternAlgorithm algo;
    sim::EngineOptions opts;
    opts.seed = 5;
    opts.sched.kind = sched::SchedulerKind::Async;
    sim::Engine eng(start, pattern, algo, opts);
    sim::Trace trace;
    trace.attach(eng);
    const auto res = eng.run();
    // The pattern is formed up to similarity; draw the target where the
    // robots actually put it (the final configuration) for visual overlap.
    io::writeAnimation("animated_run.svg", trace, eng.positions());
    std::printf("animated_run.svg: success=%s, %zu trace steps\n",
                res.success ? "yes" : "no", trace.steps().size());
  }
  {
    config::Configuration start = config::regularPolygon(4, 2.0, {}, 0.0);
    const auto inner = config::regularPolygon(4, 1.0, {}, 0.5);
    for (const auto& v : inner.points()) start.push_back(v);
    core::RsbOnlyAlgorithm rsb;
    sim::EngineOptions opts;
    opts.seed = 9;
    opts.sched.kind = sched::SchedulerKind::Async;
    sim::Engine eng(start, io::starPattern(8), rsb, opts);
    sim::Trace trace;
    trace.attach(eng);
    const auto res = eng.run();
    io::writeAnimation("animated_election.svg", trace,
                       config::Configuration{});
    std::printf("animated_election.svg: terminated=%s, %llu random bits\n",
                res.terminated ? "yes" : "no",
                static_cast<unsigned long long>(res.metrics.randomBits));
  }
  return 0;
}
