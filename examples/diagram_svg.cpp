/// \file diagram_svg.cpp
/// Regenerates the paper's figure-style diagrams as SVG from LIVE
/// detections (experiment F1): every annotation below — rays, centers,
/// virtual axes, the shifted robot — is computed by the library's
/// detectors, not hard-coded, so the diagrams double as a visual check of
/// Definitions 1-3.
///
///   fig1b_regular.svg    a 5-regular set (equiangular rays)
///   fig1c_biangled.svg   a bi-angled 4-point set with virtual axes
///   fig1d_shifted.svg    a bi-angled shifted set (shifted robot marked)
///   fig1a_selected.svg   a configuration with a selected robot + pattern
///   fig2b_subset.svg     a configuration strictly containing a 4-regular
///                        set (the 8-point complement has rho = 8)
///   trace_formation.svg  trajectories of a full formation run
///
/// Outputs are written to the current working directory.

#include <cstdio>
#include <vector>

#include "config/generator.h"
#include "config/regular.h"
#include "config/shifted.h"
#include "core/analysis.h"
#include "core/form_pattern.h"
#include "geom/angle.h"
#include "io/patterns.h"
#include "io/svg.h"
#include "sim/engine.h"

using namespace apf;
using config::Configuration;
using geom::Vec2;

namespace {

std::vector<double> gridDirs(const geom::AngularGrid& g) {
  std::vector<double> dirs;
  for (int k = 0; k < g.numRays; ++k) dirs.push_back(g.rayDir(k));
  return dirs;
}

void figRegular() {
  const double radii[] = {1.0, 1.7, 1.3, 0.8, 1.5};
  const Configuration p = config::equiangularSet(radii, {}, 0.5);
  const auto info = config::checkRegularFreeCenter(p);
  io::SvgScene scene;
  if (info) {
    scene.addRays(info->grid.center, gridDirs(info->grid), 2.0);
    scene.addLayer({Configuration({info->grid.center}), "#aaa", 0.03, true});
  }
  scene.addLayer({p, "#1f77b4", 0.05, false});
  scene.write("fig1b_regular.svg");
  std::printf("fig1b_regular.svg: 5-regular set detected = %s\n",
              info ? "yes" : "NO");
}

void figBiangled() {
  const double radii[] = {1.2, 1.2, 1.2, 1.2};
  const Configuration p = config::biangularSet(4, 0.8, radii, {}, 0.3);
  std::vector<std::size_t> all{0, 1, 2, 3};
  const auto info = config::checkRegularKnownCenter(p, all, {});
  io::SvgScene scene;
  if (info) {
    scene.addRays({}, gridDirs(info->grid), 1.8);
    // Virtual axes drawn as full lines (both directions).
    std::vector<double> axes;
    for (double a : config::virtualAxes(info->grid)) {
      axes.push_back(a);
      axes.push_back(a + geom::kPi);
    }
    scene.addRays({}, axes, 1.6, "#f2b2b2");
  }
  scene.addLayer({p, "#1f77b4", 0.05, false});
  scene.write("fig1c_biangled.svg");
  std::printf("fig1c_biangled.svg: bi-angled set detected = %s\n",
              info && info->biangular ? "yes" : "NO");
}

void figShifted() {
  const double radii[] = {1.4, 1.4, 1.4, 1.4, 1.4, 1.4, 1.4, 0.9};
  Configuration p = config::biangularSet(8, 0.5, radii, {}, 0.2);
  // Shift the innermost robot by eps * alphamin TOWARD its nearest
  // neighboring ray (Definition 3(b): the shift decreases its min angle).
  p[7] = p[7].rotated(-0.2 * 0.5);
  const auto info = config::shiftedRegularSetOf(p);
  io::SvgScene scene;
  if (info) {
    scene.addRays(info->grid.center, gridDirs(info->grid), 1.8);
    // Associated position r' (hollow) and the shifted robot (red).
    scene.addLayer(
        {Configuration({info->associatedPos}), "#2ca02c", 0.05, true});
    scene.addLayer(
        {Configuration({p[info->shiftedRobot]}), "#d62728", 0.055, false});
    scene.addCircle(info->grid.center,
                    geom::dist(p[info->shiftedRobot], info->grid.center));
  }
  scene.addLayer({p, "#1f77b4", 0.04, false});
  scene.write("fig1d_shifted.svg");
  std::printf("fig1d_shifted.svg: shifted set detected = %s (eps = %.3f)\n",
              info ? "yes" : "NO", info ? info->epsilon : 0.0);
}

void figSelected() {
  Configuration p = config::regularPolygon(7, 1.0, {}, 0.4);
  p.push_back({0.04, 0.02});
  const Configuration f = io::starPattern(8);
  sim::Snapshot snap;
  snap.robots = p;
  snap.pattern = f;
  snap.selfIndex = 0;
  core::Analysis a(snap);
  io::SvgScene scene;
  scene.addCircle({}, 1.0);
  scene.addCircle({}, a.lF() / 2.0, "#f2b2b2");
  scene.addLayer({a.F(), "#999", 0.03, true});  // the pattern, hollow
  scene.addLayer({a.P(), "#1f77b4", 0.04, false});
  if (const auto sel = a.selectedRobot()) {
    scene.addLayer({Configuration({a.P()[*sel]}), "#d62728", 0.05, false});
  }
  scene.write("fig1a_selected.svg");
  std::printf("fig1a_selected.svg: selected robot = %s\n",
              a.selectedRobot() ? "yes" : "NO");
}

void figSubsetRegular() {
  Configuration p = config::regularPolygon(8, 2.0, {}, 0.0);
  const Configuration inner = config::regularPolygon(4, 1.0, {}, 0.3);
  for (const Vec2& v : inner.points()) p.push_back(v);
  const auto info = config::regularSetOf(p);
  io::SvgScene scene;
  scene.addCircle({}, 2.0);
  if (info) {
    scene.addRays(info->grid.center, gridDirs(info->grid), 2.3);
    Configuration reg;
    for (std::size_t i : info->indices) reg.push_back(p[i]);
    scene.addLayer({reg, "#d62728", 0.06, true});
  }
  scene.addLayer({p, "#1f77b4", 0.05, false});
  scene.write("fig2b_subset.svg");
  std::printf("fig2b_subset.svg: reg(P) size = %zu\n",
              info ? info->indices.size() : 0);
}

void figTrace() {
  config::Rng rng(7);
  const auto start = config::randomConfiguration(8, rng, 4.0, 0.1);
  const auto pattern = io::starPattern(8);
  core::FormPatternAlgorithm algo;
  sim::EngineOptions opts;
  opts.seed = 3;
  opts.sched.kind = sched::SchedulerKind::SSync;
  sim::Engine eng(start, pattern, algo, opts);
  std::vector<std::vector<Vec2>> trails(start.size());
  for (std::size_t i = 0; i < start.size(); ++i) {
    trails[i].push_back(start[i]);
  }
  eng.setObserver([&](const sim::Engine& e, std::size_t robot) {
    trails[robot].push_back(e.positions()[robot]);
  });
  const auto res = eng.run();
  io::SvgScene scene;
  for (auto& t : trails) scene.addTrail(std::move(t));
  scene.addLayer({start, "#999", 0.05, true});
  scene.addLayer({eng.positions(), "#1f77b4", 0.06, false});
  scene.write("trace_formation.svg");
  std::printf("trace_formation.svg: run success = %s\n",
              res.success ? "yes" : "NO");
}

}  // namespace

int main() {
  figRegular();
  figBiangled();
  figShifted();
  figSelected();
  figSubsetRegular();
  figTrace();
  return 0;
}
