/// \file async_adversary.cpp
/// Formation under a maximally hostile ASYNC adversary: tiny delta,
/// aggressive stop-at-delta, long pauses (robots Compute on badly stale
/// snapshots). Demonstrates the paper's model claims: non-rigid movement
/// and full asynchrony with pauses do not break correctness — only cost.
///
/// The same run is repeated under FSYNC for contrast; the summary compares
/// cycles, events, and distance.

#include <cstdio>

#include "config/generator.h"
#include "core/form_pattern.h"
#include "io/patterns.h"
#include "sim/engine.h"

namespace {

apf::sim::RunResult runWith(apf::sched::SchedulerKind kind, double delta,
                            double earlyStop,
                            const apf::config::Configuration& start,
                            const apf::config::Configuration& pattern) {
  apf::core::FormPatternAlgorithm algo;
  apf::sim::EngineOptions opts;
  opts.seed = 11;
  opts.maxEvents = 3000000;
  opts.sched.kind = kind;
  opts.sched.delta = delta;
  opts.sched.earlyStopProb = earlyStop;
  apf::sim::Engine engine(start, pattern, algo, opts);
  return engine.run();
}

void report(const char* label, const apf::sim::RunResult& r) {
  std::printf("%-24s success=%s cycles=%-7llu events=%-8llu distance=%.2f\n",
              label, r.success ? "yes" : "no ",
              static_cast<unsigned long long>(r.metrics.cycles),
              static_cast<unsigned long long>(r.metrics.events),
              r.metrics.distance);
}

}  // namespace

int main() {
  using namespace apf;

  config::Rng rng(99);
  const auto start = config::randomConfiguration(9, rng, 5.0, 0.1);
  const auto pattern = io::spiralPattern(9);

  std::printf("forming a 9-point spiral from a random start:\n\n");
  report("FSYNC (lock-step)",
         runWith(sched::SchedulerKind::FSync, 0.05, 0.0, start, pattern));
  report("ASYNC (gentle)",
         runWith(sched::SchedulerKind::Async, 0.05, 0.1, start, pattern));
  report("ASYNC (hostile)",
         runWith(sched::SchedulerKind::Async, 0.01, 0.95, start, pattern));
  std::printf(
      "\nThe hostile adversary chops every move into delta-sized pieces and\n"
      "interleaves stale snapshots — the algorithm still converges, paying\n"
      "only in cycles, exactly as Theorem 2 promises.\n");
  return 0;
}
