/// \file quickstart.cpp
/// Quickstart: form a star pattern from a random start under the ASYNC
/// adversary and print a run summary. This is the smallest complete use of
/// the public API:
///
///   1. build a start configuration and a target pattern,
///   2. pick the algorithm (the paper's FormPatternAlgorithm),
///   3. configure the engine (scheduler, delta, seed),
///   4. run and inspect the metrics.

#include <cstdio>

#include "config/generator.h"
#include "core/form_pattern.h"
#include "core/phases.h"
#include "io/patterns.h"
#include "sim/engine.h"

int main() {
  using namespace apf;

  // 1. Eight robots scattered uniformly in a disc; target: an 8-point star.
  config::Rng rng(2024);
  const config::Configuration start =
      config::randomConfiguration(8, rng, /*radius=*/5.0,
                                  /*minSeparation=*/0.1);
  const config::Configuration pattern = io::starPattern(8);

  // 2. The paper's algorithm: no common North, no chirality, oblivious.
  core::FormPatternAlgorithm algo;

  // 3. Fully asynchronous adversary, non-rigid movement (stop after 0.05).
  sim::EngineOptions opts;
  opts.seed = 7;
  opts.sched.kind = sched::SchedulerKind::Async;
  opts.sched.delta = 0.05;

  // 4. Run.
  sim::Engine engine(start, pattern, algo, opts);
  const sim::RunResult result = engine.run();

  std::printf("terminated: %s\n", result.terminated ? "yes" : "no");
  std::printf("pattern formed: %s\n", result.success ? "yes" : "no");
  std::printf("LCM cycles: %llu\n",
              static_cast<unsigned long long>(result.metrics.cycles));
  std::printf("random bits consumed: %llu\n",
              static_cast<unsigned long long>(result.metrics.randomBits));
  std::printf("total distance traveled: %.2f\n", result.metrics.distance);
  std::printf("activations by phase:\n");
  for (const auto& [tag, count] : result.metrics.phaseActivations) {
    std::printf("  %-16s %llu\n", core::phaseName(tag),
                static_cast<unsigned long long>(count));
  }
  std::printf("final positions:\n");
  for (const auto& p : engine.positions().points()) {
    std::printf("  (%8.4f, %8.4f)\n", p.x, p.y);
  }
  return result.success ? 0 : 1;
}
