/// \file multiplicity_pattern.cpp
/// The §5 / appendix-C extension: forming a pattern that CONTAINS a
/// multiplicity point — including the hard case where the multiplicity
/// point is the pattern's center (robots first form F~ with the center
/// points relocated to g_F, then walk down the ray together).
///
/// Requires multiplicity detection (robots can count co-located robots).

#include <cstdio>

#include "config/generator.h"
#include "core/form_pattern.h"
#include "io/patterns.h"
#include "sim/engine.h"

namespace {

void run(const char* label, const apf::config::Configuration& pattern) {
  using namespace apf;
  config::Rng rng(55);
  const auto start =
      config::randomConfiguration(pattern.size(), rng, 5.0, 0.1);
  core::FormPatternAlgorithm algo;
  sim::EngineOptions opts;
  opts.seed = 21;
  opts.multiplicityDetection = true;
  opts.sched.kind = sched::SchedulerKind::Async;
  sim::Engine engine(start, pattern, algo, opts);
  const auto res = engine.run();
  std::printf("%-14s success=%s cycles=%llu\n", label,
              res.success ? "yes" : "no ",
              static_cast<unsigned long long>(res.metrics.cycles));
  // Show the multiplicity points actually formed.
  for (const auto& g : engine.positions().grouped(geom::Tol{1e-5, 1e-5})) {
    if (g.count > 1) {
      std::printf("  multiplicity point x%d at (%.4f, %.4f)\n", g.count,
                  g.pos.x, g.pos.y);
    }
  }
}

}  // namespace

int main() {
  using namespace apf;
  std::printf("patterns with multiplicity points (detection on):\n\n");
  // A 7-gon plus a doubled interior point.
  run("interior x2", io::multiplicityPattern(9));
  // A 7-gon plus a doubled point at the CENTER (appendix C's F~ dance).
  run("center x2", io::centerMultiplicityPattern(9));
  return 0;
}
