#include "baseline/yy.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "config/similarity.h"
#include "core/phases.h"
#include "geom/angle.h"

namespace apf::baseline {
namespace {

using config::Configuration;
using geom::Vec2;
using sim::Action;

constexpr double kTol = 1e-9;

struct Ranked {
  std::size_t idx;
  double radius;
  double angle;
};

std::vector<Ranked> rankAround(const Configuration& pts, double anchorArg,
                               std::size_t skip) {
  std::vector<Ranked> out;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i == skip) continue;
    const double r = pts[i].norm();
    const double a =
        (r > kTol) ? geom::norm2pi(pts[i].arg() - anchorArg) : 0.0;
    out.push_back({i, r, a});
  }
  std::sort(out.begin(), out.end(), [](const Ranked& x, const Ranked& y) {
    if (std::fabs(x.radius - y.radius) > kTol) return x.radius < y.radius;
    return x.angle < y.angle;
  });
  return out;
}

}  // namespace

Action YYAlgorithm::compute(const sim::Snapshot& snap,
                            sched::RandomSource& rng) const {
  const geom::Circle secP = snap.robots.sec();
  const geom::Circle secF = snap.pattern.sec();
  if (secP.radius <= 1e-12 || secF.radius <= 1e-12) {
    return Action::stay(core::kBaseline);
  }
  const Configuration p =
      snap.robots.transformed(snap.robots.normalizingTransform());
  const Configuration f =
      snap.pattern.transformed(snap.pattern.normalizingTransform());
  const geom::Similarity denorm =
      snap.robots.normalizingTransform().inverse();
  const std::size_t self = snap.selfIndex;

  if (config::similar(p, f, geom::Tol{1e-6, 1e-6})) {
    return Action::stay(core::kBaseline);
  }

  // Leader: the unique strictly innermost robot.
  double minR = std::numeric_limits<double>::infinity();
  for (const Vec2& q : p.points()) minR = std::min(minR, q.norm());
  std::vector<std::size_t> innermost;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i].norm() <= minR + kTol) innermost.push_back(i);
  }

  if (innermost.size() > 1) {
    // Symmetry breaking with continuous randomness: each tied robot jumps a
    // uniformly random fraction of the way toward the center.
    if (std::find(innermost.begin(), innermost.end(), self) ==
        innermost.end()) {
      return Action::stay(core::kBaseline);
    }
    const double u = rng.uniform();  // 53 bits
    const double r = p[self].norm();
    if (r <= kTol) return Action::stay(core::kBaseline);
    const Vec2 dest = p[self] * (1.0 - 0.4 * u);
    geom::Path path(p[self]);
    if (geom::dist(dest, p[self]) > kTol) path.lineTo(dest);
    Action act{path, core::kBaseline};
    act.path = act.path.transformed(denorm);
    return act;
  }

  // Leader exists: build the chirality-dependent global frame. Angle 0 is
  // the leader's direction; "counterclockwise" is counterclockwise IN THIS
  // ROBOT'S LOCAL FRAME — identical across robots only under common
  // chirality, which is precisely the assumption this baseline needs.
  const std::size_t leader = innermost.front();
  if (p[leader].norm() <= kTol) {
    // Leader at the center cannot anchor an angle; nudge it outward.
    if (self == leader) {
      geom::Path path(p[self]);
      path.lineTo({0.1, 0.0});
      Action act{path, core::kBaseline};
      act.path = act.path.transformed(denorm);
      return act;
    }
    return Action::stay(core::kBaseline);
  }
  const double anchorP = p[leader].arg();

  // Pattern anchor: the innermost pattern point (ties broken by angle).
  auto fRank = rankAround(f, 0.0, f.size());
  const std::size_t fLeader = fRank.front().idx;
  const double anchorF =
      (f[fLeader].norm() > kTol) ? f[fLeader].arg() : 0.0;

  const auto pOrder = rankAround(p, anchorP, leader);
  auto fOrder = rankAround(f, anchorF, fLeader);

  Vec2 dest;
  if (self == leader) {
    dest = Vec2{std::cos(anchorP), std::sin(anchorP)} * f[fLeader].norm();
  } else {
    std::size_t rank = 0;
    for (std::size_t k = 0; k < pOrder.size(); ++k) {
      if (pOrder[k].idx == self) {
        rank = k;
        break;
      }
    }
    const Ranked& tgt = fOrder[rank];
    const double ang = anchorP + tgt.angle;
    dest = Vec2{std::cos(ang), std::sin(ang)} * tgt.radius;
  }
  geom::Path path(p[self]);
  if (geom::dist(dest, p[self]) > 1e-7) path.lineTo(dest);
  Action act{path, core::kBaseline};
  if (act.isMove()) act.path = act.path.transformed(denorm);
  return act;
}

}  // namespace apf::baseline
