#include "baseline/det_formation.h"

#include "config/similarity.h"
#include "core/analysis.h"
#include "core/dpf.h"
#include "core/moves.h"
#include "core/phases.h"

namespace apf::baseline {

using sim::Action;

Action DeterministicFormation::compute(const sim::Snapshot& snap,
                                       sched::RandomSource& /*rng*/) const {
  core::Analysis a(snap);
  if (!a.ok()) return Action::stay(core::kStay);
  if (config::similar(a.P(), a.F(), geom::Tol{1e-6, 1e-6})) {
    return Action::stay(core::kTerminal);
  }

  // Final move (same as the main algorithm's lines 3-4).
  const auto maxP = a.maxViewP();
  if (maxP.size() == 1) {
    const std::size_t r = maxP.front();
    for (std::size_t f : a.maxViewNonHoldersF()) {
      const auto t = config::findSimilarity(
          a.F().without(f), a.P().without(r), true, geom::Tol{1e-6, 1e-6});
      if (!t) continue;
      if (a.self() != r) return Action::stay(core::kFinalMove);
      const geom::Vec2 dest = t->apply(a.F()[f]);
      if (geom::dist(dest, a.P()[r]) <= 1e-8) {
        return Action::stay(core::kFinalMove);
      }
      Action act{core::linePath(a.P()[r], dest), core::kFinalMove};
      act.path = act.path.transformed(a.denormalize());
      return act;
    }
  }

  Action act = Action::stay(core::kBaseline);
  if (!a.selectedRobot()) {
    // Deterministic election: only a UNIQUE max-view robot may descend.
    // Symmetric configurations stall here forever — the impossibility.
    if (maxP.size() != 1 || a.self() != maxP.front()) {
      return Action::stay(core::kBaseline);
    }
    const std::size_t r = maxP.front();
    double minOther = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < a.P().size(); ++j) {
      if (j != r) minOther = std::min(minOther, a.P()[j].norm());
    }
    const double target = 0.45 * std::min(a.lF(), minOther);
    if (a.P()[r].norm() <= target + 1e-9) return Action::stay(core::kBaseline);
    act = Action{core::radialPath(geom::Vec2{}, a.P()[r], target),
                 core::kBaseline};
  } else {
    // Selected robot exists: the deterministic psi_DPF takes over (it is
    // the paper's own phase, independently useful in the deterministic
    // setting — "as the deterministic phase does not use chirality, it may
    // be of independent interest").
    act = core::dpfCompute(a);
  }
  if (act.isMove()) act.path = act.path.transformed(a.denormalize());
  return act;
}

}  // namespace apf::baseline
