#pragma once

/// \file det_formation.h
/// Deterministic pattern formation baseline: the paper's own psi_DPF run
/// behind a DETERMINISTIC election (unique max-view robot descends until
/// selected). This is exactly the composition a deterministic algorithm is
/// limited to, and it realizes the impossibility boundary the related work
/// describes: on initial configurations with rho(P) > 1 or an axis of
/// symmetry there is no unique max-view robot, the election stalls, and no
/// pattern outside the symmetricity-divisibility class can ever form. The
/// paper's single random bit is precisely what removes this wall.
///
/// Used by experiment T11 (determinism ablation) and the baseline tests.

#include "sim/algorithm.h"

namespace apf::baseline {

class DeterministicFormation : public sim::Algorithm {
 public:
  sim::Action compute(const sim::Snapshot& snap,
                      sched::RandomSource& rng) const override;
  std::string name() const override { return "det-formation"; }
};

}  // namespace apf::baseline
