#include "baseline/det_election.h"

#include "core/analysis.h"
#include "core/moves.h"
#include "core/phases.h"

namespace apf::baseline {

using sim::Action;

Action DeterministicElection::compute(const sim::Snapshot& snap,
                                      sched::RandomSource& /*rng*/) const {
  core::Analysis a(snap);
  if (!a.ok()) return Action::stay(core::kBaseline);
  if (a.selectedRobot()) return Action::stay(core::kBaseline);

  // Deterministic rule: only a UNIQUE max-view robot may act.
  const auto maxV = a.maxViewP();
  if (maxV.size() != 1) return Action::stay(core::kBaseline);
  const std::size_t r = maxV.front();
  if (a.self() != r) return Action::stay(core::kBaseline);

  double minOther = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < a.P().size(); ++j) {
    if (j != r) minOther = std::min(minOther, a.P()[j].norm());
  }
  const double target = 0.45 * std::min(a.lF(), minOther);
  const double cur = a.P()[r].norm();
  if (cur <= target + 1e-9) return Action::stay(core::kBaseline);
  Action act{core::radialPath(geom::Vec2{}, a.P()[r], target),
             core::kBaseline};
  act.path = act.path.transformed(a.denormalize());
  return act;
}

}  // namespace apf::baseline
