#pragma once

/// \file det_election.h
/// Deterministic leader-election baseline: the unique max-view robot (when
/// one exists) descends until it is selected. On configurations with
/// rho(P) > 1 or an axis of symmetry there IS no unique max-view robot and
/// the algorithm provably stalls — the impossibility psi_RSB's randomness
/// circumvents. Used as the comparator in the election experiments (T2).

#include "sim/algorithm.h"

namespace apf::baseline {

class DeterministicElection : public sim::Algorithm {
 public:
  sim::Action compute(const sim::Snapshot& snap,
                      sched::RandomSource& rng) const override;
  std::string name() const override { return "det-election"; }
};

}  // namespace apf::baseline
