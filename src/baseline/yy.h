#pragma once

/// \file yy.h
/// Baseline in the style of Yamauchi-Yamashita [13]: randomized pattern
/// formation that (a) assumes a COMMON CHIRALITY and (b) draws points
/// uniformly at random from continuous intervals (53 bits per draw at
/// double resolution, "infinitely many" in the model).
///
/// This is a mechanism-level re-implementation, not a line-by-line port of
/// [13] (which has no public code): a randomized leader election by
/// continuous inward jumps, followed by a chirality-dependent rank
/// assignment (sort by (radius, ccw angle from the leader) — well-defined
/// only when every robot agrees which way "counterclockwise" is) and
/// straight-line moves to the assigned pattern points. It exercises exactly
/// the two assumptions the paper removes, which is what the ablation
/// experiments (T4, T5) measure.

#include "sim/algorithm.h"

namespace apf::baseline {

class YYAlgorithm : public sim::Algorithm {
 public:
  sim::Action compute(const sim::Snapshot& snap,
                      sched::RandomSource& rng) const override;
  std::string name() const override { return "yy-baseline"; }
};

}  // namespace apf::baseline
