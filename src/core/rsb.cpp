#include "core/rsb.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "config/rays.h"
#include "config/similarity.h"
#include "core/moves.h"
#include "core/phases.h"
#include "geom/angle.h"
#include "geom/sec.h"

namespace apf::core {
namespace {

using config::Configuration;
using geom::kTwoPi;
using geom::Vec2;
using sim::Action;

constexpr double kTol = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();

double radiusOf(const Configuration& p, std::size_t i, Vec2 c) {
  return geom::dist(p[i], c);
}

/// Target point for the final descent to selected-ness: the robot moves
/// along its ray from the set center `c` (preserving the shifted/asymmetric
/// structure) to a point whose SEC-centered radius satisfies the selected
/// predicate — strictly inside D(l_F / 2) and no other robot strictly
/// inside twice its radius (the predicate is evaluated around the SEC
/// center, the origin of the normalized frame).
std::optional<Vec2> selectedDescendTarget(Analysis& a, Vec2 c,
                                          std::size_t self) {
  const Vec2 pos = a.P()[self];
  const Vec2 d = pos - c;
  const double t0 = d.norm();
  if (t0 <= kTol) return std::nullopt;
  const Vec2 u = d / t0;

  double minOther = kInf;  // SEC-centered radii of the other robots
  for (std::size_t j = 0; j < a.P().size(); ++j) {
    if (j != self) minOther = std::min(minOther, a.P()[j].norm());
  }
  const double bound = 0.45 * std::min(a.lF(), minOther);

  // Solve |c + t u| = bound for the largest t in (0, t0).
  const double cu = c.dot(u);
  const double disc = cu * cu - (c.norm2() - bound * bound);
  double t;
  if (disc >= 0.0) {
    t = -cu + std::sqrt(disc);
    if (t <= kTol || t >= t0 - kTol) {
      // Already inside the band or no forward intersection: step to the
      // closest approach of the ray to the origin instead.
      t = std::clamp(-cu, t0 * 0.05, t0 * (1.0 - 1e-6));
    }
  } else {
    // The ray never reaches the selected band (possible only when the set
    // center is far from the SEC center); best effort: closest approach.
    t = std::clamp(-cu, t0 * 0.05, t0 * (1.0 - 1e-6));
  }
  const Vec2 target = c + u * t;
  if (geom::dist(target, pos) <= kTol) return std::nullopt;
  return target;
}

/// Handling of a shifted regular set (selectARobot, first branch).
Action shiftedCase(Analysis& a, const config::ShiftedSetInfo& sh) {
  const Configuration& p = a.P();
  const std::size_t self = a.self();
  const Vec2 c = sh.grid.center;
  const std::size_t re = sh.shiftedRobot;
  const double rRe = radiusOf(p, re, c);

  // Phase structure (paper §3.1, with the pseudo-code's S-test
  // disambiguated): shift 1/4 is the final-descent marker — once the shift
  // reaches it, the shifted robot descends radially toward the selected
  // band no matter where the others are (the naive S = {|r| > |re|} test
  // would misfire mid-descent, when everyone is above re again, and order
  // the shift back to 1/8). Below 1/4, the state is read off the radii:
  // others gathered on re's circle -> widen to 1/4; others elsewhere ->
  // pin the shift at 1/8 and descend the stragglers.
  bool othersOnReCircle = true;
  for (std::size_t q : sh.indices) {
    if (q != re && !geom::distEq(radiusOf(p, q, c), rRe)) {
      othersOnReCircle = false;
      break;
    }
  }

  const double thetaV = (sh.associatedPos - c).arg();
  const double thetaRe = (p[re] - c).arg();
  const double side = (geom::normPi(thetaRe - thetaV) >= 0.0) ? 1.0 : -1.0;

  if (sh.epsilon >= 0.25 - 1e-7) {
    // Final descent: the shifted robot walks its ray to the selected band.
    if (self == re) {
      if (const auto target = selectedDescendTarget(a, c, self)) {
        return Action{linePath(p[self], *target), kRsbShifted};
      }
    }
    return Action::stay(kRsbShifted);
  }
  if (othersOnReCircle) {
    // Everyone gathered on re's circle: widen the shift to 1/4.
    if (self == re) {
      const double target = thetaV + side * sh.alphaMinPPrime / 4.0;
      return Action{arcToAngle(c, p[self], target), kRsbShifted};
    }
    return Action::stay(kRsbShifted);
  }
  if (std::fabs(sh.epsilon - 0.125) > 1e-7) {
    // Drive the shift to exactly 1/8 first.
    if (self == re) {
      const double target = thetaV + side * sh.alphaMinPPrime / 8.0;
      return Action{arcToAngle(c, p[self], target), kRsbShifted};
    }
    return Action::stay(kRsbShifted);
  }
  // Shift pinned at 1/8: set members above re's circle descend onto it.
  if (self != re && radiusOf(p, self, c) > rRe + kTol &&
      std::find(sh.indices.begin(), sh.indices.end(), self) !=
          sh.indices.end()) {
    return Action{radialPath(c, p[self], rRe), kRsbShifted};
  }
  return Action::stay(kRsbShifted);
}

/// Result of the handlePartiallyFormedPattern pre-check (appendix A).
struct PartialCheck {
  bool applies = false;      ///< the partially-formed-pattern condition holds
  bool ordersMoves = false;  ///< cases 1-2: some robots must descend first
  std::optional<geom::Path> selfMove;
  double cap = kInf;  ///< case 3: election destinations must stay < cap
};

PartialCheck partialPatternCheck(Analysis& a,
                                 const config::RegularSetInfo& reg) {
  PartialCheck out;
  const Configuration& p = a.P();
  const Vec2 c = reg.grid.center;
  std::vector<std::size_t> comp;  // P \ Q
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (std::find(reg.indices.begin(), reg.indices.end(), i) ==
        reg.indices.end()) {
      comp.push_back(i);
    }
  }
  if (comp.empty() || comp.size() >= a.F().size()) return out;

  // Find a placement of F (rotation/reflection about the shared center,
  // same scale: both are SEC-normalized) under which every complement robot
  // sits on a pattern point.
  const Configuration& f = a.F();
  std::vector<Vec2> frPoints;
  bool placed = false;
  const Vec2 q0 = p[comp[0]];
  for (std::size_t fi = 0; fi < f.size() && !placed; ++fi) {
    const Vec2 fp = f[fi] - a.centerF();
    if (!geom::distEq(fp.norm(), (q0 - c).norm(), geom::Tol{1e-7, 1e-7})) {
      continue;
    }
    if (fp.norm() < kTol) continue;
    for (int refl = 0; refl < 2 && !placed; ++refl) {
      // Transform: center F on c, optionally reflect, rotate f[fi] onto q0.
      std::vector<Vec2> mapped;
      mapped.reserve(f.size());
      const double fArg = refl ? -fp.arg() : fp.arg();
      const double rot = (q0 - c).arg() - fArg;
      for (const Vec2& g : f.points()) {
        Vec2 v = g - a.centerF();
        if (refl) v.y = -v.y;
        mapped.push_back(c + v.rotated(rot));
      }
      // Greedy match complement robots to mapped pattern points.
      std::vector<bool> used(mapped.size(), false);
      bool all = true;
      for (std::size_t ci : comp) {
        bool found = false;
        for (std::size_t k = 0; k < mapped.size(); ++k) {
          if (!used[k] && geom::nearlyEqual(p[ci], mapped[k],
                                            geom::Tol{1e-6, 1e-6})) {
            used[k] = true;
            found = true;
            break;
          }
        }
        if (!found) {
          all = false;
          break;
        }
      }
      if (!all) continue;
      frPoints.clear();
      for (std::size_t k = 0; k < mapped.size(); ++k) {
        if (!used[k]) frPoints.push_back(mapped[k]);
      }
      placed = true;
    }
  }
  if (!placed) return out;

  // Condition ii: at least |Q| - 1 robots of Q sit on half-lines through
  // remaining pattern points.
  std::size_t onRays = 0;
  for (std::size_t qi : reg.indices) {
    const double aq = (p[qi] - c).arg();
    for (const Vec2& fr : frPoints) {
      if ((fr - c).norm() > kTol &&
          geom::angDist(aq, (fr - c).arg()) <= 1e-7) {
        ++onRays;
        break;
      }
    }
  }
  if (onRays + 1 < reg.indices.size()) return out;

  out.applies = true;
  double d1 = 0.0;
  for (const Vec2& fr : frPoints) d1 = std::max(d1, (fr - c).norm());
  double d2 = 0.0;
  for (const Vec2& fr : frPoints) {
    const double rr = (fr - c).norm();
    if (rr < d1 - kTol) d2 = std::max(d2, rr);
  }
  if (d2 == 0.0) d2 = d1;
  const double dMid = (d1 + d2) / 2.0;

  bool anyAboveD1 = false, anyAboveMid = false;
  for (std::size_t qi : reg.indices) {
    const double rq = radiusOf(p, qi, c);
    anyAboveD1 |= rq > d1 + kTol;
    anyAboveMid |= rq > dMid + kTol;
  }
  if (anyAboveD1) {
    out.ordersMoves = true;
    if (std::find(reg.indices.begin(), reg.indices.end(), a.self()) !=
            reg.indices.end() &&
        radiusOf(p, a.self(), c) > d1 + kTol) {
      out.selfMove = radialPath(c, p[a.self()], d1);
    }
    return out;
  }
  if (anyAboveMid) {
    out.ordersMoves = true;
    if (std::find(reg.indices.begin(), reg.indices.end(), a.self()) !=
            reg.indices.end() &&
        radiusOf(p, a.self(), c) > dMid + kTol) {
      out.selfMove = radialPath(c, p[a.self()], dMid);
    }
    return out;
  }
  out.cap = dMid;
  return out;
}

/// Randomized election inside a configuration with a regular set
/// (selectARobot, second branch).
Action regularCase(Analysis& a, const config::RegularSetInfo& reg,
                   sched::RandomSource& rng) {
  const Configuration& p = a.P();
  const std::size_t self = a.self();
  const Vec2 c = reg.grid.center;

  const PartialCheck partial = partialPatternCheck(a, reg);
  if (partial.ordersMoves) {
    if (partial.selfMove) return Action{*partial.selfMove, kRsbPartial};
    return Action::stay(kRsbPartial);
  }

  const bool inQ = std::find(reg.indices.begin(), reg.indices.end(), self) !=
                   reg.indices.end();
  const double rSelf = radiusOf(p, self, c);

  double minOtherQ = kInf, minAll = kInf, dOut = kInf;
  for (std::size_t j = 0; j < p.size(); ++j) {
    if (j == self) continue;
    minAll = std::min(minAll, radiusOf(p, j, c));
  }
  for (std::size_t q : reg.indices) {
    if (q != self) minOtherQ = std::min(minOtherQ, radiusOf(p, q, c));
  }
  for (std::size_t j = 0; j < p.size(); ++j) {
    if (std::find(reg.indices.begin(), reg.indices.end(), j) ==
        reg.indices.end()) {
      dOut = std::min(dOut, radiusOf(p, j, c));
    }
  }

  if (inQ && rSelf < (7.0 / 8.0) * minOtherQ - kTol) {
    // Aware of being elected: start the shift on the own circle toward the
    // angularly nearest other occupied ray, by 1/8 of alphamin.
    const double amin = config::alphaMin(p, c);
    const double thetaSelf = (p[self] - c).arg();
    double best = kInf, side = 1.0;
    for (std::size_t j = 0; j < p.size(); ++j) {
      if (j == self) continue;
      const Vec2 d = p[j] - c;
      if (d.norm() <= kTol) continue;
      const double delta = geom::normPi(d.arg() - thetaSelf);
      if (std::fabs(delta) > 1e-9 && std::fabs(delta) < best) {
        best = std::fabs(delta);
        side = (delta >= 0.0) ? 1.0 : -1.0;
      }
    }
    if (best == kInf) return Action::stay(kRsbElection);
    return Action{arcBySweep(c, p[self], side * amin / 8.0), kRsbElection};
  }

  if (inQ && rSelf <= minAll + kTol) {
    // Among the closest robots: flip the single random bit of this cycle.
    // Every exit below participated in an election round (the bit is
    // consumed even when geometry forces a stay), so each is flagged for
    // the telemetry layer.
    auto elected = [](Action a) {
      a.electionRound = true;
      return a;
    };
    const bool toward = rng.bit();
    if (toward) {
      const double target = rSelf * 7.0 / 8.0;
      if (target >= partial.cap) return elected(Action::stay(kRsbElection));
      return elected(Action{radialPath(c, p[self], target), kRsbElection});
    }
    const double step = std::min(0.5 * (dOut - rSelf), rSelf / 7.0);
    if (step <= kTol) return elected(Action::stay(kRsbElection));
    const double target = rSelf + step;
    if (target >= partial.cap) return elected(Action::stay(kRsbElection));
    return elected(Action{radialPath(c, p[self], target), kRsbElection});
  }
  return Action::stay(kRsbElection);
}

/// No regular set (psi_RSB restricted to Q^c): the unique max-view robot
/// descends radially.
Action asymmetricCase(Analysis& a) {
  const Configuration& p = a.P();
  const std::size_t self = a.self();
  const Vec2 c = a.centerP();

  // rmax: the UNIQUE maximal view among robots that do not hold C(P).
  // Ties would mean symmetric twins — by Property 1 such configurations
  // have a regular set and are handled by the Q branch; acting on a tie
  // here would require breaking it by robot identity, which anonymous
  // robots do not have.
  const auto& views = a.viewsP();
  std::size_t rmax = p.size();
  bool tie = false;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (geom::holdsSec(p.span(), i)) continue;
    if (rmax == p.size()) {
      rmax = i;
      continue;
    }
    const int cmp = config::compareViews(views[i], views[rmax]);
    if (cmp > 0) {
      rmax = i;
      tie = false;
    } else if (cmp == 0) {
      tie = true;
    }
  }
  if (rmax == p.size() || tie || self != rmax) {
    return Action::stay(kRsbAsymmetric);
  }

  const double rSelf = radiusOf(p, self, c);
  double minOther = kInf;
  for (std::size_t j = 0; j < p.size(); ++j) {
    if (j != self) minOther = std::min(minOther, radiusOf(p, j, c));
  }

  // Probe: would stopping at 0.8 * minOther create a regular set? (The
  // paper's "exists a point on [rmax, c(P)) making the configuration
  // regular" — re-evaluated at each activation since robots are oblivious.)
  const double probeRadius = std::min(rSelf, 0.8 * minOther);
  if (probeRadius < rSelf - kTol) {
    std::vector<Vec2> test = p.points();
    test[self] = c + (p[self] - c) * (probeRadius / rSelf);
    if (config::regularSetOf(Configuration(std::move(test))).has_value()) {
      return Action{radialPath(c, p[self], probeRadius), kRsbAsymmetric};
    }
  }

  if (const auto target = selectedDescendTarget(a, c, self)) {
    return Action{linePath(p[self], *target), kRsbAsymmetric};
  }
  return Action::stay(kRsbAsymmetric);
}

}  // namespace

Action rsbCompute(Analysis& a, sched::RandomSource& rng) {
  if (const auto& sh = a.shiftedSet()) return shiftedCase(a, *sh);
  if (const auto& reg = a.regularSet()) return regularCase(a, *reg, rng);
  return asymmetricCase(a);
}

Action RsbOnlyAlgorithm::compute(const sim::Snapshot& snap,
                                 sched::RandomSource& rng) const {
  Analysis a(snap);
  if (!a.ok()) return Action::stay(kStay);
  if (a.selectedRobot()) return Action::stay(kTerminal);
  Action act = rsbCompute(a, rng);
  if (act.isMove()) act.path = act.path.transformed(a.denormalize());
  return act;
}

}  // namespace apf::core
