#pragma once

/// \file multiplicity.h
/// Appendix C: forming patterns whose CENTER is a multiplicity point.
///
/// A point of multiplicity at c(F) cannot be targeted directly (robots
/// descending to the exact center would destroy every angular reference),
/// so the algorithm first forms F~ — the pattern with the center points
/// relocated to g_F, the midpoint between c(F) and the max-view non-center
/// point — and then the robots gathered at g_F walk down the ray to the
/// center. Robots recognize the hand-off state obliviously: the m innermost
/// robots sit on one ray and the remaining robots already form
/// F - {(c(F), m)}.
///
/// The degenerate "gather everyone at one point" pattern (all n points
/// equal) is out of scope, as is starting FROM configurations with
/// multiplicity: the paper defers both to the open ASYNC-scattering problem
/// (§5).

#include <optional>

#include "config/configuration.h"
#include "core/analysis.h"
#include "sim/algorithm.h"

namespace apf::core {

/// Analysis of a pattern with center multiplicity.
struct CenterMultiplicity {
  /// Number of pattern points at the center (>= 2).
  int count = 0;
  /// Normalized pattern with the center points relocated to g_F.
  config::Configuration fTilde;
  /// Normalized original pattern.
  config::Configuration fOriginal;
};

/// Detects center multiplicity in the (raw) pattern. Returns nullopt when
/// the pattern has no multiplicity at its center, or when ALL points are at
/// one spot (gathering — unsupported, see above).
std::optional<CenterMultiplicity> analyzeCenterMultiplicity(
    const config::Configuration& pattern,
    const geom::Tol& tol = geom::kDefaultTol);

/// The final gather move: when the m innermost robots sit on one ray and
/// the rest of P forms F minus the center points, the innermost robots walk
/// to the (mapped) center. Works in the normalized frame of `a`.
std::optional<sim::Action> centerGatherMove(Analysis& a,
                                            const CenterMultiplicity& cm);

}  // namespace apf::core
