#pragma once

/// \file scattering.h
/// SSYNC scattering + formation (the paper's §5 "perspectives").
///
/// The main algorithm requires the INITIAL configuration to be free of
/// multiplicity points. §5 sketches the fix the authors defer to future
/// work: in SSYNC, run a scattering phase that eliminates multiplicity
/// points, then hand off to pattern formation — composition is safe in
/// SSYNC because cycles are atomic (every Move acts on a fresh snapshot).
///
/// The scattering rule (one random bit per robot per cycle, in the spirit
/// of the authors' scattering paper [4]):
///
///   A robot on a multiplicity point flips a coin. Heads: step to a
///   configuration-determined nearby free spot; tails: stay. Co-located
///   robots see identical snapshots, so they compute the SAME spot — the
///   group splits into movers and stayers, and each flip halves a group in
///   expectation. The step is a quarter of the distance to the nearest
///   other occupied point, so no new collision can be created; with
///   probability 1 every multiplicity point dissolves.
///
/// ASYNC scattering remains open (the paper's words); ScatterThenForm
/// is specified for FSYNC/SSYNC only and the tests pin that scope.

#include "core/form_pattern.h"
#include "sim/algorithm.h"

namespace apf::core {

/// The scattering phase alone: terminal once no multiplicity point exists.
/// Requires multiplicity detection.
class ScatterAlgorithm : public sim::Algorithm {
 public:
  sim::Action compute(const sim::Snapshot& snap,
                      sched::RandomSource& rng) const override;
  std::string name() const override { return "scatter"; }
};

/// SSYNC combination: scattering while multiplicity exists, the paper's
/// formPattern afterwards. The active sets are disjoint by construction
/// (scatter is active exactly on multiplicity configurations; formation is
/// only consulted on multiplicity-free ones).
class ScatterThenForm : public sim::Algorithm {
 public:
  sim::Action compute(const sim::Snapshot& snap,
                      sched::RandomSource& rng) const override;
  std::string name() const override { return "scatter+form"; }

 private:
  ScatterAlgorithm scatter_;
  FormPatternAlgorithm form_;
};

}  // namespace apf::core
