#include "core/dpf.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "config/rays.h"
#include "core/moves.h"
#include "core/phases.h"
#include "geom/angle.h"
#include "geom/sec.h"

namespace apf::core {
namespace {

using config::Configuration;
using geom::kPi;
using geom::kTwoPi;
using geom::Vec2;
using sim::Action;

constexpr double kTol = 1e-9;
constexpr double kAngTol = 1e-7;
/// Hysteresis: movers stop within kAngTol of their targets, and phase
/// conditions accept anything within kDoneTol > kAngTol — otherwise a robot
/// parked exactly at the stopping boundary makes the "at target" predicate
/// flicker with per-frame normalization noise and robots disagree on the
/// current phase.
constexpr double kDoneTol = 5e-7;
constexpr double kInf = std::numeric_limits<double>::infinity();

/// All geometry below is in the normalized frame: C(P) = C(F) = unit circle
/// at the origin, which is also the center used for every radius and angle.
class Planner {
 public:
  Planner(Analysis& a, std::size_t rs)
      : a_(a), p_(a.P()), f_(a.F()), rs_(rs), pat_(a.patternInfo()) {
    if (!pat_.valid || p_.size() != f_.size()) return;
    fmaxRadius_ = pat_.fmaxRadius;
    thetaFPrime_ = pat_.thetaFPrime;
    targets_ = pat_.targets;
    circleRadii_ = pat_.circleRadii;
    circleCounts_ = pat_.circleCounts;
    valid_ = true;
  }

  bool valid() const { return valid_; }

  Action compute() {
    if (!valid_) return Action::stay(kStay);
    if (auto act = phase1()) return *act;
    buildZ();
    if (auto act = nullAngle()) return *act;
    if (auto act = fixEnclosing()) return *act;
    if (auto act = circles()) return *act;
    return rotate();
  }

 private:
  // ---------- shared helpers ----------

  using Polar = PatternInfo::Polar;

  double radius(std::size_t i) const { return p_[i].norm(); }
  bool isPrime(std::size_t i) const { return i != rs_; }

  /// Z-system angle of a point (angle 0 on rmax's ray, orientation zSign_).
  double zAngle(Vec2 q) const {
    if (q.norm() <= kTol) return 0.0;
    double ang = geom::norm2pi(zSign_ * (q.arg() - zTheta0_));
    if (ang > kTwoPi - kAngTol) ang = 0.0;
    return ang;
  }

  Vec2 zPoint(double r, double ang) const {
    const double realAng = zTheta0_ + zSign_ * ang;
    return Vec2{std::cos(realAng), std::sin(realAng)} * r;
  }

  /// Arc on the robot's own circle from its current Z-angle to Z-angle
  /// `target`, staying inside the (0, 2pi) band (never crossing rmax's ray).
  geom::Path bandArc(std::size_t i, double targetZ) const {
    const double cur = zAngle(p_[i]);
    const double sweepZ = targetZ - cur;  // not wrapped: stays in the band
    return arcBySweep(Vec2{}, p_[i], zSign_ * sweepZ);
  }

  // ---------- phase 1: global coordinate system ----------

  /// The unique rmax candidate satisfying (i), (ii), (iv); nullopt if none
  /// or not unique.
  std::optional<std::size_t> findRmax() const {
    const Vec2 rsPos = p_[rs_];
    if (rsPos.norm() <= kTol) return std::nullopt;  // rs at center
    const double rsArg = rsPos.arg();
    double minRad = kInf, minAng = kInf;
    for (std::size_t i = 0; i < p_.size(); ++i) {
      if (!isPrime(i)) continue;
      minRad = std::min(minRad, radius(i));
      minAng = std::min(minAng, geom::angDist(p_[i].arg(), rsArg));
    }
    std::vector<std::size_t> cands;
    for (std::size_t i = 0; i < p_.size(); ++i) {
      if (!isPrime(i)) continue;
      const double ang = geom::angDist(p_[i].arg(), rsArg);
      if (geom::distEq(radius(i), minRad) &&
          std::fabs(ang - minAng) <= kAngTol &&
          2.0 * ang < thetaFPrime_ - kAngTol) {
        cands.push_back(i);
      }
    }
    if (cands.size() != 1) return std::nullopt;
    return cands.front();
  }

  std::optional<Action> phase1() {
    const auto cand = findRmax();
    if (cand && radius(*cand) <= fmaxRadius_ + kTol) {
      rmax_ = *cand;
      return std::nullopt;  // phase complete
    }
    if (cand) {
      // Condition (iii): rmax descends radially to fmax's radius. When rmax
      // itself holds C(P) (e.g. after a whole-configuration election, where
      // every robot sits on one circle), its departure would SHRINK the
      // enclosing circle — the one invariant everything is scaled by. The
      // other boundary robots spread out first so C(P) survives.
      if (radius(*cand) >= 1.0 - 1e-7 && !secSafeWithout(*cand)) {
        return spreadBeforeDescent(*cand);
      }
      if (a_.self() == *cand) {
        return Action{radialPath(Vec2{}, p_[*cand], fmaxRadius_), kDpfCoord};
      }
      return Action::stay(kDpfCoord);
    }
    // No valid rmax: the selected robot repositions.
    if (a_.self() != rs_) return Action::stay(kDpfCoord);
    const Vec2 rsPos = p_[rs_];
    if (rsPos.norm() > kTol) {
      // Walk to the exact center first (angles along the ray are invariant,
      // so the phase condition stays false during the walk).
      return Action{linePath(rsPos, Vec2{}), kDpfCoord};
    }
    // At the center: re-emerge at distance d on a ray close to the chosen
    // r0 so that r0 becomes the unique rmax.
    double minRad = kInf;
    for (std::size_t i = 0; i < p_.size(); ++i) {
      if (isPrime(i)) minRad = std::min(minRad, radius(i));
    }
    std::size_t r0 = p_.size();
    for (std::size_t i = 0; i < p_.size(); ++i) {
      if (isPrime(i) && geom::distEq(radius(i), minRad)) {
        if (r0 == p_.size() ||
            config::compareViews(a_.viewsP()[i], a_.viewsP()[r0]) > 0) {
          r0 = i;
        }
      }
    }
    if (r0 == p_.size()) return Action::stay(kDpfCoord);
    double minGap = kPi;
    for (std::size_t i = 0; i < p_.size(); ++i) {
      if (!isPrime(i) || i == r0 || radius(i) <= kTol) continue;
      const double g = geom::angDist(p_[i].arg(), p_[r0].arg());
      // Robots exactly on r0's ray (parked radially below it) do not
      // constrain the placement: they are at larger radii, so condition (i)
      // already rules them out as rmax candidates.
      if (g > kAngTol) minGap = std::min(minGap, g);
    }
    const double phi = 0.25 * std::min({thetaFPrime_, minGap, kPi});
    const double d = std::min(a_.lF(), minRad) / 2.0;
    const double ang = p_[r0].arg() - phi;
    return Action{linePath(rsPos, Vec2{std::cos(ang), std::sin(ang)} * d),
                  kDpfCoord};
  }

  /// True when the robots on C(P) other than `skip` still hold the circle:
  /// no angular gap among them exceeds pi.
  bool secSafeWithout(std::size_t skip) const {
    std::vector<double> angs;
    for (std::size_t i = 0; i < p_.size(); ++i) {
      if (i == skip || radius(i) < 1.0 - 1e-7) continue;
      angs.push_back(geom::norm2pi(p_[i].arg()));
    }
    if (angs.size() < 2) return false;
    std::sort(angs.begin(), angs.end());
    double maxGap = angs.front() + kTwoPi - angs.back();
    for (std::size_t k = 1; k < angs.size(); ++k) {
      maxGap = std::max(maxGap, angs[k] - angs[k - 1]);
    }
    return maxGap <= kPi - 1e-6;
  }

  /// Pre-descent stabilization: the two boundary robots flanking the
  /// largest gap (computed WITHOUT rmax) arc symmetrically into it until no
  /// gap exceeds pi. The rule is mirror-covariant — in a reflected frame
  /// the gap's endpoints swap roles and order the same world movement — so
  /// it needs no chirality. Targets keep clear of r_s's and rmax's rays so
  /// the phase-1 conditions (rmax unique, angularly closest to r_s) hold.
  Action spreadBeforeDescent(std::size_t rmaxIdx) {
    struct Entry {
      double ang;
      std::size_t idx;
    };
    std::vector<Entry> ring;
    for (std::size_t i = 0; i < p_.size(); ++i) {
      if (!isPrime(i) || i == rmaxIdx || radius(i) < 1.0 - 1e-7) continue;
      ring.push_back({geom::norm2pi(p_[i].arg()), i});
    }
    if (ring.size() < 2) return Action::stay(kDpfCoord);
    std::sort(ring.begin(), ring.end(),
              [](const Entry& a, const Entry& b) { return a.ang < b.ang; });
    const std::size_t m = ring.size();
    // Largest gap: runs counterclockwise from ring[g] to ring[(g+1) % m].
    std::size_t g = m - 1;
    double maxGap = ring.front().ang + kTwoPi - ring.back().ang;
    for (std::size_t k = 0; k + 1 < m; ++k) {
      const double gap = ring[k + 1].ang - ring[k].ang;
      if (gap > maxGap) {
        maxGap = gap;
        g = k;
      }
    }
    const double margin = 1e-3;
    if (maxGap <= kPi - margin) return Action::stay(kDpfCoord);
    const std::size_t iA = ring[g].idx;               // gap starts here (ccw)
    const std::size_t iB = ring[(g + 1) % m].idx;     // gap ends here
    if (a_.self() != iA && a_.self() != iB) return Action::stay(kDpfCoord);

    // The mover steps into the gap by up to half the excess, limited by the
    // gap opening up behind it.
    const double excess = maxGap - (kPi - margin);
    double back;  // the mover's gap on its other side
    double dir;   // +1: ccw into the gap (A), -1: cw into the gap (B)
    if (a_.self() == iA) {
      const std::size_t prev = (g + m - 1) % m;
      back = geom::norm2pi(ring[g].ang - ring[prev].ang);
      dir = 1.0;
    } else {
      const std::size_t next = (g + 2) % m;
      back = geom::norm2pi(ring[next].ang - ring[(g + 1) % m].ang);
      dir = -1.0;
    }
    double delta =
        0.5 * std::min(excess, (kPi - margin) - back);
    if (delta <= 1e-9) return Action::stay(kDpfCoord);

    // Keep clear of r_s's ray (condition ii: rmax stays angularly closest)
    // and rmax's ray (strict ray ordering).
    const double myAng = geom::norm2pi(p_[a_.self()].arg());
    const double rsRay = geom::norm2pi(p_[rs_].arg());
    const double rmaxRay = geom::norm2pi(p_[rmaxIdx].arg());
    const double rsZone =
        2.0 * geom::angDist(rmaxRay, rsRay) + 1e-4;
    for (double frac : {1.0, 0.5, 0.25, 0.1}) {
      const double t = geom::norm2pi(myAng + dir * delta * frac);
      if (geom::angDist(t, rsRay) > rsZone &&
          geom::angDist(t, rmaxRay) > 1e-4) {
        return Action{arcBySweep(Vec2{}, p_[a_.self()], dir * delta * frac),
                      kDpfCoord};
      }
    }
    return Action::stay(kDpfCoord);
  }

  void buildZ() {
    zTheta0_ = p_[*rmax_].arg();
    const double rel = geom::norm2pi(p_[rs_].arg() - zTheta0_);
    if (std::min(rel, kTwoPi - rel) > 1e-6) {
      // Generic case: the orientation that maximizes r_s's angular
      // coordinate (the paper's rule).
      zSign_ = (rel >= kTwoPi - rel) ? 1.0 : -1.0;
    } else {
      // r_s sits (numerically) on rmax's ray: the rel-based rule would flip
      // with per-frame noise. Fall back to rmax's view orientation, which
      // is quantized and frame-stable; when even that is 0 the
      // configuration is mirror-symmetric about the ray and both
      // orientations are equivalent.
      const auto v = config::localView(p_, *rmax_, Vec2{});
      zSign_ = (v.orientation >= 0) ? 1.0 : -1.0;
    }
  }

  // ---------- null-angle pre-phase ----------

  std::optional<Action> nullAngle() {
    std::vector<std::size_t> null;
    for (std::size_t i = 0; i < p_.size(); ++i) {
      if (!isPrime(i) || i == *rmax_) continue;
      if (zAngle(p_[i]) <= kAngTol) null.push_back(i);
    }
    if (null.empty()) return std::nullopt;
    double minPos = kPi;
    for (std::size_t i = 0; i < p_.size(); ++i) {
      if (!isPrime(i) || i == *rmax_) continue;
      const double zi = zAngle(p_[i]);
      if (zi > kAngTol) minPos = std::min(minPos, zi);
    }
    const double target = minPos / 2.0;
    if (std::find(null.begin(), null.end(), a_.self()) != null.end()) {
      return Action{bandArc(a_.self(), target), kDpfNullAngle};
    }
    return Action{geom::Path{}, kDpfNullAngle};
  }

  // ---------- circle membership helpers ----------

  bool onCircle(std::size_t i, std::size_t ci) const {
    return geom::distEq(radius(i), circleRadii_[ci]);
  }

  std::vector<std::size_t> robotsOnCircle(std::size_t ci) const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < p_.size(); ++i) {
      if (isPrime(i) && onCircle(i, ci)) out.push_back(i);
    }
    // Sorted by Z-angle ascending; index tiebreak keeps merged robots
    // (identical positions under multiplicity) deterministically ordered —
    // they are interchangeable, so any consistent order is sound.
    std::sort(out.begin(), out.end(), [&](std::size_t x, std::size_t y) {
      const double ax = zAngle(p_[x]), ay = zAngle(p_[y]);
      if (std::fabs(ax - ay) > kAngTol) return ax < ay;
      return x < y;
    });
    return out;
  }

  std::vector<double> targetsOnCircle(std::size_t ci) const {
    std::vector<double> out;
    for (const auto& t : targets_) {
      if (geom::distEq(t.radius, circleRadii_[ci])) out.push_back(t.angle);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Parking move: robot i steps radially inward without reaching another
  /// robot's circle nor the circle of radius `floor`.
  Action parkInward(std::size_t i, double floor, int tag) const {
    double inner = floor;
    for (std::size_t j = 0; j < p_.size(); ++j) {
      if (j == i) continue;
      const double rj = radius(j);
      if (rj < radius(i) - kTol) inner = std::max(inner, rj);
    }
    return Action{radialPath(Vec2{}, p_[i], (radius(i) + inner) / 2.0), tag};
  }

  Action stepOutward(std::size_t i, double ceiling, int tag) const {
    double outer = ceiling;
    for (std::size_t j = 0; j < p_.size(); ++j) {
      if (j == i) continue;
      const double rj = radius(j);
      if (rj > radius(i) + kTol) outer = std::min(outer, rj);
    }
    return Action{radialPath(Vec2{}, p_[i], (radius(i) + outer) / 2.0), tag};
  }

  bool sharesCircle(std::size_t i) const {
    for (std::size_t j = 0; j < p_.size(); ++j) {
      if (j != i && geom::distEq(radius(j), radius(i))) return true;
    }
    return false;
  }

  /// Clamp a C1 move so the largest angular gap among C(P) boundary robots
  /// stays below pi (C(P) preservation). Returns the adjusted target angle.
  double clampGapOnC1(std::size_t mover, double targetZ) const {
    // Collect the Z-angles of all robots on C1 except the mover.
    std::vector<double> angs;
    for (std::size_t i = 0; i < p_.size(); ++i) {
      if (i != mover && geom::distEq(radius(i), 1.0)) {
        angs.push_back(zAngle(p_[i]));
      }
    }
    if (angs.size() < 2) return zAngle(p_[mover]);  // cannot move at all
    const double cur = zAngle(p_[mover]);
    // Binary search along [cur, targetZ] for the farthest safe position.
    auto safe = [&](double candidate) {
      std::vector<double> all = angs;
      all.push_back(candidate);
      std::sort(all.begin(), all.end());
      double maxGap = all.front() + kTwoPi - all.back();
      for (std::size_t k = 1; k < all.size(); ++k) {
        maxGap = std::max(maxGap, all[k] - all[k - 1]);
      }
      return maxGap <= kPi - 1e-9;
    };
    if (safe(targetZ)) return targetZ;
    double lo = 0.0, hi = 1.0;  // fraction of the way to target
    for (int it = 0; it < 50; ++it) {
      const double mid = (lo + hi) / 2.0;
      if (safe(cur + (targetZ - cur) * mid)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return cur + (targetZ - cur) * lo;
  }

  // ---------- fixEnclosingCircle (|C(F) cap F'| = 2) ----------

  std::optional<Action> fixEnclosing() {
    if (circleCounts_.empty() || circleCounts_[0] != 2 ||
        !geom::distEq(circleRadii_[0], 1.0)) {
      return std::nullopt;  // special case does not apply
    }
    const auto tgt = targetsOnCircle(0);  // two diametral angles, sorted
    const auto onC1 = robotsOnCircle(0);
    // Condition: exactly two robots, at the two targets (kDoneTol: looser
    // than the movers' stopping threshold, see hysteresis note above).
    if (onC1.size() == 2 &&
        std::fabs(zAngle(p_[onC1[0]]) - tgt[0]) <= kDoneTol &&
        std::fabs(zAngle(p_[onC1[1]]) - tgt[1]) <= kDoneTol) {
      return std::nullopt;
    }
    if (onC1.size() == 2) {
      // Pull a third robot (the greatest interior one) out to C1 so the two
      // can maneuver without breaking C(P).
      const std::size_t mover = greatestStrictlyInside(0);
      if (mover == p_.size()) return std::nullopt;  // nobody to pull
      return std::optional<Action>(pullOntoCircle(mover, 0, kDpfFixCircle));
    }
    // >= 3 robots on C1: greatest -> larger target, smallest -> smaller
    // target, middles evenly between; once the two ends are placed, excess
    // robots (second smallest first) leave inward.
    const std::size_t rBig = onC1.back();
    const std::size_t rSmall = onC1.front();
    const bool endsPlaced =
        std::fabs(zAngle(p_[rBig]) - tgt[1]) <= kDoneTol &&
        std::fabs(zAngle(p_[rSmall]) - tgt[0]) <= kDoneTol;
    if (endsPlaced) {
      const std::size_t mover = onC1[1];  // second smallest
      if (a_.self() == mover) {
        return std::optional<Action>(parkInward(
            mover, circleRadii_.size() > 1 ? circleRadii_[1] : 0.0,
            kDpfFixCircle));
      }
      return std::optional<Action>(Action::stay(kDpfFixCircle));
    }
    // Assign targets along C1.
    if (a_.self() != rBig && a_.self() != rSmall &&
        (std::find(onC1.begin(), onC1.end(), a_.self()) == onC1.end())) {
      return std::optional<Action>(Action::stay(kDpfFixCircle));
    }
    double myTarget;
    if (a_.self() == rBig) {
      myTarget = tgt[1];
    } else if (a_.self() == rSmall) {
      myTarget = tgt[0];
    } else {
      const auto it = std::find(onC1.begin(), onC1.end(), a_.self());
      const std::size_t rank = it - onC1.begin();  // 1..size-2
      myTarget = tgt[0] + (tgt[1] - tgt[0]) * static_cast<double>(rank) /
                              static_cast<double>(onC1.size() - 1);
    }
    return std::optional<Action>(
        moveOnCircleBlocked(a_.self(), 0, myTarget, kDpfFixCircle));
  }

  std::size_t greatestStrictlyInside(std::size_t ci) const {
    std::size_t best = p_.size();
    for (std::size_t i = 0; i < p_.size(); ++i) {
      if (!isPrime(i)) continue;
      if (radius(i) < circleRadii_[ci] - kTol) {
        if (best == p_.size() || zOrderLess(best, i)) best = i;
      }
    }
    return best;
  }

  /// Deterministic, frame-covariant jitter in [0, 1): distinct robot
  /// positions map to distinct values. Staging angles are salted with this
  /// so two movers racing on stale ASYNC snapshots (both believing they are
  /// "the" mover) never compute the same landing angle — the deterministic
  /// collision channel of the circle-placement phase.
  double positionSalt(std::size_t i) const {
    const double x =
        std::sin(zAngle(p_[i]) * 127.1 + radius(i) * 311.7) * 43758.5453;
    return x - std::floor(x);
  }

  bool zOrderLess(std::size_t x, std::size_t y) const {
    const double ax = zAngle(p_[x]), ay = zAngle(p_[y]);
    if (std::fabs(ax - ay) > kAngTol) return ax < ay;
    return radius(x) < radius(y);
  }

  /// locateEnoughRobots-style move of `mover` onto circle ci: step off a
  /// shared circle, slide below the circle's occupied angles, then move
  /// radially outward.
  Action pullOntoCircle(std::size_t mover, std::size_t ci, int tag) const {
    if (a_.self() != mover) return Action::stay(tag);
    if (sharesCircle(mover)) return stepOutward(mover, circleRadii_[ci], tag);
    const auto onCi = robotsOnCircle(ci);
    double aMin = kTwoPi;
    for (std::size_t r : onCi) aMin = std::min(aMin, zAngle(p_[r]));
    const double myAng = zAngle(p_[mover]);
    if (myAng < aMin - kAngTol || onCi.empty()) {
      return Action{radialPath(Vec2{}, p_[mover], circleRadii_[ci]), tag};
    }
    // Slide (indirect orientation) below the minimum occupied angle —
    // except rmax, which anchors angle 0 and always moves radially. The
    // landing angle is salted (see positionSalt).
    if (mover == *rmax_) {
      return Action{radialPath(Vec2{}, p_[mover], circleRadii_[ci]), tag};
    }
    const double target = aMin * (0.35 + 0.3 * positionSalt(mover));
    return Action{bandArc(mover, target), tag};
  }

  /// Move `mover` along its circle toward Z-angle `target`, halving the
  /// distance to any blocking robot on the same circle, preserving C(P)
  /// when the circle is C1.
  Action moveOnCircleBlocked(std::size_t mover, std::size_t ci, double target,
                             int tag) const {
    if (a_.self() != mover) return Action::stay(tag);
    const double cur = zAngle(p_[mover]);
    if (std::fabs(cur - target) <= kAngTol) return Action::stay(tag);
    double goal = target;
    const double lo = std::min(cur, target), hi = std::max(cur, target);
    double blocker = kInf;
    for (std::size_t j = 0; j < p_.size(); ++j) {
      if (j == mover || !geom::distEq(radius(j), radius(mover))) continue;
      const double aj = zAngle(p_[j]);
      // Multiplicity extension (appendix C): a robot already sitting at the
      // mover's own destination does not block — robots sharing a
      // destination are allowed to merge there.
      if (a_.multiplicity() && std::fabs(aj - target) <= kAngTol) continue;
      // A robot strictly on the way blocks; so does a robot parked at (or
      // next to) the goal itself — under ASYNC staleness two movers can
      // transiently hold the same rank and target the same slot, and
      // without this guard they would merge by arriving from opposite
      // sides. Halving keeps them apart until a fresh view re-ranks them.
      const bool onTheWay = aj > lo + kAngTol && aj < hi - kAngTol;
      const bool atGoal = std::fabs(aj - target) <= 10.0 * kAngTol;
      if (onTheWay || atGoal) {
        if (std::fabs(aj - cur) < std::fabs(blocker - cur)) blocker = aj;
      }
    }
    if (blocker != kInf) goal = (cur + blocker) / 2.0;
    if (geom::distEq(circleRadii_[ci], 1.0)) goal = clampGapOnC1(mover, goal);
    if (std::fabs(goal - cur) <= kAngTol) return Action::stay(tag);
    return Action{bandArc(mover, goal), tag};
  }

  // ---------- phase 2: per-circle placement ----------

  std::optional<Action> circles() {
    const std::size_t m = circleRadii_.size();
    for (std::size_t ci = 0; ci < m; ++ci) {
      // cleanExterior(ci): no robots strictly between C_{ci-1} and C_ci.
      std::vector<std::size_t> between;
      for (std::size_t i = 0; i < p_.size(); ++i) {
        if (!isPrime(i)) continue;
        const double ri = radius(i);
        const double upperR = (ci == 0) ? kInf : circleRadii_[ci - 1];
        if (ri > circleRadii_[ci] + kTol && ri < upperR - kTol) {
          between.push_back(i);
        }
      }
      if (!between.empty()) {
        std::size_t mover = between.front();
        for (std::size_t i : between) {
          if (zOrderLess(i, mover)) mover = i;
        }
        return cleanExteriorMove(mover, ci);
      }
      const auto onCi = robotsOnCircle(ci);
      const int mi = circleCounts_[ci];
      if (static_cast<int>(onCi.size()) < mi) {
        const std::size_t mover = greatestStrictlyInside(ci);
        if (mover == p_.size()) return std::optional<Action>(Action::stay(kDpfLocate));
        return std::optional<Action>(pullOntoCircle(mover, ci, kDpfLocate));
      }
      if (static_cast<int>(onCi.size()) > mi) {
        return removeExcess(ci, onCi, mi);
      }
    }
    return std::nullopt;  // every circle has exactly its count
  }

  std::optional<Action> cleanExteriorMove(std::size_t mover, std::size_t ci) {
    if (a_.self() != mover) return std::optional<Action>(Action::stay(kDpfClean));
    if (sharesCircle(mover)) {
      return std::optional<Action>(parkInward(mover, circleRadii_[ci], kDpfClean));
    }
    const auto onCi = robotsOnCircle(ci);
    double aMax = 0.0;
    for (std::size_t r : onCi) aMax = std::max(aMax, zAngle(p_[r]));
    const bool last = (ci + 1 == circleRadii_.size());
    const double upper = last ? kTwoPi - thetaFPrime_ : kTwoPi - kAngTol * 10;
    const double myAng = zAngle(p_[mover]);
    if (myAng > aMax + kAngTol && myAng < upper) {
      return std::optional<Action>(
          Action{radialPath(Vec2{}, p_[mover], circleRadii_[ci]), kDpfClean});
    }
    // Salted landing angle in (aMax, upper); see positionSalt.
    const double target =
        aMax + (upper - aMax) * (0.35 + 0.3 * positionSalt(mover));
    return std::optional<Action>(Action{bandArc(mover, target), kDpfClean});
  }

  std::optional<Action> removeExcess(std::size_t ci,
                                     const std::vector<std::size_t>& onCi,
                                     int mi) {
    if (ci > 0) {
      const std::size_t mover = onCi.front();  // smallest on the circle
      if (a_.self() != mover) return std::optional<Action>(Action::stay(kDpfRemove));
      const double floor =
          (ci + 1 < circleRadii_.size()) ? circleRadii_[ci + 1] : 0.0;
      return std::optional<Action>(parkInward(mover, floor, kDpfRemove));
    }
    // ci == 0: the m1-gon dance (m1 >= 3 here; m1 == 2 is fixEnclosing's).
    const int b = static_cast<int>(onCi.size()) - mi;
    // Targets: the regular mi-gon symmetric about angle 0 with no vertex at
    // angle 0, plus b staging angles evenly inside (0, pi/mi).
    std::vector<double> gon;
    for (int k = 0; k < mi; ++k) {
      gon.push_back(geom::norm2pi((2.0 * k + 1.0) * kPi / mi));
    }
    std::sort(gon.begin(), gon.end());
    // The mi greatest robots on C1 (largest angles) map to the gon slots.
    std::vector<std::size_t> greatest(onCi.end() - mi, onCi.end());
    bool gonFormed = true;
    for (int k = 0; k < mi; ++k) {
      if (std::fabs(zAngle(p_[greatest[k]]) - gon[k]) > kDoneTol) {
        gonFormed = false;
        break;
      }
    }
    if (gonFormed) {
      const std::size_t mover = onCi.front();
      if (a_.self() != mover) return std::optional<Action>(Action::stay(kDpfRemove));
      const double floor =
          (circleRadii_.size() > 1) ? circleRadii_[1] : 0.0;
      return std::optional<Action>(parkInward(mover, floor, kDpfRemove));
    }
    // Everyone on C1 moves toward its assigned slot.
    const auto it = std::find(onCi.begin(), onCi.end(), a_.self());
    if (it == onCi.end()) return std::optional<Action>(Action::stay(kDpfRemove));
    const std::size_t rank = it - onCi.begin();
    double target;
    if (static_cast<int>(rank) >= b) {
      target = gon[rank - b];
    } else {
      target = (kPi / mi) * static_cast<double>(rank + 1) /
               static_cast<double>(b + 1);
    }
    return std::optional<Action>(
        moveOnCircleBlocked(a_.self(), 0, target, kDpfRemove));
  }

  // ---------- phase 3: rotation to destinations ----------

  Action rotate() {
    // Per circle, rank-match robots and targets by angle.
    for (std::size_t ci = 0; ci < circleRadii_.size(); ++ci) {
      const auto onCi = robotsOnCircle(ci);
      const auto tgt = targetsOnCircle(ci);
      if (onCi.size() != tgt.size()) return Action::stay(kDpfRotate);
      const auto it = std::find(onCi.begin(), onCi.end(), a_.self());
      if (it == onCi.end()) continue;
      const std::size_t rank = it - onCi.begin();
      return moveOnCircleBlocked(a_.self(), ci, tgt[rank], kDpfRotate);
    }
    return Action::stay(kDpfRotate);
  }

  // ---------- data ----------

  Analysis& a_;
  const Configuration& p_;
  const Configuration& f_;
  std::size_t rs_;
  const PatternInfo& pat_;
  bool valid_ = false;

  double fmaxRadius_ = 0.0;
  double thetaFPrime_ = kPi;
  std::vector<Polar> targets_;
  std::vector<double> circleRadii_;
  std::vector<int> circleCounts_;

  std::optional<std::size_t> rmax_;
  double zTheta0_ = 0.0;
  double zSign_ = 1.0;
};

}  // namespace

Action dpfCompute(Analysis& a) {
  const auto rs = a.selectedRobot();
  if (!rs) return Action::stay(kStay);
  Planner planner(a, *rs);
  return planner.compute();
}

}  // namespace apf::core
