#pragma once

/// \file form_pattern.h
/// The paper's main algorithm (formPattern): the partially-ordered
/// combination {psi_RSB, psi_DPF} plus the final move of the selected robot
/// (lines 3-4 of the pseudo-code). Forms any pattern F from any initial
/// configuration without multiplicity, with probability 1, for n >= 7
/// robots — with no common North, no common chirality, full asynchrony,
/// non-rigid movement, and one random bit per robot per cycle (Theorem 2).

#include "sim/algorithm.h"

namespace apf::core {

class FormPatternAlgorithm : public sim::Algorithm {
 public:
  sim::Action compute(const sim::Snapshot& snap,
                      sched::RandomSource& rng) const override;
  std::string name() const override { return "bramas-tixeuil"; }
};

}  // namespace apf::core
