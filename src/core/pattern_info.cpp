#include "core/pattern_info.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "geom/angle.h"
#include "geom/sec.h"

namespace apf::core {
namespace {

using config::Configuration;
using geom::kPi;
using geom::kTwoPi;
using geom::Vec2;

constexpr double kTol = 1e-9;
constexpr double kAngTol = 1e-7;

PatternInfo build(const Configuration& f, bool multiplicity) {
  PatternInfo out;
  out.f = f;
  out.lF = config::secondClosestDistance(f, Vec2{});
  out.views = config::allViews(f, Vec2{}, multiplicity);

  std::vector<std::size_t> nonHolders;
  for (std::size_t i = 0; i < f.size(); ++i) {
    if (!geom::holdsSec(f.span(), i)) nonHolders.push_back(i);
  }
  for (std::size_t i : nonHolders) {
    bool isMax = true;
    for (std::size_t j : nonHolders) {
      if (config::compareViews(out.views[j], out.views[i]) > 0) {
        isMax = false;
        break;
      }
    }
    if (isMax) out.maxViewNonHolders.push_back(i);
  }

  if (f.size() < 4 || out.maxViewNonHolders.empty()) return out;

  out.fs = out.maxViewNonHolders.front();
  std::vector<Vec2> fp;
  for (std::size_t i = 0; i < f.size(); ++i) {
    if (i != out.fs) fp.push_back(f[i]);
  }
  out.fPrime = Configuration(std::move(fp));

  const auto order =
      config::byViewDescending(out.fPrime, Vec2{}, multiplicity);
  out.fmax = order.front();
  out.fmaxRadius = out.fPrime[out.fmax].norm();
  out.fmaxArg = out.fPrime[out.fmax].arg();

  out.thetaFPrime = kPi;
  for (std::size_t i = 0; i < out.fPrime.size(); ++i) {
    if (i == out.fmax) continue;
    if (geom::distEq(out.fPrime[i].norm(), out.fmaxRadius)) {
      out.thetaFPrime = std::min(
          out.thetaFPrime,
          geom::angDist(out.fPrime[i].arg(), out.fmaxArg));
    }
  }

  const auto view = config::localView(out.fPrime, out.fmax, Vec2{});
  out.fOrient = (view.orientation == -1) ? -1.0 : 1.0;

  out.targets.reserve(out.fPrime.size());
  for (std::size_t i = 0; i < out.fPrime.size(); ++i) {
    const double r = out.fPrime[i].norm();
    double ang = 0.0;
    if (r > kTol) {
      ang = geom::norm2pi(out.fOrient * (out.fPrime[i].arg() - out.fmaxArg));
      if (ang > kTwoPi - kAngTol) ang = 0.0;
    }
    out.targets.push_back({r, ang});
  }

  std::vector<double> radii;
  for (const auto& t : out.targets) radii.push_back(t.radius);
  std::sort(radii.begin(), radii.end(), std::greater<>());
  for (double r : radii) {
    if (out.circleRadii.empty() || out.circleRadii.back() - r > kTol) {
      out.circleRadii.push_back(r);
      out.circleCounts.push_back(1);
    } else {
      ++out.circleCounts.back();
    }
  }
  out.valid = true;
  return out;
}

/// Quantized key for the cache.
std::vector<std::int64_t> keyOf(const Configuration& f, bool multiplicity) {
  std::vector<std::int64_t> key;
  key.reserve(f.size() * 2 + 1);
  key.push_back(multiplicity ? 1 : 0);
  for (const Vec2& p : f.points()) {
    key.push_back(std::llround(p.x * 1e9));
    key.push_back(std::llround(p.y * 1e9));
  }
  return key;
}

}  // namespace

const PatternInfo& PatternInfo::get(const Configuration& fNormalized,
                                    bool multiplicity) {
  thread_local std::map<std::vector<std::int64_t>, PatternInfo> cache;
  const auto key = keyOf(fNormalized, multiplicity);
  auto it = cache.find(key);
  if (it == cache.end()) {
    if (cache.size() > 64) cache.clear();  // bound memory across sweeps
    it = cache.emplace(key, build(fNormalized, multiplicity)).first;
  }
  return it->second;
}

}  // namespace apf::core
