#include "core/analysis.h"

#include <limits>

#include "config/rays.h"
#include "core/phases.h"
#include "geom/sec.h"

namespace apf::core {

const char* phaseName(int tag) {
  switch (tag) {
    case kStay: return "stay";
    case kTerminal: return "terminal";
    case kFinalMove: return "final-move";
    case kRsbShifted: return "rsb-shifted";
    case kRsbElection: return "rsb-election";
    case kRsbAsymmetric: return "rsb-asymmetric";
    case kRsbPartial: return "rsb-partial";
    case kDpfCoord: return "dpf-coord";
    case kDpfNullAngle: return "dpf-null-angle";
    case kDpfFixCircle: return "dpf-fix-circle";
    case kDpfClean: return "dpf-clean";
    case kDpfLocate: return "dpf-locate";
    case kDpfRemove: return "dpf-remove";
    case kDpfRotate: return "dpf-rotate";
    case kMultiplicity: return "multiplicity";
    case kBaseline: return "baseline";
  }
  return "?";
}

Analysis::Analysis(const sim::Snapshot& snap)
    : self_(snap.selfIndex), multiplicity_(snap.multiplicityDetection) {
  const geom::Circle cp = snap.robots.sec();
  const geom::Circle cf = snap.pattern.sec();
  if (cp.radius <= 1e-12 || cf.radius <= 1e-12 || snap.robots.size() < 2) {
    return;  // degenerate; algorithms stay still
  }
  const geom::Similarity np = snap.robots.normalizingTransform();
  p_ = snap.robots.transformed(np);
  f_ = snap.pattern.transformed(snap.pattern.normalizingTransform());
  denorm_ = np.inverse();
  pinfo_ = &PatternInfo::get(f_, multiplicity_);
  ok_ = true;
}

Vec2 Analysis::centerP() {
  if (!centerP_) {
    // Once a selected robot exists (the DPF regime) the configuration is
    // kept asymmetric and every distance is SEC-centered; skip the
    // expensive regular/shifted detection entirely.
    if (selectedRobot()) {
      centerP_ = Vec2{};
    } else if (shiftedSet()) {
      centerP_ = shifted_->grid.center;
    } else if (regularSet() && regular_->wholeConfig) {
      centerP_ = regular_->grid.center;
    } else {
      centerP_ = p_.sec().center;  // normalized: the origin
    }
  }
  return *centerP_;
}

Vec2 Analysis::centerF() {
  if (!centerF_) centerF_ = config::centerOf(f_);
  return *centerF_;
}

double Analysis::lF() {
  // Measured from the SEC center (origin of the normalized pattern): the
  // selected-robot predicate and every DPF radius use SEC-centered
  // distances so the RSB -> DPF handoff agrees on one center.
  return pinfo_ ? pinfo_->lF : 0.0;
}

const std::optional<config::RegularSetInfo>& Analysis::regularSet() {
  if (!regularComputed_) {
    regular_ = config::regularSetOf(p_);
    regularComputed_ = true;
  }
  return regular_;
}

const std::optional<config::ShiftedSetInfo>& Analysis::shiftedSet() {
  if (!shiftedComputed_) {
    shifted_ = config::shiftedRegularSetOf(p_);
    shiftedComputed_ = true;
  }
  return shifted_;
}

std::optional<std::size_t> Analysis::selectedRobot() {
  if (selectedComputed_) return selected_;
  selectedComputed_ = true;
  if (!ok_) return selected_;
  const Vec2 c{};  // SEC center of the normalized configuration
  const double bound = lF() / 2.0;
  for (std::size_t i = 0; i < p_.size(); ++i) {
    const double ri = geom::dist(p_[i], c);
    if (ri >= bound - 1e-12) continue;
    bool alone = true;
    for (std::size_t j = 0; j < p_.size() && alone; ++j) {
      if (j == i) continue;
      if (geom::dist(p_[j], c) < 2.0 * ri - 1e-12) alone = false;
    }
    if (alone) {
      selected_ = i;
      break;
    }
  }
  return selected_;
}

const std::vector<config::View>& Analysis::viewsP() {
  if (!viewsP_) viewsP_ = config::allViews(p_, centerP(), multiplicity_);
  return *viewsP_;
}

std::vector<std::size_t> Analysis::maxViewP() {
  // A max-view robot is always on the innermost ring around the center:
  // view sequences start with the (innermost radius / own radius) ratio,
  // which is maximal (= 1, or the atCenter flag) exactly for ring members.
  const Vec2 c = centerP();
  double minR = std::numeric_limits<double>::infinity();
  for (const Vec2& q : p_.points()) minR = std::min(minR, geom::dist(q, c));
  std::vector<std::size_t> ring;
  for (std::size_t i = 0; i < p_.size(); ++i) {
    if (geom::dist(p_[i], c) <= minR + 1e-9) ring.push_back(i);
  }
  if (ring.size() == 1) return ring;
  std::vector<config::View> views;
  views.reserve(ring.size());
  for (std::size_t i : ring) {
    views.push_back(config::localView(p_, i, c, multiplicity_));
  }
  std::vector<std::size_t> out;
  for (std::size_t k = 0; k < ring.size(); ++k) {
    bool isMax = true;
    for (std::size_t l = 0; l < ring.size() && isMax; ++l) {
      if (config::compareViews(views[l], views[k]) > 0) isMax = false;
    }
    if (isMax) out.push_back(ring[k]);
  }
  return out;
}

}  // namespace apf::core
