#pragma once

/// \file moves.h
/// Path constructors for the two movement primitives the paper uses:
/// radial movements (along the half-line from the center through the robot)
/// and movements "on its circle" (arcs around the center). Both keep their
/// defining invariant exactly even when the adversary stops the robot
/// mid-path.

#include "geom/path.h"
#include "geom/vec2.h"

namespace apf::core {

/// Straight radial path from `from` to distance `targetRadius` on the same
/// half-line from `c`. Empty when already there.
geom::Path radialPath(geom::Vec2 c, geom::Vec2 from, double targetRadius);

/// Arc around `c` from `from`'s direction to absolute direction
/// `targetAngle`, sweeping the SHORT way. Empty when already there.
geom::Path arcToAngle(geom::Vec2 c, geom::Vec2 from, double targetAngle);

/// Arc around `c` by an explicit signed sweep.
geom::Path arcBySweep(geom::Vec2 c, geom::Vec2 from, double sweep);

/// Straight segment path.
geom::Path linePath(geom::Vec2 from, geom::Vec2 to);

}  // namespace apf::core
