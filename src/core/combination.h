#pragma once

/// \file combination.h
/// The paper's "combination of algorithms" framework (§2), made executable.
///
/// Oblivious robots cannot sequence algorithms explicitly; instead, each
/// sub-algorithm has an ACTIVE SET of configurations, sub-algorithms have
/// pairwise disjoint active sets, and each satisfies TERMINATION AWARENESS
/// (its empty configurations are terminal). The partial order psi_1 ~> psi_2
/// ("psi_1 hands off to psi_2") then makes the combination behave like
/// sequential composition.
///
/// These utilities make those meta-properties empirically checkable: they
/// probe an algorithm on a configuration (as every robot, with throwaway
/// randomness) and report whether the configuration is active (someone
/// would move or flip a coin) or empty. Tests use them to validate the
/// paper's Lemmas 2-4 structure on sampled executions.

#include "config/configuration.h"
#include "sim/algorithm.h"

namespace apf::core {

/// How a configuration relates to an algorithm's active set.
struct ActivityReport {
  /// Some robot is ordered to move.
  bool ordersMove = false;
  /// Some robot consumes randomness (active even without movement: the
  /// election keeps flipping coins in place).
  bool consumesRandomness = false;
  /// Index of a robot ordered to move (first found), if any.
  std::size_t mover = 0;

  bool active() const { return ordersMove || consumesRandomness; }
};

/// Probes `algo` on a static configuration: runs Compute for every robot
/// (identity frames, fresh throwaway random sources) and aggregates. This
/// is the paper's "P is empty for psi" predicate, evaluated exactly.
ActivityReport probeActivity(const sim::Algorithm& algo,
                             const config::Configuration& robots,
                             const config::Configuration& pattern,
                             bool multiplicityDetection = false);

}  // namespace apf::core
