#include "core/combination.h"

namespace apf::core {

ActivityReport probeActivity(const sim::Algorithm& algo,
                             const config::Configuration& robots,
                             const config::Configuration& pattern,
                             bool multiplicityDetection) {
  ActivityReport out;
  for (std::size_t i = 0; i < robots.size(); ++i) {
    sim::Snapshot snap;
    // Identity frame translated so self is at the origin (the model's
    // ego-centered snapshot); algorithms are frame-covariant, so the probe
    // frame choice cannot change activity.
    std::vector<geom::Vec2> local;
    local.reserve(robots.size());
    for (const auto& q : robots.points()) local.push_back(q - robots[i]);
    snap.robots = config::Configuration(std::move(local));
    snap.selfIndex = i;
    snap.pattern = pattern;
    snap.multiplicityDetection = multiplicityDetection;
    sched::RandomSource probe(0x9E3779B9u + i);
    const sim::Action act = algo.compute(snap, probe);
    if (act.isMove() && !out.ordersMove) {
      out.ordersMove = true;
      out.mover = i;
    }
    if (probe.bitsConsumed() > 0) out.consumesRandomness = true;
  }
  return out;
}

}  // namespace apf::core
