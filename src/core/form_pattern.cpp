#include "core/form_pattern.h"

#include "config/similarity.h"
#include "core/analysis.h"
#include "core/dpf.h"
#include "core/moves.h"
#include "core/multiplicity.h"
#include "core/phases.h"
#include "core/rsb.h"
#include "core/scattering.h"

namespace apf::core {
namespace {

using sim::Action;

/// Tolerance for "has the pattern been reached" matching: robots stop
/// rotating within 1e-7 of their target angles (to avoid chasing
/// per-snapshot normalization noise), so shape matching must absorb that.
/// Detection predicates (regular sets etc.) keep the tight 1e-9 tolerance —
/// static robots are bit-stable.
constexpr geom::Tol kMatchTol{1e-6, 1e-6};

/// Lines 1-4 of the main algorithm: when a unique max-view robot r exists
/// and P - {r} already matches F minus a max-view non-holding point f, r
/// walks straight to f's place and nobody else moves.
std::optional<Action> finalMove(Analysis& a) {
  const auto maxP = a.maxViewP();
  if (maxP.size() != 1) return std::nullopt;
  const std::size_t r = maxP.front();
  for (std::size_t f : a.maxViewNonHoldersF()) {
    const auto t = config::findSimilarity(a.F().without(f),
                                          a.P().without(r), true, kMatchTol);
    if (!t) continue;
    if (a.self() != r) return Action::stay(kFinalMove);
    const geom::Vec2 dest = t->apply(a.F()[f]);
    // The similarity fit carries ~1e-10 noise; don't chase it forever.
    if (geom::dist(dest, a.P()[r]) <= 1e-8) return Action::stay(kFinalMove);
    return Action{linePath(a.P()[r], dest), kFinalMove};
  }
  return std::nullopt;
}

}  // namespace

Action FormPatternAlgorithm::compute(const sim::Snapshot& snap,
                                     sched::RandomSource& rng) const {
  // Appendix C: when the pattern's center is a multiplicity point, the
  // robots form F~ (center points relocated to g_F) and finish with a
  // gather move down the ray. The main pipeline then runs against F~.
  std::optional<CenterMultiplicity> cm;
  const sim::Snapshot* working = &snap;
  sim::Snapshot rewritten;
  if (snap.multiplicityDetection) {
    cm = analyzeCenterMultiplicity(snap.pattern);
    if (cm) {
      rewritten = snap;
      rewritten.pattern = cm->fTilde;
      working = &rewritten;
    }
  }

  Analysis a(*working);
  if (!a.ok()) return Action::stay(kStay);

  if (cm) {
    // Terminal against the ORIGINAL pattern; F~ being formed is not
    // terminal — it triggers the gather move instead.
    if (config::similar(a.P(), cm->fOriginal, kMatchTol)) {
      return Action::stay(kTerminal);
    }
    if (auto gather = centerGatherMove(a, *cm)) {
      if (gather->isMove()) {
        gather->path = gather->path.transformed(a.denormalize());
      }
      return *gather;
    }
  } else if (config::similar(a.P(), a.F(), kMatchTol)) {
    // Terminal: the pattern is formed; stay forever.
    return Action::stay(kTerminal);
  }

  Action act = Action::stay(kStay);
  if (auto fin = finalMove(a)) {
    act = *fin;
  } else if (!a.selectedRobot()) {
    // Multiplicity points are unresolvable for the election: co-located
    // robots tie in every view and only randomness can split them. With
    // detection on, dissolve them with the scattering rule first (they can
    // arise mid-run when phase 3 merges robots at a pattern multiplicity
    // point before the rest of the pattern is done). Intended merges are
    // protected: in the DPF regime a selected robot exists and this branch
    // is not taken, and formed/gather configurations returned above.
    if (a.multiplicity() && working->robots.hasMultiplicity()) {
      static const ScatterAlgorithm scatter;
      return scatter.compute(*working, rng);  // already in the local frame
    }
    act = rsbCompute(a, rng);
  } else {
    act = dpfCompute(a);
  }
  if (act.isMove()) {
    act.path = act.path.transformed(a.denormalize());
  }
  return act;
}

}  // namespace apf::core
