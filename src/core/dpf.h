#pragma once

/// \file dpf.h
/// psi_DPF — deterministic pattern formation without chirality (paper §4).
///
/// Precondition: a selected robot r_s exists (psi_RSB's postcondition).
/// Three phases, each entered when every earlier phase's condition holds:
///
///  1. createGlobalCoordinateSystem — establish a unique robot rmax in
///     P - {r_s} that is (i) at minimum radius, (ii) angularly closest to
///     r_s, (iii) no further out than fmax, and (iv) within half of
///     theta_F' of r_s. The polar system Z is centered at c(P), angle 0
///     toward rmax, oriented to maximize r_s's angular coordinate. Both
///     orientations are computable by every robot, so no chirality is
///     needed — this is the paper's central trick.
///  2. Per-circle placement — for each circle C_i of F' (decreasing
///     radius): cleanExterior pulls stray robots onto C_i, then
///     locateEnoughRobots fills it, then removeRobotsInExcess parks extras
///     strictly between C_i and C_i+1 (with a regular-polygon dance on C_1
///     to keep C(P) invariant). A pre-phase clears robots off rmax's ray
///     and fixEnclosingCircle handles the special case of exactly two
///     pattern points on C(F).
///  3. rotateRobotOnCircle — robots rotate along their circles to their
///     rank-matched destinations, never crossing angle 0, halving the
///     distance to any blocker (deadlock-free: the waiting relation is
///     acyclic on a cut circle).
///
/// The final move (r_s walks to f_s) is the main algorithm's line 3-4 and
/// lives in form_pattern.cpp.
///
/// Deviations from the paper's pseudo-code are deliberate and documented in
/// DESIGN.md: staging angles on C_m are clamped to 2*pi - theta_F' (the
/// paper's 2*pi - ang(rs,c,rmax) clamp is too weak to keep rmax the unique
/// angularly-closest robot to r_s), and distances/centers use the SEC
/// center throughout.

#include <optional>

#include "core/analysis.h"
#include "sim/algorithm.h"

namespace apf::core {

/// Computes self's psi_DPF action. Precondition: analysis ok, a selected
/// robot exists, and the final-move condition does not hold.
sim::Action dpfCompute(Analysis& a);

}  // namespace apf::core
