#pragma once

/// \file pattern_info.h
/// Cached analysis of the target pattern F. The pattern is immutable for
/// the lifetime of a run, and every robot receives the same coordinate
/// list, so all F-side computations (views, the removed point f_s, the
/// orientation anchor fmax, theta_F', the circle decomposition) are
/// computed once per distinct pattern and shared. The cache is keyed by the
/// quantized normalized coordinates (thread-local: one simulation per
/// thread).

#include <cstdint>
#include <vector>

#include "config/configuration.h"
#include "config/view.h"

namespace apf::core {

struct PatternInfo {
  /// Normalized pattern (unit SEC at origin).
  config::Configuration f;
  /// True when the pattern analysis is usable (|F| >= 4, non-degenerate).
  bool valid = false;

  double lF = 0.0;  ///< second-closest ring distance from the SEC center
  std::vector<config::View> views;  ///< views around the SEC center
  std::vector<std::size_t> maxViewNonHolders;

  // --- DPF decomposition ---
  std::size_t fs = 0;          ///< removed max-view non-holder
  config::Configuration fPrime;  ///< F - {fs}
  std::size_t fmax = 0;        ///< max-view point of F' (index into fPrime)
  double fmaxRadius = 0.0;
  double fmaxArg = 0.0;
  double thetaFPrime = 0.0;
  double fOrient = 1.0;  ///< -1 when fmax's maximizing view is clockwise

  struct Polar {
    double radius;
    double angle;
  };
  /// F' in the Z-polar embedding (angle 0 = fmax's ray, fOrient applied).
  std::vector<Polar> targets;
  /// Distinct target radii, descending, with per-circle counts.
  std::vector<double> circleRadii;
  std::vector<int> circleCounts;

  /// Cached lookup (computes on first use per distinct pattern).
  static const PatternInfo& get(const config::Configuration& fNormalized,
                                bool multiplicity);
};

}  // namespace apf::core
