#pragma once

/// \file rsb.h
/// psi_RSB — the randomized symmetry-breaking algorithm (paper §3).
///
/// Goal: from any configuration without a selected robot, reach (with
/// probability 1) a configuration with a selected robot, using one random
/// bit per robot per cycle. Structure:
///
///  * P contains a SHIFTED regular set: drive the shifted robot to shift
///    1/8, bring the other set members down to its circle, widen to 1/4,
///    then descend radially until selected (§3.1, selectARobot).
///  * P contains a regular set Q: randomized election among the closest
///    robots of Q (walk toward the center w.p. 1/2, bounded step away
///    otherwise); the robot that gets strictly inside 7/8 of the others'
///    minimum becomes elected and starts the shift. A pre-check
///    (handlePartiallyFormedPattern, appendix A) guards the corner where
///    P \ Q already sits on pattern points.
///  * No regular set (Q^c): all views are distinct; the unique max-view
///    non-SEC-holding robot descends radially until it becomes selected (or
///    until the configuration gains a regular set, which hands control to
///    the previous case).
///
/// Documented deviations from the paper's loose pseudo-code (see DESIGN.md):
/// the election walk and shift creation are restricted to members of Q (the
/// pseudo-code's "for r in P" would let robots outside the regular set try
/// to create shifts they cannot belong to), and the "exists r in
/// [rmax, c(P)) making P regular" test of the Q^c case is realized as a
/// probe at the radius the robot is about to move through, re-evaluated at
/// every activation (oblivious robots re-check anyway).

#include "core/analysis.h"
#include "sched/rng.h"
#include "sim/algorithm.h"

namespace apf::core {

/// Computes self's psi_RSB action. Precondition: no selected robot, not the
/// final-move configuration, analysis ok.
sim::Action rsbCompute(Analysis& a, sched::RandomSource& rng);

/// psi_RSB packaged as a standalone runnable algorithm, terminal once a
/// selected robot exists. Used by the election experiments (T2, T5), where
/// only the symmetry-breaking phase is under measurement.
class RsbOnlyAlgorithm : public sim::Algorithm {
 public:
  sim::Action compute(const sim::Snapshot& snap,
                      sched::RandomSource& rng) const override;
  std::string name() const override { return "psi-rsb"; }
};

}  // namespace apf::core
