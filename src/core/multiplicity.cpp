#include "core/multiplicity.h"

#include <algorithm>
#include <cmath>

#include "config/similarity.h"
#include "config/view.h"
#include "core/moves.h"
#include "core/phases.h"
#include "geom/angle.h"

namespace apf::core {

using config::Configuration;
using geom::Vec2;
using sim::Action;

std::optional<CenterMultiplicity> analyzeCenterMultiplicity(
    const Configuration& pattern, const geom::Tol& tol) {
  const geom::Circle sec = pattern.sec();
  if (sec.radius <= tol.dist) return std::nullopt;  // gathering: unsupported
  const Configuration f =
      pattern.transformed(pattern.normalizingTransform());

  std::vector<std::size_t> centerPts;
  for (std::size_t i = 0; i < f.size(); ++i) {
    if (f[i].norm() <= tol.dist) centerPts.push_back(i);
  }
  if (centerPts.size() < 2) return std::nullopt;

  // g_F: midpoint between the center and the max-view non-center point.
  const auto views = config::allViews(f, Vec2{}, /*withMultiplicity=*/true);
  std::size_t fmaxNc = f.size();
  for (std::size_t i = 0; i < f.size(); ++i) {
    if (f[i].norm() <= tol.dist) continue;
    if (fmaxNc == f.size() ||
        config::compareViews(views[i], views[fmaxNc]) > 0) {
      fmaxNc = i;
    }
  }
  if (fmaxNc == f.size()) return std::nullopt;
  const Vec2 gF = f[fmaxNc] * 0.5;

  CenterMultiplicity out;
  out.count = static_cast<int>(centerPts.size());
  out.fOriginal = f;
  std::vector<Vec2> tilde = f.points();
  for (std::size_t i : centerPts) tilde[i] = gF;
  out.fTilde = Configuration(std::move(tilde));
  return out;
}

std::optional<Action> centerGatherMove(Analysis& a,
                                       const CenterMultiplicity& cm) {
  const Configuration& p = a.P();
  const int m = cm.count;
  if (static_cast<int>(p.size()) <= m) return std::nullopt;

  // The m innermost robots are the candidate movers.
  std::vector<std::size_t> order(p.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return p[x].norm() < p[y].norm();
  });
  std::vector<std::size_t> movers(order.begin(), order.begin() + m);
  std::vector<std::size_t> rest(order.begin() + m, order.end());

  // Movers strictly inside the rest, and all on one ray from the center
  // (robots very close to the center have no meaningful angle and pass).
  const double maxMover = p[movers.back()].norm();
  const double minRest = p[rest.front()].norm();
  if (maxMover >= minRest - 1e-9) return std::nullopt;
  double refAngle = 0.0;
  bool haveRef = false;
  for (std::size_t i : movers) {
    if (p[i].norm() <= 1e-6) continue;
    const double ang = p[i].arg();
    if (!haveRef) {
      refAngle = ang;
      haveRef = true;
    } else if (geom::angDist(ang, refAngle) > 1e-4) {
      return std::nullopt;
    }
  }

  // The rest must already form F minus its center points.
  std::vector<Vec2> fRestPts;
  for (const Vec2& q : cm.fOriginal.points()) {
    if (q.norm() > 1e-9) fRestPts.push_back(q);
  }
  std::vector<Vec2> restPts;
  for (std::size_t i : rest) restPts.push_back(p[i]);
  const auto t = config::findSimilarity(Configuration(fRestPts),
                                        Configuration(restPts), true,
                                        geom::Tol{1e-6, 1e-6});
  if (!t) return std::nullopt;

  const Vec2 target = t->apply(Vec2{});  // the mapped pattern center
  const bool isMover =
      std::find(movers.begin(), movers.end(), a.self()) != movers.end();
  if (!isMover) return Action::stay(kMultiplicity);
  if (geom::dist(p[a.self()], target) <= 1e-8) {
    return Action::stay(kMultiplicity);
  }
  return Action{linePath(p[a.self()], target), kMultiplicity};
}

}  // namespace apf::core
