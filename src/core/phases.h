#pragma once

/// \file phases.h
/// Phase tags attached to every computed action; the metrics layer
/// aggregates activations per phase (experiment T8).

namespace apf::core {

enum PhaseTag : int {
  kStay = 0,           ///< no phase ordered a move
  kTerminal = 1,       ///< pattern formed; algorithm idle
  kFinalMove = 2,      ///< main alg. line 3-4: last robot walks to its point
  kRsbShifted = 3,     ///< psi_RSB: shifted-set handling (shift, descend)
  kRsbElection = 4,    ///< psi_RSB: randomized election walk
  kRsbAsymmetric = 5,  ///< psi_RSB restricted to Q^c: rmax descends
  kRsbPartial = 6,     ///< psi_RSB: handlePartiallyFormedPattern
  kDpfCoord = 7,       ///< psi_DPF phase 1: global coordinate system
  kDpfNullAngle = 8,   ///< psi_DPF: clear robots off rmax's ray
  kDpfFixCircle = 9,   ///< psi_DPF: fixEnclosingCircle (|C(F) cap F'| = 2)
  kDpfClean = 10,      ///< psi_DPF phase 2: cleanExterior
  kDpfLocate = 11,     ///< psi_DPF phase 2: locateEnoughRobots
  kDpfRemove = 12,     ///< psi_DPF phase 2: removeRobotsInExcess
  kDpfRotate = 13,     ///< psi_DPF phase 3: rotate robots on circles
  kMultiplicity = 14,  ///< multiplicity extension: final gather moves
  kBaseline = 15,      ///< baseline algorithms
};

const char* phaseName(int tag);

}  // namespace apf::core
