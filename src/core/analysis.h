#pragma once

/// \file analysis.h
/// Shared per-activation analysis of the observed configuration: the robot
/// normalizes its snapshot (C(P) = C(F) = unit circle at the origin of its
/// local frame), then derives centers, views, regular/shifted sets, and the
/// selected robot. Everything here is deterministic and frame-covariant, so
/// all robots observing the same instant agree on the analysis.

#include <optional>

#include "config/configuration.h"
#include "config/regular.h"
#include "config/shifted.h"
#include "config/view.h"
#include "core/pattern_info.h"
#include "sim/algorithm.h"

namespace apf::core {

using config::Configuration;
using geom::Vec2;

/// Analysis context built once per Compute call.
class Analysis {
 public:
  /// Builds the context from a snapshot. `ok()` is false when the snapshot
  /// is degenerate (all robots coincident, pattern degenerate).
  explicit Analysis(const sim::Snapshot& snap);

  bool ok() const { return ok_; }

  /// Normalized robots / pattern (unit SEC at origin).
  const Configuration& P() const { return p_; }
  const Configuration& F() const { return f_; }
  std::size_t self() const { return self_; }
  bool multiplicity() const { return multiplicity_; }

  /// Transform mapping normalized coordinates back to the robot's local
  /// frame (for building output paths).
  const geom::Similarity& denormalize() const { return denorm_; }

  /// c(P): the shifted/regular set's center when one exists (the paper's
  /// c(P) extended to shifted configurations, which the descent phase of
  /// the election requires), else the SEC center.
  Vec2 centerP();
  /// c(F): F is normalized, but a regular pattern's grid center may differ
  /// from the origin.
  Vec2 centerF();

  /// l_F: distance of the second-closest ring of F to c(F).
  double lF();

  /// reg(P) / shifted set of P (cached).
  const std::optional<config::RegularSetInfo>& regularSet();
  const std::optional<config::ShiftedSetInfo>& shiftedSet();

  /// The selected robot (paper: r in D(l_F / 2), no other robot strictly
  /// inside D(2 |r|)), or nullopt. Unique when it exists.
  std::optional<std::size_t> selectedRobot();

  /// Views of P around centerP (no multiplicity weighting unless the run
  /// has multiplicity detection).
  const std::vector<config::View>& viewsP();
  /// Views of F around its SEC center (cached per pattern). All accessors
  /// below require ok(); degenerate snapshots keep the analysis unusable
  /// (selectedRobot() and lF() degrade gracefully instead).
  const std::vector<config::View>& viewsF() { return patternInfo().views; }

  /// Max-view robots of P. Fast path: a max-view robot is always on the
  /// innermost ring (its first view coordinate is the ring ratio), so only
  /// ring robots' views are compared.
  std::vector<std::size_t> maxViewP();
  const std::vector<std::size_t>& maxViewNonHoldersF() {
    return patternInfo().maxViewNonHolders;
  }

  /// The cached pattern-side analysis (l_F, f_s, fmax, circles, ...).
  const PatternInfo& patternInfo() const { return *pinfo_; }

  /// Radius of robot i from centerP.
  double radius(std::size_t i) { return geom::dist(p_[i], centerP()); }

 private:
  bool ok_ = false;
  Configuration p_;
  Configuration f_;
  std::size_t self_ = 0;
  bool multiplicity_ = false;
  geom::Similarity denorm_;

  std::optional<Vec2> centerP_;
  std::optional<Vec2> centerF_;
  bool regularComputed_ = false;
  std::optional<config::RegularSetInfo> regular_;
  bool shiftedComputed_ = false;
  std::optional<config::ShiftedSetInfo> shifted_;
  bool selectedComputed_ = false;
  std::optional<std::size_t> selected_;
  std::optional<std::vector<config::View>> viewsP_;
  const PatternInfo* pinfo_ = nullptr;
};

}  // namespace apf::core
