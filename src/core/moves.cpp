#include "core/moves.h"

#include <cmath>

#include "geom/angle.h"

namespace apf::core {

using geom::Path;
using geom::Vec2;

Path radialPath(Vec2 c, Vec2 from, double targetRadius) {
  const Vec2 d = from - c;
  const double r = d.norm();
  Path p(from);
  if (r < 1e-15) return p;  // at the center: direction undefined, stay
  if (std::fabs(r - targetRadius) < 1e-15) return p;
  p.lineTo(c + d * (targetRadius / r));
  return p;
}

Path arcToAngle(Vec2 c, Vec2 from, double targetAngle) {
  const Vec2 d = from - c;
  Path p(from);
  if (d.norm() < 1e-15) return p;
  const double sweep = geom::normPi(targetAngle - d.arg());
  if (std::fabs(sweep) < 1e-15) return p;
  p.arcAround(c, sweep);
  return p;
}

Path arcBySweep(Vec2 c, Vec2 from, double sweep) {
  Path p(from);
  if ((from - c).norm() < 1e-15 || std::fabs(sweep) < 1e-15) return p;
  p.arcAround(c, sweep);
  return p;
}

Path linePath(Vec2 from, Vec2 to) {
  Path p(from);
  if (geom::dist(from, to) < 1e-15) return p;
  p.lineTo(to);
  return p;
}

}  // namespace apf::core
