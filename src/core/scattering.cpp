#include "core/scattering.h"

#include <cmath>
#include <limits>

#include "config/similarity.h"
#include "core/phases.h"
#include "geom/angle.h"

namespace apf::core {

using config::Configuration;
using geom::Vec2;
using sim::Action;

Action ScatterAlgorithm::compute(const sim::Snapshot& snap,
                                 sched::RandomSource& rng) const {
  // Without multiplicity detection a robot cannot know it is co-located;
  // the scattering task is defined with detection (paper [4]).
  if (!snap.multiplicityDetection) return Action::stay(kStay);

  const Configuration& p = snap.robots;
  const Vec2 self = p[snap.selfIndex];  // the local origin
  int coLocated = 0;
  for (const Vec2& q : p.points()) {
    if (geom::nearlyEqual(q, self)) ++coLocated;
  }
  if (coLocated < 2) return Action::stay(kStay);  // not on a multiplicity pt

  // One random bit: stayers and movers split the group. Co-located robots
  // see identical snapshots, so all movers compute the same destination.
  if (!rng.bit()) return Action::stay(kBaseline);

  // Step: a quarter of the distance to the nearest other occupied point
  // (no new collision possible); direction: away from the centroid of the
  // other distinct points (frame-covariant, identical for the group).
  double nearest = std::numeric_limits<double>::infinity();
  Vec2 centroid{};
  int others = 0;
  for (const auto& g : p.grouped()) {
    if (geom::nearlyEqual(g.pos, self)) continue;
    nearest = std::min(nearest, geom::dist(g.pos, self));
    centroid += g.pos * static_cast<double>(g.count);
    others += g.count;
  }
  Vec2 dir;
  double step;
  if (others == 0) {
    // Every robot is at one point (a gathered start): there is no
    // frame-covariant reference direction. Fall back to the robot's own
    // frame axis — adversarially identical frames could stall this corner;
    // the full machinery of [4] is out of scope (documented).
    dir = {1.0, 0.0};
    step = 1.0;
  } else {
    const Vec2 away = self - centroid / static_cast<double>(others);
    if (away.norm() < 1e-12) {
      // Self sits exactly on the centroid: head away from the farthest
      // distinct point instead (still frame-covariant and group-shared).
      Vec2 far{};
      double best = -1.0;
      for (const auto& g : p.grouped()) {
        const double d = geom::dist(g.pos, self);
        if (d > best) {
          best = d;
          far = g.pos;
        }
      }
      dir = (self - far).normalized();
    } else {
      dir = away.normalized();
    }
    step = nearest / 4.0;
  }
  geom::Path path(self);
  path.lineTo(self + dir * step);
  return Action{path, kBaseline};
}

Action ScatterThenForm::compute(const sim::Snapshot& snap,
                                sched::RandomSource& rng) const {
  // Hand-off rule (safe in SSYNC where cycles are atomic): scatter exactly
  // while a multiplicity point exists, form otherwise. The active sets are
  // disjoint by construction.
  if (snap.robots.hasMultiplicity()) return scatter_.compute(snap, rng);
  return form_.compute(snap, rng);
}

}  // namespace apf::core
