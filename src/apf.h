#pragma once

/// \file apf.h
/// Umbrella header for the APF simulator's public surface. Including this
/// single header gives a consumer the whole stack a tool binary needs:
/// configurations and pattern generators, the event-driven engine, the
/// campaign/supervisor/shard execution layers, fault injection, adaptive
/// estimation, and the observability + environment plumbing.
///
/// The grouping below mirrors the library layering (src/*/CMakeLists.txt):
/// each block corresponds to one static library, listed roughly
/// bottom-up. Tools that only need a slice should keep including the
/// specific headers — the umbrella is for consumers of the whole API
/// (tests of the public surface, downstream experiments) and doubles as
/// the authoritative index of what is public. docs/API.md documents the
/// wire schemas these components speak.

// geometry kernel (apf_geom)
#include "geom/angle.h"
#include "geom/circle.h"
#include "geom/intersect.h"
#include "geom/path.h"
#include "geom/sec.h"
#include "geom/tolerance.h"
#include "geom/transform.h"
#include "geom/vec2.h"
#include "geom/weber.h"

// configurations, symmetry analysis, generators (apf_config)
#include "config/canonical.h"
#include "config/classify.h"
#include "config/configuration.h"
#include "config/generator.h"
#include "config/rays.h"
#include "config/regular.h"
#include "config/shifted.h"
#include "config/similarity.h"
#include "config/symmetry.h"
#include "config/view.h"

// schedulers and seeded randomness (apf_sched)
#include "sched/rng.h"
#include "sched/scheduler.h"
#include "sched/seed.h"

// fault injection plans (apf_fault)
#include "fault/fault.h"

// the paper's algorithm and baselines (apf_core, apf_baseline)
#include "baseline/det_election.h"
#include "baseline/det_formation.h"
#include "baseline/yy.h"
#include "core/analysis.h"
#include "core/combination.h"
#include "core/dpf.h"
#include "core/form_pattern.h"
#include "core/moves.h"
#include "core/multiplicity.h"
#include "core/pattern_info.h"
#include "core/phases.h"
#include "core/rsb.h"
#include "core/scattering.h"

// simulation engine and execution layers (apf_sim)
#include "sim/algorithm.h"
#include "sim/campaign.h"
#include "sim/engine.h"
#include "sim/fuzzer.h"
#include "sim/metrics.h"
#include "sim/shard.h"
#include "sim/shrink.h"
#include "sim/supervisor.h"
#include "sim/trace.h"

// adaptive Monte Carlo estimation (apf_est)
#include "est/ab.h"
#include "est/adaptive.h"
#include "est/estimators.h"
#include "est/stopping.h"

// observability: JSON, manifests, recorders, spans, allocation stats
// (apf_obs)
#include "obs/alloc.h"
#include "obs/event.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/recorder.h"
#include "obs/span.h"
#include "obs/stats.h"

// file I/O: pattern files, CSV, SVG/animation export (apf_io)
#include "io/animation.h"
#include "io/csv.h"
#include "io/patterns.h"
#include "io/serialize.h"
#include "io/svg.h"

// consolidated APF_* environment surface (apf_cli)
#include "cli/env.h"
