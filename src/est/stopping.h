#pragma once

/// \file stopping.h
/// Sequential stopping rules for adaptive Monte Carlo campaigns
/// (docs/STATISTICS.md). A fixed-size campaign either wastes samples (the
/// estimate converged long ago) or under-samples (the error bar is still
/// too wide); a stopping rule spends exactly enough.
///
/// Peeking discipline: the rule is evaluated ONLY at batch boundaries, on
/// the merged summaries of every completed batch. Evaluating at a coarse,
/// pre-declared grid (rather than after every sample) keeps the familiar
/// optional-stopping inflation of error rates small and — more importantly
/// here — makes the stopping point a pure function of
/// (base seed, options), so an adaptive run is exactly reproducible and
/// scheduler-independent (see adaptive.h's determinism contract).

#include <cstdint>
#include <optional>

#include "est/estimators.h"

namespace apf::est {

/// Why an adaptive campaign stopped.
enum class StopReason : std::uint8_t {
  MaxSamples,  ///< sample budget exhausted without convergence
  HalfWidth,   ///< success-rate CI reached the target half-width
  Futility,    ///< success-rate CI upper bound fell below the floor
};

/// Stable wire name ("max_samples" / "half_width" / "futility").
const char* stopReasonName(StopReason reason);

struct StoppingOptions {
  /// Samples scheduled per batch; the stopping rule runs after each batch.
  std::uint64_t batchSize = 16;
  /// No stopping decision (other than the hard max) before this many
  /// samples: tiny-n intervals are erratic and futility verdicts from a
  /// handful of runs would be noise.
  std::uint64_t minSamples = 32;
  /// Hard sample budget. The driver never schedules past it (the final
  /// batch is truncated to land exactly on it).
  std::uint64_t maxSamples = 512;
  /// Confidence level for every interval the rule consults.
  double confidence = 0.95;
  /// Stop when the Wilson interval's half-width on the success rate drops
  /// to this value or below. 0 disables the criterion.
  double targetHalfWidth = 0.05;
  /// Futility cutoff: stop when the Wilson UPPER bound on the success rate
  /// falls below this floor — the hypothesis "this variant mostly works"
  /// is already dead, so further samples are wasted. 0 disables.
  double futilityFloor = 0.0;

  /// Throws std::invalid_argument on nonsensical settings (batchSize == 0,
  /// maxSamples == 0, min > max, confidence outside (0, 1), ...).
  void validate() const;
};

/// Evaluates the rule on the merged success summary after a batch
/// boundary at `samples` completed samples. Returns the stop reason, or
/// nullopt to continue. Pure function — the adaptive driver's determinism
/// rests on this being a function of its arguments alone.
std::optional<StopReason> evaluateStop(const StoppingOptions& opts,
                                       const BernoulliSummary& success,
                                       std::uint64_t samples);

}  // namespace apf::est
