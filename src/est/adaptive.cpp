#include "est/adaptive.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "sched/seed.h"
#include "sim/campaign.h"

namespace apf::est {

std::string Sample::toJson() const {
  obs::JsonObjectWriter w;
  w.field("success", success);
  w.field("cycles", cycles);
  w.field("events", events);
  w.field("bits", bits);
  return w.str();
}

Sample Sample::fromJson(std::string_view text) {
  const auto obj = obs::parseFlatObject(text);
  if (!obj) {
    throw std::runtime_error("est: malformed Sample JSON: " +
                             std::string(text));
  }
  auto field = [&](const char* key) -> const obs::JsonValue& {
    const auto it = obj->find(key);
    if (it == obj->end()) {
      throw std::runtime_error(std::string("est: Sample missing field '") +
                               key + "'");
    }
    return it->second;
  };
  Sample s;
  s.success = field("success").asBool();
  s.cycles = field("cycles").asNumber();
  s.events = field("events").asNumber();
  s.bits = static_cast<std::uint64_t>(field("bits").asNumber());
  return s;
}

namespace {

/// Serializes one summary + its interval fields as a nested JSON object.
std::string momentsJson(const MomentSummary& s, double confidence) {
  const Interval eb = empiricalBernstein(s, confidence);
  obs::JsonObjectWriter w;
  w.field("count", s.count);
  w.field("mean", s.mean);
  w.field("m2", s.m2);
  w.field("min", s.min);
  w.field("max", s.max);
  w.field("variance", s.variance());
  w.field("eb_lo", eb.lo);
  w.field("eb_hi", eb.hi);
  return w.str();
}

}  // namespace

std::string ArmEstimate::toJson() const {
  const Interval w = wilson(success, confidence);
  const Interval cp = clopperPearson(success, confidence);
  obs::JsonObjectWriter top;
  top.field("label", label);
  top.field("base_seed", baseSeed);
  top.field("samples", samples);
  top.field("batches", batches);
  top.field("max_samples", maxSamples);
  top.field("confidence", confidence);
  top.field("stop_reason", stopReasonName(stopReason));
  top.field("converged", converged);
  {
    obs::JsonObjectWriter sw;
    sw.field("trials", success.trials);
    sw.field("successes", success.successes);
    sw.field("rate", success.rate());
    sw.field("wilson_lo", w.lo);
    sw.field("wilson_hi", w.hi);
    sw.field("cp_lo", cp.lo);
    sw.field("cp_hi", cp.hi);
    top.rawField("success", sw.str());
  }
  top.rawField("cycles", momentsJson(cycles, confidence));
  top.rawField("events", momentsJson(events, confidence));
  top.rawField("bits", momentsJson(bits, confidence));
  return top.str();
}

void appendManifest(const ArmEstimate& arm, obs::Manifest& manifest,
                    const std::string& prefix) {
  const Interval w = wilson(arm.success, arm.confidence);
  const Interval ebBits = empiricalBernstein(arm.bits, arm.confidence);
  manifest.set(prefix + "label", arm.label);
  manifest.set(prefix + "base_seed", arm.baseSeed);
  manifest.set(prefix + "samples", arm.samples);
  manifest.set(prefix + "batches", arm.batches);
  manifest.set(prefix + "max_samples", arm.maxSamples);
  manifest.set(prefix + "confidence", arm.confidence);
  manifest.set(prefix + "stop_reason", stopReasonName(arm.stopReason));
  manifest.set(prefix + "converged", arm.converged);
  manifest.set(prefix + "success_rate", arm.success.rate());
  manifest.set(prefix + "wilson_lo", w.lo);
  manifest.set(prefix + "wilson_hi", w.hi);
  manifest.set(prefix + "cycles_mean", arm.cycles.mean);
  manifest.set(prefix + "bits_mean", arm.bits.mean);
  manifest.set(prefix + "bits_eb_lo", ebBits.lo);
  manifest.set(prefix + "bits_eb_hi", ebBits.hi);
}

ArmEstimate runAdaptive(const std::string& label, const Trial& trial,
                        const AdaptiveOptions& opts) {
  opts.stop.validate();
  if (!trial) throw std::invalid_argument("est: runAdaptive needs a trial");

  ArmEstimate arm;
  arm.label = label;
  arm.baseSeed = opts.baseSeed;
  arm.maxSamples = opts.stop.maxSamples;
  arm.confidence = opts.stop.confidence;

  // Deterministic event stream: indexes count from 0 on the calling
  // thread, wallNanos stays 0 (an adaptive run's telemetry must not embed
  // clocks — the CI smoke byte-compares whole output trees).
  std::uint64_t eventIndex = 0;
  auto emit = [&](obs::EventKind kind, std::uint64_t batchIndex,
                  std::uint64_t firstSample, std::uint64_t amount) {
    if (opts.recorder == nullptr) return;
    obs::Event ev;
    ev.kind = kind;
    ev.index = eventIndex++;
    ev.robot = static_cast<std::int64_t>(batchIndex);
    ev.schedEvent = firstSample;
    ev.bitsUsed = amount;
    opts.recorder->record(ev);
  };

  std::uint64_t scheduled = 0;  // == global index of the next batch start
  for (;;) {
    const std::uint64_t batchSize =
        std::min(opts.stop.batchSize, opts.stop.maxSamples - scheduled);
    emit(obs::EventKind::BatchScheduled, arm.batches, scheduled, batchSize);

    // Per-batch summaries, fed in strict global-index order.
    BernoulliSummary bSuccess;
    MomentSummary bCycles, bEvents, bBits;
    auto feed = [&](const Sample& s) {
      bSuccess.add(s.success);
      bCycles.add(s.cycles);
      bEvents.add(s.events);
      bBits.add(static_cast<double>(s.bits));
    };

    if (opts.journal != nullptr) {
      // Journaled path: run only the samples the journal does not already
      // hold, checkpoint each under its GLOBAL sample index the moment it
      // merges, then feed every batch sample from its decoded payload —
      // fresh and resumed campaigns share one canonical summary path.
      std::vector<std::uint64_t> todo;
      todo.reserve(batchSize);
      for (std::uint64_t i = scheduled; i < scheduled + batchSize; ++i) {
        if (!opts.journal->has(static_cast<std::size_t>(i))) {
          todo.push_back(i);
        }
      }
      sim::runCampaign(
          todo,
          [&](std::uint64_t gi, std::size_t) {
            return trial(sched::sampleSeed(opts.baseSeed, gi), gi).toJson();
          },
          [&](std::size_t k, std::string&& payload) {
            opts.journal->append(static_cast<std::size_t>(todo[k]), payload);
          },
          opts.jobs);
      for (std::uint64_t i = scheduled; i < scheduled + batchSize; ++i) {
        const std::string* payload =
            opts.journal->payload(static_cast<std::size_t>(i));
        if (payload == nullptr) {
          throw std::runtime_error(
              "est: journal lost sample " + std::to_string(i) +
              " it just acknowledged");
        }
        feed(Sample::fromJson(*payload));
      }
    } else {
      std::vector<std::uint64_t> indices(batchSize);
      for (std::uint64_t k = 0; k < batchSize; ++k) {
        indices[k] = scheduled + k;
      }
      sim::runCampaign(
          indices,
          [&](std::uint64_t gi, std::size_t) {
            return trial(sched::sampleSeed(opts.baseSeed, gi), gi);
          },
          [&](std::size_t, Sample&& s) { feed(s); },
          opts.jobs);
    }

    arm.success.merge(bSuccess);
    arm.cycles.merge(bCycles);
    arm.events.merge(bEvents);
    arm.bits.merge(bBits);
    arm.batches += 1;
    arm.samples += batchSize;
    scheduled += batchSize;

    const auto stop = evaluateStop(opts.stop, arm.success, arm.samples);
    if (stop) {
      arm.stopReason = *stop;
      arm.converged = *stop != StopReason::MaxSamples;
      if (arm.converged) {
        emit(obs::EventKind::EstimateConverged, arm.batches, arm.samples,
             static_cast<std::uint64_t>(arm.stopReason));
      }
      return arm;
    }
  }
}

}  // namespace apf::est
