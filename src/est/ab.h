#pragma once

/// \file ab.h
/// Two-sample A/B comparison gates (docs/STATISTICS.md). Given two
/// estimation arms — in this repository, ψ-RSB versus the
/// Yamauchi–Yamashita baseline under one scheduler — the gates answer the
/// only question a paper-reproduction campaign actually asks: at the
/// requested confidence, is arm A better, worse, or indistinguishable?
///
///  * Success rates are compared with the Newcombe score interval on
///    pA − pB (the Wilson-bound hybrid, Newcombe 1998 method 10): it
///    inherits Wilson's good small-n coverage and never produces an
///    interval outside [-1, 1].
///  * Means (random bits, cycles, scheduler events) are compared by
///    interval separation: each arm gets an empirical-Bernstein bound and
///    the verdict is decided only when the bounds do not overlap. This is
///    conservative — a deliberate property for a gate that CI will quote.
///
/// Everything here is a pure function of the two summaries, so an A/B
/// report is byte-identical whenever the two arms are (adaptive.h).

#include <string>

#include "est/adaptive.h"
#include "est/estimators.h"

namespace apf::est {

/// Three-way gate verdict.
enum class Verdict : std::uint8_t {
  Indistinguishable,  ///< interval straddles zero / bounds overlap
  AHigher,            ///< arm A's quantity is higher at this confidence
  BHigher,            ///< arm B's quantity is higher at this confidence
};

/// Stable wire name ("indistinguishable" / "a_higher" / "b_higher").
const char* verdictName(Verdict verdict);

/// Success-rate comparison: Newcombe score interval on pA − pB.
struct RateComparison {
  double diff = 0.0;  ///< point estimate pA − pB
  Interval ci;        ///< Newcombe interval on the difference
  Verdict verdict = Verdict::Indistinguishable;
};

RateComparison compareRates(const BernoulliSummary& a,
                            const BernoulliSummary& b, double confidence);

/// Mean comparison by empirical-Bernstein interval separation.
struct MeanComparison {
  double diff = 0.0;  ///< point estimate meanA − meanB
  Interval a;         ///< EB bound on arm A's mean
  Interval b;         ///< EB bound on arm B's mean
  Verdict verdict = Verdict::Indistinguishable;
};

MeanComparison compareMeans(const MomentSummary& a, const MomentSummary& b,
                            double confidence);

/// Full A/B report over two estimation arms.
struct AbReport {
  double confidence = 0.95;
  RateComparison success;
  MeanComparison cycles;
  MeanComparison events;
  MeanComparison bits;

  /// Nested JSON fragment (no wall-clock fields; byte-stable).
  std::string toJson() const;
};

AbReport compareArms(const ArmEstimate& a, const ArmEstimate& b);

}  // namespace apf::est
