#pragma once

/// \file estimators.h
/// Streaming estimators for Monte Carlo campaigns (docs/STATISTICS.md).
/// The paper's headline claims are statistical — probability-1 formation,
/// expected O(n) asynchronous rounds, one random bit per robot per cycle —
/// so raw success counts without error bars say nothing about whether a
/// campaign actually supports them. This file provides the two estimator
/// families every harness needs:
///
///  * BernoulliSummary — success/trial counting with Wilson (score) and
///    Clopper–Pearson (exact) confidence intervals for the underlying
///    success probability;
///  * MomentSummary — Welford streaming mean/variance (numerically stable,
///    single pass) with empirical-Bernstein confidence bounds for bounded
///    quantities such as round counts and `bitsConsumed`.
///
/// Both summaries are MERGEABLE: `merge(other)` folds another summary in
/// as if its samples had been appended, so per-batch summaries computed on
/// campaign workers can be combined at batch boundaries. Determinism
/// contract: merging the same summaries in the same order produces
/// bit-identical results on every machine (pure IEEE double arithmetic, no
/// platform-dependent library calls on the merge path), which is what lets
/// an adaptive campaign's stopping decision replay exactly (adaptive.h).
///
/// Serialization: summaries round-trip through the flat-JSON telemetry
/// dialect (obs/json.h) as fragments of the `apf.estimate.v1` report.
/// Doubles are written in shortest round-trip form and counters as exact
/// integers, so decode(encode(s)) is the identity — the same fixed-point
/// property the PR 5 journal codec relies on.

#include <cstdint>
#include <string>

#include "obs/json.h"

namespace apf::est {

/// A two-sided confidence interval on [lo, hi].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  double halfWidth() const { return (hi - lo) / 2.0; }
  bool contains(double x) const { return lo <= x && x <= hi; }
  /// True when the intervals share at least one point. Two DISJOINT
  /// intervals are the bound-based separation evidence the A/B gate uses.
  bool overlaps(const Interval& other) const {
    return lo <= other.hi && other.lo <= hi;
  }
};

/// Standard-normal quantile z with P(Z <= z) = p, for p in (0, 1).
/// Deterministic rational approximation (Acklam) refined by one Halley
/// step; |error| < 1e-12 over the whole domain, identical on every
/// platform. Throws std::invalid_argument outside (0, 1).
double normalQuantile(double p);

/// Regularized incomplete beta function I_x(a, b) via the standard
/// continued-fraction expansion (deterministic, ~1e-14 accuracy). Exposed
/// for tests; Clopper–Pearson inverts it by bisection.
double regularizedIncompleteBeta(double a, double b, double x);

/// Streaming Bernoulli estimator: trials and successes.
struct BernoulliSummary {
  std::uint64_t trials = 0;
  std::uint64_t successes = 0;

  void add(bool success) {
    trials += 1;
    successes += success ? 1 : 0;
  }
  /// Folds `other` in as if its trials had been appended here. Exact
  /// (integer arithmetic), hence order-independent.
  void merge(const BernoulliSummary& other) {
    trials += other.trials;
    successes += other.successes;
  }
  double rate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(successes) /
                             static_cast<double>(trials);
  }

  /// Serializes as `{"trials":..,"successes":..}`.
  std::string toJson() const;
  /// Parses toJson() output; throws std::runtime_error on malformed input.
  static BernoulliSummary fromJson(std::string_view text);
};

/// Wilson score interval for a Bernoulli success probability. Never
/// degenerates at 0/n or n/n (unlike the Wald interval) and has close to
/// nominal coverage for small n. `confidence` in (0, 1), e.g. 0.95.
/// trials == 0 returns the vacuous [0, 1].
Interval wilson(const BernoulliSummary& s, double confidence);

/// Clopper–Pearson ("exact") interval: inverts Binomial tail tests via the
/// Beta quantile, guaranteeing coverage >= confidence at the price of
/// conservatism. trials == 0 returns [0, 1].
Interval clopperPearson(const BernoulliSummary& s, double confidence);

/// Welford/Chan streaming moments for a real-valued sample: count, mean,
/// centered second moment (m2), and observed range. `add` is the classic
/// Welford update; `merge` is Chan's pairwise combination. Both are pure
/// double arithmetic — merging the same summaries in the same order is
/// bit-reproducible everywhere.
struct MomentSummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;  ///< sum of squared deviations from the running mean
  double min = 0.0; ///< meaningful iff count > 0
  double max = 0.0; ///< meaningful iff count > 0

  void add(double x);
  void merge(const MomentSummary& other);

  /// Unbiased sample variance (0 for count < 2).
  double variance() const {
    return count < 2 ? 0.0 : m2 / static_cast<double>(count - 1);
  }

  /// Serializes as `{"count":..,"mean":..,"m2":..,"min":..,"max":..}`.
  std::string toJson() const;
  static MomentSummary fromJson(std::string_view text);
};

/// Empirical-Bernstein confidence bound (Maurer & Pontil 2009) for the
/// mean of a variable bounded in an interval of width `range`: with
/// probability >= confidence,
///   |mean - mu| <= sqrt(2 * Var * ln(3/delta) / n) + 3 * range * ln(3/delta) / n
/// with delta = 1 - confidence. Variance-adaptive: far tighter than
/// Hoeffding when the observed variance is small relative to range^2 —
/// which is exactly the situation for `bitsConsumed` of the paper's
/// algorithm (most runs draw a handful of bits). `range` <= 0 uses the
/// observed max - min (a common, slightly anti-conservative practice;
/// callers with a true a-priori bound should pass it). count == 0 returns
/// the degenerate [0, 0].
Interval empiricalBernstein(const MomentSummary& s, double confidence,
                            double range = 0.0);

}  // namespace apf::est
