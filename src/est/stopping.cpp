#include "est/stopping.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace apf::est {

const char* stopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::MaxSamples:
      return "max_samples";
    case StopReason::HalfWidth:
      return "half_width";
    case StopReason::Futility:
      return "futility";
  }
  return "?";
}

void StoppingOptions::validate() const {
  auto fail = [](const std::string& msg) {
    throw std::invalid_argument("est: " + msg);
  };
  if (batchSize == 0) fail("stopping.batch_size must be >= 1");
  if (maxSamples == 0) fail("stopping.max_samples must be >= 1");
  if (minSamples > maxSamples) {
    fail("stopping.min_samples (" + std::to_string(minSamples) +
         ") exceeds max_samples (" + std::to_string(maxSamples) + ")");
  }
  if (!(confidence > 0.0 && confidence < 1.0)) {
    fail("stopping.confidence must lie in (0, 1)");
  }
  if (!(targetHalfWidth >= 0.0) || !std::isfinite(targetHalfWidth)) {
    fail("stopping.target_half_width must be finite and >= 0");
  }
  if (!(futilityFloor >= 0.0 && futilityFloor <= 1.0)) {
    fail("stopping.futility_floor must lie in [0, 1]");
  }
}

std::optional<StopReason> evaluateStop(const StoppingOptions& opts,
                                       const BernoulliSummary& success,
                                       std::uint64_t samples) {
  if (samples >= opts.maxSamples) return StopReason::MaxSamples;
  if (samples < opts.minSamples) return std::nullopt;
  const Interval ci = wilson(success, opts.confidence);
  // Futility first: an estimate can be both precise and hopeless, and
  // "this arm is dead" is the more actionable verdict.
  if (opts.futilityFloor > 0.0 && ci.hi < opts.futilityFloor) {
    return StopReason::Futility;
  }
  if (opts.targetHalfWidth > 0.0 && ci.halfWidth() <= opts.targetHalfWidth) {
    return StopReason::HalfWidth;
  }
  return std::nullopt;
}

}  // namespace apf::est
