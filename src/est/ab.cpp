#include "est/ab.h"

#include <algorithm>
#include <cmath>

#include "obs/json.h"

namespace apf::est {

const char* verdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::Indistinguishable:
      return "indistinguishable";
    case Verdict::AHigher:
      return "a_higher";
    case Verdict::BHigher:
      return "b_higher";
  }
  return "?";
}

RateComparison compareRates(const BernoulliSummary& a,
                            const BernoulliSummary& b, double confidence) {
  RateComparison cmp;
  const double pA = a.rate();
  const double pB = b.rate();
  cmp.diff = pA - pB;
  const Interval wA = wilson(a, confidence);
  const Interval wB = wilson(b, confidence);
  // Newcombe (1998) method 10: square-and-add the per-arm Wilson margins.
  const double loMargin = std::sqrt((pA - wA.lo) * (pA - wA.lo) +
                                    (wB.hi - pB) * (wB.hi - pB));
  const double hiMargin = std::sqrt((wA.hi - pA) * (wA.hi - pA) +
                                    (pB - wB.lo) * (pB - wB.lo));
  cmp.ci = {std::max(-1.0, cmp.diff - loMargin),
            std::min(1.0, cmp.diff + hiMargin)};
  if (cmp.ci.lo > 0.0) {
    cmp.verdict = Verdict::AHigher;
  } else if (cmp.ci.hi < 0.0) {
    cmp.verdict = Verdict::BHigher;
  }
  return cmp;
}

MeanComparison compareMeans(const MomentSummary& a, const MomentSummary& b,
                            double confidence) {
  MeanComparison cmp;
  cmp.diff = a.mean - b.mean;
  cmp.a = empiricalBernstein(a, confidence);
  cmp.b = empiricalBernstein(b, confidence);
  if (a.count == 0 || b.count == 0) return cmp;
  if (!cmp.a.overlaps(cmp.b)) {
    cmp.verdict = cmp.a.lo > cmp.b.hi ? Verdict::AHigher : Verdict::BHigher;
  }
  return cmp;
}

namespace {

std::string rateJson(const RateComparison& cmp) {
  obs::JsonObjectWriter w;
  w.field("diff", cmp.diff);
  w.field("ci_lo", cmp.ci.lo);
  w.field("ci_hi", cmp.ci.hi);
  w.field("verdict", verdictName(cmp.verdict));
  return w.str();
}

std::string meanJson(const MeanComparison& cmp) {
  obs::JsonObjectWriter w;
  w.field("diff", cmp.diff);
  w.field("a_lo", cmp.a.lo);
  w.field("a_hi", cmp.a.hi);
  w.field("b_lo", cmp.b.lo);
  w.field("b_hi", cmp.b.hi);
  w.field("verdict", verdictName(cmp.verdict));
  return w.str();
}

}  // namespace

std::string AbReport::toJson() const {
  obs::JsonObjectWriter w;
  w.field("confidence", confidence);
  w.rawField("success", rateJson(success));
  w.rawField("cycles", meanJson(cycles));
  w.rawField("events", meanJson(events));
  w.rawField("bits", meanJson(bits));
  return w.str();
}

AbReport compareArms(const ArmEstimate& a, const ArmEstimate& b) {
  AbReport report;
  report.confidence = a.confidence;
  report.success = compareRates(a.success, b.success, report.confidence);
  report.cycles = compareMeans(a.cycles, b.cycles, report.confidence);
  report.events = compareMeans(a.events, b.events, report.confidence);
  report.bits = compareMeans(a.bits, b.bits, report.confidence);
  return report;
}

}  // namespace apf::est
