#pragma once

/// \file adaptive.h
/// Adaptive Monte Carlo campaign driver (docs/STATISTICS.md): layered on
/// sim::runCampaign, it schedules deterministic BATCHES of seeded trials,
/// folds each batch's per-sample results into mergeable streaming
/// summaries (estimators.h), and consults a sequential stopping rule
/// (stopping.h) at every batch boundary — so a campaign spends exactly as
/// many samples as the requested precision needs, instead of a guessed
/// fixed count.
///
/// Determinism contract (tests/est_test.cpp, CI estimate-smoke):
///  * Trial seeds are a pure function of (base seed, global sample index)
///    via sched::sampleSeed — the single audited splitmix64 derivation
///    path shared with the supervisor's retry salts (sched/seed.h).
///  * Batch b always covers global sample indices
///    [b*batchSize, min((b+1)*batchSize, maxSamples)). Scheduling is
///    decided BEFORE the batch runs; nothing mid-batch can alter it.
///  * Within a batch, samples feed the summaries in strict global-index
///    order (sim::runCampaign's merge-order guarantee), and batch
///    summaries merge into the arm total in batch order. The stopping
///    decision therefore sees bit-identical state at every boundary
///    REGARDLESS of APF_JOBS — the stopping batch, the final intervals,
///    and the serialized report are byte-identical for any thread count.
///  * The report contains no wall-clock fields.
///  * With a sim::CampaignJournal attached, every completed sample is
///    appended + fsync'd under its global index, and summaries are always
///    fed from decoded journal payloads — so a campaign killed mid-batch
///    and resumed converges to the byte-identical report (the PR 5
///    decode(encode) fixed-point argument).
///
/// The driver is algorithm-agnostic: a Trial callback maps
/// (seed, sample index) to a Sample {success, cycles, events, bits}. The
/// apf_estimate CLI and bench_estimate wire it to sim::Engine runs;
/// tests use synthetic trials.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "est/estimators.h"
#include "est/stopping.h"
#include "obs/manifest.h"
#include "obs/recorder.h"
#include "sim/supervisor.h"

namespace apf::est {

/// Per-trial observation: the quantities the paper's claims are stated in.
struct Sample {
  bool success = false;
  double cycles = 0.0;  ///< completed LCM cycles, summed over robots
  double events = 0.0;  ///< scheduler events (the ASYNC round currency)
  std::uint64_t bits = 0;  ///< algorithm random bits (sched/rng.h ledger)

  /// Flat-JSON codec. decode(encode(s)) is exact (shortest round-trip
  /// doubles, integer bits), which is what lets journaled and fresh
  /// campaigns share one canonical summary path.
  std::string toJson() const;
  static Sample fromJson(std::string_view text);
};

/// Maps (seed, global sample index) to one observation. Must be a pure
/// function of its arguments plus thread-confined state (it runs on
/// campaign worker threads; see sim/campaign.h's worker contract).
using Trial = std::function<Sample(std::uint64_t seed, std::uint64_t index)>;

struct AdaptiveOptions {
  StoppingOptions stop;
  /// Root of the per-sample seed family (sched::sampleSeed(baseSeed, i)).
  std::uint64_t baseSeed = 1;
  /// Campaign worker threads: 0 = APF_JOBS / hardware (sim::campaignJobs),
  /// 1 = serial. Any value produces the byte-identical report.
  int jobs = 0;
  /// Sink for batch_scheduled / estimate_converged events, emitted on the
  /// calling thread only. Events carry no wall-clock (wallNanos = 0) so
  /// instrumented adaptive runs stay deterministic.
  obs::Recorder* recorder = nullptr;
  /// Crash-safe checkpoint (sim/supervisor.h). Completed samples found in
  /// the journal are not re-run; fresh ones are appended + fsync'd under
  /// their global sample index before they are counted. Not owned.
  sim::CampaignJournal* journal = nullptr;
};

/// Final state of one estimation arm.
struct ArmEstimate {
  std::string label;
  std::uint64_t baseSeed = 0;
  std::uint64_t samples = 0;  ///< trials actually consumed
  std::uint64_t batches = 0;  ///< batches scheduled (== batch_scheduled events)
  std::uint64_t maxSamples = 0;  ///< the budget the run was allowed
  double confidence = 0.95;
  StopReason stopReason = StopReason::MaxSamples;
  /// True when a precision/futility rule fired BEFORE the max budget —
  /// i.e. adaptivity actually saved samples.
  bool converged = false;

  BernoulliSummary success;
  MomentSummary cycles;
  MomentSummary events;
  MomentSummary bits;

  /// Nested JSON fragment: summaries plus Wilson/Clopper–Pearson bounds on
  /// the success rate and empirical-Bernstein bounds on the means, all at
  /// `confidence`. No wall-clock fields. Byte-stable given equal state.
  std::string toJson() const;
};

/// `est.*` manifest keys for one arm (consumed by apf_report's estimation
/// section; `prefix` distinguishes arms in a multi-arm manifest, e.g.
/// "est.a." — default "est.").
void appendManifest(const ArmEstimate& arm, obs::Manifest& manifest,
                    const std::string& prefix = "est.");

/// Runs one adaptive estimation arm. Throws std::invalid_argument on bad
/// stopping options; exceptions from `trial` propagate (the campaign
/// cancels, same as runCampaign).
ArmEstimate runAdaptive(const std::string& label, const Trial& trial,
                        const AdaptiveOptions& opts);

}  // namespace apf::est
