#include "est/estimators.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace apf::est {

namespace {

/// Parses one flat JSON object or throws (shared by the fromJson methods —
/// summaries are persisted inside journals and reports, so a torn or
/// hand-edited fragment must fail loudly, not decode to zeros).
obs::JsonObject parseOrThrow(std::string_view text, const char* what) {
  auto obj = obs::parseFlatObject(text);
  if (!obj) {
    throw std::runtime_error(std::string("est: malformed ") + what +
                             " JSON: " + std::string(text));
  }
  return *obj;
}

double fieldNum(const obs::JsonObject& obj, const char* key,
                const char* what) {
  const auto it = obj.find(key);
  if (it == obj.end() || it->second.kind != obs::JsonValue::Kind::Number) {
    throw std::runtime_error(std::string("est: ") + what +
                             " missing numeric field '" + key + "'");
  }
  return it->second.number;
}

}  // namespace

// ---------------------------------------------------------------------------
// Normal quantile (Acklam's rational approximation + one Halley refinement)
// ---------------------------------------------------------------------------

double normalQuantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("normalQuantile: p must lie in (0, 1)");
  }
  // Coefficients from Peter Acklam's canonical approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double pLow = 0.02425;
  double x;
  if (p < pLow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - pLow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley step against the exact CDF brings |error| under 1e-12.
  constexpr double kSqrt2Pi = 2.5066282746310002;
  const double e =
      0.5 * std::erfc(-x / std::sqrt(2.0)) - p;            // CDF(x) - p
  const double u = e * kSqrt2Pi * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

// ---------------------------------------------------------------------------
// Regularized incomplete beta (continued fraction) and its inverse
// ---------------------------------------------------------------------------

namespace {

/// Lentz continued-fraction evaluation of I_x(a,b)'s fraction part
/// (Numerical Recipes betacf).
double betaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3.0e-16;
  constexpr double kFpMin = 1.0e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double regularizedIncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double lnBeta = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b);
  const double front =
      std::exp(lnBeta + a * std::log(x) + b * std::log(1.0 - x));
  // Use the expansion on the side where it converges fast.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * betaContinuedFraction(b, a, 1.0 - x) / b;
}

namespace {

/// Inverse of I_x(a, b) in x by bisection: monotone, bounded, and exactly
/// reproducible (no platform-dependent special functions on the path).
/// 200 halvings reach the limit of double resolution.
double betaQuantile(double p, double a, double b) {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  double lo = 0.0, hi = 1.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = (lo + hi) / 2.0;
    if (mid <= lo || mid >= hi) break;  // interval collapsed to a double
    if (regularizedIncompleteBeta(a, b, mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Bernoulli summaries + intervals
// ---------------------------------------------------------------------------

std::string BernoulliSummary::toJson() const {
  obs::JsonObjectWriter w;
  w.field("trials", trials);
  w.field("successes", successes);
  return w.str();
}

BernoulliSummary BernoulliSummary::fromJson(std::string_view text) {
  const obs::JsonObject obj = parseOrThrow(text, "BernoulliSummary");
  BernoulliSummary s;
  s.trials =
      static_cast<std::uint64_t>(fieldNum(obj, "trials", "BernoulliSummary"));
  s.successes = static_cast<std::uint64_t>(
      fieldNum(obj, "successes", "BernoulliSummary"));
  if (s.successes > s.trials) {
    throw std::runtime_error("est: BernoulliSummary successes > trials");
  }
  return s;
}

Interval wilson(const BernoulliSummary& s, double confidence) {
  if (s.trials == 0) return {0.0, 1.0};
  const double z = normalQuantile(0.5 + confidence / 2.0);
  const double n = static_cast<double>(s.trials);
  const double p = s.rate();
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

Interval clopperPearson(const BernoulliSummary& s, double confidence) {
  if (s.trials == 0) return {0.0, 1.0};
  const double alpha = 1.0 - confidence;
  const double n = static_cast<double>(s.trials);
  const double k = static_cast<double>(s.successes);
  Interval iv;
  // Boundary cases have closed forms; the Beta quantile handles the rest.
  iv.lo = s.successes == 0 ? 0.0
                           : betaQuantile(alpha / 2.0, k, n - k + 1.0);
  iv.hi = s.successes == s.trials
              ? 1.0
              : betaQuantile(1.0 - alpha / 2.0, k + 1.0, n - k);
  return iv;
}

// ---------------------------------------------------------------------------
// Moment summaries + empirical Bernstein
// ---------------------------------------------------------------------------

void MomentSummary::add(double x) {
  if (count == 0) {
    min = max = x;
  } else {
    min = std::min(min, x);
    max = std::max(max, x);
  }
  count += 1;
  const double delta = x - mean;
  mean += delta / static_cast<double>(count);
  m2 += delta * (x - mean);
}

void MomentSummary::merge(const MomentSummary& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  const double nA = static_cast<double>(count);
  const double nB = static_cast<double>(other.count);
  const double delta = other.mean - mean;
  const double nTotal = nA + nB;
  mean += delta * (nB / nTotal);
  m2 += other.m2 + delta * delta * (nA * nB / nTotal);
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
}

std::string MomentSummary::toJson() const {
  obs::JsonObjectWriter w;
  w.field("count", count);
  w.field("mean", mean);
  w.field("m2", m2);
  w.field("min", min);
  w.field("max", max);
  return w.str();
}

MomentSummary MomentSummary::fromJson(std::string_view text) {
  const obs::JsonObject obj = parseOrThrow(text, "MomentSummary");
  MomentSummary s;
  s.count =
      static_cast<std::uint64_t>(fieldNum(obj, "count", "MomentSummary"));
  s.mean = fieldNum(obj, "mean", "MomentSummary");
  s.m2 = fieldNum(obj, "m2", "MomentSummary");
  s.min = fieldNum(obj, "min", "MomentSummary");
  s.max = fieldNum(obj, "max", "MomentSummary");
  return s;
}

Interval empiricalBernstein(const MomentSummary& s, double confidence,
                            double range) {
  if (s.count == 0) return {0.0, 0.0};
  const double n = static_cast<double>(s.count);
  const double r = range > 0.0 ? range : s.max - s.min;
  const double delta = 1.0 - confidence;
  const double logTerm = std::log(3.0 / delta);
  const double half = std::sqrt(2.0 * s.variance() * logTerm / n) +
                      3.0 * r * logTerm / n;
  return {s.mean - half, s.mean + half};
}

}  // namespace apf::est
