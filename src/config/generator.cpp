#include "config/generator.h"

#include <cmath>

#include "geom/angle.h"

namespace apf::config {

Configuration randomConfiguration(std::size_t n, Rng& rng, double radius,
                                  double minSeparation) {
  std::uniform_real_distribution<double> uang(0.0, geom::kTwoPi);
  std::uniform_real_distribution<double> urad(0.0, 1.0);
  Configuration out;
  int attempts = 0;
  while (out.size() < n) {
    const double a = uang(rng);
    const double r = radius * std::sqrt(urad(rng));
    const Vec2 p{r * std::cos(a), r * std::sin(a)};
    if (out.distanceTo(p) > minSeparation) {
      out.push_back(p);
      attempts = 0;
    } else if (++attempts > 10000) {
      // Separation unsatisfiable at this density; relax it.
      minSeparation /= 2.0;
      attempts = 0;
    }
  }
  return out;
}

Configuration regularPolygon(std::size_t m, double radius, Vec2 center,
                             double phase) {
  std::vector<double> radii(m, radius);
  return equiangularSet(radii, center, phase);
}

Configuration equiangularSet(std::span<const double> radii, Vec2 center,
                             double phase) {
  const std::size_t m = radii.size();
  Configuration out;
  for (std::size_t k = 0; k < m; ++k) {
    const double a = phase + geom::kTwoPi * static_cast<double>(k) /
                                 static_cast<double>(m);
    out.push_back(center + Vec2{std::cos(a), std::sin(a)} * radii[k]);
  }
  return out;
}

Configuration biangularSet(std::size_t m, double alpha,
                           std::span<const double> radii, Vec2 center,
                           double phase) {
  const double pairSum = 2.0 * geom::kTwoPi / static_cast<double>(m);
  Configuration out;
  double a = phase;
  for (std::size_t k = 0; k < m; ++k) {
    out.push_back(center + Vec2{std::cos(a), std::sin(a)} * radii[k]);
    a += (k % 2 == 0) ? alpha : pairSum - alpha;
  }
  return out;
}

Configuration symmetricConfiguration(int rho, int rings, Rng& rng,
                                     double radius) {
  std::uniform_real_distribution<double> uphase(0.0, geom::kTwoPi);
  std::uniform_real_distribution<double> urad(0.3, 1.0);
  Configuration out;
  for (int ring = 0; ring < rings; ++ring) {
    const double r = radius * urad(rng) * (1.0 + ring);
    const double phase = uphase(rng);
    for (int k = 0; k < rho; ++k) {
      const double a = phase + geom::kTwoPi * k / rho;
      out.push_back(Vec2{std::cos(a), std::sin(a)} * r);
    }
  }
  return out;
}

Configuration axialConfiguration(int pairs, int onAxis, Rng& rng,
                                 double radius) {
  // Axis: the y-axis. Mirror pairs at (+-x, y); axis points at (0, y).
  std::uniform_real_distribution<double> ux(0.3, 1.0);
  std::uniform_real_distribution<double> uy(-1.0, 1.0);
  Configuration out;
  for (int k = 0; k < pairs; ++k) {
    const double x = radius * ux(rng) * (1.0 + 0.5 * k);
    const double y = radius * uy(rng) * (1.0 + 0.5 * k);
    out.push_back({x, y});
    out.push_back({-x, y});
  }
  for (int k = 0; k < onAxis; ++k) {
    out.push_back({0.0, radius * uy(rng) * (2.0 + k)});
  }
  return out;
}

Configuration randomPattern(std::size_t n, Rng& rng, double radius) {
  return randomConfiguration(n, rng, radius, radius * 5e-3);
}

}  // namespace apf::config
