#pragma once

/// \file view.h
/// Local views and the max-view ordering (Suzuki-Yamashita machinery).
///
/// The local view Z_r of robot r (paper §2) is the multiset of robot
/// positions in the polar coordinate system centered at c(P), with r at
/// (1, 0), taken with the orientation (cw or ccw) that lexicographically
/// maximizes the sorted coordinate sequence. Views are the anonymous,
/// orientation-free total preorder the algorithms use to break ties.
///
/// Numeric discipline: view coordinates are quantized to an integer grid
/// (1e-9 resolution) before comparison, making view equality and ordering
/// exact, transitive, and hashable. Configurations produced by the simulator
/// keep static robots bit-stable, so symmetric twins quantize identically
/// while genuinely distinct geometry differs by far more than the grid step.

#include <cstdint>
#include <vector>

#include "config/configuration.h"

namespace apf::config {

/// Quantization step for view coordinates. Coarse enough that independent
/// arithmetic paths producing the "same" value (mirrored frames, re-derived
/// SEC centers) agree after rounding, fine enough that genuinely distinct
/// geometry (point separations >= 1e-3 throughout the library) differs.
inline constexpr double kViewQuantum = 1e-6;

/// Quantize a real coordinate onto the view grid.
std::int64_t viewQuantize(double x);

/// A robot's local view.
struct View {
  /// Flattened (theta, rho, multiplicity) triples of all distinct points,
  /// sorted ascending, quantized. Empty when atCenter.
  std::vector<std::int64_t> key;
  /// +1 when only ccw maximizes, -1 when only cw maximizes, 0 when both
  /// orientations give the same view (r lies on an axis of symmetry of P).
  int orientation = 0;
  /// True when the robot sits exactly at the view center; such a robot's
  /// view is defined as strictly greater than every other view.
  bool atCenter = false;

  bool operator==(const View&) const = default;
};

/// Three-way comparison: -1 when a < b, 0 when equal, +1 when a > b.
int compareViews(const View& a, const View& b);

/// Local view of robot index i around `center`, with multiplicities counted
/// when `withMultiplicity` (robots without multiplicity detection see
/// distinct points only; counts are forced to 1).
View localView(const Configuration& p, std::size_t i, Vec2 center,
               bool withMultiplicity = false,
               const Tol& tol = geom::kDefaultTol);

/// Views of every robot (same parameters as localView).
std::vector<View> allViews(const Configuration& p, Vec2 center,
                           bool withMultiplicity = false,
                           const Tol& tol = geom::kDefaultTol);

/// Indices sorted by view descending (greatest view first). Ties keep index
/// order (stable).
std::vector<std::size_t> byViewDescending(const Configuration& p, Vec2 center,
                                          bool withMultiplicity = false,
                                          const Tol& tol = geom::kDefaultTol);

/// Indices of the robots whose view is maximal (the first tie class of
/// byViewDescending).
std::vector<std::size_t> maxViewRobots(const Configuration& p, Vec2 center,
                                       bool withMultiplicity = false,
                                       const Tol& tol = geom::kDefaultTol);

}  // namespace apf::config
