#pragma once

/// \file shifted.h
/// epsilon-shifted-m-regular sets (paper Definition 3, Theorem 1).
///
/// P contains an eps-shifted-m-regular set when replacing one robot r by a
/// position r' on the same circle yields a configuration P' whose regular
/// set reg(P') contains r', with (a) angmin(r, c, r') = eps * alphamin(P'),
/// 0 < eps <= 1/4, (b) alphamin(r, P) < alphamin(r', P'), and (c) r and r'
/// at the minimum distance from the center among all robots.
///
/// Detection strategy: candidate generation + exact verification.
/// Candidates for r are the robots at the innermost distance ring; for each,
/// candidate vacant-ray directions theta_v are proposed by reducing every
/// other robot's direction modulo a hypothesized equiangular family step
/// (this covers bi-angled grids too, whose rays split into two equiangular
/// families). Each candidate r' = c + |r-c| * e^{i theta_v} is then verified
/// *exactly* by running the full Definition-2 machinery on P' and checking
/// conditions (a)-(c); only verified candidates are reported, so the
/// heuristic generation can only cause false negatives, never false
/// positives — and on configurations the algorithms actually produce it is
/// exhaustive (tested).

#include <optional>

#include "config/regular.h"

namespace apf::config {

/// A detected shifted regular set.
struct ShiftedSetInfo {
  /// reg(P'): the associated regular set, indices valid in P' (see below);
  /// kept mainly for its grid.
  geom::AngularGrid grid;
  bool biangular = false;
  /// Indices in P of the robots of the *shifted* regular set reg(P)
  /// (= reg(P') with r' replaced by r), ordered by grid ray.
  std::vector<std::size_t> indices;
  /// Index in P of the shifted robot r.
  std::size_t shiftedRobot = 0;
  /// The associated position r' (on the vacant grid ray, same circle as r).
  Vec2 associatedPos;
  /// The shift eps in (0, 1/4].
  double epsilon = 0.0;
  /// alphamin(P') — the unit in which the shift is measured; needed by the
  /// election algorithm to compute target positions for new shifts.
  double alphaMinPPrime = 0.0;
  /// True when reg(P') is the entire P'.
  bool wholeConfig = false;
};

/// Definition 3 detection. Returns the unique shifted set (Theorem 1
/// guarantees uniqueness for n >= 7) or nullopt.
std::optional<ShiftedSetInfo> shiftedRegularSetOf(
    const Configuration& p, const Tol& tol = geom::kDefaultTol);

}  // namespace apf::config
