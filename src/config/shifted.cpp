#include "config/shifted.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "config/rays.h"
#include "config/symmetry.h"
#include "geom/angle.h"
#include "geom/sec.h"

namespace apf::config {
namespace {

using geom::kTwoPi;

/// A candidate vacant-ray direction, with the equiangular-family order that
/// proposed it and how many robots aligned to it at tight tolerance.
struct VacancyCandidate {
  double thetaV = 0.0;
  /// Best tight alignment over the proposing family orders.
  int tightCount = 0;
  /// True when some family order jf had at least jf - 1 members aligned at
  /// tight tolerance — the signature of a genuine grid with one vacancy.
  bool plausible = false;
};

/// Exact verification of Definition 3 for a concrete (r, r') pair: builds
/// P' = P - {r} + {r'}, runs the full Definition-2 machinery, and checks
/// conditions (a)-(c). Never returns a false positive.
std::optional<ShiftedSetInfo> verifyShift(const Configuration& p,
                                          std::size_t ir, Vec2 rPrime,
                                          Vec2 cApprox, const Tol& tol) {
  const Vec2 r = p[ir];
  if (geom::nearlyEqual(r, rPrime, tol)) return std::nullopt;  // eps > 0
  if (p.distanceTo(rPrime) <= tol.dist) return std::nullopt;   // r' not in P

  std::vector<Vec2> pts = p.points();
  pts[ir] = rPrime;
  const Configuration pPrime(std::move(pts));

  // Cheap pre-rejection around the approximate center: condition (a)
  // requires the shift angle to be at most a quarter of alphamin(P'); most
  // spurious candidates fail this by a wide margin, sparing the expensive
  // Definition-2 verification. 0.3 leaves slack for center error.
  {
    const double aMinApprox = alphaMin(pPrime, cApprox, tol);
    const double shiftApprox = geom::angMin(r, cApprox, rPrime);
    if (aMinApprox >= kTwoPi || shiftApprox > 0.3 * aMinApprox) {
      return std::nullopt;
    }
  }

  const auto reg = regularSetOf(pPrime, tol);
  if (!reg) return std::nullopt;
  if (std::find(reg->indices.begin(), reg->indices.end(), ir) ==
      reg->indices.end()) {
    return std::nullopt;  // r' must belong to reg(P')
  }
  const Vec2 c = reg->grid.center;

  // Condition (c): |r| = |r'| = min_{u in P} |u| (distances from c).
  const double rd = geom::dist(r, c);
  if (!geom::distEq(rd, geom::dist(rPrime, c), tol)) return std::nullopt;
  for (const Vec2& q : p.points()) {
    if (geom::dist(q, c) < rd - tol.dist) return std::nullopt;
  }

  // Condition (a): angmin(r, c, r') = eps * alphamin(P'), 0 < eps <= 1/4.
  const double aMinPPrime = alphaMin(pPrime, c, tol);
  if (aMinPPrime >= kTwoPi) return std::nullopt;
  const double shiftAngle = geom::angMin(r, c, rPrime);
  const double eps = shiftAngle / aMinPPrime;
  if (eps <= 0.0 || shiftAngle <= tol.ang || eps > 0.25 + 1e-9) {
    return std::nullopt;
  }

  // Condition (b): alphamin(r, P) < alphamin(r', P').
  if (!(alphaMinAt(r, p, c, tol) < alphaMinAt(rPrime, pPrime, c, tol))) {
    return std::nullopt;
  }

  ShiftedSetInfo info;
  info.grid = reg->grid;
  info.biangular = reg->biangular;
  info.indices = reg->indices;  // same index space: P'[i] == P[i] for i != ir
  info.shiftedRobot = ir;
  info.associatedPos = rPrime;
  info.epsilon = eps;
  info.alphaMinPPrime = aMinPPrime;
  info.wholeConfig = reg->wholeConfig;
  return info;
}

/// Propose vacant-ray directions around center c for shifted robot r:
/// for each equiangular family order jf, reduce every other robot's
/// direction modulo 2*pi/jf into the window of width alpha/2 around r's
/// direction. Exactly-aligned robots (bit-stable static grid members)
/// produce tightly clustered proposals.
std::vector<VacancyCandidate> proposeVacancies(const Configuration& p,
                                               std::size_t ir, Vec2 c,
                                               const Tol& tol) {
  const Vec2 r = p[ir];
  const Vec2 dr = r - c;
  if (dr.norm() <= tol.dist) return {};
  const double dirR = dr.arg();
  const int n = static_cast<int>(p.size());

  struct Raw {
    double thetaV;
    int familyOrder;
  };
  std::vector<Raw> raw;
  for (int jf = 2; jf <= n; ++jf) {
    const double step = kTwoPi / jf;
    for (std::size_t q = 0; q < p.size(); ++q) {
      if (q == ir) continue;
      const Vec2 dq = p[q] - c;
      if (dq.norm() <= tol.dist) continue;
      const double a = dq.arg();
      const double delta = a - dirR;
      const double k = std::round(delta / step);
      const double thetaV = geom::norm2pi(a - k * step);
      const double off = geom::normPi(thetaV - dirR);
      if (std::fabs(off) <= tol.ang) continue;  // on r's own ray: eps = 0
      if (std::fabs(off) > step / 4.0 + 1e-7) continue;  // eps > 1/4
      raw.push_back({thetaV, jf});
    }
  }
  std::sort(raw.begin(), raw.end(),
            [](const Raw& a, const Raw& b) { return a.thetaV < b.thetaV; });

  // Cluster at loose tolerance, then count tight alignment per family order.
  std::vector<VacancyCandidate> out;
  std::size_t i = 0;
  while (i < raw.size()) {
    std::size_t j = i;
    while (j + 1 < raw.size() && raw[j + 1].thetaV - raw[i].thetaV < 1e-6) ++j;
    // Within cluster [i, j]: per family order, count members within 1e-9 of
    // the cluster's median value. A vacancy of a jf-ray family must be
    // proposed by its jf - 1 occupied rays, so the cluster is plausible when
    // ANY of its proposing orders reaches that quorum (a single theta_v is
    // often proposed under several orders, e.g. jf and 2*jf).
    const double med = raw[(i + j) / 2].thetaV;
    VacancyCandidate cand{med, 0, false};
    for (std::size_t k = i; k <= j; ++k) {
      const int order = raw[k].familyOrder;
      int tight = 0;
      for (std::size_t l = i; l <= j; ++l) {
        if (raw[l].familyOrder == order &&
            std::fabs(raw[l].thetaV - med) < 1e-9) {
          ++tight;
        }
      }
      cand.tightCount = std::max(cand.tightCount, tight);
      if (tight + 1 >= order) cand.plausible = true;
    }
    out.push_back(cand);
    i = j + 1;
  }
  // Strongest clusters first: genuine grids align many robots tightly.
  std::sort(out.begin(), out.end(),
            [](const VacancyCandidate& a, const VacancyCandidate& b) {
              return a.tightCount > b.tightCount;
            });
  return out;
}

/// Whole-configuration case: reg(P') = P'. Fit the n-1 static robots
/// (everything except r) to an n-ray grid with the vacancy at ray 0, via
/// Gauss-Newton with a free center. Returns candidate r' positions.
/// `weberWhole` is the precomputed Weber point of all of P (hoisted by the
/// caller — Weiszfeld iteration is far too dear to repeat per candidate
/// robot).
std::vector<Vec2> refineWholeGridCandidates(const Configuration& p,
                                            std::size_t ir, Vec2 weberWhole,
                                            const Tol& tol) {
  const int n = static_cast<int>(p.size());
  if (n < 5) return {};
  std::vector<Vec2> rest;
  rest.reserve(p.size() - 1);
  for (std::size_t q = 0; q < p.size(); ++q) {
    if (q != ir) rest.push_back(p[q]);
  }

  std::vector<Vec2> candidates;
  const Vec2 inits[2] = {weberWhole, geom::weberPoint(rest)};
  for (const Vec2& c0 : inits) {
    // Sorted directions of the static robots around the init center.
    struct Dir {
      double a;
      Vec2 pos;
    };
    std::vector<Dir> dirs;
    bool degenerate = false;
    for (const Vec2& q : rest) {
      const Vec2 d = q - c0;
      if (d.norm() <= tol.dist) {
        degenerate = true;
        break;
      }
      dirs.push_back({geom::norm2pi(d.arg()), q});
    }
    if (degenerate) continue;
    std::sort(dirs.begin(), dirs.end(),
              [](const Dir& a, const Dir& b) { return a.a < b.a; });
    const std::size_t m = dirs.size();  // n - 1 points on an n-ray grid

    auto gapAfter = [&](std::size_t k) {
      const double next =
          (k + 1 < m) ? dirs[k + 1].a : dirs[0].a + kTwoPi;
      return next - dirs[k].a;
    };

    const double base = kTwoPi / n;

    // Equiangular hypothesis: one gap ~ 2*base, the rest ~ base. The vacancy
    // sits inside the largest gap.
    {
      std::size_t v = 0;
      double maxGap = 0.0;
      for (std::size_t k = 0; k < m; ++k) {
        if (gapAfter(k) > maxGap) {
          maxGap = gapAfter(k);
          v = k;
        }
      }
      if (std::fabs(maxGap - 2.0 * base) < 0.5 * base) {
        std::vector<Vec2> pts;
        std::vector<int> rayIndex;
        for (std::size_t k = 0; k < m; ++k) {
          pts.push_back(dirs[(v + 1 + k) % m].pos);
          rayIndex.push_back(static_cast<int>(k + 1));  // vacancy is ray 0
        }
        geom::AngularGrid init;
        init.center = c0;
        init.theta0 = dirs[(v + 1) % m].a - base;
        init.alpha = init.beta = base;
        init.numRays = n;
        if (auto fit = geom::fitAngularGrid(pts, rayIndex, n, false, init);
            fit && fit->maxResidual <= tol.ang) {
          const Vec2 c = fit->grid.center;
          const double rad = geom::dist(p[ir], c);
          candidates.push_back(c + Vec2{std::cos(fit->grid.rayDir(0)),
                                        std::sin(fit->grid.rayDir(0))} *
                                       rad);
        }
      }
    }

    // Bi-angled hypothesis (n even): the vacancy merges an alpha gap and a
    // beta gap into pairSum = 4*pi/n. Try every gap as the vacancy.
    if (n % 2 == 0 && n >= 6) {
      const double pairSum = 2.0 * kTwoPi / n;
      for (std::size_t v = 0; v < m; ++v) {
        if (std::fabs(gapAfter(v) - pairSum) > 0.45 * pairSum) continue;
        // With the vacancy at ray 0, the robot after it is ray 1 and the gap
        // ray1->ray2 is beta (our convention: gaps alternate alpha, beta
        // starting after ray 0).
        const double betaInit = gapAfter((v + 1) % m);
        const double alphaInit = pairSum - betaInit;
        if (alphaInit < 0.02 * pairSum || alphaInit > 0.98 * pairSum) continue;
        std::vector<Vec2> pts;
        std::vector<int> rayIndex;
        for (std::size_t k = 0; k < m; ++k) {
          pts.push_back(dirs[(v + 1 + k) % m].pos);
          rayIndex.push_back(static_cast<int>(k + 1));
        }
        geom::AngularGrid init;
        init.center = c0;
        init.theta0 = dirs[(v + 1) % m].a - alphaInit;
        init.alpha = alphaInit;
        init.beta = betaInit;
        init.numRays = n;
        if (auto fit = geom::fitAngularGrid(pts, rayIndex, n, true, init);
            fit && fit->maxResidual <= tol.ang) {
          const Vec2 c = fit->grid.center;
          const double rad = geom::dist(p[ir], c);
          candidates.push_back(c + Vec2{std::cos(fit->grid.rayDir(0)),
                                        std::sin(fit->grid.rayDir(0))} *
                                       rad);
        }
      }
    }
  }
  return candidates;
}

}  // namespace

std::optional<ShiftedSetInfo> shiftedRegularSetOf(const Configuration& p,
                                                  const Tol& tol) {
  const std::size_t n = p.size();
  if (n < 4) return std::nullopt;

  // Candidate shifted robots: innermost ring around either plausible center.
  // Both centers are hoisted out of the per-robot loops below: p.sec() and
  // p.weberPoint() are memoized by Configuration, so repeated calls across
  // candidates cost one cache hit each.
  const Vec2 weberWhole = p.weberPoint();
  const Vec2 centers[2] = {p.sec().center, weberWhole};
  std::vector<bool> isCandidate(n, false);
  for (const Vec2& c : centers) {
    double dmin = std::numeric_limits<double>::infinity();
    for (const Vec2& q : p.points()) dmin = std::min(dmin, geom::dist(q, c));
    for (std::size_t i = 0; i < n; ++i) {
      if (geom::dist(p[i], c) <= dmin + tol.dist) isCandidate[i] = true;
    }
  }

  int attempts = 0;
  constexpr int kMaxAttempts = 64;  // bound worst-case detection cost
  for (std::size_t ir = 0; ir < n; ++ir) {
    if (!isCandidate[ir]) continue;
    // Subset case: the center is exactly the SEC center; propose vacant rays
    // and verify each.
    {
      const Vec2 c = centers[0];
      const double rad = geom::dist(p[ir], c);
      if (rad > tol.dist) {
        for (const VacancyCandidate& cand : proposeVacancies(p, ir, c, tol)) {
          if (!cand.plausible) continue;
          if (++attempts > kMaxAttempts) return std::nullopt;
          const Vec2 rPrime =
              c + Vec2{std::cos(cand.thetaV), std::sin(cand.thetaV)} * rad;
          if (auto info = verifyShift(p, ir, rPrime, c, tol)) return info;
        }
      }
    }
    // Whole-configuration case: free-center grid fit on the static robots.
    for (const Vec2& rPrime :
         refineWholeGridCandidates(p, ir, weberWhole, tol)) {
      if (++attempts > kMaxAttempts) return std::nullopt;
      if (auto info = verifyShift(p, ir, rPrime, weberWhole, tol)) {
        return info;
      }
    }
    // Bi-angled PAIR case (reg(P') is a mirror pair, |Q| = 2): the pair's
    // occupied family has a single ray, so modular reduction proposes
    // nothing. The vacant ray is instead pinned by Definition 2's
    // virtual-axis condition: it is the mirror image of the partner's ray
    // across a symmetry axis of the static remainder P - {r}.
    {
      const Vec2 c = centers[0];
      const double rad = geom::dist(p[ir], c);
      if (rad > tol.dist) {
        std::vector<Vec2> rest;
        for (std::size_t q = 0; q < n; ++q) {
          if (q != ir) rest.push_back(p[q]);
        }
        const Configuration restCfg(std::move(rest));
        const double dirR = (p[ir] - c).arg();
        for (double axis : symmetryAxes(restCfg, c, tol)) {
          for (const Vec2& q : restCfg.points()) {
            const Vec2 dq = q - c;
            if (dq.norm() <= tol.dist) continue;
            const double thetaV = geom::norm2pi(2.0 * axis - dq.arg());
            if (std::fabs(geom::normPi(thetaV - dirR)) > 0.6) continue;
            if (++attempts > kMaxAttempts) return std::nullopt;
            const Vec2 rPrime =
                c + Vec2{std::cos(thetaV), std::sin(thetaV)} * rad;
            if (auto info = verifyShift(p, ir, rPrime, c, tol)) return info;
          }
        }
      }
    }
  }
  return std::nullopt;
}

}  // namespace apf::config
