#include "config/canonical.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "geom/angle.h"
#include "geom/sec.h"

namespace apf::config {
namespace {

constexpr double kQuantum = 1e-6;

std::int64_t q(double x) { return std::llround(x / kQuantum); }

/// Quantized (radius, angle) multiset for one rotation/reflection choice.
std::vector<std::int64_t> keyFor(const std::vector<geom::Vec2>& pts,
                                 double rot, bool mirror) {
  std::vector<std::pair<std::int64_t, std::int64_t>> entries;
  entries.reserve(pts.size());
  for (const geom::Vec2& p : pts) {
    const double r = p.norm();
    double a = 0.0;
    if (r > 1e-12) {
      a = geom::norm2pi((mirror ? -p.arg() : p.arg()) - rot);
      if (a > geom::kTwoPi - 1e-9) a = 0.0;
    }
    entries.push_back({q(r), q(a)});
  }
  std::sort(entries.begin(), entries.end());
  std::vector<std::int64_t> key;
  key.reserve(entries.size() * 2);
  for (const auto& [r, a] : entries) {
    key.push_back(r);
    key.push_back(a);
  }
  return key;
}

}  // namespace

CanonicalSignature canonicalSignature(const Configuration& p,
                                      const Tol& tol) {
  CanonicalSignature out;
  if (p.empty()) return out;
  const geom::Circle sec = p.sec();
  if (sec.radius <= tol.dist) {
    // All points coincide: the signature is just the multiplicity count.
    out.key = {static_cast<std::int64_t>(p.size())};
    return out;
  }
  std::vector<geom::Vec2> norm;
  norm.reserve(p.size());
  for (const geom::Vec2& v : p.points()) {
    norm.push_back((v - sec.center) / sec.radius);
  }
  // Candidate anchors: every point on the SEC boundary, both orientations.
  std::vector<std::int64_t> best;
  for (const geom::Vec2& v : norm) {
    if (std::fabs(v.norm() - 1.0) > 1e-7) continue;
    for (bool mirror : {false, true}) {
      const double rot = mirror ? -v.arg() : v.arg();
      auto key = keyFor(norm, rot, mirror);
      if (best.empty() || key > best) best = std::move(key);
    }
  }
  out.key = std::move(best);
  return out;
}

std::string CanonicalSignature::digest() const {
  std::uint64_t h = 1469598103934665603ull;
  for (std::int64_t v : key) {
    for (int b = 0; b < 8; ++b) {
      h ^= static_cast<std::uint64_t>(v >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace apf::config
