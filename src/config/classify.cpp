#include "config/classify.h"

#include <sstream>

#include "config/symmetry.h"
#include "config/view.h"
#include "geom/angle.h"
#include "geom/sec.h"

namespace apf::config {

ClassifyReport classify(const Configuration& p, bool analyzeShifted,
                        const Tol& tol) {
  ClassifyReport out;
  out.n = p.size();
  if (p.empty()) return out;
  out.hasMultiplicity = p.hasMultiplicity(tol);
  out.sec = p.sec();
  out.symmetricity = symmetricity(p, out.sec.center, tol);
  out.axes = symmetryAxes(p, out.sec.center, tol);
  out.secHolders = geom::secHolders(p.span(), tol);
  out.regular = regularSetOf(p, tol);
  if (analyzeShifted) out.shifted = shiftedRegularSetOf(p, tol);

  const geom::Vec2 center =
      out.regular && out.regular->wholeConfig ? out.regular->grid.center
                                              : out.sec.center;
  const auto views = allViews(p, center, out.hasMultiplicity, tol);
  for (std::size_t i = 0; i < p.size(); ++i) {
    bool isMax = true;
    for (std::size_t j = 0; j < p.size() && isMax; ++j) {
      if (compareViews(views[j], views[i]) > 0) isMax = false;
    }
    if (isMax) out.maxView.push_back(i);
  }
  return out;
}

std::string ClassifyReport::describe() const {
  std::ostringstream os;
  os << "n = " << n << (hasMultiplicity ? " (with multiplicity)" : "")
     << '\n';
  os << "C(P): center (" << sec.center.x << ", " << sec.center.y
     << "), radius " << sec.radius << "; held by " << secHolders.size()
     << " robot(s)\n";
  os << "symmetricity rho(P) = " << symmetricity << ", " << axes.size()
     << " axis/axes of symmetry\n";
  if (regular) {
    os << "reg(P): " << regular->indices.size() << " robots, "
       << (regular->biangular ? "bi-angled" : "equiangular")
       << (regular->wholeConfig ? " (whole configuration)" : "")
       << ", center (" << regular->grid.center.x << ", "
       << regular->grid.center.y << ")\n";
  } else {
    os << "reg(P): none\n";
  }
  if (shifted) {
    os << "shifted set: robot " << shifted->shiftedRobot
       << ", eps = " << shifted->epsilon << ", m = "
       << shifted->indices.size() << '\n';
  } else {
    os << "shifted set: none\n";
  }
  os << "max-view robots:";
  for (std::size_t i : maxView) os << ' ' << i;
  os << '\n';
  return os.str();
}

}  // namespace apf::config
