#include "config/symmetry.h"

#include <algorithm>
#include <cmath>

#include "geom/angle.h"

namespace apf::config {
namespace {

/// Multiset coincidence of `a` and `b` (same size assumed): greedy matching
/// is sound here because the tolerance is far below point separation.
bool coincides(const std::vector<Vec2>& a, const std::vector<Vec2>& b,
               const Tol& tol) {
  std::vector<bool> used(b.size(), false);
  for (const Vec2& p : a) {
    bool found = false;
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (!used[j] && geom::nearlyEqual(p, b[j], tol)) {
        used[j] = true;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace

bool rotationMapsToSelf(const Configuration& p, Vec2 center, double angle,
                        const Tol& tol) {
  std::vector<Vec2> rotated;
  rotated.reserve(p.size());
  for (const Vec2& q : p.points()) {
    rotated.push_back(center + (q - center).rotated(angle));
  }
  return coincides(rotated, p.points(), tol);
}

bool reflectionMapsToSelf(const Configuration& p, Vec2 center, double axisDir,
                          const Tol& tol) {
  const Vec2 u{std::cos(axisDir), std::sin(axisDir)};
  std::vector<Vec2> reflected;
  reflected.reserve(p.size());
  for (const Vec2& q : p.points()) {
    const Vec2 d = q - center;
    // Reflect d across the axis direction u: 2 (d.u) u - d.
    reflected.push_back(center + u * (2.0 * d.dot(u)) - d);
  }
  return coincides(reflected, p.points(), tol);
}

int symmetricity(const Configuration& p, Vec2 center, const Tol& tol) {
  const int n = static_cast<int>(p.size());
  if (n <= 1) return std::max(n, 1);
  // Points at the center are fixed by every rotation; symmetricity is
  // governed by the remaining points, and any m that maps them to
  // themselves works. The candidate orders divide the number of off-center
  // points.
  int off = 0;
  for (const Vec2& q : p.points()) {
    if (geom::dist(q, center) > tol.dist) ++off;
  }
  if (off == 0) return 1;
  for (int m = off; m >= 2; --m) {
    if (off % m != 0) continue;
    if (rotationMapsToSelf(p, center, geom::kTwoPi / m, tol)) return m;
  }
  return 1;
}

std::vector<double> symmetryAxes(const Configuration& p, Vec2 center,
                                 const Tol& tol) {
  // Candidate axis directions: the direction of each point, and the bisector
  // of each pair of points (both mod pi). Any true axis must be one of them
  // (an axis either passes through a point or bisects a mirror pair).
  std::vector<double> candidates;
  const auto& pts = p.points();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const Vec2 di = pts[i] - center;
    if (di.norm() <= tol.dist) continue;
    const double ai = geom::norm2pi(di.arg());
    candidates.push_back(std::fmod(ai, geom::kPi));
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      const Vec2 dj = pts[j] - center;
      if (dj.norm() <= tol.dist) continue;
      const double aj = geom::norm2pi(dj.arg());
      candidates.push_back(std::fmod((ai + aj) / 2.0, geom::kPi));
      candidates.push_back(
          std::fmod((ai + aj) / 2.0 + geom::kPi / 2.0, geom::kPi));
    }
  }
  std::sort(candidates.begin(), candidates.end());
  std::vector<double> axes;
  for (double a : candidates) {
    if (!axes.empty() && std::fabs(a - axes.back()) <= tol.ang) continue;
    if (reflectionMapsToSelf(p, center, a, tol)) axes.push_back(a);
  }
  // Merge the wrap-around duplicate (axis near 0 and near pi are the same).
  if (axes.size() >= 2 &&
      std::fabs(axes.front() + geom::kPi - axes.back()) <= tol.ang) {
    axes.pop_back();
  }
  return axes;
}

}  // namespace apf::config
