#pragma once

/// \file rays.h
/// Helpers over the half-lines H_c(M) from a center through robot positions
/// (paper §2 notation: alpha_min).

#include <vector>

#include "config/configuration.h"

namespace apf::config {

/// Direction angles (deduplicated, sorted, in [0, 2pi)) of the half-lines
/// from c through the points of m. Points within tol of c are skipped.
std::vector<double> rayDirections(const Configuration& m, Vec2 c,
                                  const Tol& tol = geom::kDefaultTol);

/// alpha_min,c(M): the minimum angle between two distinct half-lines of
/// H_c(M). Returns 2*pi when fewer than two rays exist.
double alphaMin(const Configuration& m, Vec2 c,
                const Tol& tol = geom::kDefaultTol);

/// alpha_min,c(p, M): the minimum non-null angle between the ray of p and
/// the rays of M's points. Returns 2*pi when undefined.
double alphaMinAt(Vec2 p, const Configuration& m, Vec2 c,
                  const Tol& tol = geom::kDefaultTol);

}  // namespace apf::config
