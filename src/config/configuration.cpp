#include "config/configuration.h"

#include <algorithm>
#include <limits>

#include "geom/weber.h"

namespace apf::config {

GeomCacheCounters& geomCacheCounters() {
  thread_local GeomCacheCounters counters;
  return counters;
}

bool hasCoincidentPair(std::span<const Vec2> pts, const Tol& tol) {
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      if (geom::nearlyEqual(pts[i], pts[j], tol)) return true;
    }
  }
  return false;
}

std::vector<MultiPoint> Configuration::grouped(const Tol& tol) const {
  std::vector<MultiPoint> out;
  out.reserve(pts_.size());
  for (const Vec2& p : pts_) {
    auto it = std::find_if(out.begin(), out.end(), [&](const MultiPoint& m) {
      return geom::nearlyEqual(m.pos, p, tol);
    });
    if (it == out.end()) {
      out.push_back({p, 1});
    } else {
      ++it->count;
    }
  }
  return out;
}

bool Configuration::hasMultiplicity(const Tol& tol) const {
  // Equivalent to grouped(tol).size() != pts_.size(), but allocation-free
  // and early-exit. Equivalence: grouped() shrinks exactly when some point
  // joins an earlier representative it is nearlyEqual to — i.e. when a
  // coincident pair exists. Conversely if pts_[i] ~ pts_[j] (i < j), then at
  // j's turn either pts_[i] is a representative (j joins it) or pts_[i]
  // itself joined an earlier one (the set already shrank). Either way both
  // predicates flip together, so the booleans agree for every tol.
  return hasCoincidentPair(pts_, tol);
}

Vec2 Configuration::weberPoint() const {
  auto& counters = geomCacheCounters();
  if (!weberValid_) {
    ++counters.weberMisses;
    weberCache_ = geom::weberPoint(pts_);
    weberValid_ = true;
  } else {
    ++counters.weberHits;
  }
  return weberCache_;
}

Configuration Configuration::without(std::size_t i) const {
  std::vector<Vec2> rest;
  rest.reserve(pts_.size() - 1);
  for (std::size_t j = 0; j < pts_.size(); ++j) {
    if (j != i) rest.push_back(pts_[j]);
  }
  return Configuration(std::move(rest));
}

Configuration Configuration::transformed(const Similarity& t) const {
  std::vector<Vec2> out;
  out.reserve(pts_.size());
  for (const Vec2& p : pts_) out.push_back(t.apply(p));
  return Configuration(std::move(out));
}

Similarity Configuration::normalizingTransform() const {
  const Circle c = sec();
  const double s = (c.radius > 0.0) ? 1.0 / c.radius : 1.0;
  // p -> (p - center) * s
  return Similarity(0.0, s, false, Vec2{-c.center.x * s, -c.center.y * s});
}

double Configuration::distanceTo(Vec2 p) const {
  double best = std::numeric_limits<double>::infinity();
  for (const Vec2& q : pts_) best = std::min(best, geom::dist(p, q));
  return best;
}

std::size_t Configuration::closestIndex(Vec2 p) const {
  std::size_t best = pts_.size();
  double bestD = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < pts_.size(); ++i) {
    const double d = geom::dist(p, pts_[i]);
    if (d < bestD) {
      bestD = d;
      best = i;
    }
  }
  return best;
}

double secondClosestDistance(const Configuration& p, Vec2 center,
                             const Tol& tol) {
  std::vector<double> ds;
  ds.reserve(p.size());
  for (const Vec2& q : p.points()) ds.push_back(geom::dist(q, center));
  std::sort(ds.begin(), ds.end());
  if (ds.empty()) return 0.0;
  for (double d : ds) {
    if (!geom::distEq(d, ds.front(), tol)) return d;
  }
  return ds.front();
}

}  // namespace apf::config
