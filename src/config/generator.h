#pragma once

/// \file generator.h
/// Configuration generators for tests, examples, and benchmarks: random
/// general-position configurations, regular and bi-angled sets, and the
/// symmetric inputs the paper's algorithm must break.

#include <cstdint>
#include <random>

#include "config/configuration.h"

namespace apf::config {

/// Deterministic RNG type used by all generators.
using Rng = std::mt19937_64;

/// n points uniform in the disc of given radius, rejecting points closer
/// than minSeparation to each other (general position, no multiplicity).
Configuration randomConfiguration(std::size_t n, Rng& rng, double radius = 1.0,
                                  double minSeparation = 1e-3);

/// Regular m-gon of the given radius centered at `center`, first vertex at
/// direction `phase`.
Configuration regularPolygon(std::size_t m, double radius = 1.0,
                             Vec2 center = {}, double phase = 0.0);

/// Equiangular set: m robots on equiangular rays with the given radii
/// (radii.size() == m). This is an m-regular set per Definition 1.
Configuration equiangularSet(std::span<const double> radii, Vec2 center = {},
                             double phase = 0.0);

/// Bi-angled (m/2-regular) set: m robots (m even) on rays with alternating
/// gaps alpha and beta = 4*pi/m - alpha.
Configuration biangularSet(std::size_t m, double alpha,
                           std::span<const double> radii, Vec2 center = {},
                           double phase = 0.0);

/// A configuration with rotational symmetricity exactly `rho`: `rings`
/// concentric rho-gons with random radii/phases (distinct per ring).
Configuration symmetricConfiguration(int rho, int rings, Rng& rng,
                                     double radius = 1.0);

/// A configuration with rho(P) = 1 but an axis of symmetry: `pairs` mirror
/// pairs plus `onAxis` points on the axis, at random radii. This is the
/// other half of Property 1's hypothesis — deterministic election is
/// impossible here too (the mirror twins are indistinguishable).
Configuration axialConfiguration(int pairs, int onAxis, Rng& rng,
                                 double radius = 1.0);

/// Random n-point pattern usable as a target F (general position).
Configuration randomPattern(std::size_t n, Rng& rng, double radius = 1.0);

}  // namespace apf::config
