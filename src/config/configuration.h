#pragma once

/// \file configuration.h
/// A configuration P: the multiset of robot positions at some instant,
/// expressed in some coordinate frame (global or a robot's local frame).

#include <cstdint>
#include <span>
#include <vector>

#include "geom/circle.h"
#include "geom/sec.h"
#include "geom/transform.h"
#include "geom/vec2.h"

namespace apf::config {

using geom::Circle;
using geom::Similarity;
using geom::Tol;
using geom::Vec2;

/// A point together with its multiplicity (>= 1).
struct MultiPoint {
  Vec2 pos;
  int count = 1;
};

/// Hit/miss counters for Configuration's memoized geometry (sec() and
/// weberPoint()). Thread-local — campaign workers are thread-confined, so a
/// per-run delta of these counters is deterministic for any APF_JOBS (the
/// engine folds that delta into sim::Metrics). The update is two non-atomic
/// integer adds; the cached fast path stays branch-plus-increment cheap.
struct GeomCacheCounters {
  std::uint64_t secHits = 0;
  std::uint64_t secMisses = 0;
  std::uint64_t weberHits = 0;
  std::uint64_t weberMisses = 0;
};

/// This thread's counters (mutable; reset by assigning {}).
GeomCacheCounters& geomCacheCounters();

/// True when some pair of points lies within tol of each other. Exactly the
/// boolean `Configuration(pts).hasMultiplicity(tol)` computes (see the proof
/// at Configuration::hasMultiplicity), but allocation-free and early-exit —
/// the form the engine's per-event safety check and the fuzzer's incremental
/// observer use on their live-point scratch buffers.
bool hasCoincidentPair(std::span<const Vec2> pts,
                       const Tol& tol = geom::kDefaultTol);

/// A configuration of robot positions. Positions are stored in a stable
/// order (index = robot identity inside the simulator; algorithms must not
/// rely on indices, they are anonymous from the algorithm's viewpoint).
/// Multiplicity points are represented by repeated positions.
///
/// The smallest enclosing circle and the Weber point (geometric median) are
/// memoized: `sec()` computes Welzl once, `weberPoint()` runs Weiszfeld
/// once, and every mutation (non-const operator[], push_back, assign,
/// releasePoints) invalidates both caches. Because the caches are filled
/// lazily from const methods, a Configuration instance is NOT safe to share
/// across threads unless the caches it will serve are warmed (call `sec()` /
/// `weberPoint()` once) before the instance becomes shared — after warming,
/// concurrent const access is read-only. Campaign workers (sim/campaign.h)
/// therefore operate on their own copies; copies carry the warmed caches
/// with them. See docs/PERFORMANCE.md.
class Configuration {
 public:
  Configuration() = default;
  explicit Configuration(std::vector<Vec2> pts) : pts_(std::move(pts)) {}

  Configuration(const Configuration&) = default;
  Configuration& operator=(const Configuration&) = default;
  // Moves transfer the caches and reset the source's: the moved-from object
  // has an empty point set, which a stale cached circle would misdescribe.
  Configuration(Configuration&& o) noexcept
      : pts_(std::move(o.pts_)),
        secCache_(o.secCache_),
        weberCache_(o.weberCache_),
        secValid_(o.secValid_),
        weberValid_(o.weberValid_) {
    o.secValid_ = false;
    o.weberValid_ = false;
  }
  Configuration& operator=(Configuration&& o) noexcept {
    pts_ = std::move(o.pts_);
    secCache_ = o.secCache_;
    weberCache_ = o.weberCache_;
    secValid_ = o.secValid_;
    weberValid_ = o.weberValid_;
    o.secValid_ = false;
    o.weberValid_ = false;
    return *this;
  }

  std::size_t size() const { return pts_.size(); }
  bool empty() const { return pts_.empty(); }
  const std::vector<Vec2>& points() const { return pts_; }
  std::span<const Vec2> span() const { return pts_; }
  const Vec2& operator[](std::size_t i) const { return pts_[i]; }
  /// Mutable access conservatively invalidates the geometry caches: the
  /// caller may write through the reference.
  Vec2& operator[](std::size_t i) {
    secValid_ = false;
    weberValid_ = false;
    return pts_[i];
  }
  void push_back(Vec2 p) {
    secValid_ = false;
    weberValid_ = false;
    pts_.push_back(p);
  }

  /// Replace the point set wholesale, adopting `pts`'s storage. Invalidates
  /// both geometry caches. Pairs with releasePoints() so a caller that
  /// refreshes a Configuration every cycle (the engine's snapshot path) can
  /// recycle one vector's capacity instead of allocating each time.
  void assign(std::vector<Vec2> pts) {
    secValid_ = false;
    weberValid_ = false;
    pts_ = std::move(pts);
  }

  /// Move the point storage out, leaving this configuration empty (and both
  /// caches invalid, since an empty set invalidates them by definition).
  std::vector<Vec2> releasePoints() {
    secValid_ = false;
    weberValid_ = false;
    return std::move(pts_);
  }

  /// Smallest enclosing circle C(P). Memoized; O(n) expected on the first
  /// call after a mutation, O(1) afterwards.
  Circle sec() const {
    auto& counters = geomCacheCounters();
    if (!secValid_) {
      ++counters.secMisses;
      secCache_ = geom::smallestEnclosingCircle(pts_);
      secValid_ = true;
    } else {
      ++counters.secHits;
    }
    return secCache_;
  }

  /// Weber point (geometric median) of P. Memoized like sec(): Weiszfeld
  /// runs once per mutation generation, O(1) afterwards. The paper's
  /// embedding target for patterns with an invariant center.
  Vec2 weberPoint() const;

  /// Distinct positions with multiplicities (tolerant grouping). Order is
  /// first-occurrence order.
  std::vector<MultiPoint> grouped(const Tol& tol = geom::kDefaultTol) const;

  /// True when some position appears more than once (tolerant).
  bool hasMultiplicity(const Tol& tol = geom::kDefaultTol) const;

  /// The configuration with point index i removed.
  Configuration without(std::size_t i) const;

  /// The configuration mapped through a similarity transform.
  Configuration transformed(const Similarity& t) const;

  /// Similarity transform that maps this configuration's SEC to the unit
  /// circle at the origin (translation + scaling only; no rotation, so the
  /// result depends on the source frame's orientation as the model demands).
  Similarity normalizingTransform() const;

  /// Distance from p to the closest point of the configuration.
  double distanceTo(Vec2 p) const;

  /// Index of the point closest to p (first of ties). size() when empty.
  std::size_t closestIndex(Vec2 p) const;

 private:
  std::vector<Vec2> pts_;
  mutable Circle secCache_;
  mutable Vec2 weberCache_;
  mutable bool secValid_ = false;
  mutable bool weberValid_ = false;
};

/// lP: the distance to `center` of the second-closest distinct distance ring.
/// Matches the paper's l_P (used via l_F on the pattern): with distances
/// d1 <= d2 <= ... to the center, returns the second smallest *distinct*
/// value (or d1 when all are equal / only one point).
double secondClosestDistance(const Configuration& p, Vec2 center,
                             const Tol& tol = geom::kDefaultTol);

}  // namespace apf::config
