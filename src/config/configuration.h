#pragma once

/// \file configuration.h
/// A configuration P: the multiset of robot positions at some instant,
/// expressed in some coordinate frame (global or a robot's local frame).

#include <span>
#include <vector>

#include "geom/circle.h"
#include "geom/sec.h"
#include "geom/transform.h"
#include "geom/vec2.h"

namespace apf::config {

using geom::Circle;
using geom::Similarity;
using geom::Tol;
using geom::Vec2;

/// A point together with its multiplicity (>= 1).
struct MultiPoint {
  Vec2 pos;
  int count = 1;
};

/// A configuration of robot positions. Positions are stored in a stable
/// order (index = robot identity inside the simulator; algorithms must not
/// rely on indices, they are anonymous from the algorithm's viewpoint).
/// Multiplicity points are represented by repeated positions.
///
/// The smallest enclosing circle is memoized: `sec()` computes Welzl once
/// and every mutation (non-const operator[], push_back) invalidates the
/// cache. Because the cache is filled lazily from a const method, a
/// Configuration instance is NOT safe to share across threads unless the
/// cache is warmed (call `sec()` once) before the instance becomes shared —
/// after warming, concurrent const access is read-only. Campaign workers
/// (sim/campaign.h) therefore operate on their own copies; copies carry the
/// warmed cache with them. See docs/PERFORMANCE.md.
class Configuration {
 public:
  Configuration() = default;
  explicit Configuration(std::vector<Vec2> pts) : pts_(std::move(pts)) {}

  Configuration(const Configuration&) = default;
  Configuration& operator=(const Configuration&) = default;
  // Moves transfer the cache and reset the source's: the moved-from object
  // has an empty point set, which a stale cached circle would misdescribe.
  Configuration(Configuration&& o) noexcept
      : pts_(std::move(o.pts_)), secCache_(o.secCache_), secValid_(o.secValid_) {
    o.secValid_ = false;
  }
  Configuration& operator=(Configuration&& o) noexcept {
    pts_ = std::move(o.pts_);
    secCache_ = o.secCache_;
    secValid_ = o.secValid_;
    o.secValid_ = false;
    return *this;
  }

  std::size_t size() const { return pts_.size(); }
  bool empty() const { return pts_.empty(); }
  const std::vector<Vec2>& points() const { return pts_; }
  std::span<const Vec2> span() const { return pts_; }
  const Vec2& operator[](std::size_t i) const { return pts_[i]; }
  /// Mutable access conservatively invalidates the SEC cache: the caller
  /// may write through the reference.
  Vec2& operator[](std::size_t i) {
    secValid_ = false;
    return pts_[i];
  }
  void push_back(Vec2 p) {
    secValid_ = false;
    pts_.push_back(p);
  }

  /// Smallest enclosing circle C(P). Memoized; O(n) expected on the first
  /// call after a mutation, O(1) afterwards.
  Circle sec() const {
    if (!secValid_) {
      secCache_ = geom::smallestEnclosingCircle(pts_);
      secValid_ = true;
    }
    return secCache_;
  }

  /// Distinct positions with multiplicities (tolerant grouping). Order is
  /// first-occurrence order.
  std::vector<MultiPoint> grouped(const Tol& tol = geom::kDefaultTol) const;

  /// True when some position appears more than once (tolerant).
  bool hasMultiplicity(const Tol& tol = geom::kDefaultTol) const;

  /// The configuration with point index i removed.
  Configuration without(std::size_t i) const;

  /// The configuration mapped through a similarity transform.
  Configuration transformed(const Similarity& t) const;

  /// Similarity transform that maps this configuration's SEC to the unit
  /// circle at the origin (translation + scaling only; no rotation, so the
  /// result depends on the source frame's orientation as the model demands).
  Similarity normalizingTransform() const;

  /// Distance from p to the closest point of the configuration.
  double distanceTo(Vec2 p) const;

  /// Index of the point closest to p (first of ties). size() when empty.
  std::size_t closestIndex(Vec2 p) const;

 private:
  std::vector<Vec2> pts_;
  mutable Circle secCache_;
  mutable bool secValid_ = false;
};

/// lP: the distance to `center` of the second-closest distinct distance ring.
/// Matches the paper's l_P (used via l_F on the pattern): with distances
/// d1 <= d2 <= ... to the center, returns the second smallest *distinct*
/// value (or d1 when all are equal / only one point).
double secondClosestDistance(const Configuration& p, Vec2 center,
                             const Tol& tol = geom::kDefaultTol);

}  // namespace apf::config
