#pragma once

/// \file similarity.h
/// The paper's similarity relation on point sets: A ~ B when B can be
/// obtained from A by translation, scaling, rotation, or symmetry
/// (reflection). Multiplicity points are honoured: both sides are matched as
/// multisets.

#include <optional>

#include "config/configuration.h"

namespace apf::config {

/// A similarity transform mapping configuration A onto configuration B
/// (multiset-exactly, up to tolerance), or nullopt when none exists.
/// Set allowReflection = false to test direct similarity only.
std::optional<Similarity> findSimilarity(const Configuration& a,
                                         const Configuration& b,
                                         bool allowReflection = true,
                                         const Tol& tol = geom::kDefaultTol);

/// True when A ~ B.
bool similar(const Configuration& a, const Configuration& b,
             const Tol& tol = geom::kDefaultTol);

/// Multiset coincidence of two same-size configurations (no transform).
bool coincident(const Configuration& a, const Configuration& b,
                const Tol& tol = geom::kDefaultTol);

}  // namespace apf::config
