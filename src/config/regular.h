#pragma once

/// \file regular.h
/// Regular sets (paper Definitions 1 and 2).
///
/// Definition 1: a set M of m >= 2 robots is m-regular (equiangular) or
/// m/2-regular ("bi-angled") around a center c when its m distinct
/// half-lines from c have all gaps equal to alpha, or alternating
/// alpha/beta. Definition 2 singles out *the* regular set reg(P) of a
/// configuration: the whole configuration when it is regular (center = its
/// Weber point), else the largest view-prefix Q_i of the non-SEC-holding
/// robots that (a) is regular around c(P) = the SEC center, (b) has
/// rotational order dividing rho(P \ Q_i), and (c), when bi-angled, has its
/// virtual axes as symmetry axes of P \ Q_i.

#include <optional>
#include <span>
#include <vector>

#include "config/configuration.h"
#include "geom/weber.h"

namespace apf::config {

/// A detected regular set.
struct RegularSetInfo {
  /// Indices (into P) of the set's robots, ordered by grid ray: indices[k]
  /// lies on grid ray k.
  std::vector<std::size_t> indices;
  /// The fitted angular grid (numRays == indices.size()).
  geom::AngularGrid grid;
  bool biangular = false;
  /// True when the regular set is the entire configuration.
  bool wholeConfig = false;

  /// Rotational order of the set's direction grid: m for equiangular sets,
  /// m/2 for bi-angled ones. This is the divisor in Def. 2 condition (b).
  int rotationalOrder() const {
    const int m = static_cast<int>(indices.size());
    return biangular ? m / 2 : m;
  }
};

/// Definition 1 around a *known* center: checks whether the robots at
/// `subset` indices of p form an equiangular or bi-angled set centered at c.
std::optional<RegularSetInfo> checkRegularKnownCenter(
    const Configuration& p, std::span<const std::size_t> subset, Vec2 c,
    const Tol& tol = geom::kDefaultTol);

/// Definition 1 with a free center: checks whether the *whole* configuration
/// is a regular set. The center is recovered via the Weber point and refined
/// by a Gauss-Newton angular-grid fit.
std::optional<RegularSetInfo> checkRegularFreeCenter(
    const Configuration& p, const Tol& tol = geom::kDefaultTol);

/// Definition 2: reg(P). Returns nullopt when P contains no regular set.
std::optional<RegularSetInfo> regularSetOf(const Configuration& p,
                                           const Tol& tol = geom::kDefaultTol);

/// The paper's c(P): the regular set's center when the whole configuration
/// is regular, otherwise the center of the smallest enclosing circle.
Vec2 centerOf(const Configuration& p, const Tol& tol = geom::kDefaultTol);

/// Directions (mod pi) of the virtual axes of symmetry of a bi-angled grid:
/// the bisectors of the gaps between consecutive rays.
std::vector<double> virtualAxes(const geom::AngularGrid& grid);

}  // namespace apf::config
