#pragma once

/// \file symmetry.h
/// Geometric symmetry of configurations: rotational symmetricity rho(P) and
/// axes of symmetry, both detected directly (rotate/reflect the multiset and
/// test coincidence) rather than through view comparison — more robust
/// numerically, and cross-checked against the view machinery in tests.

#include <vector>

#include "config/configuration.h"

namespace apf::config {

/// True when rotating the configuration by `angle` radians around `center`
/// maps the multiset of positions onto itself (tolerant matching).
bool rotationMapsToSelf(const Configuration& p, Vec2 center, double angle,
                        const Tol& tol = geom::kDefaultTol);

/// True when reflecting across the line through `center` with direction
/// angle `axisDir` maps the multiset onto itself.
bool reflectionMapsToSelf(const Configuration& p, Vec2 center, double axisDir,
                          const Tol& tol = geom::kDefaultTol);

/// Rotational symmetricity rho(P) around `center`: the largest m >= 1 such
/// that rotation by 2*pi/m maps P onto itself. For a robot configuration
/// with center not occupied, rho(P) divides |P|.
int symmetricity(const Configuration& p, Vec2 center,
                 const Tol& tol = geom::kDefaultTol);

/// Direction angles (in [0, pi)) of all axes of symmetry of P through
/// `center`. Empty when P has no axial symmetry about that point.
std::vector<double> symmetryAxes(const Configuration& p, Vec2 center,
                                 const Tol& tol = geom::kDefaultTol);

}  // namespace apf::config
