#include "config/rays.h"

#include <algorithm>
#include <cmath>

#include "geom/angle.h"

namespace apf::config {

std::vector<double> rayDirections(const Configuration& m, Vec2 c,
                                  const Tol& tol) {
  std::vector<double> dirs;
  dirs.reserve(m.size());
  for (const Vec2& q : m.points()) {
    const Vec2 d = q - c;
    if (d.norm() <= tol.dist) continue;
    dirs.push_back(geom::norm2pi(d.arg()));
  }
  std::sort(dirs.begin(), dirs.end());
  std::vector<double> out;
  for (double a : dirs) {
    if (out.empty() || a - out.back() > tol.ang) out.push_back(a);
  }
  if (out.size() >= 2 && out.front() + geom::kTwoPi - out.back() <= tol.ang) {
    out.pop_back();
  }
  return out;
}

double alphaMin(const Configuration& m, Vec2 c, const Tol& tol) {
  const auto dirs = rayDirections(m, c, tol);
  if (dirs.size() < 2) return geom::kTwoPi;
  double best = geom::kTwoPi;
  for (std::size_t k = 0; k < dirs.size(); ++k) {
    const double next = (k + 1 < dirs.size()) ? dirs[k + 1]
                                              : dirs[0] + geom::kTwoPi;
    // The angle between half-lines is the gap or its reflex complement,
    // whichever is smaller; gaps are already in (0, 2pi).
    const double gap = next - dirs[k];
    best = std::min(best, std::min(gap, geom::kTwoPi - gap));
  }
  return best;
}

double alphaMinAt(Vec2 p, const Configuration& m, Vec2 c, const Tol& tol) {
  const Vec2 dp = p - c;
  if (dp.norm() <= tol.dist) return geom::kTwoPi;
  const double ap = geom::norm2pi(dp.arg());
  double best = geom::kTwoPi;
  for (const Vec2& q : m.points()) {
    const Vec2 d = q - c;
    if (d.norm() <= tol.dist) continue;
    const double a = geom::angDist(ap, geom::norm2pi(d.arg()));
    if (a > tol.ang) best = std::min(best, a);
  }
  return best;
}

}  // namespace apf::config
