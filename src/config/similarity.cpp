#include "config/similarity.h"

#include <algorithm>
#include <cmath>

#include "geom/angle.h"

namespace apf::config {
namespace {

bool matchMultiset(const std::vector<Vec2>& a, const std::vector<Vec2>& b,
                   const Tol& tol) {
  std::vector<bool> used(b.size(), false);
  for (const Vec2& p : a) {
    bool found = false;
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (!used[j] && geom::nearlyEqual(p, b[j], tol)) {
        used[j] = true;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace

bool coincident(const Configuration& a, const Configuration& b,
                const Tol& tol) {
  return a.size() == b.size() && matchMultiset(a.points(), b.points(), tol);
}

std::optional<Similarity> findSimilarity(const Configuration& a,
                                         const Configuration& b,
                                         bool allowReflection,
                                         const Tol& tol) {
  if (a.size() != b.size()) return std::nullopt;
  if (a.empty()) return Similarity::identity();

  const Circle ca = a.sec(), cb = b.sec();
  if (ca.radius <= tol.dist) {
    // All of A coincides; similar iff all of B coincides.
    if (cb.radius <= tol.dist) {
      return Similarity::translation(cb.center - ca.center);
    }
    return std::nullopt;
  }
  if (cb.radius <= tol.dist) return std::nullopt;
  const double s = cb.radius / ca.radius;

  // Cheap necessary condition: the sorted multisets of SEC-centered radii
  // must match (rotation/reflection-invariant). Rejects most non-similar
  // pairs in O(n log n) before any rotation is tried.
  {
    std::vector<double> ra, rb;
    ra.reserve(a.size());
    rb.reserve(b.size());
    for (const Vec2& p : a.points()) ra.push_back(geom::dist(p, ca.center) / ca.radius);
    for (const Vec2& p : b.points()) rb.push_back(geom::dist(p, cb.center) / cb.radius);
    std::sort(ra.begin(), ra.end());
    std::sort(rb.begin(), rb.end());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      // Radii can differ by up to the point tolerance even for a perfect
      // match; use a slightly relaxed bound.
      if (std::fabs(ra[i] - rb[i]) > 2.0 * tol.dist + 1e-12) {
        return std::nullopt;
      }
    }
  }

  // Normalize both to unit SEC at the origin.
  std::vector<Vec2> na, nb;
  na.reserve(a.size());
  nb.reserve(b.size());
  for (const Vec2& p : a.points()) na.push_back((p - ca.center) / ca.radius);
  for (const Vec2& p : b.points()) nb.push_back((p - cb.center) / cb.radius);

  // Reference: a point of A on the SEC boundary (always exists).
  std::size_t ref = 0;
  double refNorm = 0.0;
  for (std::size_t i = 0; i < na.size(); ++i) {
    if (na[i].norm() > refNorm) {
      refNorm = na[i].norm();
      ref = i;
    }
  }
  const double refArg = na[ref].arg();

  const int reflections = allowReflection ? 2 : 1;
  for (int refl = 0; refl < reflections; ++refl) {
    std::vector<Vec2> base = na;
    if (refl == 1) {
      for (Vec2& p : base) p.y = -p.y;
    }
    const double baseRefArg = (refl == 1) ? -refArg : refArg;
    for (const Vec2& target : nb) {
      if (!geom::distEq(target.norm(), refNorm, tol)) continue;
      const double theta = target.arg() - baseRefArg;
      std::vector<Vec2> rotated;
      rotated.reserve(base.size());
      for (const Vec2& p : base) rotated.push_back(p.rotated(theta));
      if (matchMultiset(rotated, nb, tol)) {
        // Full transform: x -> cb.center + s * R(theta) * M(refl) * (x - ca.center)
        const Similarity toOrigin = Similarity::translation(-ca.center);
        const Similarity lin(geom::norm2pi(theta), s, refl == 1, Vec2{});
        const Similarity toB = Similarity::translation(cb.center);
        return toB * lin * toOrigin;
      }
    }
  }
  return std::nullopt;
}

bool similar(const Configuration& a, const Configuration& b, const Tol& tol) {
  return findSimilarity(a, b, true, tol).has_value();
}

}  // namespace apf::config
