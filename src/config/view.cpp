#include "config/view.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "geom/angle.h"

namespace apf::config {

std::int64_t viewQuantize(double x) {
  return std::llround(x / kViewQuantum);
}

int compareViews(const View& a, const View& b) {
  if (a.atCenter != b.atCenter) return a.atCenter ? 1 : -1;
  if (a.key != b.key) return a.key < b.key ? -1 : 1;
  return 0;
}

namespace {

// Polar coordinates are (radius, angle) — radius FIRST, as in the paper's
// "r is at coordinate (1, 0)". Radii are normalized by |r|, so a robot
// closer to the center sees every other robot with a larger radial
// coordinate and its sorted sequence is lexicographically greater: the
// innermost robots have the greatest views. (Property 2's proof and the
// election algorithm both rely on exactly this.)
struct Entry {
  std::int64_t rho;
  std::int64_t theta;
  std::int64_t count;
  auto operator<=>(const Entry&) const = default;
};

std::vector<std::int64_t> flatten(std::vector<Entry> entries) {
  std::sort(entries.begin(), entries.end());
  std::vector<std::int64_t> key;
  key.reserve(entries.size() * 3);
  for (const Entry& e : entries) {
    key.push_back(e.rho);
    key.push_back(e.theta);
    key.push_back(e.count);
  }
  return key;
}

// The grouping of p is view-independent, so allViews computes it once and
// every robot's view is built from the shared copy (O(n^2) for all views
// instead of O(n^2) *per view* with grouped()'s quadratic scan inside).
View localViewGrouped(const Configuration& p, std::size_t i,
                      const std::vector<MultiPoint>& groups, Vec2 center,
                      bool withMultiplicity, const Tol& tol) {
  const Vec2 r = p[i];
  const double rDist = geom::dist(r, center);
  if (rDist <= tol.dist) return View{{}, 0, true};
  const double rArg = (r - center).arg();

  std::array<std::vector<Entry>, 2> seqs;  // [0] = ccw, [1] = cw
  seqs[0].reserve(groups.size());
  seqs[1].reserve(groups.size());
  for (const MultiPoint& g : groups) {
    const double d = geom::dist(g.pos, center);
    const std::int64_t rho = viewQuantize(d / rDist);
    const std::int64_t count = withMultiplicity ? g.count : 1;
    double rel = 0.0;
    if (d > tol.dist) rel = geom::norm2pi((g.pos - center).arg() - rArg);
    // ccw orientation measures rel; cw measures the opposite sweep. Both are
    // quantized from doubles (not derived by integer subtraction) so the
    // arithmetic mirrors exactly what a reflected frame would compute.
    const double relCw = (rel == 0.0) ? 0.0 : geom::kTwoPi - rel;
    const std::int64_t full = viewQuantize(geom::kTwoPi);
    const std::int64_t tCcw = viewQuantize(rel) % full;
    const std::int64_t tCw = viewQuantize(relCw) % full;
    seqs[0].push_back({rho, tCcw, count});
    seqs[1].push_back({rho, tCw, count});
  }

  std::vector<std::int64_t> keyCcw = flatten(std::move(seqs[0]));
  std::vector<std::int64_t> keyCw = flatten(std::move(seqs[1]));
  if (keyCcw == keyCw) return View{std::move(keyCcw), 0, false};
  if (keyCcw > keyCw) return View{std::move(keyCcw), +1, false};
  return View{std::move(keyCw), -1, false};
}

}  // namespace

View localView(const Configuration& p, std::size_t i, Vec2 center,
               bool withMultiplicity, const Tol& tol) {
  return localViewGrouped(p, i, p.grouped(tol), center, withMultiplicity, tol);
}

std::vector<View> allViews(const Configuration& p, Vec2 center,
                           bool withMultiplicity, const Tol& tol) {
  const auto groups = p.grouped(tol);
  std::vector<View> out;
  out.reserve(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    out.push_back(
        localViewGrouped(p, i, groups, center, withMultiplicity, tol));
  }
  return out;
}

std::vector<std::size_t> byViewDescending(const Configuration& p, Vec2 center,
                                          bool withMultiplicity,
                                          const Tol& tol) {
  const auto views = allViews(p, center, withMultiplicity, tol);
  std::vector<std::size_t> idx(p.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return compareViews(views[a], views[b]) > 0;
  });
  return idx;
}

std::vector<std::size_t> maxViewRobots(const Configuration& p, Vec2 center,
                                       bool withMultiplicity, const Tol& tol) {
  const auto views = allViews(p, center, withMultiplicity, tol);
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < p.size(); ++i) {
    bool isMax = true;
    for (std::size_t j = 0; j < p.size(); ++j) {
      if (compareViews(views[j], views[i]) > 0) {
        isMax = false;
        break;
      }
    }
    if (isMax) out.push_back(i);
  }
  return out;
}

}  // namespace apf::config
