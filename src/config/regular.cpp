#include "config/regular.h"

#include <algorithm>
#include <cmath>

#include "config/symmetry.h"
#include "config/view.h"
#include "geom/angle.h"
#include "geom/sec.h"

namespace apf::config {
namespace {

struct DirEntry {
  double angle;
  std::size_t index;
};

/// Sorted (angle, original index) entries of `subset` around c; nullopt when
/// a robot coincides with c or two robots share a ray.
std::optional<std::vector<DirEntry>> sortedDirections(
    const Configuration& p, std::span<const std::size_t> subset, Vec2 c,
    const Tol& tol) {
  std::vector<DirEntry> dirs;
  dirs.reserve(subset.size());
  for (std::size_t i : subset) {
    const Vec2 d = p[i] - c;
    if (d.norm() <= tol.dist) return std::nullopt;
    dirs.push_back({geom::norm2pi(d.arg()), i});
  }
  std::sort(dirs.begin(), dirs.end(),
            [](const DirEntry& a, const DirEntry& b) { return a.angle < b.angle; });
  for (std::size_t k = 0; k < dirs.size(); ++k) {
    const double next =
        (k + 1 < dirs.size()) ? dirs[k + 1].angle : dirs[0].angle + geom::kTwoPi;
    if (next - dirs[k].angle <= tol.ang) return std::nullopt;  // shared ray
  }
  return dirs;
}

std::vector<double> gapsOf(const std::vector<DirEntry>& dirs) {
  std::vector<double> gaps(dirs.size());
  for (std::size_t k = 0; k < dirs.size(); ++k) {
    const double next =
        (k + 1 < dirs.size()) ? dirs[k + 1].angle : dirs[0].angle + geom::kTwoPi;
    gaps[k] = next - dirs[k].angle;
  }
  return gaps;
}

/// Classify sorted gaps as equiangular or bi-angled starting at offset s.
/// Returns {ok, alpha, beta, startOffset}; equiangular reports alpha == beta.
struct GapClass {
  bool ok = false;
  double alpha = 0.0;
  double beta = 0.0;
  std::size_t start = 0;  ///< sorted index that becomes grid ray 0
};

GapClass classifyGaps(const std::vector<double>& gaps, double angTol) {
  const std::size_t m = gaps.size();
  const double equi = geom::kTwoPi / static_cast<double>(m);
  bool allEqui = true;
  for (double g : gaps) {
    if (std::fabs(g - equi) > angTol) {
      allEqui = false;
      break;
    }
  }
  if (allEqui) return {true, equi, equi, 0};
  // Bi-angled sets need an even ray count. m == 2 is legitimate (any
  // non-diametral pair is a bi-angled 2-point set — Property 1's witness
  // for axially symmetric configurations, whose top view class is a mirror
  // pair); Definition 2's complement conditions then do the filtering.
  if (m < 2 || m % 2 != 0) return {};
  for (std::size_t s = 0; s < 2; ++s) {
    double a = 0.0, b = 0.0;
    for (std::size_t k = 0; k < m; ++k) {
      ((k % 2 == 0) ? a : b) += gaps[(s + k) % m];
    }
    a /= static_cast<double>(m / 2);
    b /= static_cast<double>(m / 2);
    bool ok = true;
    for (std::size_t k = 0; k < m && ok; ++k) {
      const double want = (k % 2 == 0) ? a : b;
      ok = std::fabs(gaps[(s + k) % m] - want) <= angTol;
    }
    // Canonical representation: alpha < beta.
    if (ok && a < b - angTol) return {true, a, b, s};
  }
  return {};
}

RegularSetInfo makeInfo(const std::vector<DirEntry>& dirs, const GapClass& cls,
                        Vec2 c, bool wholeConfig) {
  const std::size_t m = dirs.size();
  RegularSetInfo info;
  info.biangular = std::fabs(cls.alpha - cls.beta) > 1e-12;
  info.wholeConfig = wholeConfig;
  info.grid.center = c;
  info.grid.numRays = static_cast<int>(m);
  info.grid.alpha = cls.alpha;
  info.grid.beta = cls.beta;
  info.grid.theta0 = dirs[cls.start].angle;
  info.indices.reserve(m);
  for (std::size_t k = 0; k < m; ++k) {
    info.indices.push_back(dirs[(cls.start + k) % m].index);
  }
  return info;
}

}  // namespace

std::optional<RegularSetInfo> checkRegularKnownCenter(
    const Configuration& p, std::span<const std::size_t> subset, Vec2 c,
    const Tol& tol) {
  if (subset.size() < 2) return std::nullopt;
  const auto dirs = sortedDirections(p, subset, c, tol);
  if (!dirs) return std::nullopt;
  const auto cls = classifyGaps(gapsOf(*dirs), tol.ang);
  if (!cls.ok) return std::nullopt;
  return makeInfo(*dirs, cls, c, subset.size() == p.size());
}

std::optional<RegularSetInfo> checkRegularFreeCenter(const Configuration& p,
                                                     const Tol& tol) {
  const std::size_t n = p.size();
  if (n < 3) return std::nullopt;
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;

  const Vec2 w = p.weberPoint();
  auto dirs = sortedDirections(p, all, w, tol);
  if (!dirs) return std::nullopt;
  // Loose classification first (the Weiszfeld center carries iteration
  // error), then Gauss-Newton refinement, then a strict re-check.
  const double looseTol = 1e-4;
  const auto cls = classifyGaps(gapsOf(*dirs), looseTol);
  if (!cls.ok) return std::nullopt;
  const bool biangular = std::fabs(cls.alpha - cls.beta) > looseTol;

  std::vector<Vec2> pts;
  std::vector<int> rayIndex;
  pts.reserve(n);
  rayIndex.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    pts.push_back(p[(*dirs)[(cls.start + k) % n].index]);
    rayIndex.push_back(static_cast<int>(k));
  }
  geom::AngularGrid init;
  init.center = w;
  init.theta0 = (*dirs)[cls.start].angle;
  init.alpha = cls.alpha;
  init.beta = cls.beta;
  init.numRays = static_cast<int>(n);
  const auto fit = geom::fitAngularGrid(pts, rayIndex, static_cast<int>(n),
                                        biangular, init);
  if (!fit || fit->maxResidual > tol.ang) return std::nullopt;

  // Re-derive the info around the refined center so ray order and the
  /// canonical alpha < beta convention are consistent.
  auto refined = sortedDirections(p, all, fit->grid.center, tol);
  if (!refined) return std::nullopt;
  const auto cls2 = classifyGaps(gapsOf(*refined), tol.ang * 10.0);
  if (!cls2.ok) return std::nullopt;
  return makeInfo(*refined, cls2, fit->grid.center, true);
}

std::optional<RegularSetInfo> regularSetOf(const Configuration& p,
                                           const Tol& tol) {
  if (auto whole = checkRegularFreeCenter(p, tol)) return whole;

  // Hoisted once per call; repeated sec() lookups below and in the callers
  // that follow (centerOf, Definition-3 verification on the same P) hit the
  // Configuration-level memo instead of re-running Welzl.
  const Circle sec = p.sec();
  const Vec2 c = sec.center;
  // Def. 2 requires c(P) not occupied.
  for (const Vec2& q : p.points()) {
    if (geom::dist(q, c) <= tol.dist) return std::nullopt;
  }

  const auto views = allViews(p, c, /*withMultiplicity=*/false, tol);
  const auto order = byViewDescending(p, c, /*withMultiplicity=*/false, tol);
  std::vector<std::size_t> nonHolders;
  for (std::size_t i : order) {
    if (!geom::holdsSec(p.span(), i, tol)) nonHolders.push_back(i);
  }

  std::optional<RegularSetInfo> best;
  for (std::size_t i = 2; i <= nonHolders.size(); ++i) {
    // Only cut at view-class boundaries: a prefix that splits a tie class of
    // equivalent robots is not uniquely defined (cf. Property 1's proof,
    // which always takes whole classes).
    if (i < nonHolders.size() &&
        compareViews(views[nonHolders[i - 1]], views[nonHolders[i]]) == 0) {
      continue;
    }
    std::span<const std::size_t> prefix(nonHolders.data(), i);
    auto info = checkRegularKnownCenter(p, prefix, c, tol);
    if (!info) continue;

    std::vector<Vec2> compPts;
    for (std::size_t j = 0; j < p.size(); ++j) {
      if (std::find(prefix.begin(), prefix.end(), j) == prefix.end()) {
        compPts.push_back(p[j]);
      }
    }
    const Configuration comp(std::move(compPts));
    const int rho = symmetricity(comp, c, tol);
    if (rho % info->rotationalOrder() != 0) continue;
    if (info->biangular) {
      bool axesOk = true;
      for (double axis : virtualAxes(info->grid)) {
        if (!reflectionMapsToSelf(comp, c, axis, tol)) {
          axesOk = false;
          break;
        }
      }
      if (!axesOk) continue;
    }
    best = std::move(info);  // keep the largest prefix that qualifies
  }
  return best;
}

Vec2 centerOf(const Configuration& p, const Tol& tol) {
  if (auto whole = checkRegularFreeCenter(p, tol)) return whole->grid.center;
  return p.sec().center;
}

std::vector<double> virtualAxes(const geom::AngularGrid& grid) {
  std::vector<double> axes;
  for (int k = 0; k < grid.numRays; ++k) {
    const double gap = (k % 2 == 0) ? grid.alpha : grid.beta;
    double a = std::fmod(grid.rayDir(k) + gap / 2.0, geom::kPi);
    if (a < 0) a += geom::kPi;
    axes.push_back(a);
  }
  std::sort(axes.begin(), axes.end());
  axes.erase(std::unique(axes.begin(), axes.end(),
                         [](double a, double b) { return std::fabs(a - b) < 1e-9; }),
             axes.end());
  return axes;
}

}  // namespace apf::config
