#pragma once

/// \file canonical.h
/// Similarity-invariant signatures of configurations: two configurations
/// get the same signature iff they are (quantized-)similar — equal up to
/// translation, rotation, uniform scale, and reflection. Useful for
/// deduplicating configurations across a campaign, memoizing analyses, and
/// fast similar-or-not prechecks.
///
/// Construction: normalize by the SEC (center -> origin, radius -> 1),
/// then take the lexicographically greatest quantized coordinate sequence
/// over all candidate rotations (each boundary point to angle 0) and both
/// reflections — a canonical form in the orbit of the similarity group.

#include <cstdint>
#include <string>
#include <vector>

#include "config/configuration.h"

namespace apf::config {

/// The canonical signature: quantized (radius, angle) pairs in canonical
/// rotation/reflection, sorted. Equality <=> similarity (at quantization
/// resolution).
struct CanonicalSignature {
  std::vector<std::int64_t> key;
  bool operator==(const CanonicalSignature&) const = default;
  bool operator<(const CanonicalSignature& o) const { return key < o.key; }

  /// Short hex digest (FNV-1a over the key) for logging.
  std::string digest() const;
};

CanonicalSignature canonicalSignature(const Configuration& p,
                                      const Tol& tol = geom::kDefaultTol);

}  // namespace apf::config
