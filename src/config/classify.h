#pragma once

/// \file classify.h
/// One-call structural classification of a configuration: everything the
/// paper's algorithms can "see" — symmetricity, axes, regular / shifted
/// sets, SEC holders — gathered into a report. Useful as a public API
/// entry point, for the CLI's --analyze mode, and for debugging runs.

#include <optional>
#include <string>

#include "config/configuration.h"
#include "config/regular.h"
#include "config/shifted.h"

namespace apf::config {

struct ClassifyReport {
  std::size_t n = 0;
  bool hasMultiplicity = false;
  geom::Circle sec;
  /// Rotational symmetricity around the SEC center.
  int symmetricity = 1;
  /// Directions (mod pi) of symmetry axes through the SEC center.
  std::vector<double> axes;
  /// Indices of robots that hold C(P).
  std::vector<std::size_t> secHolders;
  /// reg(P) per Definition 2 (empty when none).
  std::optional<RegularSetInfo> regular;
  /// The shifted regular set per Definition 3 (empty when none).
  std::optional<ShiftedSetInfo> shifted;
  /// Indices of max-view robots (around the regular-aware center).
  std::vector<std::size_t> maxView;

  /// Human-readable multi-line summary.
  std::string describe() const;
};

/// Runs the full structural analysis. Cost is dominated by the shifted-set
/// detection; pass analyzeShifted = false to skip it.
ClassifyReport classify(const Configuration& p, bool analyzeShifted = true,
                        const Tol& tol = geom::kDefaultTol);

}  // namespace apf::config
