#pragma once

/// \file serialize.h
/// Plain-text (de)serialization of configurations: one "x y" pair per line,
/// '#' comments allowed. Round-trips at full double precision. Used by the
/// CLI tool to load custom starts/patterns and by tests for golden files.

#include <iosfwd>
#include <string>

#include "config/configuration.h"

namespace apf::io {

/// Writes one point per line at full precision.
void writeConfiguration(std::ostream& os, const config::Configuration& c);
void saveConfiguration(const std::string& path,
                       const config::Configuration& c);

/// Parses points; throws std::invalid_argument on malformed input.
config::Configuration readConfiguration(std::istream& is);
config::Configuration loadConfiguration(const std::string& path);

/// Parses from a string (convenience for tests).
config::Configuration parseConfiguration(const std::string& text);

}  // namespace apf::io
