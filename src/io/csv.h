#pragma once

/// \file csv.h
/// Minimal CSV writer used by the benchmark harness to dump experiment
/// rows (the same rows are also printed as aligned tables on stdout).

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace apf::io {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Pass an empty path
  /// to collect rows in memory only (str()). Throws std::runtime_error if
  /// the file cannot be opened — experiment data must never be lost
  /// silently.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row; each cell is already formatted. Throws
  /// std::runtime_error if the underlying write fails.
  void row(const std::vector<std::string>& cells);

  /// All emitted content.
  std::string str() const { return buffer_.str(); }

 private:
  void emit(const std::vector<std::string>& cells);
  std::string path_;
  std::ofstream file_;
  std::ostringstream buffer_;
};

/// Formats a double with fixed precision for CSV cells.
std::string fmt(double v, int precision = 3);

}  // namespace apf::io
