#pragma once

/// \file patterns.h
/// Named target-pattern library for examples, tests, and benchmarks. Every
/// generator returns exactly n points; patterns marked "multiplicity" may
/// repeat points and require multiplicity detection to be formable.

#include <string>
#include <vector>

#include "config/configuration.h"

namespace apf::io {

/// A regular n-gon (symmetricity n — the hardest symmetry class).
config::Configuration polygonPattern(std::size_t n);

/// A k-pointed star: alternating outer/inner vertices (n rounded to even).
config::Configuration starPattern(std::size_t n);

/// Roughly square grid of n points.
config::Configuration gridPattern(std::size_t n);

/// Archimedean spiral sample of n points (asymmetric, distinct radii).
config::Configuration spiralPattern(std::size_t n);

/// Outer ring plus a dense core cluster.
config::Configuration ringCorePattern(std::size_t n);

/// Seeded random pattern (general position).
config::Configuration randomPatternByName(std::size_t n, std::uint64_t seed);

/// Pattern with a multiplicity point away from the center: an (n-2)-gon
/// plus a doubled interior point.
config::Configuration multiplicityPattern(std::size_t n);

/// Pattern whose CENTER is a multiplicity point (appendix C's hard case):
/// an (n-2)-gon plus two robots at the center.
config::Configuration centerMultiplicityPattern(std::size_t n);

/// Lookup by name: "polygon", "star", "grid", "spiral", "ringcore",
/// "random". Throws std::invalid_argument for unknown names.
config::Configuration patternByName(const std::string& name, std::size_t n,
                                    std::uint64_t seed = 7);

/// All non-multiplicity pattern names (for sweeps).
std::vector<std::string> allPatternNames();

}  // namespace apf::io
