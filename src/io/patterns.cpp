#include "io/patterns.h"

#include <cmath>
#include <stdexcept>

#include "config/generator.h"
#include "geom/angle.h"

namespace apf::io {

using config::Configuration;
using geom::kTwoPi;
using geom::Vec2;

Configuration polygonPattern(std::size_t n) {
  return config::regularPolygon(n, 1.0);
}

Configuration starPattern(std::size_t n) {
  Configuration out;
  for (std::size_t k = 0; k < n; ++k) {
    const double a = kTwoPi * static_cast<double>(k) / static_cast<double>(n);
    const double r = (k % 2 == 0) ? 1.0 : 0.45;
    out.push_back(Vec2{std::cos(a), std::sin(a)} * r);
  }
  return out;
}

Configuration gridPattern(std::size_t n) {
  const std::size_t side =
      static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  Configuration out;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t gx = k % side, gy = k / side;
    // Slight shear keeps the grid free of accidental symmetries.
    out.push_back(Vec2{static_cast<double>(gx) + 0.03 * gy,
                       static_cast<double>(gy)});
  }
  return out;
}

Configuration spiralPattern(std::size_t n) {
  Configuration out;
  for (std::size_t k = 0; k < n; ++k) {
    const double t = 0.7 + 2.5 * static_cast<double>(k) / n;
    const double a = 2.3 * t;
    out.push_back(Vec2{std::cos(a), std::sin(a)} * t);
  }
  return out;
}

Configuration ringCorePattern(std::size_t n) {
  const std::size_t ring = (n * 2) / 3;
  Configuration out;
  for (std::size_t k = 0; k < ring; ++k) {
    const double a = kTwoPi * static_cast<double>(k) / ring + 0.1;
    out.push_back(Vec2{std::cos(a), std::sin(a)});
  }
  for (std::size_t k = ring; k < n; ++k) {
    const double a = 2.39996 * static_cast<double>(k);  // golden angle
    const double r = 0.12 + 0.02 * static_cast<double>(k - ring);
    out.push_back(Vec2{std::cos(a), std::sin(a)} * r);
  }
  return out;
}

Configuration randomPatternByName(std::size_t n, std::uint64_t seed) {
  config::Rng rng(seed);
  return config::randomPattern(n, rng);
}

Configuration multiplicityPattern(std::size_t n) {
  Configuration out = config::regularPolygon(n - 2, 1.0);
  const Vec2 inner{0.31, 0.17};
  out.push_back(inner);
  out.push_back(inner);
  return out;
}

Configuration centerMultiplicityPattern(std::size_t n) {
  Configuration out = config::regularPolygon(n - 2, 1.0);
  out.push_back(Vec2{});
  out.push_back(Vec2{});
  return out;
}

Configuration patternByName(const std::string& name, std::size_t n,
                            std::uint64_t seed) {
  if (name == "polygon") return polygonPattern(n);
  if (name == "star") return starPattern(n);
  if (name == "grid") return gridPattern(n);
  if (name == "spiral") return spiralPattern(n);
  if (name == "ringcore") return ringCorePattern(n);
  if (name == "random") return randomPatternByName(n, seed);
  throw std::invalid_argument("unknown pattern: " + name);
}

std::vector<std::string> allPatternNames() {
  return {"polygon", "star", "grid", "spiral", "ringcore", "random"};
}

}  // namespace apf::io
