#include "io/animation.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <stdexcept>

namespace apf::io {

using geom::Vec2;

void writeAnimation(const std::string& path, const sim::Trace& trace,
                    const config::Configuration& pattern,
                    const AnimationOptions& opts) {
  const auto& initial = trace.initial();
  const auto& steps = trace.steps();
  const std::size_t n = initial.size();

  // Per-robot timelines: (event, position), starting at event 0.
  struct Key {
    std::uint64_t event;
    Vec2 pos;
  };
  std::vector<std::vector<Key>> timeline(n);
  for (std::size_t i = 0; i < n; ++i) timeline[i].push_back({0, initial[i]});
  std::uint64_t lastEvent = 1;
  for (const auto& s : steps) {
    if (s.robot < n) timeline[s.robot].push_back({s.event, s.position});
    lastEvent = std::max(lastEvent, s.event);
  }

  // Bounding box over everything.
  double minX = std::numeric_limits<double>::infinity(), minY = minX;
  double maxX = -minX, maxY = -minX;
  auto grow = [&](Vec2 p) {
    minX = std::min(minX, p.x - 4 * opts.markerRadius);
    minY = std::min(minY, p.y - 4 * opts.markerRadius);
    maxX = std::max(maxX, p.x + 4 * opts.markerRadius);
    maxY = std::max(maxY, p.y + 4 * opts.markerRadius);
  };
  for (const auto& tl : timeline) {
    for (const auto& k : tl) grow(k.pos);
  }
  for (const auto& p : pattern.points()) grow(p);
  if (minX > maxX) {
    minX = minY = -1;
    maxX = maxY = 1;
  }
  const double w = maxX - minX, h = maxY - minY;
  const double scale = opts.widthPx / w;
  const int heightPx = static_cast<int>(h * scale);
  auto X = [&](double x) { return (x - minX) * scale; };
  auto Y = [&](double y) { return (maxY - y) * scale; };

  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("writeAnimation: cannot open for write: " +
                             path);
  }
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << opts.widthPx
     << "\" height=\"" << heightPx << "\" viewBox=\"0 0 " << opts.widthPx
     << ' ' << heightPx << "\">\n"
     << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  // Target markers.
  for (const auto& p : pattern.points()) {
    os << "<circle cx=\"" << X(p.x) << "\" cy=\"" << Y(p.y) << "\" r=\""
       << opts.markerRadius * scale
       << "\" fill=\"none\" stroke=\"#bbb\" stroke-width=\"1.5\"/>\n";
  }

  // Trails (static, faint).
  for (const auto& tl : timeline) {
    os << "<polyline fill=\"none\" stroke=\"#e5e5e5\" stroke-width=\"1\" "
          "points=\"";
    for (const auto& k : tl) os << X(k.pos.x) << ',' << Y(k.pos.y) << ' ';
    os << "\"/>\n";
  }

  // Animated robots: one <circle> per robot with cx/cy keyframe animations
  // timed by scheduler event (uniform event -> time mapping).
  const char* palette[] = {"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
                           "#ff7f0e", "#8c564b", "#e377c2", "#17becf"};
  for (std::size_t i = 0; i < n; ++i) {
    const auto& tl = timeline[i];
    os << "<circle r=\"" << opts.markerRadius * scale << "\" fill=\""
       << palette[i % 8] << "\" cx=\"" << X(tl.front().pos.x) << "\" cy=\""
       << Y(tl.front().pos.y) << "\">\n";
    auto emit = [&](const char* attr, auto proj) {
      os << "  <animate attributeName=\"" << attr << "\" dur=\""
         << opts.durationSec << "s\" "
         << (opts.loop ? "repeatCount=\"indefinite\" " : "fill=\"freeze\" ")
         << "calcMode=\"linear\" keyTimes=\"";
      for (std::size_t k = 0; k < tl.size(); ++k) {
        if (k) os << ';';
        os << static_cast<double>(tl[k].event) /
                  static_cast<double>(lastEvent);
      }
      // SMIL requires the last keyTime to be 1.
      if (tl.back().event != lastEvent) os << ";1";
      os << "\" values=\"";
      for (std::size_t k = 0; k < tl.size(); ++k) {
        if (k) os << ';';
        os << proj(tl[k].pos);
      }
      if (tl.back().event != lastEvent) os << ';' << proj(tl.back().pos);
      os << "\"/>\n";
    };
    emit("cx", [&](Vec2 p) { return X(p.x); });
    emit("cy", [&](Vec2 p) { return Y(p.y); });
    os << "</circle>\n";
  }
  os << "</svg>\n";
  os.flush();
  if (os.fail()) {
    throw std::runtime_error("writeAnimation: write failed: " + path);
  }
}

}  // namespace apf::io
