#include "io/serialize.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace apf::io {

void writeConfiguration(std::ostream& os, const config::Configuration& c) {
  os << std::setprecision(17);
  for (const auto& p : c.points()) {
    os << p.x << ' ' << p.y << '\n';
  }
}

void saveConfiguration(const std::string& path,
                       const config::Configuration& c) {
  std::ofstream os(path);
  if (!os) throw std::invalid_argument("cannot open for write: " + path);
  writeConfiguration(os, c);
}

config::Configuration readConfiguration(std::istream& is) {
  config::Configuration out;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(is, line)) {
    ++lineNo;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    double x, y;
    if (ls >> x) {
      if (!(ls >> y)) {
        throw std::invalid_argument("line " + std::to_string(lineNo) +
                                    ": expected 'x y'");
      }
      std::string extra;
      if (ls >> extra) {
        throw std::invalid_argument("line " + std::to_string(lineNo) +
                                    ": trailing content '" + extra + "'");
      }
      out.push_back({x, y});
    }
    // blank / comment-only lines are skipped
  }
  return out;
}

config::Configuration loadConfiguration(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::invalid_argument("cannot open: " + path);
  return readConfiguration(is);
}

config::Configuration parseConfiguration(const std::string& text) {
  std::istringstream is(text);
  return readConfiguration(is);
}

}  // namespace apf::io
