#pragma once

/// \file svg.h
/// SVG rendering of configurations and execution traces: used by the
/// examples to regenerate the paper's figure-style diagrams and to
/// visualize runs.

#include <string>
#include <vector>

#include "config/configuration.h"

namespace apf::io {

/// One rendered layer: points with a style.
struct SvgLayer {
  config::Configuration points;
  std::string fill = "#1f77b4";
  double radius = 0.02;           ///< marker radius in world units
  bool hollow = false;            ///< render as outlined circles (pattern)
};

class SvgScene {
 public:
  /// World-coordinate bounding box is computed from the layers.
  void addLayer(SvgLayer layer) { layers_.push_back(std::move(layer)); }
  /// Polyline trail (e.g., a robot's trajectory).
  void addTrail(std::vector<geom::Vec2> pts, std::string stroke = "#999");
  /// Rays from a center (for regular-set diagrams).
  void addRays(geom::Vec2 center, const std::vector<double>& dirs,
               double length, std::string stroke = "#ccc");
  void addCircle(geom::Vec2 center, double radius,
                 std::string stroke = "#ddd");

  /// Writes the scene to `path` (width px, height derived from aspect).
  void write(const std::string& path, int widthPx = 640) const;

 private:
  struct Trail {
    std::vector<geom::Vec2> pts;
    std::string stroke;
  };
  struct Ray {
    geom::Vec2 center;
    std::vector<double> dirs;
    double length;
    std::string stroke;
  };
  struct Ring {
    geom::Vec2 center;
    double radius;
    std::string stroke;
  };
  std::vector<SvgLayer> layers_;
  std::vector<Trail> trails_;
  std::vector<Ray> rays_;
  std::vector<Ring> rings_;
};

}  // namespace apf::io
