#pragma once

/// \file animation.h
/// Self-contained animated SVG (SMIL) rendering of an execution trace:
/// each robot is a circle whose position animates through its recorded
/// waypoints; the target pattern is drawn as hollow markers. Opens in any
/// browser, no JavaScript.

#include <string>
#include <vector>

#include "config/configuration.h"
#include "sim/trace.h"

namespace apf::io {

struct AnimationOptions {
  /// Total animation duration in seconds.
  double durationSec = 8.0;
  /// Rendered width in pixels.
  int widthPx = 640;
  /// Marker radius in world units.
  double markerRadius = 0.06;
  /// Loop forever.
  bool loop = true;
};

/// Writes an animated SVG of the trace: robots move through their recorded
/// positions on a common timeline proportional to the scheduler events;
/// `pattern` (optional, may be empty) is drawn as hollow target markers.
void writeAnimation(const std::string& path, const sim::Trace& trace,
                    const config::Configuration& pattern,
                    const AnimationOptions& opts = {});

}  // namespace apf::io
