#include "io/svg.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <stdexcept>

namespace apf::io {

using geom::Vec2;

void SvgScene::addTrail(std::vector<Vec2> pts, std::string stroke) {
  trails_.push_back({std::move(pts), std::move(stroke)});
}

void SvgScene::addRays(Vec2 center, const std::vector<double>& dirs,
                       double length, std::string stroke) {
  rays_.push_back({center, dirs, length, std::move(stroke)});
}

void SvgScene::addCircle(Vec2 center, double radius, std::string stroke) {
  rings_.push_back({center, radius, std::move(stroke)});
}

void SvgScene::write(const std::string& path, int widthPx) const {
  double minX = std::numeric_limits<double>::infinity(), minY = minX;
  double maxX = -minX, maxY = -minX;
  auto grow = [&](Vec2 p, double pad) {
    minX = std::min(minX, p.x - pad);
    minY = std::min(minY, p.y - pad);
    maxX = std::max(maxX, p.x + pad);
    maxY = std::max(maxY, p.y + pad);
  };
  for (const auto& l : layers_) {
    for (const Vec2& p : l.points.points()) grow(p, l.radius * 4);
  }
  for (const auto& t : trails_) {
    for (const Vec2& p : t.pts) grow(p, 0.05);
  }
  for (const auto& r : rings_) {
    grow(r.center + Vec2{r.radius, r.radius}, 0.05);
    grow(r.center - Vec2{r.radius, r.radius}, 0.05);
  }
  if (minX > maxX) {
    minX = minY = -1;
    maxX = maxY = 1;
  }
  const double w = maxX - minX, h = maxY - minY;
  const double scale = widthPx / w;
  const int heightPx = static_cast<int>(h * scale);
  auto X = [&](double x) { return (x - minX) * scale; };
  // SVG's y axis points down; flip.
  auto Y = [&](double y) { return (maxY - y) * scale; };

  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("SvgScene: cannot open for write: " + path);
  }
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << widthPx
     << "\" height=\"" << heightPx << "\" viewBox=\"0 0 " << widthPx << ' '
     << heightPx << "\">\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  for (const auto& r : rings_) {
    os << "<circle cx=\"" << X(r.center.x) << "\" cy=\"" << Y(r.center.y)
       << "\" r=\"" << r.radius * scale << "\" fill=\"none\" stroke=\""
       << r.stroke << "\"/>\n";
  }
  for (const auto& ray : rays_) {
    for (double d : ray.dirs) {
      const Vec2 end = ray.center + Vec2{std::cos(d), std::sin(d)} * ray.length;
      os << "<line x1=\"" << X(ray.center.x) << "\" y1=\"" << Y(ray.center.y)
         << "\" x2=\"" << X(end.x) << "\" y2=\"" << Y(end.y) << "\" stroke=\""
         << ray.stroke << "\" stroke-dasharray=\"4 3\"/>\n";
    }
  }
  for (const auto& t : trails_) {
    os << "<polyline fill=\"none\" stroke=\"" << t.stroke
       << "\" stroke-width=\"1\" points=\"";
    for (const Vec2& p : t.pts) os << X(p.x) << ',' << Y(p.y) << ' ';
    os << "\"/>\n";
  }
  for (const auto& l : layers_) {
    for (const Vec2& p : l.points.points()) {
      os << "<circle cx=\"" << X(p.x) << "\" cy=\"" << Y(p.y) << "\" r=\""
         << l.radius * scale << "\" ";
      if (l.hollow) {
        os << "fill=\"none\" stroke=\"" << l.fill << "\" stroke-width=\"1.5\"";
      } else {
        os << "fill=\"" << l.fill << "\"";
      }
      os << "/>\n";
    }
  }
  os << "</svg>\n";
  os.flush();
  if (os.fail()) throw std::runtime_error("SvgScene: write failed: " + path);
}

}  // namespace apf::io
