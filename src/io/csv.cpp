#include "io/csv.h"

#include <iomanip>
#include <stdexcept>

#include "obs/recorder.h"

namespace apf::io {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path) {
  if (!path.empty()) {
    obs::createParentDirs(path);
    file_.open(path);
    if (!file_) {
      throw std::runtime_error("CsvWriter: cannot open for write: " + path);
    }
  }
  emit(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) { emit(cells); }

void CsvWriter::emit(const std::vector<std::string>& cells) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) line += ',';
    line += cells[i];
  }
  line += '\n';
  buffer_ << line;
  if (file_.is_open()) {
    file_ << line << std::flush;
    if (file_.fail()) {
      throw std::runtime_error("CsvWriter: write failed: " + path_);
    }
  }
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace apf::io
