#include "io/csv.h"

#include <iomanip>

namespace apf::io {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header) {
  if (!path.empty()) file_.open(path);
  emit(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) { emit(cells); }

void CsvWriter::emit(const std::vector<std::string>& cells) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) line += ',';
    line += cells[i];
  }
  line += '\n';
  buffer_ << line;
  if (file_.is_open()) file_ << line << std::flush;
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace apf::io
