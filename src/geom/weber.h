#pragma once

/// \file weber.h
/// Weber point (geometric median) and angular-grid fitting.
///
/// The center of an m-regular set is its Weber point (Anderegg, Cieliebak,
/// Prencipe [1] — cited by the paper): the unit direction vectors of an
/// equiangular (or bi-angled with m/2-fold direction symmetry) set sum to
/// zero, so the grid center is a stationary point of the convex Weber
/// objective. We therefore detect regular sets by (1) computing the Weber
/// point with Weiszfeld's iteration, then (2) refining center and grid phase
/// with a Gauss-Newton fit on angular residuals, which recovers centers of
/// exactly-regular inputs to ~1e-12.

#include <optional>
#include <span>
#include <vector>

#include "geom/vec2.h"

namespace apf::geom {

/// Geometric median (Weber point) by Weiszfeld iteration with the Vardi-Zhang
/// safeguard for iterates landing on an input point. Deterministic.
Vec2 weberPoint(std::span<const Vec2> pts, int maxIter = 400,
                double tol = 1e-13);

/// An angular grid of `numRays` half-lines from `center`; ray k has direction
/// theta0 + prefix-sum of gaps, where gaps alternate alpha, beta, alpha, ...
/// (equiangular grids have alpha == beta == 2*pi/numRays).
struct AngularGrid {
  Vec2 center;
  double theta0 = 0.0;  ///< direction of ray 0
  double alpha = 0.0;   ///< gap after even-indexed rays
  double beta = 0.0;    ///< gap after odd-indexed rays
  int numRays = 0;

  /// Direction angle of ray k (k in [0, numRays)).
  double rayDir(int k) const;
  bool biangular() const { return alpha != beta; }
};

/// Result of a grid fit: the grid plus the worst absolute angular residual
/// over the fitted points.
struct GridFit {
  AngularGrid grid;
  double maxResidual = 0.0;
};

/// Fit an angular grid to points with a *fixed ray assignment*:
/// point i must lie on ray rayIndex[i]. Unknowns are the center and theta0
/// (plus alpha when `biangular`; then beta = 4*pi/numRays - alpha).
/// `init` seeds the iteration. Returns nullopt when Gauss-Newton fails to
/// converge (singular system or divergence).
std::optional<GridFit> fitAngularGrid(std::span<const Vec2> pts,
                                      std::span<const int> rayIndex,
                                      int numRays, bool biangular,
                                      const AngularGrid& init);

/// Convenience: angular residual of point p against ray k of the grid,
/// wrapped to (-pi, pi].
double gridResidual(const AngularGrid& g, Vec2 p, int k);

}  // namespace apf::geom
