#pragma once

/// \file angle.h
/// Angle arithmetic helpers.
///
/// The paper manipulates angles ang(u, v, w) in [0, 2pi) with a
/// context-dependent orientation, and angmin(u, v, w) in [0, pi) as the
/// minimum over both orientations. These helpers implement that vocabulary.

#include <numbers>

#include "geom/vec2.h"

namespace apf::geom {

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Normalize an angle to [0, 2pi).
double norm2pi(double a);

/// Normalize an angle to (-pi, pi].
double normPi(double a);

/// Counterclockwise angle from ray (v -> u) to ray (v -> w), in [0, 2pi).
/// Undefined when u == v or w == v.
double angCcw(Vec2 u, Vec2 v, Vec2 w);

/// Minimum angle between rays (v -> u) and (v -> w), in [0, pi].
/// This is the paper's angmin(u, v, w).
double angMin(Vec2 u, Vec2 v, Vec2 w);

/// Minimum angular distance between two direction angles, in [0, pi].
double angDist(double a, double b);

/// Counterclockwise sweep from direction angle a to direction angle b,
/// in [0, 2pi).
double ccwSweep(double a, double b);

}  // namespace apf::geom
