#pragma once

/// \file intersect.h
/// Intersection primitives: circle-circle, line-circle, and ray-circle.
/// Used by diagnostic tooling and tests (e.g., verifying that a radial
/// descent crosses the selected band where predicted).

#include <optional>
#include <vector>
#include <utility>

#include "geom/circle.h"
#include "geom/vec2.h"

namespace apf::geom {

/// Intersection points of two circles. Empty when disjoint or one contains
/// the other; a single point when (externally or internally) tangent;
/// nullopt-like empty vector for coincident circles (infinite solutions).
std::vector<Vec2> intersectCircles(const Circle& a, const Circle& b,
                                   const Tol& tol = kDefaultTol);

/// Intersection of the infinite line through p with direction d (unit not
/// required) and a circle; 0, 1, or 2 points, ordered by line parameter.
std::vector<Vec2> intersectLineCircle(Vec2 p, Vec2 d, const Circle& c,
                                      const Tol& tol = kDefaultTol);

/// First intersection of the ray p + t*d (t >= 0) with the circle, if any.
std::optional<Vec2> rayCircleFirstHit(Vec2 p, Vec2 d, const Circle& c,
                                      const Tol& tol = kDefaultTol);

}  // namespace apf::geom
