#include "geom/intersect.h"

#include <cmath>

namespace apf::geom {

std::vector<Vec2> intersectCircles(const Circle& a, const Circle& b,
                                   const Tol& tol) {
  const Vec2 d = b.center - a.center;
  const double dist2 = d.norm2();
  const double dist = std::sqrt(dist2);
  if (dist <= tol.dist) return {};  // concentric (coincident or nested)
  const double sum = a.radius + b.radius;
  const double diff = std::fabs(a.radius - b.radius);
  if (dist > sum + tol.dist || dist < diff - tol.dist) return {};
  // Distance from a.center to the radical line.
  const double x = (dist2 + a.radius * a.radius - b.radius * b.radius) /
                   (2.0 * dist);
  const double h2 = a.radius * a.radius - x * x;
  const Vec2 u = d / dist;
  const Vec2 base = a.center + u * x;
  if (h2 <= tol.dist * tol.dist) return {base};  // tangent
  const double h = std::sqrt(h2);
  const Vec2 off = u.perp() * h;
  return {base + off, base - off};
}

std::vector<Vec2> intersectLineCircle(Vec2 p, Vec2 d, const Circle& c,
                                      const Tol& tol) {
  const double dn = d.norm();
  if (dn <= tol.dist) return {};
  const Vec2 u = d / dn;
  const Vec2 rel = p - c.center;
  const double b = rel.dot(u);
  const double disc = b * b - (rel.norm2() - c.radius * c.radius);
  if (disc < -tol.dist) return {};
  if (disc <= tol.dist * tol.dist) return {p + u * (-b)};
  const double s = std::sqrt(std::max(disc, 0.0));
  return {p + u * (-b - s), p + u * (-b + s)};
}

std::optional<Vec2> rayCircleFirstHit(Vec2 p, Vec2 d, const Circle& c,
                                      const Tol& tol) {
  const double dn = d.norm();
  if (dn <= tol.dist) return std::nullopt;
  const Vec2 u = d / dn;
  for (const Vec2& q : intersectLineCircle(p, d, c, tol)) {
    if ((q - p).dot(u) >= -tol.dist) return q;
  }
  return std::nullopt;
}

}  // namespace apf::geom
