#include "geom/sec.h"

#include <algorithm>
#include <cmath>
#include <random>

namespace apf::geom {
namespace {

Circle circleFrom2(Vec2 a, Vec2 b) {
  return {midpoint(a, b), dist(a, b) / 2.0};
}

/// Circumcircle of three points; falls back to the best 2-point circle when
/// the points are (nearly) collinear.
Circle circleFrom3(Vec2 a, Vec2 b, Vec2 c) {
  const Vec2 ab = b - a, ac = c - a;
  const double d = 2.0 * ab.cross(ac);
  if (std::fabs(d) < 1e-30) {
    // Collinear: the smallest circle through the extreme pair covers all.
    Circle best = circleFrom2(a, b);
    const Circle bc = circleFrom2(b, c);
    const Circle ca = circleFrom2(c, a);
    if (bc.radius > best.radius) best = bc;
    if (ca.radius > best.radius) best = ca;
    return best;
  }
  const double abn = ab.norm2(), acn = ac.norm2();
  const Vec2 center{a.x + (ac.y * abn - ab.y * acn) / d,
                    a.y + (ab.x * acn - ac.x * abn) / d};
  return {center, dist(center, a)};
}

bool inCircle(const Circle& c, Vec2 p) {
  // Slightly enlarged membership keeps Welzl numerically stable.
  return dist(p, c.center) <= c.radius * (1.0 + 1e-14) + 1e-14;
}

Circle secWithTwo(std::span<const Vec2> pts, std::size_t end, Vec2 p, Vec2 q) {
  Circle c = circleFrom2(p, q);
  for (std::size_t i = 0; i < end; ++i) {
    if (!inCircle(c, pts[i])) c = circleFrom3(p, q, pts[i]);
  }
  return c;
}

Circle secWithOne(std::span<const Vec2> pts, std::size_t end, Vec2 p) {
  Circle c{p, 0.0};
  for (std::size_t i = 0; i < end; ++i) {
    if (!inCircle(c, pts[i])) {
      c = (c.radius == 0.0) ? circleFrom2(p, pts[i])
                            : secWithTwo(pts, i, p, pts[i]);
    }
  }
  return c;
}

}  // namespace

Circle smallestEnclosingCircle(std::span<const Vec2> pts) {
  if (pts.empty()) return {};
  if (pts.size() == 1) return {pts[0], 0.0};
  std::vector<Vec2> shuffled(pts.begin(), pts.end());
  std::mt19937 rng(0x5ec0c13eU);
  std::shuffle(shuffled.begin(), shuffled.end(), rng);

  Circle c{shuffled[0], 0.0};
  for (std::size_t i = 1; i < shuffled.size(); ++i) {
    if (!inCircle(c, shuffled[i])) {
      c = secWithOne(shuffled, i, shuffled[i]);
    }
  }
  return c;
}

bool holdsSec(std::span<const Vec2> pts, std::size_t i, const Tol& tol) {
  const Circle whole = smallestEnclosingCircle(pts);
  if (!whole.onBoundary(pts[i], tol)) return false;
  std::vector<Vec2> rest;
  rest.reserve(pts.size() - 1);
  for (std::size_t j = 0; j < pts.size(); ++j) {
    if (j != i) rest.push_back(pts[j]);
  }
  const Circle without = smallestEnclosingCircle(rest);
  return !distEq(without.radius, whole.radius, tol) ||
         !nearlyEqual(without.center, whole.center, tol);
}

std::vector<std::size_t> secHolders(std::span<const Vec2> pts, const Tol& tol) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (holdsSec(pts, i, tol)) out.push_back(i);
  }
  return out;
}

}  // namespace apf::geom
