#pragma once

/// \file vec2.h
/// Plain 2-D vector / point value type used throughout the library.

#include <cmath>
#include <iosfwd>

#include "geom/tolerance.h"

namespace apf::geom {

/// A 2-D vector (also used as a point). Regular value type, no invariant.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double xx, double yy) : x(xx), y(yy) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  Vec2& operator+=(Vec2 o) { x += o.x; y += o.y; return *this; }
  Vec2& operator-=(Vec2 o) { x -= o.x; y -= o.y; return *this; }
  Vec2& operator*=(double s) { x *= s; y *= s; return *this; }

  /// Exact (bitwise-value) equality. Use nearlyEqual for tolerant tests.
  constexpr bool operator==(const Vec2&) const = default;

  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// 2-D cross product (z-component of the 3-D cross product).
  constexpr double cross(Vec2 o) const { return x * o.y - y * o.x; }
  constexpr double norm2() const { return x * x + y * y; }
  double norm() const { return std::hypot(x, y); }

  /// Unit vector in the same direction. Undefined for the zero vector.
  Vec2 normalized() const {
    const double n = norm();
    return {x / n, y / n};
  }

  /// Counterclockwise perpendicular.
  constexpr Vec2 perp() const { return {-y, x}; }

  /// Rotation by `a` radians counterclockwise.
  Vec2 rotated(double a) const {
    const double c = std::cos(a), s = std::sin(a);
    return {c * x - s * y, s * x + c * y};
  }

  /// Polar angle in [-pi, pi]; atan2 convention, undefined for zero vector.
  double arg() const { return std::atan2(y, x); }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

inline double dist(Vec2 a, Vec2 b) { return (a - b).norm(); }
inline double dist2(Vec2 a, Vec2 b) { return (a - b).norm2(); }

/// Tolerant point coincidence.
inline bool nearlyEqual(Vec2 a, Vec2 b, const Tol& tol = kDefaultTol) {
  return dist(a, b) <= tol.dist;
}

/// Midpoint of the segment [a, b].
constexpr Vec2 midpoint(Vec2 a, Vec2 b) { return {(a.x + b.x) / 2, (a.y + b.y) / 2}; }

/// Point on the segment [a, b] at parameter t in [0, 1].
constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) { return a + (b - a) * t; }

std::ostream& operator<<(std::ostream& os, Vec2 v);

}  // namespace apf::geom
