#pragma once

/// \file transform.h
/// Similarity transforms of the plane: rotation + uniform scale + optional
/// reflection + translation. These model both (a) a robot's private local
/// coordinate frame relative to the global frame (unknown North, unknown
/// chirality, unknown unit length) and (b) the pattern-similarity relation
/// A ~ B of the paper.

#include "geom/vec2.h"

namespace apf::geom {

/// A direct or indirect similarity of the plane.
///
/// Applies as  p  ->  scale * R(angle) * M * p + offset,
/// where M is a reflection across the x-axis when `reflect` is true and the
/// identity otherwise. `scale` must be positive.
class Similarity {
 public:
  Similarity() = default;
  Similarity(double angle, double scale, bool reflect, Vec2 offset);

  /// Identity transform.
  static Similarity identity() { return {}; }
  static Similarity translation(Vec2 t) { return {0.0, 1.0, false, t}; }
  static Similarity rotation(double angle) { return {angle, 1.0, false, {}}; }
  static Similarity scaling(double s) { return {0.0, s, false, {}}; }
  /// Reflection across the x-axis.
  static Similarity mirrorX() { return {0.0, 1.0, true, {}}; }

  Vec2 apply(Vec2 p) const;
  /// Applies only the linear part (no translation); maps directions.
  Vec2 applyLinear(Vec2 v) const;

  /// Composition: (a * b).apply(p) == a.apply(b.apply(p)).
  friend Similarity operator*(const Similarity& a, const Similarity& b);

  Similarity inverse() const;

  double angle() const { return angle_; }
  double scale() const { return scale_; }
  bool reflects() const { return reflect_; }
  Vec2 offset() const { return offset_; }

 private:
  double angle_ = 0.0;
  double scale_ = 1.0;
  bool reflect_ = false;
  Vec2 offset_{};
};

}  // namespace apf::geom
