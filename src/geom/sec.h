#pragma once

/// \file sec.h
/// Smallest enclosing circle (Welzl's algorithm) and the "holds C(P)"
/// predicate from the paper.

#include <span>
#include <vector>

#include "geom/circle.h"
#include "geom/vec2.h"

namespace apf::geom {

/// Smallest enclosing circle of the points. Expected O(n) time (randomized
/// Welzl with move-to-front); deterministic seed so results are reproducible.
/// Returns a zero circle for an empty input.
Circle smallestEnclosingCircle(std::span<const Vec2> pts);

/// True when point index `i` "holds" the smallest enclosing circle of `pts`:
/// removing it changes C(P). Per the paper, only points on the circumference
/// can hold the circle, and a point holds it iff the SEC of the remaining
/// points is different (smaller).
bool holdsSec(std::span<const Vec2> pts, std::size_t i,
              const Tol& tol = kDefaultTol);

/// Indices of all points that hold the smallest enclosing circle.
std::vector<std::size_t> secHolders(std::span<const Vec2> pts,
                                    const Tol& tol = kDefaultTol);

}  // namespace apf::geom
