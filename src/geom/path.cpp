#include "geom/path.h"

#include <algorithm>
#include <cmath>

#include "geom/angle.h"

namespace apf::geom {

Vec2 LineSeg::pointAt(double s) const {
  const double len = length();
  if (len <= 0.0) return b;
  return lerp(a, b, std::clamp(s / len, 0.0, 1.0));
}

Vec2 ArcSeg::pointAt(double s) const {
  const double len = length();
  double t = (len <= 0.0) ? 1.0 : std::clamp(s / len, 0.0, 1.0);
  const double a = startAngle + sweep * t;
  return {center.x + radius * std::cos(a), center.y + radius * std::sin(a)};
}

Vec2 ArcSeg::endPoint() const {
  const double a = startAngle + sweep;
  return {center.x + radius * std::cos(a), center.y + radius * std::sin(a)};
}

void Path::push(const PathSeg& seg) {
  if (!overflow_.empty()) {
    overflow_.push_back(seg);
  } else if (count_ < kInlineSegs) {
    inline_[count_] = seg;
  } else {
    overflow_.reserve(count_ + count_);
    overflow_.assign(inline_.begin(), inline_.end());
    overflow_.push_back(seg);
  }
  ++count_;
}

Path& Path::lineTo(Vec2 to) {
  LineSeg seg{end_, to};
  length_ += seg.length();
  end_ = to;
  push(seg);
  return *this;
}

Path& Path::arcAround(Vec2 center, double sweep) {
  const double radius = dist(end_, center);
  const double startAngle = (end_ - center).arg();
  ArcSeg seg{center, radius, startAngle, sweep};
  length_ += seg.length();
  end_ = seg.endPoint();
  push(seg);
  return *this;
}

Vec2 Path::pointAt(double s) const {
  if (count_ == 0) return end_;
  s = std::clamp(s, 0.0, length_);
  for (const auto& seg : segments()) {
    const double len = std::visit([](const auto& g) { return g.length(); }, seg);
    if (s <= len) {
      return std::visit([s](const auto& g) { return g.pointAt(s); }, seg);
    }
    s -= len;
  }
  return end_;
}

Path Path::transformed(const Similarity& t) const {
  Path out(t.apply(start_));
  for (const auto& seg : segments()) {
    if (const auto* line = std::get_if<LineSeg>(&seg)) {
      out.lineTo(t.apply(line->b));
    } else {
      const auto& arc = std::get<ArcSeg>(seg);
      const double sweep = t.reflects() ? -arc.sweep : arc.sweep;
      out.arcAround(t.apply(arc.center), sweep);
    }
  }
  return out;
}

}  // namespace apf::geom
