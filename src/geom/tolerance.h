#pragma once

/// \file tolerance.h
/// Central numeric-tolerance policy for the geometry kernel.
///
/// All approximate predicates in the library (point coincidence, angular
/// equality, circle membership, pattern similarity) route through one of the
/// helpers below so the tolerance discipline is uniform and adjustable in a
/// single place. The simulator keeps static robots bit-stable, so detections
/// on configurations produced by the algorithms typically see residuals
/// around 1e-12; the default tolerance of 1e-9 leaves three orders of
/// magnitude of headroom while still rejecting genuinely distinct geometry.

#include <cmath>

namespace apf::geom {

/// Tolerances used by approximate geometric predicates.
struct Tol {
  /// Absolute tolerance on distances (in units of the current working frame;
  /// algorithms normalize the smallest enclosing circle to radius 1).
  double dist = 1e-9;
  /// Absolute tolerance on angles, in radians.
  double ang = 1e-9;
};

/// The library-wide default tolerance.
inline constexpr Tol kDefaultTol{};

/// True when |a - b| is within the distance tolerance.
inline bool distEq(double a, double b, const Tol& tol = kDefaultTol) {
  return std::fabs(a - b) <= tol.dist;
}

/// True when a < b by more than the distance tolerance.
inline bool distLt(double a, double b, const Tol& tol = kDefaultTol) {
  return a < b - tol.dist;
}

/// True when a <= b up to the distance tolerance.
inline bool distLe(double a, double b, const Tol& tol = kDefaultTol) {
  return a <= b + tol.dist;
}

/// True when |a - b| is within the angular tolerance.
inline bool angEq(double a, double b, const Tol& tol = kDefaultTol) {
  return std::fabs(a - b) <= tol.ang;
}

}  // namespace apf::geom
