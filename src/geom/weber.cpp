#include "geom/weber.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "geom/angle.h"

namespace apf::geom {

Vec2 weberPoint(std::span<const Vec2> pts, int maxIter, double tol) {
  if (pts.empty()) return {};
  if (pts.size() == 1) return pts[0];
  Vec2 x{};
  for (const Vec2& p : pts) x += p;
  x = x / static_cast<double>(pts.size());

  for (int it = 0; it < maxIter; ++it) {
    Vec2 num{};
    double den = 0.0;
    Vec2 pull{};  // sum of unit vectors toward points not at x
    bool atPoint = false;
    for (const Vec2& p : pts) {
      const double d = dist(x, p);
      if (d < 1e-15) {
        atPoint = true;
        continue;
      }
      num += p / d;
      den += 1.0 / d;
      pull += (p - x) / d;
    }
    if (den == 0.0) return x;  // all points coincide with x
    Vec2 next = num / den;
    if (atPoint) {
      // Vardi-Zhang: x coincides with an input point; it is the median iff
      // |pull| <= 1, otherwise step along pull.
      const double r = pull.norm();
      if (r <= 1.0) return x;
      const double step = (r - 1.0) / den;
      next = x + pull * (step / r);
    }
    if (dist(next, x) < tol) return next;
    x = next;
  }
  return x;
}

double AngularGrid::rayDir(int k) const {
  const double pairSum = alpha + beta;
  return norm2pi(theta0 + pairSum * (k / 2) + (k % 2 ? alpha : 0.0));
}

double gridResidual(const AngularGrid& g, Vec2 p, int k) {
  return normPi((p - g.center).arg() - g.rayDir(k));
}

namespace {

/// Solves the n x n linear system A x = b in place (partial pivoting).
/// Returns false when A is singular.
template <int N>
bool solve(std::array<std::array<double, N>, N>& a, std::array<double, N>& b,
           std::array<double, N>& x) {
  for (int col = 0; col < N; ++col) {
    int pivot = col;
    for (int r = col + 1; r < N; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-14) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (int r = col + 1; r < N; ++r) {
      const double f = a[r][col] / a[col][col];
      for (int c = col; c < N; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  for (int r = N - 1; r >= 0; --r) {
    double s = b[r];
    for (int c = r + 1; c < N; ++c) s -= a[r][c] * x[c];
    x[r] = s / a[r][r];
  }
  return true;
}

}  // namespace

std::optional<GridFit> fitAngularGrid(std::span<const Vec2> pts,
                                      std::span<const int> rayIndex,
                                      int numRays, bool biangular,
                                      const AngularGrid& init) {
  AngularGrid g = init;
  g.numRays = numRays;
  if (!biangular) {
    g.alpha = g.beta = kTwoPi / numRays;
  } else {
    g.beta = 2.0 * kTwoPi / numRays - g.alpha;
  }

  constexpr int kMaxIter = 60;
  const int nParams = biangular ? 4 : 3;
  double prevSse = std::numeric_limits<double>::infinity();

  for (int it = 0; it < kMaxIter; ++it) {
    // Accumulate normal equations J^T J dx = -J^T r for parameters
    // (cx, cy, theta0 [, alpha]).
    std::array<std::array<double, 4>, 4> jtj{};
    std::array<double, 4> jtr{};
    double sse = 0.0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const Vec2 d = pts[i] - g.center;
      const double rho2 = d.norm2();
      if (rho2 < 1e-24) return std::nullopt;  // point on center: degenerate
      const int k = rayIndex[i];
      const double res = gridResidual(g, pts[i], k);
      sse += res * res;
      std::array<double, 4> row{d.y / rho2, -d.x / rho2, -1.0, 0.0};
      if (biangular) {
        // d rayDir / d alpha: gap pattern contributes (k/2) from pairSum's
        // alpha (pairSum = alpha + beta, beta = const - alpha cancels) plus
        // 1 when k is odd. pairSum is fixed, so only the odd-k term remains.
        row[3] = (k % 2) ? -1.0 : 0.0;
      }
      for (int r = 0; r < nParams; ++r) {
        jtr[r] += row[r] * res;
        for (int c = 0; c < nParams; ++c) jtj[r][c] += row[r] * row[c];
      }
    }
    if (sse > prevSse * 4.0 + 1e-9) return std::nullopt;  // diverging
    prevSse = sse;

    std::array<double, 4> step{};
    bool solved = false;
    if (biangular) {
      solved = solve<4>(jtj, jtr, step);
    } else {
      std::array<std::array<double, 3>, 3> a{};
      std::array<double, 3> b{}, x{};
      for (int r = 0; r < 3; ++r) {
        b[r] = jtr[r];
        for (int c = 0; c < 3; ++c) a[r][c] = jtj[r][c];
      }
      solved = solve<3>(a, b, x);
      for (int r = 0; r < 3; ++r) step[r] = x[r];
    }
    if (!solved) return std::nullopt;

    g.center -= Vec2{step[0], step[1]};
    g.theta0 -= step[2];
    if (biangular) {
      g.alpha -= step[3];
      g.beta = 2.0 * kTwoPi / numRays - g.alpha;
      if (g.alpha <= 0.0 || g.beta <= 0.0) return std::nullopt;
    }

    const double stepNorm = std::sqrt(step[0] * step[0] + step[1] * step[1] +
                                      step[2] * step[2] + step[3] * step[3]);
    if (stepNorm < 1e-14) break;
  }

  g.theta0 = norm2pi(g.theta0);
  double maxRes = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    maxRes = std::max(maxRes, std::fabs(gridResidual(g, pts[i], rayIndex[i])));
  }
  return GridFit{g, maxRes};
}

}  // namespace apf::geom
