#include "geom/angle.h"

#include <cmath>

namespace apf::geom {

double norm2pi(double a) {
  double r = std::fmod(a, kTwoPi);
  if (r < 0) r += kTwoPi;
  // fmod can return kTwoPi - ulp noise after the correction; clamp.
  if (r >= kTwoPi) r = 0.0;
  return r;
}

double normPi(double a) {
  double r = norm2pi(a);
  if (r > kPi) r -= kTwoPi;
  return r;
}

double angCcw(Vec2 u, Vec2 v, Vec2 w) {
  const double a = (u - v).arg();
  const double b = (w - v).arg();
  return norm2pi(b - a);
}

double angMin(Vec2 u, Vec2 v, Vec2 w) {
  const double a = angCcw(u, v, w);
  return std::min(a, kTwoPi - a);
}

double angDist(double a, double b) {
  const double d = norm2pi(b - a);
  return std::min(d, kTwoPi - d);
}

double ccwSweep(double a, double b) { return norm2pi(b - a); }

}  // namespace apf::geom
