#pragma once

/// \file circle.h
/// Circle value type and membership predicates.

#include "geom/tolerance.h"
#include "geom/vec2.h"

namespace apf::geom {

/// A circle given by center and radius. No invariant beyond radius >= 0.
struct Circle {
  Vec2 center;
  double radius = 0.0;

  constexpr bool operator==(const Circle&) const = default;

  /// True when p is inside or on the circle (tolerant).
  bool contains(Vec2 p, const Tol& tol = kDefaultTol) const {
    return dist(p, center) <= radius + tol.dist;
  }

  /// True when p lies on the circumference (tolerant).
  bool onBoundary(Vec2 p, const Tol& tol = kDefaultTol) const {
    return distEq(dist(p, center), radius, tol);
  }

  /// True when p is strictly inside (tolerant: further than tol from the
  /// boundary).
  bool strictlyInside(Vec2 p, const Tol& tol = kDefaultTol) const {
    return dist(p, center) < radius - tol.dist;
  }

  /// Point on the circumference at direction angle `a` (radians, ccw from +x).
  Vec2 at(double a) const {
    return {center.x + radius * std::cos(a), center.y + radius * std::sin(a)};
  }
};

}  // namespace apf::geom
