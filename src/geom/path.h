#pragma once

/// \file path.h
/// Arclength-parameterized movement paths made of line segments and circular
/// arcs.
///
/// The paper's movements are of two kinds: radial (straight toward/away from
/// the center) and "on its circle" (an arc around the center), sometimes
/// chained (e.g. cleanExterior: nudge inward, slide on a circle, then move
/// radially). A Path stores that geometry once, at Compute time; the engine
/// then advances the robot along it by adversary-chosen arclengths. Because
/// the arc's center/radius are stored exactly, a robot stopped mid-arc is
/// still exactly on its circle — which is what the paper's invariants
/// (Property 2) require and what floating-point waypoint interpolation would
/// not give.

#include <array>
#include <span>
#include <variant>
#include <vector>

#include "geom/transform.h"
#include "geom/vec2.h"

namespace apf::geom {

/// Straight segment from a to b.
struct LineSeg {
  Vec2 a;
  Vec2 b;
  double length() const { return dist(a, b); }
  Vec2 pointAt(double s) const;  ///< s in [0, length]
};

/// Circular arc around `center` with radius `radius`, starting at direction
/// angle `startAngle`, sweeping by signed `sweep` radians (ccw positive).
struct ArcSeg {
  Vec2 center;
  double radius = 0.0;
  double startAngle = 0.0;
  double sweep = 0.0;
  double length() const { return radius * std::fabs(sweep); }
  Vec2 pointAt(double s) const;  ///< s in [0, length]
  Vec2 endPoint() const;
};

using PathSeg = std::variant<LineSeg, ArcSeg>;

/// A polyline-with-arcs path; continuous by construction.
///
/// Storage is small-buffer optimized: the paper's movements chain at most
/// three segments (e.g. cleanExterior: nudge inward, slide on a circle,
/// move radially), so up to kInlineSegs segments live inline and a Path
/// never touches the heap. Longer paths (no current producer makes one)
/// spill into a vector transparently. This keeps the engine's
/// Compute -> transform -> execute pipeline allocation-free.
class Path {
 public:
  static constexpr std::size_t kInlineSegs = 4;

  Path() = default;
  explicit Path(Vec2 start) : start_(start), end_(start) {}

  /// Straight move to `to`.
  Path& lineTo(Vec2 to);
  /// Arc around `center` by signed `sweep` radians from the current point.
  Path& arcAround(Vec2 center, double sweep);

  Vec2 start() const { return start_; }
  Vec2 end() const { return end_; }
  double length() const { return length_; }
  bool empty() const { return count_ == 0 || length_ <= 0.0; }

  /// Point at arclength s (clamped to [0, length]).
  Vec2 pointAt(double s) const;

  /// The path mapped through a similarity transform (arc sweeps flip sign
  /// under reflection; radii scale).
  Path transformed(const Similarity& t) const;

  std::span<const PathSeg> segments() const {
    return overflow_.empty() ? std::span<const PathSeg>(inline_.data(), count_)
                             : std::span<const PathSeg>(overflow_);
  }

 private:
  void push(const PathSeg& seg);

  Vec2 start_{};
  Vec2 end_{};
  double length_ = 0.0;
  std::size_t count_ = 0;  ///< total segments (inline or spilled)
  std::array<PathSeg, kInlineSegs> inline_{};
  /// Non-empty only past kInlineSegs; then it holds ALL segments.
  std::vector<PathSeg> overflow_;
};

}  // namespace apf::geom
