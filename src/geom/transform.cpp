#include "geom/transform.h"

#include <cassert>
#include <cmath>

#include "geom/angle.h"

namespace apf::geom {

Similarity::Similarity(double angle, double scale, bool reflect, Vec2 offset)
    : angle_(angle), scale_(scale), reflect_(reflect), offset_(offset) {
  assert(scale_ > 0.0);
}

Vec2 Similarity::applyLinear(Vec2 v) const {
  Vec2 m = reflect_ ? Vec2{v.x, -v.y} : v;
  return m.rotated(angle_) * scale_;
}

Vec2 Similarity::apply(Vec2 p) const { return applyLinear(p) + offset_; }

Similarity operator*(const Similarity& a, const Similarity& b) {
  // Linear parts: A = s_a R_a M_a, B = s_b R_b M_b.
  // A * B = s_a s_b R_a M_a R_b M_b. Using M R(t) = R(-t) M:
  //   M_a R_b = R(+-b) M_a, so the composed rotation is a + (a.reflect? -b : b)
  // and the composed reflection flag is xor.
  const double angle =
      a.angle_ + (a.reflect_ ? -b.angle_ : b.angle_);
  const double scale = a.scale_ * b.scale_;
  const bool reflect = a.reflect_ != b.reflect_;
  const Vec2 offset = a.apply(b.offset_);
  return {norm2pi(angle), scale, reflect, offset};
}

Similarity Similarity::inverse() const {
  // Inverse linear part of s R M is (1/s) M^-1 R^-1 = (1/s) M R(-a)... using
  // M R(-a) = R(a) M, the inverse is (1/s) R(reflect ? a : -a) M.
  const double invAngle = reflect_ ? angle_ : -angle_;
  Similarity inv{norm2pi(invAngle), 1.0 / scale_, reflect_, {}};
  inv.offset_ = -inv.applyLinear(offset_);
  return inv;
}

}  // namespace apf::geom
