#pragma once

/// \file fuzzer.h
/// Schedule fuzzer: runs an algorithm from one start under many distinct
/// adversarial schedules, checking SAFETY invariants at every position
/// change (collision-freedom, enclosing-circle stability) and aggregating
/// coverage (distinct configurations visited, via canonical signatures).
/// This is the repository's stand-in for the paper's hand proofs of the
/// ASYNC invariants: it cannot prove, but it hunts counterexamples
/// systematically and is cheap enough to run inside the test suite.
///
/// Fault-aware campaigns: the same invariants are checked for the LIVE
/// robots while a FaultPlan (crash-stop robots, sensor noise/omission,
/// compute faults) is active — the degradation question is not only "does
/// the pattern still form" but "do the survivors at least stay safe".
/// Every run that violates an invariant is surfaced in
/// FuzzResult::failures with its exact seed and adversary aggression, so a
/// CI log line is enough to reproduce the counterexample.

#include <map>
#include <string>
#include <vector>

#include "config/configuration.h"
#include "fault/fault.h"
#include "sim/algorithm.h"
#include "sim/engine.h"

namespace apf::sim {

struct FuzzOptions {
  /// Number of distinct schedules (engine seeds) to explore.
  int schedules = 40;
  std::uint64_t maxEventsPerRun = 300000;
  double delta = 0.05;
  /// Adversary aggression sweep: each run alternates earlyStopProb across
  /// {0.1, 0.5, 0.9}.
  bool sweepAggression = true;
  bool multiplicityDetection = false;
  /// Expect every run to terminate successfully (pattern formed); when
  /// false only safety is checked.
  bool expectSuccess = true;
  /// Worker threads for the campaign (see sim/campaign.h): 0 = resolve from
  /// APF_JOBS / hardware concurrency, 1 = serial (no threads spawned). The
  /// merged FuzzResult is bit-identical for every value.
  int jobs = 0;

  // --- fault campaign knobs (all off by default) -----------------------
  /// Crash-stop faults per run; victims and crash events are re-drawn per
  /// run from the engine seed, so a campaign explores many crash timings.
  int crashCount = 0;
  /// Scheduler-event horizon within which crashes are scheduled.
  std::uint64_t crashHorizon = 4000;
  /// Sensor/compute fault probabilities, applied to every run (see
  /// fault::FaultPlan for semantics).
  double noiseSigma = 0.0;
  double omitProb = 0.0;
  double multFlipProb = 0.0;
  double dropProb = 0.0;
  double truncProb = 0.0;

  bool faultsRequested() const {
    return crashCount > 0 || noiseSigma > 0.0 || omitProb > 0.0 ||
           multFlipProb > 0.0 || dropProb > 0.0 || truncProb > 0.0;
  }
};

/// One run that violated a safety invariant: everything needed to replay
/// it exactly. `seed`/`earlyStopProb`/`plan` plug straight into
/// EngineOptions with the same start and pattern; sim/shrink.h turns a
/// failure into a minimized, self-contained `.repro.json`.
struct FuzzFailure {
  std::uint64_t seed = 0;
  double earlyStopProb = 0.0;
  std::string violation;
  /// Which invariant broke: "collision" or "sec_growth".
  std::string violationKind;
  /// The exact per-run fault plan (crash victims/timings are re-drawn per
  /// run, so the campaign-level FuzzOptions are not enough to replay).
  fault::FaultPlan plan;
  /// Campaign run index the failure came from.
  int run = 0;
};

struct FuzzResult {
  int runs = 0;
  int terminated = 0;
  int successes = 0;
  /// Run-outcome tally (Outcome enum order: success, stalled,
  /// crashed_short, safety_violation).
  std::map<Outcome, int> outcomes;
  /// Distinct configurations (up to similarity) seen across ALL runs.
  std::size_t distinctConfigurations = 0;
  /// Safety: no unintended multiplicity point was ever created among live
  /// (non-crashed) robots.
  bool collisionFree = true;
  /// Safety: the enclosing circle of the live robots stays bounded. It may
  /// grow slightly during the election (outward walk steps of |r|/7 — the
  /// algorithm is scale-free and renormalizes every Look), but never by
  /// more than the generous factor below; psi_DPF then holds it exactly.
  bool secBounded = true;
  double maxSecGrowthFactor = 1.0;
  static constexpr double kSecGrowthBound = 2.0;
  /// Every run that violated an invariant, with its replay coordinates.
  /// Empty when clean; failures.front().violation == firstViolation.
  std::vector<FuzzFailure> failures;
  /// First violation, human-readable (empty when clean). Kept for
  /// back-compat; `failures` carries the actionable per-run records.
  std::string firstViolation;

  bool clean() const { return collisionFree && secBounded; }
};

/// Runs the fuzz campaign. Deterministic given the inputs.
FuzzResult fuzzSchedules(const Algorithm& algo,
                         const config::Configuration& start,
                         const config::Configuration& pattern,
                         const FuzzOptions& opts = {});

}  // namespace apf::sim
