#pragma once

/// \file fuzzer.h
/// Schedule fuzzer: runs an algorithm from one start under many distinct
/// adversarial schedules, checking SAFETY invariants at every position
/// change (collision-freedom, enclosing-circle stability) and aggregating
/// coverage (distinct configurations visited, via canonical signatures).
/// This is the repository's stand-in for the paper's hand proofs of the
/// ASYNC invariants: it cannot prove, but it hunts counterexamples
/// systematically and is cheap enough to run inside the test suite.

#include <string>

#include "config/configuration.h"
#include "sim/algorithm.h"
#include "sim/engine.h"

namespace apf::sim {

struct FuzzOptions {
  /// Number of distinct schedules (engine seeds) to explore.
  int schedules = 40;
  std::uint64_t maxEventsPerRun = 300000;
  double delta = 0.05;
  /// Adversary aggression sweep: each run alternates earlyStopProb across
  /// {0.1, 0.5, 0.9}.
  bool sweepAggression = true;
  bool multiplicityDetection = false;
  /// Expect every run to terminate successfully (pattern formed); when
  /// false only safety is checked.
  bool expectSuccess = true;
};

struct FuzzResult {
  int runs = 0;
  int terminated = 0;
  int successes = 0;
  /// Distinct configurations (up to similarity) seen across ALL runs.
  std::size_t distinctConfigurations = 0;
  /// Safety: no unintended multiplicity point was ever created.
  bool collisionFree = true;
  /// Safety: the enclosing circle stays bounded. It may grow slightly
  /// during the election (outward walk steps of |r|/7 — the algorithm is
  /// scale-free and renormalizes every Look), but never by more than the
  /// generous factor below; psi_DPF then holds it exactly.
  bool secBounded = true;
  double maxSecGrowthFactor = 1.0;
  static constexpr double kSecGrowthBound = 2.0;
  /// First violation, human-readable (empty when clean).
  std::string firstViolation;

  bool clean() const { return collisionFree && secBounded; }
};

/// Runs the fuzz campaign. Deterministic given the inputs.
FuzzResult fuzzSchedules(const Algorithm& algo,
                         const config::Configuration& start,
                         const config::Configuration& pattern,
                         const FuzzOptions& opts = {});

}  // namespace apf::sim
