#pragma once

/// \file shrink.h
/// Delta-debugging minimizer for fuzzer counterexamples
/// (docs/RESILIENCE.md). A FuzzFailure is an exact replay coordinate (seed
/// + adversary aggression + per-run fault plan) but usually a needlessly
/// BIG one: the violation that needed 10 robots and 3 crash faults to be
/// *found* often reproduces with 4 robots and none. The shrinker greedily
/// removes robots, fault-plan entries, and adversary aggression while the
/// violation still reproduces, and the result serializes as a
/// self-contained `.repro.json` (schema "apf.repro.v1") that
/// `apf_sim --replay` re-executes exactly — the minimal artifact the
/// paper-style case analysis actually wants to look at.
///
/// Layering: the shrinker never names a concrete algorithm (core depends
/// on sim, not vice versa) — callers pass the `Algorithm&` and the repro
/// carries only its name string, which `apf_sim --replay` maps back to an
/// instance.

#include <cstdint>
#include <string>
#include <string_view>

#include "config/configuration.h"
#include "fault/fault.h"
#include "obs/json.h"
#include "sched/scheduler.h"
#include "sim/algorithm.h"
#include "sim/fuzzer.h"
#include "sim/metrics.h"

namespace apf::sim {

/// A self-contained, exactly replayable counterexample.
struct ReproCase {
  static constexpr const char* kSchema = "apf.repro.v1";

  std::string algo = "form";  ///< algorithm name (apf_sim --algo spelling)
  config::Configuration start;
  config::Configuration pattern;
  std::uint64_t seed = 1;
  std::uint64_t maxEvents = 300000;
  double delta = 0.05;
  double earlyStopProb = 0.5;
  bool multiplicityDetection = false;
  bool commonChirality = false;
  sched::SchedulerKind sched = sched::SchedulerKind::Async;
  fault::FaultPlan fault;
  /// Expected safety violation: "collision" or "sec_growth".
  std::string violationKind;
};

/// Outcome of re-executing a ReproCase under the fuzzer's safety observer.
struct ReplayResult {
  bool violated = false;
  std::string violationKind;  ///< first violation's kind (empty when clean)
  std::string violation;      ///< human-readable detail
  std::uint64_t violationEvent = 0;  ///< scheduler event of that violation
  RunResult run;

  /// True when the replay hit the violation the case promises.
  bool reproduces(const ReproCase& c) const {
    return violated &&
           (c.violationKind.empty() || violationKind == c.violationKind);
  }
};

/// Re-executes the case (same engine configuration and safety invariants
/// as sim/fuzzer.cpp) and reports the first violation, if any.
/// Deterministic given (case, algo).
ReplayResult replay(const ReproCase& c, const Algorithm& algo);

/// Builds the (unshrunk) ReproCase for one fuzzer failure. `opts` must be
/// the FuzzOptions the campaign ran with; start/pattern likewise.
ReproCase reproFromFailure(const std::string& algoName,
                           const config::Configuration& start,
                           const config::Configuration& pattern,
                           const FuzzOptions& opts,
                           const FuzzFailure& failure);

/// Exact configuration (de)serialization shared by every wire schema that
/// embeds robot coordinates (apf.repro.v1, apf.shard.v1): a JSON
/// `[[x,y],...]` array whose doubles use the shortest form that parses
/// back bit-identical (obs::jsonNumber), so embedded configurations never
/// perturb a replay. pointsFromJson throws std::runtime_error (prefixed
/// with `what`) on anything that is not an array of [x,y] pairs.
std::string pointsJson(const config::Configuration& c);
config::Configuration pointsFromJson(const obs::JsonNode& node,
                                     const char* what);

/// Nested-JSON (de)serialization. Doubles use the shortest exact form and
/// 64-bit seeds survive via raw-token parsing, so
/// `reproFromJson(toJson(c))` round-trips every field bit for bit.
/// reproFromJson/loadRepro throw std::runtime_error on malformed input or
/// a schema mismatch.
std::string toJson(const ReproCase& c);
ReproCase reproFromJson(std::string_view text);
ReproCase loadRepro(const std::string& path);
/// Writes toJson() + newline, creating parent directories.
void saveRepro(const std::string& path, const ReproCase& c);

struct ShrinkOptions {
  /// Greedy fixpoint passes over all reduction kinds.
  int maxPasses = 8;
  /// Hard cap on candidate replays (each is one full engine run).
  int maxProbes = 2000;
  /// After minimizing, clamp maxEvents to just past the violation so the
  /// repro replays in milliseconds.
  bool shrinkEventBudget = true;
};

struct ShrinkResult {
  ReproCase minimized;
  /// False when the INPUT case did not reproduce — minimized is then the
  /// input, untouched.
  bool initialReproduced = false;
  int probes = 0;    ///< candidate replays executed
  int accepted = 0;  ///< candidates that kept the violation
  std::size_t robotsRemoved = 0;
  std::size_t crashesRemoved = 0;
  int knobsCleared = 0;  ///< fault probabilities zeroed / sigma halvings
};

/// Greedy delta-debugging: repeatedly tries removing one robot (with its
/// pattern point, remapping crash victims), removing one crash entry,
/// zeroing fault probabilities (halving sigma when zero fails), and
/// lowering earlyStopProb — accepting any candidate that still reproduces
/// the violation kind — until a pass makes no progress.
ShrinkResult shrink(const ReproCase& failing, const Algorithm& algo,
                    const ShrinkOptions& opts = {});

}  // namespace apf::sim
