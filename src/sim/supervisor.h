#pragma once

/// \file supervisor.h
/// Resilience layer around sim::runCampaign (docs/RESILIENCE.md): watchdog
/// deadlines, bounded retry with quarantine, and crash-safe checkpoint
/// journaling. A campaign of a million seeded runs must survive one
/// livelocked schedule, one throwing worker, and one SIGKILL without
/// discarding everything it already computed — and it must do so without
/// perturbing a single bit of the merged output of the runs that succeed.
///
/// Determinism contract (tests/supervisor_test.cpp):
///  * A supervised campaign whose items all succeed on their first attempt
///    merges bit-identical to the unsupervised runCampaign — the supervisor
///    adds no RNG draws, no reordering, and (cycle watchdogs only) no
///    clock-dependent behavior.
///  * Cycle budgets (Watchdog::poll with wall budget 0) are exact: the
///    same item times out at the same cycle count on every machine. Wall
///    budgets are inherently nondeterministic and exist for CI liveness;
///    use cycle budgets wherever reproducibility matters.
///  * Retry policy: attempt 1 reuses the SAME seed as attempt 0 (seedSalt
///    0) to prove determinism — if it fails identically, the failure is a
///    property of the item, not of scheduling noise, and the item is
///    quarantined immediately with `deterministic = true`. Only a
///    *differing* second failure rotates the seed (retrySeedSalt) for
///    later attempts.
///  * With a CampaignJournal attached, merged results always pass through
///    the codec (decode(encode(r))), so a resumed campaign — which replays
///    decoded journal payloads for completed items — merges bit-identical
///    to an uninterrupted one by construction.
///
/// Quarantine is a structured report, not an abort: persistently failing
/// items are recorded (index, classified failure kinds, per-attempt
/// messages) and the pool keeps draining the remaining items. Callers
/// decide whether a non-empty quarantine fails the job.

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/manifest.h"
#include "obs/recorder.h"
#include "sim/campaign.h"

namespace apf::sim {

/// Why a supervised attempt failed.
enum class FailureKind : std::uint8_t {
  TimeoutCycles,  ///< watchdog cycle budget exhausted (deterministic)
  TimeoutWall,    ///< watchdog wall-clock budget exhausted
  Exception,      ///< worker threw (engine error, bad plan, ...)
};

/// Stable wire name ("timeout_cycles" / "timeout_wall" / "exception").
const char* failureKindName(FailureKind kind);

/// Thrown out of Engine::run (via EngineOptions::watchdog) or any worker
/// that polls a Watchdog, and caught by the supervisor's attempt loop.
class WatchdogExpired : public std::runtime_error {
 public:
  WatchdogExpired(FailureKind kind, std::uint64_t atCycles,
                  const std::string& what)
      : std::runtime_error(what), kind_(kind), atCycles_(atCycles) {}
  FailureKind kind() const { return kind_; }
  /// Cycle counter value at expiry (exact for cycle budgets; the value at
  /// the detecting poll for wall budgets).
  std::uint64_t atCycles() const { return atCycles_; }

 private:
  FailureKind kind_;
  std::uint64_t atCycles_;
};

/// Cooperative deadline. The supervised code polls it at a deterministic
/// granularity — the engine polls once per scheduler event (LCM-step
/// granularity), so a cycle budget trips at the exact same point of the
/// exact same run on every machine. The wall budget is checked every
/// kWallCheckInterval polls to keep clock reads off the hot path; a budget
/// of 0 disables the corresponding check.
class Watchdog {
 public:
  static constexpr std::uint64_t kWallCheckInterval = 128;

  Watchdog(std::uint64_t cycleBudget, std::uint64_t wallBudgetNanos)
      : cycleBudget_(cycleBudget), wallBudgetNanos_(wallBudgetNanos) {}

  std::uint64_t cycleBudget() const { return cycleBudget_; }
  std::uint64_t wallBudgetNanos() const { return wallBudgetNanos_; }

  /// Throws WatchdogExpired when a budget is exhausted. `cycles` is the
  /// supervised code's own deterministic progress counter (the engine
  /// passes Metrics::events).
  void poll(std::uint64_t cycles) {
    if (cycleBudget_ != 0 && cycles >= cycleBudget_) {
      throw WatchdogExpired(
          FailureKind::TimeoutCycles, cycles,
          "watchdog: cycle budget " + std::to_string(cycleBudget_) +
              " exhausted");
    }
    if (wallBudgetNanos_ != 0 && ++polls_ % kWallCheckInterval == 0) {
      const std::uint64_t now = obs::nowNanos();
      if (deadlineNanos_ == 0) {
        // Lazily armed at the first wall check so construction stays free.
        deadlineNanos_ = now + wallBudgetNanos_;
      } else if (now >= deadlineNanos_) {
        throw WatchdogExpired(
            FailureKind::TimeoutWall, cycles,
            "watchdog: wall budget " + std::to_string(wallBudgetNanos_) +
                "ns exhausted");
      }
    }
  }

 private:
  std::uint64_t cycleBudget_ = 0;
  std::uint64_t wallBudgetNanos_ = 0;
  std::uint64_t deadlineNanos_ = 0;
  std::uint64_t polls_ = 0;
};

struct SupervisorOptions {
  /// Per-attempt cycle budget (engine scheduler events); 0 = no limit.
  std::uint64_t cycleBudget = 0;
  /// Per-attempt wall budget in nanoseconds; 0 = no limit. Nondeterministic
  /// by nature — prefer cycleBudget for anything reproducible.
  std::uint64_t wallBudgetNanos = 0;
  /// Failed attempts are retried up to this many times (attempt 0 plus
  /// maxRetries further attempts). 0 = quarantine on first failure.
  int maxRetries = 2;
  /// Sink for run_timeout / run_retried / run_quarantined / checkpoint
  /// events. Events are emitted on the merge thread, in merge order, so the
  /// sink needs no locking and supervised logs are deterministic.
  obs::Recorder* recorder = nullptr;
};

/// What the supervisor hands a worker about the attempt it is executing.
/// Workers that want deadline enforcement must poll `watchdog` (the engine
/// does when EngineOptions::watchdog is set); workers that want reseeded
/// retries must fold `seedSalt` into their seed (XOR is fine — salts are
/// splitmix64-mixed). Ignoring both is valid: the supervisor still
/// classifies exceptions and retries.
struct Attempt {
  int number = 0;             ///< 0 = first attempt
  std::uint64_t seedSalt = 0; ///< 0 for attempts 0 and 1 (same-seed proof)
  Watchdog* watchdog = nullptr;
};

/// Salt for attempt `number`: 0 for attempts 0 and 1 (the same-seed
/// determinism proof), a fixed splitmix64 mix of the attempt number after
/// that. Pure function, so a retried campaign is itself reproducible.
std::uint64_t retrySeedSalt(int number);

/// One classified failed attempt.
struct AttemptFailure {
  FailureKind kind = FailureKind::Exception;
  int attempt = 0;
  std::uint64_t seedSalt = 0;
  std::uint64_t atCycles = 0;  ///< watchdog cycles at expiry; 0 for throws
  std::string message;
};

/// Two failures that prove each other deterministic: same kind, same
/// deterministic coordinates, same message.
bool sameFailure(const AttemptFailure& a, const AttemptFailure& b);

/// An item that exhausted its retry budget (or proved deterministic).
struct QuarantinedItem {
  std::size_t index = 0;
  /// True when a same-seed retry reproduced the identical failure.
  bool deterministic = false;
  std::vector<AttemptFailure> attempts;  ///< every failed attempt, in order
};

struct SupervisorReport {
  std::uint64_t items = 0;      ///< campaign size
  std::uint64_t completed = 0;  ///< merged from a fresh worker run
  std::uint64_t replayed = 0;   ///< merged from the journal (resume)
  std::uint64_t retries = 0;    ///< failed attempts that were retried
  std::uint64_t quarantined = 0;
  std::uint64_t timeoutsCycle = 0;
  std::uint64_t timeoutsWall = 0;
  std::uint64_t exceptions = 0;
  std::vector<QuarantinedItem> quarantine;

  bool allCompleted() const { return quarantined == 0; }
  /// Folds another report into this one (bench cells aggregating).
  void absorb(const SupervisorReport& other);
  /// Structured nested-JSON report (schema "apf.supervisor.v1") including
  /// the full quarantine list.
  std::string toJson() const;
  /// Writes toJson() + newline, creating parent directories.
  void write(const std::string& path) const;
};

/// Inverse of SupervisorReport::toJson — the wire path a sharded
/// coordinator absorbs worker-process reports through (sim/shard.h).
/// Throws std::runtime_error on malformed input or a schema other than
/// "apf.supervisor.v1" (cross-version reports must be refused loudly, not
/// merged approximately).
SupervisorReport supervisorReportFromJson(std::string_view text);
/// Reads and parses a report file written by SupervisorReport::write.
SupervisorReport loadSupervisorReport(const std::string& path);

/// `supervisor.*` manifest keys (consumed by apf_report's resilience
/// section). Options and report are serialized together so a manifest
/// records both the policy and what it did.
void appendManifest(const SupervisorOptions& opts,
                    const SupervisorReport& report, obs::Manifest& manifest);

/// Resume-invariant variant: collapses the fresh-vs-replayed split into a
/// single `supervisor.finished` key (their sum IS invariant) so a resumed
/// or sharded campaign's manifest stays byte-identical to an
/// uninterrupted single-process one — the same reasoning that keeps the
/// split out of apf_sim's --json document.
void appendManifestInvariant(const SupervisorOptions& opts,
                             const SupervisorReport& report,
                             obs::Manifest& manifest);

/// Crash-safe campaign checkpoint: one fsync'd JSONL file. Line 1 is a
/// header `{"journal":"apf.journal.v1","config":<key>}`; every later line
/// is `{"i":<index>,"payload":<encoded result>}`, appended + fsync'd the
/// moment the item merges. A process killed mid-write leaves at most one
/// torn final line, which resume drops (and truncates away) — so a resumed
/// journal file converges byte-identical to an uninterrupted one.
class CampaignJournal {
 public:
  static constexpr const char* kSchema = "apf.journal.v1";

  /// Opens (resume = true) or creates/truncates (resume = false) the
  /// journal. `configKey` identifies the campaign — resuming a journal
  /// whose header records a different key throws, because merging results
  /// of a different experiment would be silent corruption.
  CampaignJournal(std::string path, std::string configKey, bool resume);
  ~CampaignJournal();
  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  const std::string& path() const { return path_; }
  /// True when resume dropped a torn final line (the SIGKILL signature).
  bool recoveredTornLine() const { return recoveredTornLine_; }
  std::size_t completedCount() const { return entries_.size(); }
  bool has(std::size_t index) const { return entries_.count(index) != 0; }
  /// Payload journaled for `index`, or nullptr.
  const std::string* payload(std::size_t index) const;
  /// Appends + flushes + fsyncs one completed item. Throws on I/O failure.
  void append(std::size_t index, const std::string& payload);

 private:
  std::string path_;
  std::string configKey_;
  std::map<std::size_t, std::string> entries_;
  std::FILE* file_ = nullptr;
  bool recoveredTornLine_ = false;
};

/// Result codec for journaled campaigns. `decode(encode(r))` must be a
/// fixed point w.r.t. merge (the supervisor ALWAYS merges the decoded
/// re-encoding when a journal is attached, so fresh and resumed campaigns
/// cannot diverge even if the codec is lossy).
template <typename Result>
struct JournalCodec {
  std::function<std::string(const Result&)> encode;
  std::function<Result(const std::string&)> decode;
};

namespace detail {

/// Per-item record the supervised worker posts through the mailbox.
template <typename Result>
struct Supervised {
  bool ok = false;
  Result result{};  // valid iff ok
  bool deterministic = false;
  std::vector<AttemptFailure> failures;  // non-empty iff retried or !ok
};

/// Runs the attempt loop for one item. Worker signature:
///   Result worker(const Item& item, std::size_t index, const Attempt&)
template <typename Item, typename Worker, typename Result>
Supervised<Result> runAttempts(const Item& item, std::size_t index,
                               Worker& worker,
                               const SupervisorOptions& opts) {
  Supervised<Result> out;
  const int maxAttempts = 1 + (opts.maxRetries > 0 ? opts.maxRetries : 0);
  for (int number = 0; number < maxAttempts; ++number) {
    Watchdog dog(opts.cycleBudget, opts.wallBudgetNanos);
    Attempt attempt;
    attempt.number = number;
    attempt.seedSalt = retrySeedSalt(number);
    attempt.watchdog = &dog;
    try {
      out.result = worker(item, index, attempt);
      out.ok = true;
      return out;
    } catch (const WatchdogExpired& e) {
      out.failures.push_back({e.kind(), number, attempt.seedSalt,
                              e.atCycles(), e.what()});
    } catch (const std::exception& e) {
      out.failures.push_back(
          {FailureKind::Exception, number, attempt.seedSalt, 0, e.what()});
    }
    if (number == 1 && sameFailure(out.failures[0], out.failures[1])) {
      // Same seed, same failure: deterministic. Retrying with rotated
      // seeds would only change the experiment, not fix the item.
      out.deterministic = true;
      return out;
    }
  }
  return out;
}

/// Merge-thread bookkeeping shared by the plain and journaled overloads:
/// classifies failures into the report and emits supervisor events (on the
/// merge thread only — Recorder is not thread-safe, and merge order makes
/// the event log deterministic).
class MergeSink {
 public:
  MergeSink(SupervisorReport& report, const SupervisorOptions& opts)
      : report_(report), recorder_(opts.recorder) {}

  /// Failed attempts of an item that eventually succeeded.
  void recordRetries(std::size_t index,
                     const std::vector<AttemptFailure>& failures);
  void recordQuarantine(std::size_t index, bool deterministic,
                        std::vector<AttemptFailure> failures);
  void recordCheckpoint(std::size_t index, std::size_t payloadBytes);

 private:
  void classify(const AttemptFailure& failure);
  void emitFailure(std::size_t index, const AttemptFailure& failure,
                   bool retried);

  SupervisorReport& report_;
  obs::Recorder* recorder_;
  std::uint64_t eventIndex_ = 0;
};

}  // namespace detail

/// Supervised analogue of runCampaign. Worker signature gains the Attempt:
///   Result worker(const Item& item, std::size_t index, const Attempt&)
/// merge(index, Result&&) is only called for items that completed; failed
/// items land in the returned report's quarantine instead of aborting the
/// pool. Exceptions escaping merge itself still cancel the campaign.
template <typename Item, typename Worker, typename Merge>
SupervisorReport superviseCampaign(const std::vector<Item>& items,
                                   Worker&& worker, Merge&& merge,
                                   const SupervisorOptions& opts = {},
                                   int jobs = 0,
                                   CampaignStats* stats = nullptr) {
  using Result = std::invoke_result_t<Worker&, const Item&, std::size_t,
                                      const Attempt&>;
  SupervisorReport report;
  report.items = items.size();
  detail::MergeSink sink(report, opts);
  runCampaign(
      items,
      [&worker, &opts](const Item& item, std::size_t index) {
        return detail::runAttempts<Item, Worker, Result>(item, index, worker,
                                                         opts);
      },
      [&](std::size_t index, detail::Supervised<Result>&& s) {
        if (s.ok) {
          sink.recordRetries(index, s.failures);
          ++report.completed;
          merge(index, std::move(s.result));
        } else {
          sink.recordQuarantine(index, s.deterministic,
                                std::move(s.failures));
        }
      },
      jobs, stats);
  return report;
}

/// Journaled overload: items already present in `journal` are NOT re-run —
/// their payloads are decoded and merged in place (report.replayed) — and
/// every freshly completed item is appended + fsync'd before its merge
/// callback runs, so a crash after the callback never loses the item.
/// Merged values always pass through decode(encode(...)); see
/// JournalCodec for why that makes resume bit-identical by construction.
template <typename Item, typename Worker, typename Merge>
SupervisorReport superviseCampaign(const std::vector<Item>& items,
                                   Worker&& worker, Merge&& merge,
                                   CampaignJournal& journal,
                                   const JournalCodec<std::invoke_result_t<
                                       Worker&, const Item&, std::size_t,
                                       const Attempt&>>& codec,
                                   const SupervisorOptions& opts = {},
                                   int jobs = 0,
                                   CampaignStats* stats = nullptr) {
  using Result = std::invoke_result_t<Worker&, const Item&, std::size_t,
                                      const Attempt&>;
  SupervisorReport report;
  report.items = items.size();
  detail::MergeSink sink(report, opts);

  // Only the incomplete indices go to the pool; completed ones replay from
  // the journal. Merge callbacks still fire in GLOBAL index order: before
  // merging fresh item i, every journaled item < i is flushed first.
  std::vector<std::size_t> todo;
  todo.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!journal.has(i)) todo.push_back(i);
  }

  std::size_t cursor = 0;  // first index not yet handed to merge
  auto flushJournaled = [&](std::size_t limit) {
    for (; cursor < limit; ++cursor) {
      if (const std::string* payload = journal.payload(cursor)) {
        ++report.replayed;
        merge(cursor, codec.decode(*payload));
      }
    }
  };

  runCampaign(
      todo,
      [&worker, &opts, &items](std::size_t index, std::size_t) {
        return detail::runAttempts<Item, Worker, Result>(items[index], index,
                                                         worker, opts);
      },
      [&](std::size_t t, detail::Supervised<Result>&& s) {
        const std::size_t index = todo[t];
        flushJournaled(index);
        cursor = index + 1;
        if (s.ok) {
          sink.recordRetries(index, s.failures);
          const std::string payload = codec.encode(s.result);
          journal.append(index, payload);
          sink.recordCheckpoint(index, payload.size());
          ++report.completed;
          merge(index, codec.decode(payload));
        } else {
          sink.recordQuarantine(index, s.deterministic,
                                std::move(s.failures));
        }
      },
      jobs, stats);
  flushJournaled(items.size());
  return report;
}

}  // namespace apf::sim
