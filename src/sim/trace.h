#pragma once

/// \file trace.h
/// Structured execution traces: a compact record of every position change
/// (who, when, where, which phase ordered it), attachable to an Engine via
/// its observer hook. Used by the examples for visualization, by tests for
/// invariant checking along executions, and exportable to CSV for external
/// analysis.

#include <vector>

#include "config/configuration.h"
#include "sim/engine.h"

namespace apf::sim {

/// One recorded step: robot `robot` reached `position` at scheduler event
/// `event`, while executing an action tagged `phaseTag`.
struct TraceStep {
  std::uint64_t event = 0;
  std::size_t robot = 0;
  geom::Vec2 position;
  int phaseTag = 0;
};

class Trace {
 public:
  /// Attaches to the engine (replaces its observer). Records the initial
  /// configuration immediately.
  void attach(Engine& engine);

  const config::Configuration& initial() const { return initial_; }
  const std::vector<TraceStep>& steps() const { return steps_; }

  /// Per-robot polyline of visited positions (initial + every change).
  std::vector<std::vector<geom::Vec2>> trails() const;

  /// Total path length per robot (sum of recorded displacements).
  std::vector<double> distances() const;

  /// Writes steps as CSV: event,robot,x,y,phase.
  void writeCsv(const std::string& path) const;

 private:
  config::Configuration initial_;
  std::vector<TraceStep> steps_;
};

}  // namespace apf::sim
