#include "sim/campaign.h"

#include "cli/env.h"

namespace apf::sim {

int campaignJobs(int requested) {
  if (requested > 0) return requested > 512 ? 512 : requested;
  // Deliberately re-reads the environment each call (tests vary APF_JOBS
  // between campaigns within one process) via the shared parse-and-warn
  // path in cli/env.h, instead of cli::env()'s once-per-process snapshot.
  if (const int jobs = cli::jobsFromEnv(); jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void appendManifest(const CampaignStats& stats, obs::Manifest& manifest) {
  manifest.set("campaign.jobs", stats.jobs);
  manifest.set("campaign.items", stats.items);
  manifest.set("campaign.wall_nanos", stats.wallNanos);
  manifest.set("campaign.worker_busy_nanos", stats.workerBusyNanos);
  manifest.set("campaign.worker_idle_nanos", stats.workerIdleNanos);
  manifest.set("campaign.utilization", stats.utilization());
  manifest.set("campaign.mailbox_high_water", stats.mailboxHighWater);
  manifest.set("campaign.pending_high_water", stats.pendingHighWater);
  manifest.set("campaign.merge_stall_nanos", stats.mergeStallNanos);
  manifest.set("campaign.merge_nanos", stats.mergeNanos);
}

}  // namespace apf::sim
