#include "sim/campaign.h"

#include <cstdio>
#include <cstdlib>

namespace apf::sim {

int campaignJobs(int requested) {
  if (requested > 0) return requested > 512 ? 512 : requested;
  if (const char* v = std::getenv("APF_JOBS"); v != nullptr && *v != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(v, &end, 10);
    if (end != v && *end == '\0' && parsed >= 1) {
      return parsed > 512 ? 512 : static_cast<int>(parsed);
    }
    // Garbage ("abc", "4x", "0", "-2") used to fall through silently, and a
    // typo'd APF_JOBS=l6 quietly ran a different experiment. Warn once per
    // resolution; the fallback itself is unchanged.
    std::fprintf(stderr,
                 "apf: ignoring unparsable APF_JOBS=\"%s\" "
                 "(want an integer >= 1); using hardware concurrency\n",
                 v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void appendManifest(const CampaignStats& stats, obs::Manifest& manifest) {
  manifest.set("campaign.jobs", stats.jobs);
  manifest.set("campaign.items", stats.items);
  manifest.set("campaign.wall_nanos", stats.wallNanos);
  manifest.set("campaign.worker_busy_nanos", stats.workerBusyNanos);
  manifest.set("campaign.worker_idle_nanos", stats.workerIdleNanos);
  manifest.set("campaign.utilization", stats.utilization());
  manifest.set("campaign.mailbox_high_water", stats.mailboxHighWater);
  manifest.set("campaign.pending_high_water", stats.pendingHighWater);
  manifest.set("campaign.merge_stall_nanos", stats.mergeStallNanos);
  manifest.set("campaign.merge_nanos", stats.mergeNanos);
}

}  // namespace apf::sim
