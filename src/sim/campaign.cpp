#include "sim/campaign.h"

#include <cstdlib>

namespace apf::sim {

int campaignJobs(int requested) {
  if (requested > 0) return requested > 512 ? 512 : requested;
  if (const char* v = std::getenv("APF_JOBS"); v != nullptr && *v != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(v, &end, 10);
    if (end != v && *end == '\0' && parsed >= 1) {
      return parsed > 512 ? 512 : static_cast<int>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace apf::sim
