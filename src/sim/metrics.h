#pragma once

/// \file metrics.h
/// Execution metrics collected by the engine: the quantities the paper's
/// claims are stated in (cycles, random bits) plus diagnostics from the
/// observability layer (histograms, wall-time accumulators). Everything
/// here is a plain value copied out with the RunResult.

#include <cstdint>
#include <map>

#include "obs/stats.h"

namespace apf::sim {

struct Metrics {
  /// Completed Look-Compute-Move cycles, summed over robots.
  std::uint64_t cycles = 0;
  /// Scheduler events processed (activations at event granularity).
  std::uint64_t events = 0;
  /// Random bits consumed by the algorithm (not the adversary).
  std::uint64_t randomBits = 0;
  /// Total distance traveled by all robots.
  double distance = 0.0;
  /// Activations per algorithm phase tag (see core/phases.h).
  std::map<int, std::uint64_t> phaseActivations;

  // --- observability extensions ---------------------------------------
  /// Election rounds: Compute activations that flipped the election's
  /// random bit (the paper's "one bit per robot per cycle" events).
  std::uint64_t electionRounds = 0;
  /// Snapshot staleness at Compute time, in configuration versions
  /// (version at Compute minus version captured at Look). Always
  /// collected: the update is two integer adds per activation.
  obs::Histogram staleness;
  /// Wall time of the engine's Look / Compute / Move sections. Only
  /// populated when EngineOptions::collectTimings (or a recorder) is set —
  /// clock reads are not free on the hot path.
  obs::Timer lookTime;
  obs::Timer computeTime;
  obs::Timer moveTime;
  /// Wall nanoseconds of algorithm Compute calls per phase tag (timed
  /// runs only).
  std::map<int, std::uint64_t> phaseNanos;
};

/// Result of one simulation run.
struct RunResult {
  /// True when the run reached a terminal configuration (no robot moves,
  /// none moving) before the step limit.
  bool terminated = false;
  /// True when the final configuration is similar to the target pattern.
  bool success = false;
  Metrics metrics;
};

}  // namespace apf::sim
