#pragma once

/// \file metrics.h
/// Execution metrics collected by the engine: the quantities the paper's
/// claims are stated in (cycles, random bits) plus diagnostics from the
/// observability layer (histograms, wall-time accumulators). Everything
/// here is a plain value copied out with the RunResult.

#include <cstdint>
#include <map>

#include "config/configuration.h"
#include "obs/stats.h"

namespace apf::sim {

struct Metrics {
  /// Completed Look-Compute-Move cycles, summed over robots.
  std::uint64_t cycles = 0;
  /// Scheduler events processed (activations at event granularity).
  std::uint64_t events = 0;
  /// Random bits consumed by the algorithm (not the adversary).
  std::uint64_t randomBits = 0;
  /// Total distance traveled by all robots.
  double distance = 0.0;
  /// Activations per algorithm phase tag (see core/phases.h).
  std::map<int, std::uint64_t> phaseActivations;

  // --- observability extensions ---------------------------------------
  /// Election rounds: Compute activations that flipped the election's
  /// random bit (the paper's "one bit per robot per cycle" events).
  std::uint64_t electionRounds = 0;
  /// Snapshot staleness at Compute time, in configuration versions
  /// (version at Compute minus version captured at Look). Always
  /// collected: the update is two integer adds per activation.
  obs::Histogram staleness;
  /// Wall time of the engine's Look / Compute / Move sections. Only
  /// populated when EngineOptions::collectTimings (or a recorder) is set —
  /// clock reads are not free on the hot path.
  obs::Timer lookTime;
  obs::Timer computeTime;
  obs::Timer moveTime;
  /// Wall nanoseconds of algorithm Compute calls per phase tag (timed
  /// runs only).
  std::map<int, std::uint64_t> phaseNanos;

  // --- fault-injection extensions --------------------------------------
  /// Sensor/compute faults injected (equals the run's FaultInjected event
  /// count; crashes are counted separately in `crashed`).
  std::uint64_t faultsInjected = 0;
  /// Robots permanently halted by crash-stop faults.
  std::uint64_t crashed = 0;

  // --- geometry-cache extensions ----------------------------------------
  /// Hit/miss counts of Configuration's memoized sec()/weberPoint() during
  /// this run (per-run delta of config::geomCacheCounters). Deterministic
  /// for any APF_JOBS: the counters are thread-local and a run is confined
  /// to one worker, so the delta depends only on the run itself.
  std::uint64_t secCacheHits = 0;
  std::uint64_t secCacheMisses = 0;
  std::uint64_t weberCacheHits = 0;
  std::uint64_t weberCacheMisses = 0;
};

/// How a run ended, beyond the boolean success/timeout pair: the outcome
/// vocabulary of the degradation harness (bench_faults, apf_report).
enum class Outcome {
  /// Pattern formed — with f crashed robots, under n-f semantics: the
  /// live robots form the pattern minus some f-point subset.
  Success,
  /// No crash, but the run either hit the event cap or went quiescent in
  /// a non-pattern configuration.
  Stalled,
  /// >= 1 robot crashed and the survivors did not reach n-f success.
  CrashedShort,
  /// An unintended multiplicity point appeared among live robots while
  /// fault injection was active (the engine only performs this check on
  /// fault runs; clean runs rely on the fuzzer's external invariants).
  SafetyViolation,
};

/// Stable wire name (the `result.outcome` manifest value).
inline const char* outcomeName(Outcome o) {
  switch (o) {
    case Outcome::Success:
      return "success";
    case Outcome::Stalled:
      return "stalled";
    case Outcome::CrashedShort:
      return "crashed_short";
    case Outcome::SafetyViolation:
      return "safety_violation";
  }
  return "?";
}

/// Result of one simulation run.
struct RunResult {
  /// True when the run reached a terminal configuration (no live robot
  /// moves, none moving) before the step limit.
  bool terminated = false;
  /// True when the final configuration (crashed robots included) is
  /// similar to the target pattern — the paper's original criterion.
  bool success = false;
  /// Fault-aware classification; Success for clean successful runs, so
  /// fault-free callers may keep reading `success` only.
  Outcome outcome = Outcome::Stalled;
  /// Global positions when the run ended (crashed robots where they
  /// halted). Lets harnesses grade near-misses without re-running.
  config::Configuration finalPositions;
  Metrics metrics;
};

}  // namespace apf::sim
