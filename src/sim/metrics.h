#pragma once

/// \file metrics.h
/// Execution metrics collected by the engine: the quantities the paper's
/// claims are stated in (cycles, random bits) plus diagnostics.

#include <cstdint>
#include <map>

namespace apf::sim {

struct Metrics {
  /// Completed Look-Compute-Move cycles, summed over robots.
  std::uint64_t cycles = 0;
  /// Scheduler events processed (activations at event granularity).
  std::uint64_t events = 0;
  /// Random bits consumed by the algorithm (not the adversary).
  std::uint64_t randomBits = 0;
  /// Total distance traveled by all robots.
  double distance = 0.0;
  /// Activations per algorithm phase tag (see core/phases.h).
  std::map<int, std::uint64_t> phaseActivations;
};

/// Result of one simulation run.
struct RunResult {
  /// True when the run reached a terminal configuration (no robot moves,
  /// none moving) before the step limit.
  bool terminated = false;
  /// True when the final configuration is similar to the target pattern.
  bool success = false;
  Metrics metrics;
};

}  // namespace apf::sim
