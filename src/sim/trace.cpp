#include "sim/trace.h"

#include <fstream>
#include <stdexcept>

namespace apf::sim {

void Trace::attach(Engine& engine) {
  initial_ = engine.positions();
  steps_.clear();
  engine.setObserver([this](const Engine& e, std::size_t robot) {
    TraceStep step;
    step.event = e.metrics().events;
    step.robot = robot;
    step.position = e.positions()[robot];
    step.phaseTag = e.lastPhaseTag(robot);
    steps_.push_back(step);
  });
}

std::vector<std::vector<geom::Vec2>> Trace::trails() const {
  std::vector<std::vector<geom::Vec2>> out(initial_.size());
  for (std::size_t i = 0; i < initial_.size(); ++i) {
    out[i].push_back(initial_[i]);
  }
  for (const TraceStep& s : steps_) {
    if (s.robot < out.size()) out[s.robot].push_back(s.position);
  }
  return out;
}

std::vector<double> Trace::distances() const {
  const auto t = trails();
  std::vector<double> out(t.size(), 0.0);
  for (std::size_t i = 0; i < t.size(); ++i) {
    for (std::size_t k = 1; k < t[i].size(); ++k) {
      out[i] += geom::dist(t[i][k - 1], t[i][k]);
    }
  }
  return out;
}

void Trace::writeCsv(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("Trace: cannot open for write: " + path);
  os << "event,robot,x,y,phase\n";
  for (const TraceStep& s : steps_) {
    os << s.event << ',' << s.robot << ',' << s.position.x << ','
       << s.position.y << ',' << s.phaseTag << '\n';
  }
  os.flush();
  if (os.fail()) throw std::runtime_error("Trace: write failed: " + path);
}

}  // namespace apf::sim
