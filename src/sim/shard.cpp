#include "sim/shard.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "cli/env.h"
#include "config/generator.h"
#include "obs/json.h"
#include "obs/stats.h"
#include "sim/engine.h"
#include "sim/shrink.h"

#if !defined(_WIN32)
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>
#endif
#if defined(__linux__)
#include <sys/prctl.h>
#endif

namespace fs = std::filesystem;

namespace apf::sim {

// ----------------------------------------------------------------- wire --

std::string toJson(const ShardSpec& spec) {
  obs::JsonObjectWriter w;
  w.field("shard", ShardSpec::kSchema);
  w.field("algo", spec.algo);
  w.field("n", static_cast<std::uint64_t>(spec.n));
  w.field("pattern_label", spec.patternLabel);
  w.rawField("pattern", pointsJson(spec.pattern));
  w.field("start_kind", spec.startKind);
  // The fixed start is only on the wire when it is authoritative, so the
  // decode->encode fixed point holds: a decoded spec re-encodes to the
  // exact same bytes, which shardConfigKey relies on.
  if (spec.startKind == "points") {
    w.rawField("start", pointsJson(spec.start));
  }
  w.field("sched", sched::schedulerName(spec.sched));
  w.field("base_seed", spec.baseSeed);
  w.field("runs", spec.runs);
  w.field("max_events", spec.maxEvents);
  w.field("delta", spec.delta);
  w.field("multiplicity", spec.multiplicity);
  w.field("chirality", spec.commonChirality);
  w.field("crash_f", spec.crashF);
  w.field("crash_horizon", spec.crashHorizon);
  w.rawField("fault", fault::toJson(spec.fault));
  w.field("fault_seed_set", spec.faultSeedSet);
  w.field("watchdog_events", spec.watchdogEvents);
  w.field("watchdog_ms", spec.watchdogMs);
  w.field("retries", spec.retries);
  return w.str();
}

ShardSpec shardSpecFromJson(std::string_view text) {
  const auto doc = obs::parseJson(text);
  if (!doc || doc->kind != obs::JsonNode::Kind::Object) {
    throw std::runtime_error("shard: malformed JSON spec");
  }
  const obs::JsonNode* schema = doc->find("shard");
  if (schema == nullptr) {
    throw std::runtime_error("shard: not an apf.shard.v1 spec (no schema)");
  }
  if (schema->asString() != ShardSpec::kSchema) {
    // A spec from a different wire version must be refused loudly: a
    // worker guessing at fields would run a silently different experiment.
    throw std::runtime_error("shard: unsupported spec schema \"" +
                             schema->asString() + "\" (this build speaks " +
                             ShardSpec::kSchema + ")");
  }
  ShardSpec s;
  if (const obs::JsonNode* v = doc->find("algo")) s.algo = v->asString();
  if (const obs::JsonNode* v = doc->find("n")) {
    s.n = static_cast<std::size_t>(v->asU64(s.n));
  }
  if (const obs::JsonNode* v = doc->find("pattern_label")) {
    s.patternLabel = v->asString();
  }
  const obs::JsonNode* pattern = doc->find("pattern");
  if (pattern == nullptr) {
    throw std::runtime_error("shard: spec is missing pattern points");
  }
  s.pattern = pointsFromJson(*pattern, "shard: pattern");
  if (const obs::JsonNode* v = doc->find("start_kind")) {
    s.startKind = v->asString();
  }
  if (const obs::JsonNode* v = doc->find("start")) {
    s.start = pointsFromJson(*v, "shard: start");
  }
  if (const obs::JsonNode* v = doc->find("sched")) {
    const auto kind = sched::schedulerFromName(v->asString());
    if (!kind) {
      throw std::runtime_error("shard: unknown scheduler \"" +
                               v->asString() + "\"");
    }
    s.sched = *kind;
  }
  if (const obs::JsonNode* v = doc->find("base_seed")) {
    s.baseSeed = v->asU64(s.baseSeed);
  }
  if (const obs::JsonNode* v = doc->find("runs")) s.runs = v->asU64(s.runs);
  if (const obs::JsonNode* v = doc->find("max_events")) {
    s.maxEvents = v->asU64(s.maxEvents);
  }
  if (const obs::JsonNode* v = doc->find("delta")) s.delta = v->asNumber();
  if (const obs::JsonNode* v = doc->find("multiplicity")) {
    s.multiplicity = v->asBool();
  }
  if (const obs::JsonNode* v = doc->find("chirality")) {
    s.commonChirality = v->asBool();
  }
  if (const obs::JsonNode* v = doc->find("crash_f")) {
    s.crashF = static_cast<int>(v->asNumber(0));
  }
  if (const obs::JsonNode* v = doc->find("crash_horizon")) {
    s.crashHorizon = v->asU64(s.crashHorizon);
  }
  if (const obs::JsonNode* v = doc->find("fault")) {
    s.fault = fault::planFromJson(*v);
  }
  if (const obs::JsonNode* v = doc->find("fault_seed_set")) {
    s.faultSeedSet = v->asBool();
  }
  if (const obs::JsonNode* v = doc->find("watchdog_events")) {
    s.watchdogEvents = v->asU64(0);
  }
  if (const obs::JsonNode* v = doc->find("watchdog_ms")) {
    s.watchdogMs = v->asU64(0);
  }
  if (const obs::JsonNode* v = doc->find("retries")) {
    s.retries = static_cast<int>(v->asNumber(s.retries));
  }
  return s;
}

ShardSpec loadShardSpec(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("shard: cannot open spec: " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return shardSpecFromJson(buf.str());
}

void saveShardSpec(const std::string& path, const ShardSpec& spec) {
  obs::createParentDirs(path);
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("shard: cannot open spec for write: " + path);
  }
  os << toJson(spec) << '\n';
  os.flush();
  if (os.fail()) throw std::runtime_error("shard: spec write failed: " + path);
}

std::string shardConfigKey(const ShardSpec& spec) { return toJson(spec); }

std::string validateShardSpec(const ShardSpec& spec) {
  if (spec.n == 0) return "n must be at least 1";
  if (spec.runs == 0) return "runs must be at least 1";
  if (spec.pattern.size() != spec.n) {
    return "pattern has " + std::to_string(spec.pattern.size()) +
           " points but n is " + std::to_string(spec.n);
  }
  if (spec.startKind != "random" && spec.startKind != "symmetric" &&
      spec.startKind != "points") {
    return "unknown start_kind \"" + spec.startKind + "\"";
  }
  if (spec.startKind == "points" && spec.start.size() != spec.n) {
    return "start has " + std::to_string(spec.start.size()) +
           " points but n is " + std::to_string(spec.n);
  }
  if (spec.crashF < 0) return "crash_f must be non-negative";
  if (spec.crashF > 0 &&
      static_cast<std::size_t>(spec.crashF) >= spec.n) {
    return "crash_f must leave at least one live robot";
  }
  if (spec.crashF > 0 && spec.crashHorizon == 0) {
    return "crash_horizon must be positive";
  }
  if (spec.retries < 0) return "retries must be non-negative";
  if (const auto why = fault::validate(spec.fault)) return *why;
  return "";
}

ShardRange shardRange(std::uint64_t runs, unsigned index, unsigned count) {
  if (count == 0 || index >= count) {
    throw std::runtime_error("shard: index " + std::to_string(index) +
                             " out of range for " + std::to_string(count) +
                             " shards");
  }
  // i*runs/count is monotone in i and hits 0 and runs at the ends, so the
  // slices are contiguous, cover [0, runs) exactly, and differ in size by
  // at most one.
  ShardRange r;
  r.lo = runs * index / count;
  r.hi = runs * (index + 1) / count;
  return r;
}

// ------------------------------------------------------------ execution --

SupervisorOptions shardSupervisorOptions(const ShardSpec& spec,
                                         obs::Recorder* recorder) {
  SupervisorOptions opts;
  opts.cycleBudget = spec.watchdogEvents;
  opts.wallBudgetNanos = spec.watchdogMs * 1'000'000ull;
  opts.maxRetries = spec.retries;
  opts.recorder = recorder;
  return opts;
}

std::string runScenarioPayload(const ShardSpec& spec, const Algorithm& algo,
                               std::uint64_t runIndex, const Attempt& att) {
  // Field-by-field this is the campaign worker apf_sim always ran; it now
  // lives here so the sharded and single-process paths execute the same
  // code. Retry salts XOR into the effective seed (0 for attempts 0/1 —
  // the same-seed determinism proof); crash victims/timings are re-drawn
  // per run so the campaign explores many crash schedules. The payload is
  // a flat JSON line with only deterministic fields, so campaign outputs
  // diff bit-identical across processes and machines.
  const std::uint64_t runSeed = spec.baseSeed + runIndex;
  const std::uint64_t eff = runSeed ^ att.seedSalt;

  EngineOptions eopts;
  eopts.seed = eff;
  eopts.maxEvents = spec.maxEvents;
  eopts.multiplicityDetection = spec.multiplicity;
  eopts.commonChirality = spec.commonChirality;
  eopts.sched.kind = spec.sched;
  eopts.sched.delta = spec.delta;
  eopts.watchdog = att.watchdog;

  const std::uint64_t fseed = spec.faultSeedSet ? spec.fault.seed : eff;
  fault::FaultPlan plan;
  if (spec.crashF > 0) {
    plan = fault::planWithRandomCrashes(spec.n, spec.crashF, fseed,
                                        spec.crashHorizon);
  }
  plan.noiseSigma = spec.fault.noiseSigma;
  plan.omitProb = spec.fault.omitProb;
  plan.multFlipProb = spec.fault.multFlipProb;
  plan.dropProb = spec.fault.dropProb;
  plan.truncProb = spec.fault.truncProb;
  plan.seed = fseed;
  eopts.fault = plan;

  config::Configuration runStart = spec.start;
  if (spec.startKind != "points") {
    config::Rng rng(eff + 7);
    if (spec.startKind == "symmetric") {
      const int rho = static_cast<int>(spec.n) / 2;
      runStart = config::symmetricConfiguration(rho > 1 ? rho : 2, 2, rng);
    } else {
      runStart = config::randomConfiguration(spec.n, rng, 5.0, 0.1);
    }
  }

  Engine eng(runStart, spec.pattern, algo, eopts);
  const RunResult res = eng.run();
  obs::JsonObjectWriter w;
  w.field("seed", eff);
  w.field("outcome", outcomeName(res.outcome));
  w.field("success", res.success);
  w.field("terminated", res.terminated);
  w.field("cycles", res.metrics.cycles);
  w.field("events", res.metrics.events);
  w.field("bits", res.metrics.randomBits);
  w.field("distance", res.metrics.distance);
  return w.str();
}

SupervisorReport runShard(const ShardSpec& spec, const Algorithm& algo,
                          std::uint64_t lo, std::uint64_t hi,
                          CampaignJournal* journal, obs::Recorder* recorder,
                          int jobs, CampaignStats* stats,
                          std::vector<std::string>* payloads) {
  if (lo > hi || hi > spec.runs) {
    throw std::runtime_error("shard: range [" + std::to_string(lo) + ", " +
                             std::to_string(hi) + ") exceeds " +
                             std::to_string(spec.runs) + " runs");
  }
  if (payloads != nullptr && payloads->size() < spec.runs) {
    payloads->resize(spec.runs);
  }
  const SupervisorOptions opts = shardSupervisorOptions(spec, recorder);
  SupervisorReport report;
  report.items = hi - lo;
  detail::MergeSink sink(report, opts);

  // The journaled-superviseCampaign replay pattern, but over GLOBAL run
  // indices: merge callbacks fire in ascending global order, journaled
  // runs replay without re-execution, and journal appends happen before
  // delivery — exactly the single-process semantics, restricted to
  // [lo, hi). That restriction is the only difference, which is why a
  // merged set of shard journals is byte-identical to one process's.
  std::vector<std::uint64_t> todo;
  todo.reserve(static_cast<std::size_t>(hi - lo));
  for (std::uint64_t i = lo; i < hi; ++i) {
    if (journal == nullptr || !journal->has(static_cast<std::size_t>(i))) {
      todo.push_back(i);
    }
  }

  auto deliver = [&](std::uint64_t index, std::string&& payload) {
    if (payloads != nullptr) {
      (*payloads)[static_cast<std::size_t>(index)] = std::move(payload);
    }
  };
  std::uint64_t cursor = lo;
  auto flushJournaled = [&](std::uint64_t limit) {
    for (; cursor < limit; ++cursor) {
      if (journal == nullptr) continue;
      if (const std::string* p =
              journal->payload(static_cast<std::size_t>(cursor))) {
        ++report.replayed;
        deliver(cursor, std::string(*p));
      }
    }
  };

  auto worker = [&](const std::uint64_t& index, std::size_t,
                    const Attempt& att) -> std::string {
    return runScenarioPayload(spec, algo, index, att);
  };
  runCampaign(
      todo,
      [&](const std::uint64_t& index, std::size_t) {
        return detail::runAttempts<std::uint64_t, decltype(worker),
                                   std::string>(index, index, worker, opts);
      },
      [&](std::size_t t, detail::Supervised<std::string>&& s) {
        const std::uint64_t index = todo[t];
        flushJournaled(index);
        cursor = index + 1;
        const auto si = static_cast<std::size_t>(index);
        if (s.ok) {
          sink.recordRetries(si, s.failures);
          if (journal != nullptr) {
            journal->append(si, s.result);
            sink.recordCheckpoint(si, s.result.size());
          }
          ++report.completed;
          deliver(index, std::move(s.result));
        } else {
          sink.recordQuarantine(si, s.deterministic, std::move(s.failures));
        }
      },
      jobs, stats);
  flushJournaled(hi);
  return report;
}

std::size_t mergeShardJournals(const ShardSpec& spec,
                               const std::vector<std::string>& shardJournals,
                               const std::string& mergedPath) {
  const std::string key = shardConfigKey(spec);
  std::map<std::uint64_t, std::string> entries;
  for (const std::string& path : shardJournals) {
    std::error_code ec;
    if (!fs::exists(path, ec)) continue;  // shard never started: no entries
    // Opening with resume=true reuses the torn-tail recovery and the
    // config-key check: a shard journal of a DIFFERENT spec throws here
    // instead of contaminating the merge.
    CampaignJournal j(path, key, /*resume=*/true);
    for (std::uint64_t i = 0; i < spec.runs; ++i) {
      if (const std::string* p = j.payload(static_cast<std::size_t>(i))) {
        entries[i] = *p;
      }
    }
  }
  // A fresh journal + ascending-index appends is exactly what a
  // single-process APF_JOBS=1 campaign writes (its merge callbacks fire in
  // index order), so the merged file is byte-identical by construction.
  CampaignJournal merged(mergedPath, key, /*resume=*/false);
  for (const auto& [i, payload] : entries) {
    merged.append(static_cast<std::size_t>(i), payload);
  }
  return entries.size();
}

// ---------------------------------------------------------- coordinator --

bool CoordinatorReport::allShardsOk() const {
  for (const ShardOutcome& s : shards) {
    if (!s.ok) return false;
  }
  return !shards.empty();
}

std::string resolveWorkerPath(const std::string& explicitPath) {
  if (!explicitPath.empty()) return explicitPath;
  std::error_code ec;
  const std::string& fromEnv = cli::env().workerPath;
  if (!fromEnv.empty()) {
    if (fs::exists(fromEnv, ec)) return fromEnv;
    std::fprintf(stderr,
                 "apf: APF_WORKER=\"%s\" does not exist; falling back to "
                 "the binary next to this executable\n",
                 fromEnv.c_str());
  }
#if defined(__linux__)
  char buf[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (len > 0) {
    buf[len] = '\0';
    const fs::path exeDir = fs::path(buf).parent_path();
    // Same directory first (tools/ binaries), then the tools/ sibling
    // (bench/ binaries live next to tools/ in the build tree).
    for (const fs::path& cand :
         {exeDir / "apf_worker",
          exeDir.parent_path() / "tools" / "apf_worker"}) {
      if (fs::exists(cand, ec)) return cand.string();
    }
  }
#endif
  return "";
}

#if !defined(_WIN32)

namespace {

void sleepMillis(long ms) {
  struct timespec ts;
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = (ms % 1000) * 1'000'000l;
  ::nanosleep(&ts, nullptr);
}

pid_t launchWorker(const std::string& worker, const std::string& specPath,
                   unsigned index, unsigned count,
                   const std::string& journalPath,
                   const std::string& reportPath, int jobs,
                   const std::string& logPath) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("shard: fork failed: ") +
                             std::strerror(errno));
  }
  if (pid != 0) return pid;
  // Child. Nothing below may touch the parent's stdio buffers or throw.
#if defined(__linux__)
  // Die with the coordinator: a SIGKILLed coordinator must not leave
  // orphan workers appending to shard journals it will want to reopen.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  const int logFd =
      ::open(logPath.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (logFd >= 0) {
    ::dup2(logFd, 1);  // the caller's stdout carries byte-compared output;
    ::dup2(logFd, 2);  // workers must never write into it
    if (logFd > 2) ::close(logFd);
  }
  const std::string shardArg =
      std::to_string(index) + "/" + std::to_string(count);
  const std::string jobsArg = std::to_string(jobs > 0 ? jobs : 1);
  const char* argv[] = {worker.c_str(),      "--spec",   specPath.c_str(),
                        "--shard",           shardArg.c_str(),
                        "--journal",         journalPath.c_str(),
                        "--report",          reportPath.c_str(),
                        "--jobs",            jobsArg.c_str(),
                        nullptr};
  ::execv(worker.c_str(), const_cast<char* const*>(argv));
  std::_Exit(127);  // exec failed; 127 is retryable (shell convention)
}

}  // namespace

CoordinatorReport runShardedCampaign(const ShardSpec& spec,
                                     const CoordinatorOptions& optsIn) {
  CoordinatorOptions opts = optsIn;
  if (const std::string why = validateShardSpec(spec); !why.empty()) {
    throw std::runtime_error("shard: invalid spec: " + why);
  }
  if (opts.shards == 0) opts.shards = 1;
  if (opts.workDir.empty()) {
    throw std::runtime_error("shard: coordinator needs a work directory");
  }
  const std::string worker = resolveWorkerPath(opts.workerPath);
  if (worker.empty()) {
    throw std::runtime_error(
        "shard: cannot resolve the apf_worker binary (set APF_WORKER or "
        "build the tools/apf_worker target)");
  }
  fs::create_directories(opts.workDir);
  const std::string specPath = opts.workDir + "/campaign.spec.json";
  saveShardSpec(specPath, spec);

  struct Slot {
    ShardOutcome out;
    std::string reportPath;
    pid_t pid = -1;
    int attempt = 0;
    std::uint64_t deadlineNanos = 0;   // 0 = no watchdog armed
    std::uint64_t notBeforeNanos = 0;  // launch backoff (exit-4 lock waits)
    bool finished = false;
  };
  std::vector<Slot> slots(opts.shards);
  for (unsigned i = 0; i < opts.shards; ++i) {
    Slot& s = slots[i];
    s.out.index = i;
    s.out.range = shardRange(spec.runs, i, opts.shards);
    const std::string base =
        opts.workDir + "/shard-" + std::to_string(i) + "_of_" +
        std::to_string(opts.shards);
    s.out.journalPath = base + ".journal";
    s.out.logPath = base + ".log";
    s.reportPath = base + ".report.json";
    if (!opts.resume) {
      // Fresh campaign: stale artifacts of a previous run must not leak
      // into this one (the journals would resume, the reports would lie).
      std::error_code ec;
      fs::remove(s.out.journalPath, ec);
      fs::remove(s.out.journalPath + ".lock", ec);
      fs::remove(s.reportPath, ec);
      fs::remove(s.out.logPath, ec);
    }
  }

  auto log = [&](const char* fmt, auto... args) {
    if (opts.verbose) std::fprintf(stderr, fmt, args...);
  };

  std::size_t unfinished = slots.size();
  while (unfinished > 0) {
    const std::uint64_t now = obs::nowNanos();
    for (Slot& s : slots) {
      if (s.finished) continue;
      if (s.pid < 0) {
        if (now < s.notBeforeNanos) continue;
        if (s.attempt > 0) {
          log("shard %u: retry attempt %d\n", s.out.index, s.attempt);
        }
        s.pid = launchWorker(worker, specPath, s.out.index, opts.shards,
                             s.out.journalPath, s.reportPath,
                             opts.jobsPerWorker, s.out.logPath);
        s.deadlineNanos = opts.workerWallBudgetNanos != 0
                              ? now + opts.workerWallBudgetNanos
                              : 0;
        continue;
      }
      int status = 0;
      const pid_t r = ::waitpid(s.pid, &status, WNOHANG);
      bool timedOut = false;
      if (r == 0) {
        if (s.deadlineNanos == 0 || now < s.deadlineNanos) continue;
        // Watchdog expiry gets the supervisor treatment at process
        // granularity: SIGKILL, then the bounded retry below. The shard
        // journal survives, so the retry re-runs only unjournaled runs.
        log("shard %u: wall budget exhausted, killing pid %ld\n",
            s.out.index, static_cast<long>(s.pid));
        ::kill(s.pid, SIGKILL);
        if (::waitpid(s.pid, &status, 0) < 0) status = 0;
        timedOut = true;
      }
      ShardAttempt att;
      att.number = s.attempt;
      att.timedOut = timedOut;
      if (WIFEXITED(status)) {
        att.exitCode = WEXITSTATUS(status);
      } else if (WIFSIGNALED(status)) {
        att.termSignal = WTERMSIG(status);
      }
      s.out.attempts.push_back(att);
      s.pid = -1;

      // Exit-code policy (documented in tools/cli_parse.h): 0/1 complete
      // the shard (1 = quarantined runs, still a finished shard); 2 is a
      // usage/spec error no retry can fix; 4 means an orphan still holds
      // the journal lock — retry after a backoff; anything else (signals,
      // crashes, exec failures) is retryable.
      if (!timedOut && att.termSignal == 0 &&
          (att.exitCode == 0 || att.exitCode == 1)) {
        try {
          s.out.report = loadSupervisorReport(s.reportPath);
          s.out.ok = true;
        } catch (const std::exception& e) {
          std::fprintf(stderr, "shard %u: worker report unreadable: %s\n",
                       s.out.index, e.what());
          s.out.ok = false;
        }
        s.finished = true;
        --unfinished;
        continue;
      }
      if (!timedOut && att.termSignal == 0 && att.exitCode == 2) {
        std::fprintf(stderr,
                     "shard %u: worker rejected the spec (exit 2); see %s\n",
                     s.out.index, s.out.logPath.c_str());
        s.finished = true;
        --unfinished;
        continue;
      }
      if (s.attempt >= opts.maxRetries) {
        std::fprintf(stderr,
                     "shard %u: quarantined after %d attempts; see %s\n",
                     s.out.index, s.attempt + 1, s.out.logPath.c_str());
        s.finished = true;
        --unfinished;
        continue;
      }
      ++s.attempt;
      s.notBeforeNanos =
          att.exitCode == 4 ? now + 200'000'000ull * s.attempt : 0;
    }
    if (unfinished > 0) sleepMillis(10);
  }

  CoordinatorReport report;
  std::vector<std::string> journals;
  journals.reserve(slots.size());
  for (Slot& s : slots) {
    journals.push_back(s.out.journalPath);
    if (s.out.ok) report.runs.absorb(s.out.report);
    report.shards.push_back(std::move(s.out));
  }
  report.mergedJournalPath = opts.mergedJournalPath.empty()
                                 ? opts.workDir + "/merged.journal"
                                 : opts.mergedJournalPath;
  mergeShardJournals(spec, journals, report.mergedJournalPath);
  return report;
}

#else  // _WIN32

CoordinatorReport runShardedCampaign(const ShardSpec&,
                                     const CoordinatorOptions&) {
  throw std::runtime_error(
      "shard: the multi-process coordinator requires POSIX process "
      "control; run shards via an external launcher instead");
}

#endif

}  // namespace apf::sim
